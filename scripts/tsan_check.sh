#!/usr/bin/env bash
# ThreadSanitizer sweep over the concurrency-sensitive paths.
#
# The planner's warm-start hints, connectivity scratch, and CVT scratch
# are caller-owned (stack-local per plan() call); the shared planner
# objects must stay immutable after construction. This script builds with
# -fsanitize=thread and runs the tests that hammer plan() from many
# threads (runtime/mission service) plus the interpolator unit tests,
# the task-arena unit tests, the parallel-plan determinism suite
# (full plans at 2/4/8 arena threads), the sharded-router suite
# (concurrent submit against kill/drain/revive transitions), the
# harmonic solver suite (multigrid smoothing through parallel_chunks at
# several arena widths), the Delaunay suite (hinted construction
# feeding the parallel consumers), the admission suite (gateway
# submit/refresh racing a multi-threaded backend), and the codec suite
# (encode/decode used concurrently by the serving path), and the FMM
# suite (per-robot fast-marching solves fanned out over parallel_chunks
# must produce byte-identical ToA fields at any thread count).
#
# Usage: scripts/tsan_check.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-tsan}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DANR_SANITIZE=thread >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target test_runtime test_composition test_network test_grid_index \
  test_obs test_task_arena test_parallel_determinism test_shard \
  test_harmonic test_delaunay test_protocols test_decentralized \
  test_admission test_plan_codec test_fmm >/dev/null

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R '^(test_runtime|test_composition|test_network|test_grid_index|test_obs|test_task_arena|test_parallel_determinism|test_shard|test_harmonic|test_delaunay|test_protocols|test_decentralized|test_admission|test_plan_codec|test_fmm)$'
echo "OK: TSan sweep clean"
