#!/usr/bin/env bash
# Guards the hot-path performance baseline.
#
# Builds Release, runs bench/bench_hotpath with JSON output, and compares
# every benchmark's real_time against the committed BENCH_hotpath.json.
# Fails if any benchmark regressed by more than the tolerance (default
# +25%; improvements never fail). Refresh the baseline by copying the
# printed current-run JSON over BENCH_hotpath.json on a quiet machine.
#
# Usage: scripts/bench_check.sh [build-dir] [tolerance-pct]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
TOL_PCT="${2:-25}"
BASELINE="$REPO_ROOT/BENCH_hotpath.json"

[ -f "$BASELINE" ] || { echo "missing baseline $BASELINE" >&2; exit 1; }

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench_hotpath -j "$(nproc)" >/dev/null

CURRENT="$(mktemp /tmp/bench_hotpath.XXXXXX.json)"
trap 'rm -f "$CURRENT"' EXIT
"$BUILD_DIR/bench/bench_hotpath" \
  --benchmark_format=json \
  --benchmark_out="$CURRENT" \
  --benchmark_min_time=0.2 >/dev/null

python3 - "$BASELINE" "$CURRENT" "$TOL_PCT" <<'EOF'
import json, sys

baseline_path, current_path, tol_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data["benchmarks"]:
        # Skip aggregate/complexity rows (BigO, RMS) — no real_time.
        if "real_time" in b and b.get("run_type", "iteration") == "iteration":
            out[b["name"]] = (b["real_time"], b["time_unit"])
    return out

base = load(baseline_path)
cur = load(current_path)

# An empty baseline would make the comparison loop below vacuously pass
# ("all 0 benchmarks within tolerance") — treat it as a broken guard, the
# same as a missing file.
if not base:
    print(f"FAIL: baseline {baseline_path} contains no iteration benchmarks",
          file=sys.stderr)
    sys.exit(1)
if not cur:
    print(f"FAIL: current run produced no iteration benchmarks",
          file=sys.stderr)
    sys.exit(1)

failed = []
print(f"{'benchmark':<40} {'baseline':>12} {'current':>12} {'delta':>8}")
for name, (bt, unit) in sorted(base.items()):
    if name not in cur:
        failed.append(f"{name}: missing from current run")
        continue
    ct, _ = cur[name]
    delta = (ct - bt) / bt * 100.0
    mark = ""
    if delta > tol_pct:
        mark = "  REGRESSED"
        failed.append(f"{name}: {bt:.1f} -> {ct:.1f} {unit} ({delta:+.1f}%)")
    print(f"{name:<40} {bt:>10.1f}{unit:>2} {ct:>10.1f}{unit:>2} {delta:>+7.1f}%{mark}")

if failed:
    print(f"\nFAIL: {len(failed)} benchmark(s) regressed beyond +{tol_pct:.0f}%:",
          file=sys.stderr)
    for f in failed:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: all {len(base)} benchmarks within +{tol_pct:.0f}% of baseline")
EOF
