#!/usr/bin/env bash
# Guards the performance baselines.
#
# Two baseline files:
#   BENCH_hotpath.json — google-benchmark timings of the planner hot
#     path. Timing-gated: any benchmark more than the tolerance slower
#     than baseline fails (improvements never fail).
#   BENCH_service.json — mission-service summaries (threads sweep +
#     sharded sweep). Throughput depends on the machine, so only the
#     *deterministic* fields are gated: distinct keys, planners built
#     per shard count, affinity hit rates, and affinity strictly beating
#     the random-routing control. jobs/sec is reported, never gated.
#
# --update regenerates both baseline files in place (run on a quiet
# machine, then commit the diff).
#
# Usage: scripts/bench_check.sh [--update] [build-dir] [tolerance-pct]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
  shift
fi
BUILD_DIR="${1:-$REPO_ROOT/build}"
TOL_PCT="${2:-25}"
HOTPATH_BASELINE="$REPO_ROOT/BENCH_hotpath.json"
SERVICE_BASELINE="$REPO_ROOT/BENCH_service.json"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench_hotpath bench_service \
  -j "$(nproc)" >/dev/null

run_service_suite() {
  # Captures the one-line JSON summaries of both bench_service modes
  # into a single {"service":..., "sharded":...} document at $1.
  local out="$1"
  local plain sharded
  plain="$("$BUILD_DIR/bench/bench_service" | grep '^{' | tail -1)"
  sharded="$("$BUILD_DIR/bench/bench_service" --sharded | grep '^{' | tail -1)"
  python3 - "$out" <<EOF
import json, sys
doc = {"service": json.loads('''$plain'''),
       "sharded": json.loads('''$sharded''')}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
EOF
}

if [ "$UPDATE" -eq 1 ]; then
  echo "regenerating $HOTPATH_BASELINE"
  "$BUILD_DIR/bench/bench_hotpath" \
    --benchmark_format=json \
    --benchmark_out="$HOTPATH_BASELINE" \
    --benchmark_min_time=0.2 >/dev/null
  echo "regenerating $SERVICE_BASELINE"
  run_service_suite "$SERVICE_BASELINE"
  echo "OK: baselines updated in place — review and commit the diff"
  exit 0
fi

[ -f "$HOTPATH_BASELINE" ] || { echo "missing baseline $HOTPATH_BASELINE" >&2; exit 1; }
[ -f "$SERVICE_BASELINE" ] || { echo "missing baseline $SERVICE_BASELINE" >&2; exit 1; }

CURRENT="$(mktemp /tmp/bench_hotpath.XXXXXX.json)"
CURRENT_SERVICE="$(mktemp /tmp/bench_service.XXXXXX.json)"
trap 'rm -f "$CURRENT" "$CURRENT_SERVICE"' EXIT
"$BUILD_DIR/bench/bench_hotpath" \
  --benchmark_format=json \
  --benchmark_out="$CURRENT" \
  --benchmark_min_time=0.2 >/dev/null

python3 - "$HOTPATH_BASELINE" "$CURRENT" "$TOL_PCT" <<'EOF'
import json, sys

baseline_path, current_path, tol_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data["benchmarks"]:
        # Skip aggregate/complexity rows (BigO, RMS) — no real_time.
        if "real_time" in b and b.get("run_type", "iteration") == "iteration":
            out[b["name"]] = (b["real_time"], b["time_unit"])
    return out

base = load(baseline_path)
cur = load(current_path)

# An empty baseline would make the comparison loop below vacuously pass
# ("all 0 benchmarks within tolerance") — treat it as a broken guard, the
# same as a missing file.
if not base:
    print(f"FAIL: baseline {baseline_path} contains no iteration benchmarks",
          file=sys.stderr)
    sys.exit(1)
if not cur:
    print(f"FAIL: current run produced no iteration benchmarks",
          file=sys.stderr)
    sys.exit(1)

failed = []
print(f"{'benchmark':<40} {'baseline':>12} {'current':>12} {'delta':>8}")
for name, (bt, unit) in sorted(base.items()):
    if name not in cur:
        failed.append(f"{name}: missing from current run")
        continue
    ct, _ = cur[name]
    delta = (ct - bt) / bt * 100.0
    mark = ""
    if delta > tol_pct:
        mark = "  REGRESSED"
        failed.append(f"{name}: {bt:.1f} -> {ct:.1f} {unit} ({delta:+.1f}%)")
    print(f"{name:<40} {bt:>10.1f}{unit:>2} {ct:>10.1f}{unit:>2} {delta:>+7.1f}%{mark}")

if failed:
    print(f"\nFAIL: {len(failed)} benchmark(s) regressed beyond +{tol_pct:.0f}%:",
          file=sys.stderr)
    for f in failed:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: all {len(base)} benchmarks within +{tol_pct:.0f}% of baseline")
EOF

run_service_suite "$CURRENT_SERVICE"

python3 - "$SERVICE_BASELINE" "$CURRENT_SERVICE" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

failed = []

def check(label, got, want):
    if got != want:
        failed.append(f"{label}: expected {want!r}, got {got!r}")

# Deterministic cache behavior of the threads sweep: same key count, a
# fully warm cache at the end of the 8-thread run.
check("service.distinct_keys", cur["service"]["distinct_keys"],
      base["service"]["distinct_keys"])
check("service.cache.constructions", cur["service"]["cache"]["constructions"],
      base["service"]["cache"]["constructions"])

# Sharded sweep: placement is pure, so builds and hit rates are exact.
for field in ("shards", "planners_built", "affinity_hit_rate",
              "distinct_keys", "affinity_hit_rate_4", "random_hit_rate_4"):
    check(f"sharded.{field}", cur["sharded"][field], base["sharded"][field])

if cur["sharded"]["affinity_hit_rate_4"] <= cur["sharded"]["random_hit_rate_4"]:
    failed.append("affinity hit rate must strictly beat the random control")

rates = ", ".join(f"{r:.1f}" for r in cur["sharded"]["jobs_per_sec"])
print(f"sharded jobs/sec at N={cur['sharded']['shards']}: [{rates}] "
      "(reported, not gated)")

if failed:
    print(f"\nFAIL: service baseline mismatch:", file=sys.stderr)
    for f in failed:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("OK: service baselines match (deterministic fields)")
EOF
