// Mission-service throughput: jobs/sec vs worker threads with planner
// caching, on a 64-job batch spread over 4 distinct M2 target shapes.
//
// What to expect:
//   - The cache constructs exactly 4 planners (one per distinct
//     (M1, M2, r_c, options) key) no matter how many jobs or threads;
//     the remaining 60 jobs are cache hits that only pay plan().
//   - jobs/sec scales with worker threads up to the machine's core
//     count — plan() is CPU-bound and lock-free, so on a k-core box the
//     k-thread row should approach k x the 1-thread row. On a 1-core
//     container every thread count collapses to the same rate; the
//     "threads" column is then a scheduling-overhead measurement.
//
// Output: a table plus one machine-readable JSON summary line
// (jobs/sec per thread count, speedup, cache + stage stats) — see
// EXPERIMENTS.md for how to read it.
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

int main() {
  using namespace anr;

  // 4 distinct target geometries, shared M1 (scenarios 1-4 reuse the
  // paper's base M1 where possible; each m2_shape is distinct).
  std::vector<Scenario> scenarios;
  for (int id = 1; id <= 4; ++id) scenarios.push_back(scenario(id));

  PlannerOptions opt;
  opt.mesher.target_grid_points = 450;
  opt.cvt_samples = 5000;
  opt.max_adjust_steps = 6;

  // One deployment per distinct M1.
  std::cout << "preparing deployments...\n";
  std::vector<std::vector<Vec2>> deployments;
  for (const Scenario& sc : scenarios) {
    deployments.push_back(
        optimal_coverage_positions(sc.m1, 100, /*seed=*/1, uniform_density())
            .positions);
  }

  constexpr int kJobs = 64;
  auto make_jobs = [&] {
    std::vector<runtime::PlanJob> jobs;
    jobs.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
      const Scenario& sc = scenarios[static_cast<std::size_t>(i % 4)];
      runtime::PlanJob job;
      job.id = "job-" + std::to_string(i);
      job.m1 = sc.m1;
      job.m2_shape = sc.m2_shape;
      job.r_c = sc.comm_range;
      job.m2_offset = sc.m1.centroid() +
                      Vec2{15.0 * sc.comm_range, 0.0} -
                      sc.m2_shape.centroid();
      job.positions = deployments[static_cast<std::size_t>(i % 4)];
      job.options = opt;
      jobs.push_back(std::move(job));
    }
    return jobs;
  };

  unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw << ", jobs: " << kJobs
            << ", distinct planner keys: 4\n\n";

  TextTable table;
  table.header({"threads", "wall (s)", "jobs/sec", "speedup", "cache hit",
                "cache miss", "built", "plan p95 (ms)"});

  json::Array threads_arr, rate_arr;
  double rate_1 = 0.0, rate_8 = 0.0;
  json::Object last_cache;
  for (int threads : {1, 2, 4, 8}) {
    runtime::ServiceOptions so;
    so.threads = threads;
    so.queue_capacity = kJobs;
    runtime::MissionService service(so);

    Stopwatch sw;
    std::vector<runtime::JobResult> results = service.run_batch(make_jobs());
    double wall = sw.seconds();

    int ok = 0;
    for (const runtime::JobResult& r : results) {
      if (r.ok) {
        ++ok;
      } else {
        std::cerr << r.id << " failed: " << r.error << "\n";
      }
    }
    runtime::ServiceStats stats = service.stats();
    double rate = static_cast<double>(ok) / wall;
    if (threads == 1) rate_1 = rate;
    if (threads == 8) rate_8 = rate;

    table.row({std::to_string(threads), fmt(wall, 2), fmt(rate, 2),
               rate_1 > 0.0 ? fmt(rate / rate_1, 2) : "-",
               std::to_string(stats.cache.hits),
               std::to_string(stats.cache.misses),
               std::to_string(stats.cache.constructions),
               fmt(stats.plan_exec.p95 * 1e3, 1)});

    threads_arr.emplace_back(threads);
    rate_arr.emplace_back(rate);
    json::Value stats_json = runtime::stats_to_json(stats);
    last_cache = stats_json.at("cache").as_object();
  }

  std::cout << "== mission-service throughput (64 jobs, 4 M2 shapes)\n"
            << table.str() << "\n";

  json::Object summary;
  summary.emplace("bench", "bench_service");
  summary.emplace("jobs", kJobs);
  summary.emplace("distinct_keys", 4);
  summary.emplace("hardware_threads", static_cast<std::size_t>(hw));
  summary.emplace("threads", std::move(threads_arr));
  summary.emplace("jobs_per_sec", std::move(rate_arr));
  summary.emplace("speedup_8_vs_1", rate_1 > 0.0 ? rate_8 / rate_1 : 0.0);
  summary.emplace("cache", std::move(last_cache));
  std::cout << json::Value(std::move(summary)).dump() << "\n";
  return 0;
}
