// Mission-service throughput: jobs/sec vs worker threads with planner
// caching, on a 64-job batch spread over 4 distinct M2 target shapes.
//
// What to expect:
//   - The cache constructs exactly 4 planners (one per distinct
//     (M1, M2, r_c, options) key) no matter how many jobs or threads;
//     the remaining 60 jobs are cache hits that only pay plan().
//   - jobs/sec scales with worker threads up to the machine's core
//     count — plan() is CPU-bound and lock-free, so on a k-core box the
//     k-thread row should approach k x the 1-thread row. On a 1-core
//     container every thread count collapses to the same rate; the
//     "threads" column is then a scheduling-overhead measurement.
//
// `--sharded` instead sweeps the consistent-hash router over
// N ∈ {1, 2, 4, 8} shards (1 worker per shard, same 64-job mix):
//   - Affinity routing keeps each of the 4 planner keys on one shard, so
//     the fleet builds exactly 4 planners at every N and the aggregate
//     cache hit rate stays at 60/64 regardless of shard count.
//   - The random-routing control at N=4 scatters keys across shards;
//     each shard rebuilds whatever lands on it, so constructions rise
//     toward keys x shards and the hit rate drops — the gap between the
//     two rows is what placement buys.
//
// Output: a table plus one machine-readable JSON summary line — see
// EXPERIMENTS.md for how to read it. The no-argument mode's summary
// (bench "bench_service") is the BENCH_service.json baseline guarded by
// scripts/bench_check.sh; --sharded emits bench "bench_service_sharded".
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace {

using namespace anr;

PlannerOptions bench_options() {
  PlannerOptions opt;
  opt.mesher.target_grid_points = 450;
  opt.cvt_samples = 5000;
  opt.max_adjust_steps = 6;
  return opt;
}

constexpr int kJobs = 64;

std::vector<runtime::PlanJob> make_jobs(
    const std::vector<Scenario>& scenarios,
    const std::vector<std::vector<Vec2>>& deployments) {
  std::vector<runtime::PlanJob> jobs;
  jobs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    const Scenario& sc = scenarios[static_cast<std::size_t>(i % 4)];
    runtime::PlanJob job;
    job.id = "job-" + std::to_string(i);
    job.m1 = sc.m1;
    job.m2_shape = sc.m2_shape;
    job.r_c = sc.comm_range;
    job.m2_offset = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
                    sc.m2_shape.centroid();
    job.positions = deployments[static_cast<std::size_t>(i % 4)];
    job.options = bench_options();
    jobs.push_back(std::move(job));
  }
  return jobs;
}

int run_threads_sweep(const std::vector<Scenario>& scenarios,
                      const std::vector<std::vector<Vec2>>& deployments) {
  unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw << ", jobs: " << kJobs
            << ", distinct planner keys: 4\n\n";

  TextTable table;
  table.header({"threads", "wall (s)", "jobs/sec", "speedup", "cache hit",
                "cache miss", "built", "plan p95 (ms)"});

  json::Array threads_arr, rate_arr;
  double rate_1 = 0.0, rate_8 = 0.0;
  json::Object last_cache;
  for (int threads : {1, 2, 4, 8}) {
    runtime::ServiceOptions so;
    so.threads = threads;
    so.queue_capacity = kJobs;
    runtime::MissionService service(so);

    Stopwatch sw;
    std::vector<runtime::JobResult> results =
        service.run_batch(make_jobs(scenarios, deployments));
    double wall = sw.seconds();

    int ok = 0;
    for (const runtime::JobResult& r : results) {
      if (r.ok) {
        ++ok;
      } else {
        std::cerr << r.id << " failed: " << r.error << "\n";
      }
    }
    runtime::ServiceStats stats = service.stats();
    double rate = static_cast<double>(ok) / wall;
    if (threads == 1) rate_1 = rate;
    if (threads == 8) rate_8 = rate;

    table.row({std::to_string(threads), fmt(wall, 2), fmt(rate, 2),
               rate_1 > 0.0 ? fmt(rate / rate_1, 2) : "-",
               std::to_string(stats.cache.hits),
               std::to_string(stats.cache.misses),
               std::to_string(stats.cache.constructions),
               fmt(stats.plan_exec.p95 * 1e3, 1)});

    threads_arr.emplace_back(threads);
    rate_arr.emplace_back(rate);
    json::Value stats_json = runtime::stats_to_json(stats);
    last_cache = stats_json.at("cache").as_object();
  }

  std::cout << "== mission-service throughput (64 jobs, 4 M2 shapes)\n"
            << table.str() << "\n";

  json::Object summary;
  summary.emplace("bench", "bench_service");
  summary.emplace("jobs", kJobs);
  summary.emplace("distinct_keys", 4);
  summary.emplace("hardware_threads", static_cast<std::size_t>(hw));
  summary.emplace("threads", std::move(threads_arr));
  summary.emplace("jobs_per_sec", std::move(rate_arr));
  summary.emplace("speedup_8_vs_1", rate_1 > 0.0 ? rate_8 / rate_1 : 0.0);
  summary.emplace("cache", std::move(last_cache));
  std::cout << json::Value(std::move(summary)).dump() << "\n";
  return 0;
}

struct ShardedRow {
  int shards = 0;
  bool random = false;
  double wall = 0.0;
  double rate = 0.0;
  double hit_rate = 0.0;
  std::uint64_t built = 0;
  std::uint64_t forwarded = 0;
};

ShardedRow run_sharded_once(int shards, shard::RoutingPolicy policy,
                            const std::vector<Scenario>& scenarios,
                            const std::vector<std::vector<Vec2>>& deployments) {
  shard::ShardedServiceOptions so;
  so.shards = shards;
  so.shard.threads = 1;  // 1 worker per shard: N shards = N workers total
  so.shard.queue_capacity = kJobs;
  so.routing = policy;
  shard::ShardedMissionService service(so);

  Stopwatch sw;
  std::vector<runtime::JobResult> results =
      service.run_batch(make_jobs(scenarios, deployments));
  double wall = sw.seconds();

  int ok = 0;
  for (const runtime::JobResult& r : results) {
    if (r.ok) {
      ++ok;
    } else {
      std::cerr << r.id << " failed: " << r.error << "\n";
    }
  }
  shard::ShardedServiceStats stats = service.stats();
  std::uint64_t hits = 0, misses = 0, built = 0;
  for (const runtime::ServiceStats& sh : stats.shards) {
    hits += sh.cache.hits;
    misses += sh.cache.misses;
    built += sh.cache.constructions;
  }
  ShardedRow row;
  row.shards = shards;
  row.random = policy == shard::RoutingPolicy::kRandom;
  row.wall = wall;
  row.rate = static_cast<double>(ok) / wall;
  row.hit_rate = hits + misses > 0
                     ? static_cast<double>(hits) /
                           static_cast<double>(hits + misses)
                     : 0.0;
  row.built = built;
  row.forwarded = stats.forwarded;
  return row;
}

int run_sharded_sweep(const std::vector<Scenario>& scenarios,
                      const std::vector<std::vector<Vec2>>& deployments) {
  unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw << ", jobs: " << kJobs
            << ", distinct planner keys: 4, 1 worker/shard\n\n";

  std::vector<ShardedRow> rows;
  for (int shards : {1, 2, 4, 8}) {
    rows.push_back(run_sharded_once(shards, shard::RoutingPolicy::kAffinity,
                                    scenarios, deployments));
  }
  // Control: the same mix through health-respecting random routing at
  // N=4 — what the cache pays when placement ignores content.
  rows.push_back(run_sharded_once(4, shard::RoutingPolicy::kRandom,
                                  scenarios, deployments));

  TextTable table;
  table.header({"shards", "routing", "wall (s)", "jobs/sec", "hit rate",
                "built", "forwarded"});
  json::Array shards_arr, rate_arr, hit_arr, built_arr;
  double affinity_hit_4 = 0.0, random_hit_4 = 0.0;
  for (const ShardedRow& r : rows) {
    table.row({std::to_string(r.shards), r.random ? "random" : "affinity",
               fmt(r.wall, 2), fmt(r.rate, 2), fmt(r.hit_rate, 3),
               std::to_string(r.built), std::to_string(r.forwarded)});
    if (!r.random) {
      shards_arr.emplace_back(r.shards);
      rate_arr.emplace_back(r.rate);
      hit_arr.emplace_back(r.hit_rate);
      built_arr.emplace_back(r.built);
      if (r.shards == 4) affinity_hit_4 = r.hit_rate;
    } else if (r.shards == 4) {
      random_hit_4 = r.hit_rate;
    }
  }

  std::cout << "== sharded mission-service (64 jobs, 4 M2 shapes)\n"
            << table.str() << "\n";

  json::Object summary;
  summary.emplace("bench", "bench_service_sharded");
  summary.emplace("jobs", kJobs);
  summary.emplace("distinct_keys", 4);
  summary.emplace("hardware_threads", static_cast<std::size_t>(hw));
  summary.emplace("shards", std::move(shards_arr));
  summary.emplace("jobs_per_sec", std::move(rate_arr));
  summary.emplace("affinity_hit_rate", std::move(hit_arr));
  summary.emplace("planners_built", std::move(built_arr));
  summary.emplace("affinity_hit_rate_4", affinity_hit_4);
  summary.emplace("random_hit_rate_4", random_hit_4);
  std::cout << json::Value(std::move(summary)).dump() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool sharded = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sharded") {
      sharded = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--sharded]\n";
      return 2;
    }
  }

  // 4 distinct target geometries, shared M1 (scenarios 1-4 reuse the
  // paper's base M1 where possible; each m2_shape is distinct).
  std::vector<Scenario> scenarios;
  for (int id = 1; id <= 4; ++id) scenarios.push_back(scenario(id));

  // One deployment per distinct M1.
  std::cout << "preparing deployments...\n";
  std::vector<std::vector<Vec2>> deployments;
  for (const Scenario& sc : scenarios) {
    deployments.push_back(
        optimal_coverage_positions(sc.m1, 100, /*seed=*/1, uniform_density())
            .positions);
  }

  return sharded ? run_sharded_sweep(scenarios, deployments)
                 : run_threads_sweep(scenarios, deployments);
}
