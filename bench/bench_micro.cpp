// Micro-benchmarks and ablations (google-benchmark).
//
// Component costs behind the pipeline (Delaunay, harmonic relaxation,
// Hungarian, grid-CVT) plus the ablations DESIGN.md Sec. 5 calls out:
// uniform vs mean-value harmonic weights, paper's depth-4 rotation search
// vs exhaustive sweep, centralized vs distributed triangulation
// extraction, and the message complexity of flooding aggregation.
#include <benchmark/benchmark.h>

#include "anr/anr.h"

namespace {

using namespace anr;

std::vector<Vec2> random_points(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  return pts;
}

void BM_Delaunay(benchmark::State& state) {
  auto pts = random_points(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(delaunay(pts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Delaunay)->Arg(144)->Arg(512)->Arg(1024)->Arg(2048)->Complexity();

void BM_AlphaExtract(benchmark::State& state) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_triangulation(deploy, sc.comm_range));
  }
}
BENCHMARK(BM_AlphaExtract);

void BM_TriangulationExtractDistributed(benchmark::State& state) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  std::size_t messages = 0;
  for (auto _ : state) {
    auto r = extract_triangulation_distributed(deploy, sc.comm_range);
    messages = r.messages;
    benchmark::DoNotOptimize(r);
  }
  state.counters["messages"] = static_cast<double>(messages);
}
BENCHMARK(BM_TriangulationExtractDistributed);

void BM_HarmonicMap(benchmark::State& state) {
  FieldOfInterest foi(make_circle({0, 0}, 500.0, 64));
  MesherOptions opt;
  opt.target_grid_points = static_cast<int>(state.range(0));
  FoiMesh fm = mesh_foi(foi, opt);
  DiskMapOptions dopt;
  dopt.weights = state.range(1) == 0 ? HarmonicWeights::kUniform
                                     : HarmonicWeights::kMeanValue;
  int sweeps = 0;
  for (auto _ : state) {
    DiskMap map = harmonic_disk_map(fm.mesh, dopt);
    sweeps = map.sweeps;
    benchmark::DoNotOptimize(map);
  }
  state.counters["sweeps"] = sweeps;
  state.counters["vertices"] = static_cast<double>(fm.mesh.num_vertices());
}
BENCHMARK(BM_HarmonicMap)
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({1500, 0})
    ->Args({1500, 1});

void BM_DistributedHarmonicMap(benchmark::State& state) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  auto ext = extract_triangulation(deploy, sc.comm_range);
  std::size_t messages = 0;
  for (auto _ : state) {
    auto r = distributed_harmonic_disk_map(ext.mesh, 1e-8);
    messages = r.boundary_messages + r.relax_messages;
    benchmark::DoNotOptimize(r);
  }
  state.counters["messages"] = static_cast<double>(messages);
}
BENCHMARK(BM_DistributedHarmonicMap);

void BM_Hungarian(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto from = random_points(n, 3);
  auto to = random_points(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_distance_assignment(from, to));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Hungarian)->Arg(64)->Arg(144)->Arg(256)->Arg(512)->Complexity();

void BM_GridCvtCentroids(benchmark::State& state) {
  FieldOfInterest foi(make_circle({0, 0}, 500.0, 64));
  GridCvt grid(foi, uniform_density(), static_cast<int>(state.range(0)));
  Rng rng(5);
  std::vector<Vec2> sites;
  for (int i = 0; i < 144; ++i) sites.push_back(foi.sample_point(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.centroids(sites));
  }
}
BENCHMARK(BM_GridCvtCentroids)->Arg(10000)->Arg(30000);

void BM_RotationSearch(benchmark::State& state) {
  // Full objective evaluation cost through the real interpolator.
  Scenario sc = scenario(3);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  PlannerOptions opt;
  opt.exhaustive_rotation = state.range(0) == 1;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  double objective = 0.0;
  int evals = 0;
  for (auto _ : state) {
    MarchPlan plan = planner.plan(deploy, off);
    objective = plan.rotation_objective;
    evals = plan.rotation_evaluations;
    benchmark::DoNotOptimize(plan);
  }
  state.counters["objective_L"] = objective;
  state.counters["evals"] = evals;
}
// Ablation: the paper's depth-4 search (arg 0) leaves some L on the table
// vs a 360-probe sweep (arg 1); compare the objective_L counters.
BENCHMARK(BM_RotationSearch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FloodSum(benchmark::State& state) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  std::vector<double> values(deploy.size(), 1.0);
  std::size_t messages = 0;
  for (auto _ : state) {
    net::Network network(deploy, sc.comm_range);
    auto r = net::run_flood_sum(network, values);
    messages = r.messages;
    benchmark::DoNotOptimize(r);
  }
  state.counters["messages"] = static_cast<double>(messages);
}
BENCHMARK(BM_FloodSum);

void BM_GossipVsFlood(benchmark::State& state) {
  // Message-cost comparison: arg 0 = one gossip round, arg 1 = full flood.
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  std::vector<double> values(deploy.size(), 1.0);
  std::size_t messages = 0;
  for (auto _ : state) {
    net::Network network(deploy, sc.comm_range);
    if (state.range(0) == 0) {
      auto r = net::run_gossip_mean(network, values, 1);
      messages = r.messages;
      benchmark::DoNotOptimize(r);
    } else {
      auto r = net::run_flood_sum(network, values);
      messages = r.messages;
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["messages"] = static_cast<double>(messages);
}
BENCHMARK(BM_GossipVsFlood)->Arg(0)->Arg(1);

void BM_ArticulationPoints(benchmark::State& state) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  auto adj = net::unit_disk_adjacency(deploy, sc.comm_range);
  int count = 0;
  for (auto _ : state) {
    auto aps = net::articulation_points(adj);
    count = static_cast<int>(aps.size());
    benchmark::DoNotOptimize(aps);
  }
  state.counters["cut_vertices"] = count;
}
BENCHMARK(BM_ArticulationPoints);

void BM_TransitionSimulation(benchmark::State& state) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range);
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(deploy, off);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_transition(
        plan.trajectories, sc.comm_range, plan.transition_end,
        static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_TransitionSimulation)->Arg(60)->Arg(240);

}  // namespace

BENCHMARK_MAIN();
