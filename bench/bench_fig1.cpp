// Reproduces Fig. 1 — the two constructions behind Lemma 1 and Lemma 2
// (Sec. II-A) — computationally rather than as a picture.
//
// Fig. 1(a)/Lemma 1: seven robots in a horizontal triangular strip
// redeploy into the same strip rotated vertical. Enumerating all 7!
// assignments shows the max-stable-links optimum and the min-distance
// optimum are different assignments: the trade-off is real.
//
// Fig. 1(b)/Lemma 2: hexagon-plus-center into a slim chain. Even the best
// of all 7! assignments preserves only half the links: full local-
// connectivity preservation is impossible in general.
#include <algorithm>
#include <numeric>

#include "bench_common.h"

namespace {

using namespace anr;

double assignment_distance(const std::vector<Vec2>& p,
                           const std::vector<Vec2>& q,
                           const std::vector<int>& perm) {
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    d += distance(p[i], q[static_cast<std::size_t>(perm[i])]);
  }
  return d;
}

double assignment_links(const std::vector<Vec2>& p, const std::vector<Vec2>& q,
                        const std::vector<int>& perm, double r_c) {
  std::vector<Vec2> t(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    t[i] = q[static_cast<std::size_t>(perm[i])];
  }
  return predicted_stable_link_ratio(p, t, communication_links(p, r_c), r_c);
}

}  // namespace

int main() {
  using namespace anr;
  using namespace anr::bench;
  Stopwatch sw;
  double h = std::sqrt(3.0) / 2.0;
  double r_c = 1.05;

  // --- Fig. 1(a): horizontal strip -> vertical strip --------------------
  std::vector<Vec2> p{{0, 0}, {1, 0}, {2, 0}, {3, 0},
                      {0.5, h}, {1.5, h}, {2.5, h}};
  std::vector<Vec2> q;
  for (Vec2 v : p) q.push_back(Vec2{-v.y, v.x} + Vec2{20.0, -1.5});

  std::vector<int> perm(7);
  std::iota(perm.begin(), perm.end(), 0);
  double best_l = -1.0, dist_at_best_l = 0.0;
  double best_d = 1e300, links_at_best_d = 0.0;
  do {
    double l = assignment_links(p, q, perm, r_c);
    double d = assignment_distance(p, q, perm);
    if (l > best_l || (l == best_l && d < dist_at_best_l)) {
      best_l = l;
      dist_at_best_l = d;
    }
    if (d < best_d) {
      best_d = d;
      links_at_best_d = l;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  TextTable a;
  a.header({"Fig. 1(a) optimum over all 7! assignments", "L", "D"});
  a.row({"maximize stable links", fmt_pct(best_l), fmt(dist_at_best_l, 3)});
  a.row({"minimize total distance", fmt_pct(links_at_best_d), fmt(best_d, 3)});
  std::cout << a.str()
            << "-> Lemma 1: the two objectives pick different assignments ("
            << fmt_pct(best_l - links_at_best_d)
            << " of links and " << fmt(dist_at_best_l - best_d, 3)
            << " distance apart).\n\n";

  // --- Fig. 1(b): hexagon + center -> chain ------------------------------
  std::vector<Vec2> ring{{0, 0}};
  for (int k = 0; k < 6; ++k) {
    double ang = M_PI / 3.0 * k;
    ring.push_back({std::cos(ang), std::sin(ang)});
  }
  std::vector<Vec2> chain;
  for (int k = 0; k < 7; ++k) chain.push_back({30.0 + k, 0.0});

  std::iota(perm.begin(), perm.end(), 0);
  double chain_best_l = -1.0;
  do {
    chain_best_l =
        std::max(chain_best_l, assignment_links(ring, chain, perm, r_c));
  } while (std::next_permutation(perm.begin(), perm.end()));

  std::cout << "Fig. 1(b): hexagon+center (12 links) -> chain (6 slots): "
               "best achievable L over all assignments = "
            << fmt_pct(chain_best_l)
            << "\n-> Lemma 2: local connectivity cannot be fully preserved "
               "in general.\n"
            << "bench_fig1 total " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
