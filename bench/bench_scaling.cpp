// Scaling study (beyond the paper's fixed n = 144): swarm size sweep on
// scenario 1 plus an indoor stress case, reporting solution quality,
// distributed message complexity, and wall-clock planning cost.
//
// Expected shape: L stays roughly flat with n (the harmonic map is
// resolution-independent), D ratio stays near 1, protocol message counts
// grow superlinearly (flooding is O(n*E)), planning time is dominated by
// the adjustment-phase CVT.
//
// Besides the human-readable table, each sweep row is also emitted as a
// one-line JSON object ("scaling_row ...") so scripts can scrape the
// series without parsing the table layout. (The big-n latency curve
// lives in bench_scale; this sweep measures solution quality and
// protocol costs at paper-adjacent sizes.)
#include <cstdio>

#include "bench_common.h"
#include "foi/indoor.h"

int main() {
  using namespace anr;
  using namespace anr::bench;
  Stopwatch total;

  Scenario sc = scenario(1);
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();

  TextTable table;
  table.header({"robots", "links", "L", "D/Hungarian", "C", "plan (s)",
                "protocol msgs"});

  for (int n : {100, 144, 225, 324}) {
    auto deploy =
        optimal_coverage_positions(sc.m1, n, /*seed=*/1, uniform_density())
            .positions;
    if (!net::is_connected(deploy, sc.comm_range)) {
      table.row({std::to_string(n), "-", "deployment disconnected at r_c"});
      continue;
    }
    PlannerOptions opt;
    opt.distributed = true;  // measure the protocol costs
    opt.mesher.target_grid_points = 900;
    opt.cvt_samples = 15000;
    opt.max_adjust_steps = 35;
    MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
    HungarianMarchPlanner hungarian(sc.m1, sc.m2_shape, sc.comm_range, n);

    Stopwatch sw;
    MarchPlan plan = planner.plan(deploy, off);
    double plan_seconds = sw.seconds();
    auto m = simulate_transition(plan.trajectories, sc.comm_range,
                                 plan.transition_end, 120);
    auto mh = simulate_transition(hungarian.plan(deploy, off).trajectories,
                                  sc.comm_range, 1.0, 60);

    table.row({std::to_string(n), std::to_string(m.initial_links),
               fmt_pct(m.stable_link_ratio),
               fmt(m.total_distance / mh.total_distance),
               m.global_connectivity ? "Y" : "N", fmt(plan_seconds, 2),
               std::to_string(plan.protocol_messages)});
    std::printf(
        "scaling_row {\"n\": %d, \"links\": %d, \"stable_link_ratio\": %.4f, "
        "\"distance_ratio\": %.4f, \"connected\": %s, \"plan_seconds\": %.3f, "
        "\"protocol_messages\": %zu}\n",
        n, m.initial_links, m.stable_link_ratio,
        m.total_distance / mh.total_distance,
        m.global_connectivity ? "true" : "false", plan_seconds,
        plan.protocol_messages);
  }
  std::cout << "== swarm-size scaling (scenario 1, 20x r_c, distributed "
               "protocols)\n"
            << table.str() << "\n";

  // Indoor stress: 3x2 rooms, 14 wall holes.
  FieldOfInterest floor = make_indoor_foi();
  FieldOfInterest staging = base_m1();
  auto deploy = optimal_coverage_positions(staging, 144, 1, uniform_density());
  PlannerOptions opt;
  opt.mesher.target_grid_points = 1500;
  opt.cvt_samples = 15000;
  opt.max_adjust_steps = 40;
  MarchPlanner planner(staging, floor, 80.0, opt);
  Vec2 doff = staging.centroid() + Vec2{20.0 * 80.0, 0.0} - floor.centroid();
  Stopwatch sw;
  MarchPlan plan = planner.plan(deploy.positions, doff);
  auto m = simulate_transition(plan.trajectories, 80.0, plan.transition_end, 150);
  std::cout << "== indoor stress (3x2 rooms, " << floor.holes().size()
            << " wall holes): L=" << fmt_pct(m.stable_link_ratio)
            << " C=" << (m.global_connectivity ? "Y" : "N")
            << " snapped=" << plan.snapped_targets
            << " repaired=" << plan.repaired_robots << " plan="
            << fmt(sw.seconds(), 2) << " s\n";

  std::cout << "bench_scaling total " << fmt(total.seconds(), 1) << " s\n";
  return 0;
}
