// Reproduces Fig. 5: the hole-to-hole scenarios 6 and 7 — both the
// current and the target FoI have complicated boundaries and inner holes.
//
// Expected shape (paper): our methods still achieve the least total
// moving distance among link-preserving methods and the highest stable
// link ratio; direct translation loses global connectivity here (see
// bench_table1), reflected in badly broken links.
#include "bench_common.h"

int main() {
  using namespace anr;
  using namespace anr::bench;
  Stopwatch sw;
  for (int id : {6, 7}) {
    Scenario sc = scenario(id);
    print_scenario_banner(sc);
    MethodSuite suite(sc);
    print_sweep(suite.sweep(paper_separations()));
    std::cout << "\n";
  }
  std::cout << "bench_fig5 total " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
