// Open-loop load harness for the admission-controlled serving path.
//
// Replays a Zipf-distributed mix of planner configurations against the
// sharded mission service behind a ServingGateway, at arrival rates set
// as multiples of the deployment's measured closed-loop capacity:
//
//   1. Capacity probe: a closed-loop batch (every worker busy) measures
//      jobs/sec with warm planner caches — the 1.0x reference rate.
//   2. SLO: by default 8x the slowest single-job latency, so an
//      unloaded deployment sits far below it (clamped to [0.25s, 10s]).
//   3. For each rate multiplier the harness submits jobs open-loop —
//      deterministic uniform spacing, never waiting for responses, the
//      service queue set to OverflowPolicy::kReject so submission can
//      never block — and a drain thread records client-side end-to-end
//      latency per admission class.
//
// What to expect:
//   - At 0.5x capacity the gateway accepts everything: shed == 0,
//     rejected == 0, full-service p99 well under the SLO.
//   - At >= 2x capacity occupancy pressure crosses shed_pressure and
//     the gateway starts downgrading to the degraded baseline: shed > 0
//     while the *accepted* jobs' p99 stays within the SLO — that is the
//     whole point of shedding.
//   - lost == 0 at every rate: every submitted job resolves exactly
//     once (accounting identity accepted + shed + rejected == offered).
//
// Output: a table plus a JSON document (--out FILE, else stdout). The
// committed BENCH_load.json baseline is guarded by scripts/bench_check.sh
// (accounting identity, shed-curve shape, accepted p99 <= SLO).
//
// Flags:
//   --duration S       seconds of open-loop submission per rate (default 20)
//   --rates CSV        rate multipliers (default "0.5,1,2,4")
//   --shards N         router shards (default 2)
//   --threads N        worker threads per shard (default 2)
//   --slo S            SLO seconds; 0 = auto from single-job latency
//   --seed N           workload seed (default 1)
//   --max-requests N   cap on offered jobs per rate row (default 1000000)
//   --out FILE         write the JSON document to FILE
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "anr/anr.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace {

using namespace anr;
using steady = std::chrono::steady_clock;

// One entry of the workload mix: a scenario geometry plus a planner
// configuration. Distinct options => distinct planner-cache keys, so the
// mix exercises cache affinity across shards too.
struct LoadConfig {
  int scenario_id = 0;
  PlannerOptions options;
  FieldOfInterest m1;
  FieldOfInterest m2_shape;
  double r_c = 0.0;
  Vec2 m2_offset{};
  std::vector<Vec2> positions;
};

PlannerOptions mix_options(int grid_points, int cvt_samples) {
  PlannerOptions opt;
  opt.mesher.target_grid_points = grid_points;
  opt.cvt_samples = cvt_samples;
  opt.max_adjust_steps = 6;
  return opt;
}

// Six-key mix: scenarios 1-4 at the standard bench fidelity plus two
// variant fidelities of scenarios 1-2 (distinct cache keys).
std::vector<LoadConfig> make_mix() {
  std::vector<LoadConfig> mix;
  struct Spec {
    int id;
    int grid;
    int cvt;
  };
  const Spec specs[] = {{1, 450, 5000}, {2, 450, 5000}, {3, 450, 5000},
                        {4, 450, 5000}, {1, 360, 4000}, {2, 360, 4000}};
  for (const Spec& s : specs) {
    const Scenario sc = scenario(s.id);
    LoadConfig cfg;
    cfg.scenario_id = s.id;
    cfg.options = mix_options(s.grid, s.cvt);
    cfg.m1 = sc.m1;
    cfg.m2_shape = sc.m2_shape;
    cfg.r_c = sc.comm_range;
    cfg.m2_offset = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
                    sc.m2_shape.centroid();
    cfg.positions =
        optimal_coverage_positions(sc.m1, 100, /*seed=*/1, uniform_density())
            .positions;
    mix.push_back(std::move(cfg));
  }
  return mix;
}

runtime::PlanJob make_job(const LoadConfig& cfg, std::string id) {
  runtime::PlanJob job;
  job.id = std::move(id);
  job.m1 = cfg.m1;
  job.m2_shape = cfg.m2_shape;
  job.r_c = cfg.r_c;
  job.m2_offset = cfg.m2_offset;
  job.positions = cfg.positions;
  job.options = cfg.options;
  return job;
}

// Zipf(s = 1) sampler over the mix: config i has weight 1 / (i + 1).
class ZipfPicker {
 public:
  explicit ZipfPicker(std::size_t n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / static_cast<double>(i + 1);
      cum_.push_back(acc);
    }
  }

  std::size_t pick(Rng& rng) const {
    const double r = rng.uniform(0.0, cum_.back());
    const auto it = std::lower_bound(cum_.begin(), cum_.end(), r);
    return std::min(static_cast<std::size_t>(it - cum_.begin()),
                    cum_.size() - 1);
  }

 private:
  std::vector<double> cum_;
};

struct LatencySummary {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

LatencySummary summarize(std::vector<double>& samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(samples.size());
    std::size_t idx =
        pos <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(pos)) - 1;
    idx = std::min(idx, samples.size() - 1);
    return samples[idx];
  };
  s.p50 = at(0.50);
  s.p99 = at(0.99);
  s.p999 = at(0.999);
  s.max = samples.back();
  return s;
}

json::Value latency_to_json(const LatencySummary& s) {
  json::Object o;
  o.emplace("count", s.count);
  o.emplace("p50", s.p50);
  o.emplace("p99", s.p99);
  o.emplace("p999", s.p999);
  o.emplace("max", s.max);
  return json::Value(std::move(o));
}

struct BenchSettings {
  double duration = 20.0;
  std::vector<double> rates = {0.5, 1.0, 2.0, 4.0};
  int shards = 2;
  int threads_per_shard = 2;
  double slo = 0.0;  // 0 = derive from single-job latency
  std::uint64_t seed = 1;
  std::uint64_t max_requests = 1000000;
  std::string out_path;
};

struct RateRow {
  double multiplier = 0.0;
  double target_rate = 0.0;
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t lost = 0;
  std::uint64_t planned_ok = 0;  // a plan was produced (full or degraded)
  std::uint64_t queue_full = 0;  // kRejectedQueueFull past admission
  std::uint64_t errors = 0;      // kError / anything else !ok
  double wall = 0.0;             // first submit -> last response drained
  double goodput = 0.0;          // planned_ok / wall
  LatencySummary latency_full;   // accepted jobs that produced a plan
  LatencySummary latency_shed;   // shed jobs that produced a plan
};

shard::ShardedServiceOptions service_options(const BenchSettings& s,
                                             std::size_t queue_per_shard,
                                             obs::Registry* registry) {
  shard::ShardedServiceOptions so;
  so.shards = s.shards;
  so.shard.threads = s.threads_per_shard;
  so.shard.queue_capacity = queue_per_shard;
  so.shard.overflow = runtime::OverflowPolicy::kReject;
  so.registry = registry;
  return so;
}

// Warms every planner the run can touch: one full-service job builds the
// cached MarchPlanner per config, one shed job builds the baseline memo.
void warm(shard::ShardedMissionService& service,
          const std::vector<LoadConfig>& mix) {
  std::vector<std::future<runtime::JobResult>> futs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    futs.push_back(
        service.submit(make_job(mix[i], "warm-" + std::to_string(i))));
    runtime::PlanJob degraded =
        make_job(mix[i], "warm-shed-" + std::to_string(i));
    degraded.level = runtime::ServiceLevel::kDegradedOnly;
    futs.push_back(service.submit(std::move(degraded)));
  }
  for (auto& f : futs) {
    const runtime::JobResult r = f.get();
    if (!r.ok) {
      std::cerr << "warmup " << r.id << " failed: " << r.error << "\n";
    }
  }
}

// Closed-loop capacity probe on a fresh warmed deployment: `jobs`
// round-robin jobs keep every worker busy; also reports the slowest
// single job run sequentially (the SLO anchor).
void measure_capacity(const BenchSettings& s,
                      const std::vector<LoadConfig>& mix,
                      double* jobs_per_sec, double* single_max) {
  shard::ShardedMissionService service(service_options(s, 256, nullptr));
  warm(service, mix);

  *single_max = 0.0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    Stopwatch sw;
    const runtime::JobResult r =
        service.submit(make_job(mix[i], "single-" + std::to_string(i))).get();
    if (r.ok) *single_max = std::max(*single_max, sw.seconds());
  }

  const int jobs = 48;
  std::vector<runtime::PlanJob> batch;
  batch.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    batch.push_back(make_job(mix[static_cast<std::size_t>(i) % mix.size()],
                             "cap-" + std::to_string(i)));
  }
  Stopwatch sw;
  const std::vector<runtime::JobResult> results =
      service.run_batch(std::move(batch));
  const double wall = sw.seconds();
  int ok = 0;
  for (const runtime::JobResult& r : results) ok += r.ok ? 1 : 0;
  *jobs_per_sec = wall > 0.0 ? static_cast<double>(ok) / wall : 0.0;
}

struct InFlight {
  std::future<runtime::JobResult> future;
  runtime::AdmitDecision decision = runtime::AdmitDecision::kAccept;
  steady::time_point submitted;
};

RateRow run_rate(const BenchSettings& s, const std::vector<LoadConfig>& mix,
                 double multiplier, double capacity, double slo,
                 std::size_t queue_per_shard) {
  RateRow row;
  row.multiplier = multiplier;
  row.target_rate = multiplier * capacity;

  obs::Registry registry;
  shard::ShardedMissionService service(
      service_options(s, queue_per_shard, &registry));
  warm(service, mix);

  runtime::AdmissionOptions ao;
  ao.slo_seconds = slo;
  ao.queue_capacity = queue_per_shard * static_cast<std::size_t>(s.shards);
  ao.registry = &registry;
  runtime::AdmissionController controller(ao);
  for (int i = 0; i < s.shards; ++i) {
    controller.watch(registry.histogram("anr_job_e2e_full_seconds",
                                        {{"shard", std::to_string(i)}}));
  }
  runtime::GatewayBackend backend;
  backend.submit = [&](runtime::PlanJob job) {
    return service.submit(std::move(job));
  };
  backend.queue_depth = [&]() -> std::size_t {
    std::size_t total = 0;
    for (int i = 0; i < s.shards; ++i) {
      total += service.shard_service(i).queue_depth();
    }
    return total;
  };
  runtime::ServingGateway gateway(std::move(backend), &controller,
                                  /*refresh_every=*/16);

  row.offered = std::min<std::uint64_t>(
      s.max_requests,
      std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(row.target_rate * s.duration)));

  // Drain thread: FIFO over submission order, so a measured latency can
  // only overestimate (a response that beat an earlier one waits for the
  // drain cursor). Overestimates are conservative for the p99 <= SLO gate.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<InFlight> inflight;
  bool submitting = true;

  std::vector<double> lat_full, lat_shed;
  std::uint64_t responses = 0;
  std::thread drain([&] {
    for (;;) {
      InFlight item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !inflight.empty() || !submitting; });
        if (inflight.empty()) return;
        item = std::move(inflight.front());
        inflight.pop_front();
      }
      const runtime::JobResult r = item.future.get();
      const double e2e =
          std::chrono::duration<double>(steady::now() - item.submitted)
              .count();
      ++responses;
      if (r.ok) {
        ++row.planned_ok;
        if (item.decision == runtime::AdmitDecision::kAccept) {
          lat_full.push_back(e2e);
        } else if (item.decision == runtime::AdmitDecision::kShed) {
          lat_shed.push_back(e2e);
        }
      } else if (r.status == runtime::JobStatus::kRejectedQueueFull) {
        ++row.queue_full;
      } else if (r.status != runtime::JobStatus::kRejectedOverload) {
        ++row.errors;
      }
    }
  });

  Rng rng(s.seed + static_cast<std::uint64_t>(multiplier * 1000.0));
  const ZipfPicker picker(mix.size());
  const double spacing = 1.0 / row.target_rate;
  Stopwatch wall;
  const steady::time_point start = steady::now();
  for (std::uint64_t i = 0; i < row.offered; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<steady::duration>(
                    std::chrono::duration<double>(
                        spacing * static_cast<double>(i))));
    const LoadConfig& cfg = mix[picker.pick(rng)];
    InFlight item;
    runtime::AdmitResult verdict;
    item.submitted = steady::now();
    item.future =
        gateway.submit(make_job(cfg, "load-" + std::to_string(i)), &verdict);
    item.decision = verdict.decision;
    {
      std::lock_guard<std::mutex> lock(mu);
      inflight.push_back(std::move(item));
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    submitting = false;
  }
  cv.notify_all();
  drain.join();
  row.wall = wall.seconds();

  const runtime::GatewayStats gs = gateway.stats();
  row.accepted = gs.accepted;
  row.shed = gs.shed;
  row.rejected = gs.rejected;
  row.lost = row.offered - responses;
  row.goodput =
      row.wall > 0.0 ? static_cast<double>(row.planned_ok) / row.wall : 0.0;
  row.latency_full = summarize(lat_full);
  row.latency_shed = summarize(lat_shed);
  return row;
}

json::Value row_to_json(const RateRow& r) {
  json::Object o;
  o.emplace("rate_multiplier", r.multiplier);
  o.emplace("target_rate_jobs_per_sec", r.target_rate);
  o.emplace("offered", r.offered);
  o.emplace("accepted", r.accepted);
  o.emplace("shed", r.shed);
  o.emplace("rejected", r.rejected);
  o.emplace("lost", r.lost);
  o.emplace("planned_ok", r.planned_ok);
  o.emplace("queue_full", r.queue_full);
  o.emplace("errors", r.errors);
  o.emplace("shed_fraction",
            r.offered > 0 ? static_cast<double>(r.shed) /
                                static_cast<double>(r.offered)
                          : 0.0);
  o.emplace("wall_seconds", r.wall);
  o.emplace("goodput_jobs_per_sec", r.goodput);
  o.emplace("latency_full", latency_to_json(r.latency_full));
  o.emplace("latency_shed", latency_to_json(r.latency_shed));
  return json::Value(std::move(o));
}

bool parse_rates(const std::string& csv, std::vector<double>* out) {
  out->clear();
  std::stringstream ss(csv);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() || v <= 0.0) return false;
    out->push_back(v);
  }
  return !out->empty();
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--duration S] [--rates CSV] [--shards N] [--threads N]"
               " [--slo S] [--seed N] [--max-requests N] [--out FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  BenchSettings s;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--duration") {
      const char* v = next();
      if (v == nullptr || (s.duration = std::atof(v)) <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--rates") {
      const char* v = next();
      if (v == nullptr || !parse_rates(v, &s.rates)) return usage(argv[0]);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr || (s.shards = std::atoi(v)) < 1) return usage(argv[0]);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || (s.threads_per_shard = std::atoi(v)) < 1)
        return usage(argv[0]);
    } else if (arg == "--slo") {
      const char* v = next();
      if (v == nullptr || (s.slo = std::atof(v)) < 0.0) return usage(argv[0]);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      s.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-requests") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      s.max_requests = std::strtoull(v, nullptr, 10);
      if (s.max_requests == 0) return usage(argv[0]);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      s.out_path = v;
    } else {
      return usage(argv[0]);
    }
  }

  std::cout << "preparing workload mix (6 configs, Zipf s=1)...\n";
  const std::vector<LoadConfig> mix = make_mix();

  std::cout << "measuring closed-loop capacity (" << s.shards << " shards x "
            << s.threads_per_shard << " threads)...\n";
  double capacity = 0.0, single_max = 0.0;
  measure_capacity(s, mix, &capacity, &single_max);
  if (capacity <= 0.0) {
    std::cerr << "capacity probe failed (no successful jobs)\n";
    return 1;
  }
  const double slo =
      s.slo > 0.0 ? s.slo : std::clamp(8.0 * single_max, 0.25, 10.0);
  // Aggregate queue sized so occupancy at shed_pressure corresponds to
  // well under half the SLO of queueing delay.
  const std::size_t queue_total = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::ceil(0.35 * slo * capacity)));
  const std::size_t queue_per_shard = std::max<std::size_t>(
      2, (queue_total + static_cast<std::size_t>(s.shards) - 1) /
             static_cast<std::size_t>(s.shards));
  std::cout << "capacity " << fmt(capacity, 1) << " jobs/s, slowest single job "
            << fmt(single_max * 1e3, 1) << " ms, slo " << fmt(slo, 2)
            << " s, queue " << queue_per_shard << "/shard\n\n";

  std::vector<RateRow> rows;
  for (double mult : s.rates) {
    std::cout << "rate " << fmt(mult, 2) << "x (" << fmt(mult * capacity, 1)
              << " jobs/s) for " << fmt(s.duration, 0) << "s...\n";
    rows.push_back(run_rate(s, mix, mult, capacity, slo, queue_per_shard));
  }

  TextTable table;
  table.header({"rate", "offered", "accepted", "shed", "rejected", "lost",
                "goodput/s", "full p50 (ms)", "full p99 (ms)",
                "shed p99 (ms)"});
  for (const RateRow& r : rows) {
    table.row({fmt(r.multiplier, 2) + "x", std::to_string(r.offered),
               std::to_string(r.accepted), std::to_string(r.shed),
               std::to_string(r.rejected), std::to_string(r.lost),
               fmt(r.goodput, 1), fmt(r.latency_full.p50 * 1e3, 1),
               fmt(r.latency_full.p99 * 1e3, 1),
               fmt(r.latency_shed.p99 * 1e3, 1)});
  }
  std::cout << "\n== open-loop load vs capacity (SLO " << fmt(slo, 2)
            << " s)\n"
            << table.str() << "\n";

  json::Object doc;
  doc.emplace("bench", "bench_load");
  doc.emplace("capacity_jobs_per_sec", capacity);
  doc.emplace("single_job_seconds_max", single_max);
  doc.emplace("slo_seconds", slo);
  doc.emplace("shed_pressure", runtime::AdmissionOptions{}.shed_pressure);
  doc.emplace("reject_pressure", runtime::AdmissionOptions{}.reject_pressure);
  doc.emplace("queue_per_shard", queue_per_shard);
  doc.emplace("shards", s.shards);
  doc.emplace("threads_per_shard", s.threads_per_shard);
  doc.emplace("duration_seconds", s.duration);
  doc.emplace("seed", s.seed);
  doc.emplace("configs", mix.size());
  json::Array rows_json;
  for (const RateRow& r : rows) rows_json.push_back(row_to_json(r));
  doc.emplace("rows", std::move(rows_json));
  const std::string text = json::Value(std::move(doc)).dump(2) + "\n";

  if (!s.out_path.empty()) {
    std::ofstream f(s.out_path);
    if (!f) {
      std::cerr << "cannot write " << s.out_path << "\n";
      return 1;
    }
    f << text;
  } else {
    std::cout << text;
  }
  return 0;
}
