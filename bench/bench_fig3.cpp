// Reproduces Fig. 3 (rows 4-5): scenarios 1, 2, 4, 5.
//
//   (a) non-hole -> non-hole, similar boundary
//   (b) non-hole -> non-hole, dissimilar slim boundary
//   (c) non-hole -> big convex hole
//   (d) non-hole -> multiple small holes
//
// For each, sweep the M1-M2 separation from 10x to 100x the communication
// range and report total moving distance (ratio to the Hungarian lower
// bound) and total stable link ratio for all four methods.
//
// Expected shape (paper): distance ratios converge toward 1 as separation
// grows, ours always below direct translation; our methods dominate the
// stable-link-ratio plot, Hungarian is worst by a wide margin.
#include "bench_common.h"

int main() {
  using namespace anr;
  using namespace anr::bench;
  Stopwatch sw;
  for (int id : {1, 2, 4, 5}) {
    Scenario sc = scenario(id);
    print_scenario_banner(sc);
    MethodSuite suite(sc);
    print_sweep(suite.sweep(paper_separations()));
    std::cout << "\n";
  }
  std::cout << "bench_fig3 total " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
