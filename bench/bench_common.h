// Shared harness for the paper-figure benches.
//
// Each figure bench sweeps the M1–M2 separation (10x..100x the
// communication range, as in Figs. 3–5), runs all four methods — our
// method (a) (max stable links), our method (b) (min distance), direct
// translation, Hungarian — and prints the total-moving-distance and
// stable-link-ratio series the paper plots. Distances are reported as
// ratios to the Hungarian method (the minimum-distance lower bound),
// which is how the paper's fourth-row plots are normalized.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace anr::bench {

/// Per-(method, separation) measured outcome.
struct MethodRun {
  double total_distance = 0.0;
  double stable_link_ratio = 0.0;
  bool global_connectivity = false;
};

struct SweepResult {
  std::vector<double> separations;
  std::vector<MethodRun> ours_a, ours_b, direct, hungarian;
};

/// All four planners for one scenario, built once and reused across the
/// separation sweep.
class MethodSuite {
 public:
  explicit MethodSuite(const Scenario& sc, int grid_points = 900,
                       int cvt_samples = 15000, int adjust_steps = 35)
      : sc_(sc) {
    PlannerOptions oa;
    oa.mesher.target_grid_points = grid_points;
    oa.cvt_samples = cvt_samples;
    oa.max_adjust_steps = adjust_steps;
    PlannerOptions ob = oa;
    ob.objective = MarchObjective::kMinDistance;
    ours_a_ = std::make_unique<MarchPlanner>(sc.m1, sc.m2_shape, sc.comm_range, oa);
    ours_b_ = std::make_unique<MarchPlanner>(sc.m1, sc.m2_shape, sc.comm_range, ob);
    direct_ = std::make_unique<DirectTranslationPlanner>(sc.m1, sc.m2_shape,
                                                         sc.comm_range,
                                                         sc.num_robots);
    hungarian_ = std::make_unique<HungarianMarchPlanner>(
        sc.m1, sc.m2_shape, sc.comm_range, sc.num_robots);
    deploy_ = optimal_coverage_positions(sc.m1, sc.num_robots, /*seed=*/1,
                                         uniform_density())
                  .positions;
  }

  /// Runs every method at each separation (in communication ranges).
  SweepResult sweep(const std::vector<double>& separations,
                    int time_samples = 120) const {
    SweepResult out;
    out.separations = separations;
    for (double sep : separations) {
      Vec2 off = sc_.m1.centroid() +
                 Vec2{sep * sc_.comm_range, 0.0} - sc_.m2_shape.centroid();
      out.ours_a.push_back(measure(ours_a_->plan(deploy_, off), time_samples));
      out.ours_b.push_back(measure(ours_b_->plan(deploy_, off), time_samples));
      out.direct.push_back(measure(direct_->plan(deploy_, off), time_samples));
      out.hungarian.push_back(
          measure(hungarian_->plan(deploy_, off), time_samples));
    }
    return out;
  }

  const std::vector<Vec2>& deployment() const { return deploy_; }
  const Scenario& scenario() const { return sc_; }

  MethodRun measure(const MarchPlan& plan, int time_samples) const {
    TransitionMetrics m = simulate_transition(plan.trajectories, sc_.comm_range,
                                              plan.transition_end, time_samples);
    return MethodRun{m.total_distance, m.stable_link_ratio,
                     m.global_connectivity};
  }

 private:
  Scenario sc_;
  std::unique_ptr<MarchPlanner> ours_a_;
  std::unique_ptr<MarchPlanner> ours_b_;
  std::unique_ptr<DirectTranslationPlanner> direct_;
  std::unique_ptr<HungarianMarchPlanner> hungarian_;
  std::vector<Vec2> deploy_;
};

/// Prints the scenario banner (so the reader can audit the substituted
/// geometry against the paper's reported areas).
inline void print_scenario_banner(const Scenario& sc) {
  std::cout << "== " << sc.name << ": " << sc.description << "\n"
            << "   M1 area " << fmt(sc.m1.area(), 0) << " m^2 ("
            << sc.m1.holes().size() << " holes), M2 area "
            << fmt(sc.m2_shape.area(), 0) << " m^2 ("
            << sc.m2_shape.holes().size() << " holes), robots "
            << sc.num_robots << ", r_c " << sc.comm_range << " m\n";
}

/// Prints the two per-figure tables (distance ratio to Hungarian, and L).
inline void print_sweep(const SweepResult& r) {
  TextTable dist;
  dist.header({"sep (x r_c)", "Hungarian D (m)", "ours(a)/Hun", "ours(b)/Hun",
               "direct/Hun"});
  for (std::size_t i = 0; i < r.separations.size(); ++i) {
    double h = r.hungarian[i].total_distance;
    dist.row({fmt(r.separations[i], 0), fmt(h, 0),
              fmt(r.ours_a[i].total_distance / h),
              fmt(r.ours_b[i].total_distance / h),
              fmt(r.direct[i].total_distance / h)});
  }
  std::cout << "-- total moving distance (ratio to Hungarian lower bound)\n"
            << dist.str();

  TextTable links;
  links.header({"sep (x r_c)", "ours(a) L", "ours(b) L", "direct L",
                "Hungarian L"});
  for (std::size_t i = 0; i < r.separations.size(); ++i) {
    links.row({fmt(r.separations[i], 0), fmt_pct(r.ours_a[i].stable_link_ratio),
               fmt_pct(r.ours_b[i].stable_link_ratio),
               fmt_pct(r.direct[i].stable_link_ratio),
               fmt_pct(r.hungarian[i].stable_link_ratio)});
  }
  std::cout << "-- total stable link ratio L\n" << links.str();
}

/// Default separation sweep of the paper's figures.
inline std::vector<double> paper_separations() {
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

}  // namespace anr::bench
