// Reproduces Fig. 2: the algorithm pipeline, stage by stage, on the
// scenario-3 geometry (base M1 -> flower-pond M2).
//
// The paper's figure is six pictures; we print the quantitative state of
// each stage: connectivity graph, extracted triangulation T, harmonic map
// of T, gridded M2, harmonic map of M2, mapped deployment, and the
// adjusted optimal-coverage deployment, plus which links survived (the
// figure's blue vs red edges).
#include <iostream>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

int main() {
  using namespace anr;
  Stopwatch sw;
  Scenario sc = scenario(3);
  std::cout << "== Fig. 2 pipeline on " << sc.description << "\n";

  // (a) connectivity graph of the deployment in M1.
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  auto links = communication_links(deploy, sc.comm_range);
  std::cout << "(a) connectivity graph: " << deploy.size() << " robots, "
            << links.size() << " links, connected="
            << net::is_connected(deploy, sc.comm_range) << "\n";

  // (b) triangulation T extracted from the connectivity graph.
  auto extraction = extract_triangulation_distributed(deploy, sc.comm_range);
  std::cout << "(b) triangulation T (distributed extraction, "
            << extraction.messages << " messages): "
            << mesh_stats(extraction.mesh).summary() << "\n";

  // (c) harmonic map of T to the unit disk (distributed protocols).
  auto tmap = distributed_harmonic_disk_map(extraction.mesh);
  std::cout << "(c) harmonic map of T: converged=" << tmap.map.converged
            << ", embedding quality "
            << fmt(tmap.map.embedding_quality(extraction.mesh), 4)
            << ", boundary-walk msgs " << tmap.boundary_messages
            << ", relax msgs " << tmap.relax_messages << " ("
            << tmap.relax_rounds << " rounds)\n";

  // (d) gridded M2 and its harmonic map.
  MesherOptions mopt;
  mopt.target_grid_points = 1200;
  FoiMesh m2_mesh = mesh_foi(sc.m2_shape, mopt);
  HoleFillResult filled = fill_holes(m2_mesh.mesh);
  DiskMap m2_map = harmonic_disk_map(filled.mesh);
  std::cout << "(d) M2 grid: " << mesh_stats(m2_mesh.mesh).summary() << "\n"
            << "    holes filled: " << filled.holes_filled
            << ", M2 disk map quality "
            << fmt(m2_map.embedding_quality(filled.mesh), 4) << "\n";

  // (e) robots redeployed along the induced map.
  PlannerOptions popt;
  popt.mesher.target_grid_points = 1200;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, popt);
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(deploy, off);
  double r2 = sc.comm_range * sc.comm_range;
  std::size_t preserved = 0;
  for (auto [i, j] : links) {
    if (distance2(plan.mapped_targets[static_cast<std::size_t>(i)],
                  plan.mapped_targets[static_cast<std::size_t>(j)]) <= r2) {
      ++preserved;
    }
  }
  std::cout << "(e) redeployed via rotation " << fmt(plan.rotation_angle)
            << " rad: " << preserved << "/" << links.size()
            << " links preserved (blue), " << links.size() - preserved
            << " new/broken (red); " << plan.snapped_targets
            << " hole-snapped targets, " << plan.repaired_robots
            << " repaired robots\n";

  // (f) minor adjustment to optimal coverage positions.
  auto metrics = simulate_transition(plan.trajectories, sc.comm_range,
                                     plan.transition_end, 160);
  std::cout << "(f) after " << plan.adjust_steps
            << " connectivity-safe Lloyd steps: adjustment distance "
            << fmt(metrics.adjustment_distance, 0) << " m (of "
            << fmt(metrics.total_distance, 0) << " total), measured L = "
            << fmt_pct(metrics.stable_link_ratio) << ", C = "
            << (metrics.global_connectivity ? "Y" : "N") << "\n";

  std::cout << "bench_pipeline total " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
