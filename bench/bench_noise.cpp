// Localization-noise robustness (beyond the paper, which assumes exact
// GPS — Sec. II). Each robot plans from a noisy position estimate but
// executes relative to its true pose: the executed trajectory is the
// planned one rigidly shifted by its own estimation error. The sweep
// shows how gracefully the stable-link ratio and the connectivity
// guarantee degrade with GPS error.
#include "bench_common.h"

namespace {

using namespace anr;

Trajectory shifted(const Trajectory& t, Vec2 delta) {
  Trajectory out;
  for (std::size_t i = 0; i < t.num_waypoints(); ++i) {
    out.append(t.waypoints()[i] + delta, t.times()[i]);
  }
  return out;
}

}  // namespace

int main() {
  using namespace anr;
  using namespace anr::bench;
  Stopwatch sw;

  Scenario sc = scenario(1);
  print_scenario_banner(sc);
  auto truth = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                          uniform_density())
                   .positions;
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  PlannerOptions opt;
  opt.mesher.target_grid_points = 900;
  opt.cvt_samples = 15000;
  opt.max_adjust_steps = 35;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);

  TextTable table;
  table.header({"GPS sigma (m)", "L", "C", "D (m)", "repaired"});
  for (double sigma : {0.0, 2.0, 5.0, 10.0, 20.0}) {
    Rng rng(1234);
    std::vector<Vec2> believed(truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      believed[i] = truth[i] + Vec2{rng.normal(sigma), rng.normal(sigma)};
    }
    MarchPlan plan = planner.plan(believed, off);
    // Execute: each robot flies the planned path shifted by its own error.
    std::vector<Trajectory> executed;
    executed.reserve(truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      executed.push_back(shifted(plan.trajectories[i], truth[i] - believed[i]));
    }
    auto m = simulate_transition(executed, sc.comm_range, plan.transition_end,
                                 140);
    table.row({fmt(sigma, 0), fmt_pct(m.stable_link_ratio),
               m.global_connectivity ? "Y" : "N", fmt(m.total_distance, 0),
               std::to_string(plan.repaired_robots)});
  }
  std::cout << "== method (a) under localization noise\n"
            << table.str() << "bench_noise total " << fmt(sw.seconds(), 1)
            << " s\n";
  return 0;
}
