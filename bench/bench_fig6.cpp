// Reproduces Fig. 6: adjusted deployment density (Sec. IV-E).
//
// "We add the requirement that the closer to the hole, the more mobile
// robots are needed" — the modified scenario 3/4: 144 robots redeploy
// from the base M1 into the flower-pond FoI with a hole-proximity density
// encoded into the Voronoi centroid computation.
//
// The figure is qualitative (a picture of the denser ring around the
// pond); we report the quantitative equivalent: robot counts by distance
// band from the hole, uniform vs density-weighted, plus nearest-neighbor
// spacing statistics in the innermost band.
#include <algorithm>

#include "bench_common.h"

int main() {
  using namespace anr;
  using namespace anr::bench;
  Stopwatch sw;

  Scenario sc = scenario(3);
  print_scenario_banner(sc);
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;

  auto run_with_density = [&](DensityFn density) {
    PlannerOptions opt;
    opt.mesher.target_grid_points = 900;
    opt.cvt_samples = 15000;
    opt.max_adjust_steps = 40;
    opt.density = std::move(density);
    MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
    return planner.plan(deploy, off);
  };

  MarchPlan uniform = run_with_density(uniform_density());
  MarchPlan weighted =
      run_with_density(hole_proximity_density(sc.m2_shape, 8.0, 60.0));

  FieldOfInterest m2 = sc.m2_shape.translated(off);
  auto band_counts = [&](const std::vector<Vec2>& pts) {
    std::vector<int> bands(5, 0);  // <50, <100, <150, <200, >=200 m from hole
    for (Vec2 p : pts) {
      double d = m2.distance_to_nearest_hole(p);
      int b = std::min(4, static_cast<int>(d / 50.0));
      ++bands[static_cast<std::size_t>(b)];
    }
    return bands;
  };
  auto u = band_counts(uniform.final_positions);
  auto w = band_counts(weighted.final_positions);

  TextTable table;
  table.header({"distance to hole", "uniform density", "hole-proximity density"});
  const char* labels[5] = {"0-50 m", "50-100 m", "100-150 m", "150-200 m",
                           ">= 200 m"};
  for (int b = 0; b < 5; ++b) {
    table.row({labels[b], std::to_string(u[static_cast<std::size_t>(b)]),
               std::to_string(w[static_cast<std::size_t>(b)])});
  }
  std::cout << "== Fig. 6: robots by distance band from the pond hole\n"
            << table.str();

  // Mean nearest-neighbor spacing inside vs outside the 100 m ring.
  auto mean_nn = [&](const std::vector<Vec2>& pts, bool near) {
    double sum = 0.0;
    int cnt = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      bool is_near = m2.distance_to_nearest_hole(pts[i]) < 100.0;
      if (is_near != near) continue;
      double best = 1e300;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (i != j) best = std::min(best, distance(pts[i], pts[j]));
      }
      sum += best;
      ++cnt;
    }
    return cnt > 0 ? sum / cnt : 0.0;
  };
  TextTable spacing;
  spacing.header({"deployment", "mean NN spacing near hole (<100m)",
                  "far from hole"});
  spacing.row({"uniform", fmt(mean_nn(uniform.final_positions, true), 1),
               fmt(mean_nn(uniform.final_positions, false), 1)});
  spacing.row({"hole-proximity", fmt(mean_nn(weighted.final_positions, true), 1),
               fmt(mean_nn(weighted.final_positions, false), 1)});
  std::cout << spacing.str() << "bench_fig6 total " << fmt(sw.seconds(), 1)
            << " s\n";
  return 0;
}
