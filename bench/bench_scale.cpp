// Scaling curve: full-pipeline plan latency vs swarm size at fixed
// density (ROADMAP item 2; n far beyond the paper's fixed 144).
//
// Geometry: scenario 1's M1/M2 shapes scaled about their centroids by
// sqrt(n/144), so robot density (and therefore lattice spacing and the
// unit-disk degree at r_c) is constant across the sweep — growth in plan
// time is algorithmic, not densification. The deployment is the
// triangular lattice over the scaled M1 (connected at r_c by
// construction: spacing ~50 m vs r_c = 80 m), and M2 sits a fixed
// 15 x r_c beyond the two bounding boxes.
//
// Output is machine-readable JSON (the committed BENCH_scale.json
// baseline): one row per n with the end-to-end plan latency and the
// per-stage span breakdown read back from the obs registry
// (anr_plan_stage_seconds sums). scripts/bench_check.sh gates the
// structure and the sub-quadratic growth of the curve; absolute times
// are reported, never gated (CI hardware varies).
//
// Flags:
//   --max-n N            largest swarm size to run (default 100000)
//   --out FILE           also write the JSON document to FILE
//   --budget-seconds S   exit nonzero if any plan exceeds S seconds
//                        (the CI scale-smoke job's wall-clock guard)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "obs/metrics.h"

namespace {

using namespace anr;

FieldOfInterest scaled_foi(const FieldOfInterest& foi, double s) {
  Vec2 c = foi.centroid();
  auto scale_poly = [&](const Polygon& p) {
    std::vector<Vec2> pts;
    pts.reserve(p.size());
    for (Vec2 q : p.points()) pts.push_back(c + (q - c) * s);
    return Polygon(std::move(pts));
  };
  std::vector<Polygon> holes;
  holes.reserve(foi.holes().size());
  for (const Polygon& h : foi.holes()) holes.push_back(scale_poly(h));
  return FieldOfInterest(scale_poly(foi.outer()), std::move(holes));
}

// Triangular-lattice deployment of exactly n robots (spacing tightened
// until the lattice holds n points; truncation keeps the row-major prefix,
// which stays connected at r_c since consecutive rows are adjacent).
std::vector<Vec2> lattice_deployment(const FieldOfInterest& m1, int n) {
  double h = std::sqrt(2.0 * m1.area() /
                       (std::sqrt(3.0) * static_cast<double>(n)));
  std::vector<Vec2> pts = m1.lattice_points(h);
  for (int guard = 0; static_cast<int>(pts.size()) < n && guard < 64; ++guard) {
    h *= 0.97;
    pts = m1.lattice_points(h);
  }
  if (static_cast<int>(pts.size()) > n) pts.resize(static_cast<std::size_t>(n));
  return pts;
}

struct Row {
  int n = 0;
  int robots = 0;
  int grid_points = 0;
  int cvt_samples = 0;
  bool deploy_connected = false;
  bool harmonic_multigrid = false;
  double build_seconds = 0.0;
  double plan_seconds = 0.0;
  double stage_extraction = 0.0;
  double stage_harmonic = 0.0;
  double stage_rotation = 0.0;
  double stage_interpolation = 0.0;
  double stage_adjustment = 0.0;
};

std::string row_json(const Row& r) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"n\": %d, \"robots\": %d, \"grid_points\": %d, "
      "\"cvt_samples\": %d, \"deploy_connected\": %s, "
      "\"harmonic_multigrid\": %s, \"planner_build_seconds\": %.6f, "
      "\"plan_seconds\": %.6f, \"stages\": {\"extraction\": %.6f, "
      "\"harmonic_map\": %.6f, \"rotation_search\": %.6f, "
      "\"interpolation\": %.6f, \"adjustment\": %.6f}}",
      r.n, r.robots, r.grid_points, r.cvt_samples,
      r.deploy_connected ? "true" : "false",
      r.harmonic_multigrid ? "true" : "false", r.build_seconds, r.plan_seconds,
      r.stage_extraction, r.stage_harmonic, r.stage_rotation,
      r.stage_interpolation, r.stage_adjustment);
  return buf;
}

double stage_sum(obs::Registry& reg, const char* stage) {
  return reg.histogram("anr_plan_stage_seconds", {{"stage", stage}})->sum();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace anr;
  using namespace anr::bench;

  int max_n = 100000;
  double budget_seconds = -1.0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-n") == 0 && i + 1 < argc) {
      max_n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--budget-seconds") == 0 && i + 1 < argc) {
      budget_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--max-n N] [--out FILE] "
                   "[--budget-seconds S]\n");
      return 2;
    }
  }

  Scenario sc = scenario(1);
  const double r_c = sc.comm_range;
  const double base_n = static_cast<double>(sc.num_robots);
  const double density = base_n / sc.m1.area();

  std::vector<int> sizes;
  for (int n : {144, 1000, 2048, 10000, 100000}) {
    if (n <= max_n) sizes.push_back(n);
  }

  std::vector<Row> rows;
  bool over_budget = false;
  for (int n : sizes) {
    const double s = std::sqrt(static_cast<double>(n) / base_n);
    FieldOfInterest m1 = scaled_foi(sc.m1, s);
    FieldOfInterest m2 = scaled_foi(sc.m2_shape, s);
    std::vector<Vec2> deploy = lattice_deployment(m1, n);

    Row row;
    row.n = n;
    row.robots = static_cast<int>(deploy.size());
    row.deploy_connected = net::is_connected(deploy, r_c);

    PlannerOptions opt;
    opt.mesher.target_grid_points = std::max(350, n);
    opt.cvt_samples = std::max(4000, 2 * n);
    opt.max_adjust_steps = 3;
    row.grid_points = opt.mesher.target_grid_points;
    row.cvt_samples = opt.cvt_samples;

    // Clear separation at every scale: 15 x r_c of gap beyond the two
    // bounding boxes (a fixed multiple of the shapes themselves would
    // change straight-line distance relative to r_c as n grows).
    double gap = (m1.bbox().width() + m2.bbox().width()) / 2.0 + 15.0 * r_c;
    Vec2 off = m1.centroid() + Vec2{gap, 0.0} - m2.centroid();

    obs::Registry reg;
    Stopwatch build_sw;
    MarchPlanner planner(m1, m2, r_c, opt);
    row.build_seconds = build_sw.seconds();
    planner.set_observer(&reg);

    Stopwatch plan_sw;
    MarchPlan plan = planner.plan(deploy, off);
    row.plan_seconds = plan_sw.seconds();
    ANR_CHECK(plan.final_positions.size() == deploy.size());

    row.stage_extraction = stage_sum(reg, "extraction");
    row.stage_harmonic = stage_sum(reg, "harmonic_map");
    row.stage_rotation = stage_sum(reg, "rotation_search");
    row.stage_interpolation = stage_sum(reg, "interpolation");
    row.stage_adjustment = stage_sum(reg, "adjustment");
    row.harmonic_multigrid =
        reg.counter("anr_harmonic_multigrid_total")->value() > 0;
    rows.push_back(row);

    std::fprintf(stderr,
                 "n=%-7d robots=%-7d build=%.3fs plan=%.3fs "
                 "(extract %.3f, harmonic %.3f, rotation %.3f, "
                 "interp %.3f, adjust %.3f) mg=%d connected=%d\n",
                 row.n, row.robots, row.build_seconds, row.plan_seconds,
                 row.stage_extraction, row.stage_harmonic, row.stage_rotation,
                 row.stage_interpolation, row.stage_adjustment,
                 row.harmonic_multigrid ? 1 : 0, row.deploy_connected ? 1 : 0);
    if (budget_seconds > 0.0 && row.plan_seconds > budget_seconds) {
      over_budget = true;
    }
  }

  std::ostringstream doc;
  doc << "{\n"
      << "  \"bench\": \"scale\",\n"
      << "  \"comm_range\": " << r_c << ",\n"
      << "  \"density_robots_per_m2\": " << density << ",\n"
      << "  \"separation_gap_cr\": 15.0,\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    doc << row_json(rows[i]) << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  doc << "  ]\n}\n";

  std::fputs(doc.str().c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << doc.str();
  }

  if (over_budget) {
    std::fprintf(stderr, "FAIL: a plan exceeded the %.1fs budget\n",
                 budget_seconds);
    return 1;
  }
  return 0;
}
