// Ablations of the design choices DESIGN.md Sec. 5 calls out. Every row
// runs the full pipeline on scenario 3 (flower-pond hole, 20x r_c
// separation) and reports measured L, total distance, and C.
//
//   A. Harmonic interior weights: uniform (paper) vs mean-value.
//   B. Boundary parametrization: uniform-per-hop (paper) vs chord-length.
//   C. Rotation search: paper depth-4 binary vs deeper vs exhaustive.
//   D. Connectivity-safe adjustment: on (paper) vs off.
//   E. Adjustment engine: grid CVT vs the paper's two-hop local Voronoi.
#include "bench_common.h"

namespace {

using namespace anr;
using namespace anr::bench;

struct Row {
  std::string name;
  double l = 0.0;
  double d = 0.0;
  bool c = false;
  double pred_l = 0.0;
};

Row run(const std::string& name, const Scenario& sc,
        const std::vector<Vec2>& deploy, Vec2 off, PlannerOptions opt) {
  opt.mesher.target_grid_points = 900;
  opt.cvt_samples = 15000;
  opt.max_adjust_steps = 35;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, std::move(opt));
  MarchPlan plan = planner.plan(deploy, off);
  TransitionMetrics m = simulate_transition(plan.trajectories, sc.comm_range,
                                            plan.transition_end, 150);
  return Row{name, m.stable_link_ratio, m.total_distance,
             m.global_connectivity, plan.predicted_link_ratio};
}

}  // namespace

int main() {
  Stopwatch sw;
  Scenario sc = scenario(3);
  print_scenario_banner(sc);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();

  std::vector<Row> rows;
  {
    PlannerOptions base;
    rows.push_back(run("baseline (paper defaults)", sc, deploy, off, base));
  }
  {
    PlannerOptions o;
    o.disk.weights = HarmonicWeights::kMeanValue;
    rows.push_back(run("A: mean-value weights", sc, deploy, off, o));
  }
  {
    PlannerOptions o;
    o.disk.spacing = BoundarySpacing::kChordLength;
    rows.push_back(run("B: chord-length boundary", sc, deploy, off, o));
  }
  {
    PlannerOptions o;
    o.rotation.initial_partitions = 8;
    o.rotation.depth = 6;
    rows.push_back(run("C: rotation 8-part depth-6", sc, deploy, off, o));
  }
  {
    PlannerOptions o;
    o.exhaustive_rotation = true;
    rows.push_back(run("C: rotation exhaustive (360)", sc, deploy, off, o));
  }
  {
    PlannerOptions o;
    o.safe_adjustment = false;
    rows.push_back(run("D: unsafe adjustment", sc, deploy, off, o));
  }
  {
    PlannerOptions o;
    o.adjustment = AdjustmentEngine::kLocalVoronoi;
    rows.push_back(run("E: two-hop local Voronoi", sc, deploy, off, o));
  }
  {
    PlannerOptions o;
    o.distributed = true;
    rows.push_back(run("F: distributed protocols", sc, deploy, off, o));
  }
  {
    PlannerOptions o;
    o.extraction = ExtractionMode::kGabriel;
    rows.push_back(run("G: Gabriel-graph extraction", sc, deploy, off, o));
  }

  TextTable table;
  table.header({"variant", "predicted L", "measured L", "D (m)", "C"});
  for (const Row& r : rows) {
    table.row({r.name, fmt_pct(r.pred_l), fmt_pct(r.l), fmt(r.d, 0),
               r.c ? "Y" : "N"});
  }
  std::cout << table.str() << "bench_ablation total " << fmt(sw.seconds(), 1)
            << " s\n";
  return 0;
}
