// Hot-path micro-benchmarks for the allocation-free planning pass
// (google-benchmark). Tracks the structures the rotation search and the
// connectivity-safe adjustment hammer per plan:
//
//   - GridIndex build + radius queries, against an in-file copy of the
//     previous hash-map implementation (BM_*Legacy) so the CSR speedup
//     stays measurable after the old code is gone;
//   - OverlapInterpolator::map_all at a fixed theta (pure warm-start) and
//     across a theta sweep (the rotation-search access pattern), with and
//     without caller-owned buffers;
//   - one full MarchPlanner::plan() with the connectivity-safe adjustment
//     enabled.
//
// Baseline workflow: scripts/bench_check.sh runs this with
// --benchmark_format=json and diffs against BENCH_hotpath.json (±25%).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "anr/anr.h"

namespace {

using namespace anr;

std::vector<Vec2> random_points(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  return pts;
}

// --- legacy hash-map grid (the pre-CSR implementation), kept as the
// comparison baseline for the speedup claims -------------------------------

class LegacyGridIndex {
 public:
  LegacyGridIndex(std::vector<Vec2> pts, double cell)
      : pts_(std::move(pts)), cell_(cell) {
    for (std::size_t i = 0; i < pts_.size(); ++i) {
      int cx = 0, cy = 0;
      cell_of(pts_[i], cx, cy);
      cells_[key(cx, cy)].push_back(static_cast<int>(i));
    }
  }

  std::vector<int> query_radius(Vec2 q, double radius) const {
    std::vector<int> out;
    int cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;
    cell_of(q - Vec2{radius, radius}, cx0, cy0);
    cell_of(q + Vec2{radius, radius}, cx1, cy1);
    double r2 = radius * radius;
    for (int cx = cx0; cx <= cx1; ++cx) {
      for (int cy = cy0; cy <= cy1; ++cy) {
        auto it = cells_.find(key(cx, cy));
        if (it == cells_.end()) continue;
        for (int i : it->second) {
          if (distance2(pts_[static_cast<std::size_t>(i)], q) <= r2 + 1e-12) {
            out.push_back(i);
          }
        }
      }
    }
    return out;
  }

 private:
  static std::int64_t key(int cx, int cy) {
    return (static_cast<std::int64_t>(cx) << 32) ^
           (static_cast<std::int64_t>(cy) & 0xffffffffLL);
  }
  void cell_of(Vec2 p, int& cx, int& cy) const {
    cx = static_cast<int>(std::floor(p.x / cell_));
    cy = static_cast<int>(std::floor(p.y / cell_));
  }

  std::vector<Vec2> pts_;
  double cell_;
  std::unordered_map<std::int64_t, std::vector<int>> cells_;
};

constexpr double kRadius = 40.0;

void BM_GridIndexBuild(benchmark::State& state) {
  auto pts = random_points(static_cast<int>(state.range(0)), 7);
  GridIndex index;  // rebuilt in place: steady-state build cost
  for (auto _ : state) {
    index.rebuild(pts, kRadius);
    benchmark::DoNotOptimize(index);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GridIndexBuild)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_GridIndexBuildLegacy(benchmark::State& state) {
  auto pts = random_points(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    LegacyGridIndex index(pts, kRadius);
    benchmark::DoNotOptimize(index);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GridIndexBuildLegacy)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_GridIndexRadiusQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto pts = random_points(n, 7);
  GridIndex index(pts, kRadius);
  std::vector<int> hits;
  std::size_t total = 0, qi = 0;
  for (auto _ : state) {
    index.query_radius_into(pts[qi], kRadius, hits);
    total += hits.size();
    qi = (qi + 1) % pts.size();
  }
  state.counters["hits"] = static_cast<double>(total) /
                           static_cast<double>(state.iterations());
}
BENCHMARK(BM_GridIndexRadiusQuery)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GridIndexRadiusQueryLegacy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto pts = random_points(n, 7);
  LegacyGridIndex index(pts, kRadius);
  std::size_t total = 0, qi = 0;
  for (auto _ : state) {
    auto hits = index.query_radius(pts[qi], kRadius);
    total += hits.size();
    qi = (qi + 1) % pts.size();
  }
  state.counters["hits"] = static_cast<double>(total) /
                           static_cast<double>(state.iterations());
}
BENCHMARK(BM_GridIndexRadiusQueryLegacy)->Arg(256)->Arg(1024)->Arg(4096);

void BM_UnitDiskAdjacency(benchmark::State& state) {
  auto pts = random_points(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::unit_disk_adjacency(pts, 80.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UnitDiskAdjacency)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

// --- interpolator ----------------------------------------------------------

struct MapAllFixture {
  FieldOfInterest m2;
  HoleFillResult filled;
  DiskMap disk;
  OverlapInterpolator interp;
  std::vector<Vec2> robot_disk;

  static MapAllFixture make() {
    Scenario sc = scenario(1);
    MesherOptions mo;
    mo.target_grid_points = 600;
    FoiMesh mesh = mesh_foi(sc.m2_shape, mo);
    HoleFillResult filled = fill_holes(mesh.mesh);
    DiskMap disk = harmonic_disk_map(filled.mesh);
    OverlapInterpolator interp(filled, disk);
    // Robot disk positions: T's own harmonic image for a realistic spread.
    auto deploy =
        optimal_coverage_positions(sc.m1, 144, 1, uniform_density()).positions;
    auto ext = extract_triangulation(deploy, sc.comm_range);
    HoleFillResult t_filled = fill_holes(ext.mesh);
    DiskMap t_disk = harmonic_disk_map(t_filled.mesh);
    std::vector<Vec2> robot_disk;
    for (std::size_t v = 0; v < ext.mesh.num_vertices(); ++v) {
      robot_disk.push_back(t_disk.disk_pos[v]);
    }
    return MapAllFixture{sc.m2_shape, std::move(filled), std::move(disk),
                         std::move(interp), std::move(robot_disk)};
  }
};

MapAllFixture& map_fixture() {
  static MapAllFixture f = MapAllFixture::make();
  return f;
}

void BM_MapAllFixedTheta(benchmark::State& state) {
  MapAllFixture& f = map_fixture();
  std::vector<int> hints;
  std::vector<MappedTarget> out;
  for (auto _ : state) {
    f.interp.map_all_into(f.robot_disk, 0.37, hints, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["robots"] = static_cast<double>(f.robot_disk.size());
}
BENCHMARK(BM_MapAllFixedTheta);

void BM_MapAllVaryingTheta(benchmark::State& state) {
  // The rotation-search pattern: consecutive probes at nearby angles,
  // hint cache carried across probes.
  MapAllFixture& f = map_fixture();
  std::vector<int> hints;
  std::vector<MappedTarget> out;
  double theta = 0.0;
  for (auto _ : state) {
    theta += 0.02;
    if (theta > 6.28) theta = 0.0;
    f.interp.map_all_into(f.robot_disk, theta, hints, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MapAllVaryingTheta);

void BM_MapAllColdNoHints(benchmark::State& state) {
  // Reference: the pre-optimization pattern (fresh buffers, bucket scan
  // for every robot on every probe).
  MapAllFixture& f = map_fixture();
  double theta = 0.0;
  for (auto _ : state) {
    theta += 0.02;
    if (theta > 6.28) theta = 0.0;
    std::vector<MappedTarget> out;
    out.reserve(f.robot_disk.size());
    for (Vec2 z : f.robot_disk) out.push_back(f.interp.map_point(z.rotated(theta)));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MapAllColdNoHints);

// --- intra-plan parallelism -------------------------------------------------
// The serial-vs-parallel hot paths behind common/task_arena. Arg = arena
// thread count; results are byte-identical across Args (asserted by
// tests/test_parallel_determinism) so these benches track only latency.
// On a single-core host the >1-thread Args measure scheduling overhead,
// not speedup.

void BM_HarmonicSweepThreads(benchmark::State& state) {
  MapAllFixture& f = map_fixture();
  set_arena_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(harmonic_disk_map(f.filled.mesh));
  }
  set_arena_threads(0);
  state.counters["vertices"] =
      static_cast<double>(f.filled.mesh.num_vertices());
}
BENCHMARK(BM_HarmonicSweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MapAllThreads(benchmark::State& state) {
  MapAllFixture& f = map_fixture();
  set_arena_threads(static_cast<int>(state.range(0)));
  std::vector<int> hints;
  std::vector<MappedTarget> out;
  double theta = 0.0;
  for (auto _ : state) {
    theta += 0.02;
    if (theta > 6.28) theta = 0.0;
    f.interp.map_all_into(f.robot_disk, theta, hints, out);
    benchmark::DoNotOptimize(out.data());
  }
  set_arena_threads(0);
}
BENCHMARK(BM_MapAllThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_RotationSearchThreads(benchmark::State& state) {
  // The planner's candidate-evaluation pattern: one batch objective call
  // per probe round, candidates partitioned across workers with
  // per-worker interpolation scratch.
  MapAllFixture& f = map_fixture();
  set_arena_threads(static_cast<int>(state.range(0)));
  struct Slot {
    std::vector<int> hints;
    std::vector<MappedTarget> out;
  };
  RotationBatchObjective batch = [&](const std::vector<double>& thetas,
                                     std::vector<double>& values) {
    values.resize(thetas.size());
    const std::size_t threads =
        static_cast<std::size_t>(std::max(1, arena_threads()));
    const std::size_t grain = (thetas.size() + threads - 1) / threads;
    std::vector<Slot> slots((thetas.size() + grain - 1) / grain);
    parallel_chunks(thetas.size(), grain,
                    [&](std::size_t c, std::size_t b, std::size_t e) {
                      Slot& s = slots[c];
                      for (std::size_t i = b; i < e; ++i) {
                        f.interp.map_all_into(f.robot_disk, thetas[i],
                                              s.hints, s.out);
                        double sum = 0.0;
                        for (const MappedTarget& t : s.out) {
                          sum -= t.world.x * t.world.x +
                                 t.world.y * t.world.y;
                        }
                        values[i] = sum;
                      }
                    });
  };
  RotationSearchOptions opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search_rotation(batch, opt));
  }
  set_arena_threads(0);
}
BENCHMARK(BM_RotationSearchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- fast marching ---------------------------------------------------------
// The terrain-routing hot path: one narrow-band sweep to exhaustion per
// robot start, then per-goal gradient-descent extraction. Propagation is
// O(N log N) in cells; the router parallelizes over robots with
// byte-identical fields at any thread count (tests/test_fmm.cpp), so the
// thread bench tracks only latency.

CostField fmm_field(int max_cells) {
  BBox bb;
  bb.expand({0.0, 0.0});
  bb.expand({1000.0, 1000.0});
  CostFieldSpec spec;
  spec.bounds = bb;
  spec.max_cells = max_cells;
  spec.slope_weight = 2.5;
  spec.uphill_penalty = 0.4;
  spec.mud.push_back({{500.0, 620.0}, 90.0, 3.0});
  spec.keep_out.push_back(make_rect({420.0, 430.0}, {580.0, 540.0}));
  return CostField::build(spec,
                          HeightField::rolling(bb, 10, 35.0, 160.0, 99));
}

void BM_FastMarchPropagation(benchmark::State& state) {
  CostField field = fmm_field(static_cast<int>(state.range(0)));
  const Vec2 src{80.0, 80.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast_march(field, src));
  }
  state.counters["cells"] = static_cast<double>(field.cell_count());
  state.SetComplexityN(field.cell_count());
}
BENCHMARK(BM_FastMarchPropagation)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_GeodesicExtraction(benchmark::State& state) {
  CostField field = fmm_field(static_cast<int>(state.range(0)));
  const Vec2 src{80.0, 80.0};
  const Vec2 goal{920.0, 920.0};
  FastMarchResult fm = fast_march(field, src);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_geodesic(field, fm, src, goal));
  }
}
BENCHMARK(BM_GeodesicExtraction)->Arg(64)->Arg(256);

void BM_TerrainRouterSolveThreads(benchmark::State& state) {
  TrajectoryOptions topt;
  topt.motion = MotionModel::kTerrainGeodesic;
  BBox bb;
  bb.expand({0.0, 0.0});
  bb.expand({1000.0, 1000.0});
  topt.terrain.terrain = HeightField::rolling(bb, 10, 35.0, 160.0, 99);
  topt.terrain.slope_weight = 2.5;
  auto starts = random_points(32, 13);
  set_arena_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TerrainRouter router(topt, bb, 80.0);
    router.solve(starts);
    benchmark::DoNotOptimize(router.stats().solves);
  }
  set_arena_threads(0);
}
BENCHMARK(BM_TerrainRouterSolveThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- full plan -------------------------------------------------------------

void BM_FullPlanWithAdjustment(benchmark::State& state) {
  Scenario sc = scenario(1);
  PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  auto deploy =
      optimal_coverage_positions(sc.m1, 100, 1, uniform_density()).positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(deploy, offset));
  }
}
BENCHMARK(BM_FullPlanWithAdjustment)->Unit(benchmark::kMillisecond);

// --- observability overhead -------------------------------------------------
// The "<2% overhead" contract of src/obs: the same full plan against a
// live Registry (spans + histograms + counters recording) and against a
// NullRegistry (every handle nullptr, one untaken branch per site) must
// track BM_FullPlanWithAdjustment within noise.

void BM_FullPlanLiveRegistry(benchmark::State& state) {
  Scenario sc = scenario(1);
  PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  obs::Registry registry;
  planner.set_observer(&registry);
  auto deploy =
      optimal_coverage_positions(sc.m1, 100, 1, uniform_density()).positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(deploy, offset));
  }
  state.counters["spans"] =
      static_cast<double>(registry.spans()->total_recorded());
}
BENCHMARK(BM_FullPlanLiveRegistry)->Unit(benchmark::kMillisecond);

void BM_FullPlanNullRegistry(benchmark::State& state) {
  Scenario sc = scenario(1);
  PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  obs::NullRegistry null_registry;
  planner.set_observer(&null_registry);
  auto deploy =
      optimal_coverage_positions(sc.m1, 100, 1, uniform_density()).positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(deploy, offset));
  }
}
BENCHMARK(BM_FullPlanNullRegistry)->Unit(benchmark::kMillisecond);

void BM_CounterInc(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter* c = registry.counter("bench_counter");
  for (auto _ : state) {
    obs::inc(c);
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncNull(benchmark::State& state) {
  obs::NullRegistry registry;
  obs::Counter* c = registry.counter("bench_counter");  // nullptr
  for (auto _ : state) {
    obs::inc(c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterIncNull);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("bench_hist");
  double v = 1e-6;
  for (auto _ : state) {
    v = v > 1.0 ? 1e-6 : v * 1.01;
    obs::observe(h, v);
  }
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_HistogramObserve);

}  // namespace

BENCHMARK_MAIN();
