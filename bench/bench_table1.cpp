// Reproduces Table I: global connectivity during the transition
// procedure, for all seven scenarios and all four methods.
//
// Expected shape (paper):
//   - our methods (a) and (b): Y on every scenario;
//   - direct translation: N on scenarios 2, 6, 7 (dissimilar shapes /
//     hole-to-hole), Y elsewhere;
//   - Hungarian: N everywhere.
// Exact N cells depend on the substituted FoI polygons; what must hold is
// ours == Y everywhere and Hungarian mostly N.
#include "bench_common.h"

int main() {
  using namespace anr;
  using namespace anr::bench;
  Stopwatch sw;

  TextTable table;
  table.header({"", "Our Method (a)", "Our Method (b)", "Direct Translation",
                "Hungarian"});
  auto yn = [](bool c) { return c ? std::string("Y") : std::string("N"); };

  for (int id = 1; id <= 7; ++id) {
    Scenario sc = scenario(id);
    MethodSuite suite(sc);
    // The paper's table is per scenario (one transition); use the 20x
    // separation, the middle of the sweep.
    auto r = suite.sweep({20.0}, /*time_samples=*/200);
    table.row({"Scenario " + std::to_string(id), yn(r.ours_a[0].global_connectivity),
               yn(r.ours_b[0].global_connectivity),
               yn(r.direct[0].global_connectivity),
               yn(r.hungarian[0].global_connectivity)});
  }
  std::cout << "== Table I: global connectivity during transition\n"
            << table.str() << "bench_table1 total " << fmt(sw.seconds(), 1)
            << " s\n";
  return 0;
}
