// Five-method comparison on one table: the paper's four methods plus the
// related-work virtual-force (potential-field) family it cites as prior
// art ([1]–[3]). Scenario 1 (similar shapes) and scenario 2 (dissimilar)
// at 15x r_c, reporting L, D, C, and the achieved coverage of M2.
#include "bench_common.h"

namespace {

using namespace anr;
using namespace anr::bench;

struct Row {
  std::string method;
  TransitionMetrics m;
  double coverage = 0.0;
};

}  // namespace

int main() {
  Stopwatch sw;
  for (int id : {1, 2}) {
    Scenario sc = scenario(id);
    print_scenario_banner(sc);
    auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                             uniform_density())
                      .positions;
    Vec2 off = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
               sc.m2_shape.centroid();
    FieldOfInterest m2 = sc.m2_shape.translated(off);
    double r_s = sensing_radius_for(sc.comm_range);

    auto measure = [&](const std::string& name, const MarchPlan& plan) {
      Row r;
      r.method = name;
      r.m = simulate_transition(plan.trajectories, sc.comm_range,
                                plan.transition_end, 140);
      r.coverage =
          evaluate_coverage(m2, plan.final_positions, r_s, 8000).covered_fraction;
      return r;
    };

    std::vector<Row> rows;
    {
      MarchPlanner p(sc.m1, sc.m2_shape, sc.comm_range);
      rows.push_back(measure("ours (a)", p.plan(deploy, off)));
    }
    {
      PlannerOptions o;
      o.objective = MarchObjective::kMinDistance;
      MarchPlanner p(sc.m1, sc.m2_shape, sc.comm_range, o);
      rows.push_back(measure("ours (b)", p.plan(deploy, off)));
    }
    {
      DirectTranslationPlanner p(sc.m1, sc.m2_shape, sc.comm_range,
                                 sc.num_robots);
      rows.push_back(measure("direct translation", p.plan(deploy, off)));
    }
    {
      HungarianMarchPlanner p(sc.m1, sc.m2_shape, sc.comm_range, sc.num_robots);
      rows.push_back(measure("Hungarian", p.plan(deploy, off)));
    }
    {
      VirtualForcePlanner p(sc.m1, sc.m2_shape, sc.comm_range);
      rows.push_back(measure("virtual force [1-3]", p.plan(deploy, off)));
    }

    TextTable table;
    table.header({"method", "L", "C", "D (m)", "M2 coverage"});
    for (const Row& r : rows) {
      table.row({r.method, fmt_pct(r.m.stable_link_ratio),
                 r.m.global_connectivity ? "Y" : "N",
                 fmt(r.m.total_distance, 0), fmt_pct(r.coverage)});
    }
    std::cout << table.str() << "\n";
  }
  std::cout << "bench_baselines total " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
