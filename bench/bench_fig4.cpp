// Reproduces Fig. 4: scenario 3 — marching into the FoI with the
// flower-shaped pond (Fig. 2(d)), 239,987 m^2.
//
//   (a) comparison of total moving distance (ratio to Hungarian);
//   (b) comparison of total stable link ratio.
//
// Expected shape (paper): same ordering as Fig. 3 — our methods preserve
// most links at near-Hungarian distance; direct translation costs more
// distance; Hungarian scrambles the links.
#include "bench_common.h"

int main() {
  using namespace anr;
  using namespace anr::bench;
  Stopwatch sw;
  Scenario sc = scenario(3);
  print_scenario_banner(sc);
  MethodSuite suite(sc);
  print_sweep(suite.sweep(paper_separations()));
  std::cout << "bench_fig4 total " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
