// Property sweep: the paper's guarantees, asserted as invariants over a
// grid of seeded scenario configurations rather than hand-picked cases.
//
// For every (scenario, robots, seed, separation) in the sweep the planned
// march must satisfy:
//   - C = 1 (Def. 2): one connected component at every sampled instant;
//   - L in [0, 1]: the stable link ratio is a well-formed fraction;
//   - D finite and bounded below by the straight-line displacement — no
//     trajectory can beat the triangle inequality;
//   - barycentric targets inside M2, up to the robots the planner itself
//     reports as snapped / repaired / unmeshed (repair parallel-marches
//     may legally hold a subgroup outside the mesh);
//   - the boundary ring chain gap stays <= r_c (the premise of the
//     paper's global-connectivity argument).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <ostream>
#include <vector>

#include "common/task_arena.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/planner.h"
#include "march/transition_sim.h"

namespace anr {
namespace {

struct SweepCase {
  int scenario_id;
  int robots;
  std::uint64_t seed;
  double separation_cr;
  // Arena threads inside the plan (1 = serial). Parallel cases re-assert
  // the same invariants through the multithreaded hot paths.
  int intra_threads = 1;
};

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
  return os << "scenario" << c.scenario_id << "_n" << c.robots << "_seed"
            << c.seed << "_sep" << c.separation_cr << "_t" << c.intra_threads;
}

// Small-but-real settings so the sweep stays within test-suite budget;
// the large-n cases scale the grid and CVT sampling with the swarm (and
// trim adjustment steps) exactly as the scaling bench does.
PlannerOptions sweep_options(int robots) {
  PlannerOptions opt;
  opt.mesher.target_grid_points = std::max(350, robots);
  opt.cvt_samples = std::max(4000, 2 * robots);
  opt.max_adjust_steps = robots >= 1024 ? 3 : 5;
  return opt;
}

class PlanInvariants : public ::testing::TestWithParam<SweepCase> {
 protected:
  void TearDown() override { set_arena_threads(0); }
};

TEST_P(PlanInvariants, HoldAcrossTheSweep) {
  const SweepCase c = GetParam();
  set_arena_threads(c.intra_threads);
  Scenario sc = scenario(c.scenario_id);
  std::vector<Vec2> deploy =
      optimal_coverage_positions(sc.m1, c.robots, c.seed, uniform_density())
          .positions;
  Vec2 offset = sc.m1.centroid() +
                Vec2{c.separation_cr * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range,
                       sweep_options(c.robots));
  MarchPlan plan = planner.plan(deploy, offset);

  ASSERT_EQ(plan.trajectories.size(), deploy.size());
  ASSERT_GT(plan.total_time, 0.0);
  EXPECT_LE(plan.transition_end, plan.total_time + 1e-9);

  // --- C = 1 at every sampled instant of the whole timeline ---------------
  TransitionMetrics m = simulate_transition(plan.trajectories, sc.comm_range,
                                            plan.transition_end, 120);
  EXPECT_TRUE(m.global_connectivity) << c;
  EXPECT_LT(m.first_disconnect_time, 0.0) << c;

  // --- L is a well-formed fraction ----------------------------------------
  EXPECT_GE(m.stable_link_ratio, 0.0) << c;
  EXPECT_LE(m.stable_link_ratio, 1.0 + 1e-12) << c;
  EXPECT_GE(m.stable_link_ratio_transition, 0.0) << c;
  EXPECT_LE(m.stable_link_ratio_transition, 1.0 + 1e-12) << c;
  EXPECT_GT(m.initial_links, 0) << c;

  // --- D finite and >= the straight-line lower bound ----------------------
  EXPECT_TRUE(std::isfinite(m.total_distance)) << c;
  double straight_line = 0.0;
  for (const Trajectory& t : plan.trajectories) {
    ASSERT_FALSE(t.empty());
    double chord = distance(t.start(), t.end());
    EXPECT_GE(t.length(), chord - 1e-9) << c;
    straight_line += chord;
  }
  EXPECT_GE(m.total_distance, straight_line - 1e-6) << c;

  // --- barycentric targets inside M2 (up to reported exceptions) ----------
  FieldOfInterest m2_world = sc.m2_shape.translated(offset);
  ASSERT_EQ(plan.mapped_targets.size(), deploy.size());
  int outside = 0;
  for (Vec2 p : plan.mapped_targets) {
    EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y)) << c;
    if (!m2_world.contains(p)) ++outside;
  }
  EXPECT_LE(outside, plan.repaired_robots + plan.snapped_targets +
                         plan.unmeshed_robots)
      << c;

  // --- boundary ring chain gap (global-connectivity premise) --------------
  EXPECT_LE(plan.max_boundary_gap, sc.comm_range) << c;

  // --- endpoints are clean -------------------------------------------------
  for (Vec2 p : plan.final_positions) {
    EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y)) << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededSweep, PlanInvariants,
    ::testing::Values(SweepCase{1, 72, 7, 10.0}, SweepCase{1, 100, 1, 16.0},
                      SweepCase{5, 72, 3, 12.0}, SweepCase{2, 100, 2, 20.0},
                      SweepCase{1, 72, 7, 10.0, 4},
                      SweepCase{5, 72, 3, 12.0, 4},
                      // Large-n: spatial-sorted Delaunay + scaled CVT
                      // (serial and through the parallel hot paths).
                      SweepCase{1, 1024, 11, 10.0},
                      SweepCase{1, 1024, 11, 10.0, 4}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const SweepCase& c = info.param;
      return "scenario" + std::to_string(c.scenario_id) + "_n" +
             std::to_string(c.robots) + "_seed" + std::to_string(c.seed) +
             "_t" + std::to_string(c.intra_threads);
    });

}  // namespace
}  // namespace anr
