// Property sweep: the paper's guarantees, asserted as invariants over a
// grid of seeded scenario configurations rather than hand-picked cases.
//
// For every (scenario, robots, seed, separation) in the sweep the planned
// march must satisfy:
//   - C = 1 (Def. 2): one connected component at every sampled instant;
//   - L in [0, 1]: the stable link ratio is a well-formed fraction;
//   - D finite and bounded below by the straight-line displacement — no
//     trajectory can beat the triangle inequality;
//   - barycentric targets inside M2, up to the robots the planner itself
//     reports as snapped / repaired / unmeshed (repair parallel-marches
//     may legally hold a subgroup outside the mesh);
//   - the boundary ring chain gap stays <= r_c (the premise of the
//     paper's global-connectivity argument).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/task_arena.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "io/plan_io.h"
#include "march/planner.h"
#include "march/transition_sim.h"
#include "terrain/height_field.h"

namespace anr {
namespace {

struct SweepCase {
  int scenario_id;
  int robots;
  std::uint64_t seed;
  double separation_cr;
  // Arena threads inside the plan (1 = serial). Parallel cases re-assert
  // the same invariants through the multithreaded hot paths.
  int intra_threads = 1;
};

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
  return os << "scenario" << c.scenario_id << "_n" << c.robots << "_seed"
            << c.seed << "_sep" << c.separation_cr << "_t" << c.intra_threads;
}

// Small-but-real settings so the sweep stays within test-suite budget;
// the large-n cases scale the grid and CVT sampling with the swarm (and
// trim adjustment steps) exactly as the scaling bench does.
PlannerOptions sweep_options(int robots) {
  PlannerOptions opt;
  opt.mesher.target_grid_points = std::max(350, robots);
  opt.cvt_samples = std::max(4000, 2 * robots);
  opt.max_adjust_steps = robots >= 1024 ? 3 : 5;
  return opt;
}

class PlanInvariants : public ::testing::TestWithParam<SweepCase> {
 protected:
  void TearDown() override { set_arena_threads(0); }
};

TEST_P(PlanInvariants, HoldAcrossTheSweep) {
  const SweepCase c = GetParam();
  set_arena_threads(c.intra_threads);
  Scenario sc = scenario(c.scenario_id);
  std::vector<Vec2> deploy =
      optimal_coverage_positions(sc.m1, c.robots, c.seed, uniform_density())
          .positions;
  Vec2 offset = sc.m1.centroid() +
                Vec2{c.separation_cr * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range,
                       sweep_options(c.robots));
  MarchPlan plan = planner.plan(deploy, offset);

  ASSERT_EQ(plan.trajectories.size(), deploy.size());
  ASSERT_GT(plan.total_time, 0.0);
  EXPECT_LE(plan.transition_end, plan.total_time + 1e-9);

  // --- C = 1 at every sampled instant of the whole timeline ---------------
  TransitionMetrics m = simulate_transition(plan.trajectories, sc.comm_range,
                                            plan.transition_end, 120);
  EXPECT_TRUE(m.global_connectivity) << c;
  EXPECT_LT(m.first_disconnect_time, 0.0) << c;

  // --- L is a well-formed fraction ----------------------------------------
  EXPECT_GE(m.stable_link_ratio, 0.0) << c;
  EXPECT_LE(m.stable_link_ratio, 1.0 + 1e-12) << c;
  EXPECT_GE(m.stable_link_ratio_transition, 0.0) << c;
  EXPECT_LE(m.stable_link_ratio_transition, 1.0 + 1e-12) << c;
  EXPECT_GT(m.initial_links, 0) << c;

  // --- D finite and >= the straight-line lower bound ----------------------
  EXPECT_TRUE(std::isfinite(m.total_distance)) << c;
  double straight_line = 0.0;
  for (const Trajectory& t : plan.trajectories) {
    ASSERT_FALSE(t.empty());
    double chord = distance(t.start(), t.end());
    EXPECT_GE(t.length(), chord - 1e-9) << c;
    straight_line += chord;
  }
  EXPECT_GE(m.total_distance, straight_line - 1e-6) << c;

  // --- barycentric targets inside M2 (up to reported exceptions) ----------
  FieldOfInterest m2_world = sc.m2_shape.translated(offset);
  ASSERT_EQ(plan.mapped_targets.size(), deploy.size());
  int outside = 0;
  for (Vec2 p : plan.mapped_targets) {
    EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y)) << c;
    if (!m2_world.contains(p)) ++outside;
  }
  EXPECT_LE(outside, plan.repaired_robots + plan.snapped_targets +
                         plan.unmeshed_robots)
      << c;

  // --- boundary ring chain gap (global-connectivity premise) --------------
  EXPECT_LE(plan.max_boundary_gap, sc.comm_range) << c;

  // --- endpoints are clean -------------------------------------------------
  for (Vec2 p : plan.final_positions) {
    EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y)) << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededSweep, PlanInvariants,
    ::testing::Values(SweepCase{1, 72, 7, 10.0}, SweepCase{1, 100, 1, 16.0},
                      SweepCase{5, 72, 3, 12.0}, SweepCase{2, 100, 2, 20.0},
                      SweepCase{1, 72, 7, 10.0, 4},
                      SweepCase{5, 72, 3, 12.0, 4},
                      // Large-n: spatial-sorted Delaunay + scaled CVT
                      // (serial and through the parallel hot paths).
                      SweepCase{1, 1024, 11, 10.0},
                      SweepCase{1, 1024, 11, 10.0, 4}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const SweepCase& c = info.param;
      return "scenario" + std::to_string(c.scenario_id) + "_n" +
             std::to_string(c.robots) + "_seed" + std::to_string(c.seed) +
             "_t" + std::to_string(c.intra_threads);
    });

// ---------------------------------------------------------------------------
// Terrain-cost marching (ISSUE 10): kTerrainGeodesic must preserve every
// invariant above, keep trajectories out of keep-out regions, and collapse
// to the straight-line pipeline byte-for-byte when the cost field is
// uniform.

std::string plan_bytes(const MarchPlan& plan, const std::string& tag) {
  const std::string path = "invariants_tmp_" + tag + "_plan.json";
  std::string err;
  EXPECT_TRUE(save_plan(plan, path, &err)) << err;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

MarchPlan plan_scenario(const Scenario& sc, const std::vector<Vec2>& deploy,
                        Vec2 offset, const PlannerOptions& opt) {
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  return planner.plan(deploy, offset);
}

// Acceptance pin: on a flat height field with no mud and no keep-out the
// rasterized cost field is uniform, the planner bypasses the router, and
// the serialized geodesic plan is byte-identical to the straight plan.
TEST(TerrainInvariants, UniformFieldGeodesicByteIdenticalToStraight) {
  for (int id : {1, 5, 6}) {
    Scenario sc = scenario(id);
    std::vector<Vec2> deploy =
        optimal_coverage_positions(sc.m1, 72, /*seed=*/1, uniform_density())
            .positions;
    Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                  sc.m2_shape.centroid();

    PlannerOptions straight = sweep_options(72);
    PlannerOptions geodesic = straight;
    geodesic.trajectory.motion = MotionModel::kTerrainGeodesic;

    MarchPlan a = plan_scenario(sc, deploy, offset, straight);
    MarchPlan b = plan_scenario(sc, deploy, offset, geodesic);
    EXPECT_EQ(b.fmm_solves, 0) << "scenario " << id;  // router bypassed
    EXPECT_EQ(b.fmm_fallbacks, 0) << "scenario " << id;
    EXPECT_EQ(plan_bytes(a, "straight" + std::to_string(id)),
              plan_bytes(b, "geodesic" + std::to_string(id)))
        << "scenario " << id;
  }
}

TEST(TerrainInvariants, SlopeMudAndKeepOutPreserveMarchInvariants) {
  Scenario sc = scenario(1);
  const int robots = 72;
  std::vector<Vec2> deploy =
      optimal_coverage_positions(sc.m1, robots, /*seed=*/7, uniform_density())
          .positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  FieldOfInterest m2_world = sc.m2_shape.translated(offset);

  BBox terrain_box = sc.m1.bbox();
  terrain_box.expand(m2_world.bbox().lo);
  terrain_box.expand(m2_world.bbox().hi);

  // Rolling hills with slope cost and an asymmetric uphill penalty, one
  // mud patch north of the corridor, and a keep-out block wholly inside
  // the empty corridor (it must not overlap M1 or M2: a robot deployed
  // inside keep-out has no clean route out). Mid-band robots detour.
  const Vec2 mid = lerp(sc.m1.centroid(), m2_world.centroid(), 0.5);
  PlannerOptions opt = sweep_options(robots);
  opt.trajectory.motion = MotionModel::kTerrainGeodesic;
  opt.trajectory.terrain.terrain =
      HeightField::rolling(terrain_box, 10, 35.0, 160.0, /*seed=*/99);
  opt.trajectory.terrain.slope_weight = 2.5;
  opt.trajectory.terrain.uphill_penalty = 0.4;
  opt.trajectory.terrain.mud.push_back(
      {{mid.x, mid.y + 2.0 * sc.comm_range}, 90.0, 3.0});
  const Vec2 ko_lo{mid.x - sc.comm_range, mid.y - 0.75 * sc.comm_range};
  const Vec2 ko_hi{mid.x + sc.comm_range, mid.y + 0.75 * sc.comm_range};
  opt.trajectory.terrain.keep_out.push_back(make_rect(ko_lo, ko_hi));

  MarchPlan plan = plan_scenario(sc, deploy, offset, opt);
  ASSERT_EQ(plan.trajectories.size(), deploy.size());
  // At least one solve pass ran (repair targets can trigger a regrow +
  // re-solve), and the connectivity guard straightens some routes — the
  // typed degradation is expected to engage, not stay silent.
  EXPECT_GE(plan.fmm_solves, robots);
  EXPECT_GT(plan.fmm_fallbacks, 0);
  EXPECT_LE(plan.fmm_fallbacks, robots);

  // The paper's guarantees survive the terrain metric: C = 1 throughout,
  // L a well-formed fraction, D finite and >= the straight-line bound.
  TransitionMetrics m = simulate_transition(plan.trajectories, sc.comm_range,
                                            plan.transition_end, 120);
  EXPECT_TRUE(m.global_connectivity);
  EXPECT_GE(m.stable_link_ratio, 0.0);
  EXPECT_LE(m.stable_link_ratio, 1.0 + 1e-12);
  EXPECT_TRUE(std::isfinite(m.total_distance));
  double straight_line = 0.0;
  for (const Trajectory& t : plan.trajectories) {
    ASSERT_FALSE(t.empty());
    const double chord = distance(t.start(), t.end());
    EXPECT_GE(t.length(), chord - 1e-9);
    straight_line += chord;
  }
  EXPECT_GE(m.total_distance, straight_line - 1e-6);

  // Keep-out never entered. Blocked cells over-approximate the polygon
  // only up to one cell diagonal (a route can clip a corner of the rect
  // while staying out of every blocked cell), and straightened chords
  // hug the polygon boundary exactly, so assert against the rect inset
  // by a conservative 2.5-cell margin. The cell estimate doubles the
  // padding to absorb a possible domain regrow for stray repair targets.
  BBox domain = terrain_box;
  for (Vec2 p : deploy) domain.expand(p);
  const double pad = opt.trajectory.terrain.padding_cr * sc.comm_range;
  const double extent = std::max(domain.hi.x - domain.lo.x + 4.0 * pad,
                                 domain.hi.y - domain.lo.y + 4.0 * pad);
  const double margin = 2.5 * extent / opt.trajectory.terrain.max_cells;
  const Vec2 in_lo{ko_lo.x + margin, ko_lo.y + margin};
  const Vec2 in_hi{ko_hi.x - margin, ko_hi.y - margin};
  ASSERT_LT(in_lo.x, in_hi.x);
  ASSERT_LT(in_lo.y, in_hi.y);
  for (const Trajectory& t : plan.trajectories) {
    for (int k = 0; k <= 200; ++k) {
      const double tt =
          t.start_time() +
          (t.end_time() - t.start_time()) * static_cast<double>(k) / 200.0;
      const Vec2 p = t.position(tt);
      EXPECT_FALSE(p.x > in_lo.x && p.x < in_hi.x && p.y > in_lo.y &&
                   p.y < in_hi.y)
          << "trajectory sample inside keep-out at t=" << tt;
    }
  }
}

}  // namespace
}  // namespace anr
