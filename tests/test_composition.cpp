// Disk-overlap composition: point location, barycentric interpolation,
// hole snapping.
#include <gtest/gtest.h>

#include <cmath>

#include "foi/foi_mesher.h"
#include "harmonic/composition.h"
#include "harmonic/disk_map.h"
#include "mesh/hole_fill.h"
#include "test_util.h"

namespace anr {
namespace {

struct CompoCtx {
  FoiMesh fm;
  HoleFillResult filled;
  DiskMap disk;
};

CompoCtx make_setup(const FieldOfInterest& foi, int grid = 500) {
  CompoCtx s;
  MesherOptions opt;
  opt.target_grid_points = grid;
  s.fm = mesh_foi(foi, opt);
  s.filled = fill_holes(s.fm.mesh);
  s.disk = harmonic_disk_map(s.filled.mesh);
  return s;
}

TEST(Composition, IdentityOnGridVertices) {
  FieldOfInterest sq = testutil::square_foi(100.0);
  CompoCtx s = make_setup(sq);
  OverlapInterpolator interp(s.filled, s.disk);
  // Mapping a grid vertex's own disk position must return (approximately)
  // its world position.
  for (std::size_t v = 0; v < s.fm.mesh.num_vertices(); v += 7) {
    MappedTarget t = interp.map_point(s.disk.disk_pos[v]);
    EXPECT_LT(distance(t.world, s.fm.mesh.position(static_cast<VertexId>(v))),
              1e-6)
        << "vertex " << v;
  }
}

TEST(Composition, InteriorPointsLandInside) {
  FieldOfInterest sq = testutil::square_foi(100.0);
  CompoCtx s = make_setup(sq);
  OverlapInterpolator interp(s.filled, s.disk);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    double r = std::sqrt(rng.uniform(0.0, 0.9));
    double a = rng.uniform(0.0, 2.0 * M_PI);
    MappedTarget t = interp.map_point({r * std::cos(a), r * std::sin(a)});
    EXPECT_TRUE(sq.contains(t.world)) << t.world.x << "," << t.world.y;
  }
}

TEST(Composition, HoleLandingsSnapToRealVertices) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 30.0);
  CompoCtx s = make_setup(foi, 800);
  OverlapInterpolator interp(s.filled, s.disk);
  ASSERT_EQ(s.filled.virtual_vertices.size(), 1u);
  // The virtual vertex's disk position is inside a virtual triangle.
  Vec2 vv_disk =
      s.disk.disk_pos[static_cast<std::size_t>(s.filled.virtual_vertices[0])];
  MappedTarget t = interp.map_point(vv_disk);
  EXPECT_TRUE(t.snapped);
  EXPECT_TRUE(foi.contains(t.world));  // snapped onto a real grid point
}

TEST(Composition, AllDiskPointsResolve) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 25.0);
  CompoCtx s = make_setup(foi, 600);
  OverlapInterpolator interp(s.filled, s.disk);
  Rng rng(9);
  int snapped = 0;
  for (int i = 0; i < 500; ++i) {
    double r = std::sqrt(rng.uniform(0.0, 1.0));
    double a = rng.uniform(0.0, 2.0 * M_PI);
    MappedTarget t = interp.map_point({r * std::cos(a), r * std::sin(a)});
    if (t.snapped) ++snapped;
    EXPECT_TRUE(foi.contains(t.world));
  }
  // Some points land in the filled hole and must snap, but not most.
  EXPECT_GT(snapped, 0);
  EXPECT_LT(snapped, 250);
}

TEST(Composition, RotationEquivariance) {
  FieldOfInterest sq = testutil::square_foi(100.0);
  CompoCtx s = make_setup(sq);
  OverlapInterpolator interp(s.filled, s.disk);
  std::vector<Vec2> probes{{0.3, 0.1}, {-0.2, 0.4}, {0.0, -0.5}};
  auto a = interp.map_all(probes, 0.7);
  // map_all(theta) equals map_point of pre-rotated points.
  for (std::size_t i = 0; i < probes.size(); ++i) {
    MappedTarget direct = interp.map_point(probes[i].rotated(0.7));
    EXPECT_EQ(a[i].world, direct.world);
  }
}

TEST(Composition, PointsOutsideDiskSnap) {
  FieldOfInterest sq = testutil::square_foi(100.0);
  CompoCtx s = make_setup(sq);
  OverlapInterpolator interp(s.filled, s.disk);
  MappedTarget t = interp.map_point({1.5, 1.5});  // well outside the disk
  EXPECT_TRUE(t.snapped);
  EXPECT_TRUE(sq.contains(t.world));
}

TEST(Composition, WarmStartMatchesColdLookupBitwise) {
  // The triangle-walk warm start must be invisible: for every query the
  // hinted overload returns the exact same bytes as the cold bucket scan.
  FieldOfInterest foi = testutil::square_with_hole(100.0, 30.0);
  CompoCtx s = make_setup(foi);
  OverlapInterpolator interp(s.filled, s.disk);
  Rng rng(91);
  int hint = -1;  // persistent across queries, as the planner keeps it
  for (int i = 0; i < 1000; ++i) {
    double r = std::sqrt(rng.uniform(0.0, 1.0)) * 1.02;  // some outside
    double a = rng.uniform(0.0, 2.0 * M_PI);
    Vec2 z{r * std::cos(a), r * std::sin(a)};
    MappedTarget cold = interp.map_point(z);
    MappedTarget warm = interp.map_point(z, hint);
    ASSERT_EQ(cold.world.x, warm.world.x) << "query " << i;
    ASSERT_EQ(cold.world.y, warm.world.y) << "query " << i;
    ASSERT_EQ(cold.snapped, warm.snapped) << "query " << i;
  }
}

TEST(Composition, WarmStartNearbyQueriesWalk) {
  // The rotation-search pattern: the same disk point probed at slowly
  // varying angles, one persistent hint per robot.
  FieldOfInterest sq = testutil::square_foi(100.0);
  CompoCtx s = make_setup(sq);
  OverlapInterpolator interp(s.filled, s.disk);
  EXPECT_TRUE(interp.warm_start_enabled());
  Rng rng(5);
  for (int robot = 0; robot < 50; ++robot) {
    double r = std::sqrt(rng.uniform(0.0, 0.95));
    double a = rng.uniform(0.0, 2.0 * M_PI);
    Vec2 z{r * std::cos(a), r * std::sin(a)};
    int hint = -1;
    for (double theta = 0.0; theta < 0.5; theta += 0.01) {
      Vec2 zr = z.rotated(theta);
      MappedTarget cold = interp.map_point(zr);
      MappedTarget warm = interp.map_point(zr, hint);
      ASSERT_EQ(cold.world.x, warm.world.x);
      ASSERT_EQ(cold.world.y, warm.world.y);
    }
  }
}

}  // namespace
}  // namespace anr
