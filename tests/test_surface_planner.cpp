// Surface-aware marching: the 3D prototype must reduce to the planar
// planner on flat terrain and keep the guarantees on rough terrain.
#include <gtest/gtest.h>

#include <cmath>

#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/planner.h"
#include "terrain/surface_metrics.h"
#include "terrain/surface_planner.h"

namespace anr {
namespace {

struct Fixture {
  Scenario sc = scenario(1);
  std::vector<Vec2> deploy;
  Vec2 off;
  SurfacePlannerOptions opt;

  Fixture() {
    deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                        uniform_density())
                 .positions;
    off = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
          sc.m2_shape.centroid();
    opt.mesher.target_grid_points = 600;
    opt.cvt_samples = 10000;
    opt.max_adjust_steps = 20;
  }

  HeightField rough(double amplitude) const {
    BBox bb = sc.m1.bbox();
    bb.expand(sc.m2_shape.translated(off).bbox());
    return HeightField::rolling(bb, 50, amplitude, 130.0, 31);
  }
};

TEST(SurfaceAdjacency, FlatMatchesPlanar) {
  auto pts = std::vector<Vec2>{{0, 0}, {50, 0}, {120, 0}};
  auto adj = surface_adjacency(pts, HeightField{}, 80.0);
  EXPECT_EQ(adj[0], (std::vector<int>{1}));
  EXPECT_EQ(adj[1], (std::vector<int>{0, 2}));
}

TEST(SurfaceAdjacency, RidgeBreaksLink) {
  // Two robots 70m apart with a 60m ridge between them: chord distance
  // stays 70 (endpoints lifted equally) — but placing one robot ON the
  // ridge stretches the chord beyond range.
  HeightField ridge({Hill{{35.0, 0.0}, 60.0, 10.0}});
  std::vector<Vec2> pts{{0, 0}, {35, 0}};
  // Height difference ~60 over 35m: chord = sqrt(35^2 + ~60^2) ≈ 69.5.
  auto adj = surface_adjacency(pts, ridge, 60.0);
  EXPECT_TRUE(adj[0].empty());
  auto adj2 = surface_adjacency(pts, ridge, 75.0);
  EXPECT_FALSE(adj2[0].empty());
}

TEST(SurfaceWeights, PositiveOnLiftedMesh) {
  TriangleMesh m({{0, 0}, {10, 0}, {5, 8}, {5, -8}},
                 {Tri{0, 1, 2}, Tri{0, 3, 1}});
  HeightField h({Hill{{5.0, 0.0}, 6.0, 4.0}});
  auto w = surface_mean_value_weights(h);
  EXPECT_GT(w(m, 0, 1), 0.0);
  EXPECT_GT(w(m, 0, 2), 0.0);
  // Flat terrain weights match the planar mean-value weights in spirit:
  // symmetric triangle -> equal weights for symmetric edges.
  auto wf = surface_mean_value_weights(HeightField{});
  EXPECT_NEAR(wf(m, 0, 2), wf(m, 0, 3), 1e-12);
}

TEST(SurfacePlanner, FlatTerrainMatchesPlanarPlanner) {
  Fixture f;
  SurfaceMarchPlanner surf(f.sc.m1, f.sc.m2_shape, HeightField{},
                           f.sc.comm_range, f.opt);
  MarchPlan splan = surf.plan(f.deploy, f.off);

  PlannerOptions popt;
  popt.mesher = f.opt.mesher;
  popt.cvt_samples = f.opt.cvt_samples;
  popt.max_adjust_steps = f.opt.max_adjust_steps;
  // Planar planner with mean-value weights = flat surface weights.
  popt.disk.weights = HarmonicWeights::kMeanValue;
  MarchPlanner planar(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, popt);
  MarchPlan pplan = planar.plan(f.deploy, f.off);

  // Same rotation probes, closely matching predicted link ratios.
  EXPECT_EQ(splan.rotation_evaluations, pplan.rotation_evaluations);
  EXPECT_NEAR(splan.predicted_link_ratio, pplan.predicted_link_ratio, 0.05);

  auto m = simulate_on_surface(splan.trajectories, HeightField{},
                               f.sc.comm_range, splan.transition_end, 100);
  EXPECT_TRUE(m.base.global_connectivity);
  EXPECT_GT(m.base.stable_link_ratio, 0.6);
}

TEST(SurfacePlanner, RoughTerrainKeepsGuarantees) {
  Fixture f;
  HeightField terrain = f.rough(40.0);
  SurfaceMarchPlanner surf(f.sc.m1, f.sc.m2_shape, terrain, f.sc.comm_range,
                           f.opt);
  MarchPlan plan = surf.plan(f.deploy, f.off);
  auto m = simulate_on_surface(plan.trajectories, terrain, f.sc.comm_range,
                               plan.transition_end, 120);
  EXPECT_TRUE(m.base.global_connectivity);
  EXPECT_GT(m.base.stable_link_ratio, 0.5);
  EXPECT_GT(m.surface_distance, m.planar_distance);
  // Final positions inside M2 on the map.
  FieldOfInterest m2 = f.sc.m2_shape.translated(f.off);
  for (Vec2 p : plan.final_positions) EXPECT_TRUE(m2.contains(p));
}

TEST(SurfacePlanner, SurfaceAwareBeatsPlanarPlanOnTerrain) {
  // The surface-aware planner should preserve at least as many 3D links
  // as the terrain-blind planar plan evaluated on the same terrain.
  Fixture f;
  HeightField terrain = f.rough(45.0);
  SurfaceMarchPlanner surf(f.sc.m1, f.sc.m2_shape, terrain, f.sc.comm_range,
                           f.opt);
  PlannerOptions popt;
  popt.mesher = f.opt.mesher;
  popt.cvt_samples = f.opt.cvt_samples;
  popt.max_adjust_steps = f.opt.max_adjust_steps;
  MarchPlanner planar(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, popt);

  auto ms = simulate_on_surface(surf.plan(f.deploy, f.off).trajectories,
                                terrain, f.sc.comm_range, 1.0, 100);
  auto mp = simulate_on_surface(planar.plan(f.deploy, f.off).trajectories,
                                terrain, f.sc.comm_range, 1.0, 100);
  EXPECT_GE(ms.base.stable_link_ratio, mp.base.stable_link_ratio - 0.05);
}

}  // namespace
}  // namespace anr
