// Hungarian / Jonker–Volgenant assignment: exactness vs brute force,
// structure properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.h"
#include "matching/hungarian.h"
#include "test_util.h"

namespace anr {
namespace {

double brute_force_min_cost(const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e300;
  do {
    double c = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      c += cost[i][static_cast<std::size_t>(perm[i])];
    }
    best = std::min(best, c);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Hungarian, KnownSmallMatrix) {
  // Classic example: optimum is 5 (1 + 4) ... verify by hand: rows pick
  // (0,1)=2, (1,0)=3 -> 5 vs (0,0)=4,(1,1)=6 -> 10.
  auto res = solve_assignment({{4.0, 2.0}, {3.0, 6.0}});
  EXPECT_DOUBLE_EQ(res.total_cost, 5.0);
  EXPECT_EQ(res.row_to_col, (std::vector<int>{1, 0}));
}

TEST(Hungarian, Identity) {
  auto res = solve_assignment({{0.0, 9.0, 9.0}, {9.0, 0.0, 9.0}, {9.0, 9.0, 0.0}});
  EXPECT_DOUBLE_EQ(res.total_cost, 0.0);
  EXPECT_EQ(res.row_to_col, (std::vector<int>{0, 1, 2}));
}

TEST(Hungarian, SingleElement) {
  auto res = solve_assignment({{7.5}});
  EXPECT_DOUBLE_EQ(res.total_cost, 7.5);
}

TEST(Hungarian, IsPermutation) {
  auto from = testutil::random_points(40, 0.0, 100.0, 5);
  auto to = testutil::random_points(40, 0.0, 100.0, 6);
  auto res = min_distance_assignment(from, to);
  std::set<int> cols(res.row_to_col.begin(), res.row_to_col.end());
  EXPECT_EQ(cols.size(), from.size());  // perfect matching
}

TEST(Hungarian, RejectsNonSquare) {
  EXPECT_THROW(solve_assignment({{1.0, 2.0}, {3.0}}), ContractViolation);
}

// Property: matches brute force on random instances up to n=7.
class HungarianProperty : public ::testing::TestWithParam<int> {};

TEST_P(HungarianProperty, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  int n = 3 + GetParam() % 5;
  std::vector<std::vector<double>> cost(static_cast<std::size_t>(n),
                                        std::vector<double>(static_cast<std::size_t>(n)));
  for (auto& row : cost) {
    for (double& c : row) c = rng.uniform(0.0, 100.0);
  }
  auto res = solve_assignment(cost);
  EXPECT_NEAR(res.total_cost, brute_force_min_cost(cost), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(Hungarian, DistanceAssignmentBeatsIdentityAndRandom) {
  auto from = testutil::random_points(60, 0.0, 100.0, 50);
  auto to = testutil::random_points(60, 0.0, 100.0, 51);
  auto res = min_distance_assignment(from, to);
  double identity = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) identity += distance(from[i], to[i]);
  EXPECT_LE(res.total_cost, identity + 1e-9);
}

TEST(Hungarian, OptimalMatchingIsNonCrossing) {
  // In the plane, a min-cost Euclidean matching never crosses itself: for
  // matched pairs (a->x, b->y), swapping would not improve.
  auto from = testutil::random_points(30, 0.0, 50.0, 77);
  auto to = testutil::random_points(30, 0.0, 50.0, 78);
  auto res = min_distance_assignment(from, to);
  for (std::size_t i = 0; i < from.size(); ++i) {
    for (std::size_t j = i + 1; j < from.size(); ++j) {
      Vec2 xi = to[static_cast<std::size_t>(res.row_to_col[i])];
      Vec2 xj = to[static_cast<std::size_t>(res.row_to_col[j])];
      double keep = distance(from[i], xi) + distance(from[j], xj);
      double swap = distance(from[i], xj) + distance(from[j], xi);
      EXPECT_LE(keep, swap + 1e-9) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace anr
