// Coverage evaluation + the paper's coverage claims end-to-end.
#include <gtest/gtest.h>

#include <cmath>

#include "coverage/coverage_eval.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/planner.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(CoverageEval, SensingRadiusRule) {
  EXPECT_NEAR(sensing_radius_for(80.0), 80.0 / std::sqrt(3.0), 1e-12);
}

TEST(CoverageEval, SingleRobotSmallSquare) {
  FieldOfInterest foi = testutil::square_foi(10.0);
  // Robot at the center with r_s covering the whole square (diagonal/2).
  auto rep = evaluate_coverage(foi, {{5.0, 5.0}}, 8.0, 1000);
  EXPECT_DOUBLE_EQ(rep.covered_fraction, 1.0);
  EXPECT_LE(rep.worst_gap, std::sqrt(2.0) * 5.0 + 0.5);
  // k >= 2 impossible with one robot.
  EXPECT_DOUBLE_EQ(rep.k_covered_fraction[1], 0.0);
}

TEST(CoverageEval, UncoveredCornerDetected) {
  FieldOfInterest foi = testutil::square_foi(100.0);
  auto rep = evaluate_coverage(foi, {{0.0, 0.0}}, 30.0, 5000);
  EXPECT_LT(rep.covered_fraction, 0.2);
  EXPECT_GT(rep.worst_gap, 100.0);
}

TEST(CoverageEval, OverlappingRobotsGiveKCoverage) {
  FieldOfInterest foi = testutil::square_foi(20.0);
  std::vector<Vec2> robots{{10.0, 10.0}, {11.0, 10.0}, {10.0, 11.0}};
  auto rep = evaluate_coverage(foi, robots, 20.0, 2000);
  EXPECT_DOUBLE_EQ(rep.covered_fraction, 1.0);
  EXPECT_GT(rep.k_covered_fraction[2], 0.9);  // k>=3 almost everywhere
}

TEST(CoverageEval, CvtDeploymentCoversScenarioM1) {
  // The paper's premise: the optimal-coverage CVT deployment with
  // r_s = r_c / sqrt(3) fully covers the FoI.
  Scenario sc = scenario(1);
  auto dep = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                        uniform_density());
  auto rep = evaluate_coverage(sc.m1, dep.positions,
                               sensing_radius_for(sc.comm_range));
  EXPECT_GT(rep.covered_fraction, 0.995);
  EXPECT_LT(rep.worst_gap, sensing_radius_for(sc.comm_range) * 1.3);
}

TEST(CoverageEval, MarchRestoresCoverageInM2) {
  // After the march + minor adjustment, the new FoI is covered too —
  // the end-to-end purpose of the whole pipeline.
  Scenario sc = scenario(3);
  auto dep = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                        uniform_density());
  PlannerOptions opt;
  opt.mesher.target_grid_points = 700;
  opt.cvt_samples = 12000;
  opt.max_adjust_steps = 40;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(dep.positions, off);

  FieldOfInterest m2 = sc.m2_shape.translated(off);
  auto before = evaluate_coverage(m2, plan.mapped_targets,
                                  sensing_radius_for(sc.comm_range));
  auto after = evaluate_coverage(m2, plan.final_positions,
                                 sensing_radius_for(sc.comm_range));
  // The minor adjustment improves coverage, ending near-complete.
  EXPECT_GE(after.covered_fraction, before.covered_fraction - 1e-9);
  EXPECT_GT(after.covered_fraction, 0.97);
}

TEST(CoverageEval, HolesExcludedFromDenominator) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 30.0);
  // Ring of robots around the hole: hole interior must not count as
  // uncovered area.
  std::vector<Vec2> robots;
  for (int i = 0; i < 12; ++i) {
    double a = 2.0 * M_PI * i / 12;
    robots.push_back(Vec2{50.0, 50.0} + Vec2{40.0 * std::cos(a), 40.0 * std::sin(a)});
  }
  auto rep = evaluate_coverage(foi, robots, 30.0, 8000);
  EXPECT_GT(rep.covered_fraction, 0.8);
}

}  // namespace
}  // namespace anr
