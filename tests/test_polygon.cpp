// Unit + property tests: Polygon operations and half-plane clipping.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/polygon.h"
#include "geom/polygon_clip.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(Polygon, SquareBasics) {
  Polygon sq = make_rect({0, 0}, {2, 3});
  EXPECT_DOUBLE_EQ(sq.area(), 6.0);
  EXPECT_GT(sq.signed_area(), 0.0);
  EXPECT_EQ(sq.centroid(), (Vec2{1.0, 1.5}));
  EXPECT_DOUBLE_EQ(sq.perimeter(), 10.0);
  auto bb = sq.bbox();
  EXPECT_EQ(bb.lo, (Vec2{0, 0}));
  EXPECT_EQ(bb.hi, (Vec2{2, 3}));
}

TEST(Polygon, Containment) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  EXPECT_TRUE(sq.contains({5, 5}));
  EXPECT_TRUE(sq.contains({0, 5}));    // boundary
  EXPECT_TRUE(sq.contains({10, 10}));  // corner
  EXPECT_FALSE(sq.contains({11, 5}));
  EXPECT_FALSE(sq.contains({-0.1, 5}));
}

TEST(Polygon, ConcaveContainment) {
  // L-shape: the notch is outside.
  Polygon l({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_TRUE(l.contains({1, 3}));
  EXPECT_TRUE(l.contains({3, 1}));
  EXPECT_FALSE(l.contains({3, 3}));  // notch
  EXPECT_DOUBLE_EQ(l.area(), 12.0);
}

TEST(Polygon, MakeCcw) {
  Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_LT(cw.signed_area(), 0.0);
  cw.make_ccw();
  EXPECT_GT(cw.signed_area(), 0.0);
}

TEST(Polygon, BoundaryDistanceAndClosestPoint) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(sq.boundary_distance({5, 5}), 5.0);
  EXPECT_DOUBLE_EQ(sq.boundary_distance({5, 12}), 2.0);
  EXPECT_EQ(sq.closest_boundary_point({5, 12}), (Vec2{5, 10}));
}

TEST(Polygon, SegmentCrossesBoundary) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  EXPECT_TRUE(sq.segment_crosses_boundary({5, 5}, {15, 5}));
  EXPECT_FALSE(sq.segment_crosses_boundary({2, 2}, {8, 8}));   // inside
  EXPECT_FALSE(sq.segment_crosses_boundary({12, 0}, {12, 10}));  // outside
}

TEST(Polygon, Densified) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  Polygon d = sq.densified(1.0);
  EXPECT_EQ(d.size(), 40u);
  EXPECT_NEAR(d.area(), sq.area(), 1e-9);
  EXPECT_NEAR(d.perimeter(), sq.perimeter(), 1e-9);
}

TEST(Polygon, Transforms) {
  Polygon sq = make_rect({0, 0}, {2, 2});
  Polygon t = sq.translated({5, 7});
  EXPECT_EQ(t.centroid(), (Vec2{6, 8}));
  Polygon s = sq.scaled(3.0, sq.centroid());
  EXPECT_NEAR(s.area(), 36.0, 1e-9);
  EXPECT_EQ(s.centroid(), sq.centroid());
  Polygon r = sq.rotated(M_PI / 2.0, sq.centroid());
  EXPECT_NEAR(r.area(), 4.0, 1e-9);
}

TEST(Polygon, WithArea) {
  Polygon c = make_circle({3, 4}, 10.0);
  Polygon scaled = c.with_area(1234.5);
  EXPECT_NEAR(scaled.area(), 1234.5, 1e-6);
  EXPECT_NEAR(scaled.centroid().x, 3.0, 1e-9);
}

TEST(Polygon, CircleAreaConverges) {
  Polygon c = make_circle({0, 0}, 1.0, 256);
  EXPECT_NEAR(c.area(), M_PI, 1e-3);
  EXPECT_NEAR(c.perimeter(), 2.0 * M_PI, 1e-3);
}

TEST(Polygon, PerimeterParamAndPointAtParam) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  // Vertex 0 is (0,0); walking CCW: (10,0) at s=10, (10,10) at s=20...
  EXPECT_DOUBLE_EQ(sq.perimeter_param({5, 0}), 5.0);
  EXPECT_DOUBLE_EQ(sq.perimeter_param({10, 5}), 15.0);
  Vec2 p = sq.point_at_param(25.0);
  EXPECT_EQ(p, (Vec2{5, 10}));
  // Wraps modulo perimeter, including negatives.
  EXPECT_EQ(sq.point_at_param(45.0), (Vec2{5, 0}));
  EXPECT_EQ(sq.point_at_param(-5.0), (Vec2{0, 5}));
}

TEST(Polygon, ParamRoundTrip) {
  Polygon c = make_circle({3, -2}, 20.0, 48);
  for (double s : {0.0, 13.7, 55.5, 101.2}) {
    Vec2 p = c.point_at_param(s);
    EXPECT_NEAR(c.perimeter_param(p), std::fmod(s, c.perimeter()), 1e-6);
  }
}

TEST(Clip, HalfPlaneSquare) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  // Keep x <= 4.
  HalfPlane hp{{4, 0}, {1, 0}};
  Polygon clipped = clip(sq, hp);
  EXPECT_NEAR(clipped.area(), 40.0, 1e-9);
  for (Vec2 p : clipped.points()) {
    EXPECT_LE(p.x, 4.0 + 1e-9);
  }
}

TEST(Clip, BisectorKeepsCloserSide) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  Vec2 a{2, 5}, b{8, 5};
  Polygon cell = clip(sq, bisector_half_plane(a, b));
  EXPECT_NEAR(cell.area(), 50.0, 1e-9);
  EXPECT_TRUE(cell.contains({1, 5}));
  EXPECT_FALSE(cell.contains({9, 5}));
}

TEST(Clip, EmptyResult) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  HalfPlane hp{{-5, 0}, {1, 0}};  // keep x <= -5: nothing
  EXPECT_LT(clip(sq, hp).size(), 3u);
}

TEST(Clip, MultipleHalfPlanes) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  std::vector<HalfPlane> hps{{{4, 0}, {1, 0}}, {{0, 6}, {0, 1}}};
  Polygon c = clip(sq, hps);
  EXPECT_NEAR(c.area(), 24.0, 1e-9);
}

// Property: clipping a random convex polygon halves along a bisector
// conserves total area across the two sides.
class ClipProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClipProperty, BisectorPartitionsArea) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Polygon c = make_circle({0, 0}, 5.0 + rng.uniform(0.0, 5.0), 48);
  Vec2 a{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
  Vec2 b{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
  if (distance(a, b) < 1e-6) b = a + Vec2{1.0, 0.0};
  Polygon left = clip(c, bisector_half_plane(a, b));
  Polygon right = clip(c, bisector_half_plane(b, a));
  EXPECT_NEAR(left.area() + right.area(), c.area(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClipProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace anr
