// Transition simulator: Def. 1 / Def. 2 metrics on crafted trajectories.
#include <gtest/gtest.h>

#include "march/transition_sim.h"

namespace anr {
namespace {

Trajectory straight(Vec2 a, Vec2 b, double t0 = 0.0, double t1 = 1.0) {
  Trajectory t;
  t.append(a, t0);
  t.append(b, t1);
  return t;
}

TEST(TransitionSim, RigidTranslationPreservesEverything) {
  std::vector<Trajectory> trajs;
  for (int i = 0; i < 5; ++i) {
    trajs.push_back(straight({i * 5.0, 0.0}, {i * 5.0 + 100.0, 0.0}));
  }
  auto m = simulate_transition(trajs, 6.0, 1.0);
  EXPECT_DOUBLE_EQ(m.stable_link_ratio, 1.0);
  EXPECT_TRUE(m.global_connectivity);
  EXPECT_EQ(m.initial_links, 4);
  EXPECT_NEAR(m.total_distance, 500.0, 1e-9);
}

TEST(TransitionSim, BrokenLinkDetected) {
  // Two robots start linked, end apart.
  std::vector<Trajectory> trajs{straight({0, 0}, {0, 0}),
                                straight({5, 0}, {50, 0})};
  auto m = simulate_transition(trajs, 6.0, 1.0);
  EXPECT_EQ(m.initial_links, 1);
  EXPECT_EQ(m.stable_links, 0);
  EXPECT_DOUBLE_EQ(m.stable_link_ratio, 0.0);
  EXPECT_FALSE(m.global_connectivity);
  EXPECT_GE(m.first_disconnect_time, 0.0);
}

TEST(TransitionSim, MidFlightBreakCountsEvenIfEndpointsClose) {
  // Robot 1 detours far away and comes back: endpoints fine, middle broken.
  Trajectory loop;
  loop.append({5, 0}, 0.0);
  loop.append({100, 0}, 0.5);
  loop.append({5, 0}, 1.0);
  std::vector<Trajectory> trajs{straight({0, 0}, {0, 0}), loop};
  auto m = simulate_transition(trajs, 10.0, 1.0);
  EXPECT_EQ(m.stable_links, 0);
  EXPECT_FALSE(m.global_connectivity);
}

TEST(TransitionSim, TransitionVsAdjustmentSplit) {
  Trajectory t;
  t.append({0, 0}, 0.0);
  t.append({10, 0}, 1.0);  // transition
  t.append({10, 5}, 2.0);  // adjustment
  Trajectory u;
  u.append({3, 0}, 0.0);
  u.append({13, 0}, 1.0);
  u.append({13, 5}, 2.0);
  auto m = simulate_transition({t, u}, 5.0, 1.0);
  EXPECT_NEAR(m.transition_distance, 20.0, 1e-9);
  EXPECT_NEAR(m.adjustment_distance, 10.0, 1e-9);
  EXPECT_NEAR(m.total_distance, 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.stable_link_ratio, 1.0);
}

TEST(TransitionSim, LinkBrokenOnlyInAdjustmentLowersFullRatioOnly) {
  Trajectory a;
  a.append({0, 0}, 0.0);
  a.append({0, 0}, 1.0);
  a.append({0, 0}, 2.0);
  Trajectory b;
  b.append({5, 0}, 0.0);
  b.append({5, 0}, 1.0);   // still linked at end of transition
  b.append({50, 0}, 2.0);  // breaks during adjustment
  auto m = simulate_transition({a, b}, 6.0, 1.0);
  EXPECT_DOUBLE_EQ(m.stable_link_ratio_transition, 1.0);
  EXPECT_DOUBLE_EQ(m.stable_link_ratio, 0.0);
}

TEST(TransitionSim, NoLinksGivesRatioOne) {
  std::vector<Trajectory> trajs{straight({0, 0}, {1, 1}),
                                straight({100, 100}, {101, 101})};
  auto m = simulate_transition(trajs, 5.0, 1.0);
  EXPECT_EQ(m.initial_links, 0);
  EXPECT_DOUBLE_EQ(m.stable_link_ratio, 1.0);
  EXPECT_FALSE(m.global_connectivity);  // two robots, never connected
}

TEST(TransitionSim, SampleCountHonored) {
  std::vector<Trajectory> trajs{straight({0, 0}, {1, 0})};
  auto m = simulate_transition(trajs, 5.0, 1.0, 50);
  EXPECT_EQ(m.samples, 51);  // 50 uniform + transition boundary
}

}  // namespace
}  // namespace anr
