// Mission-service runtime: planner cache keying, single-flight
// construction, queue backpressure, graceful shutdown, and the
// thread-safety / determinism contract of MarchPlanner::plan() const.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "common/check.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "io/plan_io.h"
#include "mesh/delaunay.h"
#include "runtime/mission_service.h"
#include "runtime/planner_cache.h"

namespace anr {
namespace {

using runtime::CacheKey;
using runtime::JobResult;
using runtime::JobStatus;
using runtime::MissionService;
using runtime::OverflowPolicy;
using runtime::PlanJob;
using runtime::PlannerCache;
using runtime::ServiceOptions;

// Small-but-real planner settings so runtime tests stay fast.
PlannerOptions fast_options() {
  PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  return opt;
}

struct Fixture {
  Scenario sc = scenario(1);
  std::vector<Vec2> deploy =
      optimal_coverage_positions(sc.m1, 100, /*seed=*/1, uniform_density())
          .positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();

  PlanJob job(const std::string& id) const {
    PlanJob j;
    j.id = id;
    j.m1 = sc.m1;
    j.m2_shape = sc.m2_shape;
    j.r_c = sc.comm_range;
    j.m2_offset = offset;
    j.positions = deploy;
    j.options = fast_options();
    return j;
  }
};

const Fixture& fixture() {
  static Fixture f;  // one deployment computation for the whole binary
  return f;
}

// --- CacheKey ---------------------------------------------------------------

TEST(CacheKey, EqualConfigurationsProduceEqualKeys) {
  const Fixture& f = fixture();
  CacheKey a = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                            fast_options());
  CacheKey b = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                            fast_options());
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_TRUE(a == b);
}

TEST(CacheKey, EveryFieldParticipates) {
  const Fixture& f = fixture();
  CacheKey base = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                               fast_options());

  PlannerOptions o1 = fast_options();
  o1.objective = MarchObjective::kMinDistance;
  EXPECT_FALSE(base ==
               CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, o1));

  PlannerOptions o2 = fast_options();
  o2.cvt_samples += 1;
  EXPECT_FALSE(base ==
               CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, o2));

  PlannerOptions o3 = fast_options();
  o3.mesher.target_grid_points += 1;
  EXPECT_FALSE(base ==
               CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, o3));

  PlannerOptions o4 = fast_options();
  o4.safe_adjustment = false;
  EXPECT_FALSE(base ==
               CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, o4));

  // r_c and geometry.
  EXPECT_FALSE(base == CacheKey::of(f.sc.m1, f.sc.m2_shape,
                                    f.sc.comm_range + 1.0, fast_options()));
  Scenario other = scenario(2);
  EXPECT_FALSE(base == CacheKey::of(f.sc.m1, other.m2_shape, f.sc.comm_range,
                                    fast_options()));
}

TEST(CacheKey, EqualityComparesBytesNotJustHash) {
  // Two keys with identical hashes but different bytes must not compare
  // equal. We can't force an FNV collision cheaply, so check the contract
  // from the other side: equal bytes <=> equal keys, and the byte strings
  // of distinct configurations differ even when truncated hashes might
  // not. The byte encoding is the ground truth equality uses.
  const Fixture& f = fixture();
  PlannerOptions alt = fast_options();
  alt.max_adjust_steps += 1;
  CacheKey a = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                            fast_options());
  CacheKey b = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, alt);
  EXPECT_NE(a.bytes(), b.bytes());
  EXPECT_FALSE(a == b);
  CacheKey a2 = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                             fast_options());
  EXPECT_EQ(a.bytes(), a2.bytes());
  EXPECT_TRUE(a == a2);
}

TEST(CacheKey, ClosuresRequireTag) {
  const Fixture& f = fixture();
  PlannerOptions with_density = fast_options();
  with_density.density = uniform_density();
  EXPECT_THROW(CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                            with_density),
               ContractViolation);
  CacheKey tagged_a = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                   with_density, "uniform");
  CacheKey tagged_b = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                   with_density, "hotspot@3,4");
  EXPECT_FALSE(tagged_a == tagged_b);
}

// --- PlannerCache -----------------------------------------------------------

TEST(PlannerCache, SingleFlightUnderConcurrentMisses) {
  const Fixture& f = fixture();
  PlannerCache cache(8);
  CacheKey key = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                              fast_options());
  std::atomic<int> builds{0};
  auto build = [&] {
    builds.fetch_add(1);
    // Widen the race window: every other thread should arrive while the
    // first is still constructing.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::make_unique<MarchPlanner>(f.sc.m1, f.sc.m2_shape,
                                          f.sc.comm_range, fast_options());
  };

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const MarchPlanner>> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { got[static_cast<std::size_t>(i)] = cache.get_or_build(key, build); });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], got[0]);
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.constructions, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(PlannerCache, DistinctOptionsBuildDistinctPlanners) {
  const Fixture& f = fixture();
  PlannerCache cache(8);
  PlannerOptions alt = fast_options();
  alt.objective = MarchObjective::kMinDistance;
  auto p1 = cache.get_or_build(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                               fast_options());
  auto p2 = cache.get_or_build(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, alt);
  auto p1_again = cache.get_or_build(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                     fast_options());
  EXPECT_NE(p1, p2);
  EXPECT_EQ(p1, p1_again);
  auto stats = cache.stats();
  EXPECT_EQ(stats.constructions, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(PlannerCache, ConstructionFailurePropagatesAndAllowsRetry) {
  PlannerCache cache(4);
  const Fixture& f = fixture();
  CacheKey key = CacheKey::of(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                              fast_options());
  EXPECT_THROW(
      cache.get_or_build(
          key, []() -> std::unique_ptr<MarchPlanner> {
            throw std::runtime_error("boom");
          }),
      std::runtime_error);
  // The placeholder was evicted; a later build succeeds.
  bool constructed = false;
  auto p = cache.get_or_build(
      key,
      [&] {
        return std::make_unique<MarchPlanner>(f.sc.m1, f.sc.m2_shape,
                                              f.sc.comm_range, fast_options());
      },
      &constructed);
  EXPECT_TRUE(constructed);
  EXPECT_NE(p, nullptr);
}

TEST(PlannerCache, EvictsLeastRecentlyUsedWhenFull) {
  const Fixture& f = fixture();
  PlannerCache cache(2);
  PlannerOptions a = fast_options();
  PlannerOptions b = fast_options();
  b.cvt_samples += 1;
  PlannerOptions c = fast_options();
  c.cvt_samples += 2;
  cache.get_or_build(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, a);
  cache.get_or_build(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, b);
  // Touch a so b is the LRU, then insert c.
  cache.get_or_build(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, a);
  cache.get_or_build(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, c);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  // a must still be resident (hit, no new construction).
  bool constructed = true;
  cache.get_or_build(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, a, {},
                     &constructed);
  EXPECT_FALSE(constructed);
}

// --- MissionService ---------------------------------------------------------

TEST(MissionService, BatchCompletesAndCountsCacheHits) {
  const Fixture& f = fixture();
  ServiceOptions so;
  so.threads = 4;
  MissionService service(so);
  std::vector<PlanJob> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(f.job("j" + std::to_string(i)));
  std::vector<JobResult> results = service.run_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 6u);
  int hits = 0;
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status, JobStatus::kOk);
    EXPECT_FALSE(r.plan.trajectories.empty());
    EXPECT_FALSE(r.degradation.degraded);
    if (r.cache_hit) ++hits;
  }
  EXPECT_EQ(hits, 5);  // one construction, five shared
  auto stats = service.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.errored, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.cache.constructions, 1u);
  EXPECT_EQ(stats.plan_exec.count, 6u);
  EXPECT_GT(stats.plan_exec.mean, 0.0);
}

TEST(MissionService, InvalidJobsAreRejectedTypedAtSubmit) {
  const Fixture& f = fixture();
  ServiceOptions so;
  so.threads = 1;
  MissionService service(so);

  PlanJob empty = f.job("empty");
  empty.positions.clear();
  JobResult r_empty = service.submit(std::move(empty)).get();
  EXPECT_FALSE(r_empty.ok);
  EXPECT_EQ(r_empty.status, JobStatus::kRejectedInvalid);
  EXPECT_NE(r_empty.error.find("no robots"), std::string::npos);

  PlanJob nan = f.job("nan");
  nan.positions[3].x = std::numeric_limits<double>::quiet_NaN();
  JobResult r_nan = service.submit(std::move(nan)).get();
  EXPECT_EQ(r_nan.status, JobStatus::kRejectedInvalid);
  EXPECT_NE(r_nan.error.find("robot 3"), std::string::npos);

  PlanJob inf = f.job("inf");
  inf.m2_offset.y = std::numeric_limits<double>::infinity();
  EXPECT_EQ(service.submit(std::move(inf)).get().status,
            JobStatus::kRejectedInvalid);

  PlanJob bad_rc = f.job("bad_rc");
  bad_rc.r_c = 0.0;
  EXPECT_EQ(service.submit(std::move(bad_rc)).get().status,
            JobStatus::kRejectedInvalid);

  PlanJob bad_deadline = f.job("bad_deadline");
  bad_deadline.deadline_seconds = -1.0;
  EXPECT_EQ(service.submit(std::move(bad_deadline)).get().status,
            JobStatus::kRejectedInvalid);

  // The service is not poisoned: a good job still completes.
  JobResult rg = service.submit(f.job("good")).get();
  EXPECT_TRUE(rg.ok) << rg.error;
  auto stats = service.stats();
  EXPECT_EQ(stats.rejected_invalid, 5u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.errored, 0u);
}

TEST(MissionService, UnplannableJobDegradesToBaselineWithoutPoisoning) {
  const Fixture& f = fixture();
  ServiceOptions so;
  so.threads = 2;
  MissionService service(so);
  // Two robots: the paper pipeline needs >= 4, so the fallback chain must
  // end at the Hungarian baseline instead of failing the job.
  PlanJob tiny = f.job("tiny");
  tiny.positions.resize(2);
  JobResult rt = service.submit(std::move(tiny)).get();
  EXPECT_TRUE(rt.ok) << rt.error;
  EXPECT_EQ(rt.status, JobStatus::kDegraded);
  EXPECT_TRUE(rt.degradation.degraded);
  EXPECT_EQ(rt.degradation.mode, PlanMode::kBaselineFallback);
  ASSERT_EQ(rt.degradation.attempts.size(), 3u);
  EXPECT_FALSE(rt.degradation.attempts[0].succeeded);
  EXPECT_FALSE(rt.degradation.attempts[1].succeeded);
  EXPECT_TRUE(rt.degradation.attempts[2].succeeded);
  EXPECT_EQ(rt.plan.trajectories.size(), 2u);

  std::future<JobResult> fg = service.submit(f.job("good"));
  JobResult rg = fg.get();
  EXPECT_TRUE(rg.ok) << rg.error;
  EXPECT_EQ(rg.status, JobStatus::kOk);
  auto stats = service.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.errored, 0u);
}

TEST(MissionService, StrictModeStillFailsUnplannableJobs) {
  const Fixture& f = fixture();
  ServiceOptions so;
  so.threads = 1;
  so.degraded_fallback = false;
  so.max_retries = 2;
  MissionService service(so);
  PlanJob tiny = f.job("tiny");
  tiny.positions.resize(2);
  JobResult r = service.submit(std::move(tiny)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, JobStatus::kError);
  EXPECT_EQ(r.retries, 2);  // bounded retry budget fully consumed
  auto stats = service.stats();
  EXPECT_EQ(stats.errored, 1u);
  EXPECT_EQ(stats.retried, 2u);
}

TEST(MissionService, DeadlineWatchdogReapsQueuedJobs) {
  const Fixture& f = fixture();
  ServiceOptions so;
  so.threads = 1;
  so.watchdog_period_seconds = 0.002;
  MissionService service(so);
  // Occupy the single worker, then queue a job whose deadline expires
  // long before the worker frees up.
  std::future<JobResult> busy = service.submit(f.job("busy"));
  PlanJob doomed = f.job("doomed");
  doomed.deadline_seconds = 1e-4;
  std::future<JobResult> reaped = service.submit(std::move(doomed));
  JobResult rr = reaped.get();
  EXPECT_FALSE(rr.ok);
  EXPECT_EQ(rr.status, JobStatus::kDeadlineExpired);
  EXPECT_NE(rr.error.find("deadline"), std::string::npos);
  EXPECT_TRUE(busy.get().ok);
  EXPECT_EQ(service.stats().deadline_expired, 1u);
}

TEST(MissionService, RejectPolicyShedsLoadWhenQueueFull) {
  const Fixture& f = fixture();
  ServiceOptions so;
  so.threads = 1;
  so.queue_capacity = 1;
  so.overflow = OverflowPolicy::kReject;
  MissionService service(so);

  // Saturate: worker busy with j0 (plans take >> submission time), j1
  // fills the single queue slot, j2.. must be shed.
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit(f.job("j" + std::to_string(i))));
  }
  int ok = 0, rejected = 0;
  for (auto& fut : futures) {
    JobResult r = fut.get();
    if (r.ok) {
      ++ok;
    } else {
      EXPECT_EQ(r.status, JobStatus::kRejectedQueueFull);
      EXPECT_NE(r.error.find("queue full"), std::string::npos) << r.error;
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1);
  EXPECT_GE(ok, 1);
  auto stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full, static_cast<std::uint64_t>(rejected));
  EXPECT_LE(stats.queue_high_water, so.queue_capacity);
}

TEST(MissionService, BlockPolicyCompletesEverythingWithinCapacity) {
  const Fixture& f = fixture();
  ServiceOptions so;
  so.threads = 2;
  so.queue_capacity = 1;
  so.overflow = OverflowPolicy::kBlock;
  MissionService service(so);
  std::vector<PlanJob> jobs;
  for (int i = 0; i < 5; ++i) jobs.push_back(f.job("j" + std::to_string(i)));
  std::vector<JobResult> results = service.run_batch(std::move(jobs));
  for (const JobResult& r : results) EXPECT_TRUE(r.ok) << r.error;
  auto stats = service.stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_LE(stats.queue_high_water, so.queue_capacity);
}

TEST(MissionService, GracefulShutdownDrainsAcceptedJobs) {
  const Fixture& f = fixture();
  ServiceOptions so;
  so.threads = 2;
  MissionService service(so);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(service.submit(f.job("j" + std::to_string(i))));
  }
  service.shutdown();  // must drain all five, not abandon them
  for (auto& fut : futures) {
    JobResult r = fut.get();
    EXPECT_TRUE(r.ok) << r.error;
  }
  EXPECT_EQ(service.stats().completed, 5u);

  // Intake is closed now.
  JobResult late = service.submit(f.job("late")).get();
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.status, JobStatus::kRejectedShutdown);
  EXPECT_NE(late.error.find("shut down"), std::string::npos);
  EXPECT_EQ(service.stats().rejected_shutdown, 1u);
}

// --- plan() thread-safety + determinism ------------------------------------

TEST(PlannerConcurrency, EightThreadsProduceIdenticalPlans) {
  const Fixture& f = fixture();
  MarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                       fast_options());
  std::string reference =
      plan_to_json(planner.plan(f.deploy, f.offset)).dump();

  constexpr int kThreads = 8;
  std::vector<std::string> produced(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      produced[static_cast<std::size_t>(i)] =
          plan_to_json(planner.plan(f.deploy, f.offset)).dump();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(produced[static_cast<std::size_t>(i)], reference)
        << "thread " << i << " diverged";
  }
}

TEST(PlannerConcurrency, BatchOutputIsByteIdenticalAcrossThreadCounts) {
  const Fixture& f = fixture();
  auto run = [&](int threads) {
    ServiceOptions so;
    so.threads = threads;
    MissionService service(so);
    std::vector<PlanJob> jobs;
    for (int i = 0; i < 8; ++i) jobs.push_back(f.job("j"));
    std::vector<std::string> dumps;
    for (JobResult& r : service.run_batch(std::move(jobs))) {
      EXPECT_TRUE(r.ok) << r.error;
      dumps.push_back(plan_to_json(r.plan).dump());
    }
    return dumps;
  };
  std::vector<std::string> serial = run(1);
  std::vector<std::string> parallel = run(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 1; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], serial[0]);
  }
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[0]) << "job " << i;
  }
}

TEST(TriangleMeshConcurrency, ConcurrentAdjacencyQueriesAreSafe) {
  // The lazy adjacency cache is the one piece of shared mutable state on
  // the const query path; hammer it from many threads starting cold.
  const Fixture& f = fixture();
  TriangleMesh mesh = delaunay(f.deploy);
  constexpr int kThreads = 8;
  std::vector<std::size_t> edge_counts(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      std::size_t acc = mesh.edges().size();
      for (VertexId v = 0; v < static_cast<VertexId>(mesh.num_vertices());
           ++v) {
        acc += mesh.neighbors(v).size();
      }
      edge_counts[static_cast<std::size_t>(i)] = acc;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(edge_counts[static_cast<std::size_t>(i)], edge_counts[0]);
  }
}

}  // namespace
}  // namespace anr
