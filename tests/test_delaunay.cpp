// Delaunay triangulation: structural and empty-circumcircle properties.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/convex_hull.h"
#include "geom/predicates.h"
#include "mesh/delaunay.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(Delaunay, TriangleOfThree) {
  TriangleMesh m = delaunay({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(m.num_triangles(), 1u);
  EXPECT_TRUE(m.all_ccw());
}

TEST(Delaunay, SquareGivesTwoTriangles) {
  TriangleMesh m = delaunay({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(m.num_triangles(), 2u);
  EXPECT_EQ(m.edges().size(), 5u);
}

TEST(Delaunay, InteriorPointFan) {
  TriangleMesh m = delaunay({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}});
  EXPECT_EQ(m.num_triangles(), 4u);
  EXPECT_FALSE(m.is_boundary_vertex(4));
}

// Property sweep over random point sets: triangulation covers the convex
// hull, is edge-manifold, CCW, and (near-)Delaunay.
class DelaunayProperty : public ::testing::TestWithParam<int> {};

TEST_P(DelaunayProperty, StructureAndEmptyCircumcircle) {
  auto pts = testutil::random_points(120, 0.0, 100.0,
                                     static_cast<std::uint64_t>(GetParam()));
  TriangleMesh m = delaunay(pts);
  EXPECT_TRUE(m.all_ccw());
  EXPECT_TRUE(m.edge_manifold());
  EXPECT_EQ(m.euler_characteristic(), 1);  // triangulated disk

  // Total triangle area == hull area.
  double tri_area = 0.0;
  for (const Tri& t : m.triangles()) {
    tri_area += 0.5 * signed_area2(m.position(t[0]), m.position(t[1]),
                                   m.position(t[2]));
  }
  EXPECT_NEAR(tri_area, convex_hull(pts).area(), 1e-6);

  // Empty circumcircle with a tolerance: no other point strictly inside.
  for (const Tri& t : m.triangles()) {
    Vec2 a = m.position(t[0]), b = m.position(t[1]), c = m.position(t[2]);
    Vec2 cc = circumcenter(a, b, c);
    double r = distance(cc, a);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (static_cast<VertexId>(i) == t[0] || static_cast<VertexId>(i) == t[1] ||
          static_cast<VertexId>(i) == t[2]) {
        continue;
      }
      EXPECT_GE(distance(cc, pts[i]), r * (1.0 - 1e-7))
          << "point " << i << " violates empty circumcircle";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Delaunay, NearCocircularLatticeTerminates) {
  // A perfect square lattice is maximally cocircular; the epsilon guard
  // must still terminate with a full triangulation.
  std::vector<Vec2> pts;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      pts.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  TriangleMesh m = delaunay(pts);
  EXPECT_TRUE(m.edge_manifold());
  double tri_area = 0.0;
  for (const Tri& t : m.triangles()) {
    double a2 = signed_area2(m.position(t[0]), m.position(t[1]), m.position(t[2]));
    // Exactly collinear hull rows may yield zero-area slivers (documented;
    // consumers filter them) but never inverted triangles.
    EXPECT_GE(a2, 0.0);
    tri_area += 0.5 * a2;
  }
  EXPECT_NEAR(tri_area, 49.0, 1e-9);
}

TEST(Delaunay, VerticesPreserved) {
  auto pts = testutil::random_points(30, -5.0, 5.0, 9);
  TriangleMesh m = delaunay(pts);
  ASSERT_EQ(m.num_vertices(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(m.position(static_cast<VertexId>(i)), pts[i]);
  }
}

// Structural sanity checks on large inputs, which cross the spatial-sort
// threshold (serpentine insertion order + hinted walk point location).
TEST(Delaunay, LargeRandomCloudIsValid) {
  auto pts = testutil::random_points(5000, 0.0, 1000.0, 77);
  TriangleMesh m = delaunay(pts);
  ASSERT_EQ(m.num_vertices(), pts.size());
  EXPECT_TRUE(m.all_ccw());
  EXPECT_TRUE(m.edge_manifold());
  EXPECT_EQ(m.euler_characteristic(), 1);
  double tri_area = 0.0;
  for (const Tri& t : m.triangles()) {
    tri_area += 0.5 * signed_area2(m.position(t[0]), m.position(t[1]),
                                   m.position(t[2]));
  }
  EXPECT_NEAR(tri_area, convex_hull(pts).area(), 1e-5 * tri_area);
}

TEST(Delaunay, LargeLatticeTerminates) {
  // 70x70 lattice: degenerate (cocircular) *and* above the spatial-sort
  // threshold, so hinted walks traverse the worst-case geometry.
  std::vector<Vec2> pts;
  for (int x = 0; x < 70; ++x) {
    for (int y = 0; y < 70; ++y) {
      pts.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  TriangleMesh m = delaunay(pts);
  EXPECT_TRUE(m.edge_manifold());
  EXPECT_EQ(m.euler_characteristic(), 1);
  double tri_area = 0.0;
  for (const Tri& t : m.triangles()) {
    double a2 =
        signed_area2(m.position(t[0]), m.position(t[1]), m.position(t[2]));
    EXPECT_GE(a2, 0.0);
    tri_area += 0.5 * a2;
  }
  // On exactly cocircular input the epsilon-guarded predicates admit
  // order-dependent sliver artifacts (the documented zero-area slivers,
  // plus overlap of up to ~a lattice cell under spatially sorted
  // insertion). Structure stays manifold/disk; area is near-exact.
  EXPECT_NEAR(tri_area, 69.0 * 69.0, 2.0);
}

TEST(Delaunay, SpatialSortPreservesInputIndexing) {
  // The serpentine insertion order is internal: vertex ids must still
  // match input order above the sort threshold.
  auto pts = testutil::random_points(3000, -50.0, 50.0, 5);
  TriangleMesh m = delaunay(pts);
  ASSERT_EQ(m.num_vertices(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(m.position(static_cast<VertexId>(i)), pts[i]);
  }
}

TEST(Delaunay, LargeCloudEmptyCircumcircleSampled) {
  // Full O(n^2) verification is too slow at n=4096; spot-check the empty-
  // circumcircle property for a deterministic sample of triangles against
  // all points.
  auto pts = testutil::random_points(4096, 0.0, 500.0, 13);
  TriangleMesh m = delaunay(pts);
  const auto& tris = m.triangles();
  for (std::size_t ti = 0; ti < tris.size(); ti += 97) {
    const Tri& t = tris[ti];
    Vec2 a = m.position(t[0]), b = m.position(t[1]), c = m.position(t[2]);
    Vec2 cc = circumcenter(a, b, c);
    double r = distance(cc, a);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (static_cast<VertexId>(i) == t[0] ||
          static_cast<VertexId>(i) == t[1] ||
          static_cast<VertexId>(i) == t[2]) {
        continue;
      }
      ASSERT_GE(distance(cc, pts[i]), r * (1.0 - 1e-7))
          << "triangle " << ti << ": point " << i
          << " violates empty circumcircle";
    }
  }
}

}  // namespace
}  // namespace anr
