// Delaunay triangulation: structural and empty-circumcircle properties.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/convex_hull.h"
#include "geom/predicates.h"
#include "mesh/delaunay.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(Delaunay, TriangleOfThree) {
  TriangleMesh m = delaunay({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(m.num_triangles(), 1u);
  EXPECT_TRUE(m.all_ccw());
}

TEST(Delaunay, SquareGivesTwoTriangles) {
  TriangleMesh m = delaunay({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(m.num_triangles(), 2u);
  EXPECT_EQ(m.edges().size(), 5u);
}

TEST(Delaunay, InteriorPointFan) {
  TriangleMesh m = delaunay({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}});
  EXPECT_EQ(m.num_triangles(), 4u);
  EXPECT_FALSE(m.is_boundary_vertex(4));
}

// Property sweep over random point sets: triangulation covers the convex
// hull, is edge-manifold, CCW, and (near-)Delaunay.
class DelaunayProperty : public ::testing::TestWithParam<int> {};

TEST_P(DelaunayProperty, StructureAndEmptyCircumcircle) {
  auto pts = testutil::random_points(120, 0.0, 100.0,
                                     static_cast<std::uint64_t>(GetParam()));
  TriangleMesh m = delaunay(pts);
  EXPECT_TRUE(m.all_ccw());
  EXPECT_TRUE(m.edge_manifold());
  EXPECT_EQ(m.euler_characteristic(), 1);  // triangulated disk

  // Total triangle area == hull area.
  double tri_area = 0.0;
  for (const Tri& t : m.triangles()) {
    tri_area += 0.5 * signed_area2(m.position(t[0]), m.position(t[1]),
                                   m.position(t[2]));
  }
  EXPECT_NEAR(tri_area, convex_hull(pts).area(), 1e-6);

  // Empty circumcircle with a tolerance: no other point strictly inside.
  for (const Tri& t : m.triangles()) {
    Vec2 a = m.position(t[0]), b = m.position(t[1]), c = m.position(t[2]);
    Vec2 cc = circumcenter(a, b, c);
    double r = distance(cc, a);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (static_cast<VertexId>(i) == t[0] || static_cast<VertexId>(i) == t[1] ||
          static_cast<VertexId>(i) == t[2]) {
        continue;
      }
      EXPECT_GE(distance(cc, pts[i]), r * (1.0 - 1e-7))
          << "point " << i << " violates empty circumcircle";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Delaunay, NearCocircularLatticeTerminates) {
  // A perfect square lattice is maximally cocircular; the epsilon guard
  // must still terminate with a full triangulation.
  std::vector<Vec2> pts;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      pts.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  TriangleMesh m = delaunay(pts);
  EXPECT_TRUE(m.edge_manifold());
  double tri_area = 0.0;
  for (const Tri& t : m.triangles()) {
    double a2 = signed_area2(m.position(t[0]), m.position(t[1]), m.position(t[2]));
    // Exactly collinear hull rows may yield zero-area slivers (documented;
    // consumers filter them) but never inverted triangles.
    EXPECT_GE(a2, 0.0);
    tri_area += 0.5 * a2;
  }
  EXPECT_NEAR(tri_area, 49.0, 1e-9);
}

TEST(Delaunay, VerticesPreserved) {
  auto pts = testutil::random_points(30, -5.0, 5.0, 9);
  TriangleMesh m = delaunay(pts);
  ASSERT_EQ(m.num_vertices(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(m.position(static_cast<VertexId>(i)), pts[i]);
  }
}

}  // namespace
}  // namespace anr
