// Fast-marching differential oracles, property sweeps, determinism pins,
// and the ToA golden (ISSUE 10 satellite battery).
//
// The differential oracle: on a uniform cost field the Eikonal solution
// IS Euclidean distance, so the solver must match it within O(h) and
// extracted paths must hug the straight chord. On arbitrary cost fields
// two exact properties survive discretization: arrival times lower-bound
// min_cost × Euclidean distance (the Godunov update preserves the bound
// inductively), and ToA never decreases along an extracted path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/task_arena.h"
#include "geom/segment.h"
#include "io/terrain_io.h"
#include "march/terrain_router.h"
#include "terrain/fast_marching.h"

namespace anr {
namespace {

BBox box(double x0, double y0, double x1, double y1) {
  BBox b;
  b.expand({x0, y0});
  b.expand({x1, y1});
  return b;
}

CostFieldSpec uniform_spec(int max_cells = 64) {
  CostFieldSpec spec;
  spec.bounds = box(0.0, 0.0, 640.0, 640.0);
  spec.max_cells = max_cells;
  return spec;
}

// Deterministic non-uniform field: rolling terrain with slope cost plus
// seeded mud patches.
CostField random_field(std::uint64_t seed, bool with_keep_out = false) {
  CostFieldSpec spec;
  spec.bounds = box(0.0, 0.0, 800.0, 600.0);
  spec.max_cells = 80;
  spec.slope_weight = 3.0;
  Rng rng(seed);
  for (int i = 0; i < 4; ++i) {
    MudPatch m;
    m.center = {rng.uniform(100.0, 700.0), rng.uniform(100.0, 500.0)};
    m.radius = rng.uniform(40.0, 120.0);
    m.cost = rng.uniform(1.5, 6.0);
    spec.mud.push_back(m);
  }
  if (with_keep_out) {
    spec.keep_out.push_back(make_rect({350.0, 150.0}, {450.0, 450.0}));
  }
  HeightField terrain =
      HeightField::rolling(spec.bounds, 12, 40.0, 120.0, seed + 17);
  return CostField::build(spec, terrain);
}

double chord_deviation(Vec2 p, Vec2 a, Vec2 b) {
  const Segment s{a, b};
  return distance(p, lerp(a, b, closest_point_param(s, p)));
}

TEST(FastMarch, UniformToaMatchesEuclideanWithinOh) {
  const CostField field = CostField::build(uniform_spec(), HeightField{});
  ASSERT_TRUE(field.uniform());
  const Vec2 source{321.0, 317.0};
  const FastMarchResult fm = fast_march(field, source);
  EXPECT_EQ(fm.accepted, field.cell_count());

  const double h = field.cell_size();
  double worst = 0.0;
  for (int i = 0; i < field.cell_count(); ++i) {
    const double want = distance(source, field.center(i));
    const double got = fm.toa[static_cast<std::size_t>(i)];
    ASSERT_LT(got, CostField::kInf);
    // Exact lower bound; upper error is O(h) from the source singularity.
    EXPECT_GE(got, want - 1e-9);
    worst = std::max(worst, got - want);
  }
  EXPECT_LE(worst, 2.0 * h);
}

TEST(FastMarch, UniformPathsWithinOneCellOfStraight) {
  const CostField field = CostField::build(uniform_spec(), HeightField{});
  const Vec2 source{50.0, 60.0};
  const FastMarchResult fm = fast_march(field, source);
  const Vec2 goals[] = {{600.0, 600.0}, {600.0, 70.0}, {70.0, 590.0},
                        {320.0, 610.0}, {610.0, 330.0}};
  for (Vec2 goal : goals) {
    const GeodesicPath path = extract_geodesic(field, fm, source, goal);
    ASSERT_TRUE(path.ok) << path.failure;
    ASSERT_GE(path.points.size(), 2u);
    EXPECT_EQ(path.points.front(), source);
    EXPECT_EQ(path.points.back(), goal);
    for (Vec2 p : path.points) {
      EXPECT_LE(chord_deviation(p, source, goal),
                field.cell_size() + 1e-9);
    }
  }
}

TEST(FastMarch, ToaLowerBoundsMinCostTimesEuclidean) {
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    const CostField field = random_field(seed);
    ASSERT_FALSE(field.uniform());
    const Vec2 source{80.0, 90.0};
    const FastMarchResult fm = fast_march(field, source);
    for (int i = 0; i < field.cell_count(); ++i) {
      const double got = fm.toa[static_cast<std::size_t>(i)];
      if (got == CostField::kInf) continue;
      const double bound = field.min_cost() * distance(source, field.center(i));
      EXPECT_GE(got, bound - 1e-6) << "seed " << seed << " cell " << i;
    }
  }
}

TEST(FastMarch, ToaNeverDecreasesAlongExtractedPaths) {
  for (std::uint64_t seed : {3ull, 11ull}) {
    const CostField field = random_field(seed, /*with_keep_out=*/true);
    const Vec2 source{80.0, 90.0};
    const FastMarchResult fm = fast_march(field, source);
    const Vec2 goals[] = {{700.0, 500.0}, {700.0, 120.0}, {200.0, 520.0}};
    for (Vec2 goal : goals) {
      const GeodesicPath path = extract_geodesic(field, fm, source, goal);
      ASSERT_TRUE(path.ok) << path.failure;
      double prev = -1e300;
      for (Vec2 p : path.points) {
        const double t = sample_toa(field, fm.toa, p);
        ASSERT_LT(t, CostField::kInf);
        EXPECT_GE(t, prev - 1e-6 * (1.0 + std::abs(prev)));
        prev = t;
      }
    }
  }
}

TEST(FastMarch, KeepOutPathsNeverCrossBlockedCells) {
  const CostField field = random_field(5, /*with_keep_out=*/true);
  ASSERT_TRUE(field.has_blocked());
  const Vec2 source{100.0, 300.0};
  const Vec2 goal{700.0, 300.0};  // straight chord crosses the keep-out
  ASSERT_TRUE(field.segment_blocked(source, goal));
  const FastMarchResult fm = fast_march(field, source);
  const GeodesicPath path = extract_geodesic(field, fm, source, goal);
  ASSERT_TRUE(path.ok) << path.failure;
  double len = 0.0;
  for (std::size_t i = 0; i + 1 < path.points.size(); ++i) {
    EXPECT_FALSE(field.segment_blocked(path.points[i], path.points[i + 1]));
    len += distance(path.points[i], path.points[i + 1]);
  }
  EXPECT_GT(len, distance(source, goal));  // it detoured
}

TEST(FastMarch, UphillPenaltyIsAsymmetric) {
  CostFieldSpec spec;
  spec.bounds = box(0.0, 0.0, 400.0, 200.0);
  spec.max_cells = 80;
  spec.uphill_penalty = 4.0;
  // Monotone ramp: higher ground toward +x.
  const HeightField ramp({Hill{{400.0, 100.0}, 120.0, 300.0}});
  const CostField field = CostField::build(spec, ramp);
  ASSERT_FALSE(field.uniform());
  const Vec2 low{60.0, 100.0}, high{340.0, 100.0};
  const FastMarchResult up = fast_march(field, low);
  const FastMarchResult down = fast_march(field, high);
  const double t_up = sample_toa(field, up.toa, high);
  const double t_down = sample_toa(field, down.toa, low);
  ASSERT_LT(t_up, CostField::kInf);
  ASSERT_LT(t_down, CostField::kInf);
  EXPECT_GT(t_up, t_down * 1.2);
}

TEST(FastMarch, MudDetourBeatsStraightThrough) {
  CostFieldSpec spec;
  spec.bounds = box(0.0, 0.0, 600.0, 400.0);
  spec.max_cells = 60;
  spec.mud.push_back({{300.0, 200.0}, 90.0, 8.0});
  const CostField field = CostField::build(spec, HeightField{});
  const Vec2 source{60.0, 200.0}, goal{540.0, 200.0};
  const FastMarchResult fm = fast_march(field, source);
  const double t = sample_toa(field, fm.toa, goal);
  ASSERT_LT(t, CostField::kInf);
  // Cheaper than wading straight through the mud, costlier than if the
  // mud were not there at all.
  EXPECT_LT(t, field.segment_cost(source, goal));
  EXPECT_GT(t, distance(source, goal) * 1.01);
}

TEST(FastMarch, ByteDeterministicAcrossRepeatRuns) {
  const CostField field = random_field(9, /*with_keep_out=*/true);
  const Vec2 source{120.0, 120.0};
  const FastMarchResult a = fast_march(field, source);
  const FastMarchResult b = fast_march(field, source);
  ASSERT_EQ(a.toa.size(), b.toa.size());
  EXPECT_EQ(toa_checksum(a.toa), toa_checksum(b.toa));
  for (std::size_t i = 0; i < a.toa.size(); ++i) {
    ASSERT_EQ(a.toa[i], b.toa[i]) << "cell " << i;
  }
}

TEST(FastMarch, RouterSolveByteIdenticalAtAnyThreadCount) {
  TrajectoryOptions opt;
  opt.motion = MotionModel::kTerrainGeodesic;
  opt.terrain.slope_weight = 3.0;
  opt.terrain.max_cells = 48;
  opt.terrain.mud.push_back({{400.0, 300.0}, 110.0, 4.0});
  opt.terrain.keep_out.push_back(make_rect({200.0, 100.0}, {260.0, 420.0}));
  opt.terrain.terrain =
      HeightField::rolling(box(0, 0, 800, 600), 10, 30.0, 100.0, 4);

  std::vector<Vec2> starts;
  Rng rng(42);
  for (int i = 0; i < 24; ++i) {
    starts.push_back({rng.uniform(30.0, 770.0), rng.uniform(30.0, 570.0)});
  }

  std::vector<std::uint64_t> reference;
  const int saved = arena_threads();
  for (int threads : {1, 2, 4, 8}) {
    set_arena_threads(threads);
    TerrainRouter router(opt, box(0, 0, 800, 600), 80.0);
    ASSERT_FALSE(router.uniform());
    router.solve(starts);
    std::vector<std::uint64_t> sums;
    for (const FastMarchResult& fm : router.fields()) {
      sums.push_back(toa_checksum(fm.toa));
    }
    if (reference.empty()) {
      reference = sums;
    } else {
      EXPECT_EQ(sums, reference) << "thread count " << threads;
    }
  }
  set_arena_threads(saved);
}

TEST(FastMarch, BoundsCheckedSamplingThrowsOutsideDomain) {
  const CostField field = CostField::build(uniform_spec(), HeightField{});
  const FastMarchResult fm = fast_march(field, {100.0, 100.0});
  EXPECT_THROW(field.cost_at({-5.0, 100.0}), ContractViolation);
  EXPECT_THROW(field.index_of({100.0, 1e9}), ContractViolation);
  EXPECT_THROW(sample_toa(field, fm.toa, {641.0, 100.0}), ContractViolation);
  EXPECT_THROW(fast_march(field, {-1.0, -1.0}), ContractViolation);
  // On-boundary points belong to the edge cells — valid, not clamped from
  // outside.
  EXPECT_NO_THROW(field.cost_at({0.0, 0.0}));
  EXPECT_NO_THROW(field.cost_at({640.0, 640.0}));
}

TEST(FastMarch, SegmentBlockedGridTraversal) {
  CostFieldSpec spec;
  spec.bounds = box(0.0, 0.0, 100.0, 100.0);
  spec.max_cells = 10;
  spec.keep_out.push_back(make_rect({40.0, 40.0}, {60.0, 60.0}));
  const CostField field = CostField::build(spec, HeightField{});
  ASSERT_GT(field.blocked_count(), 0);
  EXPECT_TRUE(field.segment_blocked({10.0, 50.0}, {90.0, 50.0}));
  EXPECT_TRUE(field.segment_blocked({50.0, 10.0}, {50.0, 90.0}));
  EXPECT_TRUE(field.segment_blocked({10.0, 10.0}, {90.0, 90.0}));
  EXPECT_FALSE(field.segment_blocked({10.0, 10.0}, {90.0, 10.0}));
  EXPECT_FALSE(field.segment_blocked({10.0, 75.0}, {90.0, 75.0}));
  EXPECT_FALSE(field.segment_blocked({15.0, 15.0}, {15.0, 85.0}));
}

TEST(TerrainIo, ToaRoundTripAndChecksumValidation) {
  const CostField field = random_field(13);
  const FastMarchResult fm = fast_march(field, {100.0, 100.0});
  const std::string path = "test_fmm_toa_roundtrip.anrtoa";
  std::string err;
  ASSERT_TRUE(save_toa(field, fm.toa, path, &err)) << err;
  auto snap = load_toa(path, &err);
  ASSERT_TRUE(snap.has_value()) << err;
  EXPECT_EQ(snap->nx, field.nx());
  EXPECT_EQ(snap->ny, field.ny());
  EXPECT_EQ(snap->cell, field.cell_size());
  ASSERT_EQ(snap->toa.size(), fm.toa.size());
  for (std::size_t i = 0; i < fm.toa.size(); ++i) {
    ASSERT_EQ(snap->toa[i], fm.toa[i]);
  }

  // Flip one payload byte: the checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char c;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(static_cast<char>(c ^ 0x5a));
  }
  EXPECT_FALSE(load_toa(path, &err).has_value());
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
  std::remove(path.c_str());
}

// Golden pin: the ToA field over a fixed terrain/mud/keep-out scenario.
// Any change to the propagation order (heap tie-breaking, update stencil)
// shows up as a checksum/byte diff here. Regenerate with
// ANR_REGEN_GOLDEN=1.
TEST(FastMarchGolden, ToaFieldBytesPinned) {
  const CostField field = random_field(2026, /*with_keep_out=*/true);
  const FastMarchResult fm = fast_march(field, {80.0, 90.0});
  const std::string golden = std::string(ANR_GOLDEN_DIR) + "/terrain_toa.anrtoa";

  if (std::getenv("ANR_REGEN_GOLDEN") != nullptr) {
    std::string err;
    ASSERT_TRUE(save_toa(field, fm.toa, golden, &err)) << err;
    GTEST_SKIP() << "regenerated " << golden;
  }

  std::string err;
  auto snap = load_toa(golden, &err);
  ASSERT_TRUE(snap.has_value())
      << err << " (run with ANR_REGEN_GOLDEN=1 to create it)";
  EXPECT_EQ(snap->nx, field.nx());
  EXPECT_EQ(snap->ny, field.ny());
  EXPECT_EQ(toa_checksum(snap->toa), toa_checksum(fm.toa));
  ASSERT_EQ(snap->toa.size(), fm.toa.size());
  for (std::size_t i = 0; i < fm.toa.size(); ++i) {
    ASSERT_EQ(snap->toa[i], fm.toa[i]) << "cell " << i;
  }
}

}  // namespace
}  // namespace anr
