// Decentralized execution: the local-knowledge march must (a) collapse
// to exactly the centralized plan when the channel is merely asynchronous
// — zero loss, any delay seed — and (b) degrade gracefully, not
// silently, when the channel loses messages and partitions: distributed
// crash detection via missed-heartbeat quorums, closest-live-neighbor
// coordinator election, and peer-absorb recovery negotiated entirely by
// message. No controller ever reads a global oracle; these tests pin
// both the equivalence and the degradation story byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/rng.h"
#include "coverage/lloyd.h"
#include "fault/fault_schedule.h"
#include "foi/scenario.h"
#include "io/event_io.h"
#include "march/decentralized_engine.h"
#include "march/execution_engine.h"
#include "march/planner.h"

namespace anr {
namespace {

struct DexFixture {
  Scenario sc;
  Vec2 offset;
  std::unique_ptr<MarchPlanner> planner;
  MarchPlan plan;
  FieldOfInterest m2_world;
};

// Plans are expensive; build one per scenario for the whole binary. Same
// golden-set settings as test_parallel_determinism / test_execution_engine.
const DexFixture& fixture(int id) {
  static std::map<int, std::unique_ptr<DexFixture>> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    auto fx = std::make_unique<DexFixture>();
    fx->sc = scenario(id);
    auto deploy = optimal_coverage_positions(fx->sc.m1, 72, /*seed=*/1,
                                             uniform_density())
                      .positions;
    fx->offset = fx->sc.m1.centroid() + Vec2{12.0 * fx->sc.comm_range, 0.0} -
                 fx->sc.m2_shape.centroid();
    PlannerOptions opt;
    opt.mesher.target_grid_points = 350;
    opt.cvt_samples = 4000;
    opt.max_adjust_steps = 5;
    fx->planner = std::make_unique<MarchPlanner>(fx->sc.m1, fx->sc.m2_shape,
                                                 fx->sc.comm_range, opt);
    fx->plan = fx->planner->plan(deploy, fx->offset);
    fx->m2_world = fx->sc.m2_shape.translated(fx->offset);
    it = cache.emplace(id, std::move(fx)).first;
  }
  return *it->second;
}

bool same_bits(const std::vector<Vec2>& a, const std::vector<Vec2>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(Vec2)) == 0;
}

bool has_event(const ExecutionReport& rep, ExecEventType type) {
  return std::any_of(rep.events.begin(), rep.events.end(),
                     [type](const ExecutionEvent& e) { return e.type == type; });
}

/// Drops every link of `robot` during [t0, t0 + duration): a scripted
/// single-robot partition window.
void add_partition(fault::FaultSchedule& schedule, int robot, int num_robots,
                   double t0, double duration) {
  for (int j = 0; j < num_robots; ++j) {
    if (j == robot) continue;
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kLinkDropout;
    e.link_a = std::min(robot, j);
    e.link_b = std::max(robot, j);
    e.t_start = t0;
    e.duration = duration;
    schedule.add(e);
  }
  schedule.normalize();
}

class ZeroLossEquivalence : public ::testing::TestWithParam<int> {};

// The headline guarantee: under zero loss — synchronous or any delay
// seed — the decentralized march lands every robot on exactly the
// centralized plan's final configuration, bit for bit, and a repeat run
// serializes a byte-identical event log.
TEST_P(ZeroLossEquivalence, MatchesCentralizedPlanAcrossDelaySeeds) {
  const DexFixture& fx = fixture(GetParam());
  const int n = static_cast<int>(fx.plan.trajectories.size());

  // The equivalence target is the plan's own final configuration: the
  // decentralized march must land on the trajectory endpoints bit for
  // bit. The centralized executor is held to the same configuration
  // within its termination tolerance (it stops once every robot is
  // within 1e-9 of its end time, so its reported positions sit an
  // interpolation epsilon short of the exact endpoints).
  std::vector<Vec2> plan_ends;
  plan_ends.reserve(static_cast<std::size_t>(n));
  for (const Trajectory& traj : fx.plan.trajectories) {
    plan_ends.push_back(traj.end());
  }

  ExecutionEngine central(fx.sc.comm_range);
  const ExecutionReport base = central.run(fx.plan, {}, fx.m2_world);
  ASSERT_EQ(static_cast<int>(base.final_positions.size()), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_LT(distance(base.final_positions[static_cast<std::size_t>(i)],
                       plan_ends[static_cast<std::size_t>(i)]),
              1e-6)
        << "centralized executor strayed from the plan endpoint, robot " << i;
  }

  for (std::uint64_t delay_seed : {0ull, 1ull, 2ull}) {
    DecentralizedOptions opt;
    opt.max_delay = delay_seed == 0 ? 1 : 3;
    opt.delay_seed = delay_seed;
    DecentralizedEngine engine(fx.sc.comm_range, opt);
    const DecentralizedReport rep = engine.run(fx.plan, {}, fx.m2_world);

    EXPECT_EQ(static_cast<int>(rep.exec.survivors.size()), n)
        << "delay seed " << delay_seed;
    EXPECT_TRUE(rep.exec.crashed.empty());
    EXPECT_FALSE(rep.exec.degraded);
    // The decentralized observational C verdict agrees with the
    // centralized executor's (scenario 6's plan legitimately passes
    // through a split window, so both report it).
    EXPECT_EQ(rep.exec.connected_throughout, base.connected_throughout)
        << "delay seed " << delay_seed;
    EXPECT_TRUE(same_bits(rep.exec.final_positions, plan_ends))
        << "scenario " << GetParam() << " delay seed " << delay_seed
        << ": decentralized march diverged from the centralized plan";

    // Fault-free runs never detect, elect, or absorb — with or without
    // asynchrony. Self-isolation can only happen while the plan itself
    // strands a singleton (scenario 6's split window).
    EXPECT_FALSE(has_event(rep.exec, ExecEventType::kFaultDetected));
    EXPECT_FALSE(has_event(rep.exec, ExecEventType::kRecoveryStarted));
    EXPECT_EQ(rep.absorbs, 0);
    EXPECT_EQ(rep.detections.size(), 0u);
    if (base.connected_throughout) {
      EXPECT_FALSE(has_event(rep.exec, ExecEventType::kIsolated));
      if (opt.max_delay == 1) {
        ASSERT_EQ(rep.exec.events.size(), 1u);
        EXPECT_EQ(rep.exec.events.front().type, ExecEventType::kCompleted);
      }
    }

    // The swarm talked the whole way: heartbeats flowed, nothing needed
    // the reliable layer.
    EXPECT_GT(rep.heartbeats, 0u);
    EXPECT_GT(rep.messages_delivered, 0u);
    EXPECT_EQ(rep.retransmissions, 0u);

    // Byte determinism: same options, same bytes.
    const DecentralizedReport again =
        DecentralizedEngine(fx.sc.comm_range, opt).run(fx.plan, {}, fx.m2_world);
    EXPECT_EQ(events_to_json(rep.exec.events).dump(),
              events_to_json(again.exec.events).dump())
        << "delay seed " << delay_seed;
    EXPECT_TRUE(same_bits(rep.exec.final_positions, again.exec.final_positions));
    EXPECT_EQ(rep.messages_sent, again.messages_sent);
    EXPECT_EQ(rep.bytes_sent, again.bytes_sent);
  }
}

INSTANTIATE_TEST_SUITE_P(GoldenSet, ZeroLossEquivalence,
                         ::testing::Values(1, 5, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Scenario" + std::to_string(info.param);
                         });

// A mid-march crash under 10% message loss: peers must suspect, confirm
// by quorum, elect the closest live neighbor, and absorb — all over the
// lossy channel, and deterministically so.
TEST(Decentralized, LossyCrashIsDetectedAndAbsorbed) {
  const DexFixture& fx = fixture(1);
  fault::FaultSchedule schedule;
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.robot = 7;
  crash.t_start = 0.35 * fx.plan.total_time;
  schedule.add(crash);
  schedule.normalize();

  DecentralizedOptions opt;
  opt.max_delay = 2;
  opt.loss_rate = 0.1;
  DecentralizedEngine engine(fx.sc.comm_range, opt);
  const DecentralizedReport rep = engine.run(fx.plan, schedule, fx.m2_world);

  // The plant killed robot 7; the swarm noticed and recovered without
  // any oracle.
  EXPECT_EQ(rep.exec.crashed, std::vector<int>{7});
  EXPECT_EQ(rep.exec.survivors.size(), 71u);
  ASSERT_EQ(rep.detections.size(), 1u);
  const CrashDetection& det = rep.detections.front();
  EXPECT_EQ(det.robot, 7);
  EXPECT_GE(det.suspected_time, det.crash_time);
  EXPECT_GT(det.detected_time, det.crash_time);
  EXPECT_GT(det.recovered_time, det.detected_time);
  EXPECT_GE(det.coordinator, 0);
  EXPECT_NE(det.coordinator, 7);
  EXPECT_GT(rep.mean_detection_latency, 0.0);
  EXPECT_GT(rep.mean_recovery_latency, 0.0);
  EXPECT_GE(rep.elections, 1);
  EXPECT_GE(rep.absorbs, 1);
  EXPECT_EQ(rep.exec.recoveries, rep.absorbs);

  EXPECT_TRUE(has_event(rep.exec, ExecEventType::kPeerSuspected));
  EXPECT_TRUE(has_event(rep.exec, ExecEventType::kFaultDetected));
  EXPECT_TRUE(has_event(rep.exec, ExecEventType::kCoordinatorElected));
  EXPECT_TRUE(has_event(rep.exec, ExecEventType::kRecoveryFinished));

  // 10% loss really exercised the reliable layer.
  EXPECT_GT(rep.messages_lost, 0u);
  EXPECT_GT(rep.retransmissions, 0u);
  EXPECT_GT(rep.bytes_sent, 0u);

  // Seeded loss is deterministic: the whole story replays byte-equal.
  const DecentralizedReport again =
      DecentralizedEngine(fx.sc.comm_range, opt).run(fx.plan, schedule,
                                                     fx.m2_world);
  EXPECT_EQ(events_to_json(rep.exec.events).dump(),
            events_to_json(again.exec.events).dump());
  EXPECT_TRUE(same_bits(rep.exec.final_positions, again.exec.final_positions));
  EXPECT_EQ(rep.messages_sent, again.messages_sent);
  EXPECT_EQ(rep.retransmissions, again.retransmissions);
}

// A short partition (shorter than suspicion + confirm): neighbors raise
// suspicions, the heal clears every one of them, and nobody is absorbed
// — the suspicion/confirm windows are exactly what makes partitions
// survivable.
TEST(Decentralized, ShortPartitionHealClearsSuspicion) {
  const DexFixture& fx = fixture(1);
  const int n = static_cast<int>(fx.plan.trajectories.size());
  const double dt = fx.plan.total_time / 512.0;

  DecentralizedOptions opt;
  opt.suspicion_ticks = 10;
  opt.suspicion_jitter = 2;
  opt.confirm_ticks = 12;
  fault::FaultSchedule schedule;
  add_partition(schedule, /*robot=*/12, n, 0.3 * fx.plan.total_time,
                /*duration=*/14.0 * dt);

  DecentralizedEngine engine(fx.sc.comm_range, opt);
  const DecentralizedReport rep = engine.run(fx.plan, schedule, fx.m2_world);

  EXPECT_EQ(static_cast<int>(rep.exec.survivors.size()), n);
  EXPECT_TRUE(rep.exec.crashed.empty());
  EXPECT_GE(rep.suspicions, 1);
  EXPECT_TRUE(has_event(rep.exec, ExecEventType::kPeerSuspected));
  EXPECT_TRUE(has_event(rep.exec, ExecEventType::kSuspicionCleared));
  EXPECT_FALSE(has_event(rep.exec, ExecEventType::kFaultDetected));
  EXPECT_EQ(rep.absorbs, 0);
  EXPECT_FALSE(rep.exec.degraded);
  // The partition cut the observational C for the window's duration.
  EXPECT_FALSE(rep.exec.connected_throughout);
  EXPECT_TRUE(rep.exec.final_connected);
}

// A long partition (longer than both the isolation budget and suspicion
// + confirm): the cut-off robot flags itself isolated and marches on
// along its timeline, its peers honestly (and wrongly) declare it dead
// and absorb its region, and the heal brings it back — kIsolated,
// kRejoined, and the false-confirm readmission are all in the log.
// Nobody actually died.
TEST(Decentralized, LongPartitionIsolatesThenRejoins) {
  const DexFixture& fx = fixture(1);
  const int n = static_cast<int>(fx.plan.trajectories.size());
  const double dt = fx.plan.total_time / 512.0;

  DecentralizedOptions opt;
  opt.suspicion_ticks = 8;
  opt.suspicion_jitter = 2;
  opt.confirm_ticks = 6;
  opt.election_ticks = 8;
  opt.gather_ticks = 8;
  opt.isolation_ticks = 12;
  fault::FaultSchedule schedule;
  add_partition(schedule, /*robot=*/12, n, 0.3 * fx.plan.total_time,
                /*duration=*/64.0 * dt);

  DecentralizedEngine engine(fx.sc.comm_range, opt);
  const DecentralizedReport rep = engine.run(fx.plan, schedule, fx.m2_world);

  // The partitioned robot was flagged and came back; peers' false verdict is
  // logged as such, and no true crash is ever recorded.
  EXPECT_TRUE(has_event(rep.exec, ExecEventType::kIsolated));
  EXPECT_TRUE(has_event(rep.exec, ExecEventType::kRejoined));
  EXPECT_GE(rep.isolations, 1);
  EXPECT_TRUE(rep.exec.crashed.empty());
  EXPECT_TRUE(rep.detections.empty());
  EXPECT_EQ(static_cast<int>(rep.exec.survivors.size()), n);
  // The false confirm is visible — honest degradation, not silence.
  EXPECT_TRUE(has_event(rep.exec, ExecEventType::kFaultDetected));
  EXPECT_FALSE(rep.exec.connected_throughout);
  EXPECT_TRUE(rep.exec.final_connected);
}

// Recovery off: detection still works (suspicion -> quorum -> confirm)
// but nobody elects or absorbs — the contrast row fault_drill tabulates.
TEST(Decentralized, RecoveryDisabledStillDetects) {
  const DexFixture& fx = fixture(1);
  fault::FaultSchedule schedule;
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.robot = 7;
  crash.t_start = 0.35 * fx.plan.total_time;
  schedule.add(crash);
  schedule.normalize();

  DecentralizedOptions opt;
  opt.enable_recovery = false;
  DecentralizedEngine engine(fx.sc.comm_range, opt);
  const DecentralizedReport rep = engine.run(fx.plan, schedule, fx.m2_world);

  ASSERT_EQ(rep.detections.size(), 1u);
  EXPECT_GT(rep.detections.front().detected_time, 0.0);
  EXPECT_LT(rep.detections.front().recovered_time, 0.0);
  EXPECT_EQ(rep.elections, 0);
  EXPECT_EQ(rep.absorbs, 0);
  EXPECT_FALSE(has_event(rep.exec, ExecEventType::kCoordinatorElected));
}

}  // namespace
}  // namespace anr
