// Virtual-force baseline + articulation-point analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/virtual_force.h"
#include "coverage/coverage_eval.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/transition_sim.h"
#include "net/connectivity.h"
#include "net/unit_disk_graph.h"

namespace anr {
namespace {

TEST(ArticulationPoints, PathGraph) {
  // 0-1-2-3: interior nodes are cut vertices.
  std::vector<std::vector<int>> path{{1}, {0, 2}, {1, 3}, {2}};
  EXPECT_EQ(net::articulation_points(path), (std::vector<int>{1, 2}));
  EXPECT_FALSE(net::is_biconnected(path));
}

TEST(ArticulationPoints, CycleGraph) {
  std::vector<std::vector<int>> cycle{{1, 3}, {0, 2}, {1, 3}, {2, 0}};
  EXPECT_TRUE(net::articulation_points(cycle).empty());
  EXPECT_TRUE(net::is_biconnected(cycle));
}

TEST(ArticulationPoints, Bowtie) {
  // Two triangles joined at node 2.
  std::vector<std::vector<int>> bowtie{{1, 2}, {0, 2}, {0, 1, 3, 4},
                                       {2, 4},  {2, 3}};
  EXPECT_EQ(net::articulation_points(bowtie), (std::vector<int>{2}));
}

TEST(ArticulationPoints, DisconnectedHandled) {
  std::vector<std::vector<int>> two{{1}, {0}, {3}, {2}};
  EXPECT_TRUE(net::articulation_points(two).empty());
  EXPECT_FALSE(net::is_biconnected(two));
}

TEST(ArticulationPoints, MatchesBruteForceOnRandomGraphs) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 12;
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.chance(0.25)) {
          adj[static_cast<std::size_t>(i)].push_back(j);
          adj[static_cast<std::size_t>(j)].push_back(i);
        }
      }
    }
    auto fast = net::articulation_points(adj);
    // Brute force: removing v increases the component count among the
    // remaining nodes.
    std::vector<int> brute;
    int base_comps = 0;
    {
      auto c = net::components(adj);
      for (int x : c) base_comps = std::max(base_comps, x + 1);
    }
    for (int v = 0; v < n; ++v) {
      std::vector<std::vector<int>> without(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        if (i == v) continue;
        for (int j : adj[static_cast<std::size_t>(i)]) {
          if (j != v) without[static_cast<std::size_t>(i)].push_back(j);
        }
      }
      auto c = net::components(without);
      // Count components excluding the removed (now isolated) vertex; it
      // forms its own singleton unless it had no neighbors.
      int comps = 0;
      for (int i = 0; i < n; ++i) {
        if (i != v) comps = std::max(comps, c[static_cast<std::size_t>(i)] + 1);
      }
      // Normalize: singleton ids may shift; recount distinct ids.
      std::set<int> distinct;
      for (int i = 0; i < n; ++i) {
        if (i != v) distinct.insert(c[static_cast<std::size_t>(i)]);
      }
      bool isolated_original = adj[static_cast<std::size_t>(v)].empty();
      int before = base_comps - (isolated_original ? 1 : 0);
      if (static_cast<int>(distinct.size()) > before) brute.push_back(v);
    }
    EXPECT_EQ(fast, brute) << "trial " << trial;
  }
}

TEST(VirtualForce, ReachesAndRoughlyCoversTarget) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  VirtualForcePlanner vf(sc.m1, sc.m2_shape, sc.comm_range);
  Vec2 off = sc.m1.centroid() + Vec2{10.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = vf.plan(deploy, off);

  FieldOfInterest m2 = sc.m2_shape.translated(off);
  int inside = 0;
  for (Vec2 p : plan.final_positions) {
    if (m2.contains(p)) ++inside;
  }
  // The potential field herds most robots into the FoI...
  EXPECT_GT(inside, static_cast<int>(plan.final_positions.size() * 3 / 4));
  // ...but coverage is far from the CVT optimum.
  auto rep = evaluate_coverage(m2, plan.final_positions,
                               sensing_radius_for(sc.comm_range), 8000);
  EXPECT_LT(rep.covered_fraction, 0.995);
}

TEST(VirtualForce, NoMechanismForLinkPreservationGuarantee) {
  // The baseline works, but provides no L/C guarantee — on the slim
  // scenario its stable-link ratio trails our method (a)'s.
  Scenario sc = scenario(2);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  VirtualForcePlanner vf(sc.m1, sc.m2_shape, sc.comm_range);
  Vec2 off = sc.m1.centroid() + Vec2{10.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = vf.plan(deploy, off);
  auto m = simulate_transition(plan.trajectories, sc.comm_range,
                               plan.transition_end, 100);
  EXPECT_LT(m.stable_link_ratio, 0.80);
}

TEST(VirtualForce, TrajectoriesAvoidHoles) {
  Scenario sc = scenario(4);  // big convex hole
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  VirtualForcePlanner vf(sc.m1, sc.m2_shape, sc.comm_range);
  Vec2 off = sc.m1.centroid() + Vec2{10.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = vf.plan(deploy, off);
  FieldOfInterest m2 = sc.m2_shape.translated(off);
  // No robot may END inside a hole (transit through the hole region
  // before entering M2 is physically the area outside the FoI boundary
  // in this abstraction, but final placement must be placeable).
  for (Vec2 p : plan.final_positions) {
    if (m2.outer().contains(p)) {
      EXPECT_TRUE(m2.contains(p));
    }
  }
}

}  // namespace
}  // namespace anr
