// NDJSON job schema: FoI round trips, request parsing (scenario shortcut,
// explicit geometry, options), deployment memoization, result lines.
#include <gtest/gtest.h>

#include "foi/scenario.h"
#include "foi/shapes.h"
#include "io/job_io.h"
#include "io/json.h"

namespace anr {
namespace {

TEST(JobIo, FoiRoundTripPreservesGeometry) {
  Scenario sc = scenario(4);  // has holes
  ASSERT_TRUE(sc.m1.has_holes() || sc.m2_shape.has_holes());
  const FieldOfInterest& foi =
      sc.m1.has_holes() ? sc.m1 : sc.m2_shape;
  FieldOfInterest back = foi_from_json(json::parse(foi_to_json(foi).dump()));
  ASSERT_EQ(back.outer().size(), foi.outer().size());
  ASSERT_EQ(back.holes().size(), foi.holes().size());
  for (std::size_t i = 0; i < foi.outer().size(); ++i) {
    EXPECT_EQ(back.outer()[i], foi.outer()[i]);
  }
  EXPECT_DOUBLE_EQ(back.area(), foi.area());
}

TEST(JobIo, ScenarioShortcutFillsGeometryAndDeployment) {
  auto v = json::parse(
      R"({"id": "s1", "scenario": 1, "separation": 15.0, "robots": 64,
          "options": {"objective": "b", "grid_points": 400}})");
  std::map<std::string, std::vector<Vec2>> memo;
  JobRequest req = job_from_json(v, &memo);
  EXPECT_EQ(req.job.id, "s1");
  Scenario sc = scenario(1);
  EXPECT_DOUBLE_EQ(req.job.r_c, sc.comm_range);
  EXPECT_EQ(req.job.positions.size(), 64u);
  EXPECT_EQ(req.job.options.objective, MarchObjective::kMinDistance);
  EXPECT_EQ(req.job.options.mesher.target_grid_points, 400);
  Vec2 expect_off = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
                    sc.m2_shape.centroid();
  EXPECT_NEAR(req.job.m2_offset.x, expect_off.x, 1e-12);
  EXPECT_NEAR(req.job.m2_offset.y, expect_off.y, 1e-12);
  // Deployment generation was memoized under a stable key.
  EXPECT_EQ(memo.size(), 1u);
  JobRequest again = job_from_json(v, &memo);
  EXPECT_EQ(memo.size(), 1u);
  EXPECT_EQ(again.job.positions, req.job.positions);
}

TEST(JobIo, ExplicitGeometryAndPositions) {
  Polygon m1_outer = make_blob({0.0, 0.0}, 400.0, {{3, 0.1, 0.0}}, 64);
  Polygon m2_outer = make_blob({0.0, 0.0}, 380.0, {{4, 0.12, 0.5}}, 64);
  json::Object req_o;
  req_o.emplace("id", "explicit");
  req_o.emplace("m1", foi_to_json(FieldOfInterest(m1_outer)));
  req_o.emplace("m2", foi_to_json(FieldOfInterest(m2_outer)));
  req_o.emplace("r_c", 90.0);
  json::Object off;
  off.emplace("x", 1000.0);
  off.emplace("y", -50.0);
  req_o.emplace("offset", std::move(off));
  json::Array xs, ys;
  for (int i = 0; i < 5; ++i) {
    xs.emplace_back(10.0 * i);
    ys.emplace_back(-5.0 * i);
  }
  json::Object pos;
  pos.emplace("x", std::move(xs));
  pos.emplace("y", std::move(ys));
  req_o.emplace("positions", std::move(pos));
  req_o.emplace("include_plan", true);

  JobRequest req = job_from_json(json::Value(std::move(req_o)));
  EXPECT_TRUE(req.include_plan);
  EXPECT_DOUBLE_EQ(req.job.r_c, 90.0);
  ASSERT_EQ(req.job.positions.size(), 5u);
  EXPECT_EQ(req.job.positions[2], (Vec2{20.0, -10.0}));
  EXPECT_EQ(req.job.m2_offset, (Vec2{1000.0, -50.0}));
}

TEST(JobIo, MissingGeometryAndBadEnumsThrow) {
  EXPECT_THROW(job_from_json(json::parse(R"({"id": "empty"})")),
               std::runtime_error);
  EXPECT_THROW(job_from_json(json::parse(
                   R"({"scenario": 1, "options": {"objective": "zz"}})")),
               std::runtime_error);
  EXPECT_THROW(job_from_json(json::parse(
                   R"({"scenario": 1, "options": {"extraction": "zz"}})")),
               std::runtime_error);
}

TEST(JobIo, ResultLinesCarryDiagnosticsAndErrors) {
  runtime::JobResult bad;
  bad.id = "x";
  bad.ok = false;
  bad.error = "queue full (capacity 4)";
  json::Value vb = json::parse(result_to_json(bad, false).dump());
  EXPECT_EQ(vb.at("id").as_string(), "x");
  EXPECT_FALSE(vb.at("ok").as_bool());
  EXPECT_EQ(vb.at("error").as_string(), "queue full (capacity 4)");

  runtime::JobResult good;
  good.id = "y";
  good.ok = true;
  good.cache_hit = true;
  good.plan_seconds = 0.25;
  good.plan.rotation_angle = 1.5;
  good.plan.predicted_link_ratio = 0.9;
  good.plan.start = {{0, 0}, {1, 1}};
  json::Value vg = json::parse(result_to_json(good, true).dump());
  EXPECT_TRUE(vg.at("ok").as_bool());
  EXPECT_TRUE(vg.at("cache_hit").as_bool());
  EXPECT_DOUBLE_EQ(vg.at("rotation_angle").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(vg.at("plan_seconds").as_number(), 0.25);
  EXPECT_EQ(vg.at("robots").as_number(), 2.0);
  // include_plan embeds the full persistable plan document.
  EXPECT_EQ(vg.at("plan").at("format").as_string(), "anr-march-plan/1");
  json::Value compact = json::parse(result_to_json(good, false).dump());
  EXPECT_FALSE(compact.has("plan"));
}

}  // namespace
}  // namespace anr
