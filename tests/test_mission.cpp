// Multi-FoI missions: chaining legs preserves the guarantees.
#include <gtest/gtest.h>

#include "common/check.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/mission.h"
#include "net/connectivity.h"

namespace anr {
namespace {

PlannerOptions fast_options() {
  PlannerOptions opt;
  opt.mesher.target_grid_points = 600;
  opt.cvt_samples = 9000;
  opt.max_adjust_steps = 20;
  return opt;
}

TEST(Mission, TwoLegPatrol) {
  FieldOfInterest start = base_m1();
  auto deploy = optimal_coverage_positions(start, 144, 1, uniform_density());

  std::vector<MissionLeg> legs;
  legs.push_back({scenario(1).m2_shape.translated({1500.0, 200.0}), {},
                  "leg-east"});
  legs.push_back({scenario(3).m2_shape.translated({2900.0, -300.0}), {},
                  "leg-pond"});

  MissionResult res = run_mission(start, deploy.positions, legs, 80.0,
                                  fast_options(), 100);
  ASSERT_EQ(res.legs.size(), 2u);
  EXPECT_TRUE(res.always_connected);
  EXPECT_GT(res.worst_link_ratio, 0.4);
  EXPECT_NEAR(res.total_distance,
              res.legs[0].metrics.total_distance +
                  res.legs[1].metrics.total_distance,
              1e-9);
  // Final deployment is connected and inside the last FoI.
  EXPECT_TRUE(net::is_connected(res.final_positions, 80.0));
  for (Vec2 p : res.final_positions) {
    EXPECT_TRUE(legs.back().foi.contains(p));
  }
  // Legs chain: leg 2 starts where leg 1 ended.
  for (std::size_t i = 0; i < res.final_positions.size(); i += 29) {
    EXPECT_EQ(res.legs[1].plan.start[i], res.legs[0].plan.final_positions[i]);
  }
}

TEST(Mission, PerLegDensityApplies) {
  FieldOfInterest start = base_m1();
  auto deploy = optimal_coverage_positions(start, 144, 1, uniform_density());
  FieldOfInterest pond = scenario(3).m2_shape.translated({1500.0, 0.0});

  std::vector<MissionLeg> uniform_leg{{pond, {}, "uniform"}};
  std::vector<MissionLeg> weighted_leg{
      {pond, hole_proximity_density(pond, 8.0, 60.0), "weighted"}};

  auto ru = run_mission(start, deploy.positions, uniform_leg, 80.0,
                        fast_options(), 60);
  auto rw = run_mission(start, deploy.positions, weighted_leg, 80.0,
                        fast_options(), 60);
  auto near_hole = [&](const std::vector<Vec2>& pts) {
    int c = 0;
    for (Vec2 p : pts) {
      if (pond.distance_to_nearest_hole(p) < 60.0) ++c;
    }
    return c;
  };
  EXPECT_GT(near_hole(rw.final_positions), near_hole(ru.final_positions));
}

TEST(Mission, EmptyMissionRejected) {
  FieldOfInterest start = base_m1();
  EXPECT_THROW(run_mission(start, {{0, 0}}, {}, 80.0), ContractViolation);
}

}  // namespace
}  // namespace anr
