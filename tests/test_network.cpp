// Round-based network simulator: delivery semantics, topology guards,
// unit-disk graph and connectivity.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "fault/fault_model.h"
#include "fault/fault_schedule.h"
#include "net/connectivity.h"
#include "net/fault_bridge.h"
#include "net/incremental_connectivity.h"
#include "net/network.h"
#include "net/unit_disk_graph.h"
#include "test_util.h"

namespace anr::net {
namespace {

TEST(UnitDiskGraph, Adjacency) {
  std::vector<Vec2> pos{{0, 0}, {5, 0}, {11, 0}};
  auto adj = unit_disk_adjacency(pos, 6.0);
  EXPECT_EQ(adj[0], (std::vector<int>{1}));
  EXPECT_EQ(adj[1], (std::vector<int>{0, 2}));
  EXPECT_EQ(adj[2], (std::vector<int>{1}));
}

TEST(UnitDiskGraph, RangeIsInclusive) {
  std::vector<Vec2> pos{{0, 0}, {10, 0}};
  EXPECT_EQ(unit_disk_edges(pos, 10.0).size(), 1u);
  EXPECT_TRUE(unit_disk_edges(pos, 9.999).empty());
}

TEST(UnitDiskGraph, EdgesMatchBruteForce) {
  auto pos = testutil::random_points(150, 0.0, 100.0, 21);
  double r = 15.0;
  auto edges = unit_disk_edges(pos, r);
  std::size_t brute = 0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (distance(pos[i], pos[j]) <= r + 1e-12) ++brute;
    }
  }
  EXPECT_EQ(edges.size(), brute);
}

TEST(UnitDiskGraph, AdjacencyRowsAreSorted) {
  auto pos = testutil::random_points(200, 0.0, 100.0, 33);
  auto adj = unit_disk_adjacency(pos, 20.0);
  for (const auto& row : adj) {
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  }
}

TEST(IncrementalConnectivity, MatchesBatchCheckerUnderDrift) {
  // Random walks of the swarm, including radius regimes where the verdict
  // flips: the incremental checker must agree with net::is_connected at
  // every step.
  Rng rng(77);
  for (double r : {8.0, 14.0, 25.0}) {
    auto pos = testutil::random_points(60, 0.0, 100.0, 13);
    net::IncrementalConnectivity inc(r);
    for (int step = 0; step < 40; ++step) {
      for (Vec2& p : pos) {
        p.x += rng.uniform(-1.5, 1.5);
        p.y += rng.uniform(-1.5, 1.5);
      }
      EXPECT_EQ(inc.check(pos), net::is_connected(pos, r))
          << "r=" << r << " step=" << step;
    }
  }
}

TEST(IncrementalConnectivity, HandlesResizeAndDegenerate) {
  net::IncrementalConnectivity inc(5.0);
  EXPECT_TRUE(inc.check({}));            // empty swarm is trivially connected
  EXPECT_TRUE(inc.check({{1.0, 1.0}}));  // single robot
  std::vector<Vec2> two = {{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_FALSE(inc.check(two));
  two[1] = {4.0, 0.0};
  EXPECT_TRUE(inc.check(two));
  // Grow the swarm mid-stream: checker must re-anchor, not crash.
  std::vector<Vec2> three = {{0.0, 0.0}, {4.0, 0.0}, {8.0, 0.0}};
  EXPECT_TRUE(inc.check(three));
}

TEST(Connectivity, ComponentsAndBfs) {
  // Two components: 0-1-2 and 3-4.
  std::vector<std::vector<int>> adj{{1}, {0, 2}, {1}, {4}, {3}};
  auto comp = components(adj);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_FALSE(is_connected(adj));

  auto hops = bfs_hops(adj, {0});
  EXPECT_EQ(hops, (std::vector<int>{0, 1, 2, -1, -1}));
}

TEST(Connectivity, SingleAndEmpty) {
  EXPECT_TRUE(is_connected(std::vector<std::vector<int>>{}));
  EXPECT_TRUE(is_connected(std::vector<std::vector<int>>{{}}));
}

TEST(Network, DeliversNextRound) {
  Network net(std::vector<std::vector<NodeId>>{{1}, {0}});
  Message m;
  m.tag = 42;
  m.ints = {7};
  net.send(0, 1, std::move(m));
  EXPECT_TRUE(net.take_inbox(1).empty());  // not delivered yet
  EXPECT_TRUE(net.deliver_round());
  auto inbox = net.take_inbox(1);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].tag, 42);
  EXPECT_EQ(inbox[0].src, 0);
  EXPECT_EQ(inbox[0].ints, (std::vector<int>{7}));
  EXPECT_TRUE(net.quiescent());
}

TEST(Network, RejectsOffTopologySend) {
  Network net(std::vector<std::vector<NodeId>>{{1}, {0}, {}});
  EXPECT_THROW(net.send(0, 2, Message{}), ContractViolation);
}

TEST(Network, BroadcastReachesAllNeighbors) {
  std::vector<Vec2> pos{{0, 0}, {1, 0}, {0, 1}, {50, 50}};
  Network net(pos, 2.0);
  Message m;
  m.tag = 1;
  net.broadcast(0, m);
  net.deliver_round();
  EXPECT_EQ(net.take_inbox(1).size(), 1u);
  EXPECT_EQ(net.take_inbox(2).size(), 1u);
  EXPECT_TRUE(net.take_inbox(3).empty());
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(Network, DeterministicDeliveryOrder) {
  Network net(std::vector<std::vector<NodeId>>{{2}, {2}, {0, 1}});
  Message a;
  a.tag = 10;
  Message b;
  b.tag = 20;
  net.send(1, 2, std::move(b));
  net.send(0, 2, std::move(a));
  net.deliver_round();
  auto inbox = net.take_inbox(2);
  ASSERT_EQ(inbox.size(), 2u);
  // Sorted by sender id regardless of send order.
  EXPECT_EQ(inbox[0].src, 0);
  EXPECT_EQ(inbox[1].src, 1);
}

TEST(Network, StatsAndReset) {
  Network net(std::vector<std::vector<NodeId>>{{1}, {0}});
  net.send(0, 1, Message{});
  net.deliver_round();
  net.take_inbox(1);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.rounds_elapsed(), 1u);
  net.reset_stats();
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.rounds_elapsed(), 0u);
}

TEST(Network, RejectsSelfLoopTopology) {
  EXPECT_THROW(Network(std::vector<std::vector<NodeId>>{{0}}), ContractViolation);
}

TEST(Network, QuiescenceTracksUndrainedInboxes) {
  Network net(std::vector<std::vector<NodeId>>{{1}, {0}});
  net.send(0, 1, Message{});
  net.deliver_round();
  EXPECT_FALSE(net.quiescent());  // message sits in inbox
  net.take_inbox(1);
  EXPECT_TRUE(net.quiescent());
}

// Lossy channel: the loss draws are a pure function of the seed and the
// send order — two identical runs lose the same messages, and a
// different seed loses different ones.
TEST(Network, SeededLossIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    Network net(std::vector<std::vector<NodeId>>{{1}, {0}});
    net.set_message_loss(0.4, seed);
    std::vector<int> got;
    for (int k = 0; k < 64; ++k) {
      Message m;
      m.tag = k;
      net.send(0, 1, std::move(m));
      net.deliver_round();
      for (const Message& d : net.take_inbox(1)) got.push_back(d.tag);
    }
    return got;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a.size(), 64u);  // some messages actually died
  EXPECT_GT(a.size(), 0u);
}

// The ack/retransmit layer on a heavily lossy channel: every reliable
// message arrives exactly once — retransmitted copies are deduplicated
// by sequence number. (ARQ does not promise FIFO: a lost message's
// retransmission lands after later sends that got through first.)
TEST(Network, ReliableDeliversExactlyOnceUnderLoss) {
  Network net(std::vector<std::vector<NodeId>>{{1}, {0}});
  net.set_message_loss(0.5, 99);
  ReliabilityOptions rel;
  rel.retry_interval = 1;
  rel.max_retries = 64;
  net.set_reliability(rel);
  const int kCount = 32;
  for (int k = 0; k < kCount; ++k) {
    Message m;
    m.tag = k;
    net.send_reliable(0, 1, std::move(m));
  }
  std::vector<int> got;
  for (int round = 0; round < 400 && !net.quiescent(); ++round) {
    net.deliver_round();
    for (const Message& d : net.take_inbox(1)) got.push_back(d.tag);
    net.take_inbox(0);  // drain acks' side effects (acks are not messages)
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount));
  std::sort(got.begin(), got.end());
  for (int k = 0; k < kCount; ++k) EXPECT_EQ(got[static_cast<std::size_t>(k)], k);
  EXPECT_GT(net.retransmissions(), 0u);
  EXPECT_EQ(net.messages_expired(), 0u);
}

// Fault-bridge regression: a scheduled kLinkDropout window suppresses
// real deliveries while active and lets traffic flow again after it
// closes. Messages in flight when the window opens are lost, not
// deferred.
TEST(Network, ScheduledLinkDropoutSuppressesDelivery) {
  fault::FaultSchedule schedule;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kLinkDropout;
  e.link_a = 0;
  e.link_b = 1;
  e.t_start = 2.0;  // rounds 2..5 inclusive at dt = 1
  e.duration = 4.0;
  schedule.add(e);
  schedule.normalize();
  const fault::FaultModel model(schedule, /*noise_seed=*/0);

  Network net(std::vector<std::vector<NodeId>>{{1}, {0}});
  net.set_link_outage(make_fault_outage(model, /*round_dt=*/1.0));

  std::vector<int> got;
  for (int k = 0; k < 10; ++k) {
    Message m;
    m.tag = k;
    net.send(0, 1, std::move(m));  // sent at round k, due at round k + 1
    net.deliver_round();
    for (const Message& d : net.take_inbox(1)) got.push_back(d.tag);
  }
  // Deliveries due at rounds 2..5 (tags 1..4) died in the window.
  EXPECT_EQ(got, (std::vector<int>{0, 5, 6, 7, 8, 9}));
  EXPECT_EQ(net.messages_lost(), 4u);
}

// Satellite pin: the inbox order under seeded per-message delays is (a)
// reproducible for the same seed and (b) sorted by arrival round, then
// sender id, then send order — the delivery-order contract the
// decentralized event log's byte determinism rests on.
TEST(Network, InboxOrderDeterministicUnderDelays) {
  auto run = [](std::uint64_t seed) {
    // Star: four senders, one hub.
    Network net(std::vector<std::vector<NodeId>>{
        {4}, {4}, {4}, {4}, {0, 1, 2, 3}});
    net.set_link_delays(4, seed);
    std::vector<std::pair<int, int>> got;  // (src, tag) in drain order
    for (int round = 0; round < 12; ++round) {
      if (round < 6) {
        // Deliberately send in descending-sender order each round.
        for (int s = 3; s >= 0; --s) {
          Message m;
          m.tag = round * 10 + s;
          net.send(s, 4, std::move(m));
        }
      }
      net.deliver_round();
      for (const Message& d : net.take_inbox(4)) got.emplace_back(d.src, d.tag);
    }
    return got;
  };
  const auto a = run(17);
  const auto b = run(17);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 24u);  // delayed, never lost
  const auto c = run(18);
  EXPECT_NE(a, c);  // a different seed schedules differently
}

}  // namespace
}  // namespace anr::net
