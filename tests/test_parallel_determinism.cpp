// Differential determinism: the headline guarantee of the intra-plan
// parallelism layer is that plans are byte-identical through save_plan at
// every thread count. For each golden-set scenario this suite plans once
// serially, then re-plans at 2/4/8 arena threads and diffs the serialized
// bytes — and re-plans at the same thread count to catch scheduling
// nondeterminism (racy accumulation would make even same-count runs
// diverge). Runs under TSan in CI alongside test_task_arena.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/task_arena.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "io/plan_io.h"
#include "march/planner.h"

namespace anr {
namespace {

// Same fixture as test_golden_plan: small-but-real settings that still
// exercise triangulation extraction, both harmonic maps, the rotation
// search, repair, and adjustment. Scenarios 1 (convex -> disjoint), 5
// (concave) and 6 (holed -> holed) cover the mesh shapes the multicolor
// sweep has to order consistently.
constexpr int kScenarios[] = {1, 5, 6};

PlannerOptions plan_options() {
  PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  return opt;
}

std::string plan_bytes(int scenario_id) {
  Scenario sc = scenario(scenario_id);
  auto deploy =
      optimal_coverage_positions(sc.m1, 72, /*seed=*/1, uniform_density())
          .positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, plan_options());
  MarchPlan plan = planner.plan(deploy, offset);

  std::string path = "det_tmp_scenario" + std::to_string(scenario_id) +
                     "_t" + std::to_string(arena_threads()) + ".json";
  std::string err;
  EXPECT_TRUE(save_plan(plan, path, &err)) << err;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

class ParallelDeterminismTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { set_arena_threads(0); }
};

TEST_P(ParallelDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  const int scenario_id = GetParam();
  set_arena_threads(1);
  const std::string serial = plan_bytes(scenario_id);
  ASSERT_FALSE(serial.empty());
  for (int threads : {2, 4, 8}) {
    set_arena_threads(threads);
    EXPECT_EQ(plan_bytes(scenario_id), serial)
        << "scenario " << scenario_id << " diverged at " << threads
        << " arena threads";
  }
}

TEST_P(ParallelDeterminismTest, RepeatRunsSelfIdentical) {
  const int scenario_id = GetParam();
  set_arena_threads(4);
  const std::string first = plan_bytes(scenario_id);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(plan_bytes(scenario_id), first)
      << "scenario " << scenario_id
      << " not reproducible at a fixed thread count";
}

INSTANTIATE_TEST_SUITE_P(GoldenSet, ParallelDeterminismTest,
                         ::testing::ValuesIn(kScenarios),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Scenario" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace anr
