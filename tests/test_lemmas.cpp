// Computational demonstrations of the paper's two lemmas (Sec. II-A,
// Fig. 1) — the theory that motivates the whole design.
//
// Lemma 1: maximizing the stable link ratio L and minimizing the total
// moving distance D cannot be achieved simultaneously.
// Lemma 2: local connectivity cannot be fully preserved in general.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "march/metrics.h"
#include "matching/hungarian.h"

namespace anr {
namespace {

// Fig. 1(a): seven robots in a horizontal 2-row triangular strip must
// redeploy into the same strip rotated vertical. Unit spacing d, r_c
// slightly above d so only lattice neighbors are linked.
struct Fig1a {
  std::vector<Vec2> p;  // horizontal strip (A..G)
  std::vector<Vec2> q;  // vertical strip (a..g)
  double r_c = 1.05;

  Fig1a() {
    double h = std::sqrt(3.0) / 2.0;
    // Horizontal: 4 on the bottom row, 3 nested above.
    p = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {0.5, h}, {1.5, h}, {2.5, h}};
    // Vertical: the same shape rotated 90 degrees, some distance away.
    Vec2 off{20.0, -1.5};
    for (Vec2 v : p) q.push_back(Vec2{-v.y, v.x} + off);
  }
};

double assignment_distance(const std::vector<Vec2>& p,
                           const std::vector<Vec2>& q,
                           const std::vector<int>& perm) {
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    d += distance(p[i], q[static_cast<std::size_t>(perm[i])]);
  }
  return d;
}

double assignment_link_ratio(const std::vector<Vec2>& p,
                             const std::vector<Vec2>& q,
                             const std::vector<int>& perm, double r_c) {
  std::vector<Vec2> targets(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    targets[i] = q[static_cast<std::size_t>(perm[i])];
  }
  return predicted_stable_link_ratio(p, targets,
                                     communication_links(p, r_c), r_c);
}

TEST(Lemma1, MaxLinksAndMinDistanceAreDifferentAssignments) {
  Fig1a fig;
  const int n = static_cast<int>(fig.p.size());

  // Brute-force all 7! assignments: find max-L and min-D optima.
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  double best_l = -1.0, best_l_dist = 0.0;
  double best_d = 1e300, best_d_links = 0.0;
  do {
    double l = assignment_link_ratio(fig.p, fig.q, perm, fig.r_c);
    double d = assignment_distance(fig.p, fig.q, perm);
    if (l > best_l || (l == best_l && d < best_l_dist)) {
      best_l = l;
      best_l_dist = d;
    }
    if (d < best_d) {
      best_d = d;
      best_d_links = l;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  // The identity assignment (A->a etc.) preserves every link (rigid
  // rotation): max L = 1.
  EXPECT_DOUBLE_EQ(best_l, 1.0);
  // Lemma 1: the min-distance assignment does NOT achieve max L, and the
  // max-L assignment costs strictly more distance.
  EXPECT_LT(best_d_links, 1.0);
  EXPECT_GT(best_l_dist, best_d + 1e-9);

  // Cross-check the Hungarian solver against the brute-force optimum.
  auto hung = min_distance_assignment(fig.p, fig.q);
  EXPECT_NEAR(hung.total_cost, best_d, 1e-9);
}

TEST(Lemma2, RoundToSlimMustBreakLinks) {
  // Fig. 1(b): hexagon + center (7 robots, center has 6 links, ring has
  // 2 ring-links each + center) into a 1D chain. In any chain layout with
  // spacing >= d the degree of every robot is at most 2, so the center
  // robot must break at least 4 of its 6 links — local connectivity
  // cannot be fully preserved (for ANY assignment).
  double d = 1.0, r_c = 1.05;
  std::vector<Vec2> p{{0, 0}};
  for (int k = 0; k < 6; ++k) {
    double a = M_PI / 3.0 * k;
    p.push_back({d * std::cos(a), d * std::sin(a)});
  }
  std::vector<Vec2> q;
  for (int k = 0; k < 7; ++k) q.push_back({30.0 + k * d, 0.0});

  auto links = communication_links(p, r_c);
  EXPECT_EQ(links.size(), 12u);  // 6 spokes + 6 ring edges

  std::vector<int> perm(7);
  std::iota(perm.begin(), perm.end(), 0);
  double best_l = -1.0;
  do {
    std::vector<Vec2> targets(7);
    for (std::size_t i = 0; i < 7; ++i) {
      targets[i] = q[static_cast<std::size_t>(perm[i])];
    }
    best_l = std::max(
        best_l, predicted_stable_link_ratio(p, targets, links, r_c));
  } while (std::next_permutation(perm.begin(), perm.end()));

  // Even the best possible assignment keeps only 6 of the 12 links (the
  // chain has 6 edges): L_max = 0.5 < 1 — Lemma 2.
  EXPECT_LT(best_l, 1.0);
  EXPECT_NEAR(best_l, 0.5, 1e-9);
}

}  // namespace
}  // namespace anr
