// Resilience: failure recovery and mid-march retargeting.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/planner.h"
#include "march/resilience.h"
#include "march/transition_sim.h"
#include "net/connectivity.h"

namespace anr {
namespace {

struct Fixture {
  Scenario sc = scenario(1);
  std::vector<Vec2> deploy;
  Vec2 offset;
  PlannerOptions opt;

  Fixture() {
    deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                        uniform_density())
                 .positions;
    offset = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
    opt.mesher.target_grid_points = 600;
    opt.cvt_samples = 10000;
    opt.max_adjust_steps = 20;
  }
};

TEST(TrajectoryOps, TruncateAndExtend) {
  Trajectory t;
  t.append({0, 0}, 0.0);
  t.append({10, 0}, 1.0);
  t.append({10, 10}, 2.0);
  Trajectory head = t.truncated_at(1.5);
  EXPECT_EQ(head.end(), (Vec2{10, 5}));
  EXPECT_DOUBLE_EQ(head.end_time(), 1.5);
  EXPECT_EQ(head.num_waypoints(), 3u);

  Trajectory tail;
  tail.append({10, 5}, 1.5);
  tail.append({20, 5}, 3.0);
  head.extend(tail);
  EXPECT_EQ(head.end(), (Vec2{20, 5}));
  EXPECT_DOUBLE_EQ(head.length(), 15.0 + 10.0);
}

TEST(TrajectoryOps, TruncateClampsOutOfRange) {
  Trajectory t;
  t.append({0, 0}, 1.0);
  t.append({4, 0}, 2.0);
  EXPECT_EQ(t.truncated_at(0.0).end(), (Vec2{0, 0}));
  EXPECT_EQ(t.truncated_at(9.0).end(), (Vec2{4, 0}));
}

TEST(Resilience, FailureRecoveryReSpreadsSurvivors) {
  Fixture f;
  MarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, f.opt);
  MarchPlan plan = planner.plan(f.deploy, f.offset);

  // A clustered group of 14 robots dies mid-march.
  std::vector<int> failed;
  for (int i = 0; i < 14; ++i) failed.push_back(i * 3);
  FieldOfInterest m2 = f.sc.m2_shape.translated(f.offset);
  FailureRecovery rec = recover_from_failure(plan.trajectories, 0.5, failed,
                                             m2, f.sc.comm_range);

  EXPECT_EQ(rec.survivors.size(), plan.trajectories.size() - failed.size());
  EXPECT_EQ(rec.trajectories.size(), rec.survivors.size());
  EXPECT_GT(rec.lloyd_steps, 0);
  EXPECT_GT(rec.recovery_distance, 0.0);

  // Survivors end inside M2, connected, and spread (no giant coverage gap:
  // every CVT sample point is within ~1.6 lattice spacings of a robot).
  EXPECT_TRUE(net::is_connected(rec.final_positions, f.sc.comm_range));
  for (Vec2 p : rec.final_positions) EXPECT_TRUE(m2.contains(p));
  GridCvt grid(m2, uniform_density(), 4000);
  double expected_spacing = std::sqrt(
      2.0 * m2.area() /
      (std::sqrt(3.0) * static_cast<double>(rec.final_positions.size())));
  double worst = 0.0;
  for (Vec2 s : grid.samples()) {
    double best = 1e300;
    for (Vec2 p : rec.final_positions) best = std::min(best, distance(s, p));
    worst = std::max(worst, best);
  }
  EXPECT_LT(worst, 1.8 * expected_spacing);
}

TEST(Resilience, RecoveryRejectsTotalLoss) {
  Fixture f;
  MarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, f.opt);
  MarchPlan plan = planner.plan(f.deploy, f.offset);
  std::vector<int> all;
  for (std::size_t i = 0; i < plan.trajectories.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  FieldOfInterest m2 = f.sc.m2_shape.translated(f.offset);
  EXPECT_THROW(recover_from_failure(plan.trajectories, 0.5, all, m2,
                                    f.sc.comm_range),
               ContractViolation);
}

TEST(Resilience, RetargetMidMarchKeepsConnectivity) {
  Fixture f;
  MarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, f.opt);
  MarchPlan first = planner.plan(f.deploy, f.offset);

  // Halfway through, a new instruction: head to scenario 2's M2 instead.
  Scenario sc2 = scenario(2);
  PlannerOptions opt2 = f.opt;
  MarchPlanner planner2(f.sc.m1, sc2.m2_shape, f.sc.comm_range, opt2);
  Vec2 off2 = f.sc.m1.centroid() + Vec2{8.0 * f.sc.comm_range,
                                        6.0 * f.sc.comm_range} -
              sc2.m2_shape.centroid();
  RetargetResult rr =
      retarget_mid_march(first.trajectories, /*t_event=*/0.5, planner2, off2);

  ASSERT_EQ(rr.trajectories.size(), f.deploy.size());
  // The spliced trajectory passes through the event positions at t_event.
  for (std::size_t i = 0; i < rr.trajectories.size(); i += 17) {
    EXPECT_LT(distance(rr.trajectories[i].position(0.5),
                       rr.positions_at_event[i]),
              1e-9);
  }
  // Final positions land in the new FoI, and the whole spliced run keeps
  // global connectivity.
  FieldOfInterest new_m2 = sc2.m2_shape.translated(off2);
  for (Vec2 p : rr.second_leg.final_positions) {
    EXPECT_TRUE(new_m2.contains(p));
  }
  auto metrics = simulate_transition(rr.trajectories, f.sc.comm_range,
                                     0.5 + rr.second_leg.transition_end, 160);
  EXPECT_TRUE(metrics.global_connectivity);
}

// The edge-case tests below share one plan; building it dominates runtime.
struct SharedPlan {
  Fixture f;
  MarchPlanner planner;
  MarchPlan plan;
  FieldOfInterest m2;
  SharedPlan()
      : planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, f.opt),
        plan(planner.plan(f.deploy, f.offset)),
        m2(f.sc.m2_shape.translated(f.offset)) {}
};

const SharedPlan& shared() {
  static SharedPlan s;
  return s;
}

TEST(Resilience, RecoveryWithNoFailuresKeepsEveryRobot) {
  const SharedPlan& s = shared();
  FailureRecovery rec = recover_from_failure(s.plan.trajectories, 0.5, {},
                                             s.m2, s.f.sc.comm_range);
  ASSERT_EQ(rec.survivors.size(), s.plan.trajectories.size());
  EXPECT_EQ(rec.trajectories.size(), rec.survivors.size());
  for (std::size_t i = 0; i < rec.survivors.size(); ++i) {
    EXPECT_EQ(rec.survivors[i], static_cast<int>(i));
  }
}

TEST(Resilience, RecoveryToLoneSurvivor) {
  const SharedPlan& s = shared();
  std::vector<int> failed;
  for (std::size_t i = 0; i < s.plan.trajectories.size(); ++i) {
    if (i != 17) failed.push_back(static_cast<int>(i));
  }
  FailureRecovery rec = recover_from_failure(s.plan.trajectories, 0.5, failed,
                                             s.m2, s.f.sc.comm_range);
  ASSERT_EQ(rec.survivors.size(), 1u);
  EXPECT_EQ(rec.survivors[0], 17);
  ASSERT_EQ(rec.final_positions.size(), 1u);
  EXPECT_TRUE(s.m2.contains(rec.final_positions[0]));
}

TEST(Resilience, RecoveryRejectsOutOfRangeIndices) {
  const SharedPlan& s = shared();
  const int n = static_cast<int>(s.plan.trajectories.size());
  EXPECT_THROW(recover_from_failure(s.plan.trajectories, 0.5, {n}, s.m2,
                                    s.f.sc.comm_range),
               ContractViolation);
  EXPECT_THROW(recover_from_failure(s.plan.trajectories, 0.5, {-1}, s.m2,
                                    s.f.sc.comm_range),
               ContractViolation);
}

TEST(Resilience, RetargetPastEndReplansFromFinalPositions) {
  const SharedPlan& s = shared();
  const double t_late = s.plan.total_time + 5.0;
  RetargetResult rr = retarget_mid_march(s.plan.trajectories, t_late,
                                         s.planner, s.f.offset);
  ASSERT_EQ(rr.positions_at_event.size(), s.plan.trajectories.size());
  for (std::size_t i = 0; i < rr.positions_at_event.size(); i += 13) {
    EXPECT_LT(distance(rr.positions_at_event[i],
                       s.plan.trajectories[i].end()),
              1e-9);
    EXPECT_LT(distance(rr.trajectories[i].position(t_late),
                       rr.positions_at_event[i]),
              1e-9);
  }
}

TEST(Resilience, RetargetRejectsNegativeEventTime) {
  const SharedPlan& s = shared();
  EXPECT_THROW(retarget_mid_march(s.plan.trajectories, -1.0, s.planner,
                                  s.f.offset),
               ContractViolation);
}

TEST(Resilience, RetargetSingleRobotCannotReplan) {
  const SharedPlan& s = shared();
  std::vector<Trajectory> lone{s.plan.trajectories[0]};
  // One robot spans no field: the planner's extraction has nothing to
  // triangulate, and the failure must surface as an exception, not UB.
  EXPECT_ANY_THROW(retarget_mid_march(lone, 0.5, s.planner, s.f.offset));
}

TEST(Resilience, RetargetAtStartEqualsFreshPlan) {
  Fixture f;
  MarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, f.opt);
  MarchPlan plan = planner.plan(f.deploy, f.offset);
  RetargetResult rr = retarget_mid_march(plan.trajectories, 0.0, planner,
                                         f.offset);
  // Replanning at t=0 from the undisplaced deployment reproduces the plan.
  for (std::size_t i = 0; i < rr.trajectories.size(); i += 23) {
    EXPECT_LT(distance(rr.second_leg.final_positions[i],
                       plan.final_positions[i]),
              1e-9);
  }
}

}  // namespace
}  // namespace anr
