// Common layer: contracts, RNG, tables, stopwatch.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace anr {
namespace {

TEST(Check, PassingIsSilent) {
  EXPECT_NO_THROW(ANR_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(ANR_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailureThrowsWithContext) {
  try {
    ANR_CHECK_MSG(false, "broken invariant");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("broken invariant"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  double va = a.uniform(0.0, 1.0);
  EXPECT_EQ(va, b.uniform(0.0, 1.0));
  EXPECT_NE(va, c.uniform(0.0, 1.0));
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Table, AlignmentAndRule) {
  TextTable t;
  t.header({"a", "long header"});
  t.row({"longer cell", "x"});
  std::string s = t.str();
  // Header, dashed rule, one row.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
  EXPECT_NE(s.find("long header"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // Columns align: both lines have the same position for column 2.
  std::size_t line1 = s.find("long header");
  std::size_t line2 = s.find("x");
  std::size_t col1 = line1 - 0;
  std::size_t row_start = s.rfind('\n', line2 - 1) + 1;
  EXPECT_EQ(col1, line2 - row_start);
}

TEST(Table, ShortRowsTolerated) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"only one"});
  EXPECT_NO_THROW(t.str());
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_pct(0.873), "87.3%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Stopwatch, MonotonicAndResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double t1 = sw.seconds();
  EXPECT_GT(t1, 0.0);
  EXPECT_GE(sw.millis(), t1 * 1000.0 * 0.5);
  sw.reset();
  EXPECT_LT(sw.seconds(), t1);
}

}  // namespace
}  // namespace anr
