// Harmonic disk maps: embedding validity, boundary conditions, weight
// schemes, distributed equivalence, and the multigrid solver (Gauss–
// Seidel differential + thread-count determinism).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/task_arena.h"
#include "foi/foi_mesher.h"
#include "harmonic/disk_map.h"
#include "harmonic/distributed_disk_map.h"
#include "mesh/alpha_extract.h"
#include "mesh/hole_fill.h"
#include "test_util.h"

namespace anr {
namespace {

TriangleMesh lattice_mesh(double radius = 60.0) {
  auto pts = testutil::lattice_disk({0, 0}, radius, 12.0);
  return alpha_extract(pts, 14.0).mesh;
}

void expect_valid_disk_map(const TriangleMesh& mesh, const DiskMap& map) {
  ASSERT_EQ(map.disk_pos.size(), mesh.num_vertices());
  EXPECT_TRUE(map.converged);
  EXPECT_DOUBLE_EQ(map.embedding_quality(mesh), 1.0);
  for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
    double r = map.disk_pos[v].norm();
    if (map.on_boundary[v]) {
      EXPECT_NEAR(r, 1.0, 1e-9) << "boundary vertex " << v;
    } else {
      EXPECT_LT(r, 1.0) << "interior vertex " << v;
    }
  }
}

TEST(DiskMap, UniformWeightsEmbedding) {
  TriangleMesh mesh = lattice_mesh();
  DiskMap map = harmonic_disk_map(mesh);
  expect_valid_disk_map(mesh, map);
}

TEST(DiskMap, MeanValueWeightsEmbedding) {
  TriangleMesh mesh = lattice_mesh();
  DiskMapOptions opt;
  opt.weights = HarmonicWeights::kMeanValue;
  DiskMap map = harmonic_disk_map(mesh, opt);
  expect_valid_disk_map(mesh, map);
}

TEST(DiskMap, ChordLengthSpacing) {
  TriangleMesh mesh = lattice_mesh();
  DiskMapOptions opt;
  opt.spacing = BoundarySpacing::kChordLength;
  DiskMap map = harmonic_disk_map(mesh, opt);
  expect_valid_disk_map(mesh, map);
}

TEST(DiskMap, InteriorIsNeighborAverage) {
  TriangleMesh mesh = lattice_mesh();
  DiskMap map = harmonic_disk_map(mesh);
  for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
    if (map.on_boundary[v]) continue;
    Vec2 avg{};
    const auto& nb = mesh.neighbors(static_cast<VertexId>(v));
    for (VertexId u : nb) avg += map.disk_pos[static_cast<std::size_t>(u)];
    avg = avg / static_cast<double>(nb.size());
    EXPECT_NEAR(map.disk_pos[v].x, avg.x, 1e-7);
    EXPECT_NEAR(map.disk_pos[v].y, avg.y, 1e-7);
  }
}

TEST(DiskMap, BoundaryUniformByHops) {
  TriangleMesh mesh = lattice_mesh();
  DiskMap map = harmonic_disk_map(mesh);
  // Count boundary vertices; consecutive boundary angles differ by 2*pi/b.
  std::size_t b = 0;
  for (char f : map.on_boundary) b += f ? 1u : 0u;
  ASSERT_GT(b, 3u);
  std::vector<double> angles;
  for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
    if (map.on_boundary[v]) angles.push_back(map.disk_pos[v].angle());
  }
  std::sort(angles.begin(), angles.end());
  for (std::size_t i = 1; i < angles.size(); ++i) {
    EXPECT_NEAR(angles[i] - angles[i - 1], 2.0 * M_PI / static_cast<double>(b),
                1e-6);
  }
}

TEST(DiskMap, RequiresDiskTopology) {
  FieldOfInterest annulus = testutil::square_with_hole(100.0, 25.0);
  MesherOptions opt;
  opt.target_grid_points = 300;
  FoiMesh fm = mesh_foi(annulus, opt);
  EXPECT_THROW(harmonic_disk_map(fm.mesh), ContractViolation);
  // After hole filling it works.
  HoleFillResult filled = fill_holes(fm.mesh);
  DiskMap map = harmonic_disk_map(filled.mesh);
  EXPECT_TRUE(map.converged);
  EXPECT_GT(map.embedding_quality(filled.mesh), 0.99);
}

TEST(DiskMap, DistributedMatchesCentralized) {
  TriangleMesh mesh = lattice_mesh(45.0);
  DiskMap central = harmonic_disk_map(mesh);
  DistributedDiskMap dist = distributed_harmonic_disk_map(mesh, 1e-10);
  ASSERT_TRUE(dist.map.converged);
  for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
    EXPECT_NEAR(central.disk_pos[v].x, dist.map.disk_pos[v].x, 1e-4) << v;
    EXPECT_NEAR(central.disk_pos[v].y, dist.map.disk_pos[v].y, 1e-4) << v;
  }
  EXPECT_GT(dist.boundary_messages, 0u);
  EXPECT_GT(dist.relax_messages, 0u);
}

TEST(DiskMap, DeterministicAcrossRuns) {
  TriangleMesh mesh = lattice_mesh();
  DiskMap a = harmonic_disk_map(mesh);
  DiskMap b = harmonic_disk_map(mesh);
  for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
    EXPECT_EQ(a.disk_pos[v], b.disk_pos[v]);
  }
}

// A mesh large enough that kAuto picks the multigrid path (interior
// count above DiskMapOptions::multigrid_threshold).
FoiMesh large_blob_mesh(int target_points = 6000) {
  Polygon blob = make_circle({0, 0}, 400.0, 64);
  FieldOfInterest foi{std::move(blob)};
  MesherOptions opt;
  opt.target_grid_points = target_points;
  return mesh_foi(foi, opt);
}

TEST(DiskMapMultigrid, MatchesGaussSeidel) {
  FoiMesh fm = large_blob_mesh();
  DiskMapOptions gs_opt;
  gs_opt.solver = HarmonicSolver::kGaussSeidel;
  DiskMap gs = harmonic_disk_map(fm.mesh, gs_opt);
  ASSERT_TRUE(gs.converged);
  ASSERT_FALSE(gs.used_multigrid);

  DiskMapOptions mg_opt;
  mg_opt.solver = HarmonicSolver::kMultigrid;
  DiskMap mg = harmonic_disk_map(fm.mesh, mg_opt);
  ASSERT_TRUE(mg.converged);
  ASSERT_TRUE(mg.used_multigrid);
  EXPECT_GT(mg.cycles, 0);
  EXPECT_TRUE(mg.status.ok());
  // Both solve the same linear system to the same tolerance; the V-cycle
  // converges in far fewer fine-level sweeps.
  EXPECT_LT(mg.sweeps, gs.sweeps);
  expect_valid_disk_map(fm.mesh, mg);
  for (std::size_t v = 0; v < fm.mesh.num_vertices(); ++v) {
    EXPECT_NEAR(gs.disk_pos[v].x, mg.disk_pos[v].x, 1e-6) << v;
    EXPECT_NEAR(gs.disk_pos[v].y, mg.disk_pos[v].y, 1e-6) << v;
  }
}

TEST(DiskMapMultigrid, AutoSelectsByInteriorCount) {
  // Small mesh: kAuto stays on the historical flat sweep.
  DiskMap small = harmonic_disk_map(lattice_mesh());
  EXPECT_FALSE(small.used_multigrid);
  EXPECT_TRUE(small.status.ok());

  // Lowering the threshold flips the same mesh onto the multigrid path
  // without changing the embedding's validity.
  DiskMapOptions opt;
  opt.multigrid_threshold = 1;
  TriangleMesh mesh = lattice_mesh();
  DiskMap forced = harmonic_disk_map(mesh, opt);
  EXPECT_TRUE(forced.used_multigrid);
  expect_valid_disk_map(mesh, forced);
}

TEST(DiskMapMultigrid, DeterministicAcrossArenaThreads) {
  FoiMesh fm = large_blob_mesh(4000);
  DiskMapOptions opt;
  opt.solver = HarmonicSolver::kMultigrid;
  set_arena_threads(1);
  DiskMap serial = harmonic_disk_map(fm.mesh, opt);
  for (int threads : {2, 4}) {
    set_arena_threads(threads);
    DiskMap par = harmonic_disk_map(fm.mesh, opt);
    ASSERT_EQ(serial.disk_pos.size(), par.disk_pos.size());
    for (std::size_t v = 0; v < serial.disk_pos.size(); ++v) {
      ASSERT_EQ(serial.disk_pos[v], par.disk_pos[v])
          << "vertex " << v << " diverged at " << threads << " threads";
    }
    EXPECT_EQ(serial.sweeps, par.sweeps);
    EXPECT_EQ(serial.cycles, par.cycles);
  }
  set_arena_threads(0);
}

TEST(DiskMapMultigrid, NonConvergenceSurfacesStatus) {
  TriangleMesh mesh = lattice_mesh();
  DiskMapOptions opt;
  opt.max_sweeps = 1;  // impossible budget
  DiskMap map = harmonic_disk_map(mesh, opt);
  EXPECT_FALSE(map.converged);
  EXPECT_FALSE(map.status.ok());
  EXPECT_NE(map.status.to_string().find("did not converge"),
            std::string::npos);
}

// Property sweep: maps of meshed FoI shapes are always valid embeddings.
class DiskMapProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiskMapProperty, MeshedBlobEmbeds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Polygon blob = make_circle({0, 0}, 80.0 + rng.uniform(0.0, 40.0), 40);
  FieldOfInterest foi{std::move(blob)};
  MesherOptions opt;
  opt.target_grid_points = 250;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  FoiMesh fm = mesh_foi(foi, opt);
  DiskMap map = harmonic_disk_map(fm.mesh);
  expect_valid_disk_map(fm.mesh, map);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskMapProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace anr
