// Sharded mission service: placement purity and pinned cross-process
// determinism, shard-map versioning, fallback-walk routing, cache
// affinity (vs the random-routing baseline), kill/drain job survival,
// per-shard metric reconciliation, and router-vs-direct byte identity.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "io/plan_io.h"
#include "runtime/mission_service.h"
#include "shard/placement.h"
#include "shard/router.h"
#include "shard/shard_map.h"

namespace anr {
namespace {

using runtime::JobResult;
using runtime::JobStatus;
using runtime::MissionService;
using runtime::PlanJob;
using runtime::ServiceOptions;
using shard::PlacementDecision;
using shard::RoutingPolicy;
using shard::ShardedMissionService;
using shard::ShardedServiceOptions;
using shard::ShardedServiceStats;
using shard::ShardMap;
using shard::ShardMapView;
using shard::ShardState;

// Small-but-real planner settings; `variant` perturbs the fingerprint
// (distinct planner-cache keys) without changing the cost profile.
PlannerOptions fast_options(int variant = 0) {
  PlannerOptions opt;
  opt.mesher.target_grid_points = 300;
  opt.cvt_samples = 3000 + variant;
  opt.max_adjust_steps = 4;
  return opt;
}

struct Fixture {
  Scenario sc = scenario(1);
  std::vector<Vec2> deploy =
      optimal_coverage_positions(sc.m1, 64, /*seed=*/1, uniform_density())
          .positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();

  PlanJob job(const std::string& id, int variant = 0) const {
    PlanJob j;
    j.id = id;
    j.m1 = sc.m1;
    j.m2_shape = sc.m2_shape;
    j.r_c = sc.comm_range;
    j.m2_offset = offset;
    j.positions = deploy;
    j.options = fast_options(variant);
    return j;
  }
};

const Fixture& fixture() {
  static Fixture f;  // one deployment computation for the whole binary
  return f;
}

std::uint64_t resolved_sum(const ShardedServiceStats& s) { return s.resolved(); }

// --- ShardMap ---------------------------------------------------------------

TEST(ShardMapTest, VersionBumpsOnlyOnRealTransitions) {
  ShardMap map(3);
  EXPECT_EQ(map.version(), 0u);
  EXPECT_EQ(map.state(1), ShardState::kUp);
  EXPECT_FALSE(map.set_state(1, ShardState::kUp));  // no-op transition
  EXPECT_EQ(map.version(), 0u);
  EXPECT_TRUE(map.set_state(1, ShardState::kDown));
  EXPECT_EQ(map.version(), 1u);
  EXPECT_TRUE(map.set_state(1, ShardState::kDraining));
  EXPECT_TRUE(map.set_state(1, ShardState::kUp));
  EXPECT_EQ(map.version(), 3u);

  ShardMapView v = map.view();
  EXPECT_EQ(v.version, 3u);
  EXPECT_EQ(v.size(), 3);
  EXPECT_EQ(v.up_count(), 3);
}

// --- placement --------------------------------------------------------------

TEST(Placement, PinnedHomeShardsAcrossProcessRuns) {
  // Hard-coded expected placements: the cross-process determinism
  // contract. A change here reshuffles every deployment's routing.
  EXPECT_EQ(shard::home_shard(0x1111, 2), 0);
  EXPECT_EQ(shard::home_shard(0x1111, 4), 0);
  EXPECT_EQ(shard::home_shard(0x1111, 8), 5);
  EXPECT_EQ(shard::home_shard(0x2222, 4), 2);
  EXPECT_EQ(shard::home_shard(0x2222, 8), 4);
  EXPECT_EQ(shard::home_shard(0xabcdef, 2), 1);
  EXPECT_EQ(shard::home_shard(0xabcdef, 4), 3);
  EXPECT_EQ(shard::home_shard(0xabcdef, 8), 7);
}

TEST(Placement, PureFunctionOfFingerprintAndMapView) {
  ShardMap map(4);
  map.set_state(2, ShardState::kDown);
  ShardMapView view = map.view();
  for (std::uint64_t fp : {0ull, 7ull, 0x1234ull, ~0ull}) {
    PlacementDecision a = shard::place(fp, view);
    PlacementDecision b = shard::place(fp, view);
    EXPECT_EQ(a.shard, b.shard);
    EXPECT_EQ(a.home, b.home);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.map_version, view.version);
    EXPECT_TRUE(a.ok());
    EXPECT_NE(a.shard, 2);  // never a down shard
  }
}

TEST(Placement, FallbackWalkIsDeterministicAndSkipsUnroutable) {
  ShardMap map(4);
  // Find a fingerprint homed on shard 1, then take shard 1 down.
  std::uint64_t fp = 0;
  while (shard::home_shard(fp, 4) != 1) ++fp;
  map.set_state(1, ShardState::kDown);
  PlacementDecision d = shard::place(fp, map.view());
  EXPECT_EQ(d.home, 1);
  EXPECT_EQ(d.shard, 2);  // next shard up the walk
  EXPECT_EQ(d.hops, 1);
  EXPECT_TRUE(d.forwarded());

  // DRAINING is equally unroutable; the walk continues past it.
  map.set_state(2, ShardState::kDraining);
  d = shard::place(fp, map.view());
  EXPECT_EQ(d.shard, 3);
  EXPECT_EQ(d.hops, 2);

  map.set_state(3, ShardState::kDown);
  d = shard::place(fp, map.view());
  EXPECT_EQ(d.shard, 0);  // wraps around
  EXPECT_EQ(d.hops, 3);

  map.set_state(0, ShardState::kDown);
  d = shard::place(fp, map.view());
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.shard, shard::kNoShard);
}

TEST(Placement, SameStatesSamePlacementEvenAfterVersionChurn) {
  // kill -> revive returns to the original states; placement must return
  // to the original answer even though the version moved on.
  ShardMap map(4);
  ShardMapView before = map.view();
  map.set_state(1, ShardState::kDown);
  map.set_state(1, ShardState::kUp);
  ShardMapView after = map.view();
  EXPECT_NE(before.version, after.version);
  for (std::uint64_t fp = 0; fp < 64; ++fp) {
    EXPECT_EQ(shard::place(fp, before).shard, shard::place(fp, after).shard);
  }
}

// --- ShardedMissionService --------------------------------------------------

TEST(ShardedService, AffinityRoutesEachKeyToOneShardAndSharesItsPlanner) {
  const Fixture& f = fixture();
  ShardedServiceOptions so;
  so.shards = 4;
  so.shard.threads = 2;
  ShardedMissionService service(so);

  constexpr int kVariants = 4;
  constexpr int kJobs = 16;
  std::vector<PlanJob> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back(f.job("j" + std::to_string(i), i % kVariants));
  }
  // Record expected shard per variant from the pure placement function.
  std::vector<int> expected;
  for (int v = 0; v < kVariants; ++v) {
    expected.push_back(service.placement_of(f.job("probe", v)).shard);
  }

  std::vector<JobResult> results = service.run_batch(std::move(jobs));
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kJobs));
  for (const JobResult& r : results) EXPECT_TRUE(r.ok) << r.id << ": " << r.error;

  ShardedServiceStats stats = service.stats();
  // Affinity means each distinct key built its planner exactly once
  // anywhere in the fleet.
  std::uint64_t built = 0, submitted_sum = 0;
  for (const auto& sh : stats.shards) {
    built += sh.cache.constructions;
    submitted_sum += sh.submitted;
  }
  EXPECT_EQ(built, static_cast<std::uint64_t>(kVariants));
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(submitted_sum, stats.submitted - stats.rejected_no_shard);
  EXPECT_EQ(stats.forwarded, 0u);  // all shards up: everyone routes home
  EXPECT_EQ(resolved_sum(stats), static_cast<std::uint64_t>(kJobs));

  // Per-variant traffic landed on the placement-predicted shard.
  for (int v = 0; v < kVariants; ++v) {
    EXPECT_GE(stats.routed[static_cast<std::size_t>(expected[v])], 1u);
  }
  service.shutdown();
}

TEST(ShardedService, AffinityBeatsRandomRoutingOnCacheHitRate) {
  const Fixture& f = fixture();
  constexpr int kVariants = 3;
  constexpr int kJobs = 24;
  auto hit_rate = [&](RoutingPolicy policy) {
    ShardedServiceOptions so;
    so.shards = 4;
    so.shard.threads = 2;
    so.routing = policy;
    ShardedMissionService service(so);
    std::vector<PlanJob> jobs;
    for (int i = 0; i < kJobs; ++i) {
      jobs.push_back(f.job("j" + std::to_string(i), i % kVariants));
    }
    for (const JobResult& r : service.run_batch(std::move(jobs))) {
      EXPECT_TRUE(r.ok) << r.error;
    }
    ShardedServiceStats stats = service.stats();
    std::uint64_t hits = 0, misses = 0;
    for (const auto& sh : stats.shards) {
      hits += sh.cache.hits;
      misses += sh.cache.misses;
    }
    service.shutdown();
    return static_cast<double>(hits) / static_cast<double>(hits + misses);
  };

  double affinity = hit_rate(RoutingPolicy::kAffinity);
  double random = hit_rate(RoutingPolicy::kRandom);
  // Affinity misses exactly once per distinct key; random scatters each
  // key across shards and rebuilds per shard it touches.
  EXPECT_DOUBLE_EQ(affinity,
                   static_cast<double>(kJobs - kVariants) / kJobs);
  EXPECT_GT(affinity, random);
}

TEST(ShardedService, KillMidBatchLosesNoAcceptedJobs) {
  const Fixture& f = fixture();
  ShardedServiceOptions so;
  so.shards = 3;
  so.shard.threads = 1;  // one worker per shard: the rest of a burst queues
  ShardedMissionService service(so);

  const int victim = service.placement_of(f.job("probe", 0)).shard;
  constexpr int kJobs = 9;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(service.submit(f.job("j" + std::to_string(i), 0)));
  }
  // The victim's single worker holds job 0; most of the rest are queued
  // on it. Kill it mid-batch.
  service.kill(victim);
  EXPECT_EQ(service.map().state(victim), ShardState::kDown);

  int ok = 0;
  for (auto& fut : futures) {
    JobResult r = fut.get();
    EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    if (r.ok) ++ok;
  }
  EXPECT_EQ(ok, kJobs);  // nothing lost: forwarded or completed
  ShardedServiceStats stats = service.stats();
  EXPECT_EQ(resolved_sum(stats), static_cast<std::uint64_t>(kJobs));
  EXPECT_GE(stats.rerouted, 1u) << "kill should have handed off queued jobs";
  service.shutdown();
}

TEST(ShardedService, DrainCompletesQueuedJobsAndRevivesWarm) {
  const Fixture& f = fixture();
  ShardedServiceOptions so;
  so.shards = 3;
  so.shard.threads = 1;
  ShardedMissionService service(so);

  const int victim = service.placement_of(f.job("probe", 0)).shard;
  // Warm the victim's cache with one completed job before the burst —
  // otherwise drain() may steal the whole queue before its worker ever
  // builds the planner.
  ASSERT_TRUE(service.submit(f.job("warm", 0)).get().ok);
  constexpr int kJobs = 6;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(service.submit(f.job("j" + std::to_string(i), 0)));
  }
  service.drain(victim);
  // Graceful contract: when drain() returns the shard has nothing queued
  // and nothing in flight.
  runtime::ServiceStats victim_stats = service.shard_service(victim).stats();
  EXPECT_EQ(victim_stats.queue_depth, 0u);
  EXPECT_EQ(victim_stats.active, 0u);
  EXPECT_EQ(service.map().state(victim), ShardState::kDraining);

  for (auto& fut : futures) {
    JobResult r = fut.get();
    EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
  }

  // Revive: traffic snaps back to the warm home shard (its cache kept
  // the planner, so the returning job is a hit, not a rebuild).
  service.revive(victim);
  std::uint64_t built_before =
      service.shard_service(victim).stats().cache.constructions;
  JobResult back = service.submit(f.job("back", 0)).get();
  EXPECT_TRUE(back.ok) << back.error;
  EXPECT_TRUE(back.cache_hit);
  EXPECT_EQ(service.shard_service(victim).stats().cache.constructions,
            built_before);
  EXPECT_EQ(service.placement_of(f.job("probe", 0)).shard, victim);
  service.shutdown();
}

TEST(ShardedService, NoLiveShardRejectsTyped) {
  const Fixture& f = fixture();
  ShardedServiceOptions so;
  so.shards = 2;
  so.shard.threads = 1;
  ShardedMissionService service(so);
  service.kill(0);
  service.kill(1);
  JobResult r = service.submit(f.job("nowhere", 0)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, JobStatus::kRejectedShutdown);
  EXPECT_NE(r.error.find("no live shard"), std::string::npos);
  EXPECT_EQ(service.stats().rejected_no_shard, 1u);

  // Revive one shard: service is usable again.
  service.revive(0);
  EXPECT_TRUE(service.submit(f.job("again", 0)).get().ok);
  service.shutdown();
}

TEST(ShardedService, RouterPlansAreByteIdenticalToDirectService) {
  const Fixture& f = fixture();
  // Golden diff: the router must not perturb planning in any way.
  ServiceOptions direct_so;
  direct_so.threads = 1;
  MissionService direct(direct_so);
  JobResult d = direct.submit(f.job("direct", 1)).get();
  ASSERT_TRUE(d.ok) << d.error;
  std::string reference = plan_to_json(d.plan).dump();

  ShardedServiceOptions so;
  so.shards = 3;
  so.shard.threads = 2;
  ShardedMissionService service(so);
  JobResult r1 = service.submit(f.job("routed", 1)).get();
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_EQ(plan_to_json(r1.plan).dump(), reference);

  // Still identical when served through the fallback walk.
  const int home = service.placement_of(f.job("probe", 1)).shard;
  service.kill(home);
  JobResult r2 = service.submit(f.job("forwarded", 1)).get();
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(plan_to_json(r2.plan).dump(), reference);
  EXPECT_GE(service.stats().forwarded, 1u);
  service.shutdown();
}

TEST(ShardedService, PerShardMetricsReconcileWithRouterTotals) {
  const Fixture& f = fixture();
  obs::Registry registry;
  ShardedServiceOptions so;
  so.shards = 3;
  so.shard.threads = 2;
  so.registry = &registry;
  ShardedMissionService service(so);

  constexpr int kJobs = 12;
  std::vector<PlanJob> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back(f.job("j" + std::to_string(i), i % 3));
  }
  for (const JobResult& r : service.run_batch(std::move(jobs))) {
    EXPECT_TRUE(r.ok) << r.error;
  }
  service.shutdown();

  // Sum labeled series across shards and compare with the router family.
  std::map<std::string, double> sums;
  bool saw_shard_label = false;
  for (const obs::MetricSnapshot& m : registry.snapshot()) {
    for (const auto& [k, v] : m.labels) {
      if (k == "shard") saw_shard_label = true;
    }
    sums[m.name] += m.value;
  }
  EXPECT_TRUE(saw_shard_label);
  EXPECT_EQ(sums["anr_router_jobs_total"], static_cast<double>(kJobs));
  EXPECT_EQ(sums["anr_router_routed_total"], static_cast<double>(kJobs));
  EXPECT_EQ(sums["anr_jobs_submitted_total"], static_cast<double>(kJobs));
  EXPECT_EQ(sums["anr_jobs_total"], static_cast<double>(kJobs));
  EXPECT_EQ(sums["anr_cache_constructions_total"], 3.0);

  // The JSON snapshot reconciles the same way, with a derived hit rate.
  ShardedServiceStats stats = service.stats();
  json::Value j = shard::sharded_stats_to_json(stats);
  EXPECT_EQ(j.at("totals").at("submitted").as_number(),
            j.at("router").at("submitted").as_number());
  EXPECT_EQ(j.at("totals").at("resolved").as_number(),
            static_cast<double>(kJobs));
  EXPECT_EQ(j.at("shards").as_array().size(), 3u);
  double rate = j.at("totals").at("cache").at("hit_rate").as_number();
  EXPECT_NEAR(rate, static_cast<double>(kJobs - 3) / kJobs, 1e-12);
  // Every shard's own JSON also carries its derived hit rate.
  for (const json::Value& sh : j.at("shards").as_array()) {
    EXPECT_TRUE(sh.at("cache").as_object().count("hit_rate"));
  }
}

TEST(ShardedService, ConcurrentSubmitKillReviveStress) {
  const Fixture& f = fixture();
  ShardedServiceOptions so;
  so.shards = 3;
  so.shard.threads = 1;
  ShardedMissionService service(so);

  constexpr int kSubmitters = 2;
  constexpr int kPerThread = 6;
  std::vector<std::future<JobResult>> futures[kSubmitters];
  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(
            service.submit(f.job("t" + std::to_string(t) + "-j" +
                                     std::to_string(i),
                                 0)));
      }
    });
  }
  // Admin chaos alongside the submitters: kill / drain / revive cycles.
  std::thread admin([&] {
    for (int round = 0; round < 3; ++round) {
      int s = round % so.shards;
      service.kill(s);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      service.revive(s);
      int d = (round + 1) % so.shards;
      service.drain(d);
      service.revive(d);
    }
  });
  for (std::thread& t : threads) t.join();
  admin.join();

  std::uint64_t resolved = 0;
  for (auto& per_thread : futures) {
    for (auto& fut : per_thread) {
      JobResult r = fut.get();  // every future must resolve
      EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, static_cast<std::uint64_t>(kSubmitters * kPerThread));
  ShardedServiceStats stats = service.stats();
  EXPECT_EQ(resolved_sum(stats) + stats.rejected_no_shard,
            stats.submitted);
  service.shutdown();
}

}  // namespace
}  // namespace anr
