// SLO-driven admission control: threshold ladder, monotonicity, the
// histogram-delta latency window, and the gateway accounting identity
// accepted + shed + rejected == submitted — audited against both a
// controllable fake backend and the real MissionService shed path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "foi/scenario.h"
#include "coverage/lloyd.h"
#include "runtime/admission.h"
#include "runtime/mission_service.h"

namespace anr::runtime {
namespace {

int severity(AdmitDecision d) { return static_cast<int>(d); }

// ---------------------------------------------------------------------
// Controller: decision ladder off the occupancy signal alone.

TEST(AdmissionController, ThresholdLadder) {
  AdmissionOptions opt;
  opt.queue_capacity = 100;  // occupancy == depth / 100
  AdmissionController ctrl(opt);
  std::size_t depth = 0;
  ctrl.set_queue_probe([&] { return depth; });

  depth = 0;
  EXPECT_EQ(ctrl.admit().decision, AdmitDecision::kAccept);
  depth = 74;  // pressure 0.74 < 0.75
  EXPECT_EQ(ctrl.admit().decision, AdmitDecision::kAccept);
  depth = 75;  // pressure 0.75: not < shed_pressure
  EXPECT_EQ(ctrl.admit().decision, AdmitDecision::kShed);
  depth = 149;  // pressure 1.49 < 1.5
  EXPECT_EQ(ctrl.admit().decision, AdmitDecision::kShed);
  depth = 150;  // pressure 1.5: reject
  EXPECT_EQ(ctrl.admit().decision, AdmitDecision::kReject);
}

TEST(AdmissionController, DecisionMonotoneInPressure) {
  AdmissionOptions opt;
  opt.queue_capacity = 100;
  AdmissionController ctrl(opt);
  std::size_t depth = 0;
  ctrl.set_queue_probe([&] { return depth; });

  double prev_pressure = -1.0;
  int prev_severity = -1;
  for (depth = 0; depth <= 250; ++depth) {
    const AdmitResult r = ctrl.admit();
    EXPECT_GE(r.pressure, prev_pressure);
    EXPECT_GE(severity(r.decision), prev_severity)
        << "decision improved while pressure rose (depth " << depth << ")";
    prev_pressure = r.pressure;
    prev_severity = severity(r.decision);
  }
}

// ---------------------------------------------------------------------
// Controller: the histogram-delta latency window.

TEST(AdmissionController, WindowP99FromBucketDeltas) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("lat", {});

  AdmissionOptions opt;
  opt.min_window_count = 16;
  AdmissionController ctrl(opt);
  ctrl.watch(h);

  // 90 fast + 11 slow observations: the p99 rank lands in the slow
  // bucket. The held value is that bucket's upper bound — a conservative
  // overestimate, never an underestimate.
  for (int i = 0; i < 90; ++i) h->observe(0.010);
  for (int i = 0; i < 11; ++i) h->observe(0.080);
  ctrl.refresh();
  EXPECT_GE(ctrl.window_p99(), 0.080);
  EXPECT_LE(ctrl.window_p99(), 0.080 * h->spec().factor);

  // Next window: only the *new* observations count. 30 fast samples move
  // the p99 down to the fast bucket even though the histogram's
  // cumulative counts still remember the slow burst.
  for (int i = 0; i < 30; ++i) h->observe(0.010);
  ctrl.refresh();
  EXPECT_GE(ctrl.window_p99(), 0.010);
  EXPECT_LT(ctrl.window_p99(), 0.080);
}

TEST(AdmissionController, QuietWindowsDecayTheHeldP99) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("lat", {});

  AdmissionOptions opt;
  opt.min_window_count = 16;
  opt.idle_decay = 0.5;
  AdmissionController ctrl(opt);
  ctrl.watch(h);

  for (int i = 0; i < 32; ++i) h->observe(0.080);
  ctrl.refresh();
  const double held = ctrl.window_p99();
  ASSERT_GT(held, 0.0);

  ctrl.refresh();  // no new samples: decay, don't latch
  EXPECT_DOUBLE_EQ(ctrl.window_p99(), held * 0.5);
  ctrl.refresh();
  EXPECT_DOUBLE_EQ(ctrl.window_p99(), held * 0.25);

  // Below min_window_count new samples also counts as quiet.
  for (int i = 0; i < 5; ++i) h->observe(10.0);
  ctrl.refresh();
  EXPECT_DOUBLE_EQ(ctrl.window_p99(), held * 0.125);
}

TEST(AdmissionController, LatencyPressureAloneCanShed) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("lat", {});

  AdmissionOptions opt;
  opt.slo_seconds = 0.1;
  AdmissionController ctrl(opt);
  ctrl.watch(h);  // no queue probe: occupancy reads 0

  for (int i = 0; i < 32; ++i) h->observe(0.080);
  ctrl.refresh();
  const AdmitResult r = ctrl.admit();
  // Held p99 in [0.08, 0.16] -> pressure in [0.8, 1.6]; with the default
  // thresholds that is at least shedding territory.
  EXPECT_GE(r.pressure, 0.8);
  EXPECT_NE(r.decision, AdmitDecision::kAccept);
  EXPECT_DOUBLE_EQ(r.pressure, r.p99_seconds / opt.slo_seconds);
}

// ---------------------------------------------------------------------
// Gateway: accounting identity and per-decision contracts against a
// fully controllable backend.

class FakeBackend {
 public:
  FakeBackend() : worker_([this] { loop(); }) {}

  ~FakeBackend() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      down_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  std::future<JobResult> submit(PlanJob job) {
    std::promise<JobResult> promise;
    std::future<JobResult> future = promise.get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back({std::move(job), std::move(promise)});
    }
    cv_.notify_one();
    return future;
  }

  std::size_t queue_depth() {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  void pause() {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
  }

  void resume() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      paused_ = false;
    }
    cv_.notify_all();
  }

  std::uint64_t executed() const { return executed_.load(); }

 private:
  struct Item {
    PlanJob job;
    std::promise<JobResult> promise;
  };

  void loop() {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return down_ || (!paused_ && !queue_.empty()); });
        if (down_ && queue_.empty()) return;
        if (paused_ || queue_.empty()) continue;
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      executed_.fetch_add(1);
      JobResult r;
      r.id = item.job.id;
      r.ok = true;
      if (item.job.level == ServiceLevel::kDegradedOnly) {
        // Mirror the MissionService shed-path contract.
        r.status = JobStatus::kDegraded;
        r.degradation.degraded = true;
        r.degradation.mode = PlanMode::kBaselineFallback;
      } else {
        r.status = JobStatus::kOk;
      }
      item.promise.set_value(std::move(r));
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool paused_ = false;
  bool down_ = false;
  std::atomic<std::uint64_t> executed_{0};
  std::thread worker_;
};

PlanJob tiny_job(const std::string& id) {
  PlanJob job;
  job.id = id;
  job.positions = {{0.0, 0.0}};
  return job;
}

TEST(ServingGateway, AccountingIdentityAndDecisionContracts) {
  obs::Registry registry;
  FakeBackend backend_impl;

  AdmissionOptions ao;
  ao.queue_capacity = 20;
  ao.registry = &registry;
  AdmissionController ctrl(ao);
  GatewayBackend backend;
  backend.submit = [&](PlanJob j) { return backend_impl.submit(std::move(j)); };
  backend.queue_depth = [&] { return backend_impl.queue_depth(); };
  ServingGateway gateway(std::move(backend), &ctrl, /*refresh_every=*/16);

  // Pause the backend so the queue — and with it occupancy pressure —
  // climbs through the shed band into rejection as the burst lands.
  backend_impl.pause();
  constexpr int kJobs = 300;
  std::vector<std::future<JobResult>> futures;
  std::vector<AdmitResult> verdicts(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(gateway.submit(tiny_job("burst-" + std::to_string(i)),
                                     &verdicts[static_cast<std::size_t>(i)]));
  }
  backend_impl.resume();

  std::uint64_t accepted = 0, shed = 0, rejected = 0;
  for (int i = 0; i < kJobs; ++i) {
    const AdmitResult& v = verdicts[static_cast<std::size_t>(i)];
    const JobResult r = futures[static_cast<std::size_t>(i)].get();
    switch (v.decision) {
      case AdmitDecision::kAccept:
        ++accepted;
        EXPECT_LT(v.pressure, ao.shed_pressure);
        EXPECT_EQ(r.status, JobStatus::kOk);
        break;
      case AdmitDecision::kShed:
        ++shed;
        EXPECT_GE(v.pressure, ao.shed_pressure);
        EXPECT_LT(v.pressure, ao.reject_pressure);
        EXPECT_EQ(r.status, JobStatus::kDegraded);
        EXPECT_TRUE(r.degradation.degraded);
        EXPECT_EQ(r.degradation.mode, PlanMode::kBaselineFallback);
        break;
      case AdmitDecision::kReject:
        ++rejected;
        EXPECT_GE(v.pressure, ao.reject_pressure);
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.status, JobStatus::kRejectedOverload);
        break;
    }
  }
  // The paused burst must actually have traversed the whole ladder.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(shed, 0u);
  EXPECT_GT(rejected, 0u);

  const GatewayStats gs = gateway.stats();
  EXPECT_EQ(gs.submitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(gs.accepted + gs.shed + gs.rejected, gs.submitted);
  EXPECT_EQ(gs.accepted, accepted);
  EXPECT_EQ(gs.shed, shed);
  EXPECT_EQ(gs.rejected, rejected);

  // Rejected jobs never reach the backend.
  EXPECT_EQ(backend_impl.executed(), accepted + shed);

  // The metrics reconcile with the gateway's own counters.
  EXPECT_EQ(
      registry.counter("anr_admit_total", {{"decision", "accept"}})->value(),
      accepted);
  EXPECT_EQ(registry.counter("anr_admit_total", {{"decision", "shed"}})->value(),
            shed);
  EXPECT_EQ(
      registry.counter("anr_admit_total", {{"decision", "reject"}})->value(),
      rejected);
}

TEST(ServingGateway, RejectResolvesImmediatelyWithoutBackendWork) {
  FakeBackend backend_impl;
  AdmissionOptions ao;
  ao.queue_capacity = 1;
  AdmissionController ctrl(ao);
  GatewayBackend backend;
  backend.submit = [&](PlanJob j) { return backend_impl.submit(std::move(j)); };
  backend.queue_depth = [] { return std::size_t{10}; };  // pressure 10
  ServingGateway gateway(std::move(backend), &ctrl);

  std::future<JobResult> f = gateway.submit(tiny_job("doomed"));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const JobResult r = f.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, JobStatus::kRejectedOverload);
  EXPECT_NE(r.error.find("pressure"), std::string::npos);
  EXPECT_EQ(backend_impl.executed(), 0u);
}

// ---------------------------------------------------------------------
// End to end: a shed job through the real MissionService resolves as a
// degraded baseline plan — a real, usable trajectory set.

TEST(ServingGateway, ShedThroughRealServiceProducesDegradedPlan) {
  MissionService service;  // default options; shed path builds no planner

  AdmissionOptions ao;
  ao.queue_capacity = 4;
  ao.shed_pressure = 0.1;   // constant probe below holds pressure in the
  ao.reject_pressure = 2.0; // shed band: every job is downgraded
  AdmissionController ctrl(ao);
  GatewayBackend backend;
  backend.submit = [&](PlanJob j) { return service.submit(std::move(j)); };
  backend.queue_depth = [] { return std::size_t{1}; };  // occupancy 0.25
  ServingGateway gateway(std::move(backend), &ctrl);

  const Scenario sc = scenario(1);
  PlanJob job;
  job.id = "shed-real";
  job.m1 = sc.m1;
  job.m2_shape = sc.m2_shape;
  job.r_c = sc.comm_range;
  job.m2_offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                  sc.m2_shape.centroid();
  job.positions =
      optimal_coverage_positions(sc.m1, 24, /*seed=*/1, uniform_density())
          .positions;

  AdmitResult verdict;
  const JobResult r = gateway.submit(std::move(job), &verdict).get();
  EXPECT_EQ(verdict.decision, AdmitDecision::kShed);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, JobStatus::kDegraded);
  EXPECT_TRUE(r.degradation.degraded);
  EXPECT_EQ(r.degradation.mode, PlanMode::kBaselineFallback);
  EXPECT_EQ(r.plan.trajectories.size(), 24u);
  EXPECT_GT(r.plan.total_time, 0.0);
}

}  // namespace
}  // namespace anr::runtime
