// Alpha extraction: shape-aware triangulation from point sets.
#include <gtest/gtest.h>

#include "mesh/alpha_extract.h"
#include "mesh/boundary.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(AlphaExtract, LatticeDiskIsCleanDisk) {
  auto pts = testutil::lattice_disk({0, 0}, 50.0, 10.0);
  ASSERT_GE(pts.size(), 20u);
  auto ex = alpha_extract(pts, 12.0);
  EXPECT_TRUE(ex.mesh.vertex_manifold());
  EXPECT_TRUE(ex.unmeshed.empty());
  EXPECT_EQ(ex.mesh.euler_characteristic(), 1);
  EXPECT_EQ(boundary_loops(ex.mesh).size(), 1u);
}

TEST(AlphaExtract, LongEdgesExcluded) {
  auto pts = testutil::lattice_disk({0, 0}, 50.0, 10.0);
  auto ex = alpha_extract(pts, 12.0);
  for (const EdgeKey& e : ex.mesh.edges()) {
    EXPECT_LE(distance(ex.mesh.position(e.a), ex.mesh.position(e.b)), 12.0);
  }
}

TEST(AlphaExtract, ConcaveShapePreserved) {
  // Two lattice blobs joined by a thin lattice bridge stay one component;
  // the concave notch is not spanned by triangles.
  std::vector<Vec2> pts;
  auto left = testutil::lattice_disk({0, 0}, 30.0, 8.0);
  auto right = testutil::lattice_disk({100, 0}, 30.0, 8.0);
  pts.insert(pts.end(), left.begin(), left.end());
  pts.insert(pts.end(), right.begin(), right.end());
  for (double x = 30.0; x <= 70.0; x += 8.0) {
    pts.push_back({x, 0.0});
    pts.push_back({x, 8.0});
  }
  auto ex = alpha_extract(pts, 10.0);
  EXPECT_TRUE(ex.mesh.vertex_manifold());
  // No triangle can span the 40m gap between the blobs off-bridge.
  for (const EdgeKey& e : ex.mesh.edges()) {
    EXPECT_LE(distance(ex.mesh.position(e.a), ex.mesh.position(e.b)), 10.0);
  }
}

TEST(AlphaExtract, FarOutlierUnmeshed) {
  auto pts = testutil::lattice_disk({0, 0}, 40.0, 10.0);
  std::size_t core = pts.size();
  pts.push_back({500.0, 500.0});  // isolated robot
  auto ex = alpha_extract(pts, 12.0);
  ASSERT_EQ(ex.unmeshed.size(), 1u);
  EXPECT_EQ(ex.unmeshed[0], static_cast<VertexId>(core));
}

TEST(AlphaExtract, KeepsLargestComponent) {
  // Two disjoint blobs: only the larger survives, the smaller is unmeshed.
  std::vector<Vec2> pts = testutil::lattice_disk({0, 0}, 50.0, 10.0);
  std::size_t big = pts.size();
  auto small = testutil::lattice_disk({500, 500}, 20.0, 10.0);
  pts.insert(pts.end(), small.begin(), small.end());
  auto ex = alpha_extract(pts, 12.0);
  EXPECT_EQ(ex.unmeshed.size(), pts.size() - big);
}

TEST(CleanToManifold, RemovesBowtie) {
  TriangleMesh soup({{0, 0}, {1, 0}, {1, 1}, {-1, 0}, {-1, -1}, {2, 0}, {2, 1}},
                    {Tri{0, 1, 2}, Tri{0, 3, 4}, Tri{1, 5, 2}, Tri{5, 6, 2}});
  auto ex = clean_to_manifold(std::move(soup));
  EXPECT_TRUE(ex.mesh.vertex_manifold());
  // The single bowtie triangle at vertex 0's far side is dropped.
  EXPECT_EQ(ex.mesh.num_triangles(), 3u);
  EXPECT_EQ(ex.unmeshed.size(), 2u);
}

TEST(CleanToManifold, EmptyMeshOk) {
  TriangleMesh empty({{0, 0}, {1, 1}}, {});
  auto ex = clean_to_manifold(std::move(empty));
  EXPECT_EQ(ex.mesh.num_triangles(), 0u);
  EXPECT_EQ(ex.unmeshed.size(), 2u);
}

// Property: random dense point clouds always clean to a manifold.
class AlphaProperty : public ::testing::TestWithParam<int> {};

TEST_P(AlphaProperty, AlwaysManifold) {
  auto pts = testutil::random_points(150, 0.0, 100.0,
                                     static_cast<std::uint64_t>(GetParam()));
  auto ex = alpha_extract(pts, 18.0);
  EXPECT_TRUE(ex.mesh.vertex_manifold());
  EXPECT_TRUE(ex.mesh.all_ccw());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace anr
