// Distributed rotation search vs the centralized search: same angles,
// same objective ordering, real message accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/distributed_rotation.h"
#include "march/metrics.h"
#include "march/planner.h"
#include "march/transition_sim.h"

namespace anr {
namespace {

TEST(DistributedRotation, MatchesCentralizedOnSyntheticObjective) {
  // A synthetic map: rotate a ring of robots about their centroid; the
  // preserved-link count depends on theta with a clear maximum at 0.
  const int n = 24;
  const double radius = 100.0;
  const double r_c = 2.0 * radius * std::sin(M_PI / n) + 1.0;  // ring links only
  std::vector<Vec2> ring;
  for (int i = 0; i < n; ++i) {
    double a = 2.0 * M_PI * i / n;
    ring.push_back({radius * std::cos(a), radius * std::sin(a)});
  }
  auto map_targets = [&](double theta) {
    std::vector<Vec2> q;
    q.reserve(ring.size());
    for (Vec2 p : ring) q.push_back(p.rotated(theta) + Vec2{1000.0, 0.0});
    return q;
  };
  // Any rigid rotation preserves all ring links — every probe returns the
  // full link count, and the search must still terminate consistently.
  RotationSearchOptions opt;
  auto dr = distributed_rotation_search(map_targets, ring, r_c,
                                        MarchObjective::kMaxStableLinks, opt);
  EXPECT_EQ(dr.evaluations, opt.initial_partitions + 2 * opt.depth);
  EXPECT_GT(dr.messages, 0u);
  auto links = communication_links(ring, r_c);
  EXPECT_DOUBLE_EQ(dr.value, static_cast<double>(links.size()));
}

TEST(DistributedRotation, AgreesWithCentralizedObjectiveValues) {
  // Non-rigid map: anisotropic squeeze that breaks more links the more the
  // configuration is rotated away from the squeeze axis.
  const int n = 30;
  Rng rng(5);
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)});
  }
  double r_c = 60.0;
  auto map_targets = [&](double theta) {
    std::vector<Vec2> q;
    for (Vec2 p : pts) {
      Vec2 r = p.rotated(theta);
      q.push_back({r.x * 1.4, r.y * 0.4});  // squeeze
    }
    return q;
  };
  auto links = communication_links(pts, r_c);
  RotationSearchOptions opt;
  opt.initial_partitions = 4;
  opt.depth = 3;
  auto dr = distributed_rotation_search(map_targets, pts, r_c,
                                        MarchObjective::kMaxStableLinks, opt);
  // The distributed value at the chosen angle equals the centralized
  // endpoint predictor (times the link count).
  double expected =
      predicted_stable_link_ratio(pts, map_targets(dr.angle), links, r_c) *
      static_cast<double>(links.size());
  EXPECT_NEAR(dr.value, expected, 1e-9);
}

TEST(DistributedRotation, MethodBMinimizesDisplacement) {
  const int n = 16;
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    double a = 2.0 * M_PI * i / n;
    pts.push_back({50.0 * std::cos(a), 50.0 * std::sin(a)});
  }
  // Identity at theta=0; rotation moves everyone.
  auto map_targets = [&](double theta) {
    std::vector<Vec2> q;
    for (Vec2 p : pts) q.push_back(p.rotated(theta));
    return q;
  };
  RotationSearchOptions opt;
  opt.initial_partitions = 8;
  opt.depth = 5;
  auto dr = distributed_rotation_search(map_targets, pts, 200.0,
                                        MarchObjective::kMinDistance, opt);
  // Best angle is near 0 (mod 2*pi).
  double wrapped = std::min(dr.angle, 2.0 * M_PI - dr.angle);
  EXPECT_LT(wrapped, 0.3);
}

TEST(DistributedRotation, PlannerIntegrationReportsMessages) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  PlannerOptions copt;
  copt.mesher.target_grid_points = 600;
  copt.cvt_samples = 8000;
  copt.max_adjust_steps = 10;
  PlannerOptions dopt = copt;
  dopt.distributed = true;
  MarchPlanner central(sc.m1, sc.m2_shape, sc.comm_range, copt);
  MarchPlanner dist(sc.m1, sc.m2_shape, sc.comm_range, dopt);
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan a = central.plan(deploy, off);
  MarchPlan b = dist.plan(deploy, off);
  // The distributed search flooded every probe.
  EXPECT_GT(b.protocol_messages, 100000u);
  // Same probe count, comparable objective (maps may differ slightly in
  // solver tolerance, so allow a small gap).
  EXPECT_EQ(a.rotation_evaluations, b.rotation_evaluations);
  EXPECT_NEAR(a.rotation_objective, b.rotation_objective, 0.05);
  // Boundary ring stays connected in both.
  EXPECT_LE(a.max_boundary_gap, sc.comm_range);
  EXPECT_LE(b.max_boundary_gap, sc.comm_range);
}

}  // namespace
}  // namespace anr
