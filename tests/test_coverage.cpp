// Coverage: exact Voronoi vs grid CVT, Lloyd convergence, density effects.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "coverage/density.h"
#include "coverage/grid_cvt.h"
#include "coverage/lloyd.h"
#include "coverage/voronoi.h"
#include "net/unit_disk_graph.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(Voronoi, CellsPartitionTheBoundary) {
  Polygon sq = make_rect({0, 0}, {100, 100});
  auto sites = testutil::random_points(12, 10.0, 90.0, 4);
  auto cells = clipped_voronoi_cells(sites, sq);
  double total = 0.0;
  for (const Polygon& c : cells) total += c.area();
  EXPECT_NEAR(total, sq.area(), 1e-6);
}

TEST(Voronoi, CellContainsItsSite) {
  Polygon sq = make_rect({0, 0}, {100, 100});
  auto sites = testutil::random_points(15, 5.0, 95.0, 8);
  auto cells = clipped_voronoi_cells(sites, sq);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_TRUE(cells[i].contains(sites[i])) << i;
  }
}

TEST(Voronoi, TwoSitesSplitSquare) {
  Polygon sq = make_rect({0, 0}, {10, 10});
  auto cents = voronoi_centroids({{2.5, 5.0}, {7.5, 5.0}}, sq);
  EXPECT_NEAR(cents[0].x, 2.5, 1e-9);
  EXPECT_NEAR(cents[1].x, 7.5, 1e-9);
}

TEST(GridCvt, CentroidsMatchExactVoronoiOnSquare) {
  FieldOfInterest foi = testutil::square_foi(100.0);
  GridCvt grid(foi, uniform_density(), 60000);
  auto sites = testutil::random_points(10, 20.0, 80.0, 12);
  auto approx = grid.centroids(sites);
  auto exact = voronoi_centroids(sites, foi.outer());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_LT(distance(approx[i], exact[i]), 1.5) << i;  // ~grid spacing
  }
}

TEST(GridCvt, CentroidsAvoidHoles) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 25.0);
  GridCvt grid(foi, uniform_density(), 20000);
  // A site at the hole center: its centroid must not be inside the hole.
  std::vector<Vec2> sites{{50.0, 50.0}, {10.0, 10.0}, {90.0, 90.0}};
  auto cents = grid.centroids(sites);
  for (Vec2 c : cents) EXPECT_TRUE(foi.contains(c));
}

TEST(GridCvt, NearestSample) {
  FieldOfInterest foi = testutil::square_foi(50.0);
  GridCvt grid(foi, uniform_density(), 5000);
  Vec2 s = grid.nearest_sample({25.0, 25.0});
  EXPECT_LT(distance(s, Vec2(25.0, 25.0)), 2.0 * grid.spacing());
}

TEST(Lloyd, ConvergesAndStaysInside) {
  FieldOfInterest foi = testutil::square_foi(200.0);
  GridCvt grid(foi, uniform_density(), 20000);
  Rng rng(3);
  std::vector<Vec2> sites;
  for (int i = 0; i < 30; ++i) sites.push_back(foi.sample_point(rng));
  auto res = lloyd(grid, sites);
  EXPECT_TRUE(res.converged);
  for (Vec2 p : res.positions) EXPECT_TRUE(foi.contains(p));
}

TEST(Lloyd, ReducesSpacingVariance) {
  // CVT should approach the equilateral lattice: nearest-neighbor
  // distances become much more uniform than the random start.
  FieldOfInterest foi = testutil::square_foi(200.0);
  GridCvt grid(foi, uniform_density(), 30000);
  Rng rng(5);
  std::vector<Vec2> sites;
  for (int i = 0; i < 50; ++i) sites.push_back(foi.sample_point(rng));

  auto nn_cv = [&](const std::vector<Vec2>& pts) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      double best = 1e300;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (i != j) best = std::min(best, distance(pts[i], pts[j]));
      }
      sum += best;
      sum2 += best * best;
    }
    double mean = sum / static_cast<double>(pts.size());
    double var = sum2 / static_cast<double>(pts.size()) - mean * mean;
    return std::sqrt(std::max(var, 0.0)) / mean;
  };

  double before = nn_cv(sites);
  auto res = lloyd(grid, sites);
  double after = nn_cv(res.positions);
  EXPECT_LT(after, before * 0.5);
}

TEST(Lloyd, OptimalCoverageDeterministicPerSeed) {
  FieldOfInterest foi = testutil::square_foi(150.0);
  auto a = optimal_coverage_positions(foi, 25, 42, uniform_density());
  auto b = optimal_coverage_positions(foi, 25, 42, uniform_density());
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i], b.positions[i]);
  }
}

TEST(Density, HotspotConcentratesSites) {
  FieldOfInterest foi = testutil::square_foi(100.0);
  Vec2 hot{25.0, 25.0};
  auto uniform = optimal_coverage_positions(foi, 40, 7, uniform_density());
  auto weighted = optimal_coverage_positions(
      foi, 40, 7, hotspot_density(hot, 8.0, 15.0));
  auto near_hot = [&](const std::vector<Vec2>& pts) {
    int cnt = 0;
    for (Vec2 p : pts) {
      if (distance(p, hot) < 25.0) ++cnt;
    }
    return cnt;
  };
  EXPECT_GT(near_hot(weighted.positions), near_hot(uniform.positions));
}

TEST(Density, HoleProximityConcentratesNearHole) {
  FieldOfInterest foi = testutil::square_with_hole(200.0, 30.0);
  auto uniform = optimal_coverage_positions(foi, 60, 9, uniform_density());
  auto weighted = optimal_coverage_positions(
      foi, 60, 9, hole_proximity_density(foi, 6.0, 20.0));
  auto near_hole = [&](const std::vector<Vec2>& pts) {
    int cnt = 0;
    for (Vec2 p : pts) {
      if (foi.distance_to_nearest_hole(p) < 25.0) ++cnt;
    }
    return cnt;
  };
  EXPECT_GT(near_hole(weighted.positions), near_hole(uniform.positions));
}

TEST(Density, UniformIsOne) {
  auto d = uniform_density();
  EXPECT_DOUBLE_EQ(d({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(d({1e6, -1e6}), 1.0);
}

}  // namespace
}  // namespace anr
