// Shared hashing primitives: pinned values (cache keys and shard
// placement must be stable across platforms and process runs), the jump
// consistent hash range/distribution contract, and the minimal-movement
// property that makes jump hashing the right placement primitive.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace anr {
namespace {

TEST(Fnv1a64, MatchesPublishedTestVectors) {
  // Canonical FNV-1a 64-bit vectors (Fowler/Noll/Vo).
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);   // offset basis
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("anr"), 0xe6f7a9190520111cull);
}

TEST(Fnv1a64, SensitiveToEveryByte) {
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
  EXPECT_NE(fnv1a64("a"), fnv1a64(std::string_view("a\0", 2)));
  EXPECT_NE(fnv1a64(std::string_view("\0", 1)),
            fnv1a64(std::string_view("\0\0", 2)));
}

TEST(Splitmix64, PinnedValues) {
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ull);
  EXPECT_EQ(splitmix64(0x123456789abcdefull), 0x157a3807a48faa9dull);
}

TEST(Splitmix64, AdjacentInputsDecorrelate) {
  // Sequential counters must land far apart — the kRandom routing policy
  // and placement both rely on this.
  std::uint64_t prev = splitmix64(0);
  for (std::uint64_t i = 1; i < 64; ++i) {
    std::uint64_t cur = splitmix64(i);
    int diff = __builtin_popcountll(cur ^ prev);
    EXPECT_GT(diff, 8) << "inputs " << i - 1 << " and " << i;
    prev = cur;
  }
}

TEST(JumpConsistentHash, PinnedValues) {
  // Placement golden values: a change here silently reshuffles every
  // shard assignment, so it must be deliberate.
  EXPECT_EQ(jump_consistent_hash(0, 1), 0);
  EXPECT_EQ(jump_consistent_hash(0, 100), 0);
  EXPECT_EQ(jump_consistent_hash(1, 8), 6);
  EXPECT_EQ(jump_consistent_hash(1, 100), 55);
  EXPECT_EQ(jump_consistent_hash(0xdeadbeefull, 2), 1);
  EXPECT_EQ(jump_consistent_hash(0xdeadbeefull, 4), 3);
  EXPECT_EQ(jump_consistent_hash(0xdeadbeefull, 8), 5);
  EXPECT_EQ(jump_consistent_hash(0xdeadbeefull, 100), 87);
}

TEST(JumpConsistentHash, AlwaysInRange) {
  for (int n : {1, 2, 3, 7, 8, 64}) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      int b = jump_consistent_hash(splitmix64(i), n);
      ASSERT_GE(b, 0);
      ASSERT_LT(b, n);
    }
  }
}

TEST(JumpConsistentHash, RoughlyUniformOverMixedKeys) {
  constexpr int kBuckets = 8;
  constexpr int kKeys = 8000;
  std::vector<int> counts(kBuckets, 0);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    ++counts[static_cast<std::size_t>(
        jump_consistent_hash(splitmix64(i), kBuckets))];
  }
  // Expect ~1000 per bucket; allow a generous ±30%.
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[static_cast<std::size_t>(b)], 700) << "bucket " << b;
    EXPECT_LT(counts[static_cast<std::size_t>(b)], 1300) << "bucket " << b;
  }
}

TEST(JumpConsistentHash, MinimalMovementOnBucketAdd) {
  // Growing n -> n+1 must (a) only move keys INTO the new bucket, never
  // between old buckets, and (b) move ~1/(n+1) of keys.
  constexpr int kKeys = 10000;
  for (int n : {1, 2, 4, 8}) {
    int moved = 0;
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      std::uint64_t key = splitmix64(i);
      int before = jump_consistent_hash(key, n);
      int after = jump_consistent_hash(key, n + 1);
      if (after != before) {
        EXPECT_EQ(after, n) << "key moved between pre-existing buckets";
        ++moved;
      }
    }
    double expect = static_cast<double>(kKeys) / (n + 1);
    EXPECT_GT(moved, expect * 0.7) << "n=" << n;
    EXPECT_LT(moved, expect * 1.3) << "n=" << n;
  }
}

}  // namespace
}  // namespace anr
