// Degraded-mode planning: the typed fallback chain engages only when the
// primary pipeline fails, and reports what it did.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "io/plan_io.h"
#include "march/planner.h"
#include "test_util.h"

namespace anr {
namespace {

PlannerOptions fast_options() {
  PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  return opt;
}

TEST(DegradedPlanning, ScatteredDeploymentFallsBackToBaseline) {
  // A deployment whose every pairwise gap exceeds even the relaxed
  // extraction radius leaves the alpha cut with no triangle to keep, so
  // both triangulation attempts fail; the Hungarian baseline plans from
  // scratch and does not care.
  FieldOfInterest m1 = testutil::square_foi(400.0);
  const double r_c = 80.0;
  std::vector<Vec2> deploy;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      deploy.push_back({72.0 + 128.0 * static_cast<double>(i),
                        72.0 + 128.0 * static_cast<double>(j)});
    }
  }
  MarchPlanner planner(m1, m1, r_c, fast_options());
  PlanOutcome out = planner.plan_robust(deploy, Vec2{12.0 * r_c, 0.0});

  ASSERT_TRUE(out.status.ok()) << out.status.to_string();
  EXPECT_TRUE(out.degradation.degraded);
  EXPECT_EQ(out.degradation.mode, PlanMode::kBaselineFallback);
  ASSERT_EQ(out.degradation.attempts.size(), 3u);
  EXPECT_EQ(out.degradation.attempts[0].mode, PlanMode::kPrimary);
  EXPECT_FALSE(out.degradation.attempts[0].succeeded);
  EXPECT_FALSE(out.degradation.attempts[0].error.empty());
  EXPECT_EQ(out.degradation.attempts[1].mode, PlanMode::kRelaxedExtraction);
  EXPECT_FALSE(out.degradation.attempts[1].succeeded);
  EXPECT_EQ(out.degradation.attempts[2].mode, PlanMode::kBaselineFallback);
  EXPECT_TRUE(out.degradation.attempts[2].succeeded);
  EXPECT_EQ(out.plan.trajectories.size(), 9u);
}

TEST(DegradedPlanning, PrimarySuccessIsByteIdenticalToPlan) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, 72, /*seed=*/1,
                                           uniform_density())
                    .positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, fast_options());

  MarchPlan direct = planner.plan(deploy, offset);
  PlanOutcome out = planner.plan_robust(deploy, offset);

  ASSERT_TRUE(out.status.ok()) << out.status.to_string();
  EXPECT_FALSE(out.degradation.degraded);
  EXPECT_EQ(out.degradation.mode, PlanMode::kPrimary);
  ASSERT_EQ(out.degradation.attempts.size(), 1u);
  EXPECT_TRUE(out.degradation.attempts[0].succeeded);
  EXPECT_EQ(plan_to_json(out.plan).dump(), plan_to_json(direct).dump());
}

TEST(DegradedPlanning, RejectsNonFiniteInputsWithoutAttempting) {
  FieldOfInterest m1 = testutil::square_foi(300.0);
  MarchPlanner planner(m1, m1, 80.0, fast_options());

  std::vector<Vec2> deploy = testutil::random_points(9, 50.0, 250.0, 3);
  deploy[4].x = std::numeric_limits<double>::quiet_NaN();
  PlanOutcome out = planner.plan_robust(deploy, Vec2{100.0, 0.0});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.degradation.attempts.empty());

  PlanOutcome empty = planner.plan_robust({}, Vec2{100.0, 0.0});
  EXPECT_EQ(empty.status.code(), StatusCode::kInvalidArgument);

  std::vector<Vec2> good = testutil::random_points(9, 50.0, 250.0, 3);
  PlanOutcome bad_offset = planner.plan_robust(
      good, Vec2{std::numeric_limits<double>::infinity(), 0.0});
  EXPECT_EQ(bad_offset.status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace anr
