// SVG canvas: structure of the emitted document.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "test_util.h"
#include "viz/svg.h"

namespace anr {
namespace {

TEST(Svg, EmptyCanvasThrows) {
  SvgCanvas canvas;
  EXPECT_THROW(canvas.str(), ContractViolation);
}

TEST(Svg, DocumentStructure) {
  SvgCanvas canvas;
  canvas.line({0, 0}, {10, 10});
  canvas.circle({5, 5}, 2.0);
  std::string doc = canvas.str();
  EXPECT_NE(doc.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
}

TEST(Svg, YAxisFlipped) {
  SvgCanvas canvas;
  canvas.line({0, 3}, {1, 7});
  std::string doc = canvas.str();
  // World y=3 renders as SVG y=-3.
  EXPECT_NE(doc.find("y1=\"-3\""), std::string::npos);
  EXPECT_NE(doc.find("y2=\"-7\""), std::string::npos);
}

TEST(Svg, ViewBoxCoversContentWithMargin) {
  SvgCanvas canvas(10.0);
  canvas.line({0, 0}, {100, 50});
  std::string doc = canvas.str();
  EXPECT_NE(doc.find("viewBox=\"-10 -60 120 70\""), std::string::npos);
}

TEST(Svg, CompositeHelpersEmit) {
  SvgCanvas canvas;
  FieldOfInterest foi = testutil::square_with_hole(100.0, 20.0);
  canvas.foi(foi);
  canvas.robots({{10, 10}, {20, 20}});
  canvas.links({{10, 10}, {20, 20}}, {{0, 1}});
  Trajectory t;
  t.append({0, 0}, 0.0);
  t.append({5, 5}, 1.0);
  canvas.trajectories({t});
  std::string doc = canvas.str();
  EXPECT_NE(doc.find("<polygon"), std::string::npos);
  EXPECT_NE(doc.find("<polyline"), std::string::npos);
  // Two robots, one link, one hole polygon + outer polygon.
  EXPECT_GE(doc.size(), 400u);
}

TEST(Svg, AnimatedRobotsEmitSmil) {
  SvgCanvas canvas;
  Trajectory a;
  a.append({0, 0}, 0.0);
  a.append({10, 0}, 1.0);
  Trajectory b;
  b.append({0, 5}, 0.25);  // starts late and ends early: padded keyTimes
  b.append({10, 5}, 0.75);
  canvas.animated_robots({a, b}, 4.0);
  std::string doc = canvas.str();
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '<') -
                std::count(doc.begin(), doc.end(), '/'),
            std::count(doc.begin(), doc.end(), '>') -
                std::count(doc.begin(), doc.end(), '/'));
  EXPECT_NE(doc.find("<animate attributeName=\"cx\""), std::string::npos);
  EXPECT_NE(doc.find("repeatCount=\"indefinite\""), std::string::npos);
  EXPECT_NE(doc.find("dur=\"4s\""), std::string::npos);
  // Padded trajectory: keyTimes start at 0 and end at 1.
  EXPECT_NE(doc.find("keyTimes=\"0;"), std::string::npos);
  EXPECT_NE(doc.find(";1\""), std::string::npos);
}

TEST(Svg, SaveWritesFile) {
  SvgCanvas canvas;
  canvas.circle({0, 0}, 1.0);
  std::string path = "/tmp/anr_test_svg_out.svg";
  ASSERT_TRUE(canvas.save(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("</svg>"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Svg, SaveToBadPathFails) {
  SvgCanvas canvas;
  canvas.circle({0, 0}, 1.0);
  EXPECT_FALSE(canvas.save("/nonexistent_dir_xyz/out.svg"));
}

}  // namespace
}  // namespace anr
