// The seven paper scenarios: areas match the figures, deployments are
// feasible and connected at the paper's parameters.
#include <gtest/gtest.h>

#include "common/check.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "net/connectivity.h"

namespace anr {
namespace {

TEST(Scenarios, BaseM1MatchesPaperArea) {
  EXPECT_NEAR(base_m1().area(), 308261.0, 1.0);  // Fig. 2(a)
}

TEST(Scenarios, M2AreasMatchPaper) {
  EXPECT_NEAR(scenario(1).m2_shape.area(), 289745.0, 1.0);  // Fig. 3(a)
  EXPECT_NEAR(scenario(2).m2_shape.area(), 173057.0, 1.0);  // Fig. 3(b)
  EXPECT_NEAR(scenario(3).m2_shape.area(), 239987.0, 1.0);  // Fig. 2(d)
  EXPECT_NEAR(scenario(4).m2_shape.area(), 233342.0, 1.0);  // Fig. 3(c)
  EXPECT_NEAR(scenario(5).m2_shape.area(), 253578.0, 1.0);  // Fig. 3(d)
}

TEST(Scenarios, HoleStructureMatchesPaper) {
  EXPECT_TRUE(scenario(1).m2_shape.holes().empty());
  EXPECT_TRUE(scenario(2).m2_shape.holes().empty());
  EXPECT_EQ(scenario(3).m2_shape.holes().size(), 1u);  // flower pond
  EXPECT_EQ(scenario(4).m2_shape.holes().size(), 1u);  // big convex hole
  EXPECT_EQ(scenario(5).m2_shape.holes().size(), 3u);  // multiple small
  EXPECT_FALSE(scenario(6).m1.holes().empty());        // hole -> hole
  EXPECT_FALSE(scenario(6).m2_shape.holes().empty());
  EXPECT_EQ(scenario(7).m1.holes().size(), 2u);
  EXPECT_FALSE(scenario(7).m2_shape.holes().empty());
}

TEST(Scenarios, PaperParameters) {
  for (const Scenario& sc : paper_scenarios()) {
    EXPECT_EQ(sc.num_robots, 144);
    EXPECT_DOUBLE_EQ(sc.comm_range, 80.0);
  }
}

TEST(Scenarios, M2AtSeparationPlacesCentroid) {
  Scenario sc = scenario(1);
  for (double sep : {10.0, 50.0, 100.0}) {
    FieldOfInterest m2 = sc.m2_at(sep);
    Vec2 d = m2.centroid() - sc.m1.centroid();
    EXPECT_NEAR(d.x, sep * sc.comm_range, 1e-6) << "sep " << sep;
    EXPECT_NEAR(d.y, 0.0, 1e-6);
    EXPECT_NEAR(m2.area(), sc.m2_shape.area(), 1e-6);
  }
}

// The deployment that every experiment starts from must be connected at
// r_c = 80 m — otherwise the marching problem is ill-posed.
class ScenarioDeployment : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioDeployment, OptimalCoverageIsConnected) {
  Scenario sc = scenario(GetParam());
  auto dep = optimal_coverage_positions(sc.m1, sc.num_robots, /*seed=*/1,
                                        uniform_density());
  ASSERT_EQ(dep.positions.size(), static_cast<std::size_t>(sc.num_robots));
  for (Vec2 p : dep.positions) {
    EXPECT_TRUE(sc.m1.contains(p));
  }
  EXPECT_TRUE(net::is_connected(dep.positions, sc.comm_range));

  // And the same for the M2-side coverage the baselines assume.
  auto dep2 = optimal_coverage_positions(sc.m2_shape, sc.num_robots, 17,
                                         uniform_density());
  EXPECT_TRUE(net::is_connected(dep2.positions, sc.comm_range));
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioDeployment,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(Scenarios, InvalidIdThrows) {
  EXPECT_THROW(scenario(0), ContractViolation);
  EXPECT_THROW(scenario(8), ContractViolation);
}

}  // namespace
}  // namespace anr
