// FieldOfInterest: containment, area, lattice generation, clamping,
// segment visibility.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "foi/foi.h"
#include "foi/shapes.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(Foi, AreaSubtractsHoles) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 20.0);
  double hole_area = make_circle({50, 50}, 20.0, 32).area();
  EXPECT_NEAR(foi.area(), 100.0 * 100.0 - hole_area, 1e-9);
}

TEST(Foi, Containment) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 20.0);
  EXPECT_TRUE(foi.contains({10, 10}));
  EXPECT_FALSE(foi.contains({50, 50}));   // hole center
  EXPECT_FALSE(foi.contains({150, 50}));  // outside
  EXPECT_TRUE(foi.contains({50, 75}));    // above hole, inside
}

TEST(Foi, CentroidOfSymmetricShape) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 20.0);
  Vec2 c = foi.centroid();
  EXPECT_NEAR(c.x, 50.0, 1e-6);
  EXPECT_NEAR(c.y, 50.0, 1e-6);
}

TEST(Foi, OffCenterHoleShiftsCentroid) {
  FieldOfInterest foi(make_rect({0, 0}, {100, 100}),
                      {make_circle({25, 50}, 15.0, 32)});
  EXPECT_GT(foi.centroid().x, 50.0);  // mass removed on the left
}

TEST(Foi, DistanceToHole) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 20.0);
  EXPECT_NEAR(foi.distance_to_nearest_hole({50, 80}), 10.0, 0.5);
  FieldOfInterest no_holes = testutil::square_foi(100.0);
  EXPECT_TRUE(std::isinf(no_holes.distance_to_nearest_hole({50, 50})));
}

TEST(Foi, ClampInside) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 20.0);
  EXPECT_EQ(foi.clamp_inside({10, 10}), (Vec2{10, 10}));  // already in
  Vec2 from_outside = foi.clamp_inside({120, 50});
  EXPECT_TRUE(foi.contains(from_outside));
  EXPECT_LT(distance(from_outside, {100, 50}), 1.0);
  Vec2 from_hole = foi.clamp_inside({52, 50});
  EXPECT_TRUE(foi.contains(from_hole));
  EXPECT_NEAR(distance(from_hole, Vec2{50, 50}), 20.0, 0.5);
}

TEST(Foi, SegmentInside) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 20.0);
  EXPECT_TRUE(foi.segment_inside({5, 5}, {95, 5}));
  EXPECT_FALSE(foi.segment_inside({5, 50}, {95, 50}));  // crosses hole
  EXPECT_FALSE(foi.segment_inside({5, 5}, {150, 5}));   // exits
}

TEST(Foi, LatticePoints) {
  FieldOfInterest foi = testutil::square_foi(100.0);
  auto pts = foi.lattice_points(10.0);
  // Triangular lattice density: ~ area / (sqrt(3)/2 h^2).
  double expected = 100.0 * 100.0 / (std::sqrt(3.0) / 2.0 * 100.0);
  EXPECT_NEAR(static_cast<double>(pts.size()), expected, expected * 0.2);
  for (Vec2 p : pts) EXPECT_TRUE(foi.contains(p));
}

TEST(Foi, LatticeRespectsMarginAndHoles) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 20.0);
  auto pts = foi.lattice_points(5.0, 3.0);
  for (Vec2 p : pts) {
    EXPECT_TRUE(foi.contains(p));
    EXPECT_GE(foi.distance_to_boundary(p), 3.0 - 1e-9);
  }
}

TEST(Foi, SamplePointAlwaysInside) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 30.0);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(foi.contains(foi.sample_point(rng)));
  }
}

TEST(Foi, Translated) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 20.0);
  FieldOfInterest t = foi.translated({1000.0, -50.0});
  EXPECT_NEAR(t.area(), foi.area(), 1e-6);
  Vec2 want = foi.centroid() + Vec2{1000.0, -50.0};
  EXPECT_NEAR(t.centroid().x, want.x, 1e-9);
  EXPECT_NEAR(t.centroid().y, want.y, 1e-9);
  EXPECT_TRUE(t.contains({1010, -40}));
  EXPECT_FALSE(t.contains({10, 10}));
}

TEST(Foi, RejectsHoleOutside) {
  EXPECT_THROW(FieldOfInterest(make_rect({0, 0}, {10, 10}),
                               {make_circle({50, 50}, 2.0)}),
               ContractViolation);
}

TEST(Shapes, BlobIsSimpleAndCcw) {
  Polygon blob = make_blob({0, 0}, 100.0, {{3, 0.2, 0.5}, {5, 0.1, 1.0}});
  EXPECT_GT(blob.signed_area(), 0.0);
  EXPECT_GT(blob.area(), M_PI * 100.0 * 100.0 * 0.5);
}

TEST(Shapes, FlowerHasPetals) {
  Polygon flower = make_flower({0, 0}, 50.0, 5, 0.35);
  // Radius oscillates between 0.65r and 1.35r.
  double rmin = 1e300, rmax = 0.0;
  for (Vec2 p : flower.points()) {
    rmin = std::min(rmin, p.norm());
    rmax = std::max(rmax, p.norm());
  }
  EXPECT_NEAR(rmin, 50.0 * 0.65, 1.0);
  EXPECT_NEAR(rmax, 50.0 * 1.35, 1.0);
}

TEST(Shapes, WithNetAreaHitsTarget) {
  FieldOfInterest foi(make_blob({0, 0}, 120.0, {{2, 0.1, 0.0}}),
                      {make_circle({10, 0}, 30.0, 24)});
  FieldOfInterest scaled = with_net_area(foi, 55555.0);
  EXPECT_NEAR(scaled.area(), 55555.0, 1.0);
  EXPECT_EQ(scaled.holes().size(), 1u);
}

TEST(Shapes, StretchedBlobAspect) {
  Polygon slim = make_stretched_blob({0, 0}, 100.0, 2.0, 0.5, {});
  BBox bb = slim.bbox();
  EXPECT_NEAR(bb.width() / bb.height(), 4.0, 0.2);
}

}  // namespace
}  // namespace anr
