// Property tests: GridIndex vs brute force.
#include <gtest/gtest.h>

#include <algorithm>

#include "geom/grid_index.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(GridIndex, RadiusQueryMatchesBruteForce) {
  auto pts = testutil::random_points(400, 0.0, 100.0, 42);
  GridIndex idx(pts, 10.0);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Vec2 q{rng.uniform(-10.0, 110.0), rng.uniform(-10.0, 110.0)};
    double r = rng.uniform(1.0, 30.0);
    auto got = idx.query_radius(q, r);
    std::sort(got.begin(), got.end());
    std::vector<int> want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (distance(pts[i], q) <= r + 1e-12) want.push_back(static_cast<int>(i));
    }
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(GridIndex, NearestMatchesBruteForce) {
  auto pts = testutil::random_points(300, -50.0, 50.0, 11);
  GridIndex idx(pts, 7.0);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    Vec2 q{rng.uniform(-80.0, 80.0), rng.uniform(-80.0, 80.0)};
    int got = idx.nearest(q);
    int want = 0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (distance2(pts[i], q) < distance2(pts[static_cast<std::size_t>(want)], q)) {
        want = static_cast<int>(i);
      }
    }
    ASSERT_GE(got, 0);
    EXPECT_NEAR(distance(pts[static_cast<std::size_t>(got)], q),
                distance(pts[static_cast<std::size_t>(want)], q), 1e-12)
        << "trial " << trial;
  }
}

TEST(GridIndex, KNearestSortedAndCorrect) {
  auto pts = testutil::random_points(200, 0.0, 10.0, 99);
  GridIndex idx(pts, 1.0);
  Vec2 q{5.0, 5.0};
  auto got = idx.k_nearest(q, 10);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(distance(pts[static_cast<std::size_t>(got[i - 1])], q),
              distance(pts[static_cast<std::size_t>(got[i])], q));
  }
  // The 10th-nearest via brute force matches.
  std::vector<double> dists;
  for (Vec2 p : pts) dists.push_back(distance(p, q));
  std::sort(dists.begin(), dists.end());
  EXPECT_NEAR(distance(pts[static_cast<std::size_t>(got.back())], q), dists[9],
              1e-12);
}

TEST(GridIndex, KNearestClampsToSize) {
  auto pts = testutil::random_points(5, 0.0, 1.0, 1);
  GridIndex idx(pts, 0.5);
  EXPECT_EQ(idx.k_nearest({0.5, 0.5}, 10).size(), 5u);
  EXPECT_TRUE(idx.k_nearest({0.5, 0.5}, 0).empty());
}

TEST(GridIndex, SinglePoint) {
  GridIndex idx({{3.0, 4.0}}, 1.0);
  EXPECT_EQ(idx.nearest({100.0, 100.0}), 0);
  EXPECT_EQ(idx.query_radius({3.0, 4.0}, 0.1).size(), 1u);
}

TEST(GridIndex, FarQueryStillFindsNearest) {
  auto pts = testutil::random_points(50, 0.0, 1.0, 5);
  GridIndex idx(pts, 0.1);
  EXPECT_GE(idx.nearest({1000.0, -500.0}), 0);
}

}  // namespace
}  // namespace anr
