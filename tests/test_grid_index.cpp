// Property tests: GridIndex vs brute force.
#include <gtest/gtest.h>

#include <algorithm>

#include "geom/grid_index.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(GridIndex, RadiusQueryMatchesBruteForce) {
  auto pts = testutil::random_points(400, 0.0, 100.0, 42);
  GridIndex idx(pts, 10.0);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Vec2 q{rng.uniform(-10.0, 110.0), rng.uniform(-10.0, 110.0)};
    double r = rng.uniform(1.0, 30.0);
    auto got = idx.query_radius(q, r);
    std::sort(got.begin(), got.end());
    std::vector<int> want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (distance(pts[i], q) <= r + 1e-12) want.push_back(static_cast<int>(i));
    }
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(GridIndex, NearestMatchesBruteForce) {
  auto pts = testutil::random_points(300, -50.0, 50.0, 11);
  GridIndex idx(pts, 7.0);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    Vec2 q{rng.uniform(-80.0, 80.0), rng.uniform(-80.0, 80.0)};
    int got = idx.nearest(q);
    int want = 0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (distance2(pts[i], q) < distance2(pts[static_cast<std::size_t>(want)], q)) {
        want = static_cast<int>(i);
      }
    }
    ASSERT_GE(got, 0);
    EXPECT_NEAR(distance(pts[static_cast<std::size_t>(got)], q),
                distance(pts[static_cast<std::size_t>(want)], q), 1e-12)
        << "trial " << trial;
  }
}

TEST(GridIndex, KNearestSortedAndCorrect) {
  auto pts = testutil::random_points(200, 0.0, 10.0, 99);
  GridIndex idx(pts, 1.0);
  Vec2 q{5.0, 5.0};
  auto got = idx.k_nearest(q, 10);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(distance(pts[static_cast<std::size_t>(got[i - 1])], q),
              distance(pts[static_cast<std::size_t>(got[i])], q));
  }
  // The 10th-nearest via brute force matches.
  std::vector<double> dists;
  for (Vec2 p : pts) dists.push_back(distance(p, q));
  std::sort(dists.begin(), dists.end());
  EXPECT_NEAR(distance(pts[static_cast<std::size_t>(got.back())], q), dists[9],
              1e-12);
}

TEST(GridIndex, KNearestClampsToSize) {
  auto pts = testutil::random_points(5, 0.0, 1.0, 1);
  GridIndex idx(pts, 0.5);
  EXPECT_EQ(idx.k_nearest({0.5, 0.5}, 10).size(), 5u);
  EXPECT_TRUE(idx.k_nearest({0.5, 0.5}, 0).empty());
}

TEST(GridIndex, SinglePoint) {
  GridIndex idx({{3.0, 4.0}}, 1.0);
  EXPECT_EQ(idx.nearest({100.0, 100.0}), 0);
  EXPECT_EQ(idx.query_radius({3.0, 4.0}, 0.1).size(), 1u);
}

TEST(GridIndex, FarQueryStillFindsNearest) {
  auto pts = testutil::random_points(50, 0.0, 1.0, 5);
  GridIndex idx(pts, 0.1);
  EXPECT_GE(idx.nearest({1000.0, -500.0}), 0);
}

TEST(GridIndex, RadiusBoundaryIsInclusive) {
  // Points exactly at distance r must be reported (<= r semantics), even
  // when they sit on a cell border.
  std::vector<Vec2> pts = {{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}, {3.0, 4.0},
                           {5.0 + 1e-6, 0.0}};
  GridIndex idx(pts, 5.0);
  auto got = idx.query_radius({0.0, 0.0}, 5.0);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(GridIndex, EmptyIndexAndEmptyCells) {
  GridIndex empty;
  EXPECT_EQ(empty.nearest({0.0, 0.0}), -1);
  EXPECT_TRUE(empty.query_radius({0.0, 0.0}, 10.0).empty());
  EXPECT_TRUE(empty.k_nearest({0.0, 0.0}, 3).empty());

  // Sparse data: most cells in the bounding box are empty; queries landing
  // in them must scan cleanly and still find out-of-cell neighbors.
  std::vector<Vec2> pts = {{0.0, 0.0}, {100.0, 100.0}};
  GridIndex idx(pts, 1.0);
  EXPECT_TRUE(idx.query_radius({50.0, 50.0}, 5.0).empty());
  EXPECT_EQ(idx.nearest({49.0, 49.0}), 0);
  EXPECT_EQ(idx.nearest({51.0, 51.0}), 1);
}

TEST(GridIndex, VisitorMatchesVectorOverloads) {
  auto pts = testutil::random_points(300, 0.0, 50.0, 17);
  GridIndex idx(pts, 4.0);
  Rng rng(23);
  std::vector<int> buf;
  for (int trial = 0; trial < 40; ++trial) {
    Vec2 q{rng.uniform(-5.0, 55.0), rng.uniform(-5.0, 55.0)};
    double r = rng.uniform(0.5, 20.0);
    auto vec = idx.query_radius(q, r);
    idx.query_radius_into(q, r, buf);
    std::vector<int> visited;
    idx.visit_radius(q, r, [&](int i) { visited.push_back(i); });
    // Same ids in the same order across all three access paths.
    EXPECT_EQ(vec, visited) << "trial " << trial;
    EXPECT_EQ(vec, buf) << "trial " << trial;
  }
}

TEST(GridIndex, RebuildMatchesFreshIndex) {
  Rng rng(31);
  GridIndex reused;
  for (int round = 0; round < 5; ++round) {
    auto pts = testutil::random_points(200 + 30 * round, -20.0, 20.0,
                                       100 + round);
    double cell = rng.uniform(1.0, 8.0);
    reused.rebuild(pts, cell);
    GridIndex fresh(pts, cell);
    EXPECT_EQ(reused.size(), fresh.size());
    for (int trial = 0; trial < 20; ++trial) {
      Vec2 q{rng.uniform(-25.0, 25.0), rng.uniform(-25.0, 25.0)};
      double r = rng.uniform(1.0, 15.0);
      EXPECT_EQ(reused.query_radius(q, r), fresh.query_radius(q, r));
      EXPECT_EQ(reused.nearest(q), fresh.nearest(q));
    }
  }
}

}  // namespace
}  // namespace anr
