// Distributed protocols vs their centralized oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "foi/foi_mesher.h"
#include "march/repair.h"
#include "mesh/alpha_extract.h"
#include "mesh/boundary.h"
#include "net/protocols/boundary_walk.h"
#include "net/protocols/flood.h"
#include "net/protocols/gossip.h"
#include "net/protocols/relax.h"
#include "net/protocols/subgroup.h"
#include "test_util.h"

namespace anr {
namespace {

TriangleMesh lattice_mesh() {
  auto pts = testutil::lattice_disk({0, 0}, 60.0, 12.0);
  auto ex = alpha_extract(pts, 14.0);
  return ex.mesh;
}

TEST(BoundaryWalk, MatchesCentralizedLoop) {
  TriangleMesh mesh = lattice_mesh();
  auto walk = net::run_boundary_walk(mesh);
  auto loops = boundary_loops(mesh);
  ASSERT_EQ(loops.size(), 1u);
  const auto& loop = loops[0].vertices;

  // Leader is the smallest boundary vertex id.
  VertexId smallest = *std::min_element(loop.begin(), loop.end());
  std::set<VertexId> loop_set(loop.begin(), loop.end());
  std::set<int> hops_seen;
  for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
    if (loop_set.count(static_cast<VertexId>(v))) {
      EXPECT_EQ(walk.loop_leader[v], smallest);
      EXPECT_EQ(walk.loop_size[v], static_cast<int>(loop.size()));
      EXPECT_GE(walk.hop[v], 0);
      EXPECT_LT(walk.hop[v], static_cast<int>(loop.size()));
      hops_seen.insert(walk.hop[v]);
    } else {
      EXPECT_EQ(walk.hop[v], -1);
      EXPECT_EQ(walk.loop_leader[v], -1);
    }
  }
  // Hops form the complete range 0..size-1 (a consistent parametrization).
  EXPECT_EQ(hops_seen.size(), loop.size());
  EXPECT_GT(walk.messages, 0u);
}

TEST(BoundaryWalk, HopNeighborsAreLoopNeighbors) {
  TriangleMesh mesh = lattice_mesh();
  auto walk = net::run_boundary_walk(mesh);
  auto loops = boundary_loops(mesh);
  const auto& loop = loops[0].vertices;
  int size = static_cast<int>(loop.size());
  // Consecutive hops must be adjacent along the boundary.
  std::vector<VertexId> by_hop(static_cast<std::size_t>(size), -1);
  for (VertexId v : loop) {
    by_hop[static_cast<std::size_t>(walk.hop[static_cast<std::size_t>(v)])] = v;
  }
  for (int h = 0; h < size; ++h) {
    VertexId a = by_hop[static_cast<std::size_t>(h)];
    VertexId b = by_hop[static_cast<std::size_t>((h + 1) % size)];
    EXPECT_EQ(mesh.edge_triangle_count(a, b), 1) << "hop " << h;
  }
}

TEST(BoundaryWalk, MultipleLoopsGetSeparateLeaders) {
  FieldOfInterest annulus = testutil::square_with_hole(120.0, 25.0);
  MesherOptions opt;
  opt.target_grid_points = 300;
  FoiMesh fm = mesh_foi(annulus, opt);
  auto walk = net::run_boundary_walk(fm.mesh);
  std::set<int> leaders;
  for (std::size_t v = 0; v < fm.mesh.num_vertices(); ++v) {
    if (walk.loop_leader[v] >= 0) leaders.insert(walk.loop_leader[v]);
  }
  EXPECT_EQ(leaders.size(), 2u);
}

TEST(FloodSum, SumsAndAgrees) {
  auto pts = testutil::lattice_disk({0, 0}, 40.0, 10.0);
  net::Network net(pts, 12.0);
  std::vector<double> vals(pts.size());
  double want = 0.0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<double>(i) * 0.5;
    want += vals[i];
  }
  auto res = net::run_flood_sum(net, vals);
  EXPECT_TRUE(res.agreed);
  EXPECT_NEAR(res.sum, want, 1e-9);
  EXPECT_GT(res.messages, vals.size());
}

TEST(FloodSum, DisconnectedDisagrees) {
  std::vector<Vec2> pos{{0, 0}, {1, 0}, {100, 100}, {101, 100}};
  net::Network net(pos, 2.0);
  auto res = net::run_flood_sum(net, {1.0, 2.0, 4.0, 8.0});
  EXPECT_FALSE(res.agreed);
}

TEST(Gossip, ConvergesToExactMean) {
  auto pts = testutil::lattice_disk({0, 0}, 40.0, 10.0);
  net::Network net(pts, 12.0);
  std::vector<double> vals(pts.size());
  double mean = 0.0;
  Rng rng(3);
  for (double& v : vals) {
    v = rng.uniform(-10.0, 10.0);
    mean += v;
  }
  mean /= static_cast<double>(vals.size());
  auto res = net::run_gossip_mean(net, vals, 400);
  for (double e : res.estimates) {
    EXPECT_NEAR(e, mean, 0.05);
  }
  EXPECT_LT(res.max_relative_error, 0.05);
}

TEST(Gossip, PerRoundCostFarBelowFlood) {
  // Flooding is O(n*E) total; gossip is O(E) per round. A single gossip
  // round costs a small fraction of one flood — the trade is rounds (time)
  // for messages.
  auto pts = testutil::lattice_disk({0, 0}, 40.0, 10.0);
  std::vector<double> vals(pts.size(), 1.0);
  net::Network gnet(pts, 12.0);
  auto one_round = net::run_gossip_mean(gnet, vals, 1);
  net::Network fnet(pts, 12.0);
  auto flood = net::run_flood_sum(fnet, vals);
  EXPECT_LT(one_round.messages, flood.messages / 10);
  // And the estimate improves geometrically with rounds.
  std::vector<double> smooth(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) smooth[i] = pts[i].x / 40.0;
  net::Network gnet2(pts, 12.0);
  auto r10 = net::run_gossip_mean(gnet2, smooth, 10);
  net::Network gnet3(pts, 12.0);
  auto r80 = net::run_gossip_mean(gnet3, smooth, 80);
  EXPECT_LT(r80.max_relative_error, r10.max_relative_error / 2.0);
}

TEST(Gossip, SumsArePreservedEachRound) {
  // Metropolis weights are doubly stochastic: the total (hence mean) is
  // invariant round to round.
  auto pts = testutil::lattice_disk({0, 0}, 30.0, 10.0);
  std::vector<double> vals(pts.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<double>(i);
  double total = 0.0;
  for (double v : vals) total += v;
  net::Network net(pts, 12.0);
  auto res = net::run_gossip_mean(net, vals, 7);
  double after = 0.0;
  for (double e : res.estimates) after += e;
  EXPECT_NEAR(after, total, 1e-9);
}

TEST(Relax, MatchesFixedPointOfAveraging) {
  TriangleMesh mesh = lattice_mesh();
  auto loops = boundary_loops(mesh);
  const auto& loop = loops[0].vertices;
  std::vector<Vec2> init(mesh.num_vertices(), Vec2{0, 0});
  std::vector<char> fixed(mesh.num_vertices(), 0);
  for (std::size_t i = 0; i < loop.size(); ++i) {
    double a = 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(loop.size());
    init[static_cast<std::size_t>(loop[i])] = {std::cos(a), std::sin(a)};
    fixed[static_cast<std::size_t>(loop[i])] = 1;
  }
  auto res = net::run_distributed_relax(mesh, init, fixed, 1e-10);
  EXPECT_TRUE(res.converged);
  // At the fixed point every free vertex equals its neighbor average.
  for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
    if (fixed[v]) {
      EXPECT_EQ(res.positions[v], init[v]);
      continue;
    }
    Vec2 avg{};
    const auto& nb = mesh.neighbors(static_cast<VertexId>(v));
    for (VertexId u : nb) avg += res.positions[static_cast<std::size_t>(u)];
    avg = avg / static_cast<double>(nb.size());
    EXPECT_NEAR(res.positions[v].x, avg.x, 1e-6);
    EXPECT_NEAR(res.positions[v].y, avg.y, 1e-6);
  }
}

TEST(Subgroup, MatchesCentralizedRepairClassification) {
  // Build a mesh, mark boundary, and break all links to a far "peninsula"
  // by pretending its destinations moved away.
  TriangleMesh mesh = lattice_mesh();
  const std::size_t n = mesh.num_vertices();
  std::vector<char> is_boundary(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (mesh.is_boundary_vertex(static_cast<VertexId>(v))) is_boundary[v] = 1;
  }
  // Survival: links incident to an "unlucky" interior set break.
  std::set<VertexId> unlucky;
  for (std::size_t v = 0; v < n; ++v) {
    if (!is_boundary[v] && mesh.position(static_cast<VertexId>(v)).norm() < 20.0) {
      unlucky.insert(static_cast<VertexId>(v));
    }
  }
  ASSERT_FALSE(unlucky.empty());
  auto survives = [&](VertexId a, VertexId b) {
    return !unlucky.count(a) && !unlucky.count(b);
  };
  auto res = net::run_subgroup_detection(mesh, is_boundary, survives);

  for (std::size_t v = 0; v < n; ++v) {
    if (unlucky.count(static_cast<VertexId>(v))) {
      EXPECT_FALSE(res.reached[v]) << v;
      EXPECT_GE(res.subgroup_root[v], 0);
      EXPECT_GE(res.reference[v], 0);
      // Reference must be a reached mesh neighbor of the root.
      EXPECT_TRUE(res.reached[static_cast<std::size_t>(res.reference[v])]);
    } else {
      EXPECT_TRUE(res.reached[v]) << v;
      EXPECT_GE(res.boundary_hops[v], 0);
    }
  }
  // All members of one connected unlucky blob share one root.
  std::set<int> roots;
  for (VertexId v : unlucky) roots.insert(res.subgroup_root[static_cast<std::size_t>(v)]);
  EXPECT_EQ(roots.size(), 1u);
}

// Asynchrony: the token and flooding protocols must produce identical
// results under arbitrary (seeded) per-message delays.
class AsyncProtocols : public ::testing::TestWithParam<int> {};

TEST_P(AsyncProtocols, BoundaryWalkDelayInvariant) {
  TriangleMesh mesh = lattice_mesh();
  auto sync = net::run_boundary_walk(mesh);
  auto async = net::run_boundary_walk(mesh, /*max_delay=*/4,
                                      static_cast<std::uint64_t>(GetParam()));
  EXPECT_EQ(sync.hop, async.hop);
  EXPECT_EQ(sync.loop_size, async.loop_size);
  EXPECT_EQ(sync.loop_leader, async.loop_leader);
  EXPECT_GE(async.rounds, sync.rounds);  // delays cost time, not correctness
}

TEST_P(AsyncProtocols, FloodSumDelayInvariant) {
  auto pts = testutil::lattice_disk({0, 0}, 40.0, 10.0);
  std::vector<double> vals(pts.size());
  double want = 0.0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<double>(i);
    want += vals[i];
  }
  net::Network net(pts, 12.0);
  net.set_link_delays(5, static_cast<std::uint64_t>(GetParam()));
  auto res = net::run_flood_sum(net, vals);
  EXPECT_TRUE(res.agreed);
  EXPECT_NEAR(res.sum, want, 1e-9);
}

TEST_P(AsyncProtocols, SubgroupDelayInvariant) {
  TriangleMesh mesh = lattice_mesh();
  const std::size_t n = mesh.num_vertices();
  std::vector<char> is_boundary(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (mesh.is_boundary_vertex(static_cast<VertexId>(v))) is_boundary[v] = 1;
  }
  std::set<VertexId> unlucky;
  for (std::size_t v = 0; v < n; ++v) {
    if (!is_boundary[v] && mesh.position(static_cast<VertexId>(v)).norm() < 20.0) {
      unlucky.insert(static_cast<VertexId>(v));
    }
  }
  auto survives = [&](VertexId a, VertexId b) {
    return !unlucky.count(a) && !unlucky.count(b);
  };
  auto sync = net::run_subgroup_detection(mesh, is_boundary, survives);
  auto async = net::run_subgroup_detection(mesh, is_boundary, survives, 4,
                                           static_cast<std::uint64_t>(GetParam()));
  EXPECT_EQ(sync.reached, async.reached);
  EXPECT_EQ(sync.boundary_hops, async.boundary_hops);
  EXPECT_EQ(sync.subgroup_root, async.subgroup_root);
  EXPECT_EQ(sync.reference, async.reference);
}

INSTANTIATE_TEST_SUITE_P(DelaySeeds, AsyncProtocols,
                         ::testing::Values(1, 2, 3, 4, 5));

// The hostile-channel tier: delay > 1 AND message loss, with the
// protocols running over the ack/retransmit layer. Same answers.
class LossyProtocols : public ::testing::TestWithParam<int> {};

TEST_P(LossyProtocols, FloodSumSurvivesLossWithRetransmission) {
  auto pts = testutil::lattice_disk({0, 0}, 40.0, 10.0);
  std::vector<double> vals(pts.size());
  double want = 0.0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<double>(i);
    want += vals[i];
  }
  net::Network net(pts, 12.0);
  net.set_link_delays(3, static_cast<std::uint64_t>(GetParam()));
  net.set_message_loss(0.15, static_cast<std::uint64_t>(100 + GetParam()));
  // Budget the retries for the channel: with delay 3 the ack round trip
  // is ~6 rounds, so a 2-round retry interval burns ~3 attempts per
  // successful exchange before the ack can possibly land.
  net::ReliabilityOptions rel;
  rel.retry_interval = 2;
  rel.max_retries = 32;
  net.set_reliability(rel);
  net.set_reliable_default(true);
  auto res = net::run_flood_sum(net, vals);
  EXPECT_TRUE(res.agreed);
  EXPECT_NEAR(res.sum, want, 1e-9);
  EXPECT_GT(net.retransmissions(), 0u);
  EXPECT_EQ(net.messages_expired(), 0u);
}

TEST_P(LossyProtocols, GossipLockstepIsByteIdenticalUnderLoss) {
  auto pts = testutil::lattice_disk({0, 0}, 40.0, 10.0);
  std::vector<double> vals(pts.size());
  Rng rng(3);
  for (double& v : vals) v = rng.uniform(-10.0, 10.0);

  net::Network clean(pts, 12.0);
  auto sync = net::run_gossip_mean(clean, vals, 60);

  net::Network hostile(pts, 12.0);
  hostile.set_link_delays(3, static_cast<std::uint64_t>(GetParam()));
  hostile.set_message_loss(0.15, static_cast<std::uint64_t>(200 + GetParam()));
  hostile.set_reliable_default(true);
  auto lossy = net::run_gossip_mean(hostile, vals, 60);

  // Round-tagged lockstep: the estimates equal the synchronous
  // schedule's bit for bit — loss costs retransmissions and rounds,
  // never accuracy.
  ASSERT_EQ(lossy.estimates.size(), sync.estimates.size());
  for (std::size_t i = 0; i < sync.estimates.size(); ++i) {
    EXPECT_EQ(lossy.estimates[i], sync.estimates[i]) << "node " << i;
  }
  EXPECT_GT(hostile.retransmissions(), 0u);
  EXPECT_GE(lossy.rounds, sync.rounds);
}

TEST_P(LossyProtocols, SubgroupSurvivesLossWithRetransmission) {
  TriangleMesh mesh = lattice_mesh();
  const std::size_t n = mesh.num_vertices();
  std::vector<char> is_boundary(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (mesh.is_boundary_vertex(static_cast<VertexId>(v))) is_boundary[v] = 1;
  }
  std::set<VertexId> unlucky;
  for (std::size_t v = 0; v < n; ++v) {
    if (!is_boundary[v] && mesh.position(static_cast<VertexId>(v)).norm() < 20.0) {
      unlucky.insert(static_cast<VertexId>(v));
    }
  }
  auto survives = [&](VertexId a, VertexId b) {
    return !unlucky.count(a) && !unlucky.count(b);
  };
  auto sync = net::run_subgroup_detection(mesh, is_boundary, survives);
  auto lossy = net::run_subgroup_detection(
      mesh, is_boundary, survives, /*max_delay=*/3,
      /*delay_seed=*/static_cast<std::uint64_t>(GetParam()),
      /*loss_rate=*/0.15,
      /*loss_seed=*/static_cast<std::uint64_t>(300 + GetParam()));
  EXPECT_EQ(sync.reached, lossy.reached);
  EXPECT_EQ(sync.boundary_hops, lossy.boundary_hops);
  EXPECT_EQ(sync.subgroup_root, lossy.subgroup_root);
  EXPECT_EQ(sync.reference, lossy.reference);
}

INSTANTIATE_TEST_SUITE_P(LossSeeds, LossyProtocols, ::testing::Values(1, 2, 3));

TEST(Subgroup, AllReachedWhenNothingBreaks) {
  TriangleMesh mesh = lattice_mesh();
  std::vector<char> is_boundary(mesh.num_vertices(), 0);
  for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
    if (mesh.is_boundary_vertex(static_cast<VertexId>(v))) is_boundary[v] = 1;
  }
  auto res = net::run_subgroup_detection(mesh, is_boundary,
                                         [](VertexId, VertexId) { return true; });
  for (std::size_t v = 0; v < mesh.num_vertices(); ++v) {
    EXPECT_TRUE(res.reached[v]);
    EXPECT_EQ(res.subgroup_root[v], -1);
  }
}

}  // namespace
}  // namespace anr
