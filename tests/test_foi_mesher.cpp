// FoI mesher: the gridded triangulation must approximate the region and be
// harmonic-map ready (manifold, right loop count, all vertices referenced).
#include <gtest/gtest.h>

#include "foi/foi_mesher.h"
#include "foi/scenario.h"
#include "mesh/boundary.h"
#include "mesh/mesh_quality.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(FoiMesher, SquareCoversArea) {
  FieldOfInterest sq = testutil::square_foi(100.0);
  MesherOptions opt;
  opt.target_grid_points = 600;
  FoiMesh fm = mesh_foi(sq, opt);
  MeshStats s = mesh_stats(fm.mesh);
  EXPECT_NEAR(s.total_area, sq.area(), sq.area() * 0.02);
  EXPECT_TRUE(fm.mesh.vertex_manifold());
  EXPECT_TRUE(fm.mesh.all_ccw());
  EXPECT_EQ(s.boundary_loops, 1u);
}

TEST(FoiMesher, AllVerticesReferenced) {
  FieldOfInterest sq = testutil::square_foi(100.0);
  FoiMesh fm = mesh_foi(sq);
  for (std::size_t v = 0; v < fm.mesh.num_vertices(); ++v) {
    EXPECT_FALSE(fm.mesh.vertex_triangles(static_cast<VertexId>(v)).empty());
  }
  EXPECT_EQ(fm.on_boundary.size(), fm.mesh.num_vertices());
}

TEST(FoiMesher, HoleProducesSecondLoop) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 25.0);
  MesherOptions opt;
  opt.target_grid_points = 800;
  FoiMesh fm = mesh_foi(foi, opt);
  EXPECT_EQ(boundary_loops(fm.mesh).size(), 2u);
  MeshStats s = mesh_stats(fm.mesh);
  EXPECT_NEAR(s.total_area, foi.area(), foi.area() * 0.03);
  // No mesh vertex may sit strictly inside the hole.
  for (std::size_t v = 0; v < fm.mesh.num_vertices(); ++v) {
    EXPECT_TRUE(foi.contains(fm.mesh.position(static_cast<VertexId>(v))))
        << "vertex " << v;
  }
}

TEST(FoiMesher, TargetPointCountRoughlyHonored) {
  FieldOfInterest sq = testutil::square_foi(200.0);
  for (int target : {300, 1000, 3000}) {
    MesherOptions opt;
    opt.target_grid_points = target;
    FoiMesh fm = mesh_foi(sq, opt);
    EXPECT_NEAR(static_cast<double>(fm.mesh.num_vertices()),
                static_cast<double>(target), target * 0.5)
        << "target " << target;
  }
}

TEST(FoiMesher, VertexIndexFindsNearest) {
  FieldOfInterest sq = testutil::square_foi(100.0);
  FoiMesh fm = mesh_foi(sq);
  ASSERT_TRUE(fm.vertex_index != nullptr);
  int idx = fm.vertex_index->nearest({50.0, 50.0});
  ASSERT_GE(idx, 0);
  EXPECT_LT(distance(fm.mesh.position(idx), Vec2(50.0, 50.0)),
            2.0 * fm.spacing);
}

// Every paper scenario FoI must mesh cleanly — this is the gate the whole
// pipeline depends on.
class ScenarioMesher : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioMesher, M2MeshesClean) {
  Scenario sc = scenario(GetParam());
  MesherOptions opt;
  opt.target_grid_points = 900;
  FoiMesh fm = mesh_foi(sc.m2_shape, opt);
  EXPECT_TRUE(fm.mesh.vertex_manifold());
  EXPECT_EQ(boundary_loops(fm.mesh).size(), sc.m2_shape.holes().size() + 1);
  MeshStats s = mesh_stats(fm.mesh);
  EXPECT_NEAR(s.total_area, sc.m2_shape.area(), sc.m2_shape.area() * 0.05);
  EXPECT_GT(s.min_angle_deg, 5.0);  // no degenerate slivers
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioMesher,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace anr
