// Triangulation-extraction strategies: alpha (centralized reference),
// localized Delaunay (distributed), Gabriel (1-hop ablation).
#include <gtest/gtest.h>

#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/triangulation_extract.h"
#include "mesh/boundary.h"

namespace anr {
namespace {

struct Deployment {
  Scenario sc = scenario(1);
  std::vector<Vec2> pos;
  Deployment() {
    pos = optimal_coverage_positions(sc.m1, sc.num_robots, 1, uniform_density())
              .positions;
  }
};

TEST(Extraction, DistributedMatchesCentralizedOnLatticeLikeDeployment) {
  Deployment d;
  auto central = extract_triangulation(d.pos, d.sc.comm_range);
  auto dist = extract_triangulation_distributed(d.pos, d.sc.comm_range);
  // On dense CVT deployments localized Delaunay converges to the global
  // one: identical triangle counts and edge sets.
  EXPECT_EQ(central.mesh.num_triangles(), dist.mesh.num_triangles());
  auto ce = central.mesh.edges();
  auto de = dist.mesh.edges();
  EXPECT_EQ(ce.size(), de.size());
  EXPECT_TRUE(std::equal(ce.begin(), ce.end(), de.begin()));
  EXPECT_GT(dist.messages, 0u);
  EXPECT_EQ(central.messages, 0u);
}

TEST(Extraction, AllVariantsManifold) {
  Deployment d;
  for (auto* fn : {&extract_triangulation, &extract_triangulation_distributed,
                   &extract_triangulation_gabriel}) {
    auto r = (*fn)(d.pos, d.sc.comm_range);
    EXPECT_TRUE(r.mesh.vertex_manifold());
    EXPECT_TRUE(r.mesh.all_ccw());
    // Delaunay-based variants triangulate the region fully (one loop);
    // Gabriel may leave interior quad gaps — extra loops are tolerated
    // because the pipeline's hole filling absorbs them.
    EXPECT_GE(boundary_loops(r.mesh).size(), 1u);
  }
  EXPECT_EQ(
      boundary_loops(extract_triangulation(d.pos, d.sc.comm_range).mesh).size(),
      1u);
}

TEST(Extraction, GabrielIsSubsetOfDelaunay) {
  Deployment d;
  auto alpha = extract_triangulation(d.pos, d.sc.comm_range);
  auto gabriel = extract_triangulation_gabriel(d.pos, d.sc.comm_range);
  // Gabriel graph is a subgraph of Delaunay; after cleanup the Gabriel
  // triangulation cannot have more triangles.
  EXPECT_LE(gabriel.mesh.num_triangles(), alpha.mesh.num_triangles());
  EXPECT_GT(gabriel.mesh.num_triangles(), 0u);
}

TEST(Extraction, EdgesRespectRange) {
  Deployment d;
  for (auto* fn : {&extract_triangulation_distributed,
                   &extract_triangulation_gabriel}) {
    auto r = (*fn)(d.pos, d.sc.comm_range);
    for (const EdgeKey& e : r.mesh.edges()) {
      EXPECT_LE(distance(r.mesh.position(e.a), r.mesh.position(e.b)),
                d.sc.comm_range + 1e-9);
    }
  }
}

}  // namespace
}  // namespace anr
