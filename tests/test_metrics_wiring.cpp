// End-to-end metric wiring: a planned march, a served batch, and a fault
// drill must leave exactly the expected deltas in an attached Registry —
// and must leave the deterministic artifacts (plans, execution event
// logs) byte-identical to an uninstrumented run.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "coverage/lloyd.h"
#include "fault/fault_schedule.h"
#include "foi/scenario.h"
#include "io/event_io.h"
#include "io/metrics_io.h"
#include "io/plan_io.h"
#include "march/execution_engine.h"
#include "march/planner.h"
#include "obs/metrics.h"
#include "runtime/mission_service.h"

namespace anr {
namespace {

using runtime::JobResult;
using runtime::JobStatus;
using runtime::MissionService;
using runtime::PlanJob;
using runtime::ServiceOptions;

PlannerOptions fast_options() {
  PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  return opt;
}

struct Fixture {
  Scenario sc = scenario(1);
  std::vector<Vec2> deploy =
      optimal_coverage_positions(sc.m1, 72, /*seed=*/1, uniform_density())
          .positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  FieldOfInterest m2_world = sc.m2_shape.translated(offset);
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

PlanJob make_job(const Fixture& f, const std::string& id) {
  PlanJob j;
  j.id = id;
  j.m1 = f.sc.m1;
  j.m2_shape = f.sc.m2_shape;
  j.r_c = f.sc.comm_range;
  j.m2_offset = f.offset;
  j.positions = f.deploy;
  j.options = fast_options();
  return j;
}

// --- planner stage spans + counters -----------------------------------------

TEST(MetricsWiring, PlannerEmitsStageSpansAndCounters) {
  const Fixture& f = fixture();
  obs::Registry reg;
  MarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                       fast_options());
  planner.set_observer(&reg);
  MarchPlan plan = planner.plan(f.deploy, f.offset);
  ASSERT_EQ(plan.trajectories.size(), f.deploy.size());

  EXPECT_EQ(reg.counter("anr_plans_total")->value(), 1u);
  EXPECT_GT(reg.counter("anr_rotation_probes_total")->value(), 0u);
  EXPECT_EQ(reg.histogram("anr_plan_seconds")->count(), 1u);
  EXPECT_GT(reg.histogram("anr_plan_seconds")->sum(), 0.0);

  const char* stages[] = {"extraction", "harmonic_map", "rotation_search",
                          "interpolation", "adjustment"};
  for (const char* stage : stages) {
    obs::Histogram* h =
        reg.histogram("anr_plan_stage_seconds", {{"stage", stage}});
    EXPECT_EQ(h->count(), 1u) << stage;
  }

  // The span ring carries one outer "plan" span and one per stage, with
  // the stages nested one level below it.
  std::set<std::string> names;
  bool saw_outer = false;
  for (const obs::SpanRecord& r : reg.span_snapshot()) {
    names.insert(r.name);
    if (std::string(r.name) == "plan") {
      saw_outer = true;
      EXPECT_EQ(r.depth, 0);
    } else {
      EXPECT_EQ(r.depth, 1) << r.name;
    }
  }
  EXPECT_TRUE(saw_outer);
  for (const char* stage : stages) {
    EXPECT_TRUE(names.count(stage)) << stage;
  }
}

TEST(MetricsWiring, PlanIsByteIdenticalWithInstrumentation) {
  const Fixture& f = fixture();
  MarchPlanner bare(f.sc.m1, f.sc.m2_shape, f.sc.comm_range, fast_options());
  MarchPlan plain = bare.plan(f.deploy, f.offset);

  obs::Registry reg;
  MarchPlanner instrumented(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                            fast_options());
  instrumented.set_observer(&reg);
  MarchPlan observed = instrumented.plan(f.deploy, f.offset);

  EXPECT_EQ(plan_to_json(plain).dump(), plan_to_json(observed).dump());
  EXPECT_GT(reg.counter("anr_plans_total")->value(), 0u);
}

// --- service: cache hit on repeat submit, typed-status counters -------------

TEST(MetricsWiring, ServiceCountsCacheHitOnRepeatSubmit) {
  const Fixture& f = fixture();
  obs::Registry reg;
  ServiceOptions opt;
  opt.threads = 2;
  opt.registry = &reg;
  MissionService service(opt);

  JobResult first = service.submit(make_job(f, "first")).get();
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);
  JobResult second = service.submit(make_job(f, "second")).get();
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cache_hit);

  EXPECT_EQ(reg.counter("anr_jobs_submitted_total")->value(), 2u);
  EXPECT_EQ(reg.counter("anr_jobs_total", {{"status", "ok"}})->value(), 2u);
  EXPECT_EQ(reg.counter("anr_cache_misses_total")->value(), 1u);
  EXPECT_EQ(reg.counter("anr_cache_hits_total")->value(), 1u);
  EXPECT_EQ(reg.counter("anr_cache_coalesced_total")->value(), 0u);
  EXPECT_EQ(reg.counter("anr_cache_constructions_total")->value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("anr_cache_entries")->value(), 1.0);
  EXPECT_EQ(reg.histogram("anr_job_e2e_seconds")->count(), 2u);
  EXPECT_EQ(reg.histogram("anr_job_queue_seconds")->count(), 2u);
  EXPECT_EQ(reg.histogram("anr_planner_build_seconds")->count(), 1u);
  // The cached planner was attached to the same registry by the build
  // lambda, so planner-side families advanced too.
  EXPECT_EQ(reg.counter("anr_plans_total")->value(), 2u);

  // A rejected job lands in its own status series, not in "ok".
  PlanJob bad = make_job(f, "bad");
  bad.positions.clear();
  JobResult rejected = service.submit(std::move(bad)).get();
  EXPECT_EQ(rejected.status, JobStatus::kRejectedInvalid);
  EXPECT_EQ(
      reg.counter("anr_jobs_total", {{"status", "rejected_invalid"}})->value(),
      1u);
  EXPECT_EQ(reg.counter("anr_jobs_total", {{"status", "ok"}})->value(), 2u);

  service.shutdown();
  EXPECT_DOUBLE_EQ(reg.gauge("anr_service_queue_depth")->value(), 0.0);
}

// --- execution: fault drill deltas + event-log byte identity ----------------

fault::FaultSchedule two_crash_schedule(double total_time) {
  fault::FaultSchedule schedule;
  fault::FaultEvent a;
  a.kind = fault::FaultKind::kCrash;
  a.robot = 3;
  a.t_start = 0.2 * total_time;
  schedule.add(a);
  fault::FaultEvent b;
  b.kind = fault::FaultKind::kCrash;
  b.robot = 11;
  b.t_start = 0.35 * total_time;
  schedule.add(b);
  schedule.normalize();
  return schedule;
}

TEST(MetricsWiring, ExecutionCrashCountMatchesSchedule) {
  const Fixture& f = fixture();
  MarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                       fast_options());
  MarchPlan plan = planner.plan(f.deploy, f.offset);
  fault::FaultSchedule schedule = two_crash_schedule(plan.total_time);

  obs::Registry reg;
  ExecutionOptions eopt;
  eopt.registry = &reg;
  ExecutionEngine engine(f.sc.comm_range, eopt);
  ExecutionReport rep = engine.run(plan, schedule, f.m2_world);

  EXPECT_EQ(rep.crashed.size(), 2u);
  EXPECT_EQ(reg.counter("anr_exec_runs_total")->value(), 1u);
  EXPECT_GT(reg.counter("anr_exec_ticks_total")->value(), 0u);
  EXPECT_EQ(reg.counter("anr_exec_crashes_total")->value(), 2u);
  EXPECT_EQ(reg.counter("anr_exec_recoveries_total")->value(),
            static_cast<std::uint64_t>(rep.recoveries));
  EXPECT_EQ(reg.counter("anr_exec_pauses_total")->value(),
            static_cast<std::uint64_t>(rep.pauses));
  EXPECT_EQ(reg.counter("anr_exec_retries_total")->value(),
            static_cast<std::uint64_t>(rep.retries));
  EXPECT_EQ(reg.counter("anr_exec_degraded_runs_total")->value(),
            rep.degraded ? 1u : 0u);

  // A second run on the same engine accumulates.
  engine.run(plan, schedule, f.m2_world);
  EXPECT_EQ(reg.counter("anr_exec_runs_total")->value(), 2u);
  EXPECT_EQ(reg.counter("anr_exec_crashes_total")->value(), 4u);
}

TEST(MetricsWiring, ExecutionEventLogByteIdenticalWithInstrumentation) {
  const Fixture& f = fixture();
  MarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                       fast_options());
  MarchPlan plan = planner.plan(f.deploy, f.offset);
  fault::FaultSchedule schedule = two_crash_schedule(plan.total_time);

  ExecutionEngine bare(f.sc.comm_range);
  ExecutionReport plain = bare.run(plan, schedule, f.m2_world);

  obs::Registry reg;
  ExecutionOptions eopt;
  eopt.registry = &reg;
  ExecutionEngine instrumented(f.sc.comm_range, eopt);
  ExecutionReport observed = instrumented.run(plan, schedule, f.m2_world);

  EXPECT_EQ(events_to_json(plain.events).dump(),
            events_to_json(observed.events).dump());
  EXPECT_EQ(plain.survivors, observed.survivors);
  EXPECT_DOUBLE_EQ(plain.executed_distance, observed.executed_distance);
}

// --- exposition over a real run ---------------------------------------------

TEST(MetricsWiring, ExpositionCarriesAllWiredFamilies) {
  const Fixture& f = fixture();
  obs::Registry reg;
  ServiceOptions opt;
  opt.threads = 2;
  opt.registry = &reg;
  MissionService service(opt);
  ASSERT_TRUE(service.submit(make_job(f, "only")).get().ok);
  service.shutdown();

  std::string text = metrics_text_exposition(reg);
  for (const char* family :
       {"anr_jobs_submitted_total", "anr_jobs_total", "anr_cache_hits_total",
        "anr_cache_misses_total", "anr_cache_entries", "anr_job_e2e_seconds",
        "anr_plan_stage_seconds", "anr_plans_total", "anr_plan_seconds"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
}

}  // namespace
}  // namespace anr
