// Baselines: Hungarian marching is the distance lower bound; direct
// translation's rigid phase preserves links.
#include <gtest/gtest.h>

#include "baselines/direct_translation.h"
#include "baselines/hungarian_march.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/transition_sim.h"

namespace anr {
namespace {

struct Fixture {
  Scenario sc = scenario(1);
  std::vector<Vec2> deploy;
  Vec2 offset;

  Fixture() {
    deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                        uniform_density())
                 .positions;
    offset = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  }
};

TEST(HungarianMarch, ReachesCoveragePositions) {
  Fixture f;
  HungarianMarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                f.sc.num_robots);
  MarchPlan plan = planner.plan(f.deploy, f.offset);
  ASSERT_EQ(plan.final_positions.size(), f.deploy.size());
  FieldOfInterest m2 = f.sc.m2_shape.translated(f.offset);
  for (Vec2 p : plan.final_positions) {
    EXPECT_TRUE(m2.contains(p));
  }
}

TEST(HungarianMarch, IsDistanceLowerBoundAmongAssignments) {
  Fixture f;
  HungarianMarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                f.sc.num_robots);
  MarchPlan plan = planner.plan(f.deploy, f.offset);
  // Identity assignment to the same goal set can only be worse.
  double hungarian = 0.0, identity = 0.0;
  for (std::size_t i = 0; i < f.deploy.size(); ++i) {
    hungarian += distance(f.deploy[i], plan.final_positions[i]);
    identity += distance(f.deploy[i], planner.coverage_positions()[i] + f.offset);
  }
  EXPECT_LE(hungarian, identity + 1e-6);
}

TEST(HungarianMarch, LowStableLinkRatio) {
  // The paper's point: min-distance scrambling destroys local links.
  Fixture f;
  HungarianMarchPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                f.sc.num_robots);
  MarchPlan plan = planner.plan(f.deploy, f.offset);
  auto m = simulate_transition(plan.trajectories, f.sc.comm_range,
                               plan.transition_end, 80);
  EXPECT_LT(m.stable_link_ratio, 0.5);
}

TEST(DirectTranslation, RigidPhaseKeepsAllLinks) {
  Fixture f;
  DirectTranslationPlanner planner(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                   f.sc.num_robots);
  MarchPlan plan = planner.plan(f.deploy, f.offset);
  // During the rigid phase [0, 1] every pairwise distance is constant.
  for (std::size_t i = 0; i < plan.trajectories.size(); ++i) {
    Vec2 p0 = plan.trajectories[i].position(0.0);
    Vec2 p_half = plan.trajectories[i].position(0.5);
    EXPECT_NEAR(distance(p0, p_half),
                distance(Vec2{}, (p_half - p0)), 1e-9);
  }
  // Pairwise distance invariance for a few pairs.
  for (std::size_t i = 0; i + 1 < plan.trajectories.size(); i += 20) {
    double d0 = distance(plan.trajectories[i].position(0.0),
                         plan.trajectories[i + 1].position(0.0));
    double dh = distance(plan.trajectories[i].position(0.7),
                         plan.trajectories[i + 1].position(0.7));
    EXPECT_NEAR(d0, dh, 1e-6);
  }
}

TEST(DirectTranslation, BeatsHungarianOnLinkRatio) {
  Fixture f;
  DirectTranslationPlanner direct(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                  f.sc.num_robots);
  HungarianMarchPlanner hungarian(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                  f.sc.num_robots);
  auto md = simulate_transition(direct.plan(f.deploy, f.offset).trajectories,
                                f.sc.comm_range, 1.0, 80);
  auto mh = simulate_transition(hungarian.plan(f.deploy, f.offset).trajectories,
                                f.sc.comm_range, 1.0, 80);
  EXPECT_GT(md.stable_link_ratio, mh.stable_link_ratio);
}

TEST(DirectTranslation, CostsMoreDistanceThanHungarian) {
  Fixture f;
  DirectTranslationPlanner direct(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                  f.sc.num_robots);
  HungarianMarchPlanner hungarian(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                                  f.sc.num_robots);
  auto md = simulate_transition(direct.plan(f.deploy, f.offset).trajectories,
                                f.sc.comm_range, 1.0, 40);
  auto mh = simulate_transition(hungarian.plan(f.deploy, f.offset).trajectories,
                                f.sc.comm_range, 1.0, 40);
  EXPECT_GE(md.total_distance, mh.total_distance - 1e-6);
}

TEST(Baselines, SameCoverageSeedSameGoals) {
  Fixture f;
  HungarianMarchPlanner a(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                          f.sc.num_robots);
  DirectTranslationPlanner b(f.sc.m1, f.sc.m2_shape, f.sc.comm_range,
                             f.sc.num_robots);
  ASSERT_EQ(a.coverage_positions().size(), b.coverage_positions().size());
  for (std::size_t i = 0; i < a.coverage_positions().size(); ++i) {
    EXPECT_EQ(a.coverage_positions()[i], b.coverage_positions()[i]);
  }
}

}  // namespace
}  // namespace anr
