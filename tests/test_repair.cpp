// Global-connectivity repair: isolated robots and subgroups march parallel
// to a reference and end up attached to the main body.
#include <gtest/gtest.h>

#include "march/metrics.h"
#include "march/repair.h"
#include "net/connectivity.h"
#include "net/unit_disk_graph.h"
#include "test_util.h"

namespace anr {
namespace {

// A 5x5 grid of robots with spacing 10, r_c = 15.
struct Grid {
  std::vector<Vec2> start;
  std::vector<std::vector<int>> adj;
  std::vector<char> boundary;
  double r_c = 15.0;

  Grid() {
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        start.push_back({x * 10.0, y * 10.0});
      }
    }
    adj = net::unit_disk_adjacency(start, r_c);
    boundary.assign(start.size(), 0);
    for (std::size_t i = 0; i < start.size(); ++i) {
      int x = static_cast<int>(i) % 5, y = static_cast<int>(i) / 5;
      if (x == 0 || x == 4 || y == 0 || y == 4) boundary[i] = 1;
    }
  }
};

TEST(Repair, NoOpWhenAllSurvive) {
  Grid g;
  std::vector<Vec2> targets = g.start;
  for (Vec2& t : targets) t += Vec2{500.0, 0.0};  // rigid translation
  auto rep = repair_targets(g.start, targets, g.adj, g.boundary, g.r_c);
  EXPECT_EQ(rep.repaired, 0);
  EXPECT_EQ(rep.subgroups, 0);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(targets[i], g.start[i] + Vec2(500.0, 0.0));
  }
}

TEST(Repair, SingletonIsolationFixed) {
  Grid g;
  std::vector<Vec2> targets = g.start;
  // Center robot (index 12) thrown far away: all its links break.
  targets[12] = {1000.0, 1000.0};
  auto rep = repair_targets(g.start, targets, g.adj, g.boundary, g.r_c);
  EXPECT_EQ(rep.subgroups, 1);
  EXPECT_EQ(rep.repaired, 1);
  EXPECT_TRUE(rep.was_repaired[12]);
  // Repaired target = parallel march with some reached neighbor: since all
  // others stay put, robot 12 stays put too.
  EXPECT_EQ(targets[12], g.start[12]);
}

TEST(Repair, SubgroupMarchesParallel) {
  Grid g;
  // Everyone translates by +500x except a 2x2 interior block thrown away
  // as a group (its internal links survive, external break).
  std::vector<Vec2> targets;
  std::vector<int> block{6, 7, 11, 12};
  for (std::size_t i = 0; i < g.start.size(); ++i) {
    bool in_block =
        std::find(block.begin(), block.end(), static_cast<int>(i)) != block.end();
    targets.push_back(g.start[i] +
                      (in_block ? Vec2{500.0, 300.0} : Vec2{500.0, 0.0}));
  }
  auto rep = repair_targets(g.start, targets, g.adj, g.boundary, g.r_c);
  EXPECT_EQ(rep.subgroups, 1);
  EXPECT_EQ(rep.repaired, static_cast<int>(block.size()));
  // All block members share the main displacement now.
  for (int b : block) {
    EXPECT_EQ(targets[static_cast<std::size_t>(b)],
              g.start[static_cast<std::size_t>(b)] + Vec2(500.0, 0.0));
  }
}

TEST(Repair, PostRepairEndpointsKeepNetworkConnected) {
  Grid g;
  Rng rng(11);
  // Random violent scatter of interior robots.
  std::vector<Vec2> targets = g.start;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    targets[i] += Vec2{500.0, 0.0};
    if (!g.boundary[i] && rng.chance(0.5)) {
      targets[i] += Vec2{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
    }
  }
  repair_targets(g.start, targets, g.adj, g.boundary, g.r_c);
  // After repair: every robot has a surviving path to a boundary robot.
  double r2 = g.r_c * g.r_c;
  std::vector<std::vector<int>> surv(g.start.size());
  for (std::size_t v = 0; v < g.start.size(); ++v) {
    for (int u : g.adj[v]) {
      if (distance2(targets[v], targets[static_cast<std::size_t>(u)]) <=
          r2 + 1e-9) {
        surv[v].push_back(u);
      }
    }
  }
  std::vector<int> sources;
  for (std::size_t v = 0; v < g.boundary.size(); ++v) {
    if (g.boundary[v]) sources.push_back(static_cast<int>(v));
  }
  auto hops = net::bfs_hops(surv, sources);
  for (std::size_t v = 0; v < hops.size(); ++v) {
    EXPECT_GE(hops[v], 0) << "robot " << v << " still unreached";
  }
}

TEST(Repair, ParallelMarchPreservesLinksThroughoutMotion) {
  Grid g;
  std::vector<Vec2> targets = g.start;
  targets[12] = {1000.0, 1000.0};
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (i != 12) targets[i] += Vec2{500.0, 0.0};
  }
  auto rep = repair_targets(g.start, targets, g.adj, g.boundary, g.r_c);
  EXPECT_EQ(rep.repaired, 1);
  // Straight-line motion: a link held at both endpoints survives in
  // between (convexity). The repaired endpoint configuration keeps robot
  // 12 linked to its reference.
  auto links = communication_links(g.start, g.r_c);
  double l = predicted_stable_link_ratio(g.start, targets, links, g.r_c);
  EXPECT_DOUBLE_EQ(l, 1.0);  // everything parallel again
}

TEST(Repair, ReportsBoundaryHops) {
  Grid g;
  std::vector<Vec2> targets = g.start;
  auto rep = repair_targets(g.start, targets, g.adj, g.boundary, g.r_c);
  // Center of a 5x5 grid with boundary ring sources: 2 hops.
  EXPECT_EQ(rep.boundary_hops[12], 2);
  EXPECT_EQ(rep.boundary_hops[0], 0);
}

}  // namespace
}  // namespace anr
