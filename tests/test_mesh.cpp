// Unit tests: TriangleMesh structure, adjacency, manifold checks.
#include <gtest/gtest.h>

#include "common/check.h"
#include "mesh/triangle_mesh.h"

namespace anr {
namespace {

// Two triangles sharing an edge: a unit-square split along the diagonal.
TriangleMesh square_mesh() {
  return TriangleMesh({{0, 0}, {1, 0}, {1, 1}, {0, 1}},
                      {Tri{0, 1, 2}, Tri{0, 2, 3}});
}

TEST(TriangleMesh, BasicCounts) {
  TriangleMesh m = square_mesh();
  EXPECT_EQ(m.num_vertices(), 4u);
  EXPECT_EQ(m.num_triangles(), 2u);
  EXPECT_EQ(m.edges().size(), 5u);
  EXPECT_EQ(m.boundary_edges().size(), 4u);
  EXPECT_EQ(m.euler_characteristic(), 1);  // disk
}

TEST(TriangleMesh, Neighbors) {
  TriangleMesh m = square_mesh();
  EXPECT_EQ(m.neighbors(0), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(m.neighbors(1), (std::vector<VertexId>{0, 2}));
}

TEST(TriangleMesh, EdgeTriangleCount) {
  TriangleMesh m = square_mesh();
  EXPECT_EQ(m.edge_triangle_count(0, 2), 2);  // diagonal
  EXPECT_EQ(m.edge_triangle_count(0, 1), 1);  // boundary
  EXPECT_EQ(m.edge_triangle_count(1, 3), 0);  // absent
}

TEST(TriangleMesh, BoundaryVertices) {
  TriangleMesh m = square_mesh();
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_TRUE(m.is_boundary_vertex(v));
  }
}

TEST(TriangleMesh, InteriorVertexNotBoundary) {
  // Fan around a center vertex: center is interior.
  TriangleMesh m({{0, 0}, {1, 0}, {0, 1}, {-1, 0}, {0, -1}},
                 {Tri{0, 1, 2}, Tri{0, 2, 3}, Tri{0, 3, 4}, Tri{0, 4, 1}});
  EXPECT_FALSE(m.is_boundary_vertex(0));
  EXPECT_TRUE(m.is_boundary_vertex(1));
  EXPECT_TRUE(m.vertex_manifold());
  EXPECT_EQ(m.euler_characteristic(), 1);
}

TEST(TriangleMesh, NonManifoldEdgeDetected) {
  // Three triangles on one edge.
  TriangleMesh m({{0, 0}, {1, 0}, {0, 1}, {0, -1}, {1, 1}},
                 {Tri{0, 1, 2}, Tri{0, 1, 3}, Tri{0, 1, 4}});
  EXPECT_FALSE(m.edge_manifold());
  EXPECT_FALSE(m.vertex_manifold());
}

TEST(TriangleMesh, BowtieDetected) {
  // Two triangles touching only at vertex 0.
  TriangleMesh m({{0, 0}, {1, 0}, {1, 1}, {-1, 0}, {-1, -1}},
                 {Tri{0, 1, 2}, Tri{0, 3, 4}});
  EXPECT_TRUE(m.edge_manifold());
  EXPECT_FALSE(m.vertex_manifold());
}

TEST(TriangleMesh, MakeCcw) {
  TriangleMesh m({{0, 0}, {1, 0}, {0, 1}}, {Tri{0, 2, 1}});  // CW
  EXPECT_FALSE(m.all_ccw());
  m.make_ccw();
  EXPECT_TRUE(m.all_ccw());
}

TEST(TriangleMesh, AdjacencyRebuildsAfterEdit) {
  TriangleMesh m = square_mesh();
  EXPECT_EQ(m.edges().size(), 5u);
  VertexId v = m.add_vertex({2.0, 0.5});
  m.add_triangle(Tri{1, v, 2});
  EXPECT_EQ(m.edges().size(), 7u);
  EXPECT_EQ(m.neighbors(1), (std::vector<VertexId>{0, 2, v}));
}

TEST(TriangleMesh, RejectsBadTriangle) {
  TriangleMesh m({{0, 0}, {1, 0}, {0, 1}}, {});
  EXPECT_THROW(m.add_triangle(Tri{0, 1, 7}), ContractViolation);
}

TEST(TriangleMesh, VertexTriangles) {
  TriangleMesh m = square_mesh();
  EXPECT_EQ(m.vertex_triangles(0).size(), 2u);
  EXPECT_EQ(m.vertex_triangles(1).size(), 1u);
}

}  // namespace
}  // namespace anr
