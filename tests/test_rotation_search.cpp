// Rotation search: paper's depth-limited scheme vs exhaustive sweep.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "harmonic/rotation_search.h"

namespace anr {
namespace {

TEST(RotationSearch, FindsPeakOfSmoothUnimodal) {
  double peak = 2.0;
  auto f = [&](double t) { return std::cos(t - peak); };
  RotationSearchOptions opt;
  opt.initial_partitions = 4;
  opt.depth = 8;
  auto res = search_rotation(f, opt);
  EXPECT_NEAR(res.angle, peak, 0.15);
  EXPECT_NEAR(res.value, 1.0, 0.01);
  EXPECT_EQ(res.evaluations, 4 + 2 * 8);
}

TEST(RotationSearch, PaperDefaultsProbeCount) {
  auto f = [](double t) { return std::sin(t); };
  auto res = search_rotation(f);  // defaults: 2 partitions, depth 4
  EXPECT_EQ(res.evaluations, 2 + 2 * 4);
  EXPECT_GT(res.value, 0.8);  // near the max of sin
}

TEST(RotationSearch, ReturnsBestProbeEverSeen) {
  // Spiky objective: refinement may descend into a flat region, but the
  // returned angle must be the best probe actually evaluated.
  auto f = [](double t) { return t < 0.5 ? 10.0 : std::sin(t); };
  RotationSearchOptions opt;
  opt.initial_partitions = 8;
  opt.depth = 3;
  auto res = search_rotation(f, opt);
  EXPECT_GE(res.value, 10.0);
}

TEST(SweepRotation, ExactOnDenseGrid) {
  double peak = 4.0;
  auto f = [&](double t) { return -std::pow(std::fmod(t - peak + 3 * M_PI, 2 * M_PI) - M_PI, 2.0); };
  auto res = sweep_rotation(f, 720);
  EXPECT_NEAR(res.angle, peak, 0.02);
  EXPECT_EQ(res.evaluations, 720);
}

TEST(SweepRotation, AtLeastAsGoodAsDepthSearch) {
  // Multi-modal objective with a narrow global peak: the sweep must match
  // or beat the paper's shallow search.
  auto f = [](double t) {
    return std::cos(3.0 * t) + 2.0 * std::exp(-20.0 * std::pow(t - 5.5, 2.0));
  };
  auto shallow = search_rotation(f);
  auto sweep = sweep_rotation(f, 360);
  EXPECT_GE(sweep.value, shallow.value - 1e-12);
}

TEST(RotationSearch, RejectsBadOptions) {
  auto f = [](double) { return 0.0; };
  RotationSearchOptions bad;
  bad.initial_partitions = 0;
  EXPECT_THROW(search_rotation(f, bad), ContractViolation);
  EXPECT_THROW(sweep_rotation(f, 0), ContractViolation);
}

}  // namespace
}  // namespace anr
