// Golden determinism: serialized plan bytes for fixed scenarios are pinned
// to files generated before the hot-path optimization pass (flat CSR
// GridIndex, warm-start point location, reusable solver scratch). The
// optimizations must be byte-identical through save_plan; any numeric
// drift in the geometry or solver hot paths shows up here as a diff.
//
// Regenerate (only when an intentional numeric change lands) with
//   ANR_REGEN_GOLDEN=1 ./test_golden_plan
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "io/plan_io.h"
#include "march/planner.h"

namespace anr {
namespace {

#ifndef ANR_GOLDEN_DIR
#define ANR_GOLDEN_DIR "golden"
#endif

PlannerOptions golden_options() {
  // Small-but-real settings: the plan still runs triangulation extraction,
  // both harmonic maps, the rotation search, repair, and several
  // connectivity-safe adjustment steps.
  PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  return opt;
}

MarchPlan make_plan(int scenario_id, bool geodesic = false) {
  Scenario sc = scenario(scenario_id);
  auto deploy =
      optimal_coverage_positions(sc.m1, 72, /*seed=*/1, uniform_density())
          .positions;
  Vec2 offset = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  PlannerOptions opt = golden_options();
  if (geodesic) {
    // Fixed non-uniform terrain (rolling hills + slope cost + one mud
    // patch): pins the whole fast-marching pipeline — cost-field raster,
    // per-robot ToA solves, geodesic extraction, connectivity guard —
    // byte-for-byte through save_plan.
    FieldOfInterest m2_world = sc.m2_shape.translated(offset);
    BBox tb = sc.m1.bbox();
    tb.expand(m2_world.bbox().lo);
    tb.expand(m2_world.bbox().hi);
    const Vec2 mid = lerp(sc.m1.centroid(), m2_world.centroid(), 0.5);
    opt.trajectory.motion = MotionModel::kTerrainGeodesic;
    opt.trajectory.terrain.terrain =
        HeightField::rolling(tb, 10, 30.0, 150.0, /*seed=*/77);
    opt.trajectory.terrain.slope_weight = 2.0;
    opt.trajectory.terrain.uphill_penalty = 0.3;
    opt.trajectory.terrain.mud.push_back({mid, 100.0, 2.5});
  }
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  return planner.plan(deploy, offset);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void check_scenario(int id, bool geodesic = false) {
  const std::string stem = "scenario" + std::to_string(id) +
                           (geodesic ? "_plan_geodesic" : "_plan");
  std::string golden_path = std::string(ANR_GOLDEN_DIR) + "/" + stem + ".json";
  MarchPlan plan = make_plan(id, geodesic);

  if (std::getenv("ANR_REGEN_GOLDEN") != nullptr) {
    std::string err;
    ASSERT_TRUE(save_plan(plan, golden_path, &err)) << err;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path
                               << " (run with ANR_REGEN_GOLDEN=1)";

  std::string tmp_path = "golden_tmp_" + stem + ".json";
  std::string err;
  ASSERT_TRUE(save_plan(plan, tmp_path, &err)) << err;
  std::string got = slurp(tmp_path);
  std::remove(tmp_path.c_str());

  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got, golden) << "plan bytes diverged from the golden snapshot "
                         << golden_path;
}

TEST(GoldenPlan, Scenario1ByteIdentical) { check_scenario(1); }

TEST(GoldenPlan, Scenario5ByteIdentical) { check_scenario(5); }

// Holed source region (M1 with an interior hole): pins the multicolor
// harmonic sweep ordering on hole-filled meshes, where the coloring sees
// the patched interior triangles.
TEST(GoldenPlan, Scenario6ByteIdentical) { check_scenario(6); }

// Terrain-geodesic variants over a fixed non-uniform cost field: any
// numeric drift in the fast-marching solver, the geodesic extractor, the
// bounded link predictor, or the connectivity guard shows up here.
TEST(GoldenPlanGeodesic, Scenario1ByteIdentical) {
  check_scenario(1, /*geodesic=*/true);
}

TEST(GoldenPlanGeodesic, Scenario5ByteIdentical) {
  check_scenario(5, /*geodesic=*/true);
}

TEST(GoldenPlanGeodesic, Scenario6ByteIdentical) {
  check_scenario(6, /*geodesic=*/true);
}

}  // namespace
}  // namespace anr
