// Trajectories: timing, lengths, obstacle detours.
#include <gtest/gtest.h>

#include "common/check.h"
#include "foi/shapes.h"
#include "march/trajectory.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(Trajectory, LinearInterpolation) {
  Trajectory t;
  t.append({0, 0}, 0.0);
  t.append({10, 0}, 1.0);
  EXPECT_EQ(t.position(0.5), (Vec2{5, 0}));
  EXPECT_EQ(t.position(-1.0), (Vec2{0, 0}));  // clamped
  EXPECT_EQ(t.position(2.0), (Vec2{10, 0}));
  EXPECT_DOUBLE_EQ(t.length(), 10.0);
}

TEST(Trajectory, MultiSegmentLengths) {
  Trajectory t;
  t.append({0, 0}, 0.0);
  t.append({3, 0}, 1.0);
  t.append({3, 4}, 2.0);
  EXPECT_DOUBLE_EQ(t.length(), 7.0);
  EXPECT_DOUBLE_EQ(t.length_between(0.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(t.length_between(1.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(t.length_between(0.5, 1.5), 3.5);
}

TEST(Trajectory, RejectsTimeTravel) {
  Trajectory t;
  t.append({0, 0}, 1.0);
  EXPECT_THROW(t.append({1, 1}, 0.5), ContractViolation);
}

TEST(TimedPath, StraightWhenClear) {
  Trajectory t = make_timed_path({0, 0}, {10, 10}, 0.0, 1.0, {});
  EXPECT_EQ(t.num_waypoints(), 2u);
  EXPECT_NEAR(t.length(), distance({0, 0}, {10, 10}), 1e-12);
  EXPECT_DOUBLE_EQ(t.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 1.0);
}

TEST(TimedPath, DetoursAroundSquareObstacle) {
  Polygon ob = make_rect({4, -2}, {6, 2});
  Trajectory t = make_timed_path({0, 0}, {10, 0}, 0.0, 1.0, {ob});
  EXPECT_GT(t.num_waypoints(), 2u);
  EXPECT_GT(t.length(), 10.0);
  // The path must not pass strictly inside the obstacle.
  for (int k = 0; k <= 200; ++k) {
    Vec2 p = t.position(k / 200.0);
    EXPECT_FALSE(ob.contains(p) && ob.boundary_distance(p) > 1e-6)
        << "entered obstacle at t=" << k / 200.0;
  }
  // Endpoints and arrival time preserved.
  EXPECT_EQ(t.position(0.0), (Vec2{0, 0}));
  EXPECT_EQ(t.position(1.0), (Vec2{10, 0}));
}

TEST(TimedPath, TakesShorterArc) {
  // Obstacle offset below the line: going over the top is shorter.
  Polygon ob({{4, -5}, {6, -5}, {6, 1}, {4, 1}});
  Trajectory t = make_timed_path({0, 0}, {10, 0}, 0.0, 1.0, {ob});
  // Max detour should go through y ~ 1 (top), not y ~ -5 (bottom).
  double min_y = 1e300, max_y = -1e300;
  for (int k = 0; k <= 100; ++k) {
    Vec2 p = t.position(k / 100.0);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  EXPECT_GE(min_y, -1.0);
  EXPECT_NEAR(max_y, 1.0, 0.1);
}

TEST(TimedPath, CircleObstacle) {
  Polygon ob = make_circle({5, 0}, 2.0, 32);
  Trajectory t = make_timed_path({0, 0}, {10, 0}, 0.0, 2.0, {ob});
  EXPECT_GT(t.length(), 10.0);
  EXPECT_LT(t.length(), 10.0 + 2.0 * M_PI * 2.0);  // less than full circle
  for (int k = 0; k <= 300; ++k) {
    Vec2 p = t.position(2.0 * k / 300.0);
    EXPECT_GE(distance(p, Vec2(5, 0)), 2.0 - 0.05);
  }
}

TEST(TimedPath, MultipleObstacles) {
  std::vector<Polygon> obs{make_circle({3, 0}, 1.0, 24),
                           make_circle({7, 0}, 1.0, 24)};
  Trajectory t = make_timed_path({0, 0}, {10, 0}, 0.0, 1.0, obs);
  for (int k = 0; k <= 300; ++k) {
    Vec2 p = t.position(k / 300.0);
    EXPECT_GE(distance(p, Vec2(3, 0)), 0.95);
    EXPECT_GE(distance(p, Vec2(7, 0)), 0.95);
  }
}

TEST(TimedPath, UntouchedObstacleIgnored) {
  Polygon ob = make_circle({50, 50}, 5.0, 16);
  Trajectory t = make_timed_path({0, 0}, {10, 0}, 0.0, 1.0, {ob});
  EXPECT_EQ(t.num_waypoints(), 2u);
}

TEST(TimedPath, ZeroLengthPath) {
  Trajectory t = make_timed_path({5, 5}, {5, 5}, 0.0, 1.0, {});
  EXPECT_EQ(t.position(0.5), (Vec2{5, 5}));
  EXPECT_DOUBLE_EQ(t.length(), 0.0);
}

TEST(TimedPath, ConstantSpeed) {
  Polygon ob = make_rect({4, -2}, {6, 2});
  Trajectory t = make_timed_path({0, 0}, {10, 0}, 0.0, 1.0, {ob});
  double total = t.length();
  // Arc length traversed grows linearly in time.
  for (int k = 1; k <= 10; ++k) {
    double frac = k / 10.0;
    EXPECT_NEAR(t.length_between(0.0, frac), total * frac, total * 0.02);
  }
}

TEST(RouteAround, EmptyWhenClear) {
  EXPECT_TRUE(route_around({0, 0}, {1, 1}, {}).empty());
  EXPECT_TRUE(
      route_around({0, 0}, {1, 1}, {make_circle({10, 10}, 1.0, 8)}).empty());
}

TEST(TimedPath, ConcaveFlowerObstacle) {
  // The paper's pond is concave; the wall-following detour must still
  // stay out of every petal notch.
  Polygon flower = make_blob({5.0, 0.0}, 2.0, {{5, 0.35, 0.0}}, 60);
  Trajectory t = make_timed_path({0, 0}, {10, 0}, 0.0, 1.0, {flower});
  EXPECT_GT(t.num_waypoints(), 2u);
  for (int k = 0; k <= 400; ++k) {
    Vec2 p = t.position(k / 400.0);
    bool strictly_in =
        flower.contains(p) && flower.boundary_distance(p) > 1e-6;
    EXPECT_FALSE(strictly_in) << "entered flower at t=" << k / 400.0;
  }
}

// Fuzz: random segments against random circle obstacles — the routed path
// never enters an obstacle interior and always reaches the goal on time.
class RouteFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RouteFuzz, NeverEntersObstacles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131u);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Polygon> obstacles;
    std::vector<Vec2> centers;
    std::vector<double> radii;
    int count = rng.uniform_int(1, 3);
    for (int o = 0; o < count; ++o) {
      Vec2 c{rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0)};
      double r = rng.uniform(2.0, 5.0);
      // Keep obstacles disjoint (the detour contract assumes it).
      bool overlaps = false;
      for (std::size_t j = 0; j < centers.size(); ++j) {
        if (distance(c, centers[j]) < r + radii[j] + 1.0) overlaps = true;
      }
      if (overlaps) continue;
      centers.push_back(c);
      radii.push_back(r);
      obstacles.push_back(make_circle(c, r, 24));
    }
    Vec2 a{rng.uniform(-40.0, -30.0), rng.uniform(-40.0, 40.0)};
    Vec2 b{rng.uniform(30.0, 40.0), rng.uniform(-40.0, 40.0)};
    Trajectory t = make_timed_path(a, b, 0.0, 1.0, obstacles);
    EXPECT_EQ(t.position(0.0), a);
    EXPECT_EQ(t.position(1.0), b);
    for (int k = 0; k <= 300; ++k) {
      Vec2 p = t.position(k / 300.0);
      for (std::size_t o = 0; o < centers.size(); ++o) {
        EXPECT_GE(distance(p, centers[o]), radii[o] * 0.97)
            << "trial " << trial << " obstacle " << o;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace anr
