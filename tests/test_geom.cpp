// Unit tests: Vec2 arithmetic, predicates, segments, barycentric
// coordinates, convex hull.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/barycentric.h"
#include "geom/convex_hull.h"
#include "geom/predicates.h"
#include "geom/segment.h"
#include "geom/vec2.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(Vec2, Arithmetic) {
  Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
}

TEST(Vec2, NormAndNormalize) {
  Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-15);
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{0.0, 0.0}));
}

TEST(Vec2, Rotation) {
  Vec2 v{1.0, 0.0};
  Vec2 r = v.rotated(M_PI / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
  // Rotation preserves norm.
  Vec2 w{3.7, -2.2};
  EXPECT_NEAR(w.rotated(1.234).norm(), w.norm(), 1e-12);
}

TEST(Vec2, Lerp) {
  Vec2 a{0.0, 0.0}, b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5.0, 10.0}));
}

TEST(Predicates, Orientation) {
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {0, 1}), 1);   // CCW
  EXPECT_EQ(orientation({0, 0}, {0, 1}, {1, 0}), -1);  // CW
  EXPECT_EQ(orientation({0, 0}, {1, 1}, {2, 2}), 0);   // collinear
}

TEST(Predicates, OrientationScaleInvariance) {
  // The epsilon guard must behave at meter scale like at unit scale.
  for (double s : {1e-3, 1.0, 1e3, 1e6}) {
    EXPECT_EQ(orientation({0, 0}, {s, 0}, {0, s}), 1) << "scale " << s;
    EXPECT_EQ(orientation({0, 0}, {s, s}, {2 * s, 2 * s}), 0) << "scale " << s;
  }
}

TEST(Predicates, InCircumcircle) {
  // Unit circle through (1,0),(0,1),(-1,0): origin inside, (2,0) outside.
  EXPECT_TRUE(in_circumcircle({1, 0}, {0, 1}, {-1, 0}, {0, 0}));
  EXPECT_FALSE(in_circumcircle({1, 0}, {0, 1}, {-1, 0}, {2, 0}));
  // Cocircular point counts as outside (termination guard).
  EXPECT_FALSE(in_circumcircle({1, 0}, {0, 1}, {-1, 0}, {0, -1}));
}

TEST(Predicates, PointInTriangle) {
  Vec2 a{0, 0}, b{4, 0}, c{0, 4};
  EXPECT_TRUE(point_in_triangle({1, 1}, a, b, c));
  EXPECT_TRUE(point_in_triangle({0, 0}, a, b, c));  // vertex
  EXPECT_TRUE(point_in_triangle({2, 0}, a, b, c));  // edge
  EXPECT_FALSE(point_in_triangle({3, 3}, a, b, c));
  // Works for CW triangles too.
  EXPECT_TRUE(point_in_triangle({1, 1}, a, c, b));
}

TEST(Predicates, Circumcenter) {
  Vec2 cc = circumcenter({1, 0}, {0, 1}, {-1, 0});
  EXPECT_NEAR(cc.x, 0.0, 1e-12);
  EXPECT_NEAR(cc.y, 0.0, 1e-12);
  // Equidistance property on a scalene triangle.
  Vec2 a{2.0, 1.0}, b{7.0, 3.0}, c{4.0, 8.0};
  Vec2 o = circumcenter(a, b, c);
  EXPECT_NEAR(distance(o, a), distance(o, b), 1e-9);
  EXPECT_NEAR(distance(o, b), distance(o, c), 1e-9);
}

TEST(Segment, Intersection) {
  Segment s{{0, 0}, {4, 4}};
  Segment t{{0, 4}, {4, 0}};
  EXPECT_TRUE(segments_intersect(s, t));
  auto x = segment_intersection(s, t);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(x->x, 2.0, 1e-12);
  EXPECT_NEAR(x->y, 2.0, 1e-12);
}

TEST(Segment, NoIntersection) {
  Segment s{{0, 0}, {1, 0}};
  Segment t{{0, 1}, {1, 1}};
  EXPECT_FALSE(segments_intersect(s, t));
  EXPECT_FALSE(segment_intersection(s, t).has_value());
}

TEST(Segment, TouchingEndpoints) {
  Segment s{{0, 0}, {1, 1}};
  Segment t{{1, 1}, {2, 0}};
  EXPECT_TRUE(segments_intersect(s, t));
}

TEST(Segment, CollinearOverlap) {
  Segment s{{0, 0}, {2, 0}};
  Segment t{{1, 0}, {3, 0}};
  EXPECT_TRUE(segments_intersect(s, t));
  EXPECT_FALSE(segment_intersection(s, t).has_value());  // no unique point
}

TEST(Segment, ClosestPoint) {
  Segment s{{0, 0}, {10, 0}};
  EXPECT_EQ(closest_point(s, {5, 3}), (Vec2{5, 0}));
  EXPECT_EQ(closest_point(s, {-2, 1}), (Vec2{0, 0}));  // clamped
  EXPECT_EQ(closest_point(s, {13, -1}), (Vec2{10, 0}));
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 3}, s), 3.0);
}

TEST(Barycentric, ReconstructsPoint) {
  Vec2 a{0, 0}, b{5, 0}, c{1, 4};
  Vec2 p{2.0, 1.5};
  auto t = barycentric(p, a, b, c);
  EXPECT_NEAR(t[0] + t[1] + t[2], 1.0, 1e-12);
  Vec2 back = a * t[0] + b * t[1] + c * t[2];
  EXPECT_NEAR(back.x, p.x, 1e-12);
  EXPECT_NEAR(back.y, p.y, 1e-12);
}

TEST(Barycentric, VerticesAndInside) {
  Vec2 a{0, 0}, b{4, 0}, c{0, 4};
  auto ta = barycentric(a, a, b, c);
  EXPECT_NEAR(ta[0], 1.0, 1e-12);
  EXPECT_TRUE(barycentric_inside(barycentric({1, 1}, a, b, c)));
  EXPECT_FALSE(barycentric_inside(barycentric({5, 5}, a, b, c)));
}

TEST(Barycentric, InterpolationIsAffine) {
  // Interpolating the identity map returns the query point itself.
  Vec2 a{1, 1}, b{6, 2}, c{3, 7};
  Vec2 p{3.0, 3.0};
  Vec2 q = barycentric_interpolate(p, a, b, c, a, b, c);
  EXPECT_NEAR(q.x, p.x, 1e-12);
  EXPECT_NEAR(q.y, p.y, 1e-12);
}

TEST(ConvexHull, Square) {
  auto hull = convex_hull({{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(hull.area(), 1.0, 1e-12);
  EXPECT_GT(hull.signed_area(), 0.0);  // CCW
}

TEST(ConvexHull, CollinearPointsDropped) {
  auto hull = convex_hull({{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_EQ(hull.size(), 4u);
}

// Property sweep: hull contains all input points, for random point sets.
class ConvexHullProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConvexHullProperty, ContainsAllPoints) {
  auto pts = testutil::random_points(60, -10.0, 10.0,
                                     static_cast<std::uint64_t>(GetParam()));
  auto hull = convex_hull(pts);
  EXPECT_GT(hull.signed_area(), 0.0);
  for (Vec2 p : pts) {
    EXPECT_TRUE(hull.contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvexHullProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace anr
