// Indoor floor-plan FoIs: validity, meshability, and a full march into a
// multi-room environment (the paper's future-work "indoor" case).
#include <gtest/gtest.h>

#include "common/check.h"
#include "coverage/lloyd.h"
#include "foi/foi_mesher.h"
#include "foi/indoor.h"
#include "foi/scenario.h"
#include "harmonic/disk_map.h"
#include "march/planner.h"
#include "march/transition_sim.h"
#include "mesh/boundary.h"
#include "mesh/hole_fill.h"
#include "net/connectivity.h"

namespace anr {
namespace {

TEST(Indoor, FloorPlanStructure) {
  IndoorOptions opt;
  FieldOfInterest floor = make_indoor_foi(opt);
  // 3x2 rooms: 2 vertical wall lines x 2 rooms x 2 pieces
  //          + 1 horizontal wall line x 3 rooms x 2 pieces = 14 holes.
  EXPECT_EQ(floor.holes().size(), 14u);
  double gross = 3 * 220.0 * 2 * 220.0;
  EXPECT_LT(floor.area(), gross);
  EXPECT_GT(floor.area(), gross * 0.95);  // walls are thin
}

TEST(Indoor, RoomCentersPlaceableWallsNot) {
  FieldOfInterest floor = make_indoor_foi();
  EXPECT_TRUE(floor.contains({110.0, 110.0}));   // room center
  EXPECT_FALSE(floor.contains({220.0, 60.0}));   // inside a vertical wall
  EXPECT_TRUE(floor.contains({220.0, 220.0}));   // wall crossing clearance
}

TEST(Indoor, DoorwaysAreOpen) {
  IndoorOptions opt;
  FieldOfInterest floor = make_indoor_foi(opt);
  // The door in the wall at x = 220 between y=0..220 is centered.
  double door_y = (opt.clearance + opt.room_size - opt.clearance) / 2.0;
  EXPECT_TRUE(floor.contains({220.0, door_y}));
  EXPECT_TRUE(floor.segment_inside({200.0, door_y}, {240.0, door_y}));
}

TEST(Indoor, MeshesAndEmbeds) {
  IndoorOptions opt;
  opt.rooms_x = 2;
  opt.rooms_y = 2;
  FieldOfInterest floor = make_indoor_foi(opt);
  MesherOptions mopt;
  mopt.target_grid_points = 1500;
  FoiMesh fm = mesh_foi(floor, mopt);
  EXPECT_TRUE(fm.mesh.vertex_manifold());
  EXPECT_EQ(boundary_loops(fm.mesh).size(), floor.holes().size() + 1);
  HoleFillResult filled = fill_holes(fm.mesh);
  DiskMap map = harmonic_disk_map(filled.mesh);
  EXPECT_TRUE(map.converged);
  EXPECT_GT(map.embedding_quality(filled.mesh), 0.99);
}

TEST(Indoor, FullMarchIntoBuilding) {
  IndoorOptions opt;
  opt.rooms_x = 2;
  opt.rooms_y = 2;
  FieldOfInterest floor = make_indoor_foi(opt);
  FieldOfInterest staging = base_m1();
  const double r_c = 80.0;
  auto deploy = optimal_coverage_positions(staging, 144, 1, uniform_density());

  PlannerOptions popt;
  popt.mesher.target_grid_points = 1200;
  popt.cvt_samples = 12000;
  popt.max_adjust_steps = 30;
  MarchPlanner planner(staging, floor, r_c, popt);
  Vec2 off = staging.centroid() + Vec2{15.0 * r_c, 0.0} - floor.centroid();
  MarchPlan plan = planner.plan(deploy.positions, off);

  auto m = simulate_transition(plan.trajectories, r_c, plan.transition_end, 120);
  EXPECT_TRUE(m.global_connectivity);
  FieldOfInterest placed = floor.translated(off);
  for (Vec2 p : plan.final_positions) {
    EXPECT_TRUE(placed.contains(p));
  }
  // Robots spread across all four rooms.
  int rooms_hit = 0;
  for (int rx = 0; rx < 2; ++rx) {
    for (int ry = 0; ry < 2; ++ry) {
      Vec2 center = off + Vec2{(rx + 0.5) * opt.room_size,
                               (ry + 0.5) * opt.room_size};
      for (Vec2 p : plan.final_positions) {
        if (distance(p, center) < opt.room_size / 2.0) {
          ++rooms_hit;
          break;
        }
      }
    }
  }
  EXPECT_EQ(rooms_hit, 4);
}

TEST(Indoor, RejectsImpossibleGeometry) {
  IndoorOptions opt;
  opt.room_size = 50.0;  // smaller than clearances + door
  EXPECT_THROW(make_indoor_foi(opt), ContractViolation);
}

}  // namespace
}  // namespace anr
