// JSON parser/writer and plan persistence round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "io/json.h"
#include "io/plan_io.h"
#include "march/planner.h"
#include "march/transition_sim.h"

namespace anr {
namespace {

TEST(Json, Scalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(json::parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, Containers) {
  auto v = json::parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_TRUE(a[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").is_null());
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("zzz"));
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(json::parse(""), json::ParseError);
  EXPECT_THROW(json::parse("{"), json::ParseError);
  EXPECT_THROW(json::parse("[1,]"), json::ParseError);
  EXPECT_THROW(json::parse("tru"), json::ParseError);
  EXPECT_THROW(json::parse("\"unterminated"), json::ParseError);
  EXPECT_THROW(json::parse("1 2"), json::ParseError);
  EXPECT_THROW(json::parse("{'single': 1}"), json::ParseError);
}

TEST(Json, TypeErrors) {
  auto v = json::parse("[1]");
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.at("x"), std::runtime_error);
  EXPECT_THROW(json::parse("3").as_string(), std::runtime_error);
}

TEST(Json, DumpRoundTrip) {
  std::string doc =
      R"({"arr":[1,2.5,-3],"nested":{"t":true,"s":"x\ny"},"z":null})";
  auto v = json::parse(doc);
  // compact dump re-parses to the same structure
  auto again = json::parse(v.dump());
  EXPECT_EQ(again.at("arr").as_array().size(), 3u);
  EXPECT_EQ(again.at("nested").at("s").as_string(), "x\ny");
  // pretty dump also re-parses
  auto pretty = json::parse(v.dump(2));
  EXPECT_DOUBLE_EQ(pretty.at("arr").as_array()[1].as_number(), 2.5);
}

TEST(Json, NumberPrecisionPreserved) {
  double val = 0.1234567890123456;
  json::Object o;
  o.emplace("v", val);
  auto round = json::parse(json::Value(std::move(o)).dump());
  EXPECT_DOUBLE_EQ(round.at("v").as_number(), val);
}

TEST(PlanIo, TrajectoryRoundTrip) {
  Trajectory t;
  t.append({0.5, -1.25}, 0.0);
  t.append({10.0, 3.0}, 1.0);
  t.append({12.5, 3.5}, 1.75);
  Trajectory back = trajectory_from_json(
      json::parse(trajectory_to_json(t).dump()));
  ASSERT_EQ(back.num_waypoints(), t.num_waypoints());
  for (std::size_t i = 0; i < t.num_waypoints(); ++i) {
    EXPECT_EQ(back.waypoints()[i], t.waypoints()[i]);
    EXPECT_DOUBLE_EQ(back.times()[i], t.times()[i]);
  }
}

TEST(PlanIo, FullPlanRoundTripThroughFile) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  PlannerOptions opt;
  opt.mesher.target_grid_points = 500;
  opt.cvt_samples = 8000;
  opt.max_adjust_steps = 10;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  Vec2 off = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(deploy, off);

  std::string path = "/tmp/anr_plan_roundtrip.json";
  ASSERT_TRUE(save_plan(plan, path));
  auto loaded = load_plan(path);
  ASSERT_TRUE(loaded.has_value());
  std::remove(path.c_str());

  ASSERT_EQ(loaded->trajectories.size(), plan.trajectories.size());
  EXPECT_EQ(loaded->rotation_angle, plan.rotation_angle);
  EXPECT_EQ(loaded->snapped_targets, plan.snapped_targets);
  EXPECT_EQ(loaded->final_positions, plan.final_positions);

  // Replaying the loaded trajectories reproduces the measured metrics.
  auto m1 = simulate_transition(plan.trajectories, sc.comm_range,
                                plan.transition_end, 80);
  auto m2 = simulate_transition(loaded->trajectories, sc.comm_range,
                                loaded->transition_end, 80);
  EXPECT_DOUBLE_EQ(m1.stable_link_ratio, m2.stable_link_ratio);
  EXPECT_DOUBLE_EQ(m1.total_distance, m2.total_distance);
  EXPECT_EQ(m1.global_connectivity, m2.global_connectivity);
}

TEST(PlanIo, MetricsRoundTrip) {
  TransitionMetrics m;
  m.total_distance = 123.5;
  m.stable_link_ratio = 0.87;
  m.global_connectivity = false;
  m.first_disconnect_time = 0.42;
  m.initial_links = 99;
  TransitionMetrics back =
      metrics_from_json(json::parse(metrics_to_json(m).dump()));
  EXPECT_DOUBLE_EQ(back.total_distance, m.total_distance);
  EXPECT_DOUBLE_EQ(back.stable_link_ratio, m.stable_link_ratio);
  EXPECT_EQ(back.global_connectivity, m.global_connectivity);
  EXPECT_EQ(back.initial_links, m.initial_links);
}

TEST(PlanIo, LoadRejectsGarbage) {
  std::string path = "/tmp/anr_plan_garbage.json";
  std::ofstream(path) << "{\"format\": \"something-else\"}";
  EXPECT_FALSE(load_plan(path).has_value());
  std::remove(path.c_str());
  EXPECT_FALSE(load_plan("/nonexistent/x.json").has_value());
}

TEST(PlanIo, SyntheticPlanRoundTripKeepsEveryDiagnosticScalar) {
  // Exercise plan_to_json/plan_from_json directly (no planner run) with
  // every diagnostic set to a distinct sentinel, so a field dropped on
  // either side of the round trip is caught immediately.
  MarchPlan plan;
  Trajectory t;
  t.append({1.0, 2.0}, 0.0);
  t.append({3.0, 4.0}, 1.0);
  plan.trajectories.push_back(t);
  plan.start = {{1.0, 2.0}};
  plan.mapped_targets = {{3.0, 4.0}};
  plan.final_positions = {{3.5, 4.5}};
  plan.rotation_angle = 0.625;
  plan.rotation_objective = 0.875;
  plan.rotation_evaluations = 17;
  plan.predicted_link_ratio = 0.9375;
  plan.snapped_targets = 3;
  plan.repaired_robots = 5;
  plan.repaired_subgroups = 2;
  plan.unmeshed_robots = 1;
  plan.max_boundary_gap = 71.5;
  plan.transition_end = 1.0;
  plan.total_time = 2.25;
  plan.adjust_steps = 9;
  plan.protocol_messages = 12345;

  MarchPlan back = plan_from_json(json::parse(plan_to_json(plan).dump()));
  EXPECT_EQ(back.start, plan.start);
  EXPECT_EQ(back.mapped_targets, plan.mapped_targets);
  EXPECT_EQ(back.final_positions, plan.final_positions);
  EXPECT_DOUBLE_EQ(back.rotation_angle, plan.rotation_angle);
  EXPECT_DOUBLE_EQ(back.rotation_objective, plan.rotation_objective);
  EXPECT_EQ(back.rotation_evaluations, plan.rotation_evaluations);
  EXPECT_DOUBLE_EQ(back.predicted_link_ratio, plan.predicted_link_ratio);
  EXPECT_EQ(back.snapped_targets, plan.snapped_targets);
  EXPECT_EQ(back.repaired_robots, plan.repaired_robots);
  EXPECT_EQ(back.repaired_subgroups, plan.repaired_subgroups);
  EXPECT_EQ(back.unmeshed_robots, plan.unmeshed_robots);
  EXPECT_DOUBLE_EQ(back.max_boundary_gap, plan.max_boundary_gap);
  EXPECT_DOUBLE_EQ(back.transition_end, plan.transition_end);
  EXPECT_DOUBLE_EQ(back.total_time, plan.total_time);
  EXPECT_EQ(back.adjust_steps, plan.adjust_steps);
  EXPECT_EQ(back.protocol_messages, plan.protocol_messages);
}

TEST(PlanIo, SaveAndLoadSurfaceTheFailureReason) {
  MarchPlan plan;
  std::string error;
  EXPECT_FALSE(save_plan(plan, "/nonexistent-dir/plan.json", &error));
  EXPECT_NE(error.find("/nonexistent-dir/plan.json"), std::string::npos);
  EXPECT_NE(error.find("No such file or directory"), std::string::npos)
      << error;

  error.clear();
  EXPECT_FALSE(load_plan("/nonexistent/x.json", &error).has_value());
  EXPECT_NE(error.find("No such file or directory"), std::string::npos)
      << error;

  // Malformed document: the reason is the parse/validation message.
  std::string path = "/tmp/anr_plan_badformat.json";
  std::ofstream(path) << "{\"format\": \"something-else\"}";
  error.clear();
  EXPECT_FALSE(load_plan(path, &error).has_value());
  EXPECT_NE(error.find("unknown plan format"), std::string::npos) << error;
  std::remove(path.c_str());

  // Success leaves the error empty.
  std::string ok_path = "/tmp/anr_plan_okerr.json";
  Trajectory t;
  t.append({0.0, 0.0}, 0.0);
  plan.trajectories.push_back(t);
  error = "stale";
  EXPECT_TRUE(save_plan(plan, ok_path, &error));
  EXPECT_TRUE(error.empty());
  error = "stale";
  EXPECT_TRUE(load_plan(ok_path, &error).has_value());
  EXPECT_TRUE(error.empty());
  std::remove(ok_path.c_str());
}

}  // namespace
}  // namespace anr
