// Boundary-loop extraction and virtual-vertex hole filling.
#include <gtest/gtest.h>

#include "foi/foi_mesher.h"
#include "mesh/boundary.h"
#include "mesh/hole_fill.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(BoundaryLoops, SquareMesh) {
  TriangleMesh m({{0, 0}, {1, 0}, {1, 1}, {0, 1}}, {Tri{0, 1, 2}, Tri{0, 2, 3}});
  auto loops = boundary_loops(m);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].vertices.size(), 4u);
  EXPECT_NEAR(loops[0].length(m), 4.0, 1e-12);
}

TEST(BoundaryLoops, AnnulusHasTwoLoops) {
  FieldOfInterest annulus = testutil::square_with_hole(100.0, 20.0);
  MesherOptions opt;
  opt.target_grid_points = 400;
  FoiMesh fm = mesh_foi(annulus, opt);
  auto loops = boundary_loops(fm.mesh);
  ASSERT_EQ(loops.size(), 2u);
  std::size_t outer = outer_loop_index(fm.mesh, loops);
  std::size_t inner = 1 - outer;
  EXPECT_GT(loops[outer].length(fm.mesh), loops[inner].length(fm.mesh));
}

TEST(HoleFill, AnnulusBecomesDisk) {
  FieldOfInterest annulus = testutil::square_with_hole(100.0, 20.0);
  MesherOptions opt;
  opt.target_grid_points = 400;
  FoiMesh fm = mesh_foi(annulus, opt);
  EXPECT_EQ(fm.mesh.euler_characteristic(), 0);  // annulus

  HoleFillResult filled = fill_holes(fm.mesh);
  EXPECT_EQ(filled.holes_filled, 1u);
  ASSERT_EQ(filled.virtual_vertices.size(), 1u);
  EXPECT_EQ(filled.mesh.euler_characteristic(), 1);  // disk
  EXPECT_EQ(boundary_loops(filled.mesh).size(), 1u);
  EXPECT_TRUE(filled.mesh.vertex_manifold());

  // Virtual vertex sits near the hole center.
  Vec2 vv = filled.mesh.position(filled.virtual_vertices[0]);
  EXPECT_NEAR(vv.x, 50.0, 5.0);
  EXPECT_NEAR(vv.y, 50.0, 5.0);

  // Virtual-flag bookkeeping is consistent.
  ASSERT_EQ(filled.triangle_is_virtual.size(), filled.mesh.num_triangles());
  std::size_t virtual_tris = 0;
  for (char f : filled.triangle_is_virtual) virtual_tris += f ? 1u : 0u;
  EXPECT_GT(virtual_tris, 0u);
  EXPECT_EQ(filled.mesh.num_triangles() - virtual_tris, fm.mesh.num_triangles());
}

TEST(HoleFill, NoHolesIsNoOp) {
  FieldOfInterest sq = testutil::square_foi(100.0);
  MesherOptions opt;
  opt.target_grid_points = 200;
  FoiMesh fm = mesh_foi(sq, opt);
  HoleFillResult filled = fill_holes(fm.mesh);
  EXPECT_EQ(filled.holes_filled, 0u);
  EXPECT_EQ(filled.mesh.num_triangles(), fm.mesh.num_triangles());
  EXPECT_EQ(filled.mesh.num_vertices(), fm.mesh.num_vertices());
}

TEST(HoleFill, MultipleHoles) {
  FieldOfInterest foi(make_rect({0, 0}, {200, 100}),
                      {make_circle({50, 50}, 15.0, 24),
                       make_circle({150, 50}, 15.0, 24)});
  MesherOptions opt;
  opt.target_grid_points = 800;
  FoiMesh fm = mesh_foi(foi, opt);
  ASSERT_EQ(boundary_loops(fm.mesh).size(), 3u);
  HoleFillResult filled = fill_holes(fm.mesh);
  EXPECT_EQ(filled.holes_filled, 2u);
  EXPECT_EQ(boundary_loops(filled.mesh).size(), 1u);
  EXPECT_EQ(filled.mesh.euler_characteristic(), 1);
}

}  // namespace
}  // namespace anr
