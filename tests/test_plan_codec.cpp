// Binary plan codec: bit-exact round trips, hostile-input robustness,
// cross-format agreement with the JSON archive, and a committed binary
// golden pinning the version-1 byte layout.
//
// The fuzz sections run the decoder over every truncation prefix and
// every single-byte corruption of a valid document: all must fail with a
// typed error, none may crash or over-read (the ASan CI sweep runs this
// test for exactly that reason).
//
// Regenerate the binary golden (only on an intentional layout change,
// together with a kPlanCodecVersion bump) with
//   ANR_REGEN_GOLDEN=1 ./test_plan_codec
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "io/plan_codec.h"
#include "io/plan_io.h"

namespace anr {
namespace {

#ifndef ANR_GOLDEN_DIR
#define ANR_GOLDEN_DIR "golden"
#endif

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// A seeded random plan exercising the full persisted surface: robots
// with empty, single-point, and long trajectories; magnitudes from
// subnormal-adjacent to 1e300; negative scalars where the schema allows.
MarchPlan random_plan(std::uint64_t seed) {
  Rng rng(seed);
  MarchPlan plan;
  const int robots = rng.uniform_int(0, 12);
  auto wild = [&]() {
    // Span many binades so double round-trips are actually stressed.
    const double mag = std::pow(10.0, rng.uniform(-300.0, 300.0));
    return rng.chance(0.5) ? mag : -mag;
  };
  for (int i = 0; i < robots; ++i) {
    plan.start.push_back({wild(), wild()});
    plan.mapped_targets.push_back({wild(), wild()});
    plan.final_positions.push_back({wild(), wild()});
    Trajectory t;
    const int waypoints = rng.uniform_int(0, 8);
    double time = rng.uniform(0.0, 10.0);
    for (int w = 0; w < waypoints; ++w) {
      t.append({wild(), wild()}, time);
      time += rng.uniform(0.0, 5.0);
    }
    plan.trajectories.push_back(std::move(t));
  }
  plan.rotation_angle = rng.uniform(-3.2, 3.2);
  plan.rotation_objective = wild();
  plan.rotation_evaluations = rng.uniform_int(0, 1 << 20);
  plan.predicted_link_ratio = rng.uniform(0.0, 1.0);
  plan.snapped_targets = rng.uniform_int(0, robots);
  plan.repaired_robots = rng.uniform_int(0, robots);
  plan.repaired_subgroups = rng.uniform_int(0, 4);
  plan.unmeshed_robots = rng.uniform_int(0, robots);
  plan.max_boundary_gap = wild();
  plan.transition_end = rng.uniform(0.0, 1e6);
  plan.total_time = plan.transition_end + rng.uniform(0.0, 1e6);
  plan.adjust_steps = rng.uniform_int(0, 64);
  plan.protocol_messages =
      static_cast<std::size_t>(rng.uniform_int(0, 1 << 30));
  return plan;
}

TEST(PlanCodec, RoundTripBitIdentical) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const MarchPlan plan = random_plan(seed);
    const std::string bytes = encode_plan(plan);
    ASSERT_TRUE(looks_like_binary_plan(bytes)) << "seed " << seed;

    std::string error;
    std::optional<MarchPlan> back = decode_plan(bytes, &error);
    ASSERT_TRUE(back.has_value()) << "seed " << seed << ": " << error;

    // Bit-exactness via the codec's own determinism: equal persisted
    // state <=> equal bytes, so re-encoding must reproduce the document.
    EXPECT_EQ(encode_plan(*back), bytes) << "seed " << seed;

    // And the structure survived, not just the byte stream.
    ASSERT_EQ(back->trajectories.size(), plan.trajectories.size());
    for (std::size_t i = 0; i < plan.trajectories.size(); ++i) {
      EXPECT_EQ(back->trajectories[i].times(), plan.trajectories[i].times());
      const auto& got = back->trajectories[i].waypoints();
      const auto& want = plan.trajectories[i].waypoints();
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t w = 0; w < want.size(); ++w) {
        EXPECT_EQ(got[w].x, want[w].x);
        EXPECT_EQ(got[w].y, want[w].y);
      }
    }
    EXPECT_EQ(back->rotation_angle, plan.rotation_angle);
    EXPECT_EQ(back->max_boundary_gap, plan.max_boundary_gap);
    EXPECT_EQ(back->total_time, plan.total_time);
    EXPECT_EQ(back->protocol_messages, plan.protocol_messages);
  }
}

TEST(PlanCodec, EncodingIsDeterministic) {
  const MarchPlan plan = random_plan(7);
  EXPECT_EQ(encode_plan(plan), encode_plan(plan));
}

TEST(PlanCodec, EveryTruncationFailsTyped) {
  const std::string bytes = encode_plan(random_plan(3));
  ASSERT_GT(bytes.size(), 24u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    const std::optional<MarchPlan> got =
        decode_plan(std::string_view(bytes.data(), len), &error);
    EXPECT_FALSE(got.has_value()) << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(error.empty()) << "prefix of " << len << " bytes: no reason";
  }
}

TEST(PlanCodec, EverySingleByteCorruptionFailsTyped) {
  // The FNV-1a checksum covers the whole document, so flipping any byte
  // anywhere — header, section table, payload, the checksum itself —
  // must surface as a typed error.
  std::string bytes = encode_plan(random_plan(5));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(bytes[i] ^ 0xFF);
    std::string error;
    const std::optional<MarchPlan> got = decode_plan(bytes, &error);
    EXPECT_FALSE(got.has_value()) << "corruption at byte " << i << " decoded";
    EXPECT_FALSE(error.empty()) << "corruption at byte " << i << ": no reason";
    bytes[i] = static_cast<char>(bytes[i] ^ 0xFF);
  }
}

TEST(PlanCodec, RejectsForeignBytes) {
  std::string error;
  EXPECT_FALSE(decode_plan("", &error).has_value());
  EXPECT_FALSE(decode_plan("{\"plan\":1}", &error).has_value());
  EXPECT_FALSE(looks_like_binary_plan("{\"plan\":1}"));
  EXPECT_FALSE(looks_like_binary_plan("ANRPLAN"));  // magic cut short
}

// ---------------------------------------------------------------------
// Cross-format: the JSON archive goldens, pushed through the binary
// codec, must come back describing the identical plan.

void check_cross_format(int scenario_id) {
  const std::string json_path = std::string(ANR_GOLDEN_DIR) + "/scenario" +
                                std::to_string(scenario_id) + "_plan.json";
  std::string error;
  std::optional<MarchPlan> from_json = load_plan(json_path, &error);
  ASSERT_TRUE(from_json.has_value()) << json_path << ": " << error;

  const std::string tmp_path =
      "codec_tmp_scenario" + std::to_string(scenario_id) + ".anrp";
  ASSERT_TRUE(save_plan(*from_json, tmp_path, &error)) << error;

  const std::string raw = slurp(tmp_path);
  ASSERT_TRUE(looks_like_binary_plan(raw))
      << ".anrp extension must have picked the binary format";

  std::optional<MarchPlan> from_binary = load_plan(tmp_path, &error);
  std::remove(tmp_path.c_str());
  ASSERT_TRUE(from_binary.has_value()) << error;

  // Equal persisted state <=> equal binary encodings.
  EXPECT_EQ(encode_plan(*from_binary), encode_plan(*from_json))
      << "JSON -> binary -> load diverged for scenario " << scenario_id;
}

TEST(PlanCodecCrossFormat, Scenario1) { check_cross_format(1); }
TEST(PlanCodecCrossFormat, Scenario5) { check_cross_format(5); }
TEST(PlanCodecCrossFormat, Scenario6) { check_cross_format(6); }

// ---------------------------------------------------------------------
// Version pin: the committed binary golden is the scenario-1 archive
// plan pushed through encode_plan. Any byte-layout change diffs here and
// demands a kPlanCodecVersion bump alongside the regenerated golden.

TEST(PlanCodecGolden, Version1LayoutPinned) {
  ASSERT_EQ(kPlanCodecVersion, 1u)
      << "codec version changed: regenerate tests/golden/plan_codec_v1.anrp "
         "and rename it for the new version";

  const std::string json_path =
      std::string(ANR_GOLDEN_DIR) + "/scenario1_plan.json";
  std::string error;
  std::optional<MarchPlan> plan = load_plan(json_path, &error);
  ASSERT_TRUE(plan.has_value()) << json_path << ": " << error;
  const std::string bytes = encode_plan(*plan);

  const std::string golden_path =
      std::string(ANR_GOLDEN_DIR) + "/plan_codec_v1.anrp";
  if (std::getenv("ANR_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good());
    out << bytes;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  const std::string golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path
                               << " (run with ANR_REGEN_GOLDEN=1)";
  EXPECT_EQ(bytes, golden)
      << "binary plan bytes diverged from the version-1 golden";

  // The committed document itself still decodes to the same plan.
  std::optional<MarchPlan> from_golden = decode_plan(golden, &error);
  ASSERT_TRUE(from_golden.has_value()) << error;
  EXPECT_EQ(encode_plan(*from_golden), encode_plan(*plan));
}

}  // namespace
}  // namespace anr
