// Fault schedule, campaign generation, fault model semantics, and the
// JSON round-trip of campaigns.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "fault/fault_model.h"
#include "fault/fault_schedule.h"
#include "io/event_io.h"

namespace anr::fault {
namespace {

FaultEvent make(FaultKind kind, int robot, double t_start, double duration,
                double severity = 0.0) {
  FaultEvent e;
  e.kind = kind;
  e.robot = robot;
  e.t_start = t_start;
  e.duration = duration;
  e.severity = severity;
  return e;
}

TEST(FaultSchedule, ValidateAcceptsWellFormedCampaign) {
  FaultSchedule s;
  s.add(make(FaultKind::kCrash, 0, 1.0, 0.0));
  s.add(make(FaultKind::kStuck, 1, 1.0, 2.0));
  s.add(make(FaultKind::kSlowdown, 2, 1.0, 2.0, 0.5));
  s.add(make(FaultKind::kPositionNoise, 3, 1.0, 2.0, 4.0));
  FaultEvent drop = make(FaultKind::kLinkDropout, -1, 1.0, 2.0);
  drop.link_a = 4;
  drop.link_b = 5;
  s.add(drop);
  s.add(make(FaultKind::kRangeDegradation, -1, 1.0, 2.0, 0.8));
  EXPECT_TRUE(s.validate(6).ok());
}

TEST(FaultSchedule, ValidateRejectsMalformedEvents) {
  {
    FaultSchedule s;
    s.add(make(FaultKind::kCrash, 7, 1.0, 0.0));
    Status st = s.validate(7);  // robot 7 out of range for 7 robots
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("out of range"), std::string::npos);
  }
  {
    FaultSchedule s;
    s.add(make(FaultKind::kStuck, 0, 1.0, -0.5));
    EXPECT_EQ(s.validate(4).code(), StatusCode::kInvalidArgument);
  }
  {
    FaultSchedule s;
    s.add(make(FaultKind::kSlowdown, 0, 1.0, 1.0, 1.0));  // must be < 1
    EXPECT_EQ(s.validate(4).code(), StatusCode::kInvalidArgument);
  }
  {
    FaultSchedule s;
    s.add(make(FaultKind::kRangeDegradation, -1, 1.0, 1.0, 0.0));
    EXPECT_EQ(s.validate(4).code(), StatusCode::kInvalidArgument);
  }
  {
    FaultSchedule s;
    FaultEvent drop = make(FaultKind::kLinkDropout, -1, 1.0, 1.0);
    drop.link_a = 2;
    drop.link_b = 2;  // self-link
    s.add(drop);
    EXPECT_EQ(s.validate(4).code(), StatusCode::kInvalidArgument);
  }
  {
    FaultSchedule s;
    s.add(make(FaultKind::kCrash, 0, -1.0, 0.0));
    EXPECT_EQ(s.validate(4).code(), StatusCode::kInvalidArgument);
  }
}

TEST(FaultSchedule, RandomCampaignIsSeedDeterministic) {
  CampaignOptions opt;
  opt.crashes = 3;
  Rng a(99), b(99), c(100);
  FaultSchedule sa = random_campaign(a, 40, 0.0, 10.0, opt);
  FaultSchedule sb = random_campaign(b, 40, 0.0, 10.0, opt);
  FaultSchedule sc = random_campaign(c, 40, 0.0, 10.0, opt);
  EXPECT_EQ(fault_schedule_to_json(sa).dump(),
            fault_schedule_to_json(sb).dump());
  EXPECT_NE(fault_schedule_to_json(sa).dump(),
            fault_schedule_to_json(sc).dump());
  EXPECT_TRUE(sa.validate(40).ok());
}

TEST(FaultSchedule, RandomCampaignCrashSubjectsAreUnique) {
  CampaignOptions opt;
  opt.crashes = 10;
  Rng rng(7);
  FaultSchedule s = random_campaign(rng, 12, 0.0, 5.0, opt);
  std::set<int> subjects;
  int crashes = 0;
  for (const FaultEvent& e : s.events) {
    if (e.kind != FaultKind::kCrash) continue;
    ++crashes;
    subjects.insert(e.robot);
  }
  EXPECT_EQ(crashes, 10);
  EXPECT_EQ(static_cast<int>(subjects.size()), crashes);
}

TEST(FaultModel, WindowSemantics) {
  FaultSchedule s;
  s.add(make(FaultKind::kCrash, 0, 1.0, 0.0));
  s.add(make(FaultKind::kStuck, 1, 1.0, 2.0));
  s.add(make(FaultKind::kSlowdown, 2, 1.0, 2.0, 0.5));
  s.add(make(FaultKind::kPositionNoise, 3, 1.0, 2.0, 4.0));
  FaultEvent drop = make(FaultKind::kLinkDropout, -1, 1.0, 2.0);
  drop.link_a = 4;
  drop.link_b = 5;
  s.add(drop);
  s.add(make(FaultKind::kRangeDegradation, -1, 1.0, 2.0, 0.8));
  FaultModel model(s, /*noise_seed=*/1);

  // Crash: permanent from t_start on.
  EXPECT_FALSE(model.robot_state(0, 0.5).crashed);
  EXPECT_TRUE(model.robot_state(0, 1.0).crashed);
  EXPECT_TRUE(model.robot_state(0, 100.0).crashed);
  EXPECT_DOUBLE_EQ(model.robot_state(0, 100.0).crash_time, 1.0);

  // Transients: active on [t_start, t_end), cleared after.
  EXPECT_FALSE(model.robot_state(1, 0.5).stuck);
  EXPECT_TRUE(model.robot_state(1, 1.5).stuck);
  EXPECT_FALSE(model.robot_state(1, 3.0).stuck);
  EXPECT_DOUBLE_EQ(model.robot_state(2, 1.5).speed_factor, 0.5);
  EXPECT_DOUBLE_EQ(model.robot_state(2, 3.5).speed_factor, 1.0);
  EXPECT_DOUBLE_EQ(model.robot_state(3, 1.5).noise_sigma, 4.0);
  EXPECT_DOUBLE_EQ(model.robot_state(3, 0.5).noise_sigma, 0.0);
  EXPECT_DOUBLE_EQ(model.range_factor(1.5), 0.8);
  EXPECT_DOUBLE_EQ(model.range_factor(3.5), 1.0);
  EXPECT_TRUE(model.link_dropped(4, 5, 1.5));
  EXPECT_TRUE(model.link_dropped(5, 4, 1.5));
  EXPECT_FALSE(model.link_dropped(4, 5, 3.5));
  ASSERT_EQ(model.dropped_links(1.5).size(), 1u);
  EXPECT_TRUE(model.dropped_links(3.5).empty());

  // A healthy robot reports a clean state.
  RobotFaultState clean = model.robot_state(9, 1.5);
  EXPECT_FALSE(clean.crashed);
  EXPECT_FALSE(clean.stuck);
  EXPECT_DOUBLE_EQ(clean.speed_factor, 1.0);
  EXPECT_DOUBLE_EQ(clean.noise_sigma, 0.0);
}

TEST(FaultModel, ActivatedAndClearedScanWindows) {
  FaultSchedule s;
  s.add(make(FaultKind::kStuck, 0, 1.0, 2.0));
  s.add(make(FaultKind::kCrash, 1, 2.0, 0.0));
  FaultModel model(s, 1);
  EXPECT_EQ(model.activated(0.0, 0.5).size(), 0u);
  EXPECT_EQ(model.activated(0.5, 1.0).size(), 1u);
  EXPECT_EQ(model.activated(1.0, 2.5).size(), 1u);
  // Crashes never clear; the stuck window ends at t = 3.
  EXPECT_EQ(model.cleared(2.5, 3.0).size(), 1u);
  EXPECT_EQ(model.cleared(3.0, 1000.0).size(), 0u);
}

TEST(FaultModel, NoiseIsDeterministicPerSeedRobotAndTick) {
  FaultSchedule empty;
  FaultModel a(empty, 42), b(empty, 42), c(empty, 43);
  Vec2 o1 = a.noise_offset(3, 17, 2.0);
  Vec2 o2 = b.noise_offset(3, 17, 2.0);
  EXPECT_EQ(o1.x, o2.x);
  EXPECT_EQ(o1.y, o2.y);
  // Different tick, robot, or seed decorrelates the draw.
  Vec2 o3 = a.noise_offset(3, 18, 2.0);
  Vec2 o4 = a.noise_offset(4, 17, 2.0);
  Vec2 o5 = c.noise_offset(3, 17, 2.0);
  EXPECT_TRUE(o1.x != o3.x || o1.y != o3.y);
  EXPECT_TRUE(o1.x != o4.x || o1.y != o4.y);
  EXPECT_TRUE(o1.x != o5.x || o1.y != o5.y);
  // Zero sigma is exactly zero offset.
  Vec2 zero = a.noise_offset(3, 17, 0.0);
  EXPECT_EQ(zero.x, 0.0);
  EXPECT_EQ(zero.y, 0.0);
}

TEST(EventIo, FaultScheduleRoundTripsByteIdentical) {
  CampaignOptions opt;
  opt.crashes = 2;
  opt.range_degradations = 1;
  Rng rng(5);
  FaultSchedule s = random_campaign(rng, 20, 0.0, 8.0, opt);
  std::string once = fault_schedule_to_json(s).dump();
  FaultSchedule back = fault_schedule_from_json(fault_schedule_to_json(s));
  EXPECT_EQ(fault_schedule_to_json(back).dump(), once);
  EXPECT_EQ(back.events.size(), s.events.size());
}

TEST(EventIo, RejectsUnknownFaultKind) {
  json::Value v = fault_event_to_json(make(FaultKind::kCrash, 0, 1.0, 0.0));
  v.as_object()["kind"] = json::Value("meteor_strike");
  EXPECT_THROW(fault_event_from_json(v), std::exception);
}

}  // namespace
}  // namespace anr::fault
