// Shared helpers for the libanr test suite.
#pragma once

#include <vector>

#include "common/rng.h"
#include "foi/foi.h"
#include "geom/polygon.h"
#include "geom/vec2.h"

namespace anr::testutil {

/// n uniform points in [lo, hi]^2.
inline std::vector<Vec2> random_points(int n, double lo, double hi,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(lo, hi), rng.uniform(lo, hi)});
  }
  return pts;
}

/// Unit square FoI scaled to side `s`.
inline FieldOfInterest square_foi(double s) {
  return FieldOfInterest(make_rect({0.0, 0.0}, {s, s}));
}

/// Square FoI with a centered circular hole.
inline FieldOfInterest square_with_hole(double s, double hole_r) {
  return FieldOfInterest(make_rect({0.0, 0.0}, {s, s}),
                         {make_circle({s / 2.0, s / 2.0}, hole_r, 32)});
}

/// Triangular-lattice robot deployment clipped to a circle, spacing d.
inline std::vector<Vec2> lattice_disk(Vec2 center, double radius, double d) {
  FieldOfInterest disk{make_circle(center, radius, 64)};
  return disk.lattice_points(d);
}

}  // namespace anr::testutil
