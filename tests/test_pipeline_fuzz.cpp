// Pipeline fuzzing: randomized FoI pairs (seeded blobs with random holes)
// through the full method-(a) pipeline. The invariants that must hold on
// EVERY input: global connectivity, boundary-ring gap <= r_c, final
// positions placeable, determinism of the plan.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "coverage/lloyd.h"
#include "foi/shapes.h"
#include "march/planner.h"
#include "march/transition_sim.h"
#include "net/connectivity.h"

namespace anr {
namespace {

FieldOfInterest random_foi(Rng& rng, bool allow_holes) {
  std::vector<BlobHarmonic> harmonics;
  int terms = rng.uniform_int(2, 4);
  for (int k = 0; k < terms; ++k) {
    harmonics.push_back(BlobHarmonic{rng.uniform_int(2, 5),
                                     rng.uniform(0.03, 0.11),
                                     rng.uniform(0.0, 6.28)});
  }
  Polygon outer = make_blob({0.0, 0.0}, rng.uniform(260.0, 340.0), harmonics);
  std::vector<Polygon> holes;
  if (allow_holes && rng.chance(0.6)) {
    int count = rng.uniform_int(1, 2);
    for (int h = 0; h < count; ++h) {
      Vec2 c{rng.uniform(-80.0, 80.0), rng.uniform(-80.0, 80.0)};
      holes.push_back(make_circle(c, rng.uniform(40.0, 70.0), 28));
    }
    // Reject overlapping holes: regenerate as single-hole.
    if (holes.size() == 2 &&
        distance(holes[0].centroid(), holes[1].centroid()) <
            holes[0].bbox().width() / 2.0 + holes[1].bbox().width() / 2.0 + 20.0) {
      holes.pop_back();
    }
  }
  return with_net_area(FieldOfInterest(std::move(outer), std::move(holes)),
                       rng.uniform(220000.0, 320000.0));
}

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, InvariantsHoldOnRandomFoiPairs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u);
  FieldOfInterest m1 = random_foi(rng, /*allow_holes=*/true);
  FieldOfInterest m2 = random_foi(rng, /*allow_holes=*/true);
  const double r_c = 80.0;
  const int robots = 144;

  auto deploy = optimal_coverage_positions(
      m1, robots, static_cast<std::uint64_t>(GetParam()), uniform_density());
  ASSERT_TRUE(net::is_connected(deploy.positions, r_c));

  PlannerOptions opt;
  opt.mesher.target_grid_points = 700;
  opt.cvt_samples = 10000;
  opt.max_adjust_steps = 25;
  MarchPlanner planner(m1, m2, r_c, opt);
  Vec2 off = m1.centroid() + Vec2{rng.uniform(8.0, 40.0) * r_c,
                                  rng.uniform(-10.0, 10.0) * r_c} -
             m2.centroid();
  MarchPlan plan = planner.plan(deploy.positions, off);

  // Invariant 1: the march never splits the network.
  auto m = simulate_transition(plan.trajectories, r_c, plan.transition_end, 120);
  EXPECT_TRUE(m.global_connectivity) << "seed " << GetParam();

  // Invariant 2: the boundary ring stays a chain.
  EXPECT_LE(plan.max_boundary_gap, r_c + 1e-9) << "seed " << GetParam();

  // Invariant 3: everyone ends up placeable inside M2.
  FieldOfInterest placed = m2.translated(off);
  for (Vec2 p : plan.final_positions) {
    EXPECT_TRUE(placed.contains(p)) << "seed " << GetParam();
  }

  // Invariant 4: link preservation beats the no-structure floor.
  EXPECT_GT(m.stable_link_ratio, 0.3) << "seed " << GetParam();

  // Invariant 5: determinism.
  MarchPlan again = planner.plan(deploy.positions, off);
  EXPECT_EQ(again.rotation_angle, plan.rotation_angle);
  EXPECT_EQ(again.final_positions, plan.final_positions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace anr
