// Unit tests for the intra-plan fork-join layer (common/task_arena.h):
// chunk-boundary arithmetic, exception propagation, nested-call serial
// fallback, and the thread-count resolution chain (set_arena_threads
// override, ANR_THREADS default). Runs under TSan in CI alongside the
// differential determinism suite.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/task_arena.h"

namespace anr {
namespace {

// Restores the arena default after each test so the process-wide knob
// never leaks between cases.
class TaskArenaTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("ANR_THREADS");
    set_arena_threads(0);
  }
};

std::vector<std::array<std::size_t, 3>> record_chunks(std::size_t n,
                                                      std::size_t grain) {
  // Slots indexed by chunk: each chunk writes only its own entry, so the
  // recording itself is race-free at any thread count.
  std::size_t num_chunks = grain == 0 ? n : (n + grain - 1) / grain;
  std::vector<std::array<std::size_t, 3>> got(num_chunks, {0, 0, 0});
  parallel_chunks(n, grain,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                    got[chunk] = {chunk, begin, end};
                  });
  return got;
}

TEST_F(TaskArenaTest, EmptyRangeNeverCallsBody) {
  for (int threads : {1, 4}) {
    set_arena_threads(threads);
    bool called = false;
    parallel_chunks(0, 8, [&](std::size_t, std::size_t, std::size_t) {
      called = true;
    });
    parallel_for(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
  }
}

TEST_F(TaskArenaTest, ChunkBoundariesDependOnlyOnRangeAndGrain) {
  // n = 10, grain = 4 -> chunks [0,4) [4,8) [8,10), ragged tail included,
  // identically at every thread count.
  const std::vector<std::array<std::size_t, 3>> want = {
      {0, 0, 4}, {1, 4, 8}, {2, 8, 10}};
  for (int threads : {1, 2, 8}) {
    set_arena_threads(threads);
    EXPECT_EQ(record_chunks(10, 4), want) << "threads=" << threads;
  }
}

TEST_F(TaskArenaTest, SingleElementRangeIsOneChunk) {
  set_arena_threads(8);
  const std::vector<std::array<std::size_t, 3>> want = {{0, 0, 1}};
  EXPECT_EQ(record_chunks(1, 4), want);
  EXPECT_EQ(record_chunks(1, 1), want);
}

TEST_F(TaskArenaTest, FewerElementsThanWorkersStillCoversEverything) {
  set_arena_threads(8);
  // 3 single-element chunks across 8 configured threads.
  const std::vector<std::array<std::size_t, 3>> want = {
      {0, 0, 1}, {1, 1, 2}, {2, 2, 3}};
  EXPECT_EQ(record_chunks(3, 1), want);
}

TEST_F(TaskArenaTest, ZeroGrainIsTreatedAsOne) {
  set_arena_threads(2);
  const std::vector<std::array<std::size_t, 3>> want = {{0, 0, 1}, {1, 1, 2}};
  EXPECT_EQ(record_chunks(2, 0), want);
}

TEST_F(TaskArenaTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 3, 8}) {
    set_arena_threads(threads);
    const std::size_t n = 1000;
    std::vector<int> visits(n, 0);
    parallel_for(n, [&](std::size_t i) { ++visits[i]; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
              static_cast<int>(n))
        << "threads=" << threads;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i], 1) << i;
  }
}

TEST_F(TaskArenaTest, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    set_arena_threads(threads);
    EXPECT_THROW(
        parallel_chunks(100, 10,
                        [&](std::size_t chunk, std::size_t, std::size_t) {
                          if (chunk == 3) throw std::runtime_error("boom");
                        }),
        std::runtime_error);
  }
}

TEST_F(TaskArenaTest, LowestChunkExceptionWins) {
  // Every chunk throws its own index; the caller must see chunk 0's
  // exception — the one serial execution would have thrown first —
  // regardless of which worker finished when.
  for (int threads : {1, 4}) {
    set_arena_threads(threads);
    try {
      parallel_chunks(64, 8,
                      [&](std::size_t chunk, std::size_t, std::size_t) {
                        throw std::runtime_error("chunk " +
                                                 std::to_string(chunk));
                      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 0") << "threads=" << threads;
    }
  }
}

TEST_F(TaskArenaTest, ArenaKeepsWorkingAfterAnException) {
  set_arena_threads(4);
  EXPECT_THROW(parallel_for(100, [](std::size_t) {
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  std::atomic<int> count{0};
  parallel_for(100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST_F(TaskArenaTest, NestedCallsFallBackToSerial) {
  set_arena_threads(4);
  // Force a genuinely parallel outer region (many chunks); inner regions
  // must report in_parallel_region() and run inline.
  std::vector<char> inner_was_nested(8, 0);
  std::vector<char> inner_covered(8, 0);
  parallel_chunks(8, 1, [&](std::size_t chunk, std::size_t, std::size_t) {
    inner_was_nested[chunk] = in_parallel_region() ? 1 : 0;
    std::vector<int> seen(10, 0);
    parallel_chunks(10, 2, [&](std::size_t, std::size_t b, std::size_t e) {
      EXPECT_TRUE(in_parallel_region());
      for (std::size_t i = b; i < e; ++i) ++seen[i];
    });
    inner_covered[chunk] =
        std::accumulate(seen.begin(), seen.end(), 0) == 10 ? 1 : 0;
  });
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(inner_was_nested[c], 1) << c;
    EXPECT_EQ(inner_covered[c], 1) << c;
  }
  EXPECT_FALSE(in_parallel_region());
}

TEST_F(TaskArenaTest, OneThreadForcesSerialInline) {
  set_arena_threads(1);
  EXPECT_EQ(arena_threads(), 1);
  // Serial execution is observable through strict chunk ordering: each
  // chunk sees every lower-indexed chunk already finished.
  std::vector<int> order;
  parallel_chunks(6, 1, [&](std::size_t chunk, std::size_t, std::size_t) {
    order.push_back(static_cast<int>(chunk));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST_F(TaskArenaTest, AnrThreadsEnvironmentSetsTheDefault) {
  setenv("ANR_THREADS", "1", 1);
  set_arena_threads(0);  // re-resolve the default from the environment
  EXPECT_EQ(arena_threads(), 1);

  setenv("ANR_THREADS", "3", 1);
  set_arena_threads(0);
  EXPECT_EQ(arena_threads(), 3);

  // Garbage is ignored in favor of hardware concurrency (>= 1).
  setenv("ANR_THREADS", "not-a-number", 1);
  set_arena_threads(0);
  EXPECT_GE(arena_threads(), 1);
}

TEST_F(TaskArenaTest, SetThreadsClampsToAtLeastOne) {
  set_arena_threads(2);
  EXPECT_EQ(arena_threads(), 2);
  set_arena_threads(-5);  // <= 0 resets to the default
  EXPECT_GE(arena_threads(), 1);
}

TEST_F(TaskArenaTest, ParallelSumMatchesSerialWithFixedChunkMerge) {
  // The reduction recipe every parallel caller follows: per-chunk
  // partials merged in chunk order must be bit-identical at any thread
  // count (and to the serial inline execution).
  const std::size_t n = 10000, grain = 512;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto chunked_sum = [&]() {
    std::size_t chunks = (n + grain - 1) / grain;
    std::vector<double> partial(chunks, 0.0);
    parallel_chunks(n, grain,
                    [&](std::size_t c, std::size_t b, std::size_t e) {
                      double s = 0.0;
                      for (std::size_t i = b; i < e; ++i) s += xs[i];
                      partial[c] = s;
                    });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  set_arena_threads(1);
  const double serial = chunked_sum();
  for (int threads : {2, 4, 8}) {
    set_arena_threads(threads);
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(chunked_sum(), serial) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace anr
