// End-to-end pipeline: the paper's central claims as assertions.
//   - our methods always keep global connectivity (Table I);
//   - method (a) preserves far more links than Hungarian (Figs. 3-5);
//   - distance stays close to the Hungarian lower bound;
//   - determinism, hole handling, distributed mode.
#include <gtest/gtest.h>

#include "baselines/hungarian_march.h"
#include "common/check.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/planner.h"
#include "march/transition_sim.h"

namespace anr {
namespace {

std::vector<Vec2> deployment(const Scenario& sc) {
  return optimal_coverage_positions(sc.m1, sc.num_robots, 1, uniform_density())
      .positions;
}

Vec2 offset_for(const Scenario& sc, double sep_cr) {
  return sc.m1.centroid() + Vec2{sep_cr * sc.comm_range, 0.0} -
         sc.m2_shape.centroid();
}

// One full-method plan per scenario: this is the expensive battery, so
// use a modest grid and adjustment budget.
PlannerOptions fast_options() {
  PlannerOptions opt;
  opt.mesher.target_grid_points = 700;
  opt.cvt_samples = 12000;
  opt.max_adjust_steps = 25;
  return opt;
}

class ScenarioPipeline : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioPipeline, MethodAKeepsConnectivityAndLinks) {
  Scenario sc = scenario(GetParam());
  auto deploy = deployment(sc);
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, fast_options());
  MarchPlan plan = planner.plan(deploy, offset_for(sc, 20.0));
  auto m = simulate_transition(plan.trajectories, sc.comm_range,
                               plan.transition_end, 120);

  EXPECT_TRUE(m.global_connectivity) << "scenario " << GetParam();
  EXPECT_GT(m.stable_link_ratio, 0.5) << "scenario " << GetParam();
  // The boundary ring must stay a connected chain at the destinations —
  // the premise of the paper's global-connectivity argument.
  EXPECT_LE(plan.max_boundary_gap, sc.comm_range) << "scenario " << GetParam();

  // Final positions live inside M2.
  FieldOfInterest m2 = sc.m2_shape.translated(offset_for(sc, 20.0));
  int outside = 0;
  for (Vec2 p : plan.final_positions) {
    if (!m2.contains(p)) ++outside;
  }
  EXPECT_EQ(outside, 0) << "scenario " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioPipeline,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(Planner, MethodAOutLinksHungarianByWideMargin) {
  Scenario sc = scenario(1);
  auto deploy = deployment(sc);
  MarchPlanner ours(sc.m1, sc.m2_shape, sc.comm_range, fast_options());
  HungarianMarchPlanner hungarian(sc.m1, sc.m2_shape, sc.comm_range,
                                  sc.num_robots);
  Vec2 off = offset_for(sc, 20.0);
  auto mo = simulate_transition(ours.plan(deploy, off).trajectories,
                                sc.comm_range, 1.0, 100);
  auto mh = simulate_transition(hungarian.plan(deploy, off).trajectories,
                                sc.comm_range, 1.0, 100);
  EXPECT_GT(mo.stable_link_ratio, mh.stable_link_ratio + 0.3);
}

TEST(Planner, DistanceNearHungarianLowerBound) {
  Scenario sc = scenario(1);
  auto deploy = deployment(sc);
  MarchPlanner ours(sc.m1, sc.m2_shape, sc.comm_range, fast_options());
  HungarianMarchPlanner hungarian(sc.m1, sc.m2_shape, sc.comm_range,
                                  sc.num_robots);
  Vec2 off = offset_for(sc, 50.0);
  auto mo = simulate_transition(ours.plan(deploy, off).trajectories,
                                sc.comm_range, 1.0, 60);
  auto mh = simulate_transition(hungarian.plan(deploy, off).trajectories,
                                sc.comm_range, 1.0, 60);
  // At 50 communication-range separations the overhead is a few percent.
  EXPECT_LT(mo.total_distance, mh.total_distance * 1.10);
}

TEST(Planner, MethodBTradesLinksForDistance) {
  Scenario sc = scenario(2);
  auto deploy = deployment(sc);
  PlannerOptions oa = fast_options();
  PlannerOptions ob = fast_options();
  ob.objective = MarchObjective::kMinDistance;
  MarchPlanner pa(sc.m1, sc.m2_shape, sc.comm_range, oa);
  MarchPlanner pb(sc.m1, sc.m2_shape, sc.comm_range, ob);
  Vec2 off = offset_for(sc, 20.0);
  MarchPlan plana = pa.plan(deploy, off);
  MarchPlan planb = pb.plan(deploy, off);
  // Method (b) optimizes displacement: its mapped displacement sum must
  // not exceed method (a)'s.
  double da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < deploy.size(); ++i) {
    da += distance(deploy[i], plana.mapped_targets[i]);
    db += distance(deploy[i], planb.mapped_targets[i]);
  }
  EXPECT_LE(db, da + 1e-6);
  // And both maintain global connectivity.
  auto ma = simulate_transition(plana.trajectories, sc.comm_range, 1.0, 80);
  auto mb = simulate_transition(planb.trajectories, sc.comm_range, 1.0, 80);
  EXPECT_TRUE(ma.global_connectivity);
  EXPECT_TRUE(mb.global_connectivity);
}

TEST(Planner, Deterministic) {
  Scenario sc = scenario(3);
  auto deploy = deployment(sc);
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, fast_options());
  Vec2 off = offset_for(sc, 10.0);
  MarchPlan a = planner.plan(deploy, off);
  MarchPlan b = planner.plan(deploy, off);
  ASSERT_EQ(a.final_positions.size(), b.final_positions.size());
  for (std::size_t i = 0; i < a.final_positions.size(); ++i) {
    EXPECT_EQ(a.final_positions[i], b.final_positions[i]);
  }
  EXPECT_EQ(a.rotation_angle, b.rotation_angle);
}

TEST(Planner, SeparationInvarianceOfMethodARotation) {
  // The stable-link objective only depends on relative geometry, so the
  // chosen rotation must be identical across separations.
  Scenario sc = scenario(1);
  auto deploy = deployment(sc);
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, fast_options());
  MarchPlan near = planner.plan(deploy, offset_for(sc, 10.0));
  MarchPlan far = planner.plan(deploy, offset_for(sc, 100.0));
  EXPECT_DOUBLE_EQ(near.rotation_angle, far.rotation_angle);
  EXPECT_DOUBLE_EQ(near.predicted_link_ratio, far.predicted_link_ratio);
}

TEST(Planner, HoleTargetsAreSnappedOutOfHoles) {
  Scenario sc = scenario(4);  // big convex hole
  auto deploy = deployment(sc);
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, fast_options());
  Vec2 off = offset_for(sc, 20.0);
  MarchPlan plan = planner.plan(deploy, off);
  EXPECT_GT(plan.snapped_targets, 0);  // the hole is large: some must snap
  FieldOfInterest m2 = sc.m2_shape.translated(off);
  for (std::size_t i = 0; i < plan.mapped_targets.size(); ++i) {
    // Repaired robots may sit slightly off-FoI (parallel march); everyone
    // else's mapped target must be placeable.
    if (plan.repaired_robots == 0) {
      EXPECT_TRUE(m2.contains(plan.mapped_targets[i])) << i;
    }
  }
}

TEST(Planner, DistributedModeMatchesCentralizedClosely) {
  Scenario sc = scenario(1);
  auto deploy = deployment(sc);
  PlannerOptions central = fast_options();
  PlannerOptions dist = fast_options();
  dist.distributed = true;
  MarchPlanner pc(sc.m1, sc.m2_shape, sc.comm_range, central);
  MarchPlanner pd(sc.m1, sc.m2_shape, sc.comm_range, dist);
  Vec2 off = offset_for(sc, 20.0);
  MarchPlan a = pc.plan(deploy, off);
  MarchPlan b = pd.plan(deploy, off);
  EXPECT_GT(b.protocol_messages, 0u);
  auto ma = simulate_transition(a.trajectories, sc.comm_range, 1.0, 60);
  auto mb = simulate_transition(b.trajectories, sc.comm_range, 1.0, 60);
  EXPECT_TRUE(mb.global_connectivity);
  EXPECT_NEAR(ma.stable_link_ratio, mb.stable_link_ratio, 0.15);
}

TEST(Planner, ExhaustiveRotationAtLeastAsGoodAsPaperSearch) {
  Scenario sc = scenario(2);
  auto deploy = deployment(sc);
  PlannerOptions shallow = fast_options();
  PlannerOptions full = fast_options();
  full.exhaustive_rotation = true;
  MarchPlanner ps(sc.m1, sc.m2_shape, sc.comm_range, shallow);
  MarchPlanner pf(sc.m1, sc.m2_shape, sc.comm_range, full);
  Vec2 off = offset_for(sc, 20.0);
  MarchPlan a = ps.plan(deploy, off);
  MarchPlan b = pf.plan(deploy, off);
  EXPECT_GE(b.rotation_objective, a.rotation_objective - 1e-12);
}

TEST(Planner, RejectsDisconnectedDeployment) {
  Scenario sc = scenario(1);
  std::vector<Vec2> bad{{0, 0}, {1, 0}, {5000, 5000}, {5001, 5000}};
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, fast_options());
  EXPECT_THROW(planner.plan(bad, {0, 0}), ContractViolation);
}

}  // namespace
}  // namespace anr
