// Observability primitives: counter/gauge/histogram semantics, log-bucket
// boundaries, registry identity and snapshots, span nesting and ring
// bounds, exposition formats, and the concurrent-increment contract
// (this binary is part of the TSan suite — see scripts/tsan_check.sh).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "common/check.h"
#include "io/json.h"
#include "io/metrics_io.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace anr {
namespace {

// --- Counter / Gauge --------------------------------------------------------

TEST(Counter, IncrementsByOneAndByDelta) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetOverwritesAndAddAccumulates) {
  obs::Gauge g;
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set(0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// --- Histogram bucketing ----------------------------------------------------

TEST(Histogram, DefaultSpecCoversMicrosecondsToMinutes) {
  obs::Histogram h;
  const auto& bounds = h.upper_bounds();
  ASSERT_EQ(static_cast<int>(bounds.size()), h.spec().buckets);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_GT(bounds.back(), 100.0);  // ~268 s at factor 2
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
  }
}

TEST(Histogram, BoundariesAreUpperInclusive) {
  obs::HistogramSpec spec;
  spec.min = 1.0;
  spec.factor = 2.0;
  spec.buckets = 4;  // bounds 1, 2, 4, 8 (+Inf extra)
  obs::Histogram h(spec);

  h.observe(0.5);   // <= min          -> bucket 0
  h.observe(1.0);   // == min          -> bucket 0
  h.observe(2.0);   // == bound        -> bucket 1 (upper-inclusive)
  h.observe(2.001); // just above      -> bucket 2
  h.observe(8.0);   // last finite     -> bucket 3
  h.observe(9.0);   // beyond          -> +Inf bucket

  std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[4], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 2.0 + 2.001 + 8.0 + 9.0);
}

TEST(Histogram, NonPositiveAndTinyValuesLandInBucketZero) {
  obs::Histogram h;
  h.observe(0.0);
  h.observe(-3.0);
  h.observe(1e-9);
  std::vector<std::uint64_t> counts = h.bucket_counts();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, BucketTotalsMatchObservationCount) {
  obs::Histogram h;
  int n = 0;
  for (double v = 1e-7; v < 1e3; v *= 1.7) {
    h.observe(v);
    ++n;
  }
  std::vector<std::uint64_t> counts = h.bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  EXPECT_EQ(total, static_cast<std::uint64_t>(n));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(n));
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, SameNameAndLabelsResolveToSameHandle) {
  obs::Registry reg;
  obs::Counter* a = reg.counter("anr_test_total", {{"k", "v"}}, "help");
  obs::Counter* b = reg.counter("anr_test_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  a->inc();
  EXPECT_EQ(b->value(), 1u);
}

TEST(Registry, LabelOrderIsCanonicalized) {
  obs::Registry reg;
  obs::Counter* a = reg.counter("anr_t", {{"a", "1"}, {"b", "2"}});
  obs::Counter* b = reg.counter("anr_t", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(Registry, DistinctLabelsGetDistinctSeries) {
  obs::Registry reg;
  obs::Counter* a = reg.counter("anr_t", {{"stage", "x"}});
  obs::Counter* b = reg.counter("anr_t", {{"stage", "y"}});
  EXPECT_NE(a, b);
}

TEST(Registry, TypeConflictThrows) {
  obs::Registry reg;
  reg.counter("anr_conflict");
  EXPECT_THROW(reg.gauge("anr_conflict"), ContractViolation);
  EXPECT_THROW(reg.histogram("anr_conflict"), ContractViolation);
}

TEST(Registry, SnapshotPreservesRegistrationOrderAndValues) {
  obs::Registry reg;
  reg.counter("anr_c")->inc(3);
  reg.gauge("anr_g")->set(2.5);
  reg.histogram("anr_h")->observe(0.25);
  std::vector<obs::MetricSnapshot> snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "anr_c");
  EXPECT_EQ(snaps[0].type, obs::MetricType::kCounter);
  EXPECT_DOUBLE_EQ(snaps[0].value, 3.0);
  EXPECT_EQ(snaps[1].name, "anr_g");
  EXPECT_DOUBLE_EQ(snaps[1].value, 2.5);
  EXPECT_EQ(snaps[2].name, "anr_h");
  EXPECT_EQ(snaps[2].count, 1u);
  EXPECT_DOUBLE_EQ(snaps[2].sum, 0.25);
}

TEST(NullRegistry, HandsOutNullHandlesEverywhere) {
  obs::NullRegistry null;
  EXPECT_FALSE(null.enabled());
  EXPECT_EQ(null.counter("anr_x"), nullptr);
  EXPECT_EQ(null.gauge("anr_x"), nullptr);
  EXPECT_EQ(null.histogram("anr_x"), nullptr);
  EXPECT_EQ(null.spans(), nullptr);
  EXPECT_TRUE(null.snapshot().empty());
  // The record helpers must be safe against the null handles.
  obs::inc(nullptr);
  obs::set(nullptr, 1.0);
  obs::add(nullptr, 1.0);
  obs::observe(nullptr, 1.0);
}

// --- Spans ------------------------------------------------------------------

TEST(Span, NestedSpansRecordDepthAndCompletionOrder) {
  obs::SpanRing ring(16);
  {
    obs::Span outer(&ring, "outer");
    {
      obs::Span inner(&ring, "inner");
    }
  }
  std::vector<obs::SpanRecord> recs = ring.snapshot();
  ASSERT_EQ(recs.size(), 2u);
  // Inner closes first, so it appears first (lower seq) at depth 1.
  EXPECT_STREQ(recs[0].name, "inner");
  EXPECT_EQ(recs[0].depth, 1);
  EXPECT_STREQ(recs[1].name, "outer");
  EXPECT_EQ(recs[1].depth, 0);
  EXPECT_LT(recs[0].seq, recs[1].seq);
  EXPECT_GE(recs[1].dur_s, recs[0].dur_s);
}

TEST(Span, FinishIsIdempotent) {
  obs::SpanRing ring(4);
  obs::Span s(&ring, "once");
  s.finish();
  s.finish();
  EXPECT_EQ(ring.snapshot().size(), 1u);
}

TEST(Span, FeedsDurationIntoHistogram) {
  obs::Histogram h;
  {
    obs::Span s(nullptr, "hist_only", &h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(Span, InertWhenBothTargetsNull) {
  obs::Span s(nullptr, "noop");
  s.finish();  // must not crash or record anywhere
}

TEST(SpanRing, BoundedOldestOverwritten) {
  obs::SpanRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.push("s", static_cast<double>(i), 0.0, 0);
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  std::vector<obs::SpanRecord> recs = ring.snapshot();
  ASSERT_EQ(recs.size(), 4u);
  // Oldest-first: the survivors are pushes 6..9.
  EXPECT_DOUBLE_EQ(recs.front().start_s, 6.0);
  EXPECT_DOUBLE_EQ(recs.back().start_s, 9.0);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].seq, recs[i - 1].seq + 1);
  }
}

// --- Exposition -------------------------------------------------------------

TEST(Exposition, TextFormatCarriesHelpTypeAndCumulativeBuckets) {
  obs::Registry reg;
  reg.counter("anr_jobs_total", {{"status", "ok"}}, "jobs by status")->inc(3);
  reg.counter("anr_jobs_total", {{"status", "error"}})->inc(1);
  reg.gauge("anr_depth", {}, "queue depth")->set(2.0);
  obs::HistogramSpec spec;
  spec.min = 1.0;
  spec.factor = 2.0;
  spec.buckets = 2;  // bounds 1, 2
  obs::Histogram* h = reg.histogram("anr_lat_seconds", {}, "latency", spec);
  h->observe(0.5);
  h->observe(1.5);
  h->observe(99.0);

  std::string text = metrics_text_exposition(reg);
  EXPECT_NE(text.find("# HELP anr_jobs_total jobs by status"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE anr_jobs_total counter"), std::string::npos);
  EXPECT_NE(text.find("anr_jobs_total{status=\"ok\"} 3"), std::string::npos);
  EXPECT_NE(text.find("anr_jobs_total{status=\"error\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE anr_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("anr_depth 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE anr_lat_seconds histogram"), std::string::npos);
  // Cumulative le buckets: 1 at le=1, 2 at le=2, 3 at +Inf.
  EXPECT_NE(text.find("anr_lat_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("anr_lat_seconds_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("anr_lat_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("anr_lat_seconds_sum 101"), std::string::npos);
  EXPECT_NE(text.find("anr_lat_seconds_count 3"), std::string::npos);
  // One HELP/TYPE header per family, not per sample.
  std::size_t first = text.find("# TYPE anr_jobs_total");
  std::size_t second = text.find("# TYPE anr_jobs_total", first + 1);
  EXPECT_EQ(second, std::string::npos);
}

TEST(Exposition, LabelValuesAreEscaped) {
  obs::Registry reg;
  reg.counter("anr_esc", {{"path", "a\\b\"c\nd"}})->inc();
  std::string text = metrics_text_exposition(reg);
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
}

TEST(Exposition, NdjsonLinesParseAndMatchSnapshot) {
  obs::Registry reg;
  reg.counter("anr_a")->inc(5);
  obs::HistogramSpec spec;
  spec.min = 1.0;
  spec.factor = 2.0;
  spec.buckets = 2;
  reg.histogram("anr_b", {}, {}, spec)->observe(1.5);

  std::ostringstream out;
  write_metrics_ndjson(reg, out);
  std::istringstream in(out.str());
  std::string line;
  std::vector<json::Value> rows;
  while (std::getline(in, line)) rows.push_back(json::parse(line));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("name").as_string(), "anr_a");
  EXPECT_EQ(rows[0].at("type").as_string(), "counter");
  EXPECT_DOUBLE_EQ(rows[0].at("value").as_number(), 5.0);
  EXPECT_EQ(rows[1].at("type").as_string(), "histogram");
  const auto& buckets = rows[1].at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 3u);  // two finite + +Inf, cumulative
  EXPECT_DOUBLE_EQ(buckets.back().at("count").as_number(), 1.0);
}

TEST(Exposition, SpansSerializeOldestFirst) {
  obs::Registry reg;
  {
    obs::Span a(reg.spans(), "alpha");
  }
  {
    obs::Span b(reg.spans(), "beta");
  }
  json::Value v = spans_to_json(reg);
  const auto& arr = v.as_array();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr[0].at("name").as_string(), "alpha");
  EXPECT_EQ(arr[1].at("name").as_string(), "beta");
}

// --- Concurrency (exercised under TSan in CI) -------------------------------

TEST(Concurrency, ParallelCounterIncrementsAreExact) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&reg] {
      // Resolve inside the thread: registration must also be thread-safe.
      obs::Counter* c = reg.counter("anr_par_total", {}, "parallel");
      for (int k = 0; k < kPerThread; ++k) c->inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("anr_par_total")->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Concurrency, ParallelHistogramObservationsAreExact) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&h] {
      for (int k = 0; k < kPerThread; ++k) h.observe(1e-3);
    });
  }
  for (std::thread& t : threads) t.join();
  const std::uint64_t expect =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), expect);
  EXPECT_NEAR(h.sum(), 1e-3 * static_cast<double>(expect), 1e-6);
  std::vector<std::uint64_t> counts = h.bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  EXPECT_EQ(total, expect);
}

TEST(Concurrency, ParallelGaugeAddsAreExact) {
  obs::Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&g] {
      for (int k = 0; k < kPerThread; ++k) g.add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(),
                   static_cast<double>(kThreads) * kPerThread);
}

TEST(Concurrency, ParallelSpanPushesStayBounded) {
  obs::SpanRing ring(64);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&ring] {
      for (int k = 0; k < 5000; ++k) {
        obs::Span s(&ring, "worker");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ring.total_recorded(), 20000u);
  EXPECT_EQ(ring.snapshot().size(), 64u);
}

}  // namespace
}  // namespace anr
