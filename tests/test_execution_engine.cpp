// Execution engine: fault-free fidelity, seeded-campaign determinism, and
// the recovery-policy contrast the fault subsystem exists to demonstrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "coverage/lloyd.h"
#include "fault/fault_schedule.h"
#include "foi/scenario.h"
#include "io/event_io.h"
#include "march/execution_engine.h"
#include "march/planner.h"

namespace anr {
namespace {

struct ExecFixture {
  Scenario sc;
  Vec2 offset;
  std::unique_ptr<MarchPlanner> planner;
  MarchPlan plan;
  FieldOfInterest m2_world;
};

// Plans are expensive; build one per scenario for the whole binary.
const ExecFixture& fixture(int id) {
  static std::map<int, std::unique_ptr<ExecFixture>> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    auto fx = std::make_unique<ExecFixture>();
    fx->sc = scenario(id);
    auto deploy = optimal_coverage_positions(fx->sc.m1, 72, /*seed=*/1,
                                             uniform_density())
                      .positions;
    fx->offset = fx->sc.m1.centroid() + Vec2{12.0 * fx->sc.comm_range, 0.0} -
                 fx->sc.m2_shape.centroid();
    PlannerOptions opt;
    opt.mesher.target_grid_points = 350;
    opt.cvt_samples = 4000;
    opt.max_adjust_steps = 5;
    fx->planner = std::make_unique<MarchPlanner>(fx->sc.m1, fx->sc.m2_shape,
                                                 fx->sc.comm_range, opt);
    fx->plan = fx->planner->plan(deploy, fx->offset);
    fx->m2_world = fx->sc.m2_shape.translated(fx->offset);
    it = cache.emplace(id, std::move(fx)).first;
  }
  return *it->second;
}

// The drill campaign: a seeded random mix plus one long mid-transition
// actuator jam that recovery must bridge and whose absence must break.
fault::FaultSchedule drill_campaign(const ExecFixture& fx, std::uint64_t seed) {
  Rng rng(seed);
  fault::CampaignOptions co;
  co.crashes = 2;
  fault::FaultSchedule schedule =
      fault::random_campaign(rng, 72, 0.0, fx.plan.total_time, co);
  fault::FaultEvent jam;
  jam.kind = fault::FaultKind::kStuck;
  jam.robot = 7;
  jam.t_start = 0.2 * fx.plan.total_time;
  jam.duration = 0.6 * fx.plan.total_time;
  schedule.add(jam);
  schedule.normalize();
  return schedule;
}

TEST(ExecutionEngine, FaultFreeRunMatchesThePlan) {
  const ExecFixture& fx = fixture(1);
  ExecutionEngine engine(fx.sc.comm_range);
  ExecutionReport rep = engine.run(fx.plan, {}, fx.m2_world);

  EXPECT_EQ(rep.num_robots, 72);
  EXPECT_EQ(static_cast<int>(rep.survivors.size()), 72);
  EXPECT_DOUBLE_EQ(rep.survival_rate, 1.0);
  EXPECT_TRUE(rep.crashed.empty());
  EXPECT_TRUE(rep.connected_throughout);
  EXPECT_TRUE(rep.final_connected);
  EXPECT_FALSE(rep.degraded);
  EXPECT_EQ(rep.pauses, 0);
  EXPECT_EQ(rep.recoveries, 0);
  // Tick-sampled chords can only undershoot the exact trajectory length.
  EXPECT_LE(rep.executed_distance, rep.planned_distance * (1.0 + 1e-9));
  EXPECT_GE(rep.executed_distance, rep.planned_distance * 0.95);
  // The only event in a clean run is completion.
  ASSERT_EQ(rep.events.size(), 1u);
  EXPECT_EQ(rep.events.front().type, ExecEventType::kCompleted);
}

TEST(ExecutionEngine, SeededCampaignIsByteDeterministic) {
  for (int id : {1, 5}) {
    const ExecFixture& fx = fixture(id);
    fault::FaultSchedule schedule = drill_campaign(fx, 42u ^ id);
    ExecutionEngine engine(fx.sc.comm_range);
    ExecutionReport a = engine.run(fx.plan, schedule, fx.m2_world);
    ExecutionReport b =
        ExecutionEngine(fx.sc.comm_range).run(fx.plan, schedule, fx.m2_world);
    EXPECT_EQ(events_to_json(a.events).dump(), events_to_json(b.events).dump())
        << "scenario " << id;
    EXPECT_EQ(execution_report_to_json(a).dump(),
              execution_report_to_json(b).dump())
        << "scenario " << id;

    // A different seed reshuffles the campaign and the log with it.
    fault::FaultSchedule other = drill_campaign(fx, 43u ^ id);
    ExecutionReport c =
        ExecutionEngine(fx.sc.comm_range).run(fx.plan, other, fx.m2_world);
    EXPECT_NE(events_to_json(a.events).dump(), events_to_json(c.events).dump())
        << "scenario " << id;
  }
}

TEST(ExecutionEngine, RecoveryKeepsConnectivityThatItsAbsenceLoses) {
  for (int id : {1, 5}) {
    const ExecFixture& fx = fixture(id);
    fault::FaultSchedule schedule = drill_campaign(fx, 42u ^ id);

    ExecutionOptions with;
    with.enable_recovery = true;
    ExecutionReport on =
        ExecutionEngine(fx.sc.comm_range, with).run(fx.plan, schedule,
                                                    fx.m2_world);
    EXPECT_TRUE(on.connected_throughout) << "scenario " << id;
    EXPECT_TRUE(on.final_connected) << "scenario " << id;
    EXPECT_FALSE(on.degraded) << "scenario " << id;
    EXPECT_GE(on.pauses, 1) << "scenario " << id;
    EXPECT_GE(on.recoveries, 1) << "scenario " << id;
    // Every permanent crash was detected and absorbed: no crashed robot
    // survives, and crashed + survivors partition the swarm.
    EXPECT_EQ(static_cast<int>(on.crashed.size()), 2) << "scenario " << id;
    std::set<int> survivors(on.survivors.begin(), on.survivors.end());
    for (int r : on.crashed) {
      EXPECT_FALSE(survivors.count(r)) << "scenario " << id << " robot " << r;
    }
    EXPECT_EQ(on.crashed.size() + on.survivors.size(), 72u)
        << "scenario " << id;

    ExecutionOptions without;
    without.enable_recovery = false;
    ExecutionReport off =
        ExecutionEngine(fx.sc.comm_range, without).run(fx.plan, schedule,
                                                       fx.m2_world);
    EXPECT_FALSE(off.connected_throughout) << "scenario " << id;
    EXPECT_GE(off.first_disconnect_time, 0.0) << "scenario " << id;
    EXPECT_EQ(off.pauses, 0) << "scenario " << id;
    EXPECT_EQ(off.recoveries, 0) << "scenario " << id;
  }
}

TEST(ExecutionEngine, StuckRobotPausesTheMarchAndCatchesUp) {
  const ExecFixture& fx = fixture(1);
  fault::FaultSchedule schedule;
  fault::FaultEvent jam;
  jam.kind = fault::FaultKind::kStuck;
  jam.robot = 7;
  jam.t_start = 0.2 * fx.plan.total_time;
  jam.duration = 0.6 * fx.plan.total_time;
  schedule.add(jam);

  ExecutionReport rep =
      ExecutionEngine(fx.sc.comm_range).run(fx.plan, schedule, fx.m2_world);
  EXPECT_TRUE(rep.connected_throughout);
  EXPECT_TRUE(rep.final_connected);
  EXPECT_FALSE(rep.degraded);
  EXPECT_GE(rep.pauses, 1);
  EXPECT_EQ(rep.recoveries, 0);
  EXPECT_DOUBLE_EQ(rep.survival_rate, 1.0);
  // The pause stretches wall time past the nominal horizon.
  EXPECT_GT(rep.end_time, fx.plan.total_time);
  bool saw_pause_end = false;
  for (const ExecutionEvent& e : rep.events) {
    if (e.type == ExecEventType::kPauseEnded) saw_pause_end = true;
  }
  EXPECT_TRUE(saw_pause_end);
}

TEST(ExecutionEngine, MissionChangeRetargetsMidMarch) {
  const ExecFixture& fx = fixture(1);
  Vec2 new_offset = fx.offset + Vec2{0.0, 3.0 * fx.sc.comm_range};
  // Recovery off: a replanned mid-march leg carries no connectivity
  // guarantee (test_resilience covers when it does), and this test is
  // about the splice mechanics, not the guard.
  ExecutionOptions opt;
  opt.enable_recovery = false;
  MissionChange mc;
  mc.t = 0.5 * fx.plan.total_time;
  mc.planner = fx.planner.get();
  mc.m2_offset = new_offset;
  opt.mission_changes.push_back(mc);

  ExecutionReport rep = ExecutionEngine(fx.sc.comm_range, opt)
                            .run(fx.plan, {}, fx.m2_world);
  EXPECT_EQ(rep.retargets, 1);
  EXPECT_FALSE(rep.degraded);
  EXPECT_DOUBLE_EQ(rep.survival_rate, 1.0);
  bool saw_retarget = false, saw_completed = false;
  for (const ExecutionEvent& e : rep.events) {
    if (e.type == ExecEventType::kRetargeted) saw_retarget = true;
    if (e.type == ExecEventType::kCompleted) saw_completed = true;
  }
  EXPECT_TRUE(saw_retarget);
  EXPECT_TRUE(saw_completed);
  // The second leg extends the mission past the original horizon...
  EXPECT_GT(rep.end_time, fx.plan.total_time);
  // ...and the swarm ends near the new target, not the original one.
  Vec2 centroid{0.0, 0.0};
  for (const Vec2& p : rep.final_positions) centroid += p;
  centroid = centroid * (1.0 / static_cast<double>(rep.final_positions.size()));
  FieldOfInterest m2_new = fx.sc.m2_shape.translated(new_offset);
  EXPECT_LT(distance(centroid, m2_new.centroid()),
            distance(centroid, fx.m2_world.centroid()));
}

TEST(ExecutionEngine, AllRobotsCrashingDegradesInsteadOfLooping) {
  const ExecFixture& fx = fixture(1);
  fault::FaultSchedule schedule;
  for (int r = 0; r < 72; ++r) {
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kCrash;
    e.robot = r;
    e.t_start = 0.1 * fx.plan.total_time;
    schedule.add(e);
  }
  ExecutionReport rep =
      ExecutionEngine(fx.sc.comm_range).run(fx.plan, schedule, fx.m2_world);
  EXPECT_TRUE(rep.degraded);
  EXPECT_TRUE(rep.survivors.empty());
  EXPECT_DOUBLE_EQ(rep.survival_rate, 0.0);
  EXPECT_EQ(static_cast<int>(rep.crashed.size()), 72);
}

TEST(ExecutionEngine, RejectsSchedulesThatFailValidation) {
  const ExecFixture& fx = fixture(1);
  fault::FaultSchedule schedule;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kCrash;
  e.robot = 99;  // out of range for a 72-robot plan
  e.t_start = 0.1;
  schedule.add(e);
  EXPECT_THROW(ExecutionEngine(fx.sc.comm_range)
                   .run(fx.plan, schedule, fx.m2_world),
               ContractViolation);
}

}  // namespace
}  // namespace anr
