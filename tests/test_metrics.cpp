// Marching metrics helpers (Defs. 1-2 predictors) and mesh statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "march/metrics.h"
#include "mesh/mesh_quality.h"
#include "mesh/triangle_mesh.h"

namespace anr {
namespace {

TEST(Metrics, CommunicationLinks) {
  std::vector<Vec2> p{{0, 0}, {5, 0}, {20, 0}};
  auto links = communication_links(p, 6.0);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0], (std::pair<int, int>{0, 1}));
}

TEST(Metrics, PredictedRatioEndpointRule) {
  std::vector<Vec2> p{{0, 0}, {5, 0}};
  auto links = communication_links(p, 6.0);
  // Both endpoints in range -> survives.
  EXPECT_DOUBLE_EQ(
      predicted_stable_link_ratio(p, {{100, 0}, {105, 0}}, links, 6.0), 1.0);
  // End out of range -> broken.
  EXPECT_DOUBLE_EQ(
      predicted_stable_link_ratio(p, {{100, 0}, {110, 0}}, links, 6.0), 0.0);
}

TEST(Metrics, ConvexityJustifiesEndpointRule) {
  // Property: for straight-line synchronized motion, max inter-distance is
  // at an endpoint. Sample densely and verify.
  Vec2 p1{0, 0}, p2{5, 1};
  Vec2 q1{40, 30}, q2{44, 26};
  double d0 = distance(p1, p2), d1 = distance(q1, q2);
  double dmax = 0.0;
  for (int k = 0; k <= 1000; ++k) {
    double t = k / 1000.0;
    dmax = std::max(dmax, distance(lerp(p1, q1, t), lerp(p2, q2, t)));
  }
  EXPECT_LE(dmax, std::max(d0, d1) + 1e-9);
}

TEST(Metrics, NoLinksRatioIsOne) {
  std::vector<Vec2> p{{0, 0}, {100, 100}};
  EXPECT_DOUBLE_EQ(predicted_stable_link_ratio(p, p, {}, 5.0), 1.0);
}

TEST(Metrics, TotalDisplacement) {
  std::vector<Vec2> p{{0, 0}, {1, 1}};
  std::vector<Vec2> q{{3, 4}, {1, 1}};
  EXPECT_DOUBLE_EQ(total_displacement(p, q), 5.0);
}

TEST(MeshStats, SquareMesh) {
  TriangleMesh m({{0, 0}, {1, 0}, {1, 1}, {0, 1}}, {Tri{0, 1, 2}, Tri{0, 2, 3}});
  MeshStats s = mesh_stats(m);
  EXPECT_EQ(s.vertices, 4u);
  EXPECT_EQ(s.triangles, 2u);
  EXPECT_EQ(s.edges, 5u);
  EXPECT_EQ(s.boundary_edges, 4u);
  EXPECT_EQ(s.boundary_loops, 1u);
  EXPECT_EQ(s.euler, 1);
  EXPECT_NEAR(s.total_area, 1.0, 1e-12);
  EXPECT_NEAR(s.min_angle_deg, 45.0, 1e-9);
  EXPECT_NEAR(s.max_angle_deg, 90.0, 1e-9);
  EXPECT_NEAR(s.min_edge, 1.0, 1e-12);
  EXPECT_NEAR(s.max_edge, std::sqrt(2.0), 1e-12);
  EXPECT_FALSE(s.summary().empty());
}

TEST(MeshStats, EmptyMesh) {
  TriangleMesh m({{0, 0}}, {});
  MeshStats s = mesh_stats(m);
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_DOUBLE_EQ(s.total_area, 0.0);
}

}  // namespace
}  // namespace anr
