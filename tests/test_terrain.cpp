// Terrain prototype: height field math and surface-aware metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/planner.h"
#include "terrain/surface_metrics.h"

namespace anr {
namespace {

TEST(HeightField, FlatIsZero) {
  HeightField flat;
  EXPECT_DOUBLE_EQ(flat.height({123.0, -45.0}), 0.0);
  EXPECT_EQ(flat.gradient({1.0, 2.0}), (Vec2{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(flat.chord_distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(flat.surface_length({0, 0}, {3, 4}), 5.0);
}

TEST(HeightField, SingleHill) {
  HeightField h({Hill{{0.0, 0.0}, 100.0, 50.0}});
  EXPECT_NEAR(h.height({0, 0}), 100.0, 1e-12);
  EXPECT_LT(h.height({50, 0}), 100.0);
  EXPECT_NEAR(h.height({500, 0}), 0.0, 1e-12);
  // Gradient points toward the peak on the uphill side.
  Vec2 g = h.gradient({50.0, 0.0});
  EXPECT_LT(g.x, 0.0);
  EXPECT_NEAR(g.y, 0.0, 1e-12);
  // Analytic gradient matches finite differences.
  double eps = 1e-5;
  Vec2 p{30.0, -20.0};
  double fd_x = (h.height({p.x + eps, p.y}) - h.height({p.x - eps, p.y})) / (2 * eps);
  double fd_y = (h.height({p.x, p.y + eps}) - h.height({p.x, p.y - eps})) / (2 * eps);
  Vec2 grad = h.gradient(p);
  EXPECT_NEAR(grad.x, fd_x, 1e-6);
  EXPECT_NEAR(grad.y, fd_y, 1e-6);
}

TEST(HeightField, SurfaceLengthExceedsPlanarOverHills) {
  HeightField h({Hill{{50.0, 0.0}, 80.0, 30.0}});
  double planar = 100.0;
  double surface = h.surface_length({0, 0}, {100, 0}, 64);
  EXPECT_GT(surface, planar + 10.0);
  // Triangle inequality-ish sanity: no longer than climbing straight up
  // and down the full amplitude twice.
  EXPECT_LT(surface, planar + 4.0 * 80.0);
}

TEST(HeightField, ChordVsSurface) {
  HeightField h({Hill{{50.0, 0.0}, 60.0, 25.0}});
  // Chord cuts under the hill: shorter than the surface path.
  EXPECT_LT(h.chord_distance({0, 0}, {100, 0}),
            h.surface_length({0, 0}, {100, 0}, 64));
}

TEST(HeightField, RollingDeterministic) {
  BBox bb;
  bb.expand({0, 0});
  bb.expand({1000, 1000});
  HeightField a = HeightField::rolling(bb, 10, 40.0, 120.0, 7);
  HeightField b = HeightField::rolling(bb, 10, 40.0, 120.0, 7);
  EXPECT_EQ(a.hills().size(), 10u);
  for (std::size_t i = 0; i < a.hills().size(); ++i) {
    EXPECT_EQ(a.hills()[i].center, b.hills()[i].center);
    EXPECT_EQ(a.hills()[i].amplitude, b.hills()[i].amplitude);
  }
}

TEST(SurfaceMetrics, FlatMatchesPlanarSimulator) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  PlannerOptions opt;
  opt.mesher.target_grid_points = 600;
  opt.cvt_samples = 10000;
  opt.max_adjust_steps = 15;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  Vec2 off = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(deploy, off);

  auto planar = simulate_transition(plan.trajectories, sc.comm_range,
                                    plan.transition_end, 100);
  auto surf = simulate_on_surface(plan.trajectories, HeightField{},
                                  sc.comm_range, plan.transition_end, 100);
  EXPECT_NEAR(surf.base.total_distance, planar.total_distance, 1e-6);
  EXPECT_EQ(surf.base.initial_links, planar.initial_links);
  EXPECT_DOUBLE_EQ(surf.base.stable_link_ratio, planar.stable_link_ratio);
  EXPECT_EQ(surf.base.global_connectivity, planar.global_connectivity);
  EXPECT_NEAR(surf.surface_distance, surf.planar_distance, 1e-6);
}

TEST(SurfaceMetrics, HillsCostDistanceAndLinks) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  PlannerOptions opt;
  opt.mesher.target_grid_points = 600;
  opt.cvt_samples = 10000;
  opt.max_adjust_steps = 15;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  Vec2 off = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(deploy, off);

  BBox bb = sc.m1.bbox();
  bb.expand(sc.m2_at(15.0).bbox());
  HeightField rough = HeightField::rolling(bb, 40, 35.0, 150.0, 11);

  auto flat = simulate_on_surface(plan.trajectories, HeightField{},
                                  sc.comm_range, plan.transition_end, 100);
  auto hilly = simulate_on_surface(plan.trajectories, rough, sc.comm_range,
                                   plan.transition_end, 100);
  EXPECT_GT(hilly.surface_distance, flat.surface_distance);
  // The 3D link model can only remove links relative to the planar one.
  EXPECT_LE(hilly.base.initial_links, flat.base.initial_links);
  EXPECT_GT(hilly.max_climb, 0.0);
}

}  // namespace
}  // namespace anr
