// Terrain prototype: height field math, surface-aware metrics, and
// cost-field degenerate cases (flat/uniform, single-cell, out-of-domain).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "coverage/lloyd.h"
#include "foi/scenario.h"
#include "march/planner.h"
#include "terrain/fast_marching.h"
#include "terrain/surface_metrics.h"

namespace anr {
namespace {

TEST(HeightField, FlatIsZero) {
  HeightField flat;
  EXPECT_DOUBLE_EQ(flat.height({123.0, -45.0}), 0.0);
  EXPECT_EQ(flat.gradient({1.0, 2.0}), (Vec2{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(flat.chord_distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(flat.surface_length({0, 0}, {3, 4}), 5.0);
}

TEST(HeightField, SingleHill) {
  HeightField h({Hill{{0.0, 0.0}, 100.0, 50.0}});
  EXPECT_NEAR(h.height({0, 0}), 100.0, 1e-12);
  EXPECT_LT(h.height({50, 0}), 100.0);
  EXPECT_NEAR(h.height({500, 0}), 0.0, 1e-12);
  // Gradient points toward the peak on the uphill side.
  Vec2 g = h.gradient({50.0, 0.0});
  EXPECT_LT(g.x, 0.0);
  EXPECT_NEAR(g.y, 0.0, 1e-12);
  // Analytic gradient matches finite differences.
  double eps = 1e-5;
  Vec2 p{30.0, -20.0};
  double fd_x = (h.height({p.x + eps, p.y}) - h.height({p.x - eps, p.y})) / (2 * eps);
  double fd_y = (h.height({p.x, p.y + eps}) - h.height({p.x, p.y - eps})) / (2 * eps);
  Vec2 grad = h.gradient(p);
  EXPECT_NEAR(grad.x, fd_x, 1e-6);
  EXPECT_NEAR(grad.y, fd_y, 1e-6);
}

TEST(HeightField, SurfaceLengthExceedsPlanarOverHills) {
  HeightField h({Hill{{50.0, 0.0}, 80.0, 30.0}});
  double planar = 100.0;
  double surface = h.surface_length({0, 0}, {100, 0}, 64);
  EXPECT_GT(surface, planar + 10.0);
  // Triangle inequality-ish sanity: no longer than climbing straight up
  // and down the full amplitude twice.
  EXPECT_LT(surface, planar + 4.0 * 80.0);
}

TEST(HeightField, ChordVsSurface) {
  HeightField h({Hill{{50.0, 0.0}, 60.0, 25.0}});
  // Chord cuts under the hill: shorter than the surface path.
  EXPECT_LT(h.chord_distance({0, 0}, {100, 0}),
            h.surface_length({0, 0}, {100, 0}, 64));
}

TEST(HeightField, RollingDeterministic) {
  BBox bb;
  bb.expand({0, 0});
  bb.expand({1000, 1000});
  HeightField a = HeightField::rolling(bb, 10, 40.0, 120.0, 7);
  HeightField b = HeightField::rolling(bb, 10, 40.0, 120.0, 7);
  EXPECT_EQ(a.hills().size(), 10u);
  for (std::size_t i = 0; i < a.hills().size(); ++i) {
    EXPECT_EQ(a.hills()[i].center, b.hills()[i].center);
    EXPECT_EQ(a.hills()[i].amplitude, b.hills()[i].amplitude);
  }
}

TEST(SurfaceMetrics, FlatMatchesPlanarSimulator) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  PlannerOptions opt;
  opt.mesher.target_grid_points = 600;
  opt.cvt_samples = 10000;
  opt.max_adjust_steps = 15;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  Vec2 off = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(deploy, off);

  auto planar = simulate_transition(plan.trajectories, sc.comm_range,
                                    plan.transition_end, 100);
  auto surf = simulate_on_surface(plan.trajectories, HeightField{},
                                  sc.comm_range, plan.transition_end, 100);
  EXPECT_NEAR(surf.base.total_distance, planar.total_distance, 1e-6);
  EXPECT_EQ(surf.base.initial_links, planar.initial_links);
  EXPECT_DOUBLE_EQ(surf.base.stable_link_ratio, planar.stable_link_ratio);
  EXPECT_EQ(surf.base.global_connectivity, planar.global_connectivity);
  EXPECT_NEAR(surf.surface_distance, surf.planar_distance, 1e-6);
}

TEST(SurfaceMetrics, HillsCostDistanceAndLinks) {
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  PlannerOptions opt;
  opt.mesher.target_grid_points = 600;
  opt.cvt_samples = 10000;
  opt.max_adjust_steps = 15;
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
  Vec2 off = sc.m1.centroid() + Vec2{15.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(deploy, off);

  BBox bb = sc.m1.bbox();
  bb.expand(sc.m2_at(15.0).bbox());
  HeightField rough = HeightField::rolling(bb, 40, 35.0, 150.0, 11);

  auto flat = simulate_on_surface(plan.trajectories, HeightField{},
                                  sc.comm_range, plan.transition_end, 100);
  auto hilly = simulate_on_surface(plan.trajectories, rough, sc.comm_range,
                                   plan.transition_end, 100);
  EXPECT_GT(hilly.surface_distance, flat.surface_distance);
  // The 3D link model can only remove links relative to the planar one.
  EXPECT_LE(hilly.base.initial_links, flat.base.initial_links);
  EXPECT_GT(hilly.max_climb, 0.0);
}

// ---------------------------------------------------------------------
// Cost-field degenerate cases. The FMM pipeline earns its keep on rough
// ground; these pin the boring ends of the input space, where it must
// collapse to something exactly predictable.

TEST(CostFieldDegenerate, FlatTerrainBuildsUniformField) {
  CostFieldSpec spec;
  spec.bounds.expand({0.0, 0.0});
  spec.bounds.expand({200.0, 120.0});
  spec.max_cells = 64;
  spec.slope_weight = 3.0;    // irrelevant: |∇z| = 0 everywhere
  spec.uphill_penalty = 0.5;  // irrelevant for the same reason
  CostField field = CostField::build(spec, HeightField{});

  EXPECT_TRUE(field.uniform());
  EXPECT_FALSE(field.has_blocked());
  EXPECT_DOUBLE_EQ(field.min_cost(), 1.0);
  for (int i = 0; i < field.cell_count(); ++i)
    ASSERT_DOUBLE_EQ(field.cost(i), 1.0);

  // Unit cost => ToA is Euclidean distance (up to the grid metric) and
  // the extracted geodesic is the straight chord.
  const Vec2 src{20.0, 20.0};
  const Vec2 goal{180.0, 100.0};
  FastMarchResult fm = fast_march(field, src);
  EXPECT_FALSE(fm.source_blocked);
  EXPECT_EQ(fm.accepted, field.cell_count());
  GeodesicPath path = extract_geodesic(field, fm, src, goal);
  ASSERT_TRUE(path.ok) << path.failure;
  const double chord = distance(src, goal);
  EXPECT_NEAR(path.time, chord, 2.0 * field.cell_size());
  double poly = 0.0;
  for (std::size_t i = 1; i < path.points.size(); ++i)
    poly += distance(path.points[i - 1], path.points[i]);
  // Simplification should leave an essentially straight polyline.
  EXPECT_LE(poly, chord * 1.01 + 2.0 * field.cell_size());
}

TEST(CostFieldDegenerate, SingleCellFieldMarchesTrivially) {
  CostFieldSpec spec;
  spec.bounds.expand({0.0, 0.0});
  spec.bounds.expand({10.0, 10.0});
  spec.max_cells = 1;  // 1x1 grid: the entire domain is one cell
  CostField field = CostField::build(spec, HeightField{});
  ASSERT_EQ(field.nx(), 1);
  ASSERT_EQ(field.ny(), 1);
  ASSERT_EQ(field.cell_count(), 1);

  const Vec2 src{2.0, 2.0};
  const Vec2 goal{8.0, 9.0};
  FastMarchResult fm = fast_march(field, src);
  EXPECT_FALSE(fm.source_blocked);
  ASSERT_TRUE(fm.reached(0));
  // The lone cell seeds at cost * |src - center|.
  EXPECT_NEAR(fm.toa[0], distance(src, field.center(0)), 1e-12);
  EXPECT_GE(sample_toa(field, fm.toa, goal), 0.0);

  GeodesicPath path = extract_geodesic(field, fm, src, goal);
  ASSERT_TRUE(path.ok) << path.failure;
  ASSERT_GE(path.points.size(), 2u);
  EXPECT_EQ(path.points.front(), src);
  EXPECT_EQ(path.points.back(), goal);
}

TEST(CostFieldDegenerate, SamplingOutsideDomainThrows) {
  CostFieldSpec spec;
  spec.bounds.expand({0.0, 0.0});
  spec.bounds.expand({100.0, 100.0});
  spec.max_cells = 16;
  CostField field = CostField::build(spec, HeightField{});
  const Vec2 outside{150.0, 50.0};
  ASSERT_FALSE(field.contains(outside));

  // Bounds-checked sampling: out-of-domain queries are contract
  // violations, never silent clamps.
  EXPECT_THROW(field.index_of(outside), ContractViolation);
  EXPECT_THROW(field.cost_at(outside), ContractViolation);
  EXPECT_THROW(field.blocked_at(outside), ContractViolation);
  EXPECT_THROW(fast_march(field, outside), ContractViolation);

  FastMarchResult fm = fast_march(field, {50.0, 50.0});
  EXPECT_THROW(sample_toa(field, fm.toa, outside), ContractViolation);
  EXPECT_THROW(extract_geodesic(field, fm, {50.0, 50.0}, outside),
               ContractViolation);
}

TEST(CostFieldDegenerate, ZeroAmplitudeHillsActFlat) {
  // flat() is a structural predicate (no hills), not a value predicate:
  // a zero-amplitude hill reports flat() == false yet contributes no
  // height anywhere. Everything downstream must treat it as flat ground.
  HeightField h({Hill{{50.0, 50.0}, 0.0, 30.0}});
  EXPECT_FALSE(h.flat());
  EXPECT_DOUBLE_EQ(h.height({50.0, 50.0}), 0.0);
  EXPECT_EQ(h.gradient({40.0, 60.0}), (Vec2{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(h.surface_length({0, 0}, {60, 80}, 64), 100.0);

  CostFieldSpec spec;
  spec.bounds.expand({0.0, 0.0});
  spec.bounds.expand({100.0, 100.0});
  spec.max_cells = 32;
  spec.slope_weight = 4.0;
  CostField field = CostField::build(spec, h);
  EXPECT_TRUE(field.uniform());
  EXPECT_DOUBLE_EQ(field.min_cost(), 1.0);
}

}  // namespace
}  // namespace anr
