// Streaming serve path: frame codec robustness, the StreamFrontend
// request/response loop end to end over in-memory streams, and the
// march_serve SIGTERM contract (a killed batch still flushes a complete,
// valid NDJSON metrics snapshot and exits 143).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "io/frame_io.h"
#include "io/job_io.h"
#include "io/json.h"
#include "io/plan_codec.h"
#include "runtime/admission.h"
#include "runtime/mission_service.h"
#include "runtime/stream_frontend.h"

namespace anr {
namespace {

// ---------------------------------------------------------------------
// Frame codec.

TEST(FrameIo, RoundTripAndCleanEof) {
  std::stringstream s;
  ASSERT_TRUE(write_frame(s, FrameType::kRequest, "{\"id\":\"a\"}"));
  ASSERT_TRUE(write_frame(s, FrameType::kResponse, ""));
  ASSERT_TRUE(write_frame(s, FrameType::kError, std::string("b\0in", 4)));

  Frame f;
  std::string err;
  ASSERT_EQ(read_frame(s, &f, &err), FrameReadStatus::kFrame) << err;
  EXPECT_EQ(f.type, FrameType::kRequest);
  EXPECT_EQ(f.payload, "{\"id\":\"a\"}");
  ASSERT_EQ(read_frame(s, &f, &err), FrameReadStatus::kFrame) << err;
  EXPECT_EQ(f.type, FrameType::kResponse);
  EXPECT_TRUE(f.payload.empty());
  ASSERT_EQ(read_frame(s, &f, &err), FrameReadStatus::kFrame) << err;
  EXPECT_EQ(f.type, FrameType::kError);
  EXPECT_EQ(f.payload, std::string("b\0in", 4));  // binary-safe payloads
  EXPECT_EQ(read_frame(s, &f, &err), FrameReadStatus::kEof);
}

TEST(FrameIo, TruncationsAreTypedErrors) {
  const std::string whole = encode_frame(FrameType::kRequest, "payload");
  // EOF exactly at a boundary is clean; anywhere mid-frame is an error.
  for (std::size_t len = 1; len < whole.size(); ++len) {
    std::stringstream s(whole.substr(0, len));
    Frame f;
    std::string err;
    EXPECT_EQ(read_frame(s, &f, &err), FrameReadStatus::kError)
        << "prefix of " << len << " bytes";
    EXPECT_FALSE(err.empty());
  }
  std::stringstream empty;
  Frame f;
  EXPECT_EQ(read_frame(empty, &f), FrameReadStatus::kEof);
}

TEST(FrameIo, HostileLengthAndTypeAreRejected) {
  // A length word beyond kMaxFramePayload must fail before any buffer is
  // sized to it.
  std::string oversized;
  const std::uint64_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    oversized.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  oversized.push_back(1);  // kRequest
  std::stringstream s1(oversized);
  Frame f;
  std::string err;
  EXPECT_EQ(read_frame(s1, &f, &err), FrameReadStatus::kError);
  EXPECT_NE(err.find("payload"), std::string::npos);

  std::string unknown_type = encode_frame(FrameType::kRequest, "x");
  unknown_type[4] = 9;  // not a FrameType
  std::stringstream s2(unknown_type);
  EXPECT_EQ(read_frame(s2, &f, &err), FrameReadStatus::kError);
}

TEST(FrameIo, ResponsePlanPayloadSplits) {
  const std::string json = "{\"id\":\"x\",\"ok\":true}";
  const std::string plan = std::string("ANRPLANB") + std::string(16, '\0');
  const std::string payload = make_response_plan_payload(json, plan);

  std::string_view got_json, got_plan;
  std::string err;
  ASSERT_TRUE(split_response_plan_payload(payload, &got_json, &got_plan, &err))
      << err;
  EXPECT_EQ(got_json, json);
  EXPECT_EQ(got_plan, plan);

  // Malformed: shorter than its own length prefix / missing prefix.
  EXPECT_FALSE(split_response_plan_payload(payload.substr(0, 3), &got_json,
                                           &got_plan, &err));
  std::string overrun = payload.substr(0, 4 + json.size() - 1);
  EXPECT_FALSE(
      split_response_plan_payload(overrun, &got_json, &got_plan, &err));
}

// ---------------------------------------------------------------------
// StreamFrontend end to end over in-memory streams.

struct Serving {
  runtime::MissionService service;
  runtime::AdmissionController controller;
  runtime::ServingGateway gateway;
  runtime::StreamFrontend frontend;

  Serving()
      : service(small_service()),
        controller(runtime::AdmissionOptions{}),
        gateway(backend(), &controller),
        frontend(&gateway) {}

  static runtime::ServiceOptions small_service() {
    runtime::ServiceOptions so;
    so.threads = 2;
    return so;
  }

  runtime::GatewayBackend backend() {
    runtime::GatewayBackend b;
    b.submit = [this](runtime::PlanJob j) {
      return service.submit(std::move(j));
    };
    b.queue_depth = [this] { return service.queue_depth(); };
    return b;
  }
};

std::string small_request(const std::string& id, const char* extra) {
  return "{\"id\":\"" + id +
         "\",\"scenario\":1,\"robots\":24,\"separation\":12,"
         "\"options\":{\"grid_points\":250,\"cvt_samples\":1000,"
         "\"max_adjust_steps\":2}" +
         extra + "}";
}

TEST(StreamFrontendTest, ServesRequestsInOrderWithBinaryPlan) {
  Serving s;
  std::stringstream in;
  write_frame(in, FrameType::kRequest, small_request("first", ""));
  write_frame(in, FrameType::kRequest,
              small_request("second",
                            ",\"include_plan\":true,"
                            "\"plan_encoding\":\"binary\""));
  write_frame(in, FrameType::kRequest, "{\"scenario\": not-json");
  std::stringstream out;

  const runtime::StreamStats stats = s.frontend.serve(in, out);
  EXPECT_EQ(stats.frames_read, 3u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.bad_requests, 1u);
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_EQ(stats.plan_frames, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);

  Frame f;
  std::string err;

  // Response 1: plain result for "first".
  ASSERT_EQ(read_frame(out, &f, &err), FrameReadStatus::kFrame) << err;
  ASSERT_EQ(f.type, FrameType::kResponse);
  json::Value r1 = json::parse(f.payload);
  EXPECT_EQ(r1.at("id").as_string(), "first");
  EXPECT_TRUE(r1.at("ok").as_bool());
  EXPECT_EQ(r1.as_object().count("plan"), 0u);

  // Response 2: kResponsePlan with a decodable binary plan document.
  ASSERT_EQ(read_frame(out, &f, &err), FrameReadStatus::kFrame) << err;
  ASSERT_EQ(f.type, FrameType::kResponsePlan);
  std::string_view headline, plan_bytes;
  ASSERT_TRUE(split_response_plan_payload(f.payload, &headline, &plan_bytes,
                                          &err))
      << err;
  json::Value r2 = json::parse(std::string(headline));
  EXPECT_EQ(r2.at("id").as_string(), "second");
  EXPECT_TRUE(r2.at("ok").as_bool());
  ASSERT_TRUE(looks_like_binary_plan(plan_bytes));
  std::optional<MarchPlan> plan = decode_plan(plan_bytes, &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_EQ(plan->trajectories.size(), 24u);

  // Response 3: the malformed request answered in-band, stream survived.
  ASSERT_EQ(read_frame(out, &f, &err), FrameReadStatus::kFrame) << err;
  ASSERT_EQ(f.type, FrameType::kResponse);
  json::Value r3 = json::parse(f.payload);
  EXPECT_FALSE(r3.at("ok").as_bool());
  EXPECT_EQ(r3.at("status").as_string(), "rejected_invalid");

  EXPECT_EQ(read_frame(out, &f, &err), FrameReadStatus::kEof);
}

TEST(StreamFrontendTest, NonRequestFrameIsTerminalProtocolError) {
  Serving s;
  std::stringstream in;
  write_frame(in, FrameType::kResponse, "{}");  // clients must not do this
  std::stringstream out;

  const runtime::StreamStats stats = s.frontend.serve(in, out);
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.protocol_errors, 1u);

  Frame f;
  std::string err;
  ASSERT_EQ(read_frame(out, &f, &err), FrameReadStatus::kFrame) << err;
  EXPECT_EQ(f.type, FrameType::kError);
  EXPECT_NE(f.payload.find("response"), std::string::npos);
}

// ---------------------------------------------------------------------
// march_serve SIGTERM contract. The binary path arrives via
// ANR_MARCH_SERVE_BIN (wired in tests/CMakeLists.txt); the test forks
// it on a long batch, SIGTERMs it mid-run, and requires exit 143 plus a
// complete, parseable NDJSON metrics file.

TEST(MarchServeSignal, SigtermMidBatchFlushesValidNdjsonMetrics) {
  const char* bin = std::getenv("ANR_MARCH_SERVE_BIN");
#ifdef ANR_MARCH_SERVE_BIN_DEFAULT
  if (bin == nullptr || bin[0] == '\0') bin = ANR_MARCH_SERVE_BIN_DEFAULT;
#endif
  if (bin == nullptr || bin[0] == '\0') {
    GTEST_SKIP() << "ANR_MARCH_SERVE_BIN not set";
  }
  if (access(bin, X_OK) != 0) {
    GTEST_SKIP() << "march_serve binary not built at " << bin;
  }

  const std::string input_path = "sigterm_jobs.ndjson";
  const std::string metrics_path = "sigterm_metrics.ndjson";
  std::remove(metrics_path.c_str());
  {
    std::ofstream jobs(input_path);
    ASSERT_TRUE(jobs.good());
    for (int i = 0; i < 400; ++i) {
      jobs << "{\"id\":\"sig-" << i
           << "\",\"scenario\":1,\"robots\":36,\"separation\":12,"
              "\"options\":{\"grid_points\":300,\"cvt_samples\":1500,"
              "\"max_adjust_steps\":3}}\n";
    }
  }

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: silence stdout (hundreds of result lines), keep stderr.
    const int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) dup2(devnull, STDOUT_FILENO);
    execl(bin, bin, "--threads", "1", "--input", input_path.c_str(),
          "--metrics", metrics_path.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  // Give the batch time to start planning, then kill it mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(2000));
  ASSERT_EQ(kill(pid, SIGTERM), 0);

  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "march_serve did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(wstatus), 143) << "expected the SIGTERM exit code";

  // The flushed metrics file must be complete, valid NDJSON with the
  // service's job counters present.
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good()) << "no metrics file flushed on SIGTERM";
  std::string line;
  int lines = 0;
  bool saw_jobs_total = false;
  while (std::getline(metrics, line)) {
    if (line.empty()) continue;
    ++lines;
    json::Value v;
    ASSERT_NO_THROW(v = json::parse(line))
        << "metrics line " << lines << " is not valid JSON: " << line;
    ASSERT_TRUE(v.is_object());
    EXPECT_GT(v.as_object().count("name"), 0u);
    if (v.at("name").as_string() == "anr_jobs_total") saw_jobs_total = true;
  }
  EXPECT_GT(lines, 0) << "metrics file is empty";
  EXPECT_TRUE(saw_jobs_total) << "anr_jobs_total series missing";

  std::remove(input_path.c_str());
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace anr
