// Distributed (two-hop) Lloyd vs global oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "coverage/local_voronoi.h"
#include "coverage/lloyd.h"
#include "coverage/voronoi.h"
#include "net/connectivity.h"
#include "test_util.h"

namespace anr {
namespace {

TEST(LocalVoronoi, MatchesGlobalVoronoiWhenDense) {
  // Robots spaced well within comm range: two hops capture every Voronoi
  // neighbor, so the local step equals the global clipped-Voronoi step.
  FieldOfInterest foi = testutil::square_foi(100.0);
  std::vector<Vec2> robots;
  for (int y = 1; y < 5; ++y) {
    for (int x = 1; x < 5; ++x) {
      robots.push_back({x * 20.0 + (y % 2) * 3.0, y * 20.0});
    }
  }
  LocalVoronoiLloyd local(foi, {}, /*comm_range=*/45.0);
  auto step = local.step(robots);
  auto global = voronoi_centroids(robots, foi.outer());
  for (std::size_t i = 0; i < robots.size(); ++i) {
    EXPECT_LT(distance(step.centroids[i], global[i]), 1e-6) << i;
  }
  EXPECT_GT(step.messages, 0u);
}

TEST(LocalVoronoi, AgreesWithGridCvt) {
  FieldOfInterest foi = testutil::square_foi(120.0);
  Rng rng(4);
  std::vector<Vec2> robots;
  for (int i = 0; i < 25; ++i) robots.push_back(foi.sample_point(rng));
  LocalVoronoiLloyd local(foi, {}, 80.0);
  GridCvt grid(foi, uniform_density(), 40000);
  auto a = local.step(robots).centroids;
  auto b = grid.centroids(robots);
  for (std::size_t i = 0; i < robots.size(); ++i) {
    EXPECT_LT(distance(a[i], b[i]), 2.5) << i;  // within grid resolution
  }
}

TEST(LocalVoronoi, CentroidsStayOutOfHoles) {
  FieldOfInterest foi = testutil::square_with_hole(100.0, 25.0);
  LocalVoronoiLloyd local(foi, {}, 60.0);
  std::vector<Vec2> robots{{50.0, 20.0}, {50.0, 80.0}, {20.0, 50.0}, {80.0, 50.0}};
  auto step = local.step(robots);
  for (Vec2 c : step.centroids) {
    EXPECT_TRUE(foi.contains(c));
  }
}

TEST(LocalVoronoi, RunConvergesToUniformSpread) {
  FieldOfInterest foi = testutil::square_foi(100.0);
  Rng rng(7);
  std::vector<Vec2> robots;
  for (int i = 0; i < 16; ++i) {
    robots.push_back({rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0)});
  }
  LocalVoronoiLloyd local(foi, {}, 200.0);  // fully connected
  auto res = local.run(robots, 0.5, 200);
  EXPECT_TRUE(res.converged);
  // Nearest-neighbor distances become large and even (spread out of the
  // initial corner clump).
  double min_nn = 1e300;
  for (std::size_t i = 0; i < res.positions.size(); ++i) {
    double best = 1e300;
    for (std::size_t j = 0; j < res.positions.size(); ++j) {
      if (i != j) best = std::min(best, distance(res.positions[i], res.positions[j]));
    }
    min_nn = std::min(min_nn, best);
  }
  EXPECT_GT(min_nn, 15.0);
}

TEST(LocalVoronoi, DensityPullsRobots) {
  FieldOfInterest foi = testutil::square_foi(100.0);
  Vec2 hot{80.0, 80.0};
  LocalVoronoiLloyd weighted(foi, hotspot_density(hot, 10.0, 20.0), 200.0);
  LocalVoronoiLloyd uniform(foi, {}, 200.0);
  std::vector<Vec2> robots;
  Rng rng(9);
  for (int i = 0; i < 20; ++i) robots.push_back(foi.sample_point(rng));
  auto rw = weighted.run(robots, 0.5, 120);
  auto ru = uniform.run(robots, 0.5, 120);
  auto near_hot = [&](const std::vector<Vec2>& pts) {
    int c = 0;
    for (Vec2 p : pts) {
      if (distance(p, hot) < 30.0) ++c;
    }
    return c;
  };
  EXPECT_GT(near_hot(rw.positions), near_hot(ru.positions));
}

TEST(LocalVoronoi, ClampsOutsideRobots) {
  FieldOfInterest foi = testutil::square_foi(50.0);
  LocalVoronoiLloyd local(foi, {}, 100.0);
  std::vector<Vec2> robots{{-20.0, 25.0}, {25.0, 25.0}};
  auto step = local.step(robots);
  for (Vec2 c : step.centroids) {
    EXPECT_TRUE(foi.contains(c));
  }
}

}  // namespace
}  // namespace anr
