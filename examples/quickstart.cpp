// Quickstart: march 144 robots from the base FoI to the flower-pond FoI
// (the paper's Fig. 2 pipeline), printing every stage's vitals.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

int main() {
  using namespace anr;
  Stopwatch sw;

  // Scenario 3: base M1 blob -> FoI with a flower-shaped pond (Fig. 2(d)).
  Scenario sc = scenario(3);
  std::cout << "scenario: " << sc.description << "\n"
            << "  M1 area = " << fmt(sc.m1.area(), 0) << " m^2, M2 area = "
            << fmt(sc.m2_shape.area(), 0) << " m^2, robots = " << sc.num_robots
            << ", r_c = " << sc.comm_range << " m\n";

  // Deploy robots at optimal coverage positions in M1.
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, /*seed=*/1,
                                           uniform_density());
  std::cout << "deployed in M1 after " << deploy.iters
            << " Lloyd iterations (converged=" << deploy.converged << ")\n";

  // Plan the march with method (a): maximize stable links.
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range);
  double separation_cr = 20.0;  // centroid distance in communication ranges
  Vec2 offset = sc.m1.centroid() +
                Vec2{separation_cr * sc.comm_range, 0.0} -
                sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(deploy.positions, offset);

  std::cout << "\ntriangulation T: " << plan.t_stats.summary() << "\n"
            << "M2 grid mesh:    " << plan.m2_stats.summary() << "\n"
            << "rotation: angle = " << fmt(plan.rotation_angle) << " rad ("
            << plan.rotation_evaluations << " probes), predicted L = "
            << fmt_pct(plan.predicted_link_ratio) << "\n"
            << "snapped-to-grid targets: " << plan.snapped_targets
            << ", repaired robots: " << plan.repaired_robots << " in "
            << plan.repaired_subgroups << " subgroup(s), unmeshed: "
            << plan.unmeshed_robots << "\n"
            << "adjustment steps: " << plan.adjust_steps << "\n";

  // Measure the run.
  TransitionMetrics m =
      simulate_transition(plan.trajectories, sc.comm_range, plan.transition_end);
  std::cout << "\nmeasured over " << m.samples << " samples:\n"
            << "  total moving distance D  = " << fmt(m.total_distance, 0)
            << " m (transition " << fmt(m.transition_distance, 0)
            << " + adjustment " << fmt(m.adjustment_distance, 0) << ")\n"
            << "  stable link ratio L      = " << fmt_pct(m.stable_link_ratio)
            << " (" << m.stable_links << "/" << m.initial_links << " links)\n"
            << "  global connectivity C    = "
            << (m.global_connectivity ? "YES" : "NO") << "\n"
            << "\ndone in " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
