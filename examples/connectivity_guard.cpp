// Connectivity as an operational guarantee: why the paper insists on
// C = 1 during the march (Sec. I: an isolated robot "may be excluded from
// the new plan and thus become permanently lost").
//
// This example stresses that guarantee three ways:
//   1. an adversarial march (base blob -> slim far-away FoI) where the
//      naive Hungarian plan splits the network — and our method (a),
//      including its isolated-subgroup repair, does not;
//   2. a mid-march retarget: halfway through, the mission changes; the
//      swarm replans from wherever it is — legal only because it is still
//      one connected network;
//   3. a mass robot failure, recovered by re-spreading the survivors.
//
// Run: ./build/examples/connectivity_guard
#include <iostream>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

int main() {
  using namespace anr;
  Stopwatch sw;
  Scenario sc = scenario(2);  // dissimilar slim target
  const double r_c = sc.comm_range;

  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density());
  Vec2 off = sc.m1.centroid() + Vec2{30.0 * r_c, 0.0} - sc.m2_shape.centroid();

  // --- 1. Ours vs Hungarian under the connectivity lens ------------------
  MarchPlanner ours(sc.m1, sc.m2_shape, r_c);
  HungarianMarchPlanner hungarian(sc.m1, sc.m2_shape, r_c, sc.num_robots);
  MarchPlan plan = ours.plan(deploy.positions, off);
  MarchPlan hplan = hungarian.plan(deploy.positions, off);
  auto m_ours = simulate_transition(plan.trajectories, r_c, plan.transition_end);
  auto m_hun = simulate_transition(hplan.trajectories, r_c, hplan.transition_end);

  TextTable t1;
  t1.header({"method", "C", "first split at t", "L", "D (m)"});
  t1.row({"ours (a)", m_ours.global_connectivity ? "Y" : "N",
          m_ours.global_connectivity ? "-" : fmt(m_ours.first_disconnect_time, 2),
          fmt_pct(m_ours.stable_link_ratio), fmt(m_ours.total_distance, 0)});
  t1.row({"Hungarian", m_hun.global_connectivity ? "Y" : "N",
          m_hun.global_connectivity ? "-" : fmt(m_hun.first_disconnect_time, 2),
          fmt_pct(m_hun.stable_link_ratio), fmt(m_hun.total_distance, 0)});
  std::cout << "== adversarial march (scenario 2, 30x r_c away)\n" << t1.str();
  std::cout << "   repair engaged for " << plan.repaired_robots
            << " robot(s) in " << plan.repaired_subgroups << " subgroup(s)\n\n";

  // --- 2. Mid-march retarget ---------------------------------------------
  Scenario sc3 = scenario(3);
  MarchPlanner alt(sc.m1, sc3.m2_shape, r_c);
  Vec2 off3 = sc.m1.centroid() + Vec2{12.0 * r_c, 14.0 * r_c} -
              sc3.m2_shape.centroid();
  RetargetResult rr = retarget_mid_march(plan.trajectories, 0.5, alt, off3);
  auto m_rr = simulate_transition(rr.trajectories, r_c,
                                  0.5 + rr.second_leg.transition_end);
  std::cout << "== mid-march retarget at t=0.5 -> flower-pond FoI\n"
            << "   swarm caught mid-flight, replanned from live positions: "
            << "C=" << (m_rr.global_connectivity ? "Y" : "N") << ", L="
            << fmt_pct(m_rr.stable_link_ratio) << ", D="
            << fmt(m_rr.total_distance, 0) << " m\n\n";

  // --- 3. Mass failure recovery -------------------------------------------
  std::vector<int> failed;
  for (int i = 0; i < 20; ++i) failed.push_back(i * 7);
  FieldOfInterest m2 = sc.m2_shape.translated(off);
  FailureRecovery rec =
      recover_from_failure(plan.trajectories, 0.7, failed, m2, r_c);
  auto m_rec = simulate_transition(rec.trajectories, r_c, rec.recovery_start);
  std::cout << "== failure of " << failed.size() << " robots\n"
            << "   " << rec.survivors.size() << " survivors re-spread in "
            << rec.lloyd_steps << " safe Lloyd steps, +"
            << fmt(rec.recovery_distance, 0) << " m recovery distance, C="
            << (m_rec.global_connectivity ? "Y" : "N") << "\n\n"
            << "done in " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
