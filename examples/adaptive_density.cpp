// Adaptive deployment density (paper Sec. IV-E / Fig. 6): a wildfire
// monitoring mission. The swarm marches into a FoI containing a burning
// zone (modeled as a hole — robots cannot enter the fire) and deploys
// densely around it: "we can add the temperature into the density
// function when computing the centroid of a Voronoi region, so more
// robots will be deployed near the center of a fire".
//
// Demonstrates both adjustment engines on the same mission:
//   - the planner's grid-CVT adjustment with a hole-proximity density;
//   - the paper-faithful distributed Lloyd (per-robot two-hop Voronoi).
//
// Writes ./fire_uniform.svg and ./fire_weighted.svg.
//
// Run: ./build/examples/adaptive_density
#include <algorithm>
#include <iostream>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace {

using namespace anr;

void draw(const std::string& path, const FieldOfInterest& foi,
          const std::vector<Vec2>& robots, double r_c) {
  SvgCanvas canvas(40.0);
  canvas.foi(foi, "#663311");
  SvgStyle link;
  link.stroke = "#c8c8c8";
  canvas.links(robots, communication_links(robots, r_c), link);
  canvas.robots(robots, 3.0, "#b03a2e");
  if (canvas.save(path)) std::cout << "  wrote " << path << "\n";
}

std::vector<int> band_histogram(const FieldOfInterest& foi,
                                const std::vector<Vec2>& robots) {
  std::vector<int> bands(4, 0);
  for (Vec2 p : robots) {
    double d = foi.distance_to_nearest_hole(p);
    bands[static_cast<std::size_t>(std::min(3, static_cast<int>(d / 60.0)))]++;
  }
  return bands;
}

}  // namespace

int main() {
  using namespace anr;
  Stopwatch sw;
  const int robots = 144;
  const double r_c = 80.0;

  // Staging area and the fire FoI: a blob with a burning core.
  FieldOfInterest staging = base_m1();
  Polygon outer = make_blob({0.0, 0.0}, 330.0, {{2, 0.08, 0.9}, {3, 0.05, 2.0}});
  Polygon fire = make_flower({15.0, 5.0}, 90.0, 6, 0.25);
  FieldOfInterest fire_zone = with_net_area(
      FieldOfInterest(std::move(outer), {std::move(fire)}), 280000.0);
  fire_zone = fire_zone.translated({1800.0, 0.0});

  auto deploy = optimal_coverage_positions(staging, robots, 1, uniform_density());
  DensityFn heat = hole_proximity_density(fire_zone, 10.0, 70.0);

  // March with uniform vs heat-weighted adjustment.
  auto march = [&](DensityFn density) {
    PlannerOptions opt;
    opt.density = std::move(density);
    MarchPlanner planner(staging, fire_zone, r_c, opt);
    return planner.plan(deploy.positions, {0.0, 0.0});
  };
  MarchPlan uniform = march(uniform_density());
  MarchPlan weighted = march(heat);

  TextTable table;
  table.header({"deployment", "<60 m of fire", "60-120 m", "120-180 m",
                ">180 m", "L", "C"});
  auto row = [&](const std::string& name, const MarchPlan& plan) {
    auto bands = band_histogram(fire_zone, plan.final_positions);
    auto m = simulate_transition(plan.trajectories, r_c, plan.transition_end);
    table.row({name, std::to_string(bands[0]), std::to_string(bands[1]),
               std::to_string(bands[2]), std::to_string(bands[3]),
               fmt_pct(m.stable_link_ratio), m.global_connectivity ? "Y" : "N"});
  };
  row("uniform", uniform);
  row("heat-weighted", weighted);
  std::cout << table.str();

  draw("fire_uniform.svg", fire_zone, uniform.final_positions, r_c);
  draw("fire_weighted.svg", fire_zone, weighted.final_positions, r_c);

  // Distributed refinement: the paper's per-robot two-hop Voronoi Lloyd,
  // run from the weighted deployment (robots keep adapting on-site).
  LocalVoronoiLloyd local(fire_zone, heat, r_c);
  auto refined = local.run(weighted.final_positions, 0.5, 40);
  auto bands = band_histogram(fire_zone, refined.positions);
  std::cout << "distributed two-hop Lloyd refinement: " << refined.steps
            << " steps, " << refined.messages << " messages, innermost band "
            << bands[0] << " robots (was "
            << band_histogram(fire_zone, weighted.final_positions)[0] << ")\n"
            << "done in " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
