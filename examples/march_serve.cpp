// march_serve — batch/streaming front end of the mission-service runtime.
//
// Reads newline-delimited JSON planning requests (stdin or --input FILE),
// executes them on a MissionService worker pool with planner caching, and
// writes one JSON result line per request to stdout, in input order.
// See src/io/job_io.h for the request/response schema.
//
// Usage:
//   march_serve [--threads N] [--intra-threads N] [--queue N] [--reject]
//               [--cache N] [--shards N] [--random-routing]
//               [--kill-shard K@J] [--drain-shard K@J] [--revive-shard K@J]
//               [--input FILE] [--stats] [--metrics FILE]
//
//   --threads N    worker threads (default: hardware concurrency).
//                  With --shards this is PER SHARD (default then 2).
//   --intra-threads N
//                  arena threads *inside* each plan (parallel rotation
//                  search / harmonic sweep / interpolation / centroids;
//                  default 1). Plans are byte-identical at every value —
//                  this trades job-level for plan-level parallelism.
//                  The ANR_THREADS environment variable sets the library
//                  default for standalone (non-service) planner use.
//   --queue N      bounded queue capacity (default 256)
//   --reject       shed load when the queue is full instead of blocking
//   --cache N      planner cache capacity (default 64)
//   --shards N     run N independent service shards behind the
//                  consistent-hash router (src/shard/). N <= 1 keeps the
//                  single-service path.
//   --random-routing
//                  route uniformly at random instead of by cache affinity
//                  (the control baseline; requires --shards)
//   --kill-shard K@J / --drain-shard K@J / --revive-shard K@J
//                  fault drills: after the J-th request has been
//                  submitted, kill / drain / revive shard K. Repeatable;
//                  drills fire in submission order. Requires --shards.
//   --input FILE   read requests from FILE instead of stdin
//   --stats        print a service-stats JSON snapshot to stderr at exit
//                  (with --shards: router + per-shard breakdown)
//   --metrics FILE write a Prometheus text exposition of the run's metrics
//                  (job/cache/planner families; per-shard series are
//                  labeled {shard="i"}) to FILE at exit; "-" writes to
//                  stderr
//
// Example (sharded, with a mid-batch kill drill):
//   ./build/examples/march_serve --shards 4 --threads 1 --kill-shard 2@5
//       --revive-shard 2@9 --stats --input jobs.ndjson
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "anr/anr.h"

namespace {

using namespace anr;

struct Drill {
  enum class Action { kKill, kDrain, kRevive } action;
  int shard = 0;
  std::size_t after_jobs = 0;  ///< fires once this many requests submitted
};

struct ServeOptions {
  runtime::ServiceOptions service;
  int shards = 1;
  bool random_routing = false;
  std::vector<Drill> drills;
  std::string input;
  std::string metrics;
  bool stats = false;
  bool threads_set = false;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--threads N] [--intra-threads N] [--queue N] [--reject]"
               " [--cache N] [--shards N] [--random-routing]"
               " [--kill-shard K@J] [--drain-shard K@J] [--revive-shard K@J]"
               " [--input FILE] [--stats] [--metrics FILE]\n";
  std::exit(2);
}

Drill parse_drill(Drill::Action action, const std::string& spec,
                  const char* argv0) {
  // "K@J": shard K, after J submissions.
  Drill d;
  d.action = action;
  std::size_t at = spec.find('@');
  try {
    if (at == std::string::npos) usage_and_exit(argv0);
    d.shard = std::stoi(spec.substr(0, at));
    d.after_jobs = std::stoul(spec.substr(at + 1));
  } catch (const std::exception&) {
    usage_and_exit(argv0);
  }
  return d;
}

ServeOptions parse(int argc, char** argv) {
  ServeOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--threads") {
      opt.service.threads = std::stoi(need_value());
      opt.threads_set = true;
    } else if (arg == "--intra-threads") {
      opt.service.intra_threads = std::stoi(need_value());
    } else if (arg == "--queue") {
      opt.service.queue_capacity =
          static_cast<std::size_t>(std::stoul(need_value()));
    } else if (arg == "--reject") {
      opt.service.overflow = runtime::OverflowPolicy::kReject;
    } else if (arg == "--cache") {
      opt.service.cache_capacity =
          static_cast<std::size_t>(std::stoul(need_value()));
    } else if (arg == "--shards") {
      opt.shards = std::stoi(need_value());
    } else if (arg == "--random-routing") {
      opt.random_routing = true;
    } else if (arg == "--kill-shard") {
      opt.drills.push_back(
          parse_drill(Drill::Action::kKill, need_value(), argv[0]));
    } else if (arg == "--drain-shard") {
      opt.drills.push_back(
          parse_drill(Drill::Action::kDrain, need_value(), argv[0]));
    } else if (arg == "--revive-shard") {
      opt.drills.push_back(
          parse_drill(Drill::Action::kRevive, need_value(), argv[0]));
    } else if (arg == "--input") {
      opt.input = need_value();
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--metrics") {
      opt.metrics = need_value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opt.shards <= 1 && (!opt.drills.empty() || opt.random_routing)) {
    std::cerr << "march_serve: --kill/--drain/--revive-shard and"
                 " --random-routing require --shards N (N > 1)\n";
    std::exit(2);
  }
  for (const Drill& d : opt.drills) {
    if (d.shard < 0 || d.shard >= opt.shards) {
      std::cerr << "march_serve: drill shard " << d.shard
                << " out of range for --shards " << opt.shards << "\n";
      std::exit(2);
    }
  }
  return opt;
}

const char* drill_name(Drill::Action a) {
  switch (a) {
    case Drill::Action::kKill: return "kill";
    case Drill::Action::kDrain: return "drain";
    case Drill::Action::kRevive: return "revive";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt = parse(argc, argv);

  std::ifstream file;
  if (!opt.input.empty()) {
    file.open(opt.input);
    if (!file) {
      std::cerr << "march_serve: cannot open " << opt.input << "\n";
      return 1;
    }
  }
  std::istream& in = opt.input.empty() ? std::cin : file;

  obs::Registry registry;
  if (!opt.metrics.empty()) opt.service.registry = &registry;

  // Single-service path (the default) is untouched by sharding; the
  // sharded path routes every submission through the consistent-hash
  // router. Both expose the same submit-one-job surface here.
  std::unique_ptr<runtime::MissionService> single;
  std::unique_ptr<shard::ShardedMissionService> sharded;
  if (opt.shards > 1) {
    shard::ShardedServiceOptions so;
    so.shards = opt.shards;
    so.shard = opt.service;
    // Hardware-concurrency-per-shard multiplies by N; default to a
    // deliberate 2 per shard unless the user chose.
    if (!opt.threads_set) so.shard.threads = 2;
    if (opt.random_routing) so.routing = shard::RoutingPolicy::kRandom;
    if (!opt.metrics.empty()) so.registry = &registry;
    sharded = std::make_unique<shard::ShardedMissionService>(so);
  } else {
    single = std::make_unique<runtime::MissionService>(opt.service);
  }
  auto submit_one = [&](runtime::PlanJob job) {
    return sharded ? sharded->submit(std::move(job))
                   : single->submit(std::move(job));
  };

  std::map<std::string, std::vector<Vec2>> deployments;

  // Submit as we read — with kBlock backpressure the reader naturally
  // throttles to the pool; results are printed in input order afterward.
  // Fault drills fire between submissions once their trigger count is
  // reached, in submission order.
  std::vector<std::future<runtime::JobResult>> futures;
  std::vector<bool> include_plan;
  std::string line;
  std::size_t lineno = 0;
  std::size_t submitted = 0;
  std::size_t next_drill = 0;
  auto fire_due_drills = [&] {
    while (next_drill < opt.drills.size() &&
           opt.drills[next_drill].after_jobs <= submitted) {
      const Drill& d = opt.drills[next_drill++];
      std::cerr << "drill: " << drill_name(d.action) << " shard " << d.shard
                << " after " << submitted << " submissions\n";
      switch (d.action) {
        case Drill::Action::kKill: sharded->kill(d.shard); break;
        case Drill::Action::kDrain: sharded->drain(d.shard); break;
        case Drill::Action::kRevive: sharded->revive(d.shard); break;
      }
    }
  };
  if (sharded) fire_due_drills();  // "@0" drills precede the first job
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      JobRequest req = job_from_json(json::parse(line), &deployments);
      if (req.job.id.empty()) req.job.id = "line-" + std::to_string(lineno);
      include_plan.push_back(req.include_plan);
      futures.push_back(submit_one(std::move(req.job)));
      ++submitted;
      if (sharded) fire_due_drills();
    } catch (const std::exception& e) {
      // Malformed request: emit an error result for this line without
      // losing position or stopping the batch. Echo the caller's id when
      // the line at least parsed as JSON carrying one.
      runtime::JobResult bad;
      bad.id = "line-" + std::to_string(lineno);
      try {
        const json::Value v = json::parse(line);
        if (v.is_object() && v.as_object().count("id") &&
            v.at("id").is_string() && !v.at("id").as_string().empty()) {
          bad.id = v.at("id").as_string();
        }
      } catch (...) {
        // not JSON at all: keep the positional id
      }
      bad.ok = false;
      bad.error = std::string("bad request: ") + e.what();
      std::promise<runtime::JobResult> p;
      p.set_value(std::move(bad));
      include_plan.push_back(false);
      futures.push_back(p.get_future());
    }
  }

  int failures = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    runtime::JobResult r = futures[i].get();
    if (!r.ok) ++failures;
    std::cout << result_to_json(r, include_plan[i]).dump() << "\n";
  }
  std::cout.flush();

  if (sharded) {
    sharded->shutdown();
    if (opt.stats) {
      std::cerr << shard::sharded_stats_to_json(sharded->stats()).dump(2)
                << "\n";
    }
  } else {
    single->shutdown();
    if (opt.stats) {
      std::cerr << stats_to_json(single->stats()).dump(2) << "\n";
    }
  }
  if (!opt.metrics.empty()) {
    // Same text a /metricsz HTTP endpoint would serve, written at exit.
    std::string text = metrics_text_exposition(registry);
    if (opt.metrics == "-") {
      std::cerr << "/metricsz\n" << text;
    } else {
      std::ofstream mf(opt.metrics);
      if (!mf) {
        std::cerr << "march_serve: cannot write " << opt.metrics << "\n";
        return 1;
      }
      mf << text;
      std::cerr << "/metricsz -> " << opt.metrics << " ("
                << registry.snapshot().size() << " series)\n";
    }
  }
  return failures == 0 ? 0 : 1;
}
