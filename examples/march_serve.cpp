// march_serve — batch/streaming front end of the mission-service runtime.
//
// Reads newline-delimited JSON planning requests (stdin or --input FILE),
// executes them on a MissionService worker pool with planner caching, and
// writes one JSON result line per request to stdout, in input order.
// See src/io/job_io.h for the request/response schema.
//
// Usage:
//   march_serve [--threads N] [--intra-threads N] [--queue N] [--reject]
//               [--cache N] [--input FILE] [--stats] [--metrics FILE]
//
//   --threads N    worker threads (default: hardware concurrency)
//   --intra-threads N
//                  arena threads *inside* each plan (parallel rotation
//                  search / harmonic sweep / interpolation / centroids;
//                  default 1). Plans are byte-identical at every value —
//                  this trades job-level for plan-level parallelism.
//                  The ANR_THREADS environment variable sets the library
//                  default for standalone (non-service) planner use.
//   --queue N      bounded queue capacity (default 256)
//   --reject       shed load when the queue is full instead of blocking
//   --cache N      planner cache capacity (default 64)
//   --input FILE   read requests from FILE instead of stdin
//   --stats        print a service-stats JSON snapshot to stderr at exit
//   --metrics FILE write a Prometheus text exposition of the run's metrics
//                  (job/cache/planner families, see src/obs/) to FILE at
//                  exit; "-" writes to stderr
//
// Example:
//   printf '%s\n%s\n' \
//     '{"id":"a","scenario":1,"separation":15,"robots":64,"options":{"grid_points":400,"cvt_samples":5000,"max_adjust_steps":6}}' \
//     '{"id":"b","scenario":1,"separation":25,"robots":64,"options":{"grid_points":400,"cvt_samples":5000,"max_adjust_steps":6}}' \
//   | ./build/examples/march_serve --threads 4 --stats
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "anr/anr.h"

namespace {

using namespace anr;

struct ServeOptions {
  runtime::ServiceOptions service;
  std::string input;
  std::string metrics;
  bool stats = false;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--threads N] [--intra-threads N] [--queue N] [--reject]"
               " [--cache N] [--input FILE] [--stats] [--metrics FILE]\n";
  std::exit(2);
}

ServeOptions parse(int argc, char** argv) {
  ServeOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--threads") {
      opt.service.threads = std::stoi(need_value());
    } else if (arg == "--intra-threads") {
      opt.service.intra_threads = std::stoi(need_value());
    } else if (arg == "--queue") {
      opt.service.queue_capacity =
          static_cast<std::size_t>(std::stoul(need_value()));
    } else if (arg == "--reject") {
      opt.service.overflow = runtime::OverflowPolicy::kReject;
    } else if (arg == "--cache") {
      opt.service.cache_capacity =
          static_cast<std::size_t>(std::stoul(need_value()));
    } else if (arg == "--input") {
      opt.input = need_value();
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--metrics") {
      opt.metrics = need_value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt = parse(argc, argv);

  std::ifstream file;
  if (!opt.input.empty()) {
    file.open(opt.input);
    if (!file) {
      std::cerr << "march_serve: cannot open " << opt.input << "\n";
      return 1;
    }
  }
  std::istream& in = opt.input.empty() ? std::cin : file;

  obs::Registry registry;
  if (!opt.metrics.empty()) opt.service.registry = &registry;
  runtime::MissionService service(opt.service);
  std::map<std::string, std::vector<Vec2>> deployments;

  // Submit as we read — with kBlock backpressure the reader naturally
  // throttles to the pool; results are printed in input order afterward.
  std::vector<std::future<runtime::JobResult>> futures;
  std::vector<bool> include_plan;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      JobRequest req = job_from_json(json::parse(line), &deployments);
      if (req.job.id.empty()) req.job.id = "line-" + std::to_string(lineno);
      include_plan.push_back(req.include_plan);
      futures.push_back(service.submit(std::move(req.job)));
    } catch (const std::exception& e) {
      // Malformed request: emit an error result for this line without
      // losing position or stopping the batch. Echo the caller's id when
      // the line at least parsed as JSON carrying one.
      runtime::JobResult bad;
      bad.id = "line-" + std::to_string(lineno);
      try {
        const json::Value v = json::parse(line);
        if (v.is_object() && v.as_object().count("id") &&
            v.at("id").is_string() && !v.at("id").as_string().empty()) {
          bad.id = v.at("id").as_string();
        }
      } catch (...) {
        // not JSON at all: keep the positional id
      }
      bad.ok = false;
      bad.error = std::string("bad request: ") + e.what();
      std::promise<runtime::JobResult> p;
      p.set_value(std::move(bad));
      include_plan.push_back(false);
      futures.push_back(p.get_future());
    }
  }

  int failures = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    runtime::JobResult r = futures[i].get();
    if (!r.ok) ++failures;
    std::cout << result_to_json(r, include_plan[i]).dump() << "\n";
  }
  std::cout.flush();

  service.shutdown();
  if (opt.stats) {
    std::cerr << stats_to_json(service.stats()).dump(2) << "\n";
  }
  if (!opt.metrics.empty()) {
    // Same text a /metricsz HTTP endpoint would serve, written at exit.
    std::string text = metrics_text_exposition(registry);
    if (opt.metrics == "-") {
      std::cerr << "/metricsz\n" << text;
    } else {
      std::ofstream mf(opt.metrics);
      if (!mf) {
        std::cerr << "march_serve: cannot write " << opt.metrics << "\n";
        return 1;
      }
      mf << text;
      std::cerr << "/metricsz -> " << opt.metrics << " ("
                << registry.snapshot().size() << " series)\n";
    }
  }
  return failures == 0 ? 0 : 1;
}
