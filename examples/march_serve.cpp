// march_serve — batch/streaming front end of the mission-service runtime.
//
// Batch mode (default): reads newline-delimited JSON planning requests
// (stdin or --input FILE), executes them on a MissionService worker pool
// with planner caching, and writes one JSON result line per request to
// stdout, in input order. See src/io/job_io.h for the schema.
//
// Streaming mode (--stream / --listen): a long-lived frontend speaking
// length-prefixed frames (src/io/frame_io.h) with per-request deadlines
// and SLO-driven admission control (src/runtime/admission.h): full
// service while healthy, shedding to the degraded baseline plan as
// pressure builds, typed kRejectedOverload beyond that.
//
// Usage:
//   march_serve [--threads N] [--intra-threads N] [--queue N] [--reject]
//               [--cache N] [--shards N] [--random-routing]
//               [--kill-shard K@J] [--drain-shard K@J] [--revive-shard K@J]
//               [--input FILE] [--stats] [--metrics FILE]
//               [--stream] [--listen PATH] [--slo S]
//               [--shed-pressure X] [--reject-pressure Y]
//
//   --threads N    worker threads (default: hardware concurrency).
//                  With --shards this is PER SHARD (default then 2).
//   --intra-threads N
//                  arena threads *inside* each plan (parallel rotation
//                  search / harmonic sweep / interpolation / centroids;
//                  default 1). Plans are byte-identical at every value —
//                  this trades job-level for plan-level parallelism.
//                  The ANR_THREADS environment variable sets the library
//                  default for standalone (non-service) planner use.
//   --queue N      bounded queue capacity (default 256)
//   --reject       shed load when the queue is full instead of blocking
//   --cache N      planner cache capacity (default 64)
//   --shards N     run N independent service shards behind the
//                  consistent-hash router (src/shard/). N <= 1 keeps the
//                  single-service path.
//   --random-routing
//                  route uniformly at random instead of by cache affinity
//                  (the control baseline; requires --shards)
//   --kill-shard K@J / --drain-shard K@J / --revive-shard K@J
//                  fault drills: after the J-th request has been
//                  submitted, kill / drain / revive shard K. Repeatable;
//                  drills fire in submission order. Requires --shards.
//   --input FILE   read requests from FILE instead of stdin
//   --stats        print a service-stats JSON snapshot to stderr at exit
//                  (with --shards: router + per-shard breakdown; in
//                  streaming mode also gateway accept/shed/reject counts)
//   --metrics FILE write the run's metrics to FILE at exit — Prometheus
//                  text, or NDJSON when FILE ends in ".ndjson"; "-"
//                  writes text to stderr. Also written on SIGTERM/SIGINT,
//                  so a killed run still leaves a complete snapshot.
//   --stream       serve framed requests on stdin/stdout until EOF
//   --listen PATH  serve framed requests on a unix socket at PATH,
//                  one connection at a time, until terminated
//   --slo S        streaming admission SLO: target p99 end-to-end
//                  latency for full-service jobs, seconds (default 1.0)
//   --shed-pressure X / --reject-pressure Y
//                  admission thresholds over pressure =
//                  max(queue occupancy, p99/SLO); shed at X (default
//                  0.75), reject at Y (default 1.5)
//
// Example (sharded, with a mid-batch kill drill):
//   ./build/examples/march_serve --shards 4 --threads 1 --kill-shard 2@5
//       --revive-shard 2@9 --stats --input jobs.ndjson
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "anr/anr.h"

namespace {

using namespace anr;

struct Drill {
  enum class Action { kKill, kDrain, kRevive } action;
  int shard = 0;
  std::size_t after_jobs = 0;  ///< fires once this many requests submitted
};

struct ServeOptions {
  runtime::ServiceOptions service;
  int shards = 1;
  bool random_routing = false;
  std::vector<Drill> drills;
  std::string input;
  std::string metrics;
  bool stats = false;
  bool threads_set = false;
  bool stream = false;
  std::string listen;
  double slo = 1.0;
  double shed_pressure = 0.75;
  double reject_pressure = 1.5;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--threads N] [--intra-threads N] [--queue N] [--reject]"
               " [--cache N] [--shards N] [--random-routing]"
               " [--kill-shard K@J] [--drain-shard K@J] [--revive-shard K@J]"
               " [--input FILE] [--stats] [--metrics FILE]"
               " [--stream] [--listen PATH] [--slo S]"
               " [--shed-pressure X] [--reject-pressure Y]\n";
  std::exit(2);
}

Drill parse_drill(Drill::Action action, const std::string& spec,
                  const char* argv0) {
  // "K@J": shard K, after J submissions.
  Drill d;
  d.action = action;
  std::size_t at = spec.find('@');
  try {
    if (at == std::string::npos) usage_and_exit(argv0);
    d.shard = std::stoi(spec.substr(0, at));
    d.after_jobs = std::stoul(spec.substr(at + 1));
  } catch (const std::exception&) {
    usage_and_exit(argv0);
  }
  return d;
}

ServeOptions parse(int argc, char** argv) {
  ServeOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--threads") {
      opt.service.threads = std::stoi(need_value());
      opt.threads_set = true;
    } else if (arg == "--intra-threads") {
      opt.service.intra_threads = std::stoi(need_value());
    } else if (arg == "--queue") {
      opt.service.queue_capacity =
          static_cast<std::size_t>(std::stoul(need_value()));
    } else if (arg == "--reject") {
      opt.service.overflow = runtime::OverflowPolicy::kReject;
    } else if (arg == "--cache") {
      opt.service.cache_capacity =
          static_cast<std::size_t>(std::stoul(need_value()));
    } else if (arg == "--shards") {
      opt.shards = std::stoi(need_value());
    } else if (arg == "--random-routing") {
      opt.random_routing = true;
    } else if (arg == "--kill-shard") {
      opt.drills.push_back(
          parse_drill(Drill::Action::kKill, need_value(), argv[0]));
    } else if (arg == "--drain-shard") {
      opt.drills.push_back(
          parse_drill(Drill::Action::kDrain, need_value(), argv[0]));
    } else if (arg == "--revive-shard") {
      opt.drills.push_back(
          parse_drill(Drill::Action::kRevive, need_value(), argv[0]));
    } else if (arg == "--input") {
      opt.input = need_value();
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--metrics") {
      opt.metrics = need_value();
    } else if (arg == "--stream") {
      opt.stream = true;
    } else if (arg == "--listen") {
      opt.listen = need_value();
    } else if (arg == "--slo") {
      opt.slo = std::stod(need_value());
    } else if (arg == "--shed-pressure") {
      opt.shed_pressure = std::stod(need_value());
    } else if (arg == "--reject-pressure") {
      opt.reject_pressure = std::stod(need_value());
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opt.shards <= 1 && (!opt.drills.empty() || opt.random_routing)) {
    std::cerr << "march_serve: --kill/--drain/--revive-shard and"
                 " --random-routing require --shards N (N > 1)\n";
    std::exit(2);
  }
  if (opt.stream && !opt.listen.empty()) {
    std::cerr << "march_serve: --stream and --listen are exclusive\n";
    std::exit(2);
  }
  for (const Drill& d : opt.drills) {
    if (d.shard < 0 || d.shard >= opt.shards) {
      std::cerr << "march_serve: drill shard " << d.shard
                << " out of range for --shards " << opt.shards << "\n";
      std::exit(2);
    }
  }
  return opt;
}

const char* drill_name(Drill::Action a) {
  switch (a) {
    case Drill::Action::kKill: return "kill";
    case Drill::Action::kDrain: return "drain";
    case Drill::Action::kRevive: return "revive";
  }
  return "?";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Writes the metrics snapshot in the format the file name asks for.
/// Safe to call from the signal-watcher thread: Registry::snapshot()
/// takes only the registry mutex, which no planning hot path holds.
bool write_metrics_file(const obs::Registry& registry,
                        const std::string& path) {
  std::string text;
  if (ends_with(path, ".ndjson")) {
    std::ostringstream os;
    write_metrics_ndjson(registry, os);
    text = os.str();
  } else {
    text = metrics_text_exposition(registry);
  }
  if (path == "-") {
    std::cerr << "/metricsz\n" << text;
    return true;
  }
  std::ofstream mf(path);
  if (!mf) {
    std::cerr << "march_serve: cannot write " << path << "\n";
    return false;
  }
  mf << text;
  mf.flush();
  return static_cast<bool>(mf);
}

/// std::streambuf over a raw fd, enough for the framed protocol on a
/// unix socket (blocking reads/writes, 8 KiB buffers).
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(ibuf_, ibuf_, ibuf_);
    setp(obuf_, obuf_ + sizeof(obuf_));
  }
  ~FdStreambuf() override { sync(); }

 protected:
  int underflow() override {
    ssize_t n;
    do {
      n = ::read(fd_, ibuf_, sizeof(ibuf_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(ibuf_, ibuf_, ibuf_ + n);
    return traits_type::to_int_type(ibuf_[0]);
  }

  int overflow(int ch) override {
    if (flush_buffer() != 0) return traits_type::eof();
    if (ch != traits_type::eof()) {
      *pptr() = static_cast<char>(ch);
      pbump(1);
    }
    return ch == traits_type::eof() ? 0 : ch;
  }

  int sync() override { return flush_buffer(); }

 private:
  int flush_buffer() {
    const char* p = pbase();
    while (p < pptr()) {
      ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      p += n;
    }
    setp(obuf_, obuf_ + sizeof(obuf_));
    return 0;
  }

  int fd_;
  char ibuf_[8192];
  char obuf_[8192];
};

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt = parse(argc, argv);
  const bool streaming = opt.stream || !opt.listen.empty();

  // Block termination signals before any thread exists so every worker
  // inherits the mask; a dedicated watcher consumes them with sigwait.
  sigset_t term_set;
  sigemptyset(&term_set);
  sigaddset(&term_set, SIGTERM);
  sigaddset(&term_set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &term_set, nullptr);

  std::ifstream file;
  if (!opt.input.empty()) {
    file.open(opt.input);
    if (!file) {
      std::cerr << "march_serve: cannot open " << opt.input << "\n";
      return 1;
    }
  }
  std::istream& in = opt.input.empty() ? std::cin : file;

  obs::Registry registry;
  // Streaming always wires the registry: the admission controller reads
  // its latency histograms even when no --metrics file is requested.
  if (!opt.metrics.empty() || streaming) opt.service.registry = &registry;

  // Single-service path (the default) is untouched by sharding; the
  // sharded path routes every submission through the consistent-hash
  // router. Both expose the same submit-one-job surface here.
  std::unique_ptr<runtime::MissionService> single;
  std::unique_ptr<shard::ShardedMissionService> sharded;
  if (opt.shards > 1) {
    shard::ShardedServiceOptions so;
    so.shards = opt.shards;
    so.shard = opt.service;
    // Hardware-concurrency-per-shard multiplies by N; default to a
    // deliberate 2 per shard unless the user chose.
    if (!opt.threads_set) so.shard.threads = 2;
    if (opt.random_routing) so.routing = shard::RoutingPolicy::kRandom;
    if (opt.service.registry != nullptr) so.registry = &registry;
    sharded = std::make_unique<shard::ShardedMissionService>(so);
  } else {
    single = std::make_unique<runtime::MissionService>(opt.service);
  }
  auto submit_one = [&](runtime::PlanJob job) {
    return sharded ? sharded->submit(std::move(job))
                   : single->submit(std::move(job));
  };

  auto print_stats = [&] {
    if (!opt.stats) return;
    if (sharded) {
      std::cerr << shard::sharded_stats_to_json(sharded->stats()).dump(2)
                << "\n";
    } else {
      std::cerr << stats_to_json(single->stats()).dump(2) << "\n";
    }
  };

  // flush_output is the one exit path for observability artifacts; both
  // the clean end of main and the signal watcher funnel through it, the
  // once_flag keeps a racing SIGTERM from double-writing.
  std::once_flag flush_once;
  auto flush_output = [&] {
    std::call_once(flush_once, [&] {
      print_stats();
      if (!opt.metrics.empty()) {
        if (write_metrics_file(registry, opt.metrics) &&
            opt.metrics != "-") {
          std::cerr << "/metricsz -> " << opt.metrics << " ("
                    << registry.snapshot().size() << " series)\n";
        }
      }
    });
  };

  // The watcher thread turns SIGTERM/SIGINT into a flush-and-exit: even
  // a run killed mid-batch leaves complete stats and metrics behind.
  std::thread([&flush_output, term_set] {
    int sig = 0;
    sigwait(&term_set, &sig);
    flush_output();
    std::cerr.flush();
    std::_Exit(sig == SIGINT ? 130 : 143);
  }).detach();

  if (streaming) {
    // Admission-controlled streaming: controller watches the
    // full-service latency histograms the service(s) registered above.
    runtime::AdmissionOptions ao;
    ao.slo_seconds = opt.slo;
    ao.shed_pressure = opt.shed_pressure;
    ao.reject_pressure = opt.reject_pressure;
    ao.queue_capacity = opt.service.queue_capacity *
                        static_cast<std::size_t>(std::max(1, opt.shards));
    ao.registry = &registry;
    runtime::AdmissionController controller(ao);
    if (sharded) {
      for (int i = 0; i < opt.shards; ++i) {
        controller.watch(registry.histogram(
            "anr_job_e2e_full_seconds", {{"shard", std::to_string(i)}}));
      }
    } else {
      controller.watch(registry.histogram("anr_job_e2e_full_seconds", {}));
    }
    runtime::GatewayBackend backend;
    backend.submit = submit_one;
    backend.queue_depth = [&]() -> std::size_t {
      if (single) return single->queue_depth();
      std::size_t total = 0;
      for (int i = 0; i < opt.shards; ++i) {
        total += sharded->shard_service(i).queue_depth();
      }
      return total;
    };
    runtime::ServingGateway gateway(std::move(backend), &controller);
    runtime::StreamFrontend frontend(&gateway);

    auto report = [&](const runtime::StreamStats& ss) {
      std::cerr << "stream: " << ss.requests << " requests, "
                << ss.responses << " responses (" << ss.plan_frames
                << " with binary plans), " << ss.bad_requests
                << " bad, " << ss.protocol_errors << " protocol errors\n";
      if (opt.stats) {
        std::cerr << runtime::gateway_stats_to_json(gateway.stats()).dump(2)
                  << "\n";
      }
    };

    if (opt.stream) {
      runtime::StreamStats ss = frontend.serve(in, std::cout);
      report(ss);
    } else {
      int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (listen_fd < 0) {
        std::cerr << "march_serve: socket() failed\n";
        return 1;
      }
      ::unlink(opt.listen.c_str());
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (opt.listen.size() >= sizeof(addr.sun_path)) {
        std::cerr << "march_serve: socket path too long\n";
        return 1;
      }
      std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                    opt.listen.c_str());
      if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0 ||
          ::listen(listen_fd, 8) != 0) {
        std::cerr << "march_serve: cannot listen on " << opt.listen << "\n";
        return 1;
      }
      std::cerr << "listening on " << opt.listen << "\n";
      for (;;) {
        int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) {
          if (errno == EINTR) continue;
          break;
        }
        FdStreambuf buf_in(conn), buf_out(conn);
        std::istream cin_fd(&buf_in);
        std::ostream cout_fd(&buf_out);
        runtime::StreamStats ss = frontend.serve(cin_fd, cout_fd);
        report(ss);
        ::close(conn);
      }
      ::close(listen_fd);
      ::unlink(opt.listen.c_str());
    }
    if (sharded) {
      sharded->shutdown();
    } else {
      single->shutdown();
    }
    flush_output();
    return 0;
  }

  std::map<std::string, std::vector<Vec2>> deployments;

  // Submit as we read — with kBlock backpressure the reader naturally
  // throttles to the pool; results are printed in input order afterward.
  // Fault drills fire between submissions once their trigger count is
  // reached, in submission order.
  std::vector<std::future<runtime::JobResult>> futures;
  std::vector<bool> include_plan;
  std::string line;
  std::size_t lineno = 0;
  std::size_t submitted = 0;
  std::size_t next_drill = 0;
  auto fire_due_drills = [&] {
    while (next_drill < opt.drills.size() &&
           opt.drills[next_drill].after_jobs <= submitted) {
      const Drill& d = opt.drills[next_drill++];
      std::cerr << "drill: " << drill_name(d.action) << " shard " << d.shard
                << " after " << submitted << " submissions\n";
      switch (d.action) {
        case Drill::Action::kKill: sharded->kill(d.shard); break;
        case Drill::Action::kDrain: sharded->drain(d.shard); break;
        case Drill::Action::kRevive: sharded->revive(d.shard); break;
      }
    }
  };
  if (sharded) fire_due_drills();  // "@0" drills precede the first job
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      JobRequest req = job_from_json(json::parse(line), &deployments);
      if (req.job.id.empty()) req.job.id = "line-" + std::to_string(lineno);
      include_plan.push_back(req.include_plan);
      futures.push_back(submit_one(std::move(req.job)));
      ++submitted;
      if (sharded) fire_due_drills();
    } catch (const std::exception& e) {
      // Malformed request: emit an error result for this line without
      // losing position or stopping the batch. Echo the caller's id when
      // the line at least parsed as JSON carrying one.
      runtime::JobResult bad;
      bad.id = "line-" + std::to_string(lineno);
      try {
        const json::Value v = json::parse(line);
        if (v.is_object() && v.as_object().count("id") &&
            v.at("id").is_string() && !v.at("id").as_string().empty()) {
          bad.id = v.at("id").as_string();
        }
      } catch (...) {
        // not JSON at all: keep the positional id
      }
      bad.ok = false;
      bad.status = runtime::JobStatus::kRejectedInvalid;
      bad.error = std::string("bad request: ") + e.what();
      std::promise<runtime::JobResult> p;
      p.set_value(std::move(bad));
      include_plan.push_back(false);
      futures.push_back(p.get_future());
    }
  }

  int failures = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    runtime::JobResult r = futures[i].get();
    if (!r.ok) ++failures;
    std::cout << result_to_json(r, include_plan[i]).dump() << "\n";
  }
  std::cout.flush();

  if (sharded) {
    sharded->shutdown();
  } else {
    single->shutdown();
  }
  flush_output();
  return failures == 0 ? 0 : 1;
}
