// Terrain marching (paper future work, Sec. V: "3D surface cases").
//
// The same planar plan is evaluated on increasingly rough terrain: travel
// cost becomes surface arc length and the radio model becomes 3D, so
// hills both lengthen the march and thin out the link structure. The
// printout shows how much headroom the planar L leaves before terrain
// effects endanger connectivity.
//
// Run: ./build/examples/terrain_march
#include <iostream>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "terrain/surface_metrics.h"
#include "terrain/surface_planner.h"

int main() {
  using namespace anr;
  Stopwatch sw;
  Scenario sc = scenario(1);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density());
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range);
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  MarchPlan plan = planner.plan(deploy.positions, off);

  BBox bb = sc.m1.bbox();
  bb.expand(sc.m2_at(20.0).bbox());

  TextTable table;
  table.header({"terrain", "surface D (m)", "vs planar", "links at start",
                "L", "C", "max climb (m)"});
  for (double amplitude : {0.0, 15.0, 30.0, 45.0, 60.0}) {
    HeightField terrain =
        amplitude == 0.0
            ? HeightField{}
            : HeightField::rolling(bb, 60, amplitude, 140.0, 23);
    SurfaceMetrics m = simulate_on_surface(plan.trajectories, terrain,
                                           sc.comm_range, plan.transition_end);
    table.row({amplitude == 0.0 ? "flat" : fmt(amplitude, 0) + " m hills",
               fmt(m.surface_distance, 0),
               "+" + fmt_pct(m.surface_distance / m.planar_distance - 1.0),
               std::to_string(m.base.initial_links),
               fmt_pct(m.base.stable_link_ratio),
               m.base.global_connectivity ? "Y" : "N",
               fmt(m.max_climb, 1)});
  }
  std::cout << "planar plan evaluated on rolling terrain (scenario 1, "
               "20x r_c)\n"
            << table.str();

  // Surface-aware planning: re-plan *for* the roughest terrain (3D link
  // model, surface harmonic weights, slope-weighted CVT) and compare.
  HeightField rough = HeightField::rolling(bb, 60, 60.0, 140.0, 23);
  SurfacePlannerOptions sopt;
  SurfaceMarchPlanner surf(sc.m1, sc.m2_shape, rough, sc.comm_range, sopt);
  MarchPlan splan = surf.plan(deploy.positions, off);
  SurfaceMetrics planar_on_rough = simulate_on_surface(
      plan.trajectories, rough, sc.comm_range, plan.transition_end);
  SurfaceMetrics aware = simulate_on_surface(
      splan.trajectories, rough, sc.comm_range, splan.transition_end);
  TextTable cmp;
  cmp.header({"planner on 60 m hills", "L (3D)", "C", "surface D (m)"});
  cmp.row({"terrain-blind (planar)",
           fmt_pct(planar_on_rough.base.stable_link_ratio),
           planar_on_rough.base.global_connectivity ? "Y" : "N",
           fmt(planar_on_rough.surface_distance, 0)});
  cmp.row({"surface-aware", fmt_pct(aware.base.stable_link_ratio),
           aware.base.global_connectivity ? "Y" : "N",
           fmt(aware.surface_distance, 0)});
  std::cout << "\n" << cmp.str() << "done in " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
