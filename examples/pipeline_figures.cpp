// Regenerates the paper's Fig. 2 as six SVG panels (fig2a.svg …
// fig2f.svg) on the scenario-3 geometry:
//   (a) connectivity graph in M1        (b) extracted triangulation T
//   (c) harmonic map of T on the disk   (d) gridded M2 with the pond
//   (e) redeployment along the map      (f) optimal coverage after Lloyd
// Blue edges are links preserved from M1, red edges are new ones — the
// paper's color convention.
//
// Run: ./build/examples/pipeline_figures   (writes ./fig2*.svg)
#include <iostream>

#include "anr/anr.h"
#include "common/table.h"

namespace {

using namespace anr;

void save(const SvgCanvas& canvas, const std::string& path) {
  if (canvas.save(path)) {
    std::cout << "  wrote " << path << "\n";
  } else {
    std::cerr << "  FAILED to write " << path << "\n";
  }
}

// Splits current links into preserved (existed in M1) and new.
void draw_colored_links(SvgCanvas& canvas, const std::vector<Vec2>& start,
                        const std::vector<Vec2>& now, double r_c) {
  SvgStyle blue;
  blue.stroke = "#1f6fb2";
  SvgStyle red;
  red.stroke = "#c23b22";
  double r2 = r_c * r_c;
  for (auto [i, j] : communication_links(now, r_c)) {
    bool existed = distance2(start[static_cast<std::size_t>(i)],
                             start[static_cast<std::size_t>(j)]) <= r2 + 1e-9;
    canvas.line(now[static_cast<std::size_t>(i)],
                now[static_cast<std::size_t>(j)], existed ? blue : red);
  }
}

}  // namespace

int main() {
  Scenario sc = scenario(3);
  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, 1,
                                           uniform_density())
                    .positions;
  Vec2 off = sc.m1.centroid() + Vec2{20.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  std::cout << "regenerating Fig. 2 panels (scenario 3)\n";

  // (a) connectivity graph in M1.
  {
    SvgCanvas c(40.0);
    c.foi(sc.m1, "#777777");
    SvgStyle gray;
    gray.stroke = "#9db6c9";
    c.links(deploy, communication_links(deploy, sc.comm_range), gray);
    c.robots(deploy);
    save(c, "fig2a.svg");
  }

  // (b) triangulation T.
  auto ext = extract_triangulation(deploy, sc.comm_range);
  {
    SvgCanvas c(40.0);
    c.foi(sc.m1, "#777777");
    SvgStyle edge;
    edge.stroke = "#4a7aa5";
    c.mesh(ext.mesh, edge);
    c.robots(deploy);
    save(c, "fig2b.svg");
  }

  // (c) harmonic map of T on the unit disk (scaled up for visibility).
  DiskMap tmap = harmonic_disk_map(ext.mesh);
  {
    SvgCanvas c(0.15);
    SvgStyle edge;
    edge.stroke = "#4a7aa5";
    edge.stroke_width = 0.01;
    for (const EdgeKey& e : ext.mesh.edges()) {
      c.line(tmap.disk_pos[static_cast<std::size_t>(e.a)],
             tmap.disk_pos[static_cast<std::size_t>(e.b)], edge);
    }
    SvgStyle rim;
    rim.stroke = "#333333";
    rim.stroke_width = 0.015;
    c.circle({0, 0}, 1.0, rim);
    save(c, "fig2c.svg");
  }

  // (d) gridded M2 (the flower pond shows as the hole).
  MesherOptions mopt;
  mopt.target_grid_points = 1200;
  FoiMesh m2_mesh = mesh_foi(sc.m2_shape, mopt);
  {
    SvgCanvas c(40.0);
    SvgStyle edge;
    edge.stroke = "#b9a774";
    edge.stroke_width = 0.6;
    c.mesh(m2_mesh.mesh, edge);
    c.foi(sc.m2_shape, "#6b5b2a");
    save(c, "fig2d.svg");
  }

  // (e) redeployment along the induced map.
  MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range);
  MarchPlan plan = planner.plan(deploy, off);
  {
    SvgCanvas c(40.0);
    c.foi(sc.m2_shape.translated(off), "#6b5b2a");
    draw_colored_links(c, deploy, plan.mapped_targets, sc.comm_range);
    c.robots(plan.mapped_targets);
    save(c, "fig2e.svg");
  }

  // (f) after the minor adjustment.
  {
    SvgCanvas c(40.0);
    c.foi(sc.m2_shape.translated(off), "#6b5b2a");
    draw_colored_links(c, deploy, plan.final_positions, sc.comm_range);
    c.robots(plan.final_positions);
    save(c, "fig2f.svg");
  }

  std::cout << "done\n";
  return 0;
}
