// Multi-FoI patrol: the paper's motivating mission (Sec. I) — a swarm is
// "instructed to explore a number of FoIs sequentially". The swarm
// deploys in the base FoI, completes its task, marches to a second FoI
// (slim, dissimilar shape), then to a third (with a flower-pond hole),
// preserving local links and global connectivity at every leg.
//
// Writes paper-style figures (links blue = preserved through the leg,
// red = new) to ./patrol_leg*.svg.
//
// Run: ./build/examples/multi_foi_patrol
#include <iostream>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace {

using namespace anr;

// Draws one leg: both FoIs, trajectories, and the destination deployment
// with preserved/new links colored like the paper's figures.
void draw_leg(const std::string& path, const FieldOfInterest& from,
              const FieldOfInterest& to, const MarchPlan& plan, double r_c) {
  SvgCanvas canvas(60.0);
  canvas.foi(from, "#888888");
  canvas.foi(to, "#555555");
  canvas.trajectories(plan.trajectories);

  auto links_at_start = communication_links(plan.start, r_c);
  auto links_at_end = communication_links(plan.final_positions, r_c);
  double r2 = r_c * r_c;
  std::vector<std::pair<int, int>> preserved, fresh;
  for (auto [i, j] : links_at_end) {
    bool existed =
        distance2(plan.start[static_cast<std::size_t>(i)],
                  plan.start[static_cast<std::size_t>(j)]) <= r2 + 1e-9;
    (existed ? preserved : fresh).push_back({i, j});
  }
  SvgStyle blue;
  blue.stroke = "#1f6fb2";
  SvgStyle red;
  red.stroke = "#c23b22";
  canvas.links(plan.final_positions, preserved, blue);
  canvas.links(plan.final_positions, fresh, red);
  canvas.robots(plan.start, 2.5, "#aaaaaa");
  canvas.robots(plan.final_positions, 3.0, "#14304d");
  if (canvas.save(path)) {
    std::cout << "  wrote " << path << " (" << preserved.size()
              << " preserved links blue, " << fresh.size() << " new red)\n";
  }
  (void)links_at_start;
}

}  // namespace

int main() {
  using namespace anr;
  Stopwatch sw;

  // Mission: base blob -> slim corridor FoI -> flower-pond FoI.
  FieldOfInterest f0 = base_m1();
  FieldOfInterest f1 = scenario(2).m2_shape.translated({2000.0, 300.0});
  FieldOfInterest f2 = scenario(3).m2_shape.translated({3600.0, -400.0});
  const int robots = 144;
  const double r_c = 80.0;

  std::cout << "patrol mission: " << fmt(f0.area(), 0) << " -> "
            << fmt(f1.area(), 0) << " -> " << fmt(f2.area(), 0) << " m^2\n";

  auto deploy = optimal_coverage_positions(f0, robots, 1, uniform_density());

  // The mission API plans all legs, chaining each arrival into the next
  // departure, and aggregates the guarantees.
  std::vector<MissionLeg> legs{{f1, {}, "slim corridor"},
                               {f2, {}, "flower pond"}};
  MissionResult mission = run_mission(f0, deploy.positions, legs, r_c);

  TextTable table;
  table.header({"leg", "distance D (m)", "stable links L", "global C",
                "repaired", "snapped"});
  const FieldOfInterest* from = &f0;
  for (std::size_t i = 0; i < mission.legs.size(); ++i) {
    const MissionLegResult& leg = mission.legs[i];
    table.row({leg.name, fmt(leg.metrics.total_distance, 0),
               fmt_pct(leg.metrics.stable_link_ratio),
               leg.metrics.global_connectivity ? "Y" : "N",
               std::to_string(leg.plan.repaired_robots),
               std::to_string(leg.plan.snapped_targets)});
    draw_leg("patrol_leg" + std::to_string(i + 1) + ".svg", *from,
             legs[i].foi, leg.plan, r_c);
    from = &legs[i].foi;
  }
  std::cout << table.str() << "mission total: " << fmt(mission.total_distance, 0)
            << " m, worst-leg L " << fmt_pct(mission.worst_link_ratio)
            << ", always connected: "
            << (mission.always_connected ? "YES" : "NO") << "\n"
            << "done in " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
