// Terrain-cost marching: straight chords vs fast-marching geodesics.
//
// The same scenario-1 march is planned under a family of ground
// conditions — flat, sloped hills, hills + mud, hills + mud + a keep-out
// block in the corridor — with the kTerrainGeodesic motion model, and
// compared against the straight-line paper pipeline: total march
// distance D, stable-link ratio L, global connectivity C, and the
// router's typed degradation counters (solves / snapped goals /
// fallbacks). Over flat ground the geodesic plan is byte-identical to
// the straight one, so its row doubles as a sanity check.
//
// Writes terrain_cost.svg (cost-field raster + routed trajectories) and
// terrain_cost_field.json for offline inspection.
//
// Run: ./build/examples/terrain_cost
#include <iostream>
#include <string>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

int main() {
  using namespace anr;
  Stopwatch sw;
  Scenario sc = scenario(1);
  const int robots = 72;
  auto deploy =
      optimal_coverage_positions(sc.m1, robots, /*seed=*/7, uniform_density());
  Vec2 off = sc.m1.centroid() + Vec2{12.0 * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();
  FieldOfInterest m2_world = sc.m2_shape.translated(off);

  BBox tb = sc.m1.bbox();
  tb.expand(m2_world.bbox().lo);
  tb.expand(m2_world.bbox().hi);
  const Vec2 mid = lerp(sc.m1.centroid(), m2_world.centroid(), 0.5);
  const double rc = sc.comm_range;

  PlannerOptions base;
  base.mesher.target_grid_points = 350;
  base.cvt_samples = 4000;
  base.max_adjust_steps = 5;

  HeightField hills = HeightField::rolling(tb, 10, 35.0, 160.0, /*seed=*/99);
  const MudPatch mud{{mid.x, mid.y + 2.0 * rc}, 90.0, 3.0};
  // Keep-out must sit wholly inside the empty corridor: a robot deployed
  // inside it would have no clean route out.
  const Polygon wall = make_rect({mid.x - rc, mid.y - 0.75 * rc},
                                 {mid.x + rc, mid.y + 0.75 * rc});

  struct Config {
    std::string name;
    bool geodesic = false;
    bool hilly = false;
    bool muddy = false;
    bool walled = false;
  };
  const Config configs[] = {
      {"straight (paper)", false, false, false, false},
      {"geodesic, flat", true, false, false, false},
      {"geodesic, hills", true, true, false, false},
      {"geodesic, hills+mud", true, true, true, false},
      {"geodesic, hills+mud+keep-out", true, true, true, true},
  };

  TextTable table;
  table.header({"config", "D (m)", "vs straight", "L", "C", "solves",
                "snapped", "fallbacks", "plan (ms)"});
  double straight_d = 0.0;
  for (const Config& cfg : configs) {
    PlannerOptions opt = base;
    if (cfg.geodesic) {
      opt.trajectory.motion = MotionModel::kTerrainGeodesic;
      if (cfg.hilly) {
        opt.trajectory.terrain.terrain = hills;
        opt.trajectory.terrain.slope_weight = 2.5;
        opt.trajectory.terrain.uphill_penalty = 0.4;
      }
      if (cfg.muddy) opt.trajectory.terrain.mud.push_back(mud);
      if (cfg.walled) opt.trajectory.terrain.keep_out.push_back(wall);
    }
    MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, opt);
    Stopwatch plan_sw;
    MarchPlan plan = planner.plan(deploy.positions, off);
    const double plan_ms = plan_sw.seconds() * 1e3;
    TransitionMetrics m = simulate_transition(plan.trajectories, sc.comm_range,
                                              plan.transition_end, 120);
    if (!cfg.geodesic) straight_d = m.total_distance;
    table.row({cfg.name, fmt(m.total_distance, 0),
               straight_d > 0.0
                   ? "+" + fmt_pct(m.total_distance / straight_d - 1.0)
                   : "-",
               fmt_pct(m.stable_link_ratio), m.global_connectivity ? "Y" : "N",
               std::to_string(plan.fmm_solves),
               std::to_string(plan.fmm_goal_snapped),
               std::to_string(plan.fmm_fallbacks), fmt(plan_ms, 0)});

    if (cfg.walled) {
      // Richest configuration: dump the cost field and draw the routes
      // over its raster.
      TerrainRouter router(opt.trajectory, tb, sc.comm_range);
      std::string err;
      if (!save_cost_field(router.field(), "terrain_cost_field.json", &err))
        std::cerr << "cost field dump failed: " << err << "\n";
      SvgCanvas canvas;
      canvas.cost_field(router.field());
      canvas.foi(sc.m1, "#2b6cb0");
      canvas.foi(m2_world, "#2f855a");
      canvas.trajectories(plan.trajectories);
      canvas.robots(plan.start);
      if (!canvas.save("terrain_cost.svg"))
        std::cerr << "svg save failed\n";
    }
  }
  std::cout << "scenario 1, " << robots << " robots, 12x r_c separation\n"
            << table.str()
            << "wrote terrain_cost.svg + terrain_cost_field.json in "
            << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
