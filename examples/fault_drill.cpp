// Fault drill: execute the paper's march scenarios under a seeded fault
// campaign, with the recovery policies enabled and disabled, and report
// the survival rate, global connectivity C, stable link ratio L, and the
// extra distance D the recovery cost.
//
//   ./fault_drill [seed] [--events]
//
// The same seed always produces the same campaign, the same execution,
// and the same event log.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/table.h"
#include "coverage/lloyd.h"
#include "fault/fault_schedule.h"
#include "foi/scenario.h"
#include "io/event_io.h"
#include "march/execution_engine.h"
#include "march/planner.h"

namespace {

anr::PlannerOptions drill_options() {
  anr::PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool print_events = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--events") {
      print_events = true;
    } else {
      seed = std::strtoull(arg.c_str(), nullptr, 10);
    }
  }

  anr::TextTable table;
  table.header({"scenario", "recovery", "survival", "C always", "C final",
                "L", "D plan", "D exec", "D extra", "pauses", "absorbs",
                "degraded"});

  for (int id : {1, 5}) {
    anr::Scenario sc = anr::scenario(id);
    auto deploy = anr::optimal_coverage_positions(sc.m1, 72, /*seed=*/1,
                                                  anr::uniform_density())
                      .positions;
    anr::Vec2 offset = sc.m1.centroid() +
                       anr::Vec2{12.0 * sc.comm_range, 0.0} -
                       sc.m2_shape.centroid();
    anr::MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range,
                              drill_options());
    anr::MarchPlan plan = planner.plan(deploy, offset);
    anr::FieldOfInterest m2_world = sc.m2_shape.translated(offset);

    anr::Rng rng(seed ^ static_cast<std::uint64_t>(id));
    anr::fault::CampaignOptions co;
    co.crashes = 2;
    anr::fault::FaultSchedule schedule = anr::fault::random_campaign(
        rng, 72, 0.0, plan.total_time, co);
    // One long actuator jam in the thick of the transition: with recovery
    // the swarm pauses and waits for the robot; without it the swarm
    // marches away and loses connectivity.
    anr::fault::FaultEvent jam;
    jam.kind = anr::fault::FaultKind::kStuck;
    jam.robot = 7;
    jam.t_start = 0.2 * plan.total_time;
    jam.duration = 0.6 * plan.total_time;
    schedule.add(jam);
    schedule.normalize();

    for (bool recovery : {true, false}) {
      anr::ExecutionOptions eo;
      eo.enable_recovery = recovery;
      anr::ExecutionEngine engine(sc.comm_range, eo);
      anr::ExecutionReport rep = engine.run(plan, schedule, m2_world);

      table.row({"scenario " + std::to_string(id),
                 recovery ? "on" : "off", anr::fmt_pct(rep.survival_rate),
                 rep.connected_throughout ? "yes" : "no",
                 rep.final_connected ? "yes" : "no",
                 anr::fmt_pct(rep.stable_link_ratio),
                 anr::fmt(rep.planned_distance, 1),
                 anr::fmt(rep.executed_distance, 1),
                 anr::fmt(rep.extra_distance, 1),
                 std::to_string(rep.pauses),
                 std::to_string(rep.recoveries),
                 rep.degraded ? "yes" : "no"});

      if (print_events) {
        std::cout << "--- scenario " << id << ", recovery "
                  << (recovery ? "on" : "off") << " ---\n";
        for (const anr::ExecutionEvent& e : rep.events) {
          std::cout << "  t=" << anr::fmt(e.t, 4) << "  "
                    << anr::exec_event_name(e.type);
          if (e.robot >= 0) std::cout << "  robot=" << e.robot;
          if (!e.detail.empty()) std::cout << "  (" << e.detail << ")";
          std::cout << "\n";
        }
      }
    }
  }

  std::cout << "fault campaign seed " << seed << "\n" << table.str();
  return 0;
}
