// Fault drill: execute the paper's march scenarios under a seeded fault
// campaign, with the recovery policies enabled and disabled, and report
// the survival rate, global connectivity C, stable link ratio L, and the
// extra distance D the recovery cost.
//
//   ./fault_drill [seed] [--events] [--decentralized] [--loss-rate p]
//                 [--partition t0:t1] [--terrain] [--dump-terrain]
//
//   --decentralized   run the local-knowledge execution mode (per-robot
//                     controllers over the message simulator) instead of
//                     the centralized oracle engine; adds message-count
//                     and detection/recovery-latency columns
//   --loss-rate p     drop each transmission attempt with probability p
//                     (decentralized mode; control plane retransmits)
//   --partition f0:f1 cut every link of robot 12 during the window
//                     [f0, f1] x total_time (fractions in [0, 1])
//   --terrain         plan geodesics over rolling hills with a mud patch
//                     and a keep-out block in the corridor, and splice a
//                     scripted mid-march retarget so recovery replans
//                     geodesics over the same cost field (centralized
//                     engine only)
//   --dump-terrain    write the rasterized cost field per scenario as
//                     fault_drill_terrain_scenario<id>.json
//
// The same seed always produces the same campaign, the same execution,
// and the same event log.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/table.h"
#include "coverage/lloyd.h"
#include "fault/fault_schedule.h"
#include "foi/scenario.h"
#include "geom/polygon.h"
#include "io/event_io.h"
#include "io/terrain_io.h"
#include "march/decentralized_engine.h"
#include "march/execution_engine.h"
#include "march/planner.h"
#include "march/terrain_router.h"

namespace {

anr::PlannerOptions drill_options() {
  anr::PlannerOptions opt;
  opt.mesher.target_grid_points = 350;
  opt.cvt_samples = 4000;
  opt.max_adjust_steps = 5;
  return opt;
}

// The terrain family validated by the invariant sweep: rolling hills with
// slope + uphill cost, one mud patch north of the corridor, and a keep-out
// block wholly inside the corridor (it must not overlap M1 or M2).
void add_terrain(anr::PlannerOptions& opt, const anr::Scenario& sc,
                 const anr::FieldOfInterest& m2_world) {
  anr::BBox tb = sc.m1.bbox();
  tb.expand(m2_world.bbox().lo);
  tb.expand(m2_world.bbox().hi);
  const anr::Vec2 mid =
      anr::lerp(sc.m1.centroid(), m2_world.centroid(), 0.5);
  const double rc = sc.comm_range;
  opt.trajectory.motion = anr::MotionModel::kTerrainGeodesic;
  opt.trajectory.terrain.terrain =
      anr::HeightField::rolling(tb, 10, 35.0, 160.0, /*seed=*/99);
  opt.trajectory.terrain.slope_weight = 2.5;
  opt.trajectory.terrain.uphill_penalty = 0.4;
  opt.trajectory.terrain.mud.push_back(
      {{mid.x, mid.y + 2.0 * rc}, 90.0, 3.0});
  opt.trajectory.terrain.keep_out.push_back(anr::make_rect(
      {mid.x - rc, mid.y - 0.75 * rc}, {mid.x + rc, mid.y + 0.75 * rc}));
}

constexpr int kPartitionRobot = 12;

void add_partition(anr::fault::FaultSchedule& schedule, int num_robots,
                   double t0, double duration) {
  for (int j = 0; j < num_robots; ++j) {
    if (j == kPartitionRobot) continue;
    anr::fault::FaultEvent e;
    e.kind = anr::fault::FaultKind::kLinkDropout;
    e.link_a = std::min(kPartitionRobot, j);
    e.link_b = std::max(kPartitionRobot, j);
    e.t_start = t0;
    e.duration = duration;
    schedule.add(e);
  }
}

void print_events(const anr::ExecutionReport& rep, const std::string& label) {
  std::cout << "--- " << label << " ---\n";
  for (const anr::ExecutionEvent& e : rep.events) {
    std::cout << "  t=" << anr::fmt(e.t, 4) << "  "
              << anr::exec_event_name(e.type);
    if (e.robot >= 0) std::cout << "  robot=" << e.robot;
    if (!e.detail.empty()) std::cout << "  (" << e.detail << ")";
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool events = false;
  bool decentralized = false;
  bool terrain = false;
  bool dump_terrain = false;
  double loss_rate = 0.0;
  double partition_f0 = -1.0, partition_f1 = -1.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--events") {
      events = true;
    } else if (arg == "--decentralized") {
      decentralized = true;
    } else if (arg == "--terrain") {
      terrain = true;
    } else if (arg == "--dump-terrain") {
      terrain = true;
      dump_terrain = true;
    } else if (arg == "--loss-rate" && i + 1 < argc) {
      loss_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--partition" && i + 1 < argc) {
      std::string window = argv[++i];
      const std::size_t colon = window.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--partition expects f0:f1 (fractions of total time)\n";
        return 1;
      }
      partition_f0 = std::strtod(window.substr(0, colon).c_str(), nullptr);
      partition_f1 = std::strtod(window.substr(colon + 1).c_str(), nullptr);
    } else {
      seed = std::strtoull(arg.c_str(), nullptr, 10);
    }
  }

  anr::TextTable table;
  if (decentralized) {
    table.header({"scenario", "recovery", "survival", "C always", "C final",
                  "L", "D extra", "messages", "retx", "detect lat",
                  "recover lat", "absorbs", "degraded"});
  } else {
    table.header({"scenario", "recovery", "survival", "C always", "C final",
                  "L", "D plan", "D exec", "D extra", "pauses", "absorbs",
                  "degraded"});
  }

  for (int id : {1, 5}) {
    anr::Scenario sc = anr::scenario(id);
    auto deploy = anr::optimal_coverage_positions(sc.m1, 72, /*seed=*/1,
                                                  anr::uniform_density())
                      .positions;
    anr::Vec2 offset = sc.m1.centroid() +
                       anr::Vec2{12.0 * sc.comm_range, 0.0} -
                       sc.m2_shape.centroid();
    anr::FieldOfInterest m2_world = sc.m2_shape.translated(offset);
    anr::PlannerOptions popt = drill_options();
    if (terrain) add_terrain(popt, sc, m2_world);
    anr::MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, popt);
    anr::MarchPlan plan = planner.plan(deploy, offset);
    if (terrain) {
      std::cout << "scenario " << id << " terrain plan: fmm solves "
                << plan.fmm_solves << ", goal snapped "
                << plan.fmm_goal_snapped << ", fallbacks "
                << plan.fmm_fallbacks << "\n";
    }
    if (dump_terrain) {
      anr::BBox tb = sc.m1.bbox();
      tb.expand(m2_world.bbox().lo);
      tb.expand(m2_world.bbox().hi);
      anr::TerrainRouter router(popt.trajectory, tb, sc.comm_range);
      const std::string path =
          "fault_drill_terrain_scenario" + std::to_string(id) + ".json";
      std::string err;
      if (!anr::save_cost_field(router.field(), path, &err)) {
        std::cerr << "cost field dump failed: " << err << "\n";
      } else {
        std::cout << "wrote " << path << "\n";
      }
    }

    anr::Rng rng(seed ^ static_cast<std::uint64_t>(id));
    anr::fault::CampaignOptions co;
    co.crashes = 2;
    anr::fault::FaultSchedule schedule = anr::fault::random_campaign(
        rng, 72, 0.0, plan.total_time, co);
    // One long actuator jam in the thick of the transition: with recovery
    // the swarm pauses and waits for the robot; without it the swarm
    // marches away and loses connectivity.
    anr::fault::FaultEvent jam;
    jam.kind = anr::fault::FaultKind::kStuck;
    jam.robot = 7;
    jam.t_start = 0.2 * plan.total_time;
    jam.duration = 0.6 * plan.total_time;
    schedule.add(jam);
    if (partition_f0 >= 0.0 && partition_f1 > partition_f0) {
      add_partition(schedule, 72, partition_f0 * plan.total_time,
                    (partition_f1 - partition_f0) * plan.total_time);
    }
    schedule.normalize();

    for (bool recovery : {true, false}) {
      const std::string label = "scenario " + std::to_string(id) +
                                ", recovery " + (recovery ? "on" : "off");
      if (decentralized) {
        anr::DecentralizedOptions dopt;
        dopt.enable_recovery = recovery;
        dopt.loss_rate = loss_rate;
        dopt.loss_seed = seed * 31 + 7;
        dopt.delay_seed = seed * 17 + 3;
        anr::DecentralizedEngine engine(sc.comm_range, dopt);
        anr::DecentralizedReport rep = engine.run(plan, schedule, m2_world);

        auto fmt_latency = [](double v) {
          return v < 0.0 ? std::string("-") : anr::fmt(v, 4);
        };
        table.row({"scenario " + std::to_string(id),
                   recovery ? "on" : "off",
                   anr::fmt_pct(rep.exec.survival_rate),
                   rep.exec.connected_throughout ? "yes" : "no",
                   rep.exec.final_connected ? "yes" : "no",
                   anr::fmt_pct(rep.exec.stable_link_ratio),
                   anr::fmt(rep.exec.extra_distance, 1),
                   std::to_string(rep.messages_sent),
                   std::to_string(rep.retransmissions),
                   fmt_latency(rep.mean_detection_latency),
                   fmt_latency(rep.mean_recovery_latency),
                   std::to_string(rep.absorbs),
                   rep.exec.degraded ? "yes" : "no"});
        if (events) print_events(rep.exec, label);
      } else {
        anr::ExecutionOptions eo;
        eo.enable_recovery = recovery;
        if (terrain) {
          // Scripted retarget drill: mid-march, abandon the current goal
          // and head a further 2 r_c east. retarget_mid_march replans
          // through the same terrain-aware planner, so the spliced legs
          // are geodesics over the keep-out cost field.
          anr::MissionChange mc;
          mc.t = 0.35 * plan.total_time;
          mc.planner = &planner;
          mc.m2_offset = offset + anr::Vec2{2.0 * sc.comm_range, 0.0};
          eo.mission_changes.push_back(mc);
        }
        anr::ExecutionEngine engine(sc.comm_range, eo);
        anr::ExecutionReport rep = engine.run(plan, schedule, m2_world);

        table.row({"scenario " + std::to_string(id),
                   recovery ? "on" : "off", anr::fmt_pct(rep.survival_rate),
                   rep.connected_throughout ? "yes" : "no",
                   rep.final_connected ? "yes" : "no",
                   anr::fmt_pct(rep.stable_link_ratio),
                   anr::fmt(rep.planned_distance, 1),
                   anr::fmt(rep.executed_distance, 1),
                   anr::fmt(rep.extra_distance, 1),
                   std::to_string(rep.pauses),
                   std::to_string(rep.recoveries),
                   rep.degraded ? "yes" : "no"});
        if (events) print_events(rep, label);
      }
    }
  }

  std::cout << "fault campaign seed " << seed;
  if (decentralized) {
    std::cout << ", decentralized, loss rate " << anr::fmt(loss_rate, 2);
  }
  if (partition_f0 >= 0.0) {
    std::cout << ", partition " << anr::fmt(partition_f0, 2) << ":"
              << anr::fmt(partition_f1, 2) << " of robot "
              << kPartitionRobot;
  }
  if (terrain) std::cout << ", terrain geodesics + scripted retarget";
  std::cout << "\n" << table.str();
  return 0;
}
