// Indoor exploration (paper future work, Sec. V: "indoor"): a swarm
// staged outside marches into a multi-room building — every interior wall
// is a hole of the FoI, every doorway a gap the harmonic map must funnel
// robots through — then adjusts to covering positions in all rooms.
//
// Writes ./indoor_march.svg (trajectories threading the doorways).
//
// Run: ./build/examples/indoor_exploration
#include <iostream>

#include "anr/anr.h"
#include "common/stopwatch.h"
#include "common/table.h"

int main() {
  using namespace anr;
  Stopwatch sw;

  IndoorOptions iopt;
  iopt.rooms_x = 3;
  iopt.rooms_y = 2;
  FieldOfInterest building = make_indoor_foi(iopt);
  FieldOfInterest staging = base_m1();
  const double r_c = 80.0;
  const int robots = 144;

  std::cout << "building: " << iopt.rooms_x << "x" << iopt.rooms_y
            << " rooms, " << building.holes().size() << " wall segments, "
            << fmt(building.area(), 0) << " m^2 floor area\n";

  auto deploy = optimal_coverage_positions(staging, robots, 1, uniform_density());
  PlannerOptions opt;
  opt.mesher.target_grid_points = 1600;  // walls need a finer grid
  MarchPlanner planner(staging, building, r_c, opt);
  Vec2 off = staging.centroid() + Vec2{18.0 * r_c, 0.0} - building.centroid();
  MarchPlan plan = planner.plan(deploy.positions, off);

  auto m = simulate_transition(plan.trajectories, r_c, plan.transition_end);
  FieldOfInterest placed = building.translated(off);
  auto cov = evaluate_coverage(placed, plan.final_positions,
                               sensing_radius_for(r_c));

  // Per-room headcount.
  TextTable rooms;
  rooms.header({"room", "robots"});
  for (int ry = 0; ry < iopt.rooms_y; ++ry) {
    for (int rx = 0; rx < iopt.rooms_x; ++rx) {
      Vec2 lo = off + Vec2{rx * iopt.room_size, ry * iopt.room_size};
      Vec2 hi = lo + Vec2{iopt.room_size, iopt.room_size};
      int count = 0;
      for (Vec2 p : plan.final_positions) {
        if (p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y) ++count;
      }
      rooms.row({"(" + std::to_string(rx) + "," + std::to_string(ry) + ")",
                 std::to_string(count)});
    }
  }
  std::cout << rooms.str()
            << "march: L=" << fmt_pct(m.stable_link_ratio)
            << " C=" << (m.global_connectivity ? "Y" : "N")
            << " D=" << fmt(m.total_distance, 0) << " m, floor coverage "
            << fmt_pct(cov.covered_fraction) << ", hole-snapped targets "
            << plan.snapped_targets << "\n";

  SvgCanvas canvas(60.0);
  canvas.foi(staging, "#999999");
  canvas.foi(placed, "#333333");
  canvas.trajectories(plan.trajectories, "#88aacc");
  SvgStyle link;
  link.stroke = "#cfcfcf";
  canvas.links(plan.final_positions,
               communication_links(plan.final_positions, r_c), link);
  canvas.robots(plan.final_positions, 3.0, "#14304d");
  if (canvas.save("indoor_march.svg")) {
    std::cout << "wrote indoor_march.svg\n";
  }
  std::cout << "done in " << fmt(sw.seconds(), 1) << " s\n";
  return 0;
}
