// march_cli — run any paper scenario from the command line.
//
// Usage:
//   march_cli [--scenario N] [--separation X] [--method a|b|direct|hungarian]
//             [--robots N] [--seed S] [--distributed] [--svg PATH] [--csv]
//             [--save PLAN.json] [--load PLAN.json] [--animate PATH.svg]
//
// --save archives the computed plan as JSON; --load replays a previously
// saved plan (skipping planning) and re-measures it.
//
// Prints the measured metrics (or a CSV row with --csv, handy for
// scripting sweeps). Examples:
//   ./build/examples/march_cli --scenario 3 --separation 40 --method a
//   for s in 10 20 40 80; do
//     ./build/examples/march_cli --csv --scenario 2 --separation $s --method direct
//   done
#include <cstdlib>
#include <iostream>
#include <string>

#include "anr/anr.h"
#include "common/table.h"

namespace {

using namespace anr;

struct CliOptions {
  int scenario_id = 1;
  double separation = 20.0;
  std::string method = "a";
  int robots = 144;
  std::uint64_t seed = 1;
  bool distributed = false;
  bool csv = false;
  std::string svg;
  std::string animate;
  std::string save_path;
  std::string load_path;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenario 1..7] [--separation X] [--method a|b|direct|"
               "hungarian] [--robots N] [--seed S] [--distributed] "
               "[--svg PATH] [--csv] [--save PLAN.json] [--load PLAN.json]\n";
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      opt.scenario_id = std::stoi(need_value());
    } else if (arg == "--separation") {
      opt.separation = std::stod(need_value());
    } else if (arg == "--method") {
      opt.method = need_value();
    } else if (arg == "--robots") {
      opt.robots = std::stoi(need_value());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value());
    } else if (arg == "--distributed") {
      opt.distributed = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--svg") {
      opt.svg = need_value();
    } else if (arg == "--animate") {
      opt.animate = need_value();
    } else if (arg == "--save") {
      opt.save_path = need_value();
    } else if (arg == "--load") {
      opt.load_path = need_value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opt.scenario_id < 1 || opt.scenario_id > 7) usage_and_exit(argv[0]);
  if (opt.method != "a" && opt.method != "b" && opt.method != "direct" &&
      opt.method != "hungarian") {
    usage_and_exit(argv[0]);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli = parse(argc, argv);
  Scenario sc = scenario(cli.scenario_id);
  sc.num_robots = cli.robots;

  auto deploy = optimal_coverage_positions(sc.m1, sc.num_robots, cli.seed,
                                           uniform_density());
  if (!net::is_connected(deploy.positions, sc.comm_range)) {
    std::cerr << "deployment of " << sc.num_robots
              << " robots is not connected at r_c = " << sc.comm_range
              << " m; use more robots\n";
    return 1;
  }
  Vec2 off = sc.m1.centroid() + Vec2{cli.separation * sc.comm_range, 0.0} -
             sc.m2_shape.centroid();

  MarchPlan plan;
  if (!cli.load_path.empty()) {
    std::string io_error;
    auto loaded = load_plan(cli.load_path, &io_error);
    if (!loaded) {
      std::cerr << "failed to load plan: " << io_error << "\n";
      return 1;
    }
    plan = std::move(*loaded);
  } else if (cli.method == "a" || cli.method == "b") {
    PlannerOptions popt;
    popt.distributed = cli.distributed;
    if (cli.method == "b") popt.objective = MarchObjective::kMinDistance;
    MarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range, popt);
    plan = planner.plan(deploy.positions, off);
  } else if (cli.method == "direct") {
    DirectTranslationPlanner planner(sc.m1, sc.m2_shape, sc.comm_range,
                                     sc.num_robots);
    plan = planner.plan(deploy.positions, off);
  } else {
    HungarianMarchPlanner planner(sc.m1, sc.m2_shape, sc.comm_range,
                                  sc.num_robots);
    plan = planner.plan(deploy.positions, off);
  }
  if (!cli.save_path.empty()) {
    std::string io_error;
    if (!save_plan(plan, cli.save_path, &io_error)) {
      std::cerr << "failed to save plan: " << io_error << "\n";
      return 1;
    }
  }
  TransitionMetrics m =
      simulate_transition(plan.trajectories, sc.comm_range, plan.transition_end);

  if (!cli.svg.empty()) {
    SvgCanvas canvas(60.0);
    canvas.foi(sc.m1, "#888888");
    canvas.foi(sc.m2_shape.translated(off), "#555555");
    canvas.trajectories(plan.trajectories);
    canvas.robots(plan.start, 2.5, "#aaaaaa");
    canvas.robots(plan.final_positions, 3.0, "#14304d");
    if (!canvas.save(cli.svg)) {
      std::cerr << "failed to write " << cli.svg << "\n";
    }
  }

  if (!cli.animate.empty()) {
    SvgCanvas canvas(60.0);
    canvas.foi(sc.m1, "#888888");
    canvas.foi(sc.m2_shape.translated(off), "#555555");
    canvas.animated_robots(plan.trajectories, 8.0);
    if (!canvas.save(cli.animate)) {
      std::cerr << "failed to write " << cli.animate << "\n";
    }
  }

  if (cli.csv) {
    std::cout << cli.scenario_id << "," << cli.method << "," << cli.separation
              << "," << sc.num_robots << "," << m.total_distance << ","
              << m.stable_link_ratio << "," << (m.global_connectivity ? 1 : 0)
              << "\n";
    return 0;
  }
  std::cout << "scenario " << cli.scenario_id << " (" << sc.description
            << "), method " << cli.method << ", separation "
            << cli.separation << " x r_c, " << sc.num_robots << " robots\n"
            << "  D = " << fmt(m.total_distance, 0) << " m\n"
            << "  L = " << fmt_pct(m.stable_link_ratio) << " ("
            << m.stable_links << "/" << m.initial_links << ")\n"
            << "  C = " << (m.global_connectivity ? "Y" : "N") << "\n";
  if (cli.distributed) {
    std::cout << "  protocol messages = " << plan.protocol_messages << "\n";
  }
  return 0;
}
