#include "foi/foi_mesher.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/predicates.h"
#include "mesh/alpha_extract.h"
#include "mesh/delaunay.h"

namespace anr {

namespace {

// Drops vertices not referenced by any triangle and remaps triangle indices.
// Keeps `flags` (per-vertex metadata) in sync.
void compact_mesh(TriangleMesh& mesh, std::vector<char>& flags) {
  std::vector<int> remap(mesh.num_vertices(), -1);
  std::vector<Vec2> verts;
  std::vector<char> new_flags;
  for (const Tri& t : mesh.triangles()) {
    for (VertexId v : t) {
      if (remap[static_cast<std::size_t>(v)] < 0) {
        remap[static_cast<std::size_t>(v)] = static_cast<int>(verts.size());
        verts.push_back(mesh.position(v));
        new_flags.push_back(flags[static_cast<std::size_t>(v)]);
      }
    }
  }
  std::vector<Tri> tris;
  tris.reserve(mesh.num_triangles());
  for (const Tri& t : mesh.triangles()) {
    tris.push_back(Tri{remap[static_cast<std::size_t>(t[0])],
                       remap[static_cast<std::size_t>(t[1])],
                       remap[static_cast<std::size_t>(t[2])]});
  }
  mesh = TriangleMesh(std::move(verts), std::move(tris));
  flags = std::move(new_flags);
}

}  // namespace

FoiMesh mesh_foi(const FieldOfInterest& foi, const MesherOptions& opt) {
  ANR_CHECK(opt.target_grid_points >= 16);
  double area = foi.area();
  ANR_CHECK_MSG(area > 0.0, "cannot mesh zero-area FoI");
  // Triangular lattice: each point "owns" (sqrt(3)/2) h^2 of area.
  double h = std::sqrt(2.0 * area /
                       (std::sqrt(3.0) * static_cast<double>(opt.target_grid_points)));

  std::vector<Vec2> pts;
  std::vector<char> on_boundary;
  auto add_loop = [&](const Polygon& loop) {
    Polygon dense = loop.densified(h);
    for (Vec2 p : dense.points()) {
      pts.push_back(p);
      on_boundary.push_back(1);
    }
  };
  add_loop(foi.outer());
  for (const Polygon& hole : foi.holes()) add_loop(hole);

  Rng rng(opt.seed);
  for (Vec2 p : foi.lattice_points(h, 0.45 * h)) {
    double j = opt.jitter_frac * h;
    pts.push_back(p + Vec2{rng.uniform(-j, j), rng.uniform(-j, j)});
    on_boundary.push_back(0);
  }
  ANR_CHECK_MSG(pts.size() >= 16, "FoI too small for requested grid");

  TriangleMesh dt = delaunay(pts);
  std::vector<Tri> kept;
  double max_edge2 = (2.5 * h) * (2.5 * h);
  for (const Tri& t : dt.triangles()) {
    Vec2 a = pts[static_cast<std::size_t>(t[0])];
    Vec2 b = pts[static_cast<std::size_t>(t[1])];
    Vec2 c = pts[static_cast<std::size_t>(t[2])];
    if (distance2(a, b) > max_edge2 || distance2(b, c) > max_edge2 ||
        distance2(c, a) > max_edge2) {
      continue;
    }
    // Drop (near-)zero-area slivers that exactly collinear boundary chains
    // can leave behind; they carry no area and would break manifold checks.
    if (std::abs(signed_area2(a, b, c)) < 2e-6 * h * h) continue;
    if (!foi.contains((a + b + c) / 3.0)) continue;
    kept.push_back(t);
  }
  AlphaExtraction cleaned = clean_to_manifold(TriangleMesh(pts, std::move(kept)));

  FoiMesh out;
  out.mesh = std::move(cleaned.mesh);
  out.on_boundary = std::move(on_boundary);
  out.spacing = h;
  compact_mesh(out.mesh, out.on_boundary);
  out.mesh.make_ccw();
  out.vertex_index =
      std::make_shared<GridIndex>(out.mesh.positions(), std::max(h, 1e-9));
  return out;
}

}  // namespace anr
