// Field of Interest (FoI): a planar region bounded by a simple polygon,
// minus zero or more hole polygons (obstacles / landscape features that
// forbid robot placement — paper Sec. III-D-3).
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "geom/polygon.h"

namespace anr {

/// A FoI with outer boundary and holes. Outer boundary is stored CCW;
/// holes are simple polygons strictly inside the outer boundary and
/// mutually disjoint.
class FieldOfInterest {
 public:
  FieldOfInterest() = default;
  FieldOfInterest(Polygon outer, std::vector<Polygon> holes = {});

  const Polygon& outer() const { return outer_; }
  const std::vector<Polygon>& holes() const { return holes_; }
  bool has_holes() const { return !holes_.empty(); }

  /// Area of the region (outer minus holes).
  double area() const;

  /// Area centroid of the region (holes subtracted).
  Vec2 centroid() const;

  BBox bbox() const { return outer_.bbox(); }

  /// True when p is inside the outer boundary and outside every hole
  /// (hole boundaries count as outside the hole, i.e. placeable).
  bool contains(Vec2 p) const;

  /// Distance from p to the nearest hole boundary; +inf when no holes.
  double distance_to_nearest_hole(Vec2 p) const;

  /// Distance from p to the nearest region boundary (outer or hole).
  double distance_to_boundary(Vec2 p) const;

  /// If p is not in the region, the nearest point that is (projected to the
  /// violated boundary, nudged inward); p itself otherwise.
  Vec2 clamp_inside(Vec2 p) const;

  /// True when the straight segment a->b stays inside the region (does not
  /// exit the outer boundary or cut through a hole).
  bool segment_inside(Vec2 a, Vec2 b) const;

  /// Uniform random point inside the region (rejection sampling).
  Vec2 sample_point(Rng& rng) const;

  /// Points of a triangular lattice with spacing `h` that lie inside the
  /// region and at least `margin` away from every boundary.
  std::vector<Vec2> lattice_points(double h, double margin = 0.0) const;

  /// Rigidly translated copy.
  FieldOfInterest translated(Vec2 d) const;

 private:
  Polygon outer_;
  std::vector<Polygon> holes_;
};

}  // namespace anr
