// The paper's seven evaluation scenarios (Sec. IV).
//
// Every scenario marches 144 robots with communication range r_c = 80 m
// from a current FoI M1 to a target FoI M2. The paper sweeps the
// M1–M2 separation from 10x to 100x r_c; `m2_at()` realizes a given
// separation by translating the M2 shape along +x.
#pragma once

#include <string>
#include <vector>

#include "foi/foi.h"

namespace anr {

/// One marching scenario.
struct Scenario {
  int id = 0;
  std::string name;
  std::string description;
  FieldOfInterest m1;
  FieldOfInterest m2_shape;  ///< M2 geometry, centered near the origin
  int num_robots = 144;
  double comm_range = 80.0;  ///< r_c in meters

  /// M2 translated so its centroid sits `separation_cr` communication
  /// ranges along +x from M1's centroid.
  FieldOfInterest m2_at(double separation_cr) const;
};

/// The base M1 of scenarios 1–5 (Fig. 2(a): ~308,261 m^2 blob).
FieldOfInterest base_m1();

/// Scenario by paper id (1..7).
Scenario scenario(int id);

/// All seven scenarios in order.
std::vector<Scenario> paper_scenarios();

}  // namespace anr
