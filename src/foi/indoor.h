// Indoor FoI generator — a prototype of the paper's future-work item
// ("we will consider the optimal marching problem in more complex
// settings including indoor … cases", Sec. V).
//
// An indoor environment is modeled as a rectangular floor with interior
// walls, each wall a thin rectangular hole with door gaps. This stresses
// exactly the machinery the paper builds for holed FoIs: virtual-vertex
// hole filling (one per wall), hole-landing snapping, and boundary-arc
// trajectory detours.
#pragma once

#include "foi/foi.h"

namespace anr {

struct IndoorOptions {
  int rooms_x = 3;          ///< rooms along x
  int rooms_y = 2;          ///< rooms along y
  double room_size = 220.0; ///< room edge length (meters)
  double wall_thickness = 8.0;
  double door_width = 60.0; ///< must exceed the robot lattice spacing
  /// Clearance between wall ends and the outer boundary / wall crossings
  /// (keeps holes disjoint and strictly interior).
  double clearance = 30.0;
};

/// Builds the floor plan. Walls between adjacent rooms get a centered
/// door gap; wall segments stop `clearance` short of the outer boundary
/// and of each other at crossings.
FieldOfInterest make_indoor_foi(const IndoorOptions& opt = {});

}  // namespace anr
