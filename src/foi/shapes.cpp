#include "foi/shapes.h"

#include <cmath>

#include "common/check.h"

namespace anr {

namespace {

double modulation(double theta, const std::vector<BlobHarmonic>& harmonics) {
  double m = 1.0;
  for (const BlobHarmonic& h : harmonics) {
    m += h.amp * std::cos(h.k * theta + h.phase);
  }
  return m;
}

}  // namespace

Polygon make_blob(Vec2 center, double mean_radius,
                  const std::vector<BlobHarmonic>& harmonics, int samples) {
  ANR_CHECK(samples >= 8 && mean_radius > 0.0);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    double th = 2.0 * M_PI * i / samples;
    double r = mean_radius * modulation(th, harmonics);
    ANR_CHECK_MSG(r > 0.0, "blob harmonics produce negative radius");
    pts.push_back(center + Vec2{r * std::cos(th), r * std::sin(th)});
  }
  Polygon p(std::move(pts));
  p.make_ccw();
  return p;
}

Polygon make_stretched_blob(Vec2 center, double mean_radius, double sx,
                            double sy, const std::vector<BlobHarmonic>& harmonics,
                            int samples) {
  ANR_CHECK(sx > 0.0 && sy > 0.0);
  Polygon blob = make_blob({0.0, 0.0}, mean_radius, harmonics, samples);
  std::vector<Vec2> pts;
  pts.reserve(blob.size());
  for (Vec2 p : blob.points()) {
    pts.push_back(center + Vec2{p.x * sx, p.y * sy});
  }
  Polygon out(std::move(pts));
  out.make_ccw();
  return out;
}

Polygon make_flower(Vec2 center, double r0, int petals, double petal_amp,
                    int samples) {
  return make_blob(center, r0, {{petals, petal_amp, 0.0}}, samples);
}

FieldOfInterest with_net_area(const FieldOfInterest& foi, double target_area) {
  ANR_CHECK(target_area > 0.0);
  double s = std::sqrt(target_area / foi.area());
  Vec2 about = foi.outer().centroid();
  std::vector<Polygon> holes;
  holes.reserve(foi.holes().size());
  for (const Polygon& h : foi.holes()) holes.push_back(h.scaled(s, about));
  return FieldOfInterest(foi.outer().scaled(s, about), std::move(holes));
}

}  // namespace anr
