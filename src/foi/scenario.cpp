#include "foi/scenario.h"

#include <cmath>

#include "common/check.h"
#include "foi/shapes.h"

namespace anr {

FieldOfInterest Scenario::m2_at(double separation_cr) const {
  Vec2 c1 = m1.centroid();
  Vec2 c2 = m2_shape.centroid();
  Vec2 target = c1 + Vec2{separation_cr * comm_range, 0.0};
  return m2_shape.translated(target - c2);
}

FieldOfInterest base_m1() {
  // Fig. 2(a): a smooth, mildly concave blob with 144 robots; the paper
  // reports 308,261 m^2. Mean radius is a placeholder — with_net_area
  // rescales to the exact figure.
  Polygon outer = make_blob({0.0, 0.0}, 320.0,
                            {{2, 0.12, 0.4}, {3, 0.10, 1.9}, {5, 0.05, 0.7}});
  return with_net_area(FieldOfInterest(std::move(outer)), 308261.0);
}

namespace {

FieldOfInterest scenario1_m2() {
  // Fig. 3(a): hole-free FoI of 289,745 m^2 with a boundary broadly
  // similar to M1 (the paper notes the similarity).
  Polygon outer = make_blob({0.0, 0.0}, 310.0,
                            {{2, 0.10, 2.1}, {3, 0.08, 0.3}, {4, 0.06, 1.2}});
  return with_net_area(FieldOfInterest(std::move(outer)), 289745.0);
}

FieldOfInterest scenario2_m2() {
  // Fig. 3(b): hole-free 173,057 m^2 FoI whose boundary "differs a lot"
  // from M1 — a slim, elongated shape.
  Polygon outer = make_stretched_blob({0.0, 0.0}, 240.0, 1.9, 0.45,
                                      {{2, 0.08, 0.9}, {3, 0.06, 2.2}});
  return with_net_area(FieldOfInterest(std::move(outer)), 173057.0);
}

FieldOfInterest scenario3_m2() {
  // Fig. 2(d) / Fig. 4: 239,987 m^2 with a concave, flower-shaped pond.
  Polygon outer = make_blob({0.0, 0.0}, 310.0,
                            {{2, 0.09, 1.1}, {3, 0.07, 2.6}});
  Polygon pond = make_flower({20.0, -15.0}, 95.0, 5, 0.35);
  return with_net_area(FieldOfInterest(std::move(outer), {std::move(pond)}),
                       239987.0);
}

FieldOfInterest scenario4_m2() {
  // Fig. 3(c): 233,342 m^2 with one big convex hole.
  Polygon outer = make_blob({0.0, 0.0}, 320.0,
                            {{2, 0.08, 0.2}, {4, 0.05, 1.5}});
  Polygon hole = make_circle({-10.0, 20.0}, 130.0, 48);
  return with_net_area(FieldOfInterest(std::move(outer), {std::move(hole)}),
                       233342.0);
}

FieldOfInterest scenario5_m2() {
  // Fig. 3(d): 253,578 m^2 with multiple small holes.
  Polygon outer = make_blob({0.0, 0.0}, 310.0,
                            {{2, 0.10, 1.7}, {3, 0.06, 0.5}});
  std::vector<Polygon> holes;
  holes.push_back(make_circle({-110.0, 70.0}, 52.0, 32));
  holes.push_back(make_circle({120.0, 60.0}, 45.0, 32));
  holes.push_back(make_circle({10.0, -120.0}, 58.0, 32));
  return with_net_area(FieldOfInterest(std::move(outer), std::move(holes)),
                       253578.0);
}

FieldOfInterest scenario6_m1() {
  // Fig. 5(a) top: holed current FoI, 144 robots. Area unreported; we keep
  // the same robot density as the base M1.
  Polygon outer = make_blob({0.0, 0.0}, 330.0,
                            {{2, 0.11, 2.8}, {3, 0.07, 1.0}});
  Polygon hole = make_circle({30.0, 10.0}, 105.0, 40);
  return with_net_area(FieldOfInterest(std::move(outer), {std::move(hole)}),
                       300000.0);
}

FieldOfInterest scenario6_m2() {
  Polygon outer = make_blob({0.0, 0.0}, 300.0,
                            {{2, 0.13, 0.6}, {4, 0.06, 2.4}});
  Polygon hole = make_flower({-25.0, 20.0}, 85.0, 4, 0.30);
  return with_net_area(FieldOfInterest(std::move(outer), {std::move(hole)}),
                       262000.0);
}

FieldOfInterest scenario7_m1() {
  // Fig. 5(b) top: current FoI with two holes.
  Polygon outer = make_blob({0.0, 0.0}, 330.0,
                            {{2, 0.09, 1.3}, {5, 0.05, 0.2}});
  std::vector<Polygon> holes;
  holes.push_back(make_circle({-95.0, 55.0}, 70.0, 36));
  holes.push_back(make_circle({105.0, -60.0}, 62.0, 36));
  return with_net_area(FieldOfInterest(std::move(outer), std::move(holes)),
                       295000.0);
}

FieldOfInterest scenario7_m2() {
  Polygon outer = make_stretched_blob({0.0, 0.0}, 250.0, 1.6, 0.7,
                                      {{2, 0.07, 2.0}, {3, 0.06, 0.8}});
  Polygon hole = make_circle({40.0, -5.0}, 88.0, 40);
  return with_net_area(FieldOfInterest(std::move(outer), {std::move(hole)}),
                       248000.0);
}

}  // namespace

Scenario scenario(int id) {
  Scenario s;
  s.id = id;
  switch (id) {
    case 1:
      s.name = "scenario1";
      s.description = "non-hole -> non-hole, similar boundary (Fig. 3a)";
      s.m1 = base_m1();
      s.m2_shape = scenario1_m2();
      break;
    case 2:
      s.name = "scenario2";
      s.description = "non-hole -> non-hole, dissimilar slim boundary (Fig. 3b)";
      s.m1 = base_m1();
      s.m2_shape = scenario2_m2();
      break;
    case 3:
      s.name = "scenario3";
      s.description = "non-hole -> concave flower-pond hole (Fig. 2d / Fig. 4)";
      s.m1 = base_m1();
      s.m2_shape = scenario3_m2();
      break;
    case 4:
      s.name = "scenario4";
      s.description = "non-hole -> big convex hole (Fig. 3c)";
      s.m1 = base_m1();
      s.m2_shape = scenario4_m2();
      break;
    case 5:
      s.name = "scenario5";
      s.description = "non-hole -> multiple small holes (Fig. 3d)";
      s.m1 = base_m1();
      s.m2_shape = scenario5_m2();
      break;
    case 6:
      s.name = "scenario6";
      s.description = "hole -> hole (Fig. 5a)";
      s.m1 = scenario6_m1();
      s.m2_shape = scenario6_m2();
      break;
    case 7:
      s.name = "scenario7";
      s.description = "hole -> hole, two holes to one (Fig. 5b)";
      s.m1 = scenario7_m1();
      s.m2_shape = scenario7_m2();
      break;
    default:
      ANR_CHECK_MSG(false, "scenario id must be 1..7");
  }
  return s;
}

std::vector<Scenario> paper_scenarios() {
  std::vector<Scenario> out;
  out.reserve(7);
  for (int id = 1; id <= 7; ++id) out.push_back(scenario(id));
  return out;
}

}  // namespace anr
