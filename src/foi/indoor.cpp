#include "foi/indoor.h"

#include <vector>

#include "common/check.h"

namespace anr {

FieldOfInterest make_indoor_foi(const IndoorOptions& opt) {
  ANR_CHECK(opt.rooms_x >= 1 && opt.rooms_y >= 1);
  ANR_CHECK(opt.room_size > 4.0 * opt.clearance + opt.door_width);
  double w = opt.rooms_x * opt.room_size;
  double h = opt.rooms_y * opt.room_size;
  Polygon outer = make_rect({0.0, 0.0}, {w, h});

  std::vector<Polygon> walls;
  double t2 = opt.wall_thickness / 2.0;

  // One wall between each pair of horizontally adjacent rooms: a vertical
  // wall with a centered door gap, split into a lower and an upper piece.
  auto add_piece = [&](Vec2 lo, Vec2 hi) {
    if (hi.x - lo.x > 1e-9 && hi.y - lo.y > 1e-9) {
      walls.push_back(make_rect(lo, hi));
    }
  };

  for (int gx = 1; gx < opt.rooms_x; ++gx) {
    double x = gx * opt.room_size;
    for (int ry = 0; ry < opt.rooms_y; ++ry) {
      double y0 = ry * opt.room_size + opt.clearance;
      double y1 = (ry + 1) * opt.room_size - opt.clearance;
      double door_lo = (y0 + y1 - opt.door_width) / 2.0;
      double door_hi = (y0 + y1 + opt.door_width) / 2.0;
      add_piece({x - t2, y0}, {x + t2, door_lo});
      add_piece({x - t2, door_hi}, {x + t2, y1});
    }
  }
  for (int gy = 1; gy < opt.rooms_y; ++gy) {
    double y = gy * opt.room_size;
    for (int rx = 0; rx < opt.rooms_x; ++rx) {
      double x0 = rx * opt.room_size + opt.clearance;
      double x1 = (rx + 1) * opt.room_size - opt.clearance;
      double door_lo = (x0 + x1 - opt.door_width) / 2.0;
      double door_hi = (x0 + x1 + opt.door_width) / 2.0;
      add_piece({x0, y - t2}, {door_lo, y + t2});
      add_piece({door_hi, y - t2}, {x1, y + t2});
    }
  }
  return FieldOfInterest(std::move(outer), std::move(walls));
}

}  // namespace anr
