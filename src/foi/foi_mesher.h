// FoI mesher: grids and triangulates a FoI (paper Sec. III-B: "we can add
// grid points and triangulate the surface data of FoI M2").
//
// The resulting mesh is what gets harmonic-mapped to the unit disk on the
// M2 side of the pipeline; its vertices are the "grid points" of Eqn. (1).
#pragma once

#include <memory>
#include <vector>

#include "foi/foi.h"
#include "geom/grid_index.h"
#include "mesh/triangle_mesh.h"

namespace anr {

/// Meshing parameters.
struct MesherOptions {
  /// Approximate number of interior grid points to generate. Actual count
  /// varies with the FoI shape.
  int target_grid_points = 1200;

  /// Deterministic jitter (fraction of spacing) applied to interior lattice
  /// points so the Delaunay step never sees exactly cocircular quadruples.
  double jitter_frac = 0.05;

  /// Seed for the jitter.
  std::uint64_t seed = 7;
};

/// A gridded, triangulated FoI.
struct FoiMesh {
  TriangleMesh mesh;             ///< manifold mesh approximating the FoI
  std::vector<char> on_boundary; ///< per vertex: lies on outer/hole boundary
  double spacing = 0.0;          ///< lattice spacing used

  /// Nearest-mesh-vertex lookup (built over mesh vertex positions).
  std::shared_ptr<const GridIndex> vertex_index;
};

/// Meshes `foi`: triangular-lattice interior points + densified boundary
/// points, Delaunay, inside-filter, manifold cleanup.
FoiMesh mesh_foi(const FieldOfInterest& foi, const MesherOptions& opt = {});

}  // namespace anr
