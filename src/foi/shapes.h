// Shape catalog: procedural FoI boundary and hole generators.
//
// The paper does not publish its FoI polygon coordinates, only each
// region's area, hole structure, and a picture (Figs. 2–5). These
// generators produce smooth blob/slim/flower shapes scaled to the exact
// areas the paper reports; DESIGN.md Sec. 2 records the substitution.
#pragma once

#include <vector>

#include "foi/foi.h"
#include "geom/polygon.h"

namespace anr {

/// One Fourier harmonic of a radial blob: r(theta) *= 1 + amp*cos(k*theta + phase).
struct BlobHarmonic {
  int k;
  double amp;
  double phase;
};

/// Smooth closed "blob": circle of `mean_radius` modulated by harmonics.
/// Keep |sum of amps| < 1 to stay simple (non-self-intersecting).
Polygon make_blob(Vec2 center, double mean_radius,
                  const std::vector<BlobHarmonic>& harmonics,
                  int samples = 160);

/// Elongated blob: blob stretched anisotropically (x by sx, y by sy).
Polygon make_stretched_blob(Vec2 center, double mean_radius, double sx,
                            double sy, const std::vector<BlobHarmonic>& harmonics,
                            int samples = 160);

/// Flower: r(theta) = r0 * (1 + petal_amp*cos(petals*theta)). Used for the
/// paper's "flower-shaped pond" hole (Fig. 2(d)).
Polygon make_flower(Vec2 center, double r0, int petals, double petal_amp,
                    int samples = 120);

/// Rescales outer + holes uniformly about the outer centroid until the net
/// area (outer minus holes) equals `target_area`.
FieldOfInterest with_net_area(const FieldOfInterest& foi, double target_area);

}  // namespace anr
