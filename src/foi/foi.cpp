#include "foi/foi.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace anr {

FieldOfInterest::FieldOfInterest(Polygon outer, std::vector<Polygon> holes)
    : outer_(std::move(outer)), holes_(std::move(holes)) {
  ANR_CHECK_MSG(outer_.size() >= 3, "FoI outer boundary needs >= 3 vertices");
  outer_.make_ccw();
  for (Polygon& h : holes_) {
    ANR_CHECK_MSG(h.size() >= 3, "FoI hole needs >= 3 vertices");
    h.make_ccw();
    ANR_CHECK_MSG(outer_.contains(h.centroid()), "hole centroid outside FoI");
  }
}

double FieldOfInterest::area() const {
  double a = outer_.area();
  for (const Polygon& h : holes_) a -= h.area();
  return a;
}

Vec2 FieldOfInterest::centroid() const {
  double a = outer_.area();
  Vec2 c = outer_.centroid() * a;
  for (const Polygon& h : holes_) {
    double ha = h.area();
    c -= h.centroid() * ha;
    a -= ha;
  }
  ANR_CHECK(a > 0.0);
  return c / a;
}

bool FieldOfInterest::contains(Vec2 p) const {
  if (!outer_.contains(p)) return false;
  for (const Polygon& h : holes_) {
    // A point on the hole boundary is placeable; strictly-inside points
    // are not. Polygon::contains treats boundary as inside, so check the
    // boundary tolerance explicitly.
    if (h.contains(p) && h.boundary_distance(p) > 1e-9) return false;
  }
  return true;
}

double FieldOfInterest::distance_to_nearest_hole(Vec2 p) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Polygon& h : holes_) {
    best = std::min(best, h.boundary_distance(p));
  }
  return best;
}

double FieldOfInterest::distance_to_boundary(Vec2 p) const {
  double best = outer_.boundary_distance(p);
  for (const Polygon& h : holes_) {
    best = std::min(best, h.boundary_distance(p));
  }
  return best;
}

Vec2 FieldOfInterest::clamp_inside(Vec2 p) const {
  if (contains(p)) return p;
  // Project to the nearest violated boundary, then nudge toward the region
  // interior along the direction from the offending polygon's centroid.
  const Polygon* offender = nullptr;
  bool outside_outer = !outer_.contains(p);
  if (outside_outer) {
    offender = &outer_;
  } else {
    for (const Polygon& h : holes_) {
      if (h.contains(p)) {
        offender = &h;
        break;
      }
    }
  }
  if (offender == nullptr) return p;  // numeric edge: treat as inside
  Vec2 q = offender->closest_boundary_point(p);
  // Nudge slightly off the boundary into the region.
  Vec2 dir = outside_outer ? (offender->centroid() - q).normalized()
                           : (q - offender->centroid()).normalized();
  Vec2 nudged = q + dir * 1e-6;
  return contains(nudged) ? nudged : q;
}

bool FieldOfInterest::segment_inside(Vec2 a, Vec2 b) const {
  if (!contains(a) || !contains(b)) return false;
  if (outer_.segment_crosses_boundary(a, b)) return false;
  for (const Polygon& h : holes_) {
    if (h.segment_crosses_boundary(a, b)) return false;
    // Fully-contained chord across a convex hole has no boundary crossing
    // only if both endpoints are inside the hole, which contains() already
    // rejected; midpoints guard concave holes hugging the segment.
    if (h.contains(lerp(a, b, 0.5)) &&
        h.boundary_distance(lerp(a, b, 0.5)) > 1e-9) {
      return false;
    }
  }
  return true;
}

Vec2 FieldOfInterest::sample_point(Rng& rng) const {
  BBox bb = bbox();
  for (int tries = 0; tries < 100000; ++tries) {
    Vec2 p{rng.uniform(bb.lo.x, bb.hi.x), rng.uniform(bb.lo.y, bb.hi.y)};
    if (contains(p)) return p;
  }
  ANR_CHECK_MSG(false, "sample_point: rejection sampling failed (tiny FoI?)");
  return {};
}

std::vector<Vec2> FieldOfInterest::lattice_points(double h, double margin) const {
  ANR_CHECK(h > 0.0);
  std::vector<Vec2> out;
  BBox bb = bbox();
  double row_h = h * std::sqrt(3.0) / 2.0;
  int row = 0;
  for (double y = bb.lo.y; y <= bb.hi.y; y += row_h, ++row) {
    double x0 = bb.lo.x + (row % 2 == 0 ? 0.0 : h / 2.0);
    for (double x = x0; x <= bb.hi.x; x += h) {
      Vec2 p{x, y};
      if (!contains(p)) continue;
      if (margin > 0.0 && distance_to_boundary(p) < margin) continue;
      out.push_back(p);
    }
  }
  return out;
}

FieldOfInterest FieldOfInterest::translated(Vec2 d) const {
  std::vector<Polygon> holes;
  holes.reserve(holes_.size());
  for (const Polygon& h : holes_) holes.push_back(h.translated(d));
  return FieldOfInterest(outer_.translated(d), std::move(holes));
}

}  // namespace anr
