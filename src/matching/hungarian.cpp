#include "matching/hungarian.h"

#include <limits>

#include "common/check.h"

namespace anr {

AssignmentResult solve_assignment(const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  ANR_CHECK(n > 0);
  for (const auto& row : cost) {
    ANR_CHECK_MSG(static_cast<int>(row.size()) == n, "cost matrix not square");
  }
  const double kInf = std::numeric_limits<double>::infinity();

  // Jonker–Volgenant with 1-based potentials; standard O(n^3) formulation.
  std::vector<double> u(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<int> p(static_cast<std::size_t>(n) + 1, 0);    // col -> row match
  std::vector<int> way(static_cast<std::size_t>(n) + 1, 0);  // col -> prev col

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(n) + 1, 0);
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      int i0 = p[static_cast<std::size_t>(j0)];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        double cur = cost[static_cast<std::size_t>(i0 - 1)]
                         [static_cast<std::size_t>(j - 1)] -
                     u[static_cast<std::size_t>(i0)] -
                     v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    do {
      int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult out;
  out.row_to_col.assign(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= n; ++j) {
    out.row_to_col[static_cast<std::size_t>(p[static_cast<std::size_t>(j)] - 1)] =
        j - 1;
  }
  for (int i = 0; i < n; ++i) {
    out.total_cost += cost[static_cast<std::size_t>(i)][static_cast<std::size_t>(
        out.row_to_col[static_cast<std::size_t>(i)])];
  }
  return out;
}

AssignmentResult min_distance_assignment(const std::vector<Vec2>& from,
                                         const std::vector<Vec2>& to) {
  ANR_CHECK_MSG(from.size() == to.size(), "assignment needs equal sizes");
  const std::size_t n = from.size();
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cost[i][j] = distance(from[i], to[j]);
    }
  }
  return solve_assignment(cost);
}

}  // namespace anr
