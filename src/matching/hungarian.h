// Minimum-cost bipartite matching (Hungarian / Jonker–Volgenant).
//
// The paper converts minimum-total-moving-distance marching into minimum
// cost bipartite matching (Defs. 3–5): robots' current positions on one
// side, optimal coverage positions in M2 on the other, Euclidean-distance
// costs. Used by both baselines (direct translation's local assignment and
// the pure Hungarian method) and as the distance lower bound every bench
// normalizes against.
#pragma once

#include <vector>

#include "geom/vec2.h"

namespace anr {

/// Dense cost matrix: cost[i][j] = cost of assigning row i to column j.
/// Must be square.
struct AssignmentResult {
  std::vector<int> row_to_col;  ///< per row, the matched column
  double total_cost = 0.0;
};

/// Solves the assignment problem in O(n^3) with the shortest-augmenting-
/// path (Jonker–Volgenant) formulation of the Hungarian method.
AssignmentResult solve_assignment(const std::vector<std::vector<double>>& cost);

/// Convenience: minimum total-Euclidean-distance matching of `from` onto
/// `to` (equal sizes).
AssignmentResult min_distance_assignment(const std::vector<Vec2>& from,
                                         const std::vector<Vec2>& to);

}  // namespace anr
