// Bridge from the fault layer to the message simulator.
//
// A FaultSchedule scripts link-dropout and range-degradation windows,
// but until this adapter existed the windows only informed the
// centralized connectivity oracle — the Network kept delivering. The
// bridge closes that gap: it binds a FaultModel to Network's link-outage
// hook so that a scheduled dropout (or a shrunk radio range) suppresses
// the actual messages in flight. The same seeded campaigns that drive
// the centralized ExecutionEngine thereby drop real traffic in the
// decentralized mode.
//
// Rounds map to wall time via `round_dt` (the engine ticks the network
// once per simulation tick). The adapter caches the schedule's dropped
// set per round, so a partition window scripted as hundreds of
// per-link dropout events costs one schedule scan per round, not one
// per delivery.
#pragma once

#include <vector>

#include "fault/fault_model.h"
#include "net/network.h"

namespace anr::net {

/// Outage predicate for Network::set_link_outage: the (a, b) link is
/// down at round r when the schedule has an active kLinkDropout window
/// over it at t = r * round_dt. The FaultModel must outlive the network.
LinkOutageFn make_fault_outage(const fault::FaultModel& model,
                               double round_dt);

/// As above, plus range degradation: the link is also down when the
/// nodes' current positions are farther apart than range_factor(t) *
/// r_c. `positions` is read live at delivery time (the caller keeps it
/// current as robots move) and must outlive the network.
LinkOutageFn make_fault_outage(const fault::FaultModel& model,
                               double round_dt,
                               const std::vector<Vec2>* positions,
                               double r_c);

}  // namespace anr::net
