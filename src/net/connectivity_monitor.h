// Online connectivity guard for march execution.
//
// The execution engine needs two verdicts per tick: is the alive network
// connected *right now* (Def. 2, the hard guarantee), and is it still
// connected under a shrunk guard radius (the early warning that triggers
// pause-and-wait before the hard guarantee is lost — gaps grow by at most
// one tick's travel, so a guard margin below 1.0 always fires first).
//
// Fast path: no dropped links -> the amortized allocation-free
// net::IncrementalConnectivity, one checker per distinct effective radius
// (radii change only when a range-degradation window opens or closes, so
// the set stays tiny). Link-dropout windows force the exact slow path:
// build the unit-disk adjacency, erase the dropped edges, BFS.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "net/incremental_connectivity.h"

namespace anr::net {

class ConnectivityMonitor {
 public:
  /// `guard_factor` scales the radius of the early-warning check; must be
  /// in (0, 1].
  explicit ConnectivityMonitor(double r_c, double guard_factor = 0.85);

  struct Verdict {
    bool connected = true;  ///< one component at the effective radius
    bool guard_ok = true;   ///< one component at guard_factor * radius
  };

  /// Assesses `pts` (the alive robots) with the communication range
  /// scaled by `range_factor` and the given links (index pairs into
  /// `pts`) forced down.
  Verdict assess(const std::vector<Vec2>& pts, double range_factor,
                 const std::vector<std::pair<int, int>>& dropped_links);

  /// As above, but with a one-off guard factor for this call (callers that
  /// recalibrate the guard per tick should quantize it so the per-radius
  /// checker set stays small).
  Verdict assess(const std::vector<Vec2>& pts, double range_factor,
                 const std::vector<std::pair<int, int>>& dropped_links,
                 double guard_factor);

  double comm_range() const { return r_c_; }
  double guard_factor() const { return guard_factor_; }

 private:
  bool connected_at(const std::vector<Vec2>& pts, double radius,
                    const std::vector<std::pair<int, int>>& dropped);

  double r_c_;
  double guard_factor_;
  /// Incremental checkers keyed by radius (fast path only).
  std::map<double, IncrementalConnectivity> checkers_;
};

}  // namespace anr::net
