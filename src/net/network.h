// Round-based message-passing network simulator.
//
// The paper's algorithms are distributed: boundary hop-counting walks,
// flooding of link-ratio sums, iterative neighbor averaging, and
// boundary-sourced reachability packets. This substrate executes them as
// real message exchanges over an explicit topology so that the library's
// "distributed" claim is meaningful: protocols only read a node's own
// state and its inbox. A synchronous round model (messages sent in round
// k arrive at round k+1) keeps executions deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/vec2.h"

namespace anr::net {

/// Node identifier; also the node's unique ID in protocols that elect by
/// smallest ID (paper Sec. III-B).
using NodeId = int;

/// A protocol message. `tag` identifies the protocol-specific type; the
/// two payload vectors carry whatever that protocol needs.
struct Message {
  NodeId src = -1;
  int tag = 0;
  std::vector<int> ints;
  std::vector<double> reals;
};

/// Fixed-topology synchronous network. Construct from an explicit
/// adjacency (e.g. the robot triangulation's edges) or from positions with
/// a unit-disk range.
///
/// Asynchrony: `set_link_delays` gives every message an independent
/// (seeded, deterministic) delivery delay of 1..max_delay rounds. Token
/// protocols (boundary walk) and monotone flooding protocols (flood sum,
/// subgroup detection) are delay-tolerant and tested under asynchrony;
/// the Jacobi relaxation assumes lock-step rounds and is synchronous-only.
class Network {
 public:
  /// Explicit adjacency; lists may be unsorted, self-loops are rejected.
  explicit Network(std::vector<std::vector<NodeId>> adjacency);

  /// Unit-disk topology over `positions` with communication range `r`.
  Network(const std::vector<Vec2>& positions, double r);

  /// Enables asynchronous delivery: each subsequently-sent message takes
  /// a uniform 1..max_delay rounds to arrive. max_delay = 1 restores the
  /// synchronous model.
  void set_link_delays(int max_delay, std::uint64_t seed);

  int size() const { return static_cast<int>(adj_.size()); }
  const std::vector<NodeId>& neighbors(NodeId v) const;
  bool linked(NodeId a, NodeId b) const;

  /// Queues a message for delivery next round. The link (from, to) must
  /// exist — protocols cannot talk past the topology.
  void send(NodeId from, NodeId to, Message m);

  /// Sends a copy of m to every neighbor of `from`.
  void broadcast(NodeId from, const Message& m);

  /// Advances one round: everything queued becomes visible in inboxes.
  /// Returns true when at least one message was delivered.
  bool deliver_round();

  /// Drains and returns node v's inbox (messages delivered this round).
  std::vector<Message> take_inbox(NodeId v);

  /// True when no message is queued or sitting undelivered in an inbox.
  bool quiescent() const;

  // Execution statistics (message complexity of a protocol run).
  std::size_t messages_sent() const { return messages_sent_; }
  std::size_t rounds_elapsed() const { return rounds_; }
  void reset_stats();

 private:
  struct Pending {
    NodeId to;
    std::size_t due_round;
    Message msg;
  };

  std::vector<std::vector<NodeId>> adj_;
  std::vector<std::vector<Message>> inbox_;
  std::vector<Pending> queue_;
  std::size_t messages_sent_ = 0;
  std::size_t rounds_ = 0;
  int max_delay_ = 1;
  std::uint64_t delay_state_ = 0;
};

}  // namespace anr::net
