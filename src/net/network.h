// Round-based message-passing network simulator.
//
// The paper's algorithms are distributed: boundary hop-counting walks,
// flooding of link-ratio sums, iterative neighbor averaging, and
// boundary-sourced reachability packets. This substrate executes them as
// real message exchanges over an explicit topology so that the library's
// "distributed" claim is meaningful: protocols only read a node's own
// state and its inbox. A synchronous round model (messages sent in round
// k arrive at round k+1) keeps executions deterministic.
//
// The channel can be made hostile, one knob at a time, without losing
// determinism:
//
//   - set_link_delays: per-message delivery delay of 1..max_delay rounds
//     (seeded), the asynchrony model the delay-tolerant protocols are
//     tested under;
//   - set_message_loss: each transmission attempt is independently lost
//     with probability p (seeded Bernoulli, drawn in send order);
//   - set_link_outage: a caller-supplied predicate (see fault_bridge.h
//     for the FaultSchedule adapter) forces links down at delivery time —
//     messages in flight over a downed link are lost, which is how
//     scripted partition/heal windows drop real traffic;
//   - update_topology: the adjacency can be rebuilt mid-run (robots move);
//     a message whose link no longer exists when its delay elapses is
//     lost.
//
// Reliability is layered on top, not baked in: send_reliable() tags the
// message with a sequence number, retransmits every retry_interval
// rounds until an ack arrives (acks travel the same lossy channel), and
// gives up after max_retries. Receivers suppress duplicates by (origin,
// sequence) so a protocol sees each reliable message exactly once no
// matter how many copies the retry loop put in flight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "geom/vec2.h"

namespace anr::net {

/// Node identifier; also the node's unique ID in protocols that elect by
/// smallest ID (paper Sec. III-B).
using NodeId = int;

/// A protocol message. `tag` identifies the protocol-specific type; the
/// two payload vectors carry whatever that protocol needs.
struct Message {
  NodeId src = -1;
  int tag = 0;
  std::vector<int> ints;
  std::vector<double> reals;
};

/// Approximate wire size of a message: a fixed header plus the payload
/// words. Used for the byte accounting only.
std::size_t message_bytes(const Message& m);

/// Knobs of the ack/retransmit layer behind send_reliable().
struct ReliabilityOptions {
  int retry_interval = 2;  ///< rounds between retransmission attempts
  int max_retries = 8;     ///< retransmissions after the initial send
};

/// Link-outage predicate: true when the (from, to) link cannot carry a
/// message at delivery round `round`. Must be deterministic.
using LinkOutageFn = std::function<bool(NodeId from, NodeId to, std::size_t round)>;

/// Fixed-topology synchronous network. Construct from an explicit
/// adjacency (e.g. the robot triangulation's edges) or from positions with
/// a unit-disk range.
///
/// Asynchrony: `set_link_delays` gives every message an independent
/// (seeded, deterministic) delivery delay of 1..max_delay rounds. Token
/// protocols (boundary walk) and monotone flooding protocols (flood sum,
/// subgroup detection) are delay-tolerant and tested under asynchrony;
/// the gossip averaging runs round-tagged lockstep and tolerates both
/// delay and (retransmitted) loss.
class Network {
 public:
  /// Explicit adjacency; lists may be unsorted, self-loops are rejected.
  explicit Network(std::vector<std::vector<NodeId>> adjacency);

  /// Unit-disk topology over `positions` with communication range `r`.
  Network(const std::vector<Vec2>& positions, double r);

  /// Enables asynchronous delivery: each subsequently-sent message takes
  /// a uniform 1..max_delay rounds to arrive. max_delay = 1 restores the
  /// synchronous model.
  void set_link_delays(int max_delay, std::uint64_t seed);

  /// Every subsequent transmission attempt (including retransmissions
  /// and acks) is lost with probability `p`, deterministically in `seed`
  /// and the send order. p = 0 restores the lossless channel.
  void set_message_loss(double p, std::uint64_t seed);

  /// Installs (or clears, with nullptr) the link-outage predicate. A
  /// message is dropped when its link is down at the round its delay
  /// elapses — in-flight traffic over a freshly downed link is lost.
  void set_link_outage(LinkOutageFn down);

  /// Configures the ack/retransmit layer used by send_reliable().
  void set_reliability(ReliabilityOptions opt);

  /// When on, send() and broadcast() behave like their _reliable
  /// variants. Lets the existing protocols run unmodified over a lossy
  /// channel.
  void set_reliable_default(bool on) { reliable_default_ = on; }

  /// Replaces the topology mid-run (robots moved). Queued messages are
  /// kept, but delivery re-checks the link when the delay elapses; a
  /// message whose link vanished is lost.
  void update_topology(std::vector<std::vector<NodeId>> adjacency);
  void update_topology(const std::vector<Vec2>& positions, double r);

  int size() const { return static_cast<int>(adj_.size()); }
  const std::vector<NodeId>& neighbors(NodeId v) const;
  bool linked(NodeId a, NodeId b) const;

  /// Queues a message for delivery next round. The link (from, to) must
  /// exist — protocols cannot talk past the topology.
  void send(NodeId from, NodeId to, Message m);

  /// Sends a copy of m to every neighbor of `from`.
  void broadcast(NodeId from, const Message& m);

  /// As send(), but acknowledged: retransmitted every retry_interval
  /// rounds until acked, up to max_retries; the receiver sees exactly one
  /// copy (duplicates are suppressed by sequence number).
  void send_reliable(NodeId from, NodeId to, Message m);

  /// Reliable copy of m to every current neighbor of `from`.
  void broadcast_reliable(NodeId from, const Message& m);

  /// Advances one round: retransmits overdue unacked messages, then
  /// everything queued whose delay elapsed becomes visible in inboxes.
  /// Returns true when at least one message was delivered.
  bool deliver_round();

  /// Drains and returns node v's inbox. Order is pinned: messages
  /// delivered in the same round arrive sorted by sender id, ties broken
  /// by send order; successive rounds append. The order is a pure
  /// function of the send sequence and the delay/loss seeds, so protocol
  /// event logs replay byte-identically.
  std::vector<Message> take_inbox(NodeId v);

  /// True when no message is queued, sitting undelivered in an inbox, or
  /// awaiting an ack (pending retransmission).
  bool quiescent() const;

  // Execution statistics (message complexity of a protocol run).
  std::size_t messages_sent() const { return messages_sent_; }
  std::size_t messages_delivered() const { return messages_delivered_; }
  /// Transmission attempts lost to the channel (loss draw, downed link,
  /// or vanished topology edge). Suppressed duplicates are not losses.
  std::size_t messages_lost() const { return messages_lost_; }
  std::size_t retransmissions() const { return retransmissions_; }
  /// Reliable sends abandoned after the retry budget.
  std::size_t messages_expired() const { return messages_expired_; }
  std::size_t duplicates_suppressed() const { return duplicates_suppressed_; }
  std::size_t acks_sent() const { return acks_sent_; }
  std::size_t bytes_sent() const { return bytes_sent_; }
  std::size_t rounds_elapsed() const { return rounds_; }
  void reset_stats();

 private:
  enum class PendingKind { kData, kAck };

  struct Pending {
    NodeId to;
    std::size_t due_round;
    PendingKind kind = PendingKind::kData;
    bool reliable = false;
    std::uint64_t seq = 0;  ///< globally unique for reliable data; echoed by acks
    Message msg;            ///< empty payload for acks (src still set)
  };

  struct Unacked {
    NodeId from;
    NodeId to;
    std::uint64_t seq;
    int attempts = 0;  ///< retransmissions performed so far
    std::size_t next_retry = 0;
    Message msg;
  };

  std::uint64_t next_delay_draw();
  bool next_loss_draw();
  /// One transmission attempt: loss draw, delay draw, enqueue. Returns
  /// true when the copy was put in flight (not lost at send time).
  void transmit(NodeId from, NodeId to, Message m, PendingKind kind,
                bool reliable, std::uint64_t seq);

  std::vector<std::vector<NodeId>> adj_;
  std::vector<std::vector<Message>> inbox_;
  std::vector<Pending> queue_;
  std::vector<Unacked> unacked_;
  /// Per receiver: sequence numbers already delivered (duplicate filter).
  std::vector<std::unordered_set<std::uint64_t>> seen_;

  std::size_t messages_sent_ = 0;
  std::size_t messages_delivered_ = 0;
  std::size_t messages_lost_ = 0;
  std::size_t retransmissions_ = 0;
  std::size_t messages_expired_ = 0;
  std::size_t duplicates_suppressed_ = 0;
  std::size_t acks_sent_ = 0;
  std::size_t bytes_sent_ = 0;
  std::size_t rounds_ = 0;

  int max_delay_ = 1;
  std::uint64_t delay_state_ = 0;
  double loss_p_ = 0.0;
  std::uint64_t loss_state_ = 0;
  LinkOutageFn down_;
  ReliabilityOptions reliability_;
  bool reliable_default_ = false;
  std::uint64_t next_seq_ = 1;
};

}  // namespace anr::net
