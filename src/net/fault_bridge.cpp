#include "net/fault_bridge.h"

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace anr::net {

namespace {

/// Per-round view of the schedule: the dropped-link set and the range
/// factor, rebuilt once when the round advances. Shared by value-copied
/// std::function instances through a shared_ptr.
struct OutageCache {
  const fault::FaultModel* model = nullptr;
  double round_dt = 0.0;
  std::size_t round = std::numeric_limits<std::size_t>::max();
  std::unordered_set<std::uint64_t> dropped;
  double range_factor = 1.0;

  void refresh(std::size_t r) {
    if (r == round) return;
    round = r;
    const double t = static_cast<double>(r) * round_dt;
    dropped.clear();
    for (const auto& [a, b] : model->dropped_links(t)) {
      dropped.insert((static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
                      << 32) |
                     static_cast<std::uint32_t>(b));
    }
    range_factor = model->range_factor(t);
  }

  bool link_down(NodeId a, NodeId b) const {
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    return dropped.count(
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo))
                << 32) |
               static_cast<std::uint32_t>(hi)) > 0;
  }
};

}  // namespace

LinkOutageFn make_fault_outage(const fault::FaultModel& model,
                               double round_dt) {
  return make_fault_outage(model, round_dt, nullptr, 0.0);
}

LinkOutageFn make_fault_outage(const fault::FaultModel& model,
                               double round_dt,
                               const std::vector<Vec2>* positions,
                               double r_c) {
  ANR_CHECK(round_dt > 0.0);
  ANR_CHECK(positions == nullptr || r_c > 0.0);
  auto cache = std::make_shared<OutageCache>();
  cache->model = &model;
  cache->round_dt = round_dt;
  return [cache, positions, r_c](NodeId from, NodeId to,
                                 std::size_t round) -> bool {
    cache->refresh(round);
    if (cache->link_down(from, to)) return true;
    if (positions != nullptr && cache->range_factor < 1.0) {
      const Vec2& a = (*positions)[static_cast<std::size_t>(from)];
      const Vec2& b = (*positions)[static_cast<std::size_t>(to)];
      if (distance(a, b) > cache->range_factor * r_c * (1.0 + 1e-12)) {
        return true;
      }
    }
    return false;
  };
}

}  // namespace anr::net
