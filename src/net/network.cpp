#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "net/unit_disk_graph.h"

namespace anr::net {

Network::Network(std::vector<std::vector<NodeId>> adjacency)
    : adj_(std::move(adjacency)), inbox_(adj_.size()) {
  for (std::size_t v = 0; v < adj_.size(); ++v) {
    auto& nb = adj_[v];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    for (NodeId u : nb) {
      ANR_CHECK_MSG(u >= 0 && static_cast<std::size_t>(u) < adj_.size(),
                    "adjacency references missing node");
      ANR_CHECK_MSG(u != static_cast<NodeId>(v), "self-loop in adjacency");
    }
  }
}

Network::Network(const std::vector<Vec2>& positions, double r)
    : Network(unit_disk_adjacency(positions, r)) {}

const std::vector<NodeId>& Network::neighbors(NodeId v) const {
  return adj_[static_cast<std::size_t>(v)];
}

bool Network::linked(NodeId a, NodeId b) const {
  const auto& nb = adj_[static_cast<std::size_t>(a)];
  return std::binary_search(nb.begin(), nb.end(), b);
}

void Network::set_link_delays(int max_delay, std::uint64_t seed) {
  ANR_CHECK(max_delay >= 1);
  max_delay_ = max_delay;
  delay_state_ = seed * 0x9e3779b97f4a7c15ull + 0xbf58476d1ce4e5b9ull;
}

void Network::send(NodeId from, NodeId to, Message m) {
  ANR_CHECK_MSG(linked(from, to), "send over non-existent link");
  m.src = from;
  std::size_t delay = 1;
  if (max_delay_ > 1) {
    // splitmix64-style deterministic stream.
    delay_state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = delay_state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    delay = 1 + static_cast<std::size_t>(z % static_cast<std::uint64_t>(max_delay_));
  }
  queue_.push_back(Pending{to, rounds_ + delay, std::move(m)});
  ++messages_sent_;
}

void Network::broadcast(NodeId from, const Message& m) {
  for (NodeId to : neighbors(from)) {
    send(from, to, m);
  }
}

bool Network::deliver_round() {
  ++rounds_;
  if (queue_.empty()) return false;
  // Deterministic delivery order: by receiver, then sender, preserving
  // send order within a pair. Only messages whose delay elapsed arrive.
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.to != b.to) return a.to < b.to;
                     return a.msg.src < b.msg.src;
                   });
  bool delivered = false;
  std::vector<Pending> later;
  later.reserve(queue_.size());
  for (Pending& p : queue_) {
    if (p.due_round <= rounds_) {
      inbox_[static_cast<std::size_t>(p.to)].push_back(std::move(p.msg));
      delivered = true;
    } else {
      later.push_back(std::move(p));
    }
  }
  queue_ = std::move(later);
  return delivered;
}

std::vector<Message> Network::take_inbox(NodeId v) {
  return std::exchange(inbox_[static_cast<std::size_t>(v)], {});
}

bool Network::quiescent() const {
  if (!queue_.empty()) return false;
  for (const auto& box : inbox_) {
    if (!box.empty()) return false;
  }
  return true;
}

void Network::reset_stats() {
  messages_sent_ = 0;
  rounds_ = 0;
}

}  // namespace anr::net
