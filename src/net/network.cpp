#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "net/unit_disk_graph.h"

namespace anr::net {

namespace {

/// Uniform double in [0, 1) from a 64-bit hash.
double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::size_t message_bytes(const Message& m) {
  // 16-byte header (src, tag, lengths) + 4 bytes per int + 8 per real.
  return 16 + 4 * m.ints.size() + 8 * m.reals.size();
}

Network::Network(std::vector<std::vector<NodeId>> adjacency)
    : adj_(std::move(adjacency)), inbox_(adj_.size()), seen_(adj_.size()) {
  for (std::size_t v = 0; v < adj_.size(); ++v) {
    auto& nb = adj_[v];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    for (NodeId u : nb) {
      ANR_CHECK_MSG(u >= 0 && static_cast<std::size_t>(u) < adj_.size(),
                    "adjacency references missing node");
      ANR_CHECK_MSG(u != static_cast<NodeId>(v), "self-loop in adjacency");
    }
  }
}

Network::Network(const std::vector<Vec2>& positions, double r)
    : Network(unit_disk_adjacency(positions, r)) {}

const std::vector<NodeId>& Network::neighbors(NodeId v) const {
  return adj_[static_cast<std::size_t>(v)];
}

bool Network::linked(NodeId a, NodeId b) const {
  const auto& nb = adj_[static_cast<std::size_t>(a)];
  return std::binary_search(nb.begin(), nb.end(), b);
}

void Network::set_link_delays(int max_delay, std::uint64_t seed) {
  ANR_CHECK(max_delay >= 1);
  max_delay_ = max_delay;
  delay_state_ = seed * 0x9e3779b97f4a7c15ull + 0xbf58476d1ce4e5b9ull;
}

void Network::set_message_loss(double p, std::uint64_t seed) {
  ANR_CHECK(p >= 0.0 && p < 1.0);
  loss_p_ = p;
  loss_state_ = splitmix64(seed ^ 0x10551055c0ffee00ull);
}

void Network::set_link_outage(LinkOutageFn down) { down_ = std::move(down); }

void Network::set_reliability(ReliabilityOptions opt) {
  ANR_CHECK(opt.retry_interval >= 1);
  ANR_CHECK(opt.max_retries >= 0);
  reliability_ = opt;
}

void Network::update_topology(std::vector<std::vector<NodeId>> adjacency) {
  ANR_CHECK_MSG(adjacency.size() == adj_.size(),
                "topology update must keep the node count");
  for (std::size_t v = 0; v < adjacency.size(); ++v) {
    auto& nb = adjacency[v];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    for (NodeId u : nb) {
      ANR_CHECK_MSG(u >= 0 && static_cast<std::size_t>(u) < adjacency.size(),
                    "adjacency references missing node");
      ANR_CHECK_MSG(u != static_cast<NodeId>(v), "self-loop in adjacency");
    }
  }
  adj_ = std::move(adjacency);
}

void Network::update_topology(const std::vector<Vec2>& positions, double r) {
  update_topology(unit_disk_adjacency(positions, r));
}

std::uint64_t Network::next_delay_draw() {
  delay_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = delay_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool Network::next_loss_draw() {
  if (loss_p_ <= 0.0) return false;
  loss_state_ = splitmix64(loss_state_);
  return unit_interval(loss_state_) < loss_p_;
}

void Network::transmit(NodeId from, NodeId to, Message m, PendingKind kind,
                       bool reliable, std::uint64_t seq) {
  m.src = from;
  ++messages_sent_;
  bytes_sent_ += kind == PendingKind::kAck ? 12 : message_bytes(m);
  if (next_loss_draw()) {
    ++messages_lost_;
    return;
  }
  std::size_t delay = 1;
  if (max_delay_ > 1) {
    // splitmix64-style deterministic stream.
    delay = 1 + static_cast<std::size_t>(
                    next_delay_draw() % static_cast<std::uint64_t>(max_delay_));
  }
  queue_.push_back(Pending{to, rounds_ + delay, kind, reliable, seq, std::move(m)});
}

void Network::send(NodeId from, NodeId to, Message m) {
  if (reliable_default_) {
    send_reliable(from, to, std::move(m));
    return;
  }
  ANR_CHECK_MSG(linked(from, to), "send over non-existent link");
  transmit(from, to, std::move(m), PendingKind::kData, false, 0);
}

void Network::broadcast(NodeId from, const Message& m) {
  for (NodeId to : neighbors(from)) {
    send(from, to, m);
  }
}

void Network::send_reliable(NodeId from, NodeId to, Message m) {
  ANR_CHECK_MSG(linked(from, to), "send over non-existent link");
  const std::uint64_t seq = next_seq_++;
  unacked_.push_back(Unacked{
      from, to, seq, 0,
      rounds_ + 1 + static_cast<std::size_t>(reliability_.retry_interval), m});
  transmit(from, to, std::move(m), PendingKind::kData, true, seq);
}

void Network::broadcast_reliable(NodeId from, const Message& m) {
  for (NodeId to : neighbors(from)) {
    send_reliable(from, to, m);
  }
}

bool Network::deliver_round() {
  ++rounds_;
  // Retransmission sweep: overdue unacked messages go back on the wire
  // (fresh loss/delay draws); entries past the retry budget are
  // abandoned. Insertion order keeps this deterministic.
  for (std::size_t i = 0; i < unacked_.size();) {
    Unacked& u = unacked_[i];
    if (u.next_retry > rounds_) {
      ++i;
      continue;
    }
    if (u.attempts >= reliability_.max_retries) {
      ++messages_expired_;
      unacked_.erase(unacked_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++u.attempts;
    ++retransmissions_;
    u.next_retry = rounds_ + static_cast<std::size_t>(reliability_.retry_interval);
    transmit(u.from, u.to, u.msg, PendingKind::kData, true, u.seq);
    ++i;
  }

  if (queue_.empty()) return false;
  // Deterministic delivery order: by receiver, then sender, preserving
  // send order within a pair. Only messages whose delay elapsed arrive.
  // The queue is swapped out first because ack transmissions during the
  // sweep append fresh entries.
  std::vector<Pending> current;
  current.swap(queue_);
  std::stable_sort(current.begin(), current.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.to != b.to) return a.to < b.to;
                     return a.msg.src < b.msg.src;
                   });
  bool delivered = false;
  std::vector<Pending> later;
  later.reserve(current.size());
  for (Pending& p : current) {
    if (p.due_round > rounds_) {
      later.push_back(std::move(p));
      continue;
    }
    // The link must still be up when the delay elapses: topology updates
    // and scripted outages both kill traffic in flight.
    if (!linked(p.msg.src, p.to) ||
        (down_ && down_(p.msg.src, p.to, rounds_))) {
      ++messages_lost_;
      continue;
    }
    if (p.kind == PendingKind::kAck) {
      for (std::size_t i = 0; i < unacked_.size(); ++i) {
        if (unacked_[i].seq == p.seq) {
          unacked_.erase(unacked_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      continue;
    }
    if (p.reliable) {
      // Ack every copy (a lost ack otherwise deadlocks the sender), but
      // deliver only the first.
      Message ack;
      ack.tag = 0;
      if (linked(p.to, p.msg.src)) {
        ++acks_sent_;
        transmit(p.to, p.msg.src, std::move(ack), PendingKind::kAck, false,
                 p.seq);
      }
      auto& seen = seen_[static_cast<std::size_t>(p.to)];
      if (!seen.insert(p.seq).second) {
        ++duplicates_suppressed_;
        continue;
      }
    }
    inbox_[static_cast<std::size_t>(p.to)].push_back(std::move(p.msg));
    ++messages_delivered_;
    delivered = true;
  }
  // Not-yet-due messages keep their relative (send) order ahead of the
  // acks generated this round.
  later.insert(later.end(), std::make_move_iterator(queue_.begin()),
               std::make_move_iterator(queue_.end()));
  queue_ = std::move(later);
  return delivered;
}

std::vector<Message> Network::take_inbox(NodeId v) {
  return std::exchange(inbox_[static_cast<std::size_t>(v)], {});
}

bool Network::quiescent() const {
  if (!queue_.empty() || !unacked_.empty()) return false;
  for (const auto& box : inbox_) {
    if (!box.empty()) return false;
  }
  return true;
}

void Network::reset_stats() {
  messages_sent_ = 0;
  messages_delivered_ = 0;
  messages_lost_ = 0;
  retransmissions_ = 0;
  messages_expired_ = 0;
  duplicates_suppressed_ = 0;
  acks_sent_ = 0;
  bytes_sent_ = 0;
  rounds_ = 0;
}

}  // namespace anr::net
