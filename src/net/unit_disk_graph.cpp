#include "net/unit_disk_graph.h"

#include <algorithm>

#include "common/check.h"
#include "geom/grid_index.h"

namespace anr::net {

std::vector<std::vector<int>> unit_disk_adjacency(
    const std::vector<Vec2>& positions, double r) {
  ANR_CHECK(r > 0.0);
  std::vector<std::vector<int>> adj(positions.size());
  if (positions.empty()) return adj;
  GridIndex index(positions, r);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (int j : index.query_radius(positions[i], r)) {
      if (static_cast<std::size_t>(j) != i) {
        adj[i].push_back(j);
      }
    }
    std::sort(adj[i].begin(), adj[i].end());
  }
  return adj;
}

std::vector<std::pair<int, int>> unit_disk_edges(
    const std::vector<Vec2>& positions, double r) {
  auto adj = unit_disk_adjacency(positions, r);
  std::vector<std::pair<int, int>> edges;
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (int j : adj[i]) {
      if (static_cast<int>(i) < j) edges.emplace_back(static_cast<int>(i), j);
    }
  }
  return edges;
}

}  // namespace anr::net
