#include "net/unit_disk_graph.h"

#include "common/check.h"
#include "geom/grid_index.h"

namespace anr::net {

std::vector<std::vector<int>> unit_disk_adjacency(
    const std::vector<Vec2>& positions, double r) {
  ANR_CHECK(r > 0.0);
  const std::size_t n = positions.size();
  std::vector<std::vector<int>> adj(n);
  if (positions.empty()) return adj;
  GridIndex index(positions, r);

  // Pass 1: exact degrees, so every row is a single allocation.
  std::vector<int> deg(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    index.visit_radius(positions[i], r, [&](int j) {
      if (static_cast<std::size_t>(j) != i) ++deg[static_cast<std::size_t>(j)];
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    adj[i].reserve(static_cast<std::size_t>(deg[i]));
  }

  // Pass 2: transpose fill. Scanning j in increasing order and appending j
  // to each neighbor's row leaves every row sorted — no per-row sort.
  for (std::size_t j = 0; j < n; ++j) {
    index.visit_radius(positions[j], r, [&](int i) {
      if (static_cast<std::size_t>(i) != j) {
        adj[static_cast<std::size_t>(i)].push_back(static_cast<int>(j));
      }
    });
  }
  return adj;
}

std::vector<std::pair<int, int>> unit_disk_edges(
    const std::vector<Vec2>& positions, double r) {
  auto adj = unit_disk_adjacency(positions, r);
  std::size_t degree_sum = 0;
  for (const auto& row : adj) degree_sum += row.size();
  std::vector<std::pair<int, int>> edges;
  edges.reserve(degree_sum / 2);
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (int j : adj[i]) {
      if (static_cast<int>(i) < j) edges.emplace_back(static_cast<int>(i), j);
    }
  }
  return edges;
}

}  // namespace anr::net
