#include "net/connectivity_monitor.h"

#include <algorithm>

#include "common/check.h"
#include "net/connectivity.h"
#include "net/unit_disk_graph.h"

namespace anr::net {

ConnectivityMonitor::ConnectivityMonitor(double r_c, double guard_factor)
    : r_c_(r_c), guard_factor_(guard_factor) {
  ANR_CHECK(r_c_ > 0.0);
  ANR_CHECK_MSG(guard_factor_ > 0.0 && guard_factor_ <= 1.0,
                "guard factor must be in (0, 1]");
}

bool ConnectivityMonitor::connected_at(
    const std::vector<Vec2>& pts, double radius,
    const std::vector<std::pair<int, int>>& dropped) {
  if (dropped.empty()) {
    auto it = checkers_.find(radius);
    if (it == checkers_.end()) {
      it = checkers_.emplace(radius, IncrementalConnectivity(radius)).first;
    }
    return it->second.check(pts);
  }
  // Exact slow path: erase the dropped edges from the unit-disk graph.
  auto adj = unit_disk_adjacency(pts, radius);
  const int n = static_cast<int>(pts.size());
  for (const auto& [a, b] : dropped) {
    if (a < 0 || b < 0 || a >= n || b >= n) continue;
    auto& na = adj[static_cast<std::size_t>(a)];
    auto& nb = adj[static_cast<std::size_t>(b)];
    na.erase(std::remove(na.begin(), na.end(), b), na.end());
    nb.erase(std::remove(nb.begin(), nb.end(), a), nb.end());
  }
  return is_connected(adj);
}

ConnectivityMonitor::Verdict ConnectivityMonitor::assess(
    const std::vector<Vec2>& pts, double range_factor,
    const std::vector<std::pair<int, int>>& dropped_links) {
  return assess(pts, range_factor, dropped_links, guard_factor_);
}

ConnectivityMonitor::Verdict ConnectivityMonitor::assess(
    const std::vector<Vec2>& pts, double range_factor,
    const std::vector<std::pair<int, int>>& dropped_links,
    double guard_factor) {
  ANR_CHECK_MSG(guard_factor > 0.0 && guard_factor <= 1.0,
                "guard factor must be in (0, 1]");
  Verdict v;
  if (pts.size() <= 1) return v;
  const double r_eff = r_c_ * range_factor;
  v.connected = connected_at(pts, r_eff, dropped_links);
  v.guard_ok =
      v.connected && connected_at(pts, r_eff * guard_factor, dropped_links);
  return v;
}

}  // namespace anr::net
