#include "net/incremental_connectivity.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anr::net {

IncrementalConnectivity::IncrementalConnectivity(double r) : r_(r) {
  ANR_CHECK(r_ > 0.0);
}

bool IncrementalConnectivity::check(const std::vector<Vec2>& pts) {
  const std::size_t n = pts.size();
  if (n == 0) return true;

  bool rebuild = !have_prev_ || n != prev_n_ || base_.size() != n;
  double dmax = 0.0;
  if (!rebuild) {
    drift_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      drift_[i] = distance(pts[i], base_[i]);
      dmax = std::max(dmax, drift_[i]);
    }
    // A widely drifted snapshot makes the widened queries scan too many
    // cells; re-anchor the index instead.
    rebuild = dmax > 0.5 * r_;
  }
  if (rebuild) {
    base_.assign(pts.begin(), pts.end());
    index_.rebuild(pts, r_);
    drift_.assign(n, 0.0);
    dmax = 0.0;
  }

  std::swap(adj_start_, prev_adj_start_);
  std::swap(adj_, prev_adj_);

  // Pass 1: degrees under the exact link rule on current positions.
  deg_.assign(n, 0);
  const double r2 = r_ * r_;
  for (std::size_t i = 0; i < n; ++i) {
    // Candidates from the (possibly stale) index: a pair linked now has
    // base distance <= r + drift_i + drift_j; bound drift_j by dmax.
    double rq = r_ + drift_[i] + dmax + 1e-9;
    index_.visit_radius(pts[i], rq, [&](int j) {
      if (static_cast<std::size_t>(j) == i) return;
      if (distance2(pts[i], pts[static_cast<std::size_t>(j)]) <= r2 + 1e-12) {
        ++deg_[i];
      }
    });
  }
  adj_start_.resize(n + 1);
  adj_start_[0] = 0;
  for (std::size_t i = 0; i < n; ++i) adj_start_[i + 1] = adj_start_[i] + deg_[i];
  adj_.resize(static_cast<std::size_t>(adj_start_[n]));
  deg_.assign(n, 0);  // reuse as fill cursor
  for (std::size_t i = 0; i < n; ++i) {
    double rq = r_ + drift_[i] + dmax + 1e-9;
    index_.visit_radius(pts[i], rq, [&](int j) {
      if (static_cast<std::size_t>(j) == i) return;
      if (distance2(pts[i], pts[static_cast<std::size_t>(j)]) <= r2 + 1e-12) {
        adj_[static_cast<std::size_t>(adj_start_[i] + deg_[i]++)] = j;
      }
    });
  }

  // Same edge set as the previous probe => same verdict, skip the BFS.
  if (have_prev_ && n == prev_n_ && adj_start_ == prev_adj_start_ &&
      adj_ == prev_adj_) {
    return prev_connected_;
  }

  prev_connected_ = bfs_connected(n);
  prev_n_ = n;
  have_prev_ = true;
  return prev_connected_;
}

bool IncrementalConnectivity::bfs_connected(std::size_t n) {
  visited_.assign(n, 0);
  queue_.clear();
  queue_.push_back(0);
  visited_[0] = 1;
  std::size_t head = 0, seen = 1;
  while (head < queue_.size()) {
    int v = queue_[head++];
    for (int k = adj_start_[static_cast<std::size_t>(v)];
         k < adj_start_[static_cast<std::size_t>(v) + 1]; ++k) {
      int u = adj_[static_cast<std::size_t>(k)];
      if (!visited_[static_cast<std::size_t>(u)]) {
        visited_[static_cast<std::size_t>(u)] = 1;
        ++seen;
        queue_.push_back(u);
      }
    }
  }
  return seen == n;
}

}  // namespace anr::net
