#include "net/protocols/subgroup.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "net/network.h"

namespace anr::net {

namespace {

constexpr int kReach = 1;   // ints = {hops}
constexpr int kStatus = 2;  // ints = {reached ? 1 : 0, boundary_hops}
constexpr int kElect = 3;   // ints = {hop_of_ref, ref, candidate_root}

constexpr int kInf = 1 << 28;

using Key = std::array<int, 3>;  // (hop of reference, reference id, root id)

}  // namespace

SubgroupResult run_subgroup_detection(
    const TriangleMesh& mesh, const std::vector<char>& is_boundary,
    const std::function<bool(VertexId, VertexId)>& survives, int max_delay,
    std::uint64_t delay_seed, double loss_rate, std::uint64_t loss_seed) {
  const int n = static_cast<int>(mesh.num_vertices());
  ANR_CHECK(is_boundary.size() == static_cast<std::size_t>(n));
  ANR_CHECK(max_delay >= 1);
  ANR_CHECK(loss_rate >= 0.0 && loss_rate < 1.0);

  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (const EdgeKey& e : mesh.edges()) {
    adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    adj[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  Network net(adj);
  if (max_delay > 1) net.set_link_delays(max_delay, delay_seed);
  if (loss_rate > 0.0) {
    // A lossy channel needs the ack/retransmit layer underneath or the
    // BFS flood silently under-reaches; the protocol itself is unchanged.
    net.set_message_loss(loss_rate, loss_seed);
    net.set_reliable_default(true);
  }

  SubgroupResult out;
  out.boundary_hops.assign(static_cast<std::size_t>(n), -1);
  out.reached.assign(static_cast<std::size_t>(n), 0);
  out.subgroup_root.assign(static_cast<std::size_t>(n), -1);
  out.reference.assign(static_cast<std::size_t>(n), -1);

  // The quiescence cap pays for retransmission stretch under loss: each
  // hop may wait out the full retry schedule before its message lands.
  const std::size_t kMaxRounds = (8 * static_cast<std::size_t>(n) + 64) *
                                 static_cast<std::size_t>(max_delay) *
                                 (loss_rate > 0.0 ? 18 : 1);

  auto forward_reach = [&](int v, int hops) {
    for (NodeId u : net.neighbors(v)) {
      if (survives(v, u)) {
        Message m;
        m.tag = kReach;
        m.ints = {hops};
        net.send(v, u, std::move(m));
      }
    }
  };

  // --- Phase A: BFS flood from boundary vertices over surviving links.
  // Improvement-driven flooding is monotone, so arbitrary per-message
  // delays change neither termination nor the final hop values.
  for (int v = 0; v < n; ++v) {
    if (is_boundary[static_cast<std::size_t>(v)]) {
      out.boundary_hops[static_cast<std::size_t>(v)] = 0;
      out.reached[static_cast<std::size_t>(v)] = 1;
      forward_reach(v, 1);
    }
  }
  std::size_t round = 0;
  while (!net.quiescent()) {
    ANR_CHECK_MSG(++round < kMaxRounds, "subgroup phase A did not quiesce");
    net.deliver_round();
    for (int v = 0; v < n; ++v) {
      for (Message& m : net.take_inbox(v)) {
        if (m.tag != kReach) continue;
        int hops = m.ints[0];
        int& cur = out.boundary_hops[static_cast<std::size_t>(v)];
        if (cur >= 0 && cur <= hops) continue;  // no improvement: stop here
        cur = hops;
        out.reached[static_cast<std::size_t>(v)] = 1;
        forward_reach(v, hops + 1);
      }
    }
  }

  // --- Phase B prologue: one status broadcast so neighbors learn both
  // reachability and boundary hops (drained fully, tolerating delays).
  std::vector<std::vector<char>> nbr_reached(static_cast<std::size_t>(n));
  std::vector<Key> local(static_cast<std::size_t>(n), Key{kInf, kInf, kInf});
  for (int v = 0; v < n; ++v) {
    nbr_reached[static_cast<std::size_t>(v)].assign(net.neighbors(v).size(), 0);
    local[static_cast<std::size_t>(v)][2] = v;  // fallback root = self
    Message m;
    m.tag = kStatus;
    m.ints = {out.reached[static_cast<std::size_t>(v)] ? 1 : 0,
              out.boundary_hops[static_cast<std::size_t>(v)]};
    net.broadcast(v, m);
  }
  round = 0;
  while (!net.quiescent()) {
    ANR_CHECK_MSG(++round < kMaxRounds, "subgroup status did not quiesce");
    net.deliver_round();
    for (int v = 0; v < n; ++v) {
      for (Message& m : net.take_inbox(v)) {
        if (m.tag != kStatus) continue;
        const auto& nb = net.neighbors(v);
        auto it = std::lower_bound(nb.begin(), nb.end(), m.src);
        nbr_reached[static_cast<std::size_t>(v)]
                   [static_cast<std::size_t>(it - nb.begin())] =
                       static_cast<char>(m.ints[0]);
        if (!out.reached[static_cast<std::size_t>(v)] && m.ints[0] == 1) {
          Key cand{m.ints[1], m.src, v};
          local[static_cast<std::size_t>(v)] =
              std::min(local[static_cast<std::size_t>(v)], cand);
        }
      }
    }
  }

  // --- Phase B: min-key election inside each unreached component.
  // Key = (hop of best reached M1 neighbor, that neighbor, candidate root).
  std::vector<Key> best(static_cast<std::size_t>(n), Key{kInf, kInf, kInf});
  auto flood_key = [&](int v, const Key& k) {
    const auto& nb = net.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (nbr_reached[static_cast<std::size_t>(v)][i]) continue;  // stay inside
      Message m;
      m.tag = kElect;
      m.ints = {k[0], k[1], k[2]};
      net.send(v, nb[i], std::move(m));
    }
  };
  for (int v = 0; v < n; ++v) {
    if (out.reached[static_cast<std::size_t>(v)]) continue;
    best[static_cast<std::size_t>(v)] = local[static_cast<std::size_t>(v)];
    flood_key(v, best[static_cast<std::size_t>(v)]);
  }
  round = 0;
  while (!net.quiescent()) {
    ANR_CHECK_MSG(++round < kMaxRounds, "subgroup phase B did not quiesce");
    net.deliver_round();
    for (int v = 0; v < n; ++v) {
      for (Message& m : net.take_inbox(v)) {
        if (m.tag != kElect) continue;
        if (out.reached[static_cast<std::size_t>(v)]) continue;
        Key k{m.ints[0], m.ints[1], m.ints[2]};
        if (k < best[static_cast<std::size_t>(v)]) {
          best[static_cast<std::size_t>(v)] = k;
          flood_key(v, k);
        }
      }
    }
  }
  for (int v = 0; v < n; ++v) {
    if (out.reached[static_cast<std::size_t>(v)]) continue;
    const Key& k = best[static_cast<std::size_t>(v)];
    out.subgroup_root[static_cast<std::size_t>(v)] = k[2];
    out.reference[static_cast<std::size_t>(v)] = k[1] >= kInf ? -1 : k[1];
  }
  out.messages = net.messages_sent();
  out.rounds = net.rounds_elapsed();
  return out;
}

}  // namespace anr::net
