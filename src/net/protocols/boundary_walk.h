// Distributed boundary parametrization (paper Sec. III-B, first step).
//
// "A boundary vertex with the smallest ID initiates a message with a
// counter that records how many hops the message has travelled along the
// boundary. … The starting vertex notifies other boundary vertices the
// size of the boundary."
//
// We realize the smallest-ID selection with Chang–Roberts ring election
// (every boundary vertex starts a token; tokens survive only toward
// smaller IDs), then a second lap assigns hop indices and the loop size.
// Works per boundary loop, so meshes with holes get one parametrized loop
// per hole plus the outer loop.
#pragma once

#include <cstddef>
#include <vector>

#include "mesh/triangle_mesh.h"

namespace anr::net {

/// Per-vertex boundary parametrization.
struct BoundaryWalkResult {
  /// Hop index along the vertex's loop, counted from the loop leader
  /// (leader itself is 0); -1 for non-boundary vertices.
  std::vector<int> hop;
  /// Number of vertices of the vertex's loop; 0 for non-boundary vertices.
  std::vector<int> loop_size;
  /// Leader (smallest) vertex id of the vertex's loop; -1 off-boundary.
  std::vector<int> loop_leader;

  std::size_t messages = 0;
  std::size_t rounds = 0;
};

/// Runs the protocol over the communication links given by `mesh` edges.
/// Each vertex uses only local knowledge: its incident boundary edges
/// (available from its 1-hop triangle fan) and its inbox.
/// `max_delay` > 1 runs the protocol under asynchronous delivery (each
/// message delayed 1..max_delay rounds, deterministic in `delay_seed`).
BoundaryWalkResult run_boundary_walk(const TriangleMesh& mesh,
                                     int max_delay = 1,
                                     std::uint64_t delay_seed = 0);

}  // namespace anr::net
