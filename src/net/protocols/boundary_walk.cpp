#include "net/protocols/boundary_walk.h"

#include <algorithm>

#include "common/check.h"
#include "net/network.h"

namespace anr::net {

namespace {

// Message tags.
constexpr int kToken = 1;   // ints = {origin, hops}
constexpr int kAssign = 2;  // ints = {leader, size, hop_of_receiver}

struct NodeState {
  // The (at most two) boundary neighbors of this vertex; empty when the
  // vertex is not on a boundary.
  std::vector<VertexId> bnbr;
  int hop = -1;
  int loop_size = 0;
  int leader = -1;
};

}  // namespace

BoundaryWalkResult run_boundary_walk(const TriangleMesh& mesh, int max_delay,
                                     std::uint64_t delay_seed) {
  const int n = static_cast<int>(mesh.num_vertices());

  // Topology: all mesh edges are communication links.
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (const EdgeKey& e : mesh.edges()) {
    adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    adj[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  Network net(std::move(adj));
  if (max_delay > 1) net.set_link_delays(max_delay, delay_seed);

  // Local knowledge: incident boundary edges. In deployment this comes
  // from the 1-hop triangle-fan exchange the triangulation-extraction
  // phase already performs.
  std::vector<NodeState> st(static_cast<std::size_t>(n));
  for (const EdgeKey& e : mesh.boundary_edges()) {
    st[static_cast<std::size_t>(e.a)].bnbr.push_back(e.b);
    st[static_cast<std::size_t>(e.b)].bnbr.push_back(e.a);
  }
  for (int v = 0; v < n; ++v) {
    auto& nb = st[static_cast<std::size_t>(v)].bnbr;
    std::sort(nb.begin(), nb.end());
    ANR_CHECK_MSG(nb.empty() || nb.size() == 2,
                  "boundary vertex without exactly 2 boundary neighbors");
  }

  auto next_along = [&](int v, int from) {
    const auto& nb = st[static_cast<std::size_t>(v)].bnbr;
    return nb[0] == from ? nb[1] : nb[0];
  };

  // Kick-off: every boundary vertex launches an election token toward its
  // smaller-id boundary neighbor.
  for (int v = 0; v < n; ++v) {
    const auto& nb = st[static_cast<std::size_t>(v)].bnbr;
    if (nb.empty()) continue;
    Message m;
    m.tag = kToken;
    m.ints = {v, 1};
    net.send(v, nb[0], std::move(m));
  }

  const std::size_t kMaxRounds =
      (16 * static_cast<std::size_t>(n) + 64) *
      static_cast<std::size_t>(max_delay);
  std::size_t round = 0;
  while (!net.quiescent()) {
    ANR_CHECK_MSG(++round < kMaxRounds, "boundary walk did not quiesce");
    net.deliver_round();
    for (int v = 0; v < n; ++v) {
      for (Message& m : net.take_inbox(v)) {
        NodeState& s = st[static_cast<std::size_t>(v)];
        if (m.tag == kToken) {
          int origin = m.ints[0];
          int hops = m.ints[1];
          if (origin == v) {
            // Token made the full lap: v is the loop leader and `hops`
            // is the loop size. Start the assignment lap.
            s.leader = v;
            s.loop_size = hops;
            s.hop = 0;
            Message a;
            a.tag = kAssign;
            a.ints = {v, hops, 1};
            net.send(v, s.bnbr[0], std::move(a));
          } else if (origin < v) {
            Message fwd;
            fwd.tag = kToken;
            fwd.ints = {origin, hops + 1};
            net.send(v, next_along(v, m.src), std::move(fwd));
          }
          // origin > v: a smaller vertex exists on this loop; drop.
        } else if (m.tag == kAssign) {
          int leader = m.ints[0];
          int size = m.ints[1];
          int hop = m.ints[2];
          if (v == leader) continue;  // lap complete
          s.leader = leader;
          s.loop_size = size;
          s.hop = hop;
          Message fwd;
          fwd.tag = kAssign;
          fwd.ints = {leader, size, hop + 1};
          net.send(v, next_along(v, m.src), std::move(fwd));
        }
      }
    }
  }

  BoundaryWalkResult out;
  out.hop.resize(static_cast<std::size_t>(n));
  out.loop_size.resize(static_cast<std::size_t>(n));
  out.loop_leader.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const NodeState& s = st[static_cast<std::size_t>(v)];
    out.hop[static_cast<std::size_t>(v)] = s.hop;
    out.loop_size[static_cast<std::size_t>(v)] = s.loop_size;
    out.loop_leader[static_cast<std::size_t>(v)] = s.leader;
    ANR_CHECK_MSG(s.bnbr.empty() == (s.hop < 0),
                  "boundary vertex left unparametrized");
  }
  out.messages = net.messages_sent();
  out.rounds = net.rounds_elapsed();
  return out;
}

}  // namespace anr::net
