#include "net/protocols/flood.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace anr::net {

namespace {
constexpr int kValue = 1;  // ints = {origin}, reals = {value}
}

FloodSumResult run_flood_sum(Network& net, const std::vector<double>& values) {
  const int n = net.size();
  ANR_CHECK(values.size() == static_cast<std::size_t>(n));

  // known[v][o]: value of origin o as known at node v (NaN = unknown).
  std::vector<std::vector<double>> known(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n),
                          std::numeric_limits<double>::quiet_NaN()));
  for (int v = 0; v < n; ++v) {
    known[static_cast<std::size_t>(v)][static_cast<std::size_t>(v)] =
        values[static_cast<std::size_t>(v)];
    Message m;
    m.tag = kValue;
    m.ints = {v};
    m.reals = {values[static_cast<std::size_t>(v)]};
    net.broadcast(v, m);
  }

  // Generous bound: covers asynchronous delivery (the caller may have
  // armed per-message delays on `net`).
  const std::size_t kMaxRounds = 64 * static_cast<std::size_t>(n) + 512;
  std::size_t round = 0;
  while (!net.quiescent()) {
    ANR_CHECK_MSG(++round < kMaxRounds, "flood did not quiesce");
    net.deliver_round();
    for (int v = 0; v < n; ++v) {
      for (Message& m : net.take_inbox(v)) {
        if (m.tag != kValue) continue;
        int origin = m.ints[0];
        double& slot =
            known[static_cast<std::size_t>(v)][static_cast<std::size_t>(origin)];
        if (!std::isnan(slot)) continue;  // already seen: do not re-forward
        slot = m.reals[0];
        Message fwd;
        fwd.tag = kValue;
        fwd.ints = {origin};
        fwd.reals = {m.reals[0]};
        net.broadcast(v, fwd);
      }
    }
  }

  FloodSumResult out;
  out.agreed = true;
  bool first = true;
  for (int v = 0; v < n; ++v) {
    double sum = 0.0;
    bool complete = true;
    for (int o = 0; o < n; ++o) {
      double val = known[static_cast<std::size_t>(v)][static_cast<std::size_t>(o)];
      if (std::isnan(val)) {
        complete = false;
      } else {
        sum += val;
      }
    }
    if (first) {
      out.sum = sum;
      first = false;
    } else if (std::abs(sum - out.sum) > 1e-9 * (1.0 + std::abs(out.sum))) {
      out.agreed = false;
    }
    if (!complete) out.agreed = false;
  }
  out.messages = net.messages_sent();
  out.rounds = net.rounds_elapsed();
  return out;
}

}  // namespace anr::net
