// Distributed isolated-subgroup detection and rooting (paper Sec. III-D-1).
//
// After the harmonic map assigns destinations, some M1 links will break
// (endpoints end up farther than r_c apart in M2). The paper's fix:
// boundary vertices flood packets over *surviving* links; any vertex that
// never receives one belongs to an isolated subgroup. Each subgroup then
// elects a root — the member having a *reached* M1 neighbor that is
// nearest (in hops) to a boundary vertex — and the whole subgroup marches
// parallel to that reference neighbor.
//
// This protocol runs over the M1 topology (all links still physically up
// during planning); the "surviving" relation only gates which links carry
// the phase-A reachability packets.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "mesh/triangle_mesh.h"

namespace anr::net {

struct SubgroupResult {
  /// Per vertex: hop distance to the nearest boundary vertex over
  /// surviving links; -1 when unreached (isolated).
  std::vector<int> boundary_hops;
  /// Per vertex: true when connected to a boundary vertex via surviving
  /// links.
  std::vector<char> reached;
  /// Per unreached vertex: the elected root of its subgroup; -1 for
  /// reached vertices. A subgroup with no reached M1 neighbor anywhere
  /// keeps root = the smallest-id member (degenerate but still grouped).
  std::vector<int> subgroup_root;
  /// Per unreached vertex: the root's reference neighbor (a reached M1
  /// neighbor of the root); -1 when none exists or vertex is reached.
  std::vector<int> reference;

  std::size_t messages = 0;
  std::size_t rounds = 0;
};

/// `survives(u, v)` says whether the M1 link (u, v) still holds at the
/// mapped destinations; `is_boundary[v]` marks boundary vertices of the
/// triangulation. Topology = edges of `mesh`. `max_delay` > 1 runs the
/// protocol under asynchronous delivery (deterministic in `delay_seed`);
/// `loss_rate` > 0 additionally drops each transmission attempt with
/// that probability (deterministic in `loss_seed`) and runs the whole
/// protocol over the ack/retransmit layer, so the result is unchanged.
SubgroupResult run_subgroup_detection(
    const TriangleMesh& mesh, const std::vector<char>& is_boundary,
    const std::function<bool(VertexId, VertexId)>& survives,
    int max_delay = 1, std::uint64_t delay_seed = 0,
    double loss_rate = 0.0, std::uint64_t loss_seed = 0);

}  // namespace anr::net
