#include "net/protocols/relax.h"

#include <algorithm>

#include "common/check.h"
#include "net/network.h"

namespace anr::net {

namespace {
constexpr int kPos = 1;  // reals = {x, y}
}

RelaxResult run_distributed_relax(const TriangleMesh& mesh,
                                  const std::vector<Vec2>& initial,
                                  const std::vector<char>& fixed,
                                  double tol, std::size_t max_rounds) {
  const int n = static_cast<int>(mesh.num_vertices());
  ANR_CHECK(initial.size() == static_cast<std::size_t>(n));
  ANR_CHECK(fixed.size() == static_cast<std::size_t>(n));

  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (const EdgeKey& e : mesh.edges()) {
    adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    adj[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  Network net(std::move(adj));

  RelaxResult out;
  out.positions = initial;

  auto broadcast_positions = [&]() {
    for (int v = 0; v < n; ++v) {
      Message m;
      m.tag = kPos;
      m.reals = {out.positions[static_cast<std::size_t>(v)].x,
                 out.positions[static_cast<std::size_t>(v)].y};
      net.broadcast(v, m);
    }
  };

  broadcast_positions();
  for (std::size_t round = 0; round < max_rounds; ++round) {
    net.deliver_round();
    double max_move = 0.0;
    for (int v = 0; v < n; ++v) {
      auto inbox = net.take_inbox(v);
      if (fixed[static_cast<std::size_t>(v)] || inbox.empty()) continue;
      Vec2 avg{};
      int cnt = 0;
      for (const Message& m : inbox) {
        if (m.tag != kPos) continue;
        avg += Vec2{m.reals[0], m.reals[1]};
        ++cnt;
      }
      if (cnt == 0) continue;
      avg = avg / static_cast<double>(cnt);
      max_move = std::max(
          max_move, distance(avg, out.positions[static_cast<std::size_t>(v)]));
      out.positions[static_cast<std::size_t>(v)] = avg;
    }
    if (max_move <= tol) {
      out.converged = true;
      break;
    }
    broadcast_positions();
  }
  out.messages = net.messages_sent();
  out.rounds = net.rounds_elapsed();
  return out;
}

}  // namespace anr::net
