// Gossip (neighborhood-averaging) consensus — a message-efficient
// alternative to the paper's flooding aggregation.
//
// The paper's rotation search floods every robot's link count to everyone
// (O(n*E) messages per probe). The same global *average* can instead be
// approached by Metropolis-weighted neighborhood averaging at O(E)
// messages per round, converging geometrically on connected graphs. The
// trade is rounds (latency) for messages: one gossip round costs a small
// fraction of one flood, and a handful of rounds already estimates smooth
// fields (like per-robot link counts) to a few percent.
#pragma once

#include <cstddef>
#include <vector>

#include "net/network.h"

namespace anr::net {

struct GossipResult {
  /// Per-node estimate of the network-wide mean after the final round.
  std::vector<double> estimates;
  std::size_t messages = 0;
  std::size_t rounds = 0;
  /// Max |estimate - true mean| / (|true mean| + 1), for reporting.
  double max_relative_error = 0.0;
};

/// Runs gossip averaging over `net`'s topology for `rounds` gossip
/// rounds in round-tagged lockstep: each node broadcasts its round-k
/// estimate and computes round k+1 only once all round-k neighbor values
/// arrived. The estimates equal the synchronous schedule's exactly —
/// byte-identical under any link delay, and under message loss when the
/// network runs in reliable (ack/retransmit) mode.
GossipResult run_gossip_mean(Network& net, const std::vector<double>& values,
                             int rounds);

}  // namespace anr::net
