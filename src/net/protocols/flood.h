// Network-wide flooding aggregation (paper Sec. III-B, rotation search).
//
// "After calculating its own stable link ratio, the mobile robot then
// floods the information to other mobile robots."
//
// Every node floods its local value tagged with its origin id; nodes
// forward each origin's value the first time they see it. At quiescence
// every node holds all n values and computes the global sum locally.
// Message complexity O(n * E) — the price the paper's design pays per
// rotation-search probe; bench_micro reports it.
#pragma once

#include <cstddef>
#include <vector>

#include "net/network.h"

namespace anr::net {

struct FloodSumResult {
  double sum = 0.0;
  /// True when every node computed the same sum (always true on a
  /// connected topology).
  bool agreed = false;
  std::size_t messages = 0;
  std::size_t rounds = 0;
};

/// Floods each node's value over `net`'s topology and sums network-wide.
/// `net` is consumed as the execution fabric (its stats are the result's).
FloodSumResult run_flood_sum(Network& net, const std::vector<double>& values);

}  // namespace anr::net
