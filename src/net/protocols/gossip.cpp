#include "net/protocols/gossip.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"

namespace anr::net {

namespace {
constexpr int kEstimate = 1;  // ints = {degree, round}, reals = {value}
}

GossipResult run_gossip_mean(Network& net, const std::vector<double>& values,
                             int rounds) {
  const int n = net.size();
  ANR_CHECK(values.size() == static_cast<std::size_t>(n));
  ANR_CHECK(rounds >= 1);

  GossipResult out;
  out.estimates = values;

  // Metropolis–Hastings weights, w_uv = 1 / (1 + max(deg_u, deg_v)),
  // make the iteration doubly stochastic: the fixed point is the exact
  // arithmetic mean on any connected topology (plain neighborhood
  // averaging would converge to a degree-weighted mean instead).
  //
  // Messages are round-tagged and each node runs lockstep: it buffers
  // incoming (round, sender) values and computes gossip round k only
  // once every round-k neighbor value has arrived. Neighbors may be many
  // network rounds apart, but each node consumes exactly the synchronous
  // schedule's inputs in sorted neighbor order — so the estimates are
  // byte-identical to the synchronous run under any link delay, and
  // under message loss when the channel retransmits (reliable mode).
  std::vector<int> at(static_cast<std::size_t>(n), 0);  // rounds completed
  std::vector<std::map<int, std::map<NodeId, std::pair<int, double>>>> buf(
      static_cast<std::size_t>(n));

  auto broadcast_round = [&](int v, int round) {
    Message m;
    m.tag = kEstimate;
    m.ints = {static_cast<int>(net.neighbors(v).size()), round};
    m.reals = {out.estimates[static_cast<std::size_t>(v)]};
    net.broadcast(v, m);
  };
  auto advance = [&](int v) {
    while (at[static_cast<std::size_t>(v)] < rounds) {
      const int k = at[static_cast<std::size_t>(v)];
      const std::size_t deg = net.neighbors(v).size();
      auto& per_round = buf[static_cast<std::size_t>(v)];
      auto it = per_round.find(k);
      const std::size_t have = it == per_round.end() ? 0 : it->second.size();
      if (have < deg) break;
      const double deg_v = static_cast<double>(deg);
      const double own = out.estimates[static_cast<std::size_t>(v)];
      double next = own;
      if (it != per_round.end()) {
        for (const auto& [u, dv] : it->second) {  // sorted by sender id
          const double w =
              1.0 / (1.0 + std::max(deg_v, static_cast<double>(dv.first)));
          next += w * (dv.second - own);
        }
        per_round.erase(it);
      }
      out.estimates[static_cast<std::size_t>(v)] = next;
      ++at[static_cast<std::size_t>(v)];
      if (at[static_cast<std::size_t>(v)] < rounds) {
        broadcast_round(v, at[static_cast<std::size_t>(v)]);
      }
    }
  };

  for (int v = 0; v < n; ++v) broadcast_round(v, 0);
  for (int v = 0; v < n; ++v) advance(v);  // degree-0 nodes finish here

  // Generous bound: lossless synchronous runs use exactly `rounds`
  // network rounds; delay/retransmission stretch that by a constant.
  const std::size_t max_net_rounds =
      static_cast<std::size_t>(rounds) * 256 +
      64 * static_cast<std::size_t>(n) + 512;
  std::size_t spent = 0;
  auto all_done = [&]() {
    for (int v = 0; v < n; ++v) {
      if (at[static_cast<std::size_t>(v)] < rounds) return false;
    }
    return true;
  };
  while (!all_done() && spent < max_net_rounds) {
    net.deliver_round();
    ++spent;
    for (int v = 0; v < n; ++v) {
      for (const Message& m : net.take_inbox(v)) {
        if (m.tag != kEstimate) continue;
        buf[static_cast<std::size_t>(v)][m.ints[1]][m.src] = {m.ints[0],
                                                              m.reals[0]};
      }
      advance(v);
    }
  }

  double mean = 0.0;
  for (double x : values) mean += x;
  mean /= static_cast<double>(std::max(n, 1));
  for (double e : out.estimates) {
    out.max_relative_error = std::max(
        out.max_relative_error, std::abs(e - mean) / (std::abs(mean) + 1.0));
  }
  out.messages = net.messages_sent();
  out.rounds = net.rounds_elapsed();
  return out;
}

}  // namespace anr::net
