#include "net/protocols/gossip.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anr::net {

namespace {
constexpr int kEstimate = 1;  // ints = {degree}, reals = {value}
}

GossipResult run_gossip_mean(Network& net, const std::vector<double>& values,
                             int rounds) {
  const int n = net.size();
  ANR_CHECK(values.size() == static_cast<std::size_t>(n));
  ANR_CHECK(rounds >= 1);

  GossipResult out;
  out.estimates = values;

  // Metropolis–Hastings weights, w_uv = 1 / (1 + max(deg_u, deg_v)),
  // make the iteration doubly stochastic: the fixed point is the exact
  // arithmetic mean on any connected topology (plain neighborhood
  // averaging would converge to a degree-weighted mean instead).
  for (int round = 0; round < rounds; ++round) {
    for (int v = 0; v < n; ++v) {
      Message m;
      m.tag = kEstimate;
      m.ints = {static_cast<int>(net.neighbors(v).size())};
      m.reals = {out.estimates[static_cast<std::size_t>(v)]};
      net.broadcast(v, m);
    }
    net.deliver_round();
    std::vector<double> next = out.estimates;
    for (int v = 0; v < n; ++v) {
      double deg_v = static_cast<double>(net.neighbors(v).size());
      for (const Message& m : net.take_inbox(v)) {
        if (m.tag != kEstimate) continue;
        double w = 1.0 / (1.0 + std::max(deg_v, static_cast<double>(m.ints[0])));
        next[static_cast<std::size_t>(v)] +=
            w * (m.reals[0] - out.estimates[static_cast<std::size_t>(v)]);
      }
    }
    out.estimates = std::move(next);
  }

  double mean = 0.0;
  for (double x : values) mean += x;
  mean /= static_cast<double>(std::max(n, 1));
  for (double e : out.estimates) {
    out.max_relative_error = std::max(
        out.max_relative_error, std::abs(e - mean) / (std::abs(mean) + 1.0));
  }
  out.messages = net.messages_sent();
  out.rounds = net.rounds_elapsed();
  return out;
}

}  // namespace anr::net
