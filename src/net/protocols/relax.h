// Distributed harmonic relaxation (paper Sec. III-B, interior step).
//
// "Inner vertices initiate their positions at the center of the unit disk.
// Then at each step, an inner vertex computes its position as the average
// of the positions of its neighboring vertices."
//
// Synchronous Jacobi iteration: every vertex broadcasts its current disk
// position each round; free (inner) vertices replace theirs by the
// neighbor average. Convergence detection is performed by the simulator
// harness (a real deployment would wrap this in any standard termination-
// detection protocol; the paper elides that detail and so do we, but the
// message counts reported exclude nothing else).
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec2.h"
#include "mesh/triangle_mesh.h"

namespace anr::net {

struct RelaxResult {
  std::vector<Vec2> positions;
  std::size_t messages = 0;
  std::size_t rounds = 0;
  bool converged = false;
};

/// Runs distributed averaging over the edges of `mesh`. `fixed[v]` pins
/// vertex v at `initial[v]` (boundary vertices on the circle); free
/// vertices start at `initial[v]` and iterate. Stops when no vertex moves
/// more than `tol` in a round, or after `max_rounds`.
RelaxResult run_distributed_relax(const TriangleMesh& mesh,
                                  const std::vector<Vec2>& initial,
                                  const std::vector<char>& fixed,
                                  double tol = 1e-9,
                                  std::size_t max_rounds = 200000);

}  // namespace anr::net
