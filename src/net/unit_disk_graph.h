// Unit-disk communication graph.
//
// Two robots are linked iff their distance is at most the communication
// range r_c (paper Sec. II). This is the topology over which all
// protocols run and over which the stable-link metric is defined.
#pragma once

#include <vector>

#include "geom/vec2.h"

namespace anr::net {

/// Adjacency lists of the unit-disk graph over `positions` with range `r`.
/// Lists come back sorted.
std::vector<std::vector<int>> unit_disk_adjacency(
    const std::vector<Vec2>& positions, double r);

/// All unit-disk edges as (a, b) pairs with a < b.
std::vector<std::pair<int, int>> unit_disk_edges(
    const std::vector<Vec2>& positions, double r);

}  // namespace anr::net
