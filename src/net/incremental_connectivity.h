// Incremental unit-disk connectivity for trial-and-retry loops.
//
// The planner's connectivity-safe adjustment (Sec. III-D-1) probes many
// slightly-different configurations per Lloyd step: the full move, then
// collectively halved retries while the trial would split the network.
// Building a fresh spatial index + adjacency + BFS per probe dominated the
// step. This checker keeps the spatial index, CSR adjacency, and BFS
// scratch alive across probes:
//
//   - the GridIndex is rebuilt only when positions have drifted more than
//     half a communication range from the indexed snapshot; in between,
//     candidate pairs are enumerated from the stale index with the query
//     radius widened by the per-endpoint displacement bound (a pair whose
//     base distance exceeds r + d_i + d_max cannot be linked now);
//   - the exact link test (inclusive epsilon, identical to
//     unit_disk_adjacency) runs on the current positions, so the edge set
//     is exactly the unit-disk graph's;
//   - when the edge set is unchanged from the previous probe the cached
//     verdict is returned without re-running BFS.
//
// Verdicts are bit-for-bit the same booleans net::is_connected(pts, r)
// returns, just without the per-call allocations.
#pragma once

#include <vector>

#include "geom/grid_index.h"
#include "geom/vec2.h"

namespace anr::net {

class IncrementalConnectivity {
 public:
  explicit IncrementalConnectivity(double r);

  /// Connectivity of the unit-disk graph over `pts` with range r.
  /// Equivalent to net::is_connected(pts, r); amortized allocation-free.
  bool check(const std::vector<Vec2>& pts);

 private:
  bool bfs_connected(std::size_t n);

  double r_;
  GridIndex index_;          // over base_
  std::vector<Vec2> base_;   // positions at the last index rebuild
  std::vector<double> drift_;

  // CSR adjacency of the latest probe and the one before it (swapped).
  std::vector<int> deg_;
  std::vector<int> adj_start_, adj_;
  std::vector<int> prev_adj_start_, prev_adj_;

  std::vector<int> queue_;
  std::vector<char> visited_;

  bool have_prev_ = false;
  bool prev_connected_ = false;
  std::size_t prev_n_ = 0;
};

}  // namespace anr::net
