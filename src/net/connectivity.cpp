#include "net/connectivity.h"

#include <queue>

#include "net/unit_disk_graph.h"

namespace anr::net {

std::vector<int> components(const std::vector<std::vector<int>>& adj) {
  std::vector<int> comp(adj.size(), -1);
  int next = 0;
  for (std::size_t seed = 0; seed < adj.size(); ++seed) {
    if (comp[seed] >= 0) continue;
    int id = next++;
    std::queue<int> q;
    q.push(static_cast<int>(seed));
    comp[seed] = id;
    while (!q.empty()) {
      int v = q.front();
      q.pop();
      for (int u : adj[static_cast<std::size_t>(v)]) {
        if (comp[static_cast<std::size_t>(u)] < 0) {
          comp[static_cast<std::size_t>(u)] = id;
          q.push(u);
        }
      }
    }
  }
  return comp;
}

bool is_connected(const std::vector<std::vector<int>>& adj) {
  if (adj.empty()) return true;
  auto comp = components(adj);
  for (int c : comp) {
    if (c != 0) return false;
  }
  return true;
}

bool is_connected(const std::vector<Vec2>& positions, double r) {
  return is_connected(unit_disk_adjacency(positions, r));
}

std::vector<int> articulation_points(const std::vector<std::vector<int>>& adj) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> disc(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<char> is_ap(static_cast<std::size_t>(n), 0);
  int timer = 0;

  // Iterative Tarjan DFS (explicit stack; swarm graphs can be deep).
  struct Frame {
    int v;
    int parent;
    std::size_t next_child = 0;
    int tree_children = 0;
  };
  for (int root = 0; root < n; ++root) {
    if (disc[static_cast<std::size_t>(root)] >= 0) continue;
    std::vector<Frame> stack{{root, -1}};
    disc[static_cast<std::size_t>(root)] =
        low[static_cast<std::size_t>(root)] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& nb = adj[static_cast<std::size_t>(f.v)];
      if (f.next_child < nb.size()) {
        int u = nb[f.next_child++];
        if (u == f.parent) continue;
        if (disc[static_cast<std::size_t>(u)] >= 0) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       disc[static_cast<std::size_t>(u)]);
        } else {
          disc[static_cast<std::size_t>(u)] =
              low[static_cast<std::size_t>(u)] = timer++;
          stack.push_back(Frame{u, f.v});
        }
      } else {
        Frame done = f;  // copy before popping: f dangles afterwards
        stack.pop_back();
        if (done.parent >= 0) {
          Frame& pf = stack.back();
          ++pf.tree_children;
          low[static_cast<std::size_t>(done.parent)] =
              std::min(low[static_cast<std::size_t>(done.parent)],
                       low[static_cast<std::size_t>(done.v)]);
          if (pf.parent >= 0 && low[static_cast<std::size_t>(done.v)] >=
                                    disc[static_cast<std::size_t>(done.parent)]) {
            is_ap[static_cast<std::size_t>(done.parent)] = 1;
          }
        } else if (done.tree_children >= 2) {
          is_ap[static_cast<std::size_t>(done.v)] = 1;
        }
      }
    }
  }
  std::vector<int> out;
  for (int v = 0; v < n; ++v) {
    if (is_ap[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

bool is_biconnected(const std::vector<std::vector<int>>& adj) {
  return is_connected(adj) && articulation_points(adj).empty();
}

std::vector<int> bfs_hops(const std::vector<std::vector<int>>& adj,
                          const std::vector<int>& sources) {
  std::vector<int> hops(adj.size(), -1);
  std::queue<int> q;
  for (int s : sources) {
    if (hops[static_cast<std::size_t>(s)] < 0) {
      hops[static_cast<std::size_t>(s)] = 0;
      q.push(s);
    }
  }
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    for (int u : adj[static_cast<std::size_t>(v)]) {
      if (hops[static_cast<std::size_t>(u)] < 0) {
        hops[static_cast<std::size_t>(u)] = hops[static_cast<std::size_t>(v)] + 1;
        q.push(u);
      }
    }
  }
  return hops;
}

}  // namespace anr::net
