// Graph connectivity over adjacency lists.
//
// Global connectivity C (paper Def. 2) requires every robot to have a path
// to the rest of the network at every instant of the transition; the
// transition simulator calls these on each sampled topology.
#pragma once

#include <vector>

#include "geom/vec2.h"

namespace anr::net {

/// Connected-component id per node (ids are 0..k-1, assigned in BFS order
/// from the smallest unvisited node).
std::vector<int> components(const std::vector<std::vector<int>>& adj);

/// True when the graph is a single connected component (or empty).
bool is_connected(const std::vector<std::vector<int>>& adj);

/// Convenience: connectivity of the unit-disk graph over `positions`.
bool is_connected(const std::vector<Vec2>& positions, double r);

/// BFS hop distance from the given sources to every node; -1 when
/// unreachable.
std::vector<int> bfs_hops(const std::vector<std::vector<int>>& adj,
                          const std::vector<int>& sources);

/// Articulation points (cut vertices): nodes whose single failure splits
/// their component. A marching swarm with zero articulation points
/// tolerates any one robot failure without losing connectivity — the
/// fragility measure behind the paper's reliability claim (Sec. I).
std::vector<int> articulation_points(const std::vector<std::vector<int>>& adj);

/// True when the graph is connected and has no articulation points
/// (requires >= 3 nodes to be meaningful; 1-2 node graphs return true
/// when connected).
bool is_biconnected(const std::vector<std::vector<int>>& adj);

}  // namespace anr::net
