// Surface-aware evaluation of a planar marching plan.
//
// Plays back trajectories exactly like march/transition_sim, but measures
// them on the terrain: distances are surface arc lengths and a link is up
// only when the lifted 3D distance fits the radio range. On flat terrain
// the results coincide with the planar simulator (tested).
#pragma once

#include "march/trajectory.h"
#include "march/transition_sim.h"
#include "terrain/height_field.h"

namespace anr {

/// Planar metrics plus the surface-specific extras.
struct SurfaceMetrics {
  TransitionMetrics base;        ///< metrics measured with the 3D link model
  double surface_distance = 0.0; ///< total arc length over the terrain
  double planar_distance = 0.0;  ///< map-plane distance for comparison
  double max_climb = 0.0;        ///< largest single-robot height change
};

/// Simulates `trajs` over `terrain` with radio range `r_c` (3D).
SurfaceMetrics simulate_on_surface(const std::vector<Trajectory>& trajs,
                                   const HeightField& terrain, double r_c,
                                   double transition_end, int samples = 160);

}  // namespace anr
