#include "terrain/fast_marching.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <queue>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "geom/segment.h"

namespace anr {

namespace {

enum CellState : std::uint8_t { kFar = 0, kBand = 1, kAccepted = 2 };

}  // namespace

CostField CostField::build(const CostFieldSpec& spec,
                           const HeightField& terrain) {
  ANR_CHECK_MSG(spec.bounds.valid(), "cost field requires a valid bounds box");
  ANR_CHECK_MSG(spec.max_cells >= 1, "cost field needs at least one cell");
  for (const MudPatch& m : spec.mud) {
    ANR_CHECK_MSG(m.cost > 0.0, "mud cost multiplier must be positive");
  }

  CostField f;
  f.bounds_ = spec.bounds;
  f.uphill_penalty_ = std::max(0.0, spec.uphill_penalty);
  const double w = std::max(spec.bounds.width(), 1e-9);
  const double h = std::max(spec.bounds.height(), 1e-9);
  f.cell_ = std::max(w, h) / spec.max_cells;
  f.nx_ = std::max(1, static_cast<int>(std::ceil(w / f.cell_ - 1e-9)));
  f.ny_ = std::max(1, static_cast<int>(std::ceil(h / f.cell_ - 1e-9)));

  const std::size_t n = static_cast<std::size_t>(f.nx_) * f.ny_;
  f.cost_.resize(n);
  f.height_.resize(n);

  double min_cost = kInf, max_cost = -kInf;
  for (int iy = 0; iy < f.ny_; ++iy) {
    for (int ix = 0; ix < f.nx_; ++ix) {
      const std::size_t i = static_cast<std::size_t>(iy) * f.nx_ + ix;
      const Vec2 c{spec.bounds.lo.x + (ix + 0.5) * f.cell_,
                   spec.bounds.lo.y + (iy + 0.5) * f.cell_};
      f.height_[i] = terrain.height(c);
      double cost = 1.0 + std::max(0.0, spec.slope_weight) *
                              terrain.gradient(c).norm();
      for (const MudPatch& m : spec.mud) {
        if (distance(c, m.center) <= m.radius) cost *= m.cost;
      }
      for (const Polygon& ko : spec.keep_out) {
        if (!ko.empty() && ko.contains(c)) {
          cost = kInf;
          break;
        }
      }
      f.cost_[i] = cost;
      if (cost == kInf) {
        ++f.blocked_count_;
      } else {
        min_cost = std::min(min_cost, cost);
        max_cost = std::max(max_cost, cost);
      }
    }
  }
  f.min_cost_ = (min_cost == kInf) ? 1.0 : min_cost;

  bool heights_equal = true;
  for (std::size_t i = 1; i < n && heights_equal; ++i) {
    heights_equal = f.height_[i] == f.height_[0];
  }
  f.uniform_ = f.blocked_count_ == 0 && min_cost == max_cost &&
               (f.uphill_penalty_ == 0.0 || heights_equal);
  return f;
}

int CostField::index_of(Vec2 p) const {
  ANR_CHECK_MSG(contains(p), "cost field sample outside domain bounds");
  int ix = static_cast<int>(std::floor((p.x - bounds_.lo.x) / cell_));
  int iy = static_cast<int>(std::floor((p.y - bounds_.lo.y) / cell_));
  // Points exactly on the hi boundary belong to the last cell; anything
  // further out was already rejected above.
  ix = std::clamp(ix, 0, nx_ - 1);
  iy = std::clamp(iy, 0, ny_ - 1);
  return iy * nx_ + ix;
}

int CostField::index(int ix, int iy) const {
  ANR_CHECK(ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_);
  return iy * nx_ + ix;
}

Vec2 CostField::center(int i) const {
  ANR_CHECK(i >= 0 && i < cell_count());
  const int ix = i % nx_, iy = i / nx_;
  return {bounds_.lo.x + (ix + 0.5) * cell_, bounds_.lo.y + (iy + 0.5) * cell_};
}

double CostField::cost(int i) const {
  ANR_CHECK(i >= 0 && i < cell_count());
  return cost_[static_cast<std::size_t>(i)];
}

double CostField::height(int i) const {
  ANR_CHECK(i >= 0 && i < cell_count());
  return height_[static_cast<std::size_t>(i)];
}

bool CostField::segment_blocked(Vec2 a, Vec2 b) const {
  if (blocked_count_ == 0) return false;
  int ia = index_of(a), ib = index_of(b);
  if (blocked(ia) || blocked(ib)) return true;
  int ax = ia % nx_, ay = ia / nx_;
  const int bx = ib % nx_, by = ib / nx_;
  const Vec2 d = b - a;
  const int step_x = (d.x > 0.0) - (d.x < 0.0);
  const int step_y = (d.y > 0.0) - (d.y < 0.0);
  const double inf = kInf;
  double t_max_x = inf, t_delta_x = inf;
  double t_max_y = inf, t_delta_y = inf;
  if (step_x != 0) {
    const double edge =
        bounds_.lo.x + (ax + (step_x > 0 ? 1 : 0)) * cell_;
    t_max_x = (edge - a.x) / d.x;
    t_delta_x = cell_ / std::abs(d.x);
  }
  if (step_y != 0) {
    const double edge =
        bounds_.lo.y + (ay + (step_y > 0 ? 1 : 0)) * cell_;
    t_max_y = (edge - a.y) / d.y;
    t_delta_y = cell_ / std::abs(d.y);
  }
  int guard = nx_ + ny_ + 4;
  while ((ax != bx || ay != by) && guard-- > 0) {
    if (std::abs(t_max_x - t_max_y) < 1e-12) {
      // Exact corner crossing: conservatively check both cells adjacent
      // to the corner before stepping diagonally.
      if (ax + step_x >= 0 && ax + step_x < nx_ &&
          blocked(ay * nx_ + ax + step_x)) {
        return true;
      }
      if (ay + step_y >= 0 && ay + step_y < ny_ &&
          blocked((ay + step_y) * nx_ + ax)) {
        return true;
      }
      ax += step_x;
      ay += step_y;
      t_max_x += t_delta_x;
      t_max_y += t_delta_y;
    } else if (t_max_x < t_max_y) {
      ax += step_x;
      t_max_x += t_delta_x;
    } else {
      ay += step_y;
      t_max_y += t_delta_y;
    }
    if (ax < 0 || ax >= nx_ || ay < 0 || ay >= ny_) break;
    if (blocked(ay * nx_ + ax)) return true;
  }
  return false;
}

double CostField::segment_cost(Vec2 a, Vec2 b) const {
  const double len = distance(a, b);
  if (len <= 0.0) return 0.0;
  if (segment_blocked(a, b)) return kInf;
  const int steps =
      std::max(1, static_cast<int>(std::ceil(len / (0.5 * cell_))));
  double total = 0.0;
  for (int s = 0; s < steps; ++s) {
    const double u = (s + 0.5) / steps;
    total += cost_at(lerp(a, b, u)) * (len / steps);
  }
  return total;
}

namespace {

// Effective per-step slowness for motion from accepted cell `from` into
// cell `to`: cell size × cost(to) × directional uphill factor.
double step_slowness(const CostField& field, int from, int to) {
  double f = field.cell_size() * field.cost(to);
  const double pen = field.uphill_penalty();
  if (pen > 0.0) {
    const double grade =
        (field.height(to) - field.height(from)) / field.cell_size();
    f *= 1.0 + pen * std::max(0.0, grade);
  }
  return f;
}

// Godunov first-order upwind update of cell j from its ACCEPTED
// neighbors. Returns +inf when no accepted neighbor exists.
double eikonal_update(const CostField& field, const std::vector<double>& toa,
                      const std::vector<std::uint8_t>& state, int j) {
  const int nx = field.nx(), ny = field.ny();
  const int jx = j % nx, jy = j / nx;

  double ta = CostField::kInf, fa = 0.0;  // best horizontal neighbor
  double tb = CostField::kInf, fb = 0.0;  // best vertical neighbor
  auto consider = [&](int nb, double& t, double& f) {
    if (state[static_cast<std::size_t>(nb)] != kAccepted) return;
    const double tn = toa[static_cast<std::size_t>(nb)];
    if (tn < t) {
      t = tn;
      f = step_slowness(field, nb, j);
    }
  };
  if (jx > 0) consider(j - 1, ta, fa);
  if (jx + 1 < nx) consider(j + 1, ta, fa);
  if (jy > 0) consider(j - nx, tb, fb);
  if (jy + 1 < ny) consider(j + nx, tb, fb);

  if (ta == CostField::kInf && tb == CostField::kInf) return CostField::kInf;
  if (tb == CostField::kInf) return ta + fa;
  if (ta == CostField::kInf) return tb + fb;

  // Two-sided quadratic: ((T-ta)/fa)^2 + ((T-tb)/fb)^2 = 1.
  const double ia = 1.0 / (fa * fa), ib = 1.0 / (fb * fb);
  const double A = ia + ib;
  const double B = -2.0 * (ta * ia + tb * ib);
  const double C = ta * ta * ia + tb * tb * ib - 1.0;
  const double disc = B * B - 4.0 * A * C;
  if (disc >= 0.0) {
    const double t = (-B + std::sqrt(disc)) / (2.0 * A);
    if (t >= std::max(ta, tb)) return t;
  }
  return std::min(ta + fa, tb + fb);
}

}  // namespace

FastMarchResult fast_march(const CostField& field, Vec2 source) {
  ANR_CHECK_MSG(field.contains(source),
                "fast_march source outside the cost field");
  FastMarchResult out;
  const std::size_t n = static_cast<std::size_t>(field.cell_count());
  out.toa.assign(n, CostField::kInf);

  const int src = field.index_of(source);
  if (field.blocked(src)) {
    out.source_blocked = true;
    return out;
  }

  std::vector<std::uint8_t> state(n, kFar);
  // Min-heap on (time, cell index): index-ordered tie-breaking makes the
  // acceptance order — and therefore the ToA field — byte-deterministic.
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> band;

  const int nx = field.nx(), ny = field.ny();

  // Exact initialization over a small visible disk, not just the source
  // cell: a single seed leaves the point-source singularity in place and
  // its O(h) error propagates along the diagonals forever. Seeding every
  // unblocked, source-visible cell within two cells with cost·distance
  // keeps the far field first-order and the interpolant monotone at the
  // source. Each seed respects the min_cost·distance lower bound, so the
  // inductive bound on the whole field survives.
  const int sx = src % nx, sy = src / nx;
  const double seed_radius = 2.0 * field.cell_size() + 1e-9;
  for (int dy = -2; dy <= 2; ++dy) {
    for (int dx = -2; dx <= 2; ++dx) {
      const int cx = sx + dx, cy = sy + dy;
      if (cx < 0 || cx >= nx || cy < 0 || cy >= ny) continue;
      const int c = cy * nx + cx;
      if (field.blocked(c)) continue;
      const Vec2 center = field.center(c);
      const double d = distance(source, center);
      if (d > seed_radius) continue;
      if (c != src && field.segment_blocked(source, center)) continue;
      const std::size_t uc = static_cast<std::size_t>(c);
      out.toa[uc] = field.cost(c) * d;
      state[uc] = kBand;
      band.emplace(out.toa[uc], c);
    }
  }
  while (!band.empty()) {
    const auto [t, i] = band.top();
    band.pop();
    const std::size_t ui = static_cast<std::size_t>(i);
    if (state[ui] == kAccepted || t > out.toa[ui]) continue;  // stale entry
    state[ui] = kAccepted;
    ++out.accepted;

    const int ix = i % nx, iy = i / nx;
    const int neighbors[4] = {iy > 0 ? i - nx : -1, ix > 0 ? i - 1 : -1,
                              ix + 1 < nx ? i + 1 : -1,
                              iy + 1 < ny ? i + nx : -1};
    for (int nb : neighbors) {
      if (nb < 0) continue;
      const std::size_t un = static_cast<std::size_t>(nb);
      if (state[un] == kAccepted || field.blocked(nb)) continue;
      const double nt = eikonal_update(field, out.toa, state, nb);
      if (nt < out.toa[un]) {
        out.toa[un] = nt;
        state[un] = kBand;
        band.emplace(nt, nb);
      }
    }
  }
  return out;
}

double sample_toa(const CostField& field, const std::vector<double>& toa,
                  Vec2 p) {
  ANR_CHECK_MSG(field.contains(p), "ToA sample outside the cost field");
  ANR_CHECK(toa.size() == static_cast<std::size_t>(field.cell_count()));
  const int nx = field.nx(), ny = field.ny();
  const double cell = field.cell_size();
  const double gx = (p.x - field.bounds().lo.x) / cell - 0.5;
  const double gy = (p.y - field.bounds().lo.y) / cell - 0.5;
  const int x0 = std::clamp(static_cast<int>(std::floor(gx)), 0,
                            std::max(0, nx - 2));
  const int y0 = std::clamp(static_cast<int>(std::floor(gy)), 0,
                            std::max(0, ny - 2));
  const int x1 = std::min(x0 + 1, nx - 1);
  const int y1 = std::min(y0 + 1, ny - 1);
  const double fx = std::clamp(gx - x0, 0.0, 1.0);
  const double fy = std::clamp(gy - y0, 0.0, 1.0);
  const double t00 = toa[static_cast<std::size_t>(y0 * nx + x0)];
  const double t10 = toa[static_cast<std::size_t>(y0 * nx + x1)];
  const double t01 = toa[static_cast<std::size_t>(y1 * nx + x0)];
  const double t11 = toa[static_cast<std::size_t>(y1 * nx + x1)];
  if (t00 < CostField::kInf && t10 < CostField::kInf &&
      t01 < CostField::kInf && t11 < CostField::kInf) {
    const double a = t00 + (t10 - t00) * fx;
    const double b = t01 + (t11 - t01) * fx;
    return a + (b - a) * fy;
  }
  // Corner-cutting stencil clipped by an unreached/blocked cell: fall back
  // to the containing cell's value (+inf when itself unreached).
  return toa[static_cast<std::size_t>(field.index_of(p))];
}

std::uint64_t toa_checksum(const std::vector<double>& toa) {
  std::string bytes;
  bytes.reserve(toa.size() * 8);
  for (double v : toa) {
    std::uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    for (int s = 0; s < 64; s += 8) {
      bytes.push_back(static_cast<char>((u >> s) & 0xff));
    }
  }
  return fnv1a64(bytes);
}

namespace {

// Central-difference gradient of the interpolated ToA surface. Returns
// false when any stencil sample is unreached (caller falls back to the
// discrete neighbor walk).
bool toa_gradient(const CostField& field, const std::vector<double>& toa,
                  Vec2 p, Vec2* grad) {
  const double eps = 0.45 * field.cell_size();
  const BBox& b = field.bounds();
  auto clamped = [&](Vec2 q) {
    q.x = std::clamp(q.x, b.lo.x, b.hi.x);
    q.y = std::clamp(q.y, b.lo.y, b.hi.y);
    return q;
  };
  const Vec2 xp = clamped({p.x + eps, p.y}), xm = clamped({p.x - eps, p.y});
  const Vec2 yp = clamped({p.x, p.y + eps}), ym = clamped({p.x, p.y - eps});
  const double sxp = sample_toa(field, toa, xp);
  const double sxm = sample_toa(field, toa, xm);
  const double syp = sample_toa(field, toa, yp);
  const double sym = sample_toa(field, toa, ym);
  if (sxp == CostField::kInf || sxm == CostField::kInf ||
      syp == CostField::kInf || sym == CostField::kInf) {
    return false;
  }
  const double dx = std::max(xp.x - xm.x, 1e-12);
  const double dy = std::max(yp.y - ym.y, 1e-12);
  *grad = {(sxp - sxm) / dx, (syp - sym) / dy};
  return true;
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Segment s{a, b};
  return distance(p, lerp(a, b, closest_point_param(s, p)));
}

// Douglas–Peucker marking pass that never collapses a subchain whose
// shortcut segment would pass through a blocked cell.
void dp_mark(const CostField& field, const std::vector<Vec2>& pts,
             std::size_t a, std::size_t b, double tol,
             std::vector<char>& keep) {
  if (b <= a + 1) return;
  double dmax = -1.0;
  std::size_t imax = a + 1;
  for (std::size_t i = a + 1; i < b; ++i) {
    const double d = point_segment_distance(pts[i], pts[a], pts[b]);
    if (d > dmax) {
      dmax = d;
      imax = i;
    }
  }
  if (dmax <= tol && !field.segment_blocked(pts[a], pts[b])) return;
  keep[imax] = 1;
  dp_mark(field, pts, a, imax, tol, keep);
  dp_mark(field, pts, imax, b, tol, keep);
}

std::vector<Vec2> simplify_path(const CostField& field,
                                const std::vector<Vec2>& pts, double tol) {
  if (pts.size() <= 2) return pts;
  std::vector<char> keep(pts.size(), 0);
  keep.front() = keep.back() = 1;
  dp_mark(field, pts, 0, pts.size() - 1, tol, keep);
  std::vector<Vec2> out;
  out.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) out.push_back(pts[i]);
  }
  return out;
}

}  // namespace

GeodesicPath extract_geodesic(const CostField& field,
                              const FastMarchResult& fm, Vec2 source,
                              Vec2 goal) {
  ANR_CHECK(field.contains(source) && field.contains(goal));
  ANR_CHECK(fm.toa.size() == static_cast<std::size_t>(field.cell_count()));
  GeodesicPath out;
  if (fm.source_blocked) {
    out.failure = "unreachable";
    return out;
  }
  const int gcell = field.index_of(goal);
  if (!fm.reached(gcell)) {
    out.failure = field.blocked(gcell) ? "blocked_goal" : "unreachable";
    return out;
  }
  const double goal_sample = sample_toa(field, fm.toa, goal);
  out.time = goal_sample < CostField::kInf
                 ? goal_sample
                 : fm.toa[static_cast<std::size_t>(gcell)];

  const double cell = field.cell_size();
  const double step = 0.5 * cell;
  const int nx = field.nx(), ny = field.ny();
  const int max_steps = 8 * (nx + ny) + 64;

  std::vector<Vec2> rev{goal};
  Vec2 cur = goal;
  bool arrived = false;
  for (int it = 0; it < max_steps; ++it) {
    if (distance(cur, source) <= cell && !field.segment_blocked(cur, source)) {
      arrived = true;
      break;
    }
    const double tcur = sample_toa(field, fm.toa, cur);
    Vec2 cand;
    bool have = false;

    Vec2 g;
    if (tcur < CostField::kInf && toa_gradient(field, fm.toa, cur, &g)) {
      const double glen = g.norm();
      if (glen > 1e-12) {
        const Vec2 c = cur - g * (step / glen);
        if (field.contains(c) &&
            sample_toa(field, fm.toa, c) < tcur - 1e-12 &&
            !field.segment_blocked(cur, c)) {
          cand = c;
          have = true;
        }
      }
    }
    if (!have) {
      // Discrete fallback: hop to the 4-neighbor cell center with the
      // smallest arrival time (ties go to the lower index via scan order).
      // Diagonal hops are excluded so each hop only crosses the two
      // edge-adjacent cells, both known unblocked.
      const int ci = field.index_of(cur);
      const double tc = fm.toa[static_cast<std::size_t>(ci)];
      const int cx = ci % nx, cy = ci / nx;
      const int neighbors[4] = {cy > 0 ? ci - nx : -1, cx > 0 ? ci - 1 : -1,
                                cx + 1 < nx ? ci + 1 : -1,
                                cy + 1 < ny ? ci + nx : -1};
      int best = -1;
      double best_t = tc;
      for (int nb : neighbors) {
        if (nb < 0) continue;
        const double tn = fm.toa[static_cast<std::size_t>(nb)];
        if (tn < best_t) {
          best_t = tn;
          best = nb;
        }
      }
      if (best >= 0) {
        cand = field.center(best);
        have = true;
      }
    }
    if (!have) {
      out.failure = "stuck_descent";
      return out;
    }
    rev.push_back(cand);
    cur = cand;
  }
  if (!arrived) {
    out.failure = "stuck_descent";
    return out;
  }
  rev.push_back(source);
  std::reverse(rev.begin(), rev.end());
  out.points = simplify_path(field, rev, 0.25 * cell);
  out.ok = true;
  return out;
}

}  // namespace anr
