// Analytic terrain (height field) — a prototype of the paper's
// future-work item ("… and 3D surface cases", Sec. V).
//
// The 2D marching plan is computed on the map plane as usual; the terrain
// layer then evaluates how that plan behaves on the actual surface:
// travel cost becomes surface arc length, and two robots hear each other
// only when their 3D (lifted) distance is within the radio range — a
// ridge between two robots can break a link that looks fine on the map.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/polygon.h"
#include "geom/vec2.h"

namespace anr {

/// One smooth Gaussian hill (negative amplitude = depression).
struct Hill {
  Vec2 center;
  double amplitude = 0.0;  ///< peak height in meters
  double radius = 1.0;     ///< Gaussian sigma in meters
};

/// Smooth procedural height field: z(p) = sum of Gaussian hills.
class HeightField {
 public:
  HeightField() = default;  ///< flat terrain
  explicit HeightField(std::vector<Hill> hills);

  /// Deterministic rolling terrain: `count` hills scattered in `bounds`
  /// with amplitudes in [-max_amplitude, max_amplitude].
  static HeightField rolling(const BBox& bounds, int count,
                             double max_amplitude, double radius,
                             std::uint64_t seed);

  double height(Vec2 p) const;

  /// Analytic gradient (dz/dx, dz/dy).
  Vec2 gradient(Vec2 p) const;

  /// Straight-chord 3D distance between the lifted points.
  double chord_distance(Vec2 a, Vec2 b) const;

  /// Arc length of the lifted segment a->b (numeric quadrature).
  double surface_length(Vec2 a, Vec2 b, int samples = 16) const;

  bool flat() const { return hills_.empty(); }
  const std::vector<Hill>& hills() const { return hills_; }

 private:
  std::vector<Hill> hills_;
};

}  // namespace anr
