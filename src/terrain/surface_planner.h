// Surface-aware marching — the full 3D-surface prototype of the paper's
// future work (Sec. V), not just post-hoc evaluation.
//
// Robots live on a height-field surface. Everything that is metric in
// the paper's pipeline switches to the surface metric:
//   - the communication graph and triangulation T use lifted 3D (chord)
//     distances for the range test;
//   - both harmonic maps use mean-value weights computed from 3D edge
//     lengths (the discrete harmonic map of the *surface* mesh, which is
//     exactly how the paper's cited machinery generalizes to surfaces);
//   - the rotation objective, the subgroup repair, and the connectivity-
//     safe adjustment all test links with the 3D chord metric;
//   - the CVT density is scaled by the surface area element
//     sqrt(1 + |grad z|^2), so robots equalize *surface* area, not map
//     area.
// Trajectories remain paths over the map plane (the robot drives the
// terrain under them); measure them with simulate_on_surface.
#pragma once

#include <memory>

#include "coverage/grid_cvt.h"
#include "foi/foi_mesher.h"
#include "harmonic/composition.h"
#include "march/planner.h"
#include "terrain/height_field.h"

namespace anr {

struct SurfacePlannerOptions {
  MarchObjective objective = MarchObjective::kMaxStableLinks;
  RotationSearchOptions rotation;
  MesherOptions mesher;
  int cvt_samples = 24000;
  LloydOptions adjust;
  int max_adjust_steps = 50;
  double transition_time = 1.0;
};

/// Plans marches over a height field. API mirrors MarchPlanner.
class SurfaceMarchPlanner {
 public:
  SurfaceMarchPlanner(FieldOfInterest m1, FieldOfInterest m2_shape,
                      HeightField terrain, double r_c,
                      SurfacePlannerOptions options = {});

  /// Plans the march; `m2_offset` rigidly places the M2 shape on the map.
  /// The terrain is global (not offset with M2).
  MarchPlan plan(const std::vector<Vec2>& positions, Vec2 m2_offset) const;

  const HeightField& terrain() const { return terrain_; }
  double comm_range() const { return r_c_; }

 private:
  double chord(Vec2 a, Vec2 b) const { return terrain_.chord_distance(a, b); }

  FieldOfInterest m1_;
  FieldOfInterest m2_;
  HeightField terrain_;
  double r_c_;
  SurfacePlannerOptions opt_;

  FoiMesh m2_mesh_;
  std::unique_ptr<OverlapInterpolator> interpolator_;
  std::unique_ptr<GridCvt> cvt_;
};

/// Lifted unit-disk adjacency: links iff 3D chord distance <= r_c.
std::vector<std::vector<int>> surface_adjacency(const std::vector<Vec2>& pos,
                                                const HeightField& terrain,
                                                double r_c);

/// Lifted communication links (a < b pairs).
std::vector<std::pair<int, int>> surface_links(const std::vector<Vec2>& pos,
                                               const HeightField& terrain,
                                               double r_c);

/// Mean-value harmonic weight provider over the lifted surface mesh.
std::function<double(const TriangleMesh&, VertexId, VertexId)>
surface_mean_value_weights(const HeightField& terrain);

}  // namespace anr
