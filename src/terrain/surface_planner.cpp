#include "terrain/surface_planner.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "harmonic/disk_map.h"
#include "march/repair.h"
#include "mesh/alpha_extract.h"
#include "mesh/boundary.h"
#include "mesh/delaunay.h"
#include "mesh/hole_fill.h"
#include "net/connectivity.h"

namespace anr {

std::vector<std::vector<int>> surface_adjacency(const std::vector<Vec2>& pos,
                                                const HeightField& terrain,
                                                double r_c) {
  const std::size_t n = pos.size();
  std::vector<std::vector<int>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (terrain.chord_distance(pos[i], pos[j]) <= r_c + 1e-9) {
        adj[i].push_back(static_cast<int>(j));
        adj[j].push_back(static_cast<int>(i));
      }
    }
  }
  return adj;
}

std::vector<std::pair<int, int>> surface_links(const std::vector<Vec2>& pos,
                                               const HeightField& terrain,
                                               double r_c) {
  auto adj = surface_adjacency(pos, terrain, r_c);
  std::vector<std::pair<int, int>> out;
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (int j : adj[i]) {
      if (static_cast<int>(i) < j) out.emplace_back(static_cast<int>(i), j);
    }
  }
  return out;
}

std::function<double(const TriangleMesh&, VertexId, VertexId)>
surface_mean_value_weights(const HeightField& terrain) {
  // Capture by value: HeightField is a small vector of hills, and callers
  // may pass temporaries.
  return [terrain](const TriangleMesh& mesh, VertexId i, VertexId j) {
    // 3D edge lengths of the lifted mesh; mean-value weight via the
    // law-of-cosines angles at vertex i.
    auto len3 = [&](VertexId a, VertexId b) {
      return terrain.chord_distance(mesh.position(a), mesh.position(b));
    };
    double lij = len3(i, j);
    ANR_CHECK(lij > 0.0);
    double w = 0.0;
    for (int ti : mesh.vertex_triangles(i)) {
      const Tri& t = mesh.triangles()[static_cast<std::size_t>(ti)];
      bool has_j = t[0] == j || t[1] == j || t[2] == j;
      if (!has_j) continue;
      VertexId k = -1;
      for (VertexId v : t) {
        if (v != i && v != j) k = v;
      }
      double lik = len3(i, k);
      double ljk = len3(j, k);
      double cos_a =
          std::clamp((lij * lij + lik * lik - ljk * ljk) / (2.0 * lij * lik),
                     -1.0, 1.0);
      w += std::tan(std::acos(cos_a) / 2.0);
    }
    // Guard: boundary edges with a single flat triangle can yield a tiny
    // weight; keep it strictly positive.
    return std::max(w / lij, 1e-12);
  };
}

SurfaceMarchPlanner::SurfaceMarchPlanner(FieldOfInterest m1,
                                         FieldOfInterest m2_shape,
                                         HeightField terrain, double r_c,
                                         SurfacePlannerOptions options)
    : m1_(std::move(m1)),
      m2_(std::move(m2_shape)),
      terrain_(std::move(terrain)),
      r_c_(r_c),
      opt_(std::move(options)) {
  ANR_CHECK(r_c_ > 0.0);

  m2_mesh_ = mesh_foi(m2_, opt_.mesher);
  HoleFillResult filled = fill_holes(m2_mesh_.mesh);
  DiskMapOptions dopt;
  dopt.custom_weight = surface_mean_value_weights(terrain_);
  DiskMap disk = harmonic_disk_map(filled.mesh, dopt);
  ANR_CHECK_MSG(disk.converged, "M2 surface harmonic map did not converge");
  interpolator_ = std::make_unique<OverlapInterpolator>(filled, disk);

  // CVT density scaled by the surface area element: equalize surface
  // area per robot, not map area.
  const HeightField& hf = terrain_;
  DensityFn slope_density = [&hf](Vec2 p) {
    Vec2 g = hf.gradient(p);
    return std::sqrt(1.0 + g.norm2());
  };
  cvt_ = std::make_unique<GridCvt>(m2_, slope_density, opt_.cvt_samples);
}

MarchPlan SurfaceMarchPlanner::plan(const std::vector<Vec2>& positions,
                                    Vec2 m2_offset) const {
  const std::size_t n = positions.size();
  ANR_CHECK_MSG(n >= 4, "need at least 4 robots");

  MarchPlan plan;
  plan.start = positions;
  plan.transition_end = opt_.transition_time;

  auto adjacency = surface_adjacency(positions, terrain_, r_c_);
  ANR_CHECK_MSG(net::is_connected(adjacency),
                "initial deployment is not connected on the surface");
  auto links = surface_links(positions, terrain_, r_c_);

  // --- Triangulation T: planar Delaunay filtered by 3D chord length.
  TriangleMesh dt = delaunay(positions);
  std::vector<Tri> kept;
  for (const Tri& t : dt.triangles()) {
    if (chord(positions[static_cast<std::size_t>(t[0])],
              positions[static_cast<std::size_t>(t[1])]) <= r_c_ &&
        chord(positions[static_cast<std::size_t>(t[1])],
              positions[static_cast<std::size_t>(t[2])]) <= r_c_ &&
        chord(positions[static_cast<std::size_t>(t[2])],
              positions[static_cast<std::size_t>(t[0])]) <= r_c_) {
      kept.push_back(t);
    }
  }
  AlphaExtraction ext = clean_to_manifold(TriangleMesh(positions, std::move(kept)));
  plan.unmeshed_robots = static_cast<int>(ext.unmeshed.size());
  plan.t_stats = mesh_stats(ext.mesh);

  // Compact for mapping.
  std::vector<int> robot_to_compact(n, -1);
  std::vector<Vec2> cverts;
  std::vector<Tri> ctris;
  for (const Tri& t : ext.mesh.triangles()) {
    Tri nt{};
    for (int k = 0; k < 3; ++k) {
      VertexId v = t[static_cast<std::size_t>(k)];
      int& slot = robot_to_compact[static_cast<std::size_t>(v)];
      if (slot < 0) {
        slot = static_cast<int>(cverts.size());
        cverts.push_back(ext.mesh.position(v));
      }
      nt[static_cast<std::size_t>(k)] = slot;
    }
    ctris.push_back(nt);
  }
  TriangleMesh t_compact(std::move(cverts), std::move(ctris));

  HoleFillResult t_filled = fill_holes(t_compact);
  DiskMapOptions dopt;
  dopt.custom_weight = surface_mean_value_weights(terrain_);
  DiskMap t_disk = harmonic_disk_map(t_filled.mesh, dopt);

  // Boundary robots of T's outer loop.
  std::vector<char> is_boundary(n, 0);
  {
    auto loops = boundary_loops(t_compact);
    std::size_t outer = outer_loop_index(t_compact, loops);
    std::vector<int> compact_to_robot(t_compact.num_vertices(), -1);
    for (std::size_t r = 0; r < n; ++r) {
      if (robot_to_compact[r] >= 0) {
        compact_to_robot[static_cast<std::size_t>(robot_to_compact[r])] =
            static_cast<int>(r);
      }
    }
    for (VertexId v : loops[outer].vertices) {
      is_boundary[static_cast<std::size_t>(
          compact_to_robot[static_cast<std::size_t>(v)])] = 1;
    }
  }

  // Anchors for unmeshed robots.
  std::vector<int> anchor(n, -1);
  {
    std::queue<int> q;
    for (std::size_t r = 0; r < n; ++r) {
      if (robot_to_compact[r] >= 0) {
        anchor[r] = static_cast<int>(r);
        q.push(static_cast<int>(r));
      }
    }
    ANR_CHECK_MSG(!q.empty(), "surface triangulation kept no robot");
    while (!q.empty()) {
      int v = q.front();
      q.pop();
      for (int u : adjacency[static_cast<std::size_t>(v)]) {
        if (anchor[static_cast<std::size_t>(u)] < 0) {
          anchor[static_cast<std::size_t>(u)] = anchor[static_cast<std::size_t>(v)];
          q.push(u);
        }
      }
    }
  }

  auto map_targets = [&](double theta, int* snapped) {
    std::vector<Vec2> q(n);
    std::vector<char> done(n, 0);
    int snaps = 0;
    for (std::size_t r = 0; r < n; ++r) {
      int cv = robot_to_compact[r];
      if (cv < 0) continue;
      Vec2 z = t_disk.disk_pos[static_cast<std::size_t>(cv)].rotated(theta);
      MappedTarget t = interpolator_->map_point(z);
      q[r] = t.world + m2_offset;
      done[r] = 1;
      if (t.snapped) ++snaps;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (done[r]) continue;
      int a = anchor[r];
      q[r] = positions[r] + (q[static_cast<std::size_t>(a)] -
                             positions[static_cast<std::size_t>(a)]);
    }
    if (snapped != nullptr) *snapped = snaps;
    return q;
  };

  auto objective = [&](double theta) {
    std::vector<Vec2> q = map_targets(theta, nullptr);
    if (opt_.objective == MarchObjective::kMinDistance) {
      double d = 0.0;
      for (std::size_t r = 0; r < n; ++r) d += terrain_.surface_length(positions[r], q[r], 8);
      return -d;
    }
    // Surface-metric stable-link predictor.
    int stable = 0;
    for (auto [i, j] : links) {
      if (chord(q[static_cast<std::size_t>(i)], q[static_cast<std::size_t>(j)]) <=
          r_c_ + 1e-9) {
        ++stable;
      }
    }
    return links.empty() ? 1.0
                         : static_cast<double>(stable) /
                               static_cast<double>(links.size());
  };

  RotationSearchResult rot = search_rotation(objective, opt_.rotation);
  plan.rotation_angle = rot.angle;
  plan.rotation_objective = rot.value;
  plan.rotation_evaluations = rot.evaluations;

  std::vector<Vec2> targets = map_targets(rot.angle, &plan.snapped_targets);

  // Repair with the lifted metric.
  const HeightField& hf = terrain_;
  RepairReport rep = repair_targets(
      positions, targets, adjacency, is_boundary, r_c_,
      [&hf](Vec2 a, Vec2 b) { return hf.chord_distance(a, b); });
  plan.repaired_robots = rep.repaired;
  plan.repaired_subgroups = rep.subgroups;
  plan.mapped_targets = targets;
  {
    int stable = 0;
    for (auto [i, j] : links) {
      if (chord(targets[static_cast<std::size_t>(i)],
                targets[static_cast<std::size_t>(j)]) <= r_c_ + 1e-9) {
        ++stable;
      }
    }
    plan.predicted_link_ratio =
        links.empty() ? 1.0
                      : static_cast<double>(stable) /
                            static_cast<double>(links.size());
  }

  // Trajectories on the map plane (holes are obstacles as usual).
  std::vector<Polygon> obstacles = m1_.holes();
  for (const Polygon& h : m2_.holes()) obstacles.push_back(h.translated(m2_offset));
  plan.trajectories.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    plan.trajectories.push_back(make_timed_path(
        positions[r], targets[r], 0.0, opt_.transition_time, obstacles));
  }

  // Connectivity-safe Lloyd with slope-weighted centroids and the lifted
  // link model.
  double max_disp = 1e-9;
  for (std::size_t r = 0; r < n; ++r) {
    max_disp = std::max(max_disp, distance(positions[r], targets[r]));
  }
  double speed_ref = max_disp / opt_.transition_time;
  std::vector<Vec2> cur = targets;
  double t = opt_.transition_time;
  std::vector<Polygon> m2_obstacles;
  for (const Polygon& h : m2_.holes()) m2_obstacles.push_back(h.translated(m2_offset));
  for (int step = 0; step < opt_.max_adjust_steps; ++step) {
    std::vector<Vec2> local(n);
    for (std::size_t r = 0; r < n; ++r) local[r] = cur[r] - m2_offset;
    std::vector<Vec2> cents = cvt_->centroids(local);
    std::vector<Vec2> cand(n);
    for (std::size_t r = 0; r < n; ++r) cand[r] = cents[r] + m2_offset;

    double factor = 1.0;
    std::vector<Vec2> trial(n);
    bool ok = false;
    for (int halving = 0; halving < 7; ++halving) {
      for (std::size_t r = 0; r < n; ++r) trial[r] = lerp(cur[r], cand[r], factor);
      if (net::is_connected(surface_adjacency(trial, terrain_, r_c_))) {
        ok = true;
        break;
      }
      factor /= 2.0;
    }
    if (!ok) break;
    double max_move = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      max_move = std::max(max_move, distance(trial[r], cur[r]));
    }
    if (max_move <= opt_.adjust.tol) {
      cur = trial;
      ++plan.adjust_steps;
      break;
    }
    double dt = std::max(max_move / speed_ref, 1e-6);
    for (std::size_t r = 0; r < n; ++r) {
      Trajectory seg = make_timed_path(cur[r], trial[r], t, t + dt, m2_obstacles);
      for (std::size_t w = 1; w < seg.num_waypoints(); ++w) {
        plan.trajectories[r].append(seg.waypoints()[w], seg.times()[w]);
      }
    }
    cur = trial;
    t += dt;
    ++plan.adjust_steps;
  }
  plan.final_positions = cur;
  plan.total_time = t;
  return plan;
}

}  // namespace anr
