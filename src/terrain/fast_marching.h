// Narrow-band Fast Marching over a terrain cost field.
//
// The marching plan moves robots along straight lines; over real ground
// the cheapest route bends around mud, steep slopes, and keep-out zones.
// This module discretizes a cost (slowness) field from the analytic
// terrain layer and solves the Eikonal equation |∇T| = f with a
// first-accepted-time heap, yielding a time-of-arrival (ToA) field per
// source from which geodesic paths are extracted by gradient descent.
//
// Determinism contract: the propagation order is fixed by a (time, cell
// index) min-heap — ties in arrival time are broken by the lower linear
// cell index — and every update reads only ACCEPTED neighbor values, so
// the resulting ToA field is byte-identical across runs and thread
// counts. (Per-source solves are embarrassingly parallel; the solver
// itself is sequential.)
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "geom/polygon.h"
#include "geom/vec2.h"
#include "terrain/height_field.h"

namespace anr {

/// Circular slow-ground patch: cells whose center falls inside get their
/// cost multiplied by `cost` (cost >= 1: mud; large values ~ near-blocked).
struct MudPatch {
  Vec2 center;
  double radius = 0.0;
  double cost = 1.0;
};

/// Cost-field discretization knobs.
struct CostFieldSpec {
  BBox bounds;            ///< domain to rasterize (must be valid)
  int max_cells = 96;     ///< cells along the longer bounds axis
  double slope_weight = 0.0;    ///< cost = 1 + slope_weight * |∇z|
  double uphill_penalty = 0.0;  ///< extra directional slowness per unit uphill grade
  std::vector<MudPatch> mud;
  std::vector<Polygon> keep_out;  ///< cells with center inside are blocked
};

/// Rasterized slowness field over a uniform grid. Sampling is
/// bounds-checked: querying a point outside `bounds()` is a contract
/// violation, not a silent clamp.
class CostField {
 public:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Rasterizes `spec` over `terrain`. Cell cost is
  /// (1 + slope_weight * |∇z(center)|) * Π mud multipliers, or +inf when
  /// the center lies in a keep-out polygon.
  static CostField build(const CostFieldSpec& spec, const HeightField& terrain);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  double cell_size() const { return cell_; }
  const BBox& bounds() const { return bounds_; }
  int cell_count() const { return nx_ * ny_; }

  bool contains(Vec2 p) const { return bounds_.contains(p); }

  /// Linear index of the cell containing p. Requires contains(p).
  int index_of(Vec2 p) const;
  /// (ix, iy) -> linear index. Requires 0 <= ix < nx, 0 <= iy < ny.
  int index(int ix, int iy) const;
  /// Center of cell i. Requires 0 <= i < cell_count().
  Vec2 center(int i) const;

  /// Cost of cell i (+inf when blocked). Requires 0 <= i < cell_count().
  double cost(int i) const;
  /// Terrain height at the center of cell i.
  double height(int i) const;
  bool blocked(int i) const { return cost_[static_cast<std::size_t>(i)] == kInf; }
  /// Cost at point p. Requires contains(p).
  double cost_at(Vec2 p) const { return cost(index_of(p)); }
  bool blocked_at(Vec2 p) const { return blocked(index_of(p)); }

  /// True when the field has no blocked cells and a single cost value.
  bool uniform() const { return uniform_; }
  /// Minimum finite cell cost (1.0 for an empty field).
  double min_cost() const { return min_cost_; }
  bool has_blocked() const { return blocked_count_ > 0; }
  int blocked_count() const { return blocked_count_; }
  double uphill_penalty() const { return uphill_penalty_; }

  /// True when segment a->b passes through any blocked cell (grid
  /// traversal; endpoints' cells included). Requires both endpoints inside.
  bool segment_blocked(Vec2 a, Vec2 b) const;

  /// Approximate cost-weighted length of segment a->b (midpoint rule over
  /// sub-cell steps). Requires both endpoints inside; +inf if blocked.
  double segment_cost(Vec2 a, Vec2 b) const;

  const std::vector<double>& costs() const { return cost_; }
  const std::vector<double>& heights() const { return height_; }

 private:
  int nx_ = 0, ny_ = 0;
  double cell_ = 1.0;
  BBox bounds_;
  double min_cost_ = 1.0;
  bool uniform_ = true;
  int blocked_count_ = 0;
  double uphill_penalty_ = 0.0;
  std::vector<double> cost_;
  std::vector<double> height_;
};

/// Result of one fast-marching solve.
struct FastMarchResult {
  std::vector<double> toa;  ///< per-cell time of arrival; +inf = unreached
  int accepted = 0;         ///< cells accepted by the propagation
  bool source_blocked = false;

  bool reached(int cell) const {
    return toa[static_cast<std::size_t>(cell)] < CostField::kInf;
  }
};

/// Solves |∇T| = f from `source` over the whole field (narrow band sweep
/// to exhaustion). Deterministic: see the header comment. Requires
/// field.contains(source).
FastMarchResult fast_march(const CostField& field, Vec2 source);

/// Bilinear ToA sample over cell centers; falls back to the containing
/// cell's value when a stencil corner is unreached/blocked; +inf when the
/// containing cell itself is unreached. Requires field.contains(p).
double sample_toa(const CostField& field, const std::vector<double>& toa,
                  Vec2 p);

/// FNV-1a over the little-endian byte image of the ToA field (golden pin).
std::uint64_t toa_checksum(const std::vector<double>& toa);

/// Extracted geodesic from source to goal.
struct GeodesicPath {
  std::vector<Vec2> points;  ///< source..goal inclusive when ok
  bool ok = false;
  std::string failure;  ///< "", "unreachable", "blocked_goal", "stuck_descent"
  double time = 0.0;    ///< ToA at goal (cost-weighted length)
};

/// Gradient-descent path extraction with corner-cutting interpolation:
/// walks from goal to source down the bilinearly interpolated ToA field in
/// half-cell steps, guarding every step against blocked cells, with a
/// 4-neighbor discrete fallback; the polyline is then simplified
/// (Douglas–Peucker) without ever shortcutting across a blocked cell.
/// Requires both endpoints inside the field.
GeodesicPath extract_geodesic(const CostField& field,
                              const FastMarchResult& fm, Vec2 source,
                              Vec2 goal);

}  // namespace anr
