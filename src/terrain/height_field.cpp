#include "terrain/height_field.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace anr {

HeightField::HeightField(std::vector<Hill> hills) : hills_(std::move(hills)) {
  for (const Hill& h : hills_) {
    ANR_CHECK_MSG(h.radius > 0.0, "hill radius must be positive");
  }
}

HeightField HeightField::rolling(const BBox& bounds, int count,
                                 double max_amplitude, double radius,
                                 std::uint64_t seed) {
  ANR_CHECK(count >= 0 && radius > 0.0);
  Rng rng(seed);
  std::vector<Hill> hills;
  hills.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Hill h;
    h.center = {rng.uniform(bounds.lo.x, bounds.hi.x),
                rng.uniform(bounds.lo.y, bounds.hi.y)};
    h.amplitude = rng.uniform(-max_amplitude, max_amplitude);
    h.radius = radius * rng.uniform(0.6, 1.4);
    hills.push_back(h);
  }
  return HeightField(std::move(hills));
}

double HeightField::height(Vec2 p) const {
  double z = 0.0;
  for (const Hill& h : hills_) {
    z += h.amplitude * std::exp(-distance2(p, h.center) / (2.0 * h.radius * h.radius));
  }
  return z;
}

Vec2 HeightField::gradient(Vec2 p) const {
  Vec2 g{};
  for (const Hill& h : hills_) {
    double s2 = h.radius * h.radius;
    double w = h.amplitude * std::exp(-distance2(p, h.center) / (2.0 * s2));
    g += (h.center - p) * (w / s2);
  }
  return g;
}

double HeightField::chord_distance(Vec2 a, Vec2 b) const {
  double dz = height(a) - height(b);
  return std::sqrt(distance2(a, b) + dz * dz);
}

double HeightField::surface_length(Vec2 a, Vec2 b, int samples) const {
  ANR_CHECK(samples >= 1);
  if (flat()) return distance(a, b);
  double len = 0.0;
  Vec2 prev = a;
  double prev_z = height(a);
  for (int k = 1; k <= samples; ++k) {
    Vec2 cur = lerp(a, b, static_cast<double>(k) / samples);
    double z = height(cur);
    double dz = z - prev_z;
    len += std::sqrt(distance2(prev, cur) + dz * dz);
    prev = cur;
    prev_z = z;
  }
  return len;
}

}  // namespace anr
