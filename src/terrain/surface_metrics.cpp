#include "terrain/surface_metrics.h"

#include <algorithm>

#include "common/check.h"
#include "net/connectivity.h"

namespace anr {

namespace {

double surface_length_between(const Trajectory& tr, double t0, double t1,
                              const HeightField& terrain) {
  if (tr.empty() || t1 <= t0) return 0.0;
  double len = 0.0;
  Vec2 prev = tr.position(t0);
  for (std::size_t i = 0; i < tr.num_waypoints(); ++i) {
    if (tr.times()[i] <= t0 || tr.times()[i] >= t1) continue;
    len += terrain.surface_length(prev, tr.waypoints()[i]);
    prev = tr.waypoints()[i];
  }
  len += terrain.surface_length(prev, tr.position(t1));
  return len;
}

// Unit-disk adjacency under the lifted (3D chord) metric.
std::vector<std::vector<int>> lifted_adjacency(const std::vector<Vec2>& pos,
                                               const HeightField& terrain,
                                               double r_c) {
  const std::size_t n = pos.size();
  std::vector<std::vector<int>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (terrain.chord_distance(pos[i], pos[j]) <= r_c + 1e-9) {
        adj[i].push_back(static_cast<int>(j));
        adj[j].push_back(static_cast<int>(i));
      }
    }
  }
  return adj;
}

}  // namespace

SurfaceMetrics simulate_on_surface(const std::vector<Trajectory>& trajs,
                                   const HeightField& terrain, double r_c,
                                   double transition_end, int samples) {
  ANR_CHECK(!trajs.empty());
  ANR_CHECK(samples >= 2);
  const std::size_t n = trajs.size();

  double t0 = trajs[0].start_time();
  double t1 = trajs[0].end_time();
  for (const Trajectory& tr : trajs) {
    t0 = std::min(t0, tr.start_time());
    t1 = std::max(t1, tr.end_time());
  }
  t1 = std::max(t1, transition_end);

  SurfaceMetrics out;
  for (const Trajectory& tr : trajs) {
    out.planar_distance += tr.length();
    out.surface_distance += surface_length_between(tr, t0, t1, terrain);
    out.base.transition_distance +=
        surface_length_between(tr, t0, transition_end, terrain);
    out.base.adjustment_distance +=
        surface_length_between(tr, transition_end, t1, terrain);
    out.max_climb = std::max(out.max_climb,
                             std::abs(terrain.height(tr.start()) -
                                      terrain.height(tr.end())));
  }
  out.base.total_distance = out.surface_distance;

  // Initial links under the 3D metric.
  std::vector<Vec2> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = trajs[i].position(t0);
  std::vector<std::pair<int, int>> links;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (terrain.chord_distance(pos[i], pos[j]) <= r_c + 1e-9) {
        links.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  out.base.initial_links = static_cast<int>(links.size());
  std::vector<char> alive(links.size(), 1);
  std::vector<char> alive_transition(links.size(), 1);

  std::vector<double> ts;
  for (int k = 0; k < samples; ++k) {
    ts.push_back(t0 + (t1 - t0) * k / (samples - 1));
  }
  ts.push_back(transition_end);
  std::sort(ts.begin(), ts.end());

  out.base.global_connectivity = true;
  out.base.first_disconnect_time = -1.0;
  for (double t : ts) {
    for (std::size_t i = 0; i < n; ++i) pos[i] = trajs[i].position(t);
    for (std::size_t li = 0; li < links.size(); ++li) {
      auto [a, b] = links[li];
      if (terrain.chord_distance(pos[static_cast<std::size_t>(a)],
                                 pos[static_cast<std::size_t>(b)]) >
          r_c + 1e-9) {
        alive[li] = 0;
        if (t <= transition_end + 1e-12) alive_transition[li] = 0;
      }
    }
    if (out.base.global_connectivity &&
        !net::is_connected(lifted_adjacency(pos, terrain, r_c))) {
      out.base.global_connectivity = false;
      out.base.first_disconnect_time = t;
    }
    ++out.base.samples;
  }

  auto ratio = [](const std::vector<char>& v) {
    if (v.empty()) return 1.0;
    return static_cast<double>(std::count(v.begin(), v.end(), char{1})) /
           static_cast<double>(v.size());
  };
  out.base.stable_links =
      static_cast<int>(std::count(alive.begin(), alive.end(), char{1}));
  out.base.stable_link_ratio = ratio(alive);
  out.base.stable_link_ratio_transition = ratio(alive_transition);
  return out;
}

}  // namespace anr
