// Placement: fingerprint -> shard, as a pure function of the shard map.
//
// The home shard of a job is the jump consistent hash of its planner-
// cache fingerprint (splitmix64-mixed first; the raw FNV fingerprint is
// structured enough to bias jump's internal LCG walk). Identical planner
// configurations therefore always hash to the same home shard, which is
// exactly the shard whose PlannerCache already holds — or will hold —
// the planner: cache affinity falls out of placement, no coordination
// needed.
//
// When the home shard is not routable (kDraining / kDown), placement
// falls back along a deterministic walk: home+1, home+2, ... mod N,
// stopping at the first kUp shard. The walk is a function of the map
// snapshot alone, so every router instance — and every replay of a
// recorded map version — picks the same fallback. When no shard is up,
// placement reports failure (shard == kNoShard) and the caller decides
// (the router rejects new work and parks handed-off work on its origin).
#pragma once

#include <cstdint>

#include "shard/shard_map.h"

namespace anr::shard {

/// place() result when no shard in the map is kUp.
inline constexpr int kNoShard = -1;

struct PlacementDecision {
  int home = kNoShard;   ///< jump-hash target, ignoring health
  int shard = kNoShard;  ///< routable target after the fallback walk
  int hops = 0;          ///< fallback steps taken (0: home was routable)
  std::uint64_t map_version = 0;  ///< snapshot the decision was made under

  bool ok() const { return shard != kNoShard; }
  bool forwarded() const { return ok() && shard != home; }
};

/// Home shard for a fingerprint over `num_shards` shards, health ignored.
/// Pure; pinned across processes by tests/test_shard.cpp.
int home_shard(std::uint64_t fingerprint, int num_shards);

/// Full placement against a map snapshot: home + deterministic fallback
/// walk to the first kUp shard. Pure function of (fingerprint, map).
PlacementDecision place(std::uint64_t fingerprint, const ShardMapView& map);

}  // namespace anr::shard
