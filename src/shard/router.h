// ShardedMissionService: N independent MissionService shards behind a
// consistent-hash router.
//
// Each shard owns a full MissionService — its own worker pool, bounded
// queue, and PlannerCache — and the router assigns every job to a shard
// by jump-consistent-hashing its planner-cache fingerprint against the
// current ShardMap snapshot (src/shard/placement.h). Identical planner
// configurations therefore always land on the shard that already caches
// their planner: cache affinity is a property of placement, not of any
// shared state, which is what lets this same layout extend to real
// multi-node RPC later (every router replica computes the same answer
// from the same map version).
//
// Health + administration:
//   kill(i)   — simulated failure: shard i goes kDown (epoch bump); jobs
//               still waiting in its queue are handed to the next live
//               shard along the deterministic fallback walk, promises
//               intact, so no accepted job is lost. Jobs a worker already
//               picked up finish on i.
//   drain(i)  — graceful retirement: shard i goes kDraining (no new
//               placements), queued jobs are handed off the same way,
//               then drain() blocks until i's in-flight work completes.
//               The shard keeps its warm cache for a later revive().
//   revive(i) — back to kUp (epoch bump); the fallback traffic snaps
//               back to home placement on the next submission.
//
// When no shard is kUp, new submissions resolve immediately as
// kRejectedShutdown ("no live shard") and handed-off jobs park on their
// origin shard's queue until a revive.
//
// Metrics (when `registry` is set): the router exports its own family
// (anr_router_*: accepted jobs, per-shard first placements, forwards off
// a dead home shard, kill/drain reroutes, shard-state + map-version
// gauges), and every member service registers its full MissionService
// family labeled {shard="<i>"} — per-shard submitted / cache hits /
// queue depth stay separable, and sums across shards reconcile with the
// router totals (asserted in tests/test_shard.cpp and the CI smoke job).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "runtime/mission_service.h"
#include "shard/placement.h"
#include "shard/shard_map.h"

namespace anr::shard {

/// How the router picks a shard for a new job.
enum class RoutingPolicy {
  /// Jump consistent hash of the planner fingerprint (cache affinity).
  kAffinity,
  /// Seeded pseudo-random shard per submission, health-respecting.
  /// Deliberately cache-hostile: the control baseline that affinity is
  /// measured against (bench_service --sharded). Deterministic for a
  /// fixed seed and submission order.
  kRandom,
};

struct ShardedServiceOptions {
  /// Number of shards (>= 1). Each gets an independent MissionService.
  int shards = 2;
  /// Template for every member service. `threads` is PER SHARD — the
  /// default 0 (hardware concurrency) multiplies by the shard count, so
  /// deployments should set it explicitly. `registry` and
  /// `metric_labels` here are ignored; the router attaches its own
  /// registry with a {shard="<i>"} label per member.
  runtime::ServiceOptions shard;
  RoutingPolicy routing = RoutingPolicy::kAffinity;
  /// Seed for RoutingPolicy::kRandom.
  std::uint64_t random_seed = 1;
  /// Metrics sink for the router and every shard. Must outlive the
  /// service. nullptr disables exporting.
  obs::Registry* registry = nullptr;
};

struct ShardedServiceStats {
  std::uint64_t submitted = 0;         ///< jobs accepted by the router
  std::uint64_t rejected_no_shard = 0; ///< resolved with no live shard
  std::uint64_t forwarded = 0;         ///< first placement off the home shard
  std::uint64_t rerouted = 0;          ///< handed off by kill()/drain()
  std::uint64_t map_version = 0;
  std::vector<ShardState> states;
  std::vector<std::uint64_t> routed;          ///< first placements, per shard
  std::vector<std::uint64_t> forwarded_from;  ///< home shard skipped, per shard
  std::vector<runtime::ServiceStats> shards;

  /// Sum over shards of terminally-resolved jobs (every status). Equals
  /// `submitted - rejected_no_shard` once all futures have resolved.
  std::uint64_t resolved() const;
};

/// Serializes the router + per-shard breakdown, including an aggregate
/// "totals" object (resolved jobs, summed cache counters, derived cache
/// hit rate) whose fields must reconcile with the router counters.
json::Value sharded_stats_to_json(const ShardedServiceStats& s);

class ShardedMissionService {
 public:
  explicit ShardedMissionService(ShardedServiceOptions options = {});
  ~ShardedMissionService();  // graceful: drains every shard, then joins

  ShardedMissionService(const ShardedMissionService&) = delete;
  ShardedMissionService& operator=(const ShardedMissionService&) = delete;

  /// Routes the job by placement and enqueues it on the chosen shard.
  /// The future always resolves. With every shard down the job resolves
  /// immediately as kRejectedShutdown ("no live shard").
  std::future<runtime::JobResult> submit(runtime::PlanJob job);

  /// Submits every job, waits for all, returns results in input order.
  std::vector<runtime::JobResult> run_batch(
      std::vector<runtime::PlanJob> jobs);

  /// Administrative transitions; see the header comment. All are
  /// idempotent per target state and safe against concurrent submit().
  void kill(int shard);
  void drain(int shard);
  void revive(int shard);

  /// Stops intake and drains every shard. Idempotent.
  void shutdown();

  int shard_count() const { return static_cast<int>(services_.size()); }
  const ShardMap& map() const { return map_; }

  /// The shard this job would route to right now under kAffinity —
  /// exposes the pure placement function for tests and tooling.
  PlacementDecision placement_of(const runtime::PlanJob& job) const;

  /// Direct access to one member service (tests, stats tooling).
  runtime::MissionService& shard_service(int shard);

  ShardedServiceStats stats() const;

 private:
  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* no_shard = nullptr;
    std::vector<obs::Counter*> routed;     ///< anr_router_routed_total{shard}
    std::vector<obs::Counter*> forwarded;  ///< home skipped, by home shard
    std::vector<obs::Counter*> rerouted;   ///< taken from shard on kill/drain
    std::vector<obs::Gauge*> state;        ///< anr_shard_state{shard}
    obs::Gauge* map_version = nullptr;
  };

  /// Routing decision under the current policy. Caller holds admin lock
  /// (shared suffices).
  PlacementDecision route(std::uint64_t fingerprint);
  /// Steals shard `from`'s queue and re-places every job. Caller holds
  /// the admin lock exclusively. Jobs with no live target park on `from`.
  void handoff_locked(int from);
  void publish_map_locked();

  ShardedServiceOptions opt_;
  ShardMap map_;
  std::vector<std::unique_ptr<runtime::MissionService>> services_;

  /// submit() holds this shared (concurrent submissions are fine — the
  /// member services are thread-safe); kill/drain/revive hold it
  /// exclusively so a state flip plus queue handoff is atomic against
  /// routing decisions.
  mutable std::shared_mutex admin_mutex_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_no_shard_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> random_sequence_{0};  ///< kRandom draw counter
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> routed_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> forwarded_from_;
  Instruments ins_;
};

}  // namespace anr::shard
