#include "shard/router.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/hash.h"

namespace anr::shard {

namespace {

/// Planner-cache fingerprint of a job: the routing key. Throws
/// ContractViolation when options carry closures without a closure_tag
/// (same contract as PlannerCache).
std::uint64_t fingerprint_of(const runtime::PlanJob& job) {
  return runtime::CacheKey::of(job.m1, job.m2_shape, job.r_c, job.options,
                               job.closure_tag)
      .hash();
}

}  // namespace

std::uint64_t ShardedServiceStats::resolved() const {
  std::uint64_t n = 0;
  for (const runtime::ServiceStats& s : shards) {
    n += s.completed + s.degraded + s.errored + s.rejected_queue_full +
         s.rejected_invalid + s.rejected_shutdown + s.deadline_expired;
  }
  return n;
}

json::Value sharded_stats_to_json(const ShardedServiceStats& s) {
  json::Object router;
  router.emplace("submitted", s.submitted);
  router.emplace("rejected_no_shard", s.rejected_no_shard);
  router.emplace("forwarded", s.forwarded);
  router.emplace("rerouted", s.rerouted);
  router.emplace("map_version", s.map_version);
  json::Array states;
  for (ShardState st : s.states) states.emplace_back(shard_state_name(st));
  router.emplace("states", std::move(states));
  json::Array routed;
  for (std::uint64_t r : s.routed) routed.emplace_back(r);
  router.emplace("routed", std::move(routed));
  json::Array fwd;
  for (std::uint64_t f : s.forwarded_from) fwd.emplace_back(f);
  router.emplace("forwarded_from", std::move(fwd));

  json::Array shards;
  std::uint64_t sub_sum = 0, hits = 0, misses = 0, built = 0, entries = 0;
  for (const runtime::ServiceStats& sh : s.shards) {
    shards.emplace_back(runtime::stats_to_json(sh));
    sub_sum += sh.submitted;
    hits += sh.cache.hits;
    misses += sh.cache.misses;
    built += sh.cache.constructions;
    entries += sh.cache.entries;
  }

  // Aggregate view whose sums must reconcile with the router counters:
  // submitted == router submitted - rejected_no_shard, and resolved()
  // matches it once every future has resolved.
  json::Object totals;
  totals.emplace("submitted", sub_sum);
  totals.emplace("resolved", s.resolved());
  json::Object cache;
  cache.emplace("hits", hits);
  cache.emplace("misses", misses);
  cache.emplace("constructions", built);
  cache.emplace("entries", entries);
  cache.emplace("hit_rate",
                hits + misses > 0
                    ? static_cast<double>(hits) /
                          static_cast<double>(hits + misses)
                    : 0.0);
  totals.emplace("cache", std::move(cache));

  json::Object o;
  o.emplace("router", std::move(router));
  o.emplace("totals", std::move(totals));
  o.emplace("shards", std::move(shards));
  return json::Value(std::move(o));
}

ShardedMissionService::ShardedMissionService(ShardedServiceOptions options)
    : opt_(options), map_(options.shards) {
  ANR_CHECK_MSG(opt_.shards >= 1, "need at least one shard");
  services_.reserve(static_cast<std::size_t>(opt_.shards));
  routed_.reserve(static_cast<std::size_t>(opt_.shards));
  forwarded_from_.reserve(static_cast<std::size_t>(opt_.shards));

  const bool live =
      opt_.registry != nullptr && opt_.registry->enabled();
  if (live) {
    obs::Registry& reg = *opt_.registry;
    ins_.submitted = reg.counter("anr_router_jobs_total", {},
                                 "jobs accepted by the shard router");
    ins_.no_shard = reg.counter("anr_router_no_shard_total", {},
                                "jobs rejected with no live shard");
    ins_.map_version =
        reg.gauge("anr_shard_map_version", {}, "shard-map epoch");
  }

  for (int i = 0; i < opt_.shards; ++i) {
    const std::string id = std::to_string(i);
    runtime::ServiceOptions so = opt_.shard;
    so.registry = opt_.registry;
    so.metric_labels = {{"shard", id}};
    services_.push_back(std::make_unique<runtime::MissionService>(so));
    routed_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    forwarded_from_.push_back(
        std::make_unique<std::atomic<std::uint64_t>>(0));
    if (live) {
      obs::Registry& reg = *opt_.registry;
      const obs::Labels labels = {{"shard", id}};
      ins_.routed.push_back(reg.counter(
          "anr_router_routed_total", labels, "first placements per shard"));
      ins_.forwarded.push_back(
          reg.counter("anr_router_forwarded_total", labels,
                      "jobs forwarded off this home shard (not routable)"));
      ins_.rerouted.push_back(
          reg.counter("anr_router_rerouted_total", labels,
                      "queued jobs handed off this shard on kill/drain"));
      ins_.state.push_back(
          reg.gauge("anr_shard_state", labels,
                    "shard health (0 up, 1 draining, 2 down)"));
    }
  }
  std::unique_lock<std::shared_mutex> lock(admin_mutex_);
  publish_map_locked();
}

ShardedMissionService::~ShardedMissionService() { shutdown(); }

void ShardedMissionService::publish_map_locked() {
  ShardMapView v = map_.view();
  obs::set(ins_.map_version, static_cast<double>(v.version));
  for (int i = 0; i < v.size(); ++i) {
    if (!ins_.state.empty()) {
      obs::set(ins_.state[static_cast<std::size_t>(i)],
               static_cast<double>(v.states[static_cast<std::size_t>(i)]));
    }
  }
}

PlacementDecision ShardedMissionService::route(std::uint64_t fingerprint) {
  ShardMapView view = map_.view();
  if (opt_.routing == RoutingPolicy::kRandom) {
    // Health-respecting but cache-hostile: a fresh pseudo-random draw
    // per submission (deterministic in seed + arrival order).
    std::uint64_t seq =
        random_sequence_.fetch_add(1, std::memory_order_relaxed);
    return place(splitmix64(opt_.random_seed) + seq, view);
  }
  return place(fingerprint, view);
}

std::future<runtime::JobResult> ShardedMissionService::submit(
    runtime::PlanJob job) {
  // Fingerprint first: a misconfigured closure_tag throws here, before
  // anything is counted (same contract as PlannerCache).
  const std::uint64_t fp = fingerprint_of(job);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::inc(ins_.submitted);

  std::shared_lock<std::shared_mutex> lock(admin_mutex_);
  PlacementDecision d = route(fp);
  if (!d.ok()) {
    rejected_no_shard_.fetch_add(1, std::memory_order_relaxed);
    obs::inc(ins_.no_shard);
    std::promise<runtime::JobResult> promise;
    runtime::JobResult r;
    r.id = job.id;
    r.ok = false;
    r.status = runtime::JobStatus::kRejectedShutdown;
    r.error = "no live shard (all shards down or draining)";
    promise.set_value(std::move(r));
    return promise.get_future();
  }
  routed_[static_cast<std::size_t>(d.shard)]->fetch_add(
      1, std::memory_order_relaxed);
  if (!ins_.routed.empty()) {
    obs::inc(ins_.routed[static_cast<std::size_t>(d.shard)]);
  }
  if (d.forwarded()) {
    forwarded_.fetch_add(1, std::memory_order_relaxed);
    forwarded_from_[static_cast<std::size_t>(d.home)]->fetch_add(
        1, std::memory_order_relaxed);
    if (!ins_.forwarded.empty()) {
      obs::inc(ins_.forwarded[static_cast<std::size_t>(d.home)]);
    }
  }
  return services_[static_cast<std::size_t>(d.shard)]->submit(
      std::move(job));
}

std::vector<runtime::JobResult> ShardedMissionService::run_batch(
    std::vector<runtime::PlanJob> jobs) {
  std::vector<std::future<runtime::JobResult>> futures;
  futures.reserve(jobs.size());
  for (runtime::PlanJob& job : jobs) futures.push_back(submit(std::move(job)));
  std::vector<runtime::JobResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void ShardedMissionService::handoff_locked(int from) {
  std::vector<runtime::PendingJob> pending =
      services_[static_cast<std::size_t>(from)]->take_queued();
  if (pending.empty()) return;
  ShardMapView view = map_.view();
  for (runtime::PendingJob& p : pending) {
    // Queued jobs passed the router's fingerprint step already, so this
    // cannot throw for router-submitted work; re-placement always uses
    // affinity so the job lands where its planner will be cached.
    PlacementDecision d = place(fingerprint_of(p.job), view);
    int target = d.ok() ? d.shard : from;  // nowhere to go: park on origin
    if (target != from) {
      rerouted_.fetch_add(1, std::memory_order_relaxed);
      if (!ins_.rerouted.empty()) {
        obs::inc(ins_.rerouted[static_cast<std::size_t>(from)]);
      }
    }
    services_[static_cast<std::size_t>(target)]->submit_pending(
        std::move(p));
  }
}

void ShardedMissionService::kill(int shard) {
  ANR_CHECK(shard >= 0 && shard < shard_count());
  std::unique_lock<std::shared_mutex> lock(admin_mutex_);
  map_.set_state(shard, ShardState::kDown);
  publish_map_locked();
  handoff_locked(shard);
}

void ShardedMissionService::drain(int shard) {
  ANR_CHECK(shard >= 0 && shard < shard_count());
  {
    std::unique_lock<std::shared_mutex> lock(admin_mutex_);
    map_.set_state(shard, ShardState::kDraining);
    publish_map_locked();
    handoff_locked(shard);
  }
  // Graceful: wait out in-flight work with routing unblocked. No new job
  // can target this shard while it is kDraining, so the wait terminates.
  services_[static_cast<std::size_t>(shard)]->wait_idle();
}

void ShardedMissionService::revive(int shard) {
  ANR_CHECK(shard >= 0 && shard < shard_count());
  std::unique_lock<std::shared_mutex> lock(admin_mutex_);
  map_.set_state(shard, ShardState::kUp);
  publish_map_locked();
}

void ShardedMissionService::shutdown() {
  for (auto& s : services_) s->shutdown();
}

PlacementDecision ShardedMissionService::placement_of(
    const runtime::PlanJob& job) const {
  return place(fingerprint_of(job), map_.view());
}

runtime::MissionService& ShardedMissionService::shard_service(int shard) {
  ANR_CHECK(shard >= 0 && shard < shard_count());
  return *services_[static_cast<std::size_t>(shard)];
}

ShardedServiceStats ShardedMissionService::stats() const {
  ShardedServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected_no_shard = rejected_no_shard_.load(std::memory_order_relaxed);
  s.forwarded = forwarded_.load(std::memory_order_relaxed);
  s.rerouted = rerouted_.load(std::memory_order_relaxed);
  ShardMapView v = map_.view();
  s.map_version = v.version;
  s.states = std::move(v.states);
  s.routed.reserve(services_.size());
  s.forwarded_from.reserve(services_.size());
  s.shards.reserve(services_.size());
  for (std::size_t i = 0; i < services_.size(); ++i) {
    s.routed.push_back(routed_[i]->load(std::memory_order_relaxed));
    s.forwarded_from.push_back(
        forwarded_from_[i]->load(std::memory_order_relaxed));
    s.shards.push_back(services_[i]->stats());
  }
  return s;
}

}  // namespace anr::shard
