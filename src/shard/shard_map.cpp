#include "shard/shard_map.h"

#include "common/check.h"

namespace anr::shard {

const char* shard_state_name(ShardState state) {
  switch (state) {
    case ShardState::kUp:
      return "up";
    case ShardState::kDraining:
      return "draining";
    case ShardState::kDown:
      return "down";
  }
  return "unknown";
}

int ShardMapView::up_count() const {
  int n = 0;
  for (ShardState s : states) {
    if (s == ShardState::kUp) ++n;
  }
  return n;
}

ShardMap::ShardMap(int num_shards) {
  ANR_CHECK_MSG(num_shards >= 1, "shard map needs at least one shard");
  states_.assign(static_cast<std::size_t>(num_shards), ShardState::kUp);
}

bool ShardMap::set_state(int shard, ShardState state) {
  ANR_CHECK(shard >= 0 && shard < size());
  std::lock_guard<std::mutex> lock(m_);
  ShardState& cur = states_[static_cast<std::size_t>(shard)];
  if (cur == state) return false;
  cur = state;
  ++version_;
  return true;
}

ShardState ShardMap::state(int shard) const {
  ANR_CHECK(shard >= 0 && shard < size());
  std::lock_guard<std::mutex> lock(m_);
  return states_[static_cast<std::size_t>(shard)];
}

std::uint64_t ShardMap::version() const {
  std::lock_guard<std::mutex> lock(m_);
  return version_;
}

ShardMapView ShardMap::view() const {
  std::lock_guard<std::mutex> lock(m_);
  ShardMapView v;
  v.version = version_;
  v.states = states_;
  return v;
}

}  // namespace anr::shard
