#include "shard/placement.h"

#include "common/check.h"
#include "common/hash.h"

namespace anr::shard {

int home_shard(std::uint64_t fingerprint, int num_shards) {
  ANR_CHECK_MSG(num_shards >= 1, "placement needs at least one shard");
  return jump_consistent_hash(splitmix64(fingerprint), num_shards);
}

PlacementDecision place(std::uint64_t fingerprint, const ShardMapView& map) {
  const int n = map.size();
  PlacementDecision d;
  d.map_version = map.version;
  d.home = home_shard(fingerprint, n);
  for (int hop = 0; hop < n; ++hop) {
    int candidate = (d.home + hop) % n;
    if (map.routable(candidate)) {
      d.shard = candidate;
      d.hops = hop;
      return d;
    }
  }
  d.shard = kNoShard;
  d.hops = n;
  return d;
}

}  // namespace anr::shard
