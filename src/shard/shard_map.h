// ShardMap: a versioned, pool-map-style view of shard health.
//
// Placement (src/shard/placement.h) must be a *pure* function of
// (fingerprint, map state), so routing decisions are reproducible and
// auditable: the same job against the same map version always lands on
// the same shard, in this process or any other. To make that possible
// the map is epoch-versioned — every health transition bumps a
// monotonically increasing version — and readers take an atomic
// ShardMapView snapshot (version + per-shard states) rather than reading
// live state field by field. This mirrors the DAOS pool-map discipline:
// the placement algorithm is stateless, the map carries all the state,
// and a version number names each distinct cluster configuration.
//
// Health states:
//   kUp       — accepts new placements.
//   kDraining — administratively retiring: no new placements, queued
//               work is handed off, in-flight work finishes.
//   kDown     — failed (or fully drained): not routable; revive() brings
//               it back as kUp.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace anr::shard {

enum class ShardState {
  kUp = 0,
  kDraining = 1,
  kDown = 2,
};

/// Stable lowercase name ("up", "draining", "down").
const char* shard_state_name(ShardState state);

/// Immutable snapshot of the map at one version: the input placement
/// actually consumes. Copy is cheap (one small vector).
struct ShardMapView {
  std::uint64_t version = 0;
  std::vector<ShardState> states;

  int size() const { return static_cast<int>(states.size()); }
  bool routable(int shard) const {
    return states[static_cast<std::size_t>(shard)] == ShardState::kUp;
  }
  int up_count() const;
};

/// Thread-safe versioned health map over a fixed shard count. Transitions
/// bump the version; reads hand out consistent snapshots.
class ShardMap {
 public:
  /// All shards start kUp at version 0. num_shards >= 1.
  explicit ShardMap(int num_shards);

  int size() const { return static_cast<int>(states_.size()); }

  /// Sets one shard's state. Returns true (and bumps the version) when
  /// the state actually changed; a no-op transition leaves the version
  /// untouched so placement stays stable.
  bool set_state(int shard, ShardState state);

  ShardState state(int shard) const;
  std::uint64_t version() const;

  /// Consistent (version, states) snapshot.
  ShardMapView view() const;

 private:
  mutable std::mutex m_;
  std::vector<ShardState> states_;
  std::uint64_t version_ = 0;
};

}  // namespace anr::shard
