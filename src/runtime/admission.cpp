#include "runtime/admission.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace anr::runtime {

namespace {

obs::Labels with_label(obs::Labels base, const char* key, const char* value) {
  base.emplace_back(key, value);
  return base;
}

}  // namespace

const char* admit_decision_name(AdmitDecision d) {
  switch (d) {
    case AdmitDecision::kAccept:
      return "accept";
    case AdmitDecision::kShed:
      return "shed";
    case AdmitDecision::kReject:
      return "reject";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : opt_(options) {
  ANR_CHECK_MSG(opt_.slo_seconds > 0.0, "SLO must be positive");
  ANR_CHECK_MSG(opt_.queue_capacity >= 1, "queue capacity must be positive");
  ANR_CHECK_MSG(opt_.shed_pressure > 0.0 &&
                    opt_.reject_pressure >= opt_.shed_pressure,
                "need 0 < shed_pressure <= reject_pressure");
  ANR_CHECK_MSG(opt_.idle_decay >= 0.0 && opt_.idle_decay < 1.0,
                "idle_decay must be in [0, 1)");
  if (opt_.registry != nullptr && opt_.registry->enabled()) {
    obs::Registry& reg = *opt_.registry;
    const obs::Labels& base = opt_.metric_labels;
    for (int d = 0; d <= static_cast<int>(AdmitDecision::kReject); ++d) {
      ins_.by_decision[d] = reg.counter(
          "anr_admit_total",
          with_label(base, "decision",
                     admit_decision_name(static_cast<AdmitDecision>(d))),
          "admission decisions, by outcome");
    }
    ins_.pressure = reg.gauge("anr_admit_pressure", base,
                              "max(queue occupancy, p99/SLO) at last admit");
    ins_.p99 = reg.gauge("anr_admit_p99_seconds", base,
                         "held window p99 of full-service e2e latency");
    ins_.occupancy = reg.gauge("anr_admit_occupancy", base,
                               "queue_depth / queue_capacity at last admit");
  }
}

void AdmissionController::watch(const obs::Histogram* latency) {
  if (latency == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Watched w;
  w.hist = latency;
  w.prev_buckets = latency->bucket_counts();
  watched_.push_back(std::move(w));
}

void AdmissionController::set_queue_probe(std::function<std::size_t()> probe) {
  probe_ = std::move(probe);
}

void AdmissionController::refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  // Merge this window's bucket deltas across every watched histogram into
  // (upper bound, count) pairs. Overflow (+Inf) observations are folded
  // in at one factor beyond the last finite bound — conservative, finite.
  std::vector<std::pair<double, std::uint64_t>> deltas;
  std::uint64_t total = 0;
  for (Watched& w : watched_) {
    std::vector<std::uint64_t> cur = w.hist->bucket_counts();
    const std::vector<double>& bounds = w.hist->upper_bounds();
    if (w.prev_buckets.size() != cur.size()) w.prev_buckets.assign(cur.size(), 0);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const std::uint64_t d = cur[i] - w.prev_buckets[i];
      if (d == 0) continue;
      const double bound = i < bounds.size()
                               ? bounds[i]
                               : bounds.back() * w.hist->spec().factor;
      deltas.emplace_back(bound, d);
      total += d;
    }
    w.prev_buckets = std::move(cur);
  }
  if (total < opt_.min_window_count) {
    p99_ *= opt_.idle_decay;
    return;
  }
  std::sort(deltas.begin(), deltas.end());
  const std::uint64_t rank = (total * 99 + 99) / 100;  // ceil(0.99 * total)
  std::uint64_t seen = 0;
  for (const auto& [bound, count] : deltas) {
    seen += count;
    if (seen >= rank) {
      p99_ = bound;
      break;
    }
  }
}

AdmitResult AdmissionController::admit() {
  AdmitResult r;
  const std::size_t depth = probe_ ? probe_() : 0;
  r.occupancy =
      static_cast<double>(depth) / static_cast<double>(opt_.queue_capacity);
  {
    std::lock_guard<std::mutex> lock(mu_);
    r.p99_seconds = p99_;
  }
  r.pressure = std::max(r.occupancy, r.p99_seconds / opt_.slo_seconds);
  if (r.pressure < opt_.shed_pressure) {
    r.decision = AdmitDecision::kAccept;
  } else if (r.pressure < opt_.reject_pressure) {
    r.decision = AdmitDecision::kShed;
  } else {
    r.decision = AdmitDecision::kReject;
  }
  obs::inc(ins_.by_decision[static_cast<int>(r.decision)]);
  obs::set(ins_.pressure, r.pressure);
  obs::set(ins_.p99, r.p99_seconds);
  obs::set(ins_.occupancy, r.occupancy);
  return r;
}

double AdmissionController::window_p99() const {
  std::lock_guard<std::mutex> lock(mu_);
  return p99_;
}

json::Value gateway_stats_to_json(const GatewayStats& s) {
  json::Object o;
  o.emplace("submitted", s.submitted);
  o.emplace("accepted", s.accepted);
  o.emplace("shed", s.shed);
  o.emplace("rejected", s.rejected);
  return json::Value(std::move(o));
}

ServingGateway::ServingGateway(GatewayBackend backend,
                               AdmissionController* controller,
                               int refresh_every)
    : backend_(std::move(backend)),
      ctrl_(controller),
      refresh_every_(static_cast<std::uint64_t>(std::max(1, refresh_every))) {
  ANR_CHECK_MSG(ctrl_ != nullptr, "gateway needs a controller");
  ANR_CHECK_MSG(static_cast<bool>(backend_.submit),
                "gateway backend needs a submit function");
  if (backend_.queue_depth) ctrl_->set_queue_probe(backend_.queue_depth);
}

std::future<JobResult> ServingGateway::submit(PlanJob job,
                                              AdmitResult* decision) {
  const std::uint64_t n = submitted_.fetch_add(1, std::memory_order_relaxed);
  if (n % refresh_every_ == 0) ctrl_->refresh();
  const AdmitResult verdict = ctrl_->admit();
  if (decision != nullptr) *decision = verdict;
  switch (verdict.decision) {
    case AdmitDecision::kAccept:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      return backend_.submit(std::move(job));
    case AdmitDecision::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      job.level = ServiceLevel::kDegradedOnly;
      return backend_.submit(std::move(job));
    case AdmitDecision::kReject:
      break;
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  JobResult r;
  r.id = job.id;
  r.ok = false;
  r.status = JobStatus::kRejectedOverload;
  r.error = "admission reject: pressure " + std::to_string(verdict.pressure) +
            " >= " + std::to_string(ctrl_->options().reject_pressure);
  std::promise<JobResult> promise;
  std::future<JobResult> future = promise.get_future();
  promise.set_value(std::move(r));
  return future;
}

GatewayStats ServingGateway::stats() const {
  GatewayStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace anr::runtime
