// StreamFrontend: the long-lived streaming serve loop.
//
// Batch march_serve reads every request before printing any result; a
// resident planning service wants request/response streaming: a client
// writes kRequest frames (io/frame_io.h) carrying the io/job_io.h JSON
// schema and receives one response frame per request, in request order,
// as soon as each job resolves. This class is that loop, layered on the
// admission-controlled ServingGateway:
//
//   reader (caller's thread)          writer (internal thread)
//   ------------------------          ------------------------
//   read_frame(in)                    pop oldest pending future
//   parse JSON -> PlanJob             future.get()
//   gateway->submit(job)  ----------> write kResponse / kResponsePlan
//   push future (bounded)             flush
//
// The pending window is bounded (StreamFrontendOptions::max_inflight):
// when the writer falls behind, the reader stops consuming input, which
// backpressures the client through the pipe/socket buffer — on top of
// the admission controller already shedding or rejecting under SLO
// pressure. Responses preserve request order (FIFO), so a client may
// pipeline requests and match responses by position or by echoed id.
//
// Error handling mirrors batch mode: a request that fails to parse gets
// a kResponse frame with ok=false, status "rejected_invalid" — the
// stream keeps serving. Only protocol-level damage (garbage frame type,
// truncated frame) emits a terminal kError frame and ends the session.
//
// request_stop() (e.g. from a SIGTERM watcher) makes the reader stop
// after the current frame; already-submitted jobs still get their
// response frames before serve() returns (graceful drain).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <istream>
#include <mutex>
#include <ostream>

#include "runtime/admission.h"

namespace anr::runtime {

struct StreamFrontendOptions {
  /// Maximum responses submitted but not yet written before the reader
  /// stalls (client-visible backpressure).
  std::size_t max_inflight = 128;
};

struct StreamStats {
  std::uint64_t frames_read = 0;
  std::uint64_t requests = 0;         ///< kRequest frames parsed OK
  std::uint64_t bad_requests = 0;     ///< answered ok=false inline
  std::uint64_t responses = 0;        ///< response frames written
  std::uint64_t plan_frames = 0;      ///< of which kResponsePlan
  std::uint64_t protocol_errors = 0;  ///< terminal kError frames written
};

class StreamFrontend {
 public:
  /// `gateway` must outlive the frontend.
  explicit StreamFrontend(ServingGateway* gateway,
                          StreamFrontendOptions options = {});

  StreamFrontend(const StreamFrontend&) = delete;
  StreamFrontend& operator=(const StreamFrontend&) = delete;

  /// Serves one session: reads frames from `in` until EOF, a protocol
  /// error, or request_stop(); writes every pending response to `out`
  /// before returning. Runs the writer on an internal thread; the
  /// reader runs on the calling thread.
  StreamStats serve(std::istream& in, std::ostream& out);

  /// Asks the current serve() to stop reading (thread-safe; sticky for
  /// the current session only).
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  struct Pending {
    std::future<JobResult> future;
    bool include_plan = false;
    bool binary_plan = false;
  };

  ServingGateway* gateway_;
  StreamFrontendOptions opt_;
  std::atomic<bool> stop_{false};
};

}  // namespace anr::runtime
