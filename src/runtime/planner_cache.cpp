#include "runtime/planner_cache.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace anr::runtime {

namespace {

// Canonical byte encoding of the planner configuration. Appends raw
// little-endian value bytes with single-byte field tags; containers are
// length-prefixed, so distinct structures can never encode to the same
// byte string.
class Fingerprint {
 public:
  void tag(char c) { bytes_.push_back(c); }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void f64(double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    u64(bits);
  }

  void i32(int v) { u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))); }
  void b(bool v) { bytes_.push_back(v ? '\1' : '\0'); }

  void polygon(const Polygon& p) {
    u64(p.size());
    for (Vec2 q : p.points()) {
      f64(q.x);
      f64(q.y);
    }
  }

  void foi(const FieldOfInterest& f) {
    polygon(f.outer());
    u64(f.holes().size());
    for (const Polygon& h : f.holes()) polygon(h);
  }

  void str(std::string_view s) {
    u64(s.size());
    bytes_.append(s);
  }

  std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

}  // namespace

CacheKey CacheKey::of(const FieldOfInterest& m1,
                      const FieldOfInterest& m2_shape, double r_c,
                      const PlannerOptions& options,
                      std::string_view closure_tag) {
  ANR_CHECK_MSG(!(options.density || options.disk.custom_weight) ||
                    !closure_tag.empty(),
                "planner options carry closures (density / custom disk "
                "weight); supply a closure_tag naming them for cache keying");
  Fingerprint fp;
  fp.tag('1');  // fingerprint format version
  fp.foi(m1);
  fp.foi(m2_shape);
  fp.f64(r_c);
  fp.tag('o');
  fp.i32(static_cast<int>(options.objective));
  fp.i32(options.rotation.initial_partitions);
  fp.i32(options.rotation.depth);
  fp.i32(options.mesher.target_grid_points);
  fp.f64(options.mesher.jitter_frac);
  fp.u64(options.mesher.seed);
  fp.i32(static_cast<int>(options.disk.weights));
  fp.i32(static_cast<int>(options.disk.spacing));
  fp.f64(options.disk.tol);
  fp.i32(options.disk.max_sweeps);
  fp.f64(options.disk.over_relax);
  fp.b(static_cast<bool>(options.disk.custom_weight));
  fp.i32(options.cvt_samples);
  fp.i32(options.adjust.max_iters);
  fp.f64(options.adjust.tol);
  fp.i32(options.max_adjust_steps);
  fp.i32(static_cast<int>(options.adjustment));
  fp.i32(static_cast<int>(options.extraction));
  fp.b(options.safe_adjustment);
  fp.f64(options.transition_time);
  fp.b(options.distributed);
  fp.b(options.exhaustive_rotation);
  fp.f64(options.alpha_scale);
  fp.b(static_cast<bool>(options.density));
  // Terrain-routing options: two planners differing only in motion model
  // or cost-field knobs must never share a cache entry.
  fp.tag('t');
  fp.i32(static_cast<int>(options.trajectory.motion));
  const TerrainCostOptions& tc = options.trajectory.terrain;
  fp.f64(tc.slope_weight);
  fp.f64(tc.uphill_penalty);
  fp.i32(tc.max_cells);
  fp.f64(tc.padding_cr);
  fp.u64(tc.mud.size());
  for (const MudPatch& m : tc.mud) {
    fp.f64(m.center.x);
    fp.f64(m.center.y);
    fp.f64(m.radius);
    fp.f64(m.cost);
  }
  fp.u64(tc.keep_out.size());
  for (const Polygon& ko : tc.keep_out) fp.polygon(ko);
  fp.u64(tc.terrain.hills().size());
  for (const Hill& h : tc.terrain.hills()) {
    fp.f64(h.center.x);
    fp.f64(h.center.y);
    fp.f64(h.amplitude);
    fp.f64(h.radius);
  }
  fp.str(closure_tag);

  CacheKey key;
  key.bytes_ = fp.take();
  key.hash_ = fnv1a64(key.bytes_);
  return key;
}

PlannerCache::PlannerCache(std::size_t capacity) : capacity_(capacity) {
  ANR_CHECK(capacity_ >= 1);
}

void PlannerCache::set_observer(obs::Registry* registry,
                                const obs::Labels& labels) {
  ins_ = Instruments{};
  if (registry == nullptr || !registry->enabled()) return;
  ins_.hits = registry->counter("anr_cache_hits_total", labels,
                                "planner-cache lookups served by an entry");
  ins_.misses = registry->counter("anr_cache_misses_total", labels,
                                  "planner-cache lookups that had to build");
  ins_.coalesced =
      registry->counter("anr_cache_coalesced_total", labels,
                        "lookups that waited on an in-flight build");
  ins_.constructions = registry->counter("anr_cache_constructions_total",
                                         labels,
                                         "planners actually constructed");
  ins_.evictions = registry->counter("anr_cache_evictions_total", labels,
                                     "LRU evictions of ready planners");
  ins_.entries =
      registry->gauge("anr_cache_entries", labels, "resident cached planners");
}

std::shared_ptr<const MarchPlanner> PlannerCache::get_or_build(
    const CacheKey& key,
    const std::function<std::unique_ptr<MarchPlanner>()>& build,
    bool* constructed) {
  if (constructed != nullptr) *constructed = false;

  std::shared_ptr<Entry> entry;
  bool builder = false;
  {
    std::shared_lock<std::shared_mutex> read(map_mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) entry = it->second;
  }
  if (!entry) {
    std::unique_lock<std::shared_mutex> write(map_mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      entry = it->second;
    } else {
      if (map_.size() >= capacity_) evict_lru_locked();
      entry = std::make_shared<Entry>();
      map_.emplace(key, entry);
      obs::set(ins_.entries, static_cast<double>(map_.size()));
      builder = true;
    }
  }
  entry->last_used.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);

  if (builder) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::inc(ins_.misses);
    std::shared_ptr<const MarchPlanner> planner;
    std::exception_ptr error;
    try {
      planner = std::shared_ptr<const MarchPlanner>(build());
      ANR_CHECK_MSG(planner != nullptr, "planner build returned null");
    } catch (...) {
      error = std::current_exception();
    }
    if (error) {
      // Evict the placeholder so a later request can retry, then fail
      // this caller and every waiter.
      {
        std::unique_lock<std::shared_mutex> write(map_mutex_);
        auto it = map_.find(key);
        if (it != map_.end() && it->second == entry) map_.erase(it);
        obs::set(ins_.entries, static_cast<double>(map_.size()));
      }
      {
        std::lock_guard<std::mutex> lock(entry->m);
        entry->error = error;
        entry->done = true;
      }
      entry->cv.notify_all();
      std::rethrow_exception(error);
    }
    constructions_.fetch_add(1, std::memory_order_relaxed);
    obs::inc(ins_.constructions);
    if (constructed != nullptr) *constructed = true;
    {
      std::lock_guard<std::mutex> lock(entry->m);
      entry->planner = planner;
      entry->done = true;
    }
    entry->cv.notify_all();
    return planner;
  }

  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::inc(ins_.hits);
  std::unique_lock<std::mutex> lock(entry->m);
  if (!entry->done) {
    // Single-flight follower: another caller is building this entry.
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs::inc(ins_.coalesced);
    entry->cv.wait(lock, [&] { return entry->done; });
  }
  if (entry->error) std::rethrow_exception(entry->error);
  return entry->planner;
}

std::shared_ptr<const MarchPlanner> PlannerCache::get_or_build(
    const FieldOfInterest& m1, const FieldOfInterest& m2_shape, double r_c,
    const PlannerOptions& options, std::string_view closure_tag,
    bool* constructed) {
  CacheKey key = CacheKey::of(m1, m2_shape, r_c, options, closure_tag);
  return get_or_build(
      key,
      [&] { return std::make_unique<MarchPlanner>(m1, m2_shape, r_c, options); },
      constructed);
}

void PlannerCache::evict_lru_locked() {
  // Only ready entries are evictable; an in-flight build has waiters.
  auto victim = map_.end();
  std::uint64_t oldest = ~0ull;
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    bool done;
    {
      std::lock_guard<std::mutex> lock(it->second->m);
      done = it->second->done;
    }
    if (!done) continue;
    std::uint64_t used = it->second->last_used.load(std::memory_order_relaxed);
    if (used < oldest) {
      oldest = used;
      victim = it;
    }
  }
  if (victim != map_.end()) {
    map_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::inc(ins_.evictions);
    obs::set(ins_.entries, static_cast<double>(map_.size()));
  }
}

PlannerCacheStats PlannerCache::stats() const {
  PlannerCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.constructions = constructions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> read(map_mutex_);
    s.entries = map_.size();
  }
  return s;
}

std::size_t PlannerCache::size() const {
  std::shared_lock<std::shared_mutex> read(map_mutex_);
  return map_.size();
}

void PlannerCache::clear() {
  std::unique_lock<std::shared_mutex> write(map_mutex_);
  map_.clear();
  obs::set(ins_.entries, 0.0);
}

}  // namespace anr::runtime
