// SLO-driven admission control for the serving path.
//
// A MissionService under overload already has two blunt instruments:
// kBlock (stall the submitter) and kReject (drop on a full queue). A
// serving frontend wants something graduated: keep accepting while the
// backend is healthy, *shed* to the cheap degraded plan as pressure
// builds, and only reject outright when even shedding cannot keep the
// SLO. This module provides that ladder:
//
//   AdmissionController — turns two live signals into one scalar
//     "pressure": queue occupancy (depth / capacity) and the windowed
//     p99 of the backend's full-service end-to-end latency
//     (anr_job_e2e_full_seconds) relative to the SLO:
//
//         pressure = max(queue_depth / queue_capacity,
//                        window_p99 / slo_seconds)
//
//     The decision is a monotone step function of pressure — fixed
//     thresholds, no hysteresis state that could invert the ordering:
//
//         pressure <  shed_pressure    -> kAccept (full service)
//         pressure <  reject_pressure  -> kShed   (degraded-only plan)
//         pressure >= reject_pressure  -> kReject (typed rejection)
//
//     Monotone means: for any two observations in the same refresh
//     window, a higher pressure never gets a strictly better decision.
//     tests/test_admission.cpp asserts this property over seeded bursts.
//
//   ServingGateway — the enforcement point. Wraps a backend submit
//     function: kAccept passes the job through unchanged, kShed rewrites
//     it to ServiceLevel::kDegradedOnly (baseline planner, degraded=true
//     in the result), kReject resolves the future immediately with
//     JobStatus::kRejectedOverload. Every submitted job resolves exactly
//     one way, so accepted + shed + rejected == submitted always holds.
//
// The latency window is histogram-delta based: refresh() snapshots the
// watched histograms' bucket counts and computes the p99 of observations
// that arrived since the previous refresh (the bucket upper bound — a
// conservative overestimate). Quiet windows (fewer than min_window_count
// new samples) decay the held p99 geometrically instead of recomputing
// from noise, so pressure relaxes after a burst rather than latching.
//
// Everything here is registry-agnostic: with no registry the controller
// still works off the queue probe alone (latency pressure reads 0).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runtime/mission_service.h"

namespace anr::runtime {

/// The admission ladder, ordered by severity.
enum class AdmitDecision {
  kAccept,  ///< full service
  kShed,    ///< degraded-only service (baseline planner)
  kReject,  ///< refuse: JobStatus::kRejectedOverload
};

/// Stable lowercase name ("accept", "shed", "reject").
const char* admit_decision_name(AdmitDecision d);

struct AdmissionOptions {
  /// Target p99 end-to-end latency for full-service jobs, seconds.
  double slo_seconds = 1.0;
  /// Pressure at which full service stops and shedding starts.
  double shed_pressure = 0.75;
  /// Pressure at which even shedding stops and jobs are refused.
  /// Must be >= shed_pressure (checked at construction).
  double reject_pressure = 1.5;
  /// Occupancy denominator: the backend's (aggregate) queue capacity.
  std::size_t queue_capacity = 256;
  /// A refresh window needs at least this many new latency samples to
  /// recompute p99; below it the held p99 decays instead.
  std::size_t min_window_count = 16;
  /// Geometric decay applied to the held p99 on a quiet window, in
  /// [0, 1). 0 forgets immediately; 0.5 halves per window.
  double idle_decay = 0.5;
  /// Metrics sink (anr_admit_total{decision=...}, anr_admit_pressure,
  /// anr_admit_p99_seconds, anr_admit_occupancy). Must outlive the
  /// controller. nullptr disables.
  obs::Registry* registry = nullptr;
  obs::Labels metric_labels;
};

/// One admission decision plus the signals that produced it, so callers
/// (and the property test) can audit threshold compliance.
struct AdmitResult {
  AdmitDecision decision = AdmitDecision::kAccept;
  double pressure = 0.0;
  double occupancy = 0.0;    ///< queue_depth / queue_capacity at decision
  double p99_seconds = 0.0;  ///< held window p99 at decision
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Adds a latency histogram to the window (one per shard in a sharded
  /// deployment; deltas are merged). The histogram must outlive the
  /// controller. Call before concurrent admit()/refresh() use.
  void watch(const obs::Histogram* latency);

  /// Installs the queue-depth probe (e.g. the backend's aggregate
  /// depth). Without one, occupancy reads 0. Call before concurrent use.
  void set_queue_probe(std::function<std::size_t()> probe);

  /// Closes the current latency window: recomputes the held p99 from
  /// bucket deltas since the previous refresh (or decays it on a quiet
  /// window). Thread-safe; typically driven by the gateway's cadence.
  void refresh();

  /// Decides one job's fate at current pressure. Thread-safe, cheap
  /// (one probe call + one mutex-guarded read of the held p99).
  AdmitResult admit();

  /// The held (last-window) p99, seconds.
  double window_p99() const;

  const AdmissionOptions& options() const { return opt_; }

 private:
  struct Watched {
    const obs::Histogram* hist = nullptr;
    std::vector<std::uint64_t> prev_buckets;  ///< cumulative at last refresh
  };

  AdmissionOptions opt_;
  std::function<std::size_t()> probe_;

  mutable std::mutex mu_;  ///< guards watched_ and p99_
  std::vector<Watched> watched_;
  double p99_ = 0.0;

  struct Instruments {
    obs::Counter* by_decision[3] = {};  ///< indexed by AdmitDecision
    obs::Gauge* pressure = nullptr;
    obs::Gauge* p99 = nullptr;
    obs::Gauge* occupancy = nullptr;
  };
  Instruments ins_;
};

/// What the gateway needs from a backend: a submit and a depth probe.
/// Both MissionService and shard::ShardedMissionService fit trivially.
struct GatewayBackend {
  std::function<std::future<JobResult>(PlanJob)> submit;
  std::function<std::size_t()> queue_depth;
};

struct GatewayStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;  ///< passed through at full service
  std::uint64_t shed = 0;      ///< downgraded to kDegradedOnly
  std::uint64_t rejected = 0;  ///< resolved kRejectedOverload here
};

json::Value gateway_stats_to_json(const GatewayStats& s);

/// The admission enforcement point in front of a backend. Owns nothing
/// but counters; controller and backend must outlive it.
class ServingGateway {
 public:
  /// Installs `backend.queue_depth` as the controller's queue probe.
  /// `refresh_every` sets the window cadence: the controller is
  /// refreshed once per that many submissions (>= 1).
  ServingGateway(GatewayBackend backend, AdmissionController* controller,
                 int refresh_every = 32);

  ServingGateway(const ServingGateway&) = delete;
  ServingGateway& operator=(const ServingGateway&) = delete;

  /// Admission-checked submit. The returned future always resolves:
  /// through the backend for kAccept/kShed, immediately with
  /// kRejectedOverload for kReject. The admission verdict for shed jobs
  /// surfaces in the result (status kDegraded, degradation.degraded);
  /// when `decision` is non-null it receives the verdict synchronously
  /// (per-job classification for load harnesses).
  std::future<JobResult> submit(PlanJob job, AdmitResult* decision = nullptr);

  GatewayStats stats() const;
  AdmissionController& controller() { return *ctrl_; }

 private:
  GatewayBackend backend_;
  AdmissionController* ctrl_;
  std::uint64_t refresh_every_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace anr::runtime
