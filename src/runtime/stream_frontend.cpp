#include "runtime/stream_frontend.h"

#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "io/frame_io.h"
#include "io/job_io.h"
#include "io/plan_codec.h"
#include "io/plan_io.h"

namespace anr::runtime {

StreamFrontend::StreamFrontend(ServingGateway* gateway,
                               StreamFrontendOptions options)
    : gateway_(gateway), opt_(options) {
  ANR_CHECK_MSG(gateway_ != nullptr, "stream frontend needs a gateway");
  ANR_CHECK(opt_.max_inflight >= 1);
}

StreamStats StreamFrontend::serve(std::istream& in, std::ostream& out) {
  stop_.store(false, std::memory_order_relaxed);
  StreamStats stats;

  std::mutex mu;
  std::condition_variable cv_push;  // reader waits for window space
  std::condition_variable cv_pop;   // writer waits for work
  std::deque<Pending> pending;
  bool reader_done = false;

  std::thread writer([&] {
    for (;;) {
      Pending item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_pop.wait(lock, [&] { return !pending.empty() || reader_done; });
        if (pending.empty()) return;
        item = std::move(pending.front());
        pending.pop_front();
      }
      cv_push.notify_one();
      JobResult r = item.future.get();
      const bool as_binary = item.binary_plan && item.include_plan && r.ok;
      if (as_binary) {
        // JSON headline without the embedded plan; the plan rides as a
        // codec document behind it in the same frame.
        const std::string headline = result_to_json(r, false).dump();
        write_frame(out, FrameType::kResponsePlan,
                    make_response_plan_payload(headline,
                                               encode_plan(r.plan)));
        ++stats.plan_frames;
      } else {
        write_frame(out, FrameType::kResponse,
                    result_to_json(r, item.include_plan).dump());
      }
      ++stats.responses;
      out.flush();
    }
  });

  auto enqueue = [&](Pending&& p) {
    std::unique_lock<std::mutex> lock(mu);
    cv_push.wait(lock, [&] { return pending.size() < opt_.max_inflight; });
    pending.push_back(std::move(p));
    lock.unlock();
    cv_pop.notify_one();
  };
  auto finish = [&](const std::string* terminal_error) {
    {
      std::lock_guard<std::mutex> lock(mu);
      reader_done = true;
    }
    cv_pop.notify_all();
    writer.join();  // every accepted request answered before the error
    if (terminal_error != nullptr) {
      write_frame(out, FrameType::kError, *terminal_error);
      out.flush();
      ++stats.protocol_errors;
    }
    return stats;
  };

  std::map<std::string, std::vector<Vec2>> deployments;
  std::uint64_t frame_no = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    Frame frame;
    std::string why;
    const FrameReadStatus st = read_frame(in, &frame, &why);
    if (st == FrameReadStatus::kEof) break;
    if (st == FrameReadStatus::kError) return finish(&why);
    ++stats.frames_read;
    ++frame_no;
    if (frame.type != FrameType::kRequest) {
      why = std::string("unexpected ") + frame_type_name(frame.type) +
            " frame from client";
      return finish(&why);
    }
    Pending p;
    try {
      JobRequest req = job_from_json(json::parse(frame.payload), &deployments);
      if (req.job.id.empty()) {
        req.job.id = "frame-" + std::to_string(frame_no);
      }
      p.include_plan = req.include_plan;
      p.binary_plan = req.binary_plan;
      p.future = gateway_->submit(std::move(req.job));
      ++stats.requests;
    } catch (const std::exception& e) {
      // Malformed request: answer in-band and keep serving, like batch
      // mode does for a bad NDJSON line.
      JobResult bad;
      bad.id = "frame-" + std::to_string(frame_no);
      try {
        const json::Value v = json::parse(frame.payload);
        if (v.is_object() && v.as_object().count("id") &&
            v.at("id").is_string() && !v.at("id").as_string().empty()) {
          bad.id = v.at("id").as_string();
        }
      } catch (...) {
      }
      bad.ok = false;
      bad.status = JobStatus::kRejectedInvalid;
      bad.error = std::string("bad request: ") + e.what();
      std::promise<JobResult> prom;
      prom.set_value(std::move(bad));
      p.future = prom.get_future();
      ++stats.bad_requests;
    }
    enqueue(std::move(p));
  }
  return finish(nullptr);
}

}  // namespace anr::runtime
