// PlannerCache: share MarchPlanner construction across planning jobs.
//
// Constructing a MarchPlanner is the dominant cost of a one-shot plan —
// it meshes M2, solves the harmonic disk map, and samples the adjustment
// CVT (see src/march/planner.h). A service answering many jobs against a
// handful of target geometries should pay that once per distinct
// (M1, M2 shape, r_c, PlannerOptions) and share the planner, which is
// safe because MarchPlanner::plan() is const and thread-safe.
//
// The cache keys planners by a *content* fingerprint: the canonical bytes
// of both FoI polygon sets, r_c, and every PlannerOptions field, plus a
// caller-supplied tag naming any closures (density, custom disk weights)
// that cannot be fingerprinted structurally. Key equality compares the
// full byte string, so a 64-bit hash collision can never alias two
// different configurations.
//
// Concurrency: lookups take a shared lock; a miss inserts a placeholder
// under an exclusive lock and constructs *outside* any map lock
// (single-flight — concurrent misses on the same key build once, the
// rest wait on the entry). Construction failures propagate to every
// waiter and evict the placeholder so a later request can retry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "march/planner.h"
#include "obs/metrics.h"

namespace anr::runtime {

/// Content-identity of a planner configuration. Holds the canonical byte
/// encoding (for exact equality) and its FNV-1a hash (for bucketing).
class CacheKey {
 public:
  /// Fingerprints the full planner configuration. `closure_tag` must be
  /// non-empty when `options.density` or `options.disk.custom_weight` is
  /// set (std::function targets cannot be hashed structurally); throws
  /// ContractViolation otherwise.
  static CacheKey of(const FieldOfInterest& m1, const FieldOfInterest& m2_shape,
                     double r_c, const PlannerOptions& options,
                     std::string_view closure_tag = {});

  bool operator==(const CacheKey& other) const {
    return hash_ == other.hash_ && bytes_ == other.bytes_;
  }
  std::uint64_t hash() const { return hash_; }
  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
  std::uint64_t hash_ = 0;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(k.hash());
  }
};

struct PlannerCacheStats {
  std::uint64_t hits = 0;    ///< lookups served by an existing entry
                             ///< (ready or single-flight in progress)
  std::uint64_t misses = 0;  ///< lookups that had to create the entry
  std::uint64_t coalesced = 0;  ///< hits that waited on an in-flight build
                                ///< (single-flight followers)
  std::uint64_t constructions = 0;  ///< planners actually built
  std::uint64_t evictions = 0;
  std::size_t entries = 0;   ///< current resident planners
};

/// Thread-safe, capacity-bounded planner cache with single-flight
/// construction. Evicts the least-recently-used *ready* entry when full.
class PlannerCache {
 public:
  explicit PlannerCache(std::size_t capacity = 64);

  /// Returns the planner for `key`, constructing it via `build` if absent.
  /// Under concurrent misses on the same key exactly one caller builds;
  /// the others block until the build finishes. If `constructed` is
  /// non-null it is set to true only for the caller that built.
  /// Exceptions thrown by `build` are rethrown in every waiting caller.
  std::shared_ptr<const MarchPlanner> get_or_build(
      const CacheKey& key,
      const std::function<std::unique_ptr<MarchPlanner>()>& build,
      bool* constructed = nullptr);

  /// Convenience: fingerprint + build from the configuration itself.
  std::shared_ptr<const MarchPlanner> get_or_build(
      const FieldOfInterest& m1, const FieldOfInterest& m2_shape, double r_c,
      const PlannerOptions& options, std::string_view closure_tag = {},
      bool* constructed = nullptr);

  PlannerCacheStats stats() const;
  std::size_t size() const;
  void clear();

  /// Mirrors the cache counters into `registry` (anr_cache_*_total, the
  /// anr_cache_entries gauge). nullptr detaches. Call before concurrent
  /// use; lookups only read the resolved handles. `labels` is attached to
  /// every series — a sharded deployment labels each shard's cache (e.g.
  /// {{"shard", "2"}}) so per-shard counters stay distinguishable in one
  /// registry instead of silently aggregating.
  void set_observer(obs::Registry* registry, const obs::Labels& labels = {});

 private:
  struct Instruments {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* constructions = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* entries = nullptr;
  };

  struct Entry {
    std::mutex m;
    std::condition_variable cv;
    std::shared_ptr<const MarchPlanner> planner;  // set once, under m
    std::exception_ptr error;                     // set instead on failure
    bool done = false;
    std::atomic<std::uint64_t> last_used{0};
  };

  void evict_lru_locked();

  std::size_t capacity_;
  mutable std::shared_mutex map_mutex_;
  std::unordered_map<CacheKey, std::shared_ptr<Entry>, CacheKeyHash> map_;
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> constructions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  Instruments ins_;
};

}  // namespace anr::runtime
