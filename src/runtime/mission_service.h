// MissionService: a concurrent planning runtime for march jobs.
//
// The library's callers so far construct a MarchPlanner and call plan()
// inline. A deployment serving many swarms and many target geometries
// wants planning as a *service*: jobs go into a bounded queue, a fixed
// pool of workers executes them, planners are shared through a
// PlannerCache so each distinct (M1, M2, r_c, options) pays the expensive
// M2 precomputation once, and callers get std::futures.
//
// Backpressure: the queue is bounded. When full, submit() either blocks
// until a slot frees (OverflowPolicy::kBlock, the default) or resolves
// the returned future immediately with a rejection (kReject) — pick
// reject for latency-sensitive front ends that would rather shed load.
//
// Shutdown is graceful: shutdown() stops intake, lets the workers drain
// every job already accepted, and joins. The destructor does the same.
//
// Thread-safety contract (audited in tests/test_runtime.cpp): a cached
// MarchPlanner is shared across workers, so MarchPlanner::plan() const
// must be — and is — free of shared mutable state. Closures passed in
// PlannerOptions (density, custom disk weights) must themselves be pure
// and thread-safe, and must be named by PlanJob::closure_tag so the
// cache can tell configurations apart.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "io/json.h"
#include "march/planner.h"
#include "obs/metrics.h"
#include "runtime/planner_cache.h"

namespace anr {
class HungarianMarchPlanner;
}

namespace anr::runtime {

/// What submit() does when the job queue is full.
enum class OverflowPolicy {
  kBlock,   ///< block the submitter until a slot frees
  kReject,  ///< resolve the future immediately with ok=false
};

struct ServiceOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int threads = 0;
  /// Intra-plan threads: how many arena workers each plan() may fan out
  /// to (rotation candidates, harmonic color classes, interpolation and
  /// centroid batches — see common/task_arena.h). The default 1 spends
  /// all parallelism at the job level; raise it to trade job throughput
  /// for single-plan latency. Applied process-wide at construction
  /// (set_arena_threads); 0 leaves the process setting untouched. Plan
  /// bytes are identical at every value — this is a latency knob, never
  /// a result knob — so it is not part of the planner-cache fingerprint.
  int intra_threads = 1;
  std::size_t queue_capacity = 256;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Planner cache capacity (distinct configurations held).
  std::size_t cache_capacity = 64;
  /// Per-stage latency samples kept for the p95 estimate.
  std::size_t latency_reservoir = 4096;
  /// Additional planning attempts after a planner error (bounded retry).
  int max_retries = 1;
  /// Plan through MarchPlanner::plan_robust() — degraded fallback chain
  /// and typed errors instead of exceptions. Disable to reproduce the
  /// strict throw-on-anything planner behavior.
  bool degraded_fallback = true;
  /// How often the deadline watchdog sweeps the queue.
  double watchdog_period_seconds = 0.01;
  /// Metrics sink. When set, the service exports job counters by final
  /// status (anr_jobs_total{status=...}), a queue-depth gauge, submit-to-
  /// resolution and queue-wait latency histograms, the planner-cache
  /// counters, and every planner the cache builds is attached to the same
  /// registry (per-stage spans, probe counters). Must outlive the
  /// service. nullptr (or an obs::NullRegistry) disables exporting.
  obs::Registry* registry = nullptr;
  /// Labels attached to every metric series this service (and its cache)
  /// registers. A sharded router gives each member service a distinct
  /// {{"shard", "<i>"}} label so per-shard series stay separable in the
  /// shared registry rather than all shards incrementing one aggregate.
  obs::Labels metric_labels;
};

/// Typed outcome of one job.
enum class JobStatus {
  kOk,                ///< planned by the primary pipeline
  kDegraded,          ///< planned, but by a fallback mode
  kRejectedQueueFull, ///< shed by kReject backpressure
  kRejectedInvalid,   ///< failed input validation at submit()
  kRejectedShutdown,  ///< submitted after shutdown()
  kRejectedOverload,  ///< refused by SLO-driven admission control
  kDeadlineExpired,   ///< spent longer than its deadline in the queue
  kError,             ///< every planning attempt failed
};

/// Stable lowercase name ("ok", "rejected_invalid", ...).
const char* job_status_name(JobStatus status);

/// What quality of service a job is entitled to. The admission layer
/// (runtime/admission.h) downgrades to kDegradedOnly under SLO pressure.
enum class ServiceLevel {
  kFull,          ///< the paper pipeline (plan / plan_robust chain)
  kDegradedOnly,  ///< shed: skip straight to the cheap baseline fallback
};

/// One planning job: the full planner configuration plus the swarm state.
struct PlanJob {
  std::string id;                ///< echoed in the result; free-form
  FieldOfInterest m1;
  FieldOfInterest m2_shape;
  double r_c = 80.0;
  Vec2 m2_offset{};
  std::vector<Vec2> positions;   ///< current deployment (inside M1)
  PlannerOptions options;
  /// Names any closures in `options` for cache keying (see PlannerCache).
  std::string closure_tag;
  /// Queue-wait deadline in seconds; 0 disables. A job still queued this
  /// long after submit() resolves as kDeadlineExpired without planning.
  double deadline_seconds = 0.0;
  /// Shed jobs (kDegradedOnly) bypass the planner cache and the primary
  /// pipeline entirely: they plan through a memoized Hungarian baseline,
  /// resolve as kDegraded with degradation.mode == kBaselineFallback,
  /// and cost a fraction of a full plan — the overload escape valve.
  ServiceLevel level = ServiceLevel::kFull;
};

struct JobResult {
  std::string id;
  bool ok = false;               ///< a plan was produced (kOk or kDegraded)
  JobStatus status = JobStatus::kError;
  std::string error;             ///< set when !ok
  MarchPlan plan;                ///< valid when ok
  /// Fallback-chain record when the service planned via plan_robust().
  DegradationRecord degradation;
  int retries = 0;               ///< extra planning attempts consumed
  bool cache_hit = false;        ///< planner came from the cache
  double queue_seconds = 0.0;    ///< time spent waiting in the queue
  /// Time inside the cache lookup: the construction itself for the job
  /// that built, the single-flight wait for jobs that arrived while the
  /// planner was being built, ~0 for warm hits.
  double build_seconds = 0.0;
  double plan_seconds = 0.0;     ///< MarchPlanner::plan() proper
};

/// Latency summary over one pipeline stage, in seconds.
struct StageStats {
  std::uint64_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;          ///< planned by the primary pipeline
  std::uint64_t degraded = 0;           ///< planned by a fallback mode
  std::uint64_t errored = 0;            ///< every planning attempt failed
  std::uint64_t rejected_queue_full = 0;///< shed by kReject backpressure
  std::uint64_t rejected_invalid = 0;   ///< failed submit() validation
  std::uint64_t rejected_shutdown = 0;  ///< submitted after shutdown()
  std::uint64_t deadline_expired = 0;   ///< reaped by the queue watchdog
  std::uint64_t retried = 0;            ///< extra planning attempts
  std::uint64_t handoffs = 0;           ///< jobs accepted via submit_pending
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  std::size_t active = 0;               ///< jobs currently inside a worker
  int workers = 0;
  PlannerCacheStats cache;
  StageStats queue_wait;     ///< submit -> worker pickup
  StageStats planner_build;  ///< cache-miss planner constructions only
  StageStats plan_exec;      ///< plan() proper
};

/// Serializes a stats snapshot (bench output, service introspection).
/// The cache object carries a derived "hit_rate" = hits / (hits + misses)
/// (0 when the cache was never consulted).
json::Value stats_to_json(const ServiceStats& s);

/// A job still waiting in the queue, extracted together with its promise
/// and original enqueue time so it can be re-queued elsewhere without the
/// submitter noticing (the future they hold resolves wherever the job
/// finally runs, and queue-deadline accounting keeps the original clock).
struct PendingJob {
  PlanJob job;
  std::promise<JobResult> promise;
  std::chrono::steady_clock::time_point enqueued;
};

class MissionService {
 public:
  explicit MissionService(ServiceOptions options = {});
  ~MissionService();  // graceful: drains accepted jobs, then joins

  MissionService(const MissionService&) = delete;
  MissionService& operator=(const MissionService&) = delete;

  /// Enqueues a job. The future always resolves (never broken), and
  /// JobResult::status says how: planned (kOk/kDegraded), typed rejection
  /// (invalid input, queue full under kReject, post-shutdown submit),
  /// deadline expiry, or kError after the bounded retries ran out.
  /// Input validation happens here, synchronously: malformed jobs
  /// (empty swarm, non-finite positions/offset, r_c <= 0, negative
  /// deadline) never reach a worker.
  std::future<JobResult> submit(PlanJob job);

  /// Submits every job, waits for all, returns results in input order.
  std::vector<JobResult> run_batch(std::vector<PlanJob> jobs);

  /// Stops intake, drains every accepted job, joins the workers.
  /// Idempotent.
  void shutdown();

  /// Removes and returns every job still waiting in the queue, promises
  /// included, so a router can hand them to another service (shard drain /
  /// failover). Jobs a worker already picked up are not affected — they
  /// finish here. Wakes blocked submitters (their slots freed).
  std::vector<PendingJob> take_queued();

  /// Re-queues a job taken from a peer service, preserving its promise
  /// and original enqueue time (queue deadlines keep the original clock).
  /// Handed-off jobs were already accepted upstream, so they bypass the
  /// capacity check — backpressure applies at first submission only — and
  /// are never shed; after shutdown() the promise resolves
  /// kRejectedShutdown. Counted in ServiceStats::handoffs.
  void submit_pending(PendingJob&& pending);

  /// Jobs currently being executed by a worker.
  std::size_t active_jobs() const;

  /// Jobs currently waiting in the queue. Cheap (one mutex acquisition);
  /// the admission controller polls this as its occupancy signal.
  std::size_t queue_depth() const;
  std::size_t queue_capacity() const { return opt_.queue_capacity; }

  /// Blocks until the queue is empty and no worker is executing a job.
  /// Only guaranteed to terminate once new submissions stop arriving.
  void wait_idle() const;

  ServiceStats stats() const;
  int worker_count() const { return static_cast<int>(workers_.size()); }

 private:
  using QueuedJob = PendingJob;

  /// Bounded latency reservoir: exact count/min/max/mean, deterministic
  /// ring replacement for the p95 sample set.
  struct StageRecorder {
    void record(double seconds, std::size_t reservoir_cap);
    StageStats snapshot() const;

    mutable std::mutex m;
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    std::vector<double> samples;
    std::size_t next_slot = 0;
  };

  void worker_loop();
  void watchdog_loop();
  /// Decrements the active-job count and signals idle waiters.
  void finish_active();
  JobResult execute(PlanJob&& job, double queue_seconds);
  JobResult execute_degraded(PlanJob&& job, double queue_seconds);
  /// Memoized Hungarian baseline for shed jobs: one per distinct
  /// (planner configuration, robot count). `hit` reports reuse.
  std::shared_ptr<const HungarianMarchPlanner> baseline_for(const PlanJob& job,
                                                            bool* hit);
  /// nullopt when the job is valid; otherwise the rejection message.
  static std::optional<std::string> validate(const PlanJob& job);

  /// Metric handles (all null when ServiceOptions::registry is unset).
  struct Instruments {
    obs::Gauge* queue_depth = nullptr;
    obs::Counter* submitted = nullptr;
    obs::Counter* retried = nullptr;
    obs::Counter* by_status[8] = {};  ///< indexed by JobStatus
    obs::Histogram* e2e_seconds = nullptr;
    obs::Histogram* e2e_full_seconds = nullptr;  ///< full-level jobs only
    obs::Histogram* queue_seconds = nullptr;
    obs::Histogram* build_seconds = nullptr;
  };
  void count_job(JobStatus status) const;

  ServiceOptions opt_;
  PlannerCache cache_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_push_cv_;  ///< waits for space (kBlock)
  std::condition_variable queue_pop_cv_;   ///< workers wait for jobs
  std::condition_variable watchdog_cv_;    ///< wakes the watchdog early
  mutable std::condition_variable idle_cv_;  ///< queue empty + no active job
  std::deque<QueuedJob> queue_;
  bool accepting_ = true;
  std::size_t queue_high_water_ = 0;
  std::size_t active_ = 0;  ///< jobs inside a worker (guarded by queue_mutex_)

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::once_flag shutdown_once_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> errored_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_invalid_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> handoffs_{0};
  StageRecorder queue_wait_;
  StageRecorder planner_build_;
  StageRecorder plan_exec_;
  Instruments ins_;

  /// Shed-path planner memo (see PlanJob::level). Separate from the
  /// MarchPlanner cache on purpose: baselines are tiny, and an overloaded
  /// service must never wait behind a single-flight full-planner build.
  mutable std::mutex baseline_mutex_;
  std::unordered_map<std::string,
                     std::shared_ptr<const HungarianMarchPlanner>>
      baselines_;
};

}  // namespace anr::runtime
