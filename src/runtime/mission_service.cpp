#include "runtime/mission_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "baselines/hungarian_march.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/task_arena.h"

namespace anr::runtime {

namespace {

json::Value stage_to_json(const StageStats& s) {
  json::Object o;
  o.emplace("count", s.count);
  o.emplace("min_s", s.min);
  o.emplace("mean_s", s.mean);
  o.emplace("p95_s", s.p95);
  o.emplace("max_s", s.max);
  return json::Value(std::move(o));
}

obs::Labels with_label(obs::Labels base, const char* key, const char* value) {
  base.emplace_back(key, value);
  return base;
}

}  // namespace

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kDegraded:
      return "degraded";
    case JobStatus::kRejectedQueueFull:
      return "rejected_queue_full";
    case JobStatus::kRejectedInvalid:
      return "rejected_invalid";
    case JobStatus::kRejectedShutdown:
      return "rejected_shutdown";
    case JobStatus::kRejectedOverload:
      return "rejected_overload";
    case JobStatus::kDeadlineExpired:
      return "deadline_expired";
    case JobStatus::kError:
      return "error";
  }
  return "unknown";
}

json::Value stats_to_json(const ServiceStats& s) {
  json::Object o;
  o.emplace("submitted", s.submitted);
  o.emplace("completed", s.completed);
  o.emplace("degraded", s.degraded);
  o.emplace("errored", s.errored);
  o.emplace("rejected_queue_full", s.rejected_queue_full);
  o.emplace("rejected_invalid", s.rejected_invalid);
  o.emplace("rejected_shutdown", s.rejected_shutdown);
  o.emplace("deadline_expired", s.deadline_expired);
  o.emplace("retried", s.retried);
  o.emplace("handoffs", s.handoffs);
  o.emplace("queue_depth", s.queue_depth);
  o.emplace("queue_high_water", s.queue_high_water);
  o.emplace("active", s.active);
  o.emplace("workers", s.workers);
  json::Object cache;
  cache.emplace("hits", s.cache.hits);
  cache.emplace("misses", s.cache.misses);
  cache.emplace("coalesced", s.cache.coalesced);
  cache.emplace("constructions", s.cache.constructions);
  cache.emplace("evictions", s.cache.evictions);
  cache.emplace("entries", s.cache.entries);
  const std::uint64_t lookups = s.cache.hits + s.cache.misses;
  cache.emplace("hit_rate",
                lookups > 0
                    ? static_cast<double>(s.cache.hits) /
                          static_cast<double>(lookups)
                    : 0.0);
  o.emplace("cache", std::move(cache));
  json::Object stages;
  stages.emplace("queue_wait", stage_to_json(s.queue_wait));
  stages.emplace("planner_build", stage_to_json(s.planner_build));
  stages.emplace("plan_exec", stage_to_json(s.plan_exec));
  o.emplace("stages", std::move(stages));
  return json::Value(std::move(o));
}

void MissionService::StageRecorder::record(double seconds,
                                           std::size_t reservoir_cap) {
  std::lock_guard<std::mutex> lock(m);
  if (count == 0 || seconds < min) min = seconds;
  if (count == 0 || seconds > max) max = seconds;
  sum += seconds;
  ++count;
  if (reservoir_cap == 0) return;
  if (samples.size() < reservoir_cap) {
    samples.push_back(seconds);
  } else {
    samples[next_slot] = seconds;
    next_slot = (next_slot + 1) % reservoir_cap;
  }
}

StageStats MissionService::StageRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(m);
  StageStats s;
  s.count = count;
  if (count == 0) return s;
  s.min = min;
  s.max = max;
  s.mean = sum / static_cast<double>(count);
  if (!samples.empty()) {
    std::vector<double> sorted = samples;
    std::size_t idx = (sorted.size() * 95) / 100;
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                     sorted.end());
    s.p95 = sorted[idx];
  }
  return s;
}

MissionService::MissionService(ServiceOptions options)
    : opt_(options),
      cache_(options.cache_capacity) {
  ANR_CHECK(opt_.queue_capacity >= 1);
  if (opt_.registry != nullptr && opt_.registry->enabled()) {
    obs::Registry& reg = *opt_.registry;
    const obs::Labels& base = opt_.metric_labels;
    ins_.queue_depth =
        reg.gauge("anr_service_queue_depth", base, "jobs waiting in the queue");
    ins_.submitted = reg.counter("anr_jobs_submitted_total", base,
                                 "jobs handed to submit()");
    ins_.retried = reg.counter("anr_job_retries_total", base,
                               "extra planning attempts after an error");
    for (int s = 0; s <= static_cast<int>(JobStatus::kError); ++s) {
      ins_.by_status[s] =
          reg.counter("anr_jobs_total",
                      with_label(base, "status",
                                 job_status_name(static_cast<JobStatus>(s))),
                      "jobs resolved, by final status");
    }
    ins_.e2e_seconds = reg.histogram("anr_job_e2e_seconds", base,
                                     "submit-to-resolution latency");
    ins_.e2e_full_seconds =
        reg.histogram("anr_job_e2e_full_seconds", base,
                      "submit-to-resolution latency, full-service jobs only "
                      "(the admission controller's SLO signal)");
    ins_.queue_seconds =
        reg.histogram("anr_job_queue_seconds", base, "queue-wait latency");
    ins_.build_seconds = reg.histogram(
        "anr_planner_build_seconds", base, "cache-miss planner constructions");
    cache_.set_observer(opt_.registry, base);
  }
  int threads = opt_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (opt_.intra_threads >= 1) set_arena_threads(opt_.intra_threads);
  ANR_CHECK(opt_.max_retries >= 0);
  ANR_CHECK(opt_.watchdog_period_seconds > 0.0);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

MissionService::~MissionService() { shutdown(); }

void MissionService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      accepting_ = false;
    }
    // Wake everyone: blocked submitters give up, workers drain the queue
    // and exit once it is empty, the watchdog stops sweeping.
    queue_push_cv_.notify_all();
    queue_pop_cv_.notify_all();
    watchdog_cv_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    if (watchdog_.joinable()) watchdog_.join();
  });
}

std::optional<std::string> MissionService::validate(const PlanJob& job) {
  if (job.positions.empty()) return "job has no robots";
  for (std::size_t r = 0; r < job.positions.size(); ++r) {
    if (!std::isfinite(job.positions[r].x) ||
        !std::isfinite(job.positions[r].y)) {
      return "non-finite position for robot " + std::to_string(r);
    }
  }
  if (!std::isfinite(job.r_c) || job.r_c <= 0.0) {
    return "communication range must be positive";
  }
  if (!std::isfinite(job.m2_offset.x) || !std::isfinite(job.m2_offset.y)) {
    return "non-finite m2 offset";
  }
  if (!std::isfinite(job.deadline_seconds) || job.deadline_seconds < 0.0) {
    return "deadline must be non-negative";
  }
  return std::nullopt;
}

void MissionService::count_job(JobStatus status) const {
  obs::inc(ins_.by_status[static_cast<int>(status)]);
}

std::future<JobResult> MissionService::submit(PlanJob job) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::inc(ins_.submitted);
  std::promise<JobResult> promise;
  std::future<JobResult> future = promise.get_future();

  auto reject = [&](JobStatus status, const std::string& why,
                    std::atomic<std::uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
    count_job(status);
    JobResult r;
    r.id = job.id;
    r.ok = false;
    r.status = status;
    r.error = why;
    promise.set_value(std::move(r));
    return std::move(future);
  };

  if (auto why = validate(job)) {
    return reject(JobStatus::kRejectedInvalid, *why, rejected_invalid_);
  }

  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (!accepting_) {
    return reject(JobStatus::kRejectedShutdown, "service is shut down",
                  rejected_shutdown_);
  }
  if (queue_.size() >= opt_.queue_capacity) {
    if (opt_.overflow == OverflowPolicy::kReject) {
      return reject(JobStatus::kRejectedQueueFull,
                    "queue full (capacity " +
                        std::to_string(opt_.queue_capacity) + ")",
                    rejected_queue_full_);
    }
    queue_push_cv_.wait(lock, [this] {
      return !accepting_ || queue_.size() < opt_.queue_capacity;
    });
    if (!accepting_) {
      return reject(JobStatus::kRejectedShutdown, "service is shut down",
                    rejected_shutdown_);
    }
  }
  queue_.push_back(QueuedJob{std::move(job), std::move(promise),
                             std::chrono::steady_clock::now()});
  queue_high_water_ = std::max(queue_high_water_, queue_.size());
  obs::set(ins_.queue_depth, static_cast<double>(queue_.size()));
  lock.unlock();
  queue_pop_cv_.notify_one();
  return future;
}

std::vector<JobResult> MissionService::run_batch(std::vector<PlanJob> jobs) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (PlanJob& job : jobs) futures.push_back(submit(std::move(job)));
  std::vector<JobResult> results;
  results.reserve(futures.size());
  for (std::future<JobResult>& f : futures) results.push_back(f.get());
  return results;
}

void MissionService::worker_loop() {
  for (;;) {
    QueuedJob item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_pop_cv_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // draining done and intake closed
      item = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      obs::set(ins_.queue_depth, static_cast<double>(queue_.size()));
    }
    queue_push_cv_.notify_one();

    double waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - item.enqueued)
                        .count();
    // Deadline check at pickup backstops the watchdog's sweep period.
    if (item.job.deadline_seconds > 0.0 &&
        waited > item.job.deadline_seconds) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      count_job(JobStatus::kDeadlineExpired);
      obs::observe(ins_.e2e_seconds, waited);
      if (item.job.level == ServiceLevel::kFull) {
        obs::observe(ins_.e2e_full_seconds, waited);
      }
      JobResult r;
      r.id = item.job.id;
      r.status = JobStatus::kDeadlineExpired;
      r.error = "deadline expired after " + std::to_string(waited) +
                "s in queue";
      r.queue_seconds = waited;
      item.promise.set_value(std::move(r));
      finish_active();
      continue;
    }
    queue_wait_.record(waited, opt_.latency_reservoir);
    obs::observe(ins_.queue_seconds, waited);
    const ServiceLevel level = item.job.level;
    JobResult result = execute(std::move(item.job), waited);
    switch (result.status) {
      case JobStatus::kOk:
        completed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case JobStatus::kDegraded:
        degraded_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        errored_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    count_job(result.status);
    const double e2e = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - item.enqueued)
                           .count();
    obs::observe(ins_.e2e_seconds, e2e);
    if (level == ServiceLevel::kFull) {
      obs::observe(ins_.e2e_full_seconds, e2e);
    }
    item.promise.set_value(std::move(result));
    finish_active();
  }
}

void MissionService::finish_active() {
  bool idle;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    --active_;
    idle = queue_.empty() && active_ == 0;
  }
  if (idle) idle_cv_.notify_all();
}

std::vector<PendingJob> MissionService::take_queued() {
  std::vector<PendingJob> taken;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    taken.reserve(queue_.size());
    while (!queue_.empty()) {
      taken.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    obs::set(ins_.queue_depth, 0.0);
  }
  queue_push_cv_.notify_all();  // slots freed for blocked submitters
  if (!taken.empty()) idle_cv_.notify_all();
  return taken;
}

void MissionService::submit_pending(PendingJob&& pending) {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (accepting_) {
      handoffs_.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(std::move(pending));
      queue_high_water_ = std::max(queue_high_water_, queue_.size());
      obs::set(ins_.queue_depth, static_cast<double>(queue_.size()));
      lock.unlock();
      queue_pop_cv_.notify_one();
      return;
    }
  }
  // Shut down: the promise must still resolve — the original submitter
  // holds the future.
  rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
  count_job(JobStatus::kRejectedShutdown);
  JobResult r;
  r.id = pending.job.id;
  r.ok = false;
  r.status = JobStatus::kRejectedShutdown;
  r.error = "service is shut down";
  pending.promise.set_value(std::move(r));
}

std::size_t MissionService::active_jobs() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return active_;
}

std::size_t MissionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

void MissionService::wait_idle() const {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void MissionService::watchdog_loop() {
  const auto period =
      std::chrono::duration<double>(opt_.watchdog_period_seconds);
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    if (watchdog_cv_.wait_for(lock, period, [this] { return !accepting_; })) {
      return;  // shutdown: workers drain whatever is left
    }
    std::vector<QueuedJob> expired;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = queue_.begin(); it != queue_.end();) {
      double waited = std::chrono::duration<double>(now - it->enqueued).count();
      if (it->job.deadline_seconds > 0.0 &&
          waited > it->job.deadline_seconds) {
        expired.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (expired.empty()) continue;
    lock.unlock();
    queue_push_cv_.notify_all();  // slots freed
    idle_cv_.notify_all();        // the sweep may have emptied the queue
    for (QueuedJob& q : expired) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      count_job(JobStatus::kDeadlineExpired);
      double waited =
          std::chrono::duration<double>(now - q.enqueued).count();
      obs::observe(ins_.e2e_seconds, waited);
      if (q.job.level == ServiceLevel::kFull) {
        obs::observe(ins_.e2e_full_seconds, waited);
      }
      JobResult r;
      r.id = q.job.id;
      r.status = JobStatus::kDeadlineExpired;
      r.error = "deadline expired after " + std::to_string(waited) +
                "s in queue";
      r.queue_seconds = waited;
      q.promise.set_value(std::move(r));
    }
    lock.lock();
  }
}

std::shared_ptr<const HungarianMarchPlanner> MissionService::baseline_for(
    const PlanJob& job, bool* hit) {
  // Key on everything that feeds HungarianMarchPlanner construction: the
  // full planner fingerprint (a superset of the fields it reads — cheap
  // over-segmentation, never aliasing) plus the robot count, which sizes
  // the precomputed CVT coverage.
  CacheKey key = CacheKey::of(job.m1, job.m2_shape, job.r_c, job.options,
                              job.closure_tag);
  const std::string memo_key =
      key.bytes() + "#n=" + std::to_string(job.positions.size());
  {
    std::lock_guard<std::mutex> lock(baseline_mutex_);
    auto it = baselines_.find(memo_key);
    if (it != baselines_.end()) {
      if (hit != nullptr) *hit = true;
      return it->second;
    }
  }
  if (hit != nullptr) *hit = false;
  BaselineOptions base;
  base.transition_time = job.options.transition_time;
  auto built = std::make_shared<const HungarianMarchPlanner>(
      job.m1, job.m2_shape, job.r_c,
      static_cast<int>(job.positions.size()), base);
  std::lock_guard<std::mutex> lock(baseline_mutex_);
  // No single-flight here: concurrent misses may build twice, which is
  // acceptable for a baseline and keeps the shed path wait-free against
  // stalls in a peer's construction.
  auto [it, inserted] = baselines_.emplace(memo_key, std::move(built));
  const std::size_t cap = std::max<std::size_t>(1, opt_.cache_capacity);
  if (inserted && baselines_.size() > cap) {
    // Arbitrary eviction (whatever buckets first), never the entry we
    // just inserted. This is an overload escape valve, not a tuned cache.
    auto victim = baselines_.begin();
    if (victim->first == memo_key) ++victim;
    baselines_.erase(victim);
  }
  return it->second;
}

JobResult MissionService::execute_degraded(PlanJob&& job,
                                           double queue_seconds) {
  JobResult result;
  result.id = job.id;
  result.queue_seconds = queue_seconds;
  try {
    Stopwatch build_sw;
    bool hit = false;
    std::shared_ptr<const HungarianMarchPlanner> baseline =
        baseline_for(job, &hit);
    result.build_seconds = build_sw.seconds();
    result.cache_hit = hit;
    if (!hit) {
      planner_build_.record(result.build_seconds, opt_.latency_reservoir);
      obs::observe(ins_.build_seconds, result.build_seconds);
    }
    Stopwatch plan_sw;
    result.plan = baseline->plan(job.positions, job.m2_offset);
    result.plan_seconds = plan_sw.seconds();
    plan_exec_.record(result.plan_seconds, opt_.latency_reservoir);
    result.ok = true;
    // A shed job is degraded by definition: the caller asked for (at
    // most) the baseline, so the result always reports the fallback mode.
    result.status = JobStatus::kDegraded;
    result.degradation.degraded = true;
    result.degradation.mode = PlanMode::kBaselineFallback;
    result.degradation.attempts.push_back(
        PlanAttempt{PlanMode::kBaselineFallback, true, ""});
  } catch (const std::exception& e) {
    result.ok = false;
    result.status = JobStatus::kError;
    result.error = e.what();
    result.degradation.attempts.push_back(
        PlanAttempt{PlanMode::kBaselineFallback, false, e.what()});
  }
  return result;
}

JobResult MissionService::execute(PlanJob&& job, double queue_seconds) {
  if (job.level == ServiceLevel::kDegradedOnly) {
    return execute_degraded(std::move(job), queue_seconds);
  }
  JobResult result;
  result.id = job.id;
  result.queue_seconds = queue_seconds;
  try {
    bool constructed = false;
    Stopwatch build_sw;
    CacheKey key =
        CacheKey::of(job.m1, job.m2_shape, job.r_c, job.options,
                     job.closure_tag);
    std::shared_ptr<const MarchPlanner> planner = cache_.get_or_build(
        key,
        [&] {
          auto built = std::make_unique<MarchPlanner>(job.m1, job.m2_shape,
                                                      job.r_c, job.options);
          // Attach before the planner is published to other workers: only
          // the single-flight builder runs this, so the write is safe.
          built->set_observer(opt_.registry);
          return built;
        },
        &constructed);
    result.build_seconds = build_sw.seconds();
    result.cache_hit = !constructed;
    if (constructed) {
      planner_build_.record(result.build_seconds, opt_.latency_reservoir);
      obs::observe(ins_.build_seconds, result.build_seconds);
    }

    for (int attempt = 0;; ++attempt) {
      Stopwatch plan_sw;
      if (opt_.degraded_fallback) {
        PlanOutcome outcome =
            planner->plan_robust(job.positions, job.m2_offset);
        result.plan_seconds += plan_sw.seconds();
        result.degradation = std::move(outcome.degradation);
        if (outcome.ok()) {
          result.plan = std::move(outcome.plan);
          result.ok = true;
          result.status = result.degradation.degraded ? JobStatus::kDegraded
                                                      : JobStatus::kOk;
          break;
        }
        result.error = outcome.status.to_string();
      } else {
        try {
          result.plan = planner->plan(job.positions, job.m2_offset);
          result.plan_seconds += plan_sw.seconds();
          result.ok = true;
          result.status = JobStatus::kOk;
          break;
        } catch (const std::exception& e) {
          result.plan_seconds += plan_sw.seconds();
          result.error = e.what();
        }
      }
      if (attempt >= opt_.max_retries) {
        result.status = JobStatus::kError;
        break;
      }
      ++result.retries;
      retried_.fetch_add(1, std::memory_order_relaxed);
      obs::inc(ins_.retried);
    }
    plan_exec_.record(result.plan_seconds, opt_.latency_reservoir);
  } catch (const std::exception& e) {
    // Planner construction failures land here; planning errors are typed.
    result.ok = false;
    result.status = JobStatus::kError;
    result.error = e.what();
  }
  return result;
}

ServiceStats MissionService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.errored = errored_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.retried = retried_.load(std::memory_order_relaxed);
  s.handoffs = handoffs_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    s.queue_depth = queue_.size();
    s.queue_high_water = queue_high_water_;
    s.active = active_;
  }
  s.workers = worker_count();
  s.cache = cache_.stats();
  s.queue_wait = queue_wait_.snapshot();
  s.planner_build = planner_build_.snapshot();
  s.plan_exec = plan_exec_.snapshot();
  return s;
}

}  // namespace anr::runtime
