#include "runtime/mission_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace anr::runtime {

namespace {

json::Value stage_to_json(const StageStats& s) {
  json::Object o;
  o.emplace("count", s.count);
  o.emplace("min_s", s.min);
  o.emplace("mean_s", s.mean);
  o.emplace("p95_s", s.p95);
  o.emplace("max_s", s.max);
  return json::Value(std::move(o));
}

}  // namespace

json::Value stats_to_json(const ServiceStats& s) {
  json::Object o;
  o.emplace("submitted", s.submitted);
  o.emplace("completed", s.completed);
  o.emplace("failed", s.failed);
  o.emplace("rejected", s.rejected);
  o.emplace("queue_depth", s.queue_depth);
  o.emplace("queue_high_water", s.queue_high_water);
  o.emplace("workers", s.workers);
  json::Object cache;
  cache.emplace("hits", s.cache.hits);
  cache.emplace("misses", s.cache.misses);
  cache.emplace("constructions", s.cache.constructions);
  cache.emplace("evictions", s.cache.evictions);
  cache.emplace("entries", s.cache.entries);
  o.emplace("cache", std::move(cache));
  json::Object stages;
  stages.emplace("queue_wait", stage_to_json(s.queue_wait));
  stages.emplace("planner_build", stage_to_json(s.planner_build));
  stages.emplace("plan_exec", stage_to_json(s.plan_exec));
  o.emplace("stages", std::move(stages));
  return json::Value(std::move(o));
}

void MissionService::StageRecorder::record(double seconds,
                                           std::size_t reservoir_cap) {
  std::lock_guard<std::mutex> lock(m);
  if (count == 0 || seconds < min) min = seconds;
  if (count == 0 || seconds > max) max = seconds;
  sum += seconds;
  ++count;
  if (reservoir_cap == 0) return;
  if (samples.size() < reservoir_cap) {
    samples.push_back(seconds);
  } else {
    samples[next_slot] = seconds;
    next_slot = (next_slot + 1) % reservoir_cap;
  }
}

StageStats MissionService::StageRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(m);
  StageStats s;
  s.count = count;
  if (count == 0) return s;
  s.min = min;
  s.max = max;
  s.mean = sum / static_cast<double>(count);
  if (!samples.empty()) {
    std::vector<double> sorted = samples;
    std::size_t idx = (sorted.size() * 95) / 100;
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                     sorted.end());
    s.p95 = sorted[idx];
  }
  return s;
}

MissionService::MissionService(ServiceOptions options)
    : opt_(options),
      cache_(options.cache_capacity) {
  ANR_CHECK(opt_.queue_capacity >= 1);
  int threads = opt_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MissionService::~MissionService() { shutdown(); }

void MissionService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      accepting_ = false;
    }
    // Wake everyone: blocked submitters give up, workers drain the queue
    // and exit once it is empty.
    queue_push_cv_.notify_all();
    queue_pop_cv_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  });
}

std::future<JobResult> MissionService::submit(PlanJob job) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::promise<JobResult> promise;
  std::future<JobResult> future = promise.get_future();

  auto reject = [&](const std::string& why) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    JobResult r;
    r.id = job.id;
    r.ok = false;
    r.error = why;
    promise.set_value(std::move(r));
    return std::move(future);
  };

  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (!accepting_) return reject("service is shut down");
  if (queue_.size() >= opt_.queue_capacity) {
    if (opt_.overflow == OverflowPolicy::kReject) {
      return reject("queue full (capacity " +
                    std::to_string(opt_.queue_capacity) + ")");
    }
    queue_push_cv_.wait(lock, [this] {
      return !accepting_ || queue_.size() < opt_.queue_capacity;
    });
    if (!accepting_) return reject("service is shut down");
  }
  queue_.push_back(QueuedJob{std::move(job), std::move(promise),
                             std::chrono::steady_clock::now()});
  queue_high_water_ = std::max(queue_high_water_, queue_.size());
  lock.unlock();
  queue_pop_cv_.notify_one();
  return future;
}

std::vector<JobResult> MissionService::run_batch(std::vector<PlanJob> jobs) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (PlanJob& job : jobs) futures.push_back(submit(std::move(job)));
  std::vector<JobResult> results;
  results.reserve(futures.size());
  for (std::future<JobResult>& f : futures) results.push_back(f.get());
  return results;
}

void MissionService::worker_loop() {
  for (;;) {
    QueuedJob item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_pop_cv_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // draining done and intake closed
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_push_cv_.notify_one();

    double waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - item.enqueued)
                        .count();
    queue_wait_.record(waited, opt_.latency_reservoir);
    JobResult result = execute(std::move(item.job), waited);
    if (result.ok) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    item.promise.set_value(std::move(result));
  }
}

JobResult MissionService::execute(PlanJob&& job, double queue_seconds) {
  JobResult result;
  result.id = job.id;
  result.queue_seconds = queue_seconds;
  try {
    bool constructed = false;
    Stopwatch build_sw;
    std::shared_ptr<const MarchPlanner> planner = cache_.get_or_build(
        job.m1, job.m2_shape, job.r_c, job.options, job.closure_tag,
        &constructed);
    result.build_seconds = build_sw.seconds();
    result.cache_hit = !constructed;
    if (constructed) {
      planner_build_.record(result.build_seconds, opt_.latency_reservoir);
    }

    Stopwatch plan_sw;
    result.plan = planner->plan(job.positions, job.m2_offset);
    result.plan_seconds = plan_sw.seconds();
    plan_exec_.record(result.plan_seconds, opt_.latency_reservoir);
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  return result;
}

ServiceStats MissionService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    s.queue_depth = queue_.size();
    s.queue_high_water = queue_high_water_;
  }
  s.workers = worker_count();
  s.cache = cache_.stats();
  s.queue_wait = queue_wait_.snapshot();
  s.planner_build = planner_build_.snapshot();
  s.plan_exec = plan_exec_.snapshot();
  return s;
}

}  // namespace anr::runtime
