#include "harmonic/composition.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/task_arena.h"
#include "geom/barycentric.h"
#include "geom/predicates.h"

namespace anr {

OverlapInterpolator::OverlapInterpolator(const HoleFillResult& filled,
                                         const DiskMap& disk)
    : mesh_(filled.mesh),
      tri_virtual_(filled.triangle_is_virtual),
      disk_pos_(disk.disk_pos) {
  ANR_CHECK(disk_pos_.size() == mesh_.num_vertices());
  ANR_CHECK(tri_virtual_.size() == mesh_.num_triangles());

  vertex_virtual_.assign(mesh_.num_vertices(), 0);
  for (VertexId vv : filled.virtual_vertices) {
    vertex_virtual_[static_cast<std::size_t>(vv)] = 1;
  }

  // Bucket triangles over the unit-disk square [-1,1]^2. Cell size chosen
  // so each bucket holds a handful of triangles.
  grid_dim_ = std::max(
      8, static_cast<int>(std::sqrt(static_cast<double>(mesh_.num_triangles()))));
  cell_ = 2.0 / grid_dim_;
  buckets_.assign(static_cast<std::size_t>(grid_dim_ * grid_dim_), {});
  auto cell_index = [&](double coord) {
    int c = static_cast<int>((coord + 1.0) / cell_);
    return std::clamp(c, 0, grid_dim_ - 1);
  };
  const auto& tris = mesh_.triangles();
  for (std::size_t ti = 0; ti < tris.size(); ++ti) {
    Vec2 a = disk_pos_[static_cast<std::size_t>(tris[ti][0])];
    Vec2 b = disk_pos_[static_cast<std::size_t>(tris[ti][1])];
    Vec2 c = disk_pos_[static_cast<std::size_t>(tris[ti][2])];
    int x0 = cell_index(std::min({a.x, b.x, c.x}));
    int x1 = cell_index(std::max({a.x, b.x, c.x}));
    int y0 = cell_index(std::min({a.y, b.y, c.y}));
    int y1 = cell_index(std::max({a.y, b.y, c.y}));
    for (int x = x0; x <= x1; ++x) {
      for (int y = y0; y <= y1; ++y) {
        buckets_[static_cast<std::size_t>(y * grid_dim_ + x)].tris.push_back(
            static_cast<int>(ti));
      }
    }
  }

  // Nearest-real-vertex fallback index in disk space.
  std::vector<Vec2> real_pos;
  for (std::size_t v = 0; v < mesh_.num_vertices(); ++v) {
    if (vertex_virtual_[v]) continue;
    real_pos.push_back(disk_pos_[v]);
    real_vertex_ids_.push_back(static_cast<int>(v));
  }
  ANR_CHECK(!real_pos.empty());
  real_vertex_index_ = std::make_unique<GridIndex>(std::move(real_pos), cell_);

  // Triangle adjacency for the warm-start walk. The walk is only sound
  // when the disk embedding has no folded triangles (then triangle
  // interiors are disjoint and a strict-interior hit is unique); with any
  // fold we keep the bucket scan exclusively so results never depend on
  // the walk's path.
  tri_adj_.assign(tris.size(), {-1, -1, -1});
  walk_ok_ = true;
  std::map<std::pair<int, int>, std::pair<int, int>> edge_owner;  // edge -> (tri, slot)
  for (std::size_t ti = 0; ti < tris.size(); ++ti) {
    const Tri& t = tris[ti];
    if (signed_area2(disk_pos_[static_cast<std::size_t>(t[0])],
                     disk_pos_[static_cast<std::size_t>(t[1])],
                     disk_pos_[static_cast<std::size_t>(t[2])]) <= 0.0) {
      walk_ok_ = false;
    }
    for (int e = 0; e < 3; ++e) {
      int u = t[static_cast<std::size_t>(e)];
      int v = t[static_cast<std::size_t>((e + 1) % 3)];
      std::pair<int, int> key = u < v ? std::make_pair(u, v)
                                      : std::make_pair(v, u);
      auto [it, inserted] =
          edge_owner.try_emplace(key, static_cast<int>(ti), e);
      if (!inserted) {
        tri_adj_[ti][static_cast<std::size_t>(e)] = it->second.first;
        tri_adj_[static_cast<std::size_t>(it->second.first)]
                [static_cast<std::size_t>(it->second.second)] =
                    static_cast<int>(ti);
      }
    }
  }
}

const OverlapInterpolator::Bucket& OverlapInterpolator::bucket_at(Vec2 p) const {
  int x = std::clamp(static_cast<int>((p.x + 1.0) / cell_), 0, grid_dim_ - 1);
  int y = std::clamp(static_cast<int>((p.y + 1.0) / cell_), 0, grid_dim_ - 1);
  return buckets_[static_cast<std::size_t>(y * grid_dim_ + x)];
}

int OverlapInterpolator::locate_triangle(Vec2 p) const {
  const auto& tris = mesh_.triangles();
  for (int ti : bucket_at(p).tris) {
    const Tri& t = tris[static_cast<std::size_t>(ti)];
    if (point_in_triangle(p, disk_pos_[static_cast<std::size_t>(t[0])],
                          disk_pos_[static_cast<std::size_t>(t[1])],
                          disk_pos_[static_cast<std::size_t>(t[2])])) {
      return ti;
    }
  }
  return -1;
}

int OverlapInterpolator::locate_walk(Vec2 p, int start) const {
  const auto& tris = mesh_.triangles();
  int ti = start;
  // A probe between consecutive rotation angles rarely crosses more than a
  // couple of triangles; a generous cap keeps degenerate cycles bounded.
  for (int step = 0; step < 64; ++step) {
    const Tri& t = tris[static_cast<std::size_t>(ti)];
    Vec2 a = disk_pos_[static_cast<std::size_t>(t[0])];
    Vec2 b = disk_pos_[static_cast<std::size_t>(t[1])];
    Vec2 c = disk_pos_[static_cast<std::size_t>(t[2])];
    double d0 = signed_area2(a, b, p);
    double d1 = signed_area2(b, c, p);
    double d2 = signed_area2(c, a, p);
    if (d0 >= 0.0 && d1 >= 0.0 && d2 >= 0.0) {
      // Containing triangle (CCW). Accept only a strict interior hit under
      // the same epsilon-aware predicate the bucket scan uses: on or near
      // an edge several triangles contain p and the scan's bucket order is
      // the tie-breaker of record.
      if (orientation(a, b, p) > 0 && orientation(b, c, p) > 0 &&
          orientation(c, a, p) > 0) {
        return ti;
      }
      return -1;
    }
    // Step across the most violated edge.
    int e = d0 <= d1 ? (d0 <= d2 ? 0 : 2) : (d1 <= d2 ? 1 : 2);
    int next = tri_adj_[static_cast<std::size_t>(ti)][static_cast<std::size_t>(e)];
    if (next < 0) return -1;  // walked out of the mesh
    ti = next;
  }
  return -1;
}

MappedTarget OverlapInterpolator::target_in(int ti, Vec2 disk_pt) const {
  if (ti >= 0 && !tri_virtual_[static_cast<std::size_t>(ti)]) {
    const Tri& t = mesh_.triangles()[static_cast<std::size_t>(ti)];
    Vec2 a = disk_pos_[static_cast<std::size_t>(t[0])];
    Vec2 b = disk_pos_[static_cast<std::size_t>(t[1])];
    Vec2 c = disk_pos_[static_cast<std::size_t>(t[2])];
    Vec2 world = barycentric_interpolate(disk_pt, a, b, c, mesh_.position(t[0]),
                                         mesh_.position(t[1]), mesh_.position(t[2]));
    return MappedTarget{world, false};
  }
  // In a filled hole or (numerically) outside the disk image: nearest real
  // grid point (paper Sec. III-D-3).
  int idx = real_vertex_index_->nearest(disk_pt);
  ANR_CHECK(idx >= 0);
  VertexId v = real_vertex_ids_[static_cast<std::size_t>(idx)];
  return MappedTarget{mesh_.position(v), true};
}

MappedTarget OverlapInterpolator::map_point(Vec2 disk_pt) const {
  return target_in(locate_triangle(disk_pt), disk_pt);
}

MappedTarget OverlapInterpolator::map_point(Vec2 disk_pt, int& tri_hint) const {
  int ti = -1;
  if (walk_ok_ && tri_hint >= 0 &&
      static_cast<std::size_t>(tri_hint) < mesh_.num_triangles()) {
    ti = locate_walk(disk_pt, tri_hint);
  }
  if (ti < 0) ti = locate_triangle(disk_pt);
  if (ti >= 0) tri_hint = ti;
  return target_in(ti, disk_pt);
}

std::vector<MappedTarget> OverlapInterpolator::map_all(
    const std::vector<Vec2>& robot_disk, double theta) const {
  std::vector<MappedTarget> out;
  std::vector<int> hints;
  map_all_into(robot_disk, theta, hints, out);
  return out;
}

void OverlapInterpolator::map_all_into(const std::vector<Vec2>& robot_disk,
                                       double theta,
                                       std::vector<int>& tri_hints,
                                       std::vector<MappedTarget>& out) const {
  if (tri_hints.size() != robot_disk.size()) {
    tri_hints.assign(robot_disk.size(), -1);
  }
  out.resize(robot_disk.size());
  // Robots partition across workers; every slot (result and hint) is
  // owned by exactly one chunk, and map_point's result is independent of
  // the hint (near-edge hits defer to the bucket scan), so the batch is
  // byte-identical at any thread count. Grain keeps small batches inline
  // and gives each worker a cache-friendly run of consecutive robots.
  parallel_chunks(robot_disk.size(), 64,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      out[i] = map_point(robot_disk[i].rotated(theta),
                                         tri_hints[i]);
                    }
                  });
}

}  // namespace anr
