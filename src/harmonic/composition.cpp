#include "harmonic/composition.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/barycentric.h"
#include "geom/predicates.h"

namespace anr {

OverlapInterpolator::OverlapInterpolator(const HoleFillResult& filled,
                                         const DiskMap& disk)
    : mesh_(filled.mesh),
      tri_virtual_(filled.triangle_is_virtual),
      disk_pos_(disk.disk_pos) {
  ANR_CHECK(disk_pos_.size() == mesh_.num_vertices());
  ANR_CHECK(tri_virtual_.size() == mesh_.num_triangles());

  vertex_virtual_.assign(mesh_.num_vertices(), 0);
  for (VertexId vv : filled.virtual_vertices) {
    vertex_virtual_[static_cast<std::size_t>(vv)] = 1;
  }

  // Bucket triangles over the unit-disk square [-1,1]^2. Cell size chosen
  // so each bucket holds a handful of triangles.
  grid_dim_ = std::max(
      8, static_cast<int>(std::sqrt(static_cast<double>(mesh_.num_triangles()))));
  cell_ = 2.0 / grid_dim_;
  buckets_.assign(static_cast<std::size_t>(grid_dim_ * grid_dim_), {});
  auto cell_index = [&](double coord) {
    int c = static_cast<int>((coord + 1.0) / cell_);
    return std::clamp(c, 0, grid_dim_ - 1);
  };
  const auto& tris = mesh_.triangles();
  for (std::size_t ti = 0; ti < tris.size(); ++ti) {
    Vec2 a = disk_pos_[static_cast<std::size_t>(tris[ti][0])];
    Vec2 b = disk_pos_[static_cast<std::size_t>(tris[ti][1])];
    Vec2 c = disk_pos_[static_cast<std::size_t>(tris[ti][2])];
    int x0 = cell_index(std::min({a.x, b.x, c.x}));
    int x1 = cell_index(std::max({a.x, b.x, c.x}));
    int y0 = cell_index(std::min({a.y, b.y, c.y}));
    int y1 = cell_index(std::max({a.y, b.y, c.y}));
    for (int x = x0; x <= x1; ++x) {
      for (int y = y0; y <= y1; ++y) {
        buckets_[static_cast<std::size_t>(y * grid_dim_ + x)].tris.push_back(
            static_cast<int>(ti));
      }
    }
  }

  // Nearest-real-vertex fallback index in disk space.
  std::vector<Vec2> real_pos;
  for (std::size_t v = 0; v < mesh_.num_vertices(); ++v) {
    if (vertex_virtual_[v]) continue;
    real_pos.push_back(disk_pos_[v]);
    real_vertex_ids_.push_back(static_cast<int>(v));
  }
  ANR_CHECK(!real_pos.empty());
  real_vertex_index_ = std::make_unique<GridIndex>(std::move(real_pos), cell_);
}

const OverlapInterpolator::Bucket& OverlapInterpolator::bucket_at(Vec2 p) const {
  int x = std::clamp(static_cast<int>((p.x + 1.0) / cell_), 0, grid_dim_ - 1);
  int y = std::clamp(static_cast<int>((p.y + 1.0) / cell_), 0, grid_dim_ - 1);
  return buckets_[static_cast<std::size_t>(y * grid_dim_ + x)];
}

int OverlapInterpolator::locate_triangle(Vec2 p) const {
  const auto& tris = mesh_.triangles();
  for (int ti : bucket_at(p).tris) {
    const Tri& t = tris[static_cast<std::size_t>(ti)];
    if (point_in_triangle(p, disk_pos_[static_cast<std::size_t>(t[0])],
                          disk_pos_[static_cast<std::size_t>(t[1])],
                          disk_pos_[static_cast<std::size_t>(t[2])])) {
      return ti;
    }
  }
  return -1;
}

MappedTarget OverlapInterpolator::map_point(Vec2 disk_pt) const {
  int ti = locate_triangle(disk_pt);
  if (ti >= 0 && !tri_virtual_[static_cast<std::size_t>(ti)]) {
    const Tri& t = mesh_.triangles()[static_cast<std::size_t>(ti)];
    Vec2 a = disk_pos_[static_cast<std::size_t>(t[0])];
    Vec2 b = disk_pos_[static_cast<std::size_t>(t[1])];
    Vec2 c = disk_pos_[static_cast<std::size_t>(t[2])];
    Vec2 world = barycentric_interpolate(disk_pt, a, b, c, mesh_.position(t[0]),
                                         mesh_.position(t[1]), mesh_.position(t[2]));
    return MappedTarget{world, false};
  }
  // In a filled hole or (numerically) outside the disk image: nearest real
  // grid point (paper Sec. III-D-3).
  int idx = real_vertex_index_->nearest(disk_pt);
  ANR_CHECK(idx >= 0);
  VertexId v = real_vertex_ids_[static_cast<std::size_t>(idx)];
  return MappedTarget{mesh_.position(v), true};
}

std::vector<MappedTarget> OverlapInterpolator::map_all(
    const std::vector<Vec2>& robot_disk, double theta) const {
  std::vector<MappedTarget> out;
  out.reserve(robot_disk.size());
  for (Vec2 z : robot_disk) {
    out.push_back(map_point(z.rotated(theta)));
  }
  return out;
}

}  // namespace anr
