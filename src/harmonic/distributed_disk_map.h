// Message-passing harmonic map — the paper's actual distributed algorithm.
//
// Composes two protocols over the robot triangulation's own links:
//   1. boundary walk (leader election + hop counting) pins boundary
//      vertices uniformly on the unit circle;
//   2. synchronous neighbor-averaging relaxation settles inner vertices.
//
// Equivalent (up to solver tolerance) to harmonic_disk_map with uniform
// weights and uniform-hop spacing; the equivalence is asserted in tests.
// Reported message/round counts give the protocol's communication cost.
#pragma once

#include <cstddef>

#include "harmonic/disk_map.h"
#include "mesh/triangle_mesh.h"

namespace anr {

struct DistributedDiskMap {
  DiskMap map;
  std::size_t boundary_messages = 0;
  std::size_t relax_messages = 0;
  std::size_t boundary_rounds = 0;
  std::size_t relax_rounds = 0;
};

/// Runs the distributed pipeline on `mesh` (disk topology required).
DistributedDiskMap distributed_harmonic_disk_map(const TriangleMesh& mesh,
                                                 double tol = 1e-9,
                                                 std::size_t max_rounds = 200000);

}  // namespace anr
