#include "harmonic/distributed_disk_map.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "mesh/boundary.h"
#include "net/protocols/boundary_walk.h"
#include "net/protocols/relax.h"

namespace anr {

DistributedDiskMap distributed_harmonic_disk_map(const TriangleMesh& mesh,
                                                 double tol,
                                                 std::size_t max_rounds) {
  const std::size_t n = mesh.num_vertices();
  ANR_CHECK_MSG(boundary_loops(mesh).size() == 1,
                "distributed disk map needs disk topology");

  auto walk = net::run_boundary_walk(mesh);

  DistributedDiskMap out;
  out.boundary_messages = walk.messages;
  out.boundary_rounds = walk.rounds;

  std::vector<Vec2> initial(n, Vec2{0.0, 0.0});
  std::vector<char> fixed(n, 0);
  // Hop order is one of the two loop orientations; pick the one that makes
  // the loop CCW in source coordinates so orientation is preserved, by
  // flipping the angle sign when needed.
  double area2 = 0.0;
  {
    // Reconstruct the hop-ordered loop to measure orientation.
    std::vector<VertexId> order;
    for (std::size_t v = 0; v < n; ++v) {
      if (walk.hop[v] >= 0) order.push_back(static_cast<VertexId>(v));
    }
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      return walk.hop[static_cast<std::size_t>(a)] <
             walk.hop[static_cast<std::size_t>(b)];
    });
    for (std::size_t i = 0; i < order.size(); ++i) {
      area2 += mesh.position(order[i]).cross(
          mesh.position(order[(i + 1) % order.size()]));
    }
  }
  double sign = area2 >= 0.0 ? 1.0 : -1.0;

  for (std::size_t v = 0; v < n; ++v) {
    if (walk.hop[v] < 0) continue;
    double ang = sign * 2.0 * M_PI * walk.hop[v] / walk.loop_size[v];
    initial[v] = Vec2{std::cos(ang), std::sin(ang)};
    fixed[v] = 1;
  }

  auto relax = net::run_distributed_relax(mesh, initial, fixed, tol, max_rounds);
  out.relax_messages = relax.messages;
  out.relax_rounds = relax.rounds;

  out.map.disk_pos = std::move(relax.positions);
  out.map.on_boundary = std::move(fixed);
  out.map.converged = relax.converged;
  out.map.sweeps = static_cast<int>(relax.rounds);
  out.map.status =
      relax.converged
          ? Status::Ok()
          : Status::FailedPrecondition(
                "distributed harmonic relaxation did not converge within " +
                std::to_string(relax.rounds) + " rounds");
  return out;
}

}  // namespace anr
