// Disk-overlap composition (paper Sec. III-B, Eqn. (1)).
//
// With the robot triangulation T and the target FoI M2 both harmonic-
// mapped to unit disks, overlaying the disks (after rotating one by theta)
// induces a map T -> M2: a robot's disk position lands in some triangle of
// M2's disk image; barycentric interpolation of that triangle's geographic
// corners gives the robot's target position in M2.
//
// Robots landing in a *virtual* triangle (a filled hole) or just outside
// the M2 disk image snap to the nearest real grid point, as the paper
// prescribes.
#pragma once

#include <memory>
#include <vector>

#include "foi/foi_mesher.h"
#include "harmonic/disk_map.h"
#include "mesh/hole_fill.h"
#include "mesh/triangle_mesh.h"

namespace anr {

/// One mapped target.
struct MappedTarget {
  Vec2 world;          ///< geographic coordinates in M2
  bool snapped = false;  ///< true when hole/outside fallback was used
};

/// Point-location + interpolation structure over M2's disk image.
class OverlapInterpolator {
 public:
  /// `filled` is M2's hole-filled mesh (world positions), `disk` its
  /// harmonic map. Virtual triangles are excluded from interpolation.
  OverlapInterpolator(const HoleFillResult& filled, const DiskMap& disk);

  /// Maps a disk point (already rotated into M2's disk frame).
  MappedTarget map_point(Vec2 disk_pt) const;

  /// Warm-started variant: `tri_hint` carries the last-hit triangle for
  /// this robot (-1 when unknown) and is updated with the new hit. Point
  /// location first walks the triangle adjacency from the hint — across
  /// rotation probes a robot rarely leaves its triangle's neighborhood —
  /// and falls back to the bucket scan when the walk is inconclusive.
  /// Results are identical to map_point(disk_pt) (near-edge hits always
  /// defer to the bucket scan's ordering).
  MappedTarget map_point(Vec2 disk_pt, int& tri_hint) const;

  /// Maps a batch of robot disk positions rotated by `theta`.
  std::vector<MappedTarget> map_all(const std::vector<Vec2>& robot_disk,
                                    double theta) const;

  /// Allocation-free batch map into caller-owned buffers. `tri_hints` is
  /// the per-robot warm-start cache (resized/reset when its size does not
  /// match); pass the same vectors across probes to reuse both the cache
  /// and the output storage.
  void map_all_into(const std::vector<Vec2>& robot_disk, double theta,
                    std::vector<int>& tri_hints,
                    std::vector<MappedTarget>& out) const;

  /// True when the disk embedding is fold-free and the adjacency walk is
  /// active (exposed for tests/benches).
  bool warm_start_enabled() const { return walk_ok_; }

 private:
  int locate_triangle(Vec2 p) const;
  int locate_walk(Vec2 p, int start) const;
  MappedTarget target_in(int ti, Vec2 disk_pt) const;

  TriangleMesh mesh_;                 // filled M2 mesh (world coords), owned
  std::vector<char> tri_virtual_;
  std::vector<Vec2> disk_pos_;
  std::vector<char> vertex_virtual_;

  // Acceleration: uniform grid over disk-space triangle bounding boxes.
  struct Bucket {
    std::vector<int> tris;
  };
  int grid_dim_ = 0;
  double cell_ = 0.0;
  std::vector<Bucket> buckets_;
  // Triangle adjacency in disk space: tri_adj_[ti][e] is the triangle
  // across edge e of ti (edges (0,1), (1,2), (2,0)), -1 on the boundary.
  // Drives the warm-start walk; only used when the disk embedding is
  // fold-free (walk_ok_), where containing triangles are unique up to
  // shared edges.
  std::vector<std::array<int, 3>> tri_adj_;
  bool walk_ok_ = false;
  std::unique_ptr<GridIndex> real_vertex_index_;  // disk positions of real verts
  std::vector<int> real_vertex_ids_;              // index -> mesh vertex id

  const Bucket& bucket_at(Vec2 p) const;
};

}  // namespace anr
