// Disk-overlap composition (paper Sec. III-B, Eqn. (1)).
//
// With the robot triangulation T and the target FoI M2 both harmonic-
// mapped to unit disks, overlaying the disks (after rotating one by theta)
// induces a map T -> M2: a robot's disk position lands in some triangle of
// M2's disk image; barycentric interpolation of that triangle's geographic
// corners gives the robot's target position in M2.
//
// Robots landing in a *virtual* triangle (a filled hole) or just outside
// the M2 disk image snap to the nearest real grid point, as the paper
// prescribes.
#pragma once

#include <memory>
#include <vector>

#include "foi/foi_mesher.h"
#include "harmonic/disk_map.h"
#include "mesh/hole_fill.h"
#include "mesh/triangle_mesh.h"

namespace anr {

/// One mapped target.
struct MappedTarget {
  Vec2 world;          ///< geographic coordinates in M2
  bool snapped = false;  ///< true when hole/outside fallback was used
};

/// Point-location + interpolation structure over M2's disk image.
class OverlapInterpolator {
 public:
  /// `filled` is M2's hole-filled mesh (world positions), `disk` its
  /// harmonic map. Virtual triangles are excluded from interpolation.
  OverlapInterpolator(const HoleFillResult& filled, const DiskMap& disk);

  /// Maps a disk point (already rotated into M2's disk frame).
  MappedTarget map_point(Vec2 disk_pt) const;

  /// Maps a batch of robot disk positions rotated by `theta`.
  std::vector<MappedTarget> map_all(const std::vector<Vec2>& robot_disk,
                                    double theta) const;

 private:
  int locate_triangle(Vec2 p) const;

  TriangleMesh mesh_;                 // filled M2 mesh (world coords), owned
  std::vector<char> tri_virtual_;
  std::vector<Vec2> disk_pos_;
  std::vector<char> vertex_virtual_;

  // Acceleration: uniform grid over disk-space triangle bounding boxes.
  struct Bucket {
    std::vector<int> tris;
  };
  int grid_dim_ = 0;
  double cell_ = 0.0;
  std::vector<Bucket> buckets_;
  std::unique_ptr<GridIndex> real_vertex_index_;  // disk positions of real verts
  std::vector<int> real_vertex_ids_;              // index -> mesh vertex id

  const Bucket& bucket_at(Vec2 p) const;
};

}  // namespace anr
