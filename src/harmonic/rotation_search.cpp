#include "harmonic/rotation_search.h"

#include <cmath>

#include "common/check.h"

namespace anr {

RotationSearchResult search_rotation(
    const std::function<double(double)>& objective,
    const RotationSearchOptions& opt) {
  ANR_CHECK(opt.initial_partitions >= 1 && opt.depth >= 0);
  RotationSearchResult out;
  out.value = -1e300;

  auto probe = [&](double theta) {
    double v = objective(theta);
    ++out.evaluations;
    if (v > out.value) {
      out.value = v;
      out.angle = theta;
    }
    return v;
  };

  // Initial scan: midpoint of each segment.
  double seg = 2.0 * M_PI / opt.initial_partitions;
  double lo = 0.0, hi = seg;
  double best_seg_value = -1e300;
  for (int i = 0; i < opt.initial_partitions; ++i) {
    double a = i * seg, b = (i + 1) * seg;
    double v = probe((a + b) / 2.0);
    if (v > best_seg_value) {
      best_seg_value = v;
      lo = a;
      hi = b;
    }
  }

  // Interval halving around the best segment: probe the midpoint of each
  // half, recurse into the better one.
  for (int d = 0; d < opt.depth; ++d) {
    double mid = (lo + hi) / 2.0;
    double vl = probe((lo + mid) / 2.0);
    double vr = probe((mid + hi) / 2.0);
    if (vl >= vr) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return out;
}

RotationSearchResult sweep_rotation(
    const std::function<double(double)>& objective, int samples) {
  ANR_CHECK(samples >= 1);
  RotationSearchResult out;
  out.value = -1e300;
  for (int i = 0; i < samples; ++i) {
    double theta = 2.0 * M_PI * i / samples;
    double v = objective(theta);
    ++out.evaluations;
    if (v > out.value) {
      out.value = v;
      out.angle = theta;
    }
  }
  return out;
}

}  // namespace anr
