#include "harmonic/rotation_search.h"

#include <cmath>

#include "common/check.h"

namespace anr {

namespace {

// Wraps the single-theta form so both public entry points share one
// search implementation (and therefore one probe sequence).
RotationBatchObjective serial_batch(
    const std::function<double(double)>& objective) {
  return [&objective](const std::vector<double>& thetas,
                      std::vector<double>& values) {
    values.resize(thetas.size());
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      values[i] = objective(thetas[i]);
    }
  };
}

}  // namespace

RotationSearchResult search_rotation(const RotationBatchObjective& objective,
                                     const RotationSearchOptions& opt) {
  ANR_CHECK(opt.initial_partitions >= 1 && opt.depth >= 0);
  RotationSearchResult out;
  out.value = -1e300;

  std::vector<double> thetas, values;
  // Evaluates the pending thetas and folds them into `out` in index
  // order — the order the serial search would have probed them, so ties
  // resolve identically at any evaluator parallelism.
  auto probe_round = [&]() {
    objective(thetas, values);
    ANR_CHECK(values.size() == thetas.size());
    out.evaluations += static_cast<int>(thetas.size());
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      if (values[i] > out.value) {
        out.value = values[i];
        out.angle = thetas[i];
      }
    }
  };

  // Initial scan: midpoint of each segment, one concurrent round.
  double seg = 2.0 * M_PI / opt.initial_partitions;
  double lo = 0.0, hi = seg;
  thetas.clear();
  for (int i = 0; i < opt.initial_partitions; ++i) {
    thetas.push_back((i * seg + (i + 1) * seg) / 2.0);
  }
  probe_round();
  double best_seg_value = -1e300;
  for (int i = 0; i < opt.initial_partitions; ++i) {
    if (values[static_cast<std::size_t>(i)] > best_seg_value) {
      best_seg_value = values[static_cast<std::size_t>(i)];
      lo = i * seg;
      hi = (i + 1) * seg;
    }
  }

  // Interval halving around the best segment: probe the midpoint of each
  // half (one round of two), recurse into the better one.
  for (int d = 0; d < opt.depth; ++d) {
    double mid = (lo + hi) / 2.0;
    thetas = {(lo + mid) / 2.0, (mid + hi) / 2.0};
    probe_round();
    if (values[0] >= values[1]) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return out;
}

RotationSearchResult search_rotation(
    const std::function<double(double)>& objective,
    const RotationSearchOptions& opt) {
  return search_rotation(serial_batch(objective), opt);
}

RotationSearchResult sweep_rotation(const RotationBatchObjective& objective,
                                    int samples) {
  ANR_CHECK(samples >= 1);
  RotationSearchResult out;
  out.value = -1e300;
  std::vector<double> thetas, values;
  thetas.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    thetas.push_back(2.0 * M_PI * i / samples);
  }
  objective(thetas, values);
  ANR_CHECK(values.size() == thetas.size());
  out.evaluations = samples;
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    if (values[i] > out.value) {
      out.value = values[i];
      out.angle = thetas[i];
    }
  }
  return out;
}

RotationSearchResult sweep_rotation(
    const std::function<double(double)>& objective, int samples) {
  return sweep_rotation(serial_batch(objective), samples);
}

}  // namespace anr
