#include "harmonic/multigrid.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/task_arena.h"

namespace anr {

namespace {
constexpr std::size_t kGrain = 512;
}  // namespace

MultigridSolver::MultigridSolver(std::vector<int> astart, std::vector<int> acol,
                                 std::vector<double> aoff,
                                 std::vector<double> adiag,
                                 const MultigridOptions& opt)
    : opt_(opt) {
  Level fine;
  fine.n = static_cast<int>(adiag.size());
  fine.astart = std::move(astart);
  fine.acol = std::move(acol);
  fine.aoff = std::move(aoff);
  fine.adiag = std::move(adiag);
  ANR_CHECK(fine.astart.size() == static_cast<std::size_t>(fine.n) + 1);
  build_coloring(fine);
  levels_.push_back(std::move(fine));
  build_hierarchy(opt);
}

void MultigridSolver::build_coloring(Level& lv) {
  const std::size_t n = static_cast<std::size_t>(lv.n);
  std::vector<int> color(n, -1);
  int num_colors = 0;
  std::vector<char> used;
  for (std::size_t v = 0; v < n; ++v) {
    used.assign(static_cast<std::size_t>(num_colors) + 1, 0);
    for (int k = lv.astart[v]; k < lv.astart[v + 1]; ++k) {
      int cu = color[static_cast<std::size_t>(lv.acol[static_cast<std::size_t>(k)])];
      if (cu >= 0) used[static_cast<std::size_t>(cu)] = 1;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color[v] = c;
    if (c + 1 > num_colors) num_colors = c + 1;
  }
  lv.num_colors = num_colors;
  lv.class_start.assign(static_cast<std::size_t>(num_colors) + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    ++lv.class_start[static_cast<std::size_t>(color[v]) + 1];
  }
  for (int c = 0; c < num_colors; ++c) {
    lv.class_start[static_cast<std::size_t>(c) + 1] +=
        lv.class_start[static_cast<std::size_t>(c)];
  }
  lv.class_verts.assign(n, 0);
  std::vector<int> cursor(lv.class_start.begin(), lv.class_start.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    lv.class_verts[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(color[v])]++)] = static_cast<int>(v);
  }
}

void MultigridSolver::build_hierarchy(const MultigridOptions& opt) {
  while (levels_.back().n > opt.coarse_size) {
    Level& fine = levels_.back();
    const std::size_t n = static_cast<std::size_t>(fine.n);

    // C-points: greedy maximal independent set in index order. Every
    // F-point then has at least one C neighbor in the adjacency graph
    // (maximality), except pattern-isolated unknowns which simply get no
    // coarse correction.
    std::vector<char> is_coarse(n, 0), blocked(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      if (blocked[v]) continue;
      is_coarse[v] = 1;
      for (int k = fine.astart[v]; k < fine.astart[v + 1]; ++k) {
        blocked[static_cast<std::size_t>(fine.acol[static_cast<std::size_t>(k)])] = 1;
      }
    }
    std::vector<int> cidx(n, -1);
    int nc = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (is_coarse[v]) cidx[v] = nc++;
    }
    // A hierarchy that stops shrinking can't help; hand the rest to the
    // coarsest-level smoother.
    if (nc == 0 || nc >= fine.n * 9 / 10) break;

    // Prolongation: C-points inject; F-points take the weighted average of
    // their C neighbors (weights |a_fc|, normalized). Off-diagonal entries
    // of the harmonic operator are negative weights, so |a_fc| recovers
    // the mesh weight.
    fine.pstart.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      int cnt = 0;
      if (is_coarse[v]) {
        cnt = 1;
      } else {
        for (int k = fine.astart[v]; k < fine.astart[v + 1]; ++k) {
          if (is_coarse[static_cast<std::size_t>(
                  fine.acol[static_cast<std::size_t>(k)])]) {
            ++cnt;
          }
        }
      }
      fine.pstart[v + 1] = fine.pstart[v] + cnt;
    }
    fine.pcol.assign(static_cast<std::size_t>(fine.pstart[n]), 0);
    fine.pw.assign(static_cast<std::size_t>(fine.pstart[n]), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      int at = fine.pstart[v];
      if (is_coarse[v]) {
        fine.pcol[static_cast<std::size_t>(at)] = cidx[v];
        fine.pw[static_cast<std::size_t>(at)] = 1.0;
        continue;
      }
      double wsum = 0.0;
      for (int k = fine.astart[v]; k < fine.astart[v + 1]; ++k) {
        std::size_t u = static_cast<std::size_t>(fine.acol[static_cast<std::size_t>(k)]);
        if (!is_coarse[u]) continue;
        double w = std::abs(fine.aoff[static_cast<std::size_t>(k)]);
        fine.pcol[static_cast<std::size_t>(at)] = cidx[u];
        fine.pw[static_cast<std::size_t>(at)] = w;
        wsum += w;
        ++at;
      }
      if (wsum > 0.0) {
        for (int k = fine.pstart[v]; k < at; ++k) {
          fine.pw[static_cast<std::size_t>(k)] /= wsum;
        }
      }
    }

    // Galerkin coarse operator A_c = P^T A P via ordered row maps: index
    // iteration order is fixed, so the assembled CSR is deterministic.
    std::vector<std::map<int, double>> rows(static_cast<std::size_t>(nc));
    for (std::size_t i = 0; i < n; ++i) {
      for (int pi = fine.pstart[i]; pi < fine.pstart[i + 1]; ++pi) {
        const int ci = fine.pcol[static_cast<std::size_t>(pi)];
        const double wi = fine.pw[static_cast<std::size_t>(pi)];
        auto& row = rows[static_cast<std::size_t>(ci)];
        for (int pj = fine.pstart[i]; pj < fine.pstart[i + 1]; ++pj) {
          row[fine.pcol[static_cast<std::size_t>(pj)]] +=
              wi * fine.adiag[i] * fine.pw[static_cast<std::size_t>(pj)];
        }
        for (int k = fine.astart[i]; k < fine.astart[i + 1]; ++k) {
          const std::size_t j =
              static_cast<std::size_t>(fine.acol[static_cast<std::size_t>(k)]);
          const double aij = fine.aoff[static_cast<std::size_t>(k)];
          for (int pj = fine.pstart[j]; pj < fine.pstart[j + 1]; ++pj) {
            row[fine.pcol[static_cast<std::size_t>(pj)]] +=
                wi * aij * fine.pw[static_cast<std::size_t>(pj)];
          }
        }
      }
    }

    Level coarse;
    coarse.n = nc;
    coarse.adiag.assign(static_cast<std::size_t>(nc), 0.0);
    coarse.astart.assign(static_cast<std::size_t>(nc) + 1, 0);
    for (int ci = 0; ci < nc; ++ci) {
      int offdiag = 0;
      for (const auto& [cj, val] : rows[static_cast<std::size_t>(ci)]) {
        if (cj != ci) ++offdiag;
      }
      coarse.astart[static_cast<std::size_t>(ci) + 1] =
          coarse.astart[static_cast<std::size_t>(ci)] + offdiag;
    }
    coarse.acol.assign(static_cast<std::size_t>(coarse.astart[static_cast<std::size_t>(nc)]), 0);
    coarse.aoff.assign(static_cast<std::size_t>(coarse.astart[static_cast<std::size_t>(nc)]), 0.0);
    for (int ci = 0; ci < nc; ++ci) {
      int at = coarse.astart[static_cast<std::size_t>(ci)];
      for (const auto& [cj, val] : rows[static_cast<std::size_t>(ci)]) {
        if (cj == ci) {
          coarse.adiag[static_cast<std::size_t>(ci)] = val;
        } else {
          coarse.acol[static_cast<std::size_t>(at)] = cj;
          coarse.aoff[static_cast<std::size_t>(at)] = val;
          ++at;
        }
      }
      ANR_CHECK_MSG(coarse.adiag[static_cast<std::size_t>(ci)] > 0.0,
                    "Galerkin coarse operator lost positive diagonal");
    }
    build_coloring(coarse);
    levels_.push_back(std::move(coarse));
    if (levels_.size() > 32) break;
  }
  for (Level& lv : levels_) {
    lv.x.assign(static_cast<std::size_t>(lv.n), Vec2{0.0, 0.0});
    lv.b.assign(static_cast<std::size_t>(lv.n), Vec2{0.0, 0.0});
    lv.r.assign(static_cast<std::size_t>(lv.n), Vec2{0.0, 0.0});
  }
}

double MultigridSolver::smooth(Level& lv, std::vector<Vec2>& x,
                               const std::vector<Vec2>& b) const {
  double max_move = 0.0;
  std::vector<double> chunk_max;
  for (int c = 0; c < lv.num_colors; ++c) {
    const int cb = lv.class_start[static_cast<std::size_t>(c)];
    const std::size_t count = static_cast<std::size_t>(
        lv.class_start[static_cast<std::size_t>(c) + 1] - cb);
    chunk_max.assign((count + kGrain - 1) / kGrain, 0.0);
    parallel_chunks(count, kGrain,
                    [&](std::size_t chunk, std::size_t begin, std::size_t end) {
      double local = 0.0;
      for (std::size_t idx = begin; idx < end; ++idx) {
        const std::size_t v = static_cast<std::size_t>(
            lv.class_verts[static_cast<std::size_t>(cb) + idx]);
        Vec2 acc = b[v];
        for (int k = lv.astart[v]; k < lv.astart[v + 1]; ++k) {
          acc -= x[static_cast<std::size_t>(lv.acol[static_cast<std::size_t>(k)])] *
                 lv.aoff[static_cast<std::size_t>(k)];
        }
        Vec2 target = acc / lv.adiag[v];
        Vec2 updated = x[v] + (target - x[v]) * opt_.over_relax;
        local = std::max(local, distance(updated, x[v]));
        x[v] = updated;
      }
      chunk_max[chunk] = local;
    });
    for (double m : chunk_max) max_move = std::max(max_move, m);
  }
  return max_move;
}

void MultigridSolver::vcycle(std::size_t l) {
  Level& lv = levels_[l];
  if (l + 1 == levels_.size()) {
    // Coarsest level: smooth to (near) exactness — a few hundred unknowns.
    for (int s = 0; s < 500; ++s) {
      if (smooth(lv, lv.x, lv.b) <= opt_.tol * 0.1) break;
    }
    return;
  }
  for (int s = 0; s < opt_.pre_sweeps; ++s) smooth(lv, lv.x, lv.b);

  // Residual r = b - A x (element-wise, deterministic under any schedule).
  const std::size_t n = static_cast<std::size_t>(lv.n);
  parallel_chunks(n, 4 * kGrain,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Vec2 acc = lv.x[i] * lv.adiag[i];
      for (int k = lv.astart[i]; k < lv.astart[i + 1]; ++k) {
        acc += lv.x[static_cast<std::size_t>(lv.acol[static_cast<std::size_t>(k)])] *
               lv.aoff[static_cast<std::size_t>(k)];
      }
      lv.r[i] = lv.b[i] - acc;
    }
  });

  // Restrict: b_c = P^T r (serial, index order — deterministic).
  Level& cl = levels_[l + 1];
  std::fill(cl.b.begin(), cl.b.end(), Vec2{0.0, 0.0});
  std::fill(cl.x.begin(), cl.x.end(), Vec2{0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = lv.pstart[i]; k < lv.pstart[i + 1]; ++k) {
      cl.b[static_cast<std::size_t>(lv.pcol[static_cast<std::size_t>(k)])] +=
          lv.r[i] * lv.pw[static_cast<std::size_t>(k)];
    }
  }

  vcycle(l + 1);

  // Prolongate and correct: x += P x_c (element-wise).
  parallel_chunks(n, 4 * kGrain,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Vec2 acc{};
      for (int k = lv.pstart[i]; k < lv.pstart[i + 1]; ++k) {
        acc += cl.x[static_cast<std::size_t>(lv.pcol[static_cast<std::size_t>(k)])] *
               lv.pw[static_cast<std::size_t>(k)];
      }
      lv.x[i] += acc;
    }
  });

  for (int s = 0; s < opt_.post_sweeps; ++s) smooth(lv, lv.x, lv.b);
}

MultigridResult MultigridSolver::solve(std::vector<Vec2>& x,
                                       const std::vector<Vec2>& b) {
  MultigridResult res;
  Level& fine = levels_.front();
  ANR_CHECK(x.size() == static_cast<std::size_t>(fine.n));
  ANR_CHECK(b.size() == static_cast<std::size_t>(fine.n));
  if (fine.n == 0) {
    res.converged = true;
    return res;
  }
  if (levels_.size() == 1) {
    // Degenerate hierarchy: plain SOR on the single level.
    for (int s = 0; s < opt_.max_cycles * (opt_.pre_sweeps + opt_.post_sweeps);
         ++s) {
      double mv = smooth(fine, x, b);
      ++res.fine_sweeps;
      if (mv <= opt_.tol) {
        res.converged = true;
        break;
      }
    }
    return res;
  }

  fine.x = x;
  fine.b = b;
  for (int cycle = 0; cycle < opt_.max_cycles; ++cycle) {
    for (int s = 0; s < opt_.pre_sweeps; ++s) {
      smooth(fine, fine.x, fine.b);
      ++res.fine_sweeps;
    }
    // Re-run the fine part of the cycle by hand so fine sweeps are counted;
    // vcycle() handles coarse correction from the current fine state.
    const std::size_t n = static_cast<std::size_t>(fine.n);
    parallel_chunks(n, 4 * kGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        Vec2 acc = fine.x[i] * fine.adiag[i];
        for (int k = fine.astart[i]; k < fine.astart[i + 1]; ++k) {
          acc += fine.x[static_cast<std::size_t>(
                     fine.acol[static_cast<std::size_t>(k)])] *
                 fine.aoff[static_cast<std::size_t>(k)];
        }
        fine.r[i] = fine.b[i] - acc;
      }
    });
    Level& cl = levels_[1];
    std::fill(cl.b.begin(), cl.b.end(), Vec2{0.0, 0.0});
    std::fill(cl.x.begin(), cl.x.end(), Vec2{0.0, 0.0});
    for (std::size_t i = 0; i < n; ++i) {
      for (int k = fine.pstart[i]; k < fine.pstart[i + 1]; ++k) {
        cl.b[static_cast<std::size_t>(fine.pcol[static_cast<std::size_t>(k)])] +=
            fine.r[i] * fine.pw[static_cast<std::size_t>(k)];
      }
    }
    vcycle(1);
    parallel_chunks(n, 4 * kGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        Vec2 acc{};
        for (int k = fine.pstart[i]; k < fine.pstart[i + 1]; ++k) {
          acc += cl.x[static_cast<std::size_t>(
                     fine.pcol[static_cast<std::size_t>(k)])] *
                 fine.pw[static_cast<std::size_t>(k)];
        }
        fine.x[i] += acc;
      }
    });
    double mv = 0.0;
    for (int s = 0; s < opt_.post_sweeps; ++s) {
      mv = smooth(fine, fine.x, fine.b);
      ++res.fine_sweeps;
    }
    ++res.cycles;
    if (mv <= opt_.tol) {
      res.converged = true;
      break;
    }
  }
  x = fine.x;
  return res;
}

}  // namespace anr
