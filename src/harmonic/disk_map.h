// Discrete harmonic map of a disk-topology triangle mesh to the unit disk
// (paper Sec. III-B).
//
// Boundary vertices are pinned to the unit circle — by hop count (the
// paper's distributed scheme: uniform angular spacing in boundary-walk
// order) or by chord length (ablation option). Interior vertices relax to
// the weighted average of their neighbors. With convex boundary and
// positive weights this is Tutte/Floater: the result is a guaranteed
// embedding (Kneser / Choquet for the smooth case the paper cites).
//
// This is the centralized solver (Gauss–Seidel with over-relaxation on a
// red-black-style multicolor schedule: interior vertices are greedily
// colored so each color class relaxes in parallel, with results
// bit-identical to the serial color-major sweep at any thread count); the
// message-passing equivalent lives in distributed_disk_map and is verified
// against this one in tests.
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "mesh/triangle_mesh.h"

namespace anr {

/// Interior weighting scheme.
enum class HarmonicWeights {
  kUniform,    ///< plain neighbor average — the paper's scheme
  kMeanValue,  ///< Floater mean-value coordinates (shape-aware ablation)
};

/// Boundary parametrization scheme.
enum class BoundarySpacing {
  kUniformHops,  ///< equal angles per boundary hop — the paper's scheme
  kChordLength,  ///< angles proportional to boundary edge lengths
};

/// Interior relaxation engine.
enum class HarmonicSolver {
  kAuto,         ///< multigrid above `multigrid_threshold`, flat SOR below
  kGaussSeidel,  ///< always the flat multicolor SOR sweep
  kMultigrid,    ///< always the V-cycle solver (harmonic/multigrid.h)
};

struct DiskMapOptions {
  HarmonicWeights weights = HarmonicWeights::kUniform;
  BoundarySpacing spacing = BoundarySpacing::kUniformHops;
  double tol = 1e-10;        ///< max vertex move per sweep to declare converged
  int max_sweeps = 200000;
  double over_relax = 1.7;   ///< SOR factor in (0, 2)

  /// Solver selection. kAuto keeps the historical flat sweep (and its exact
  /// bytes) on small meshes and switches to multigrid only where the flat
  /// sweep's O(n) iteration count starts to dominate. If multigrid stalls
  /// (non-symmetric custom weights can defeat the Galerkin hierarchy), the
  /// remaining `max_sweeps` budget falls back to the flat sweep, so
  /// convergence is never worse than the historical solver's.
  HarmonicSolver solver = HarmonicSolver::kAuto;
  /// Interior-vertex count at which kAuto switches to multigrid.
  int multigrid_threshold = 3000;

  /// When set, overrides `weights`: returns the positive weight of the
  /// directed edge (v, u). Used by the terrain layer to feed 3D
  /// (surface-metric) weights into the same solver.
  std::function<double(const TriangleMesh&, VertexId, VertexId)> custom_weight;
};

struct DiskMap {
  /// Disk position per mesh vertex (boundary on the unit circle).
  std::vector<Vec2> disk_pos;
  /// Per vertex: lies on the (single) boundary loop.
  std::vector<char> on_boundary;
  /// Gauss–Seidel sweeps actually executed (the converging sweep counts;
  /// equals max_sweeps when convergence was not reached). The distributed
  /// solver reports its relaxation rounds here under the same semantics;
  /// the multigrid solver counts finest-level smoothing sweeps.
  int sweeps = 0;
  bool converged = false;
  /// True when the multigrid engine produced the result (possibly with a
  /// flat-sweep tail); false for the pure flat sweep.
  bool used_multigrid = false;
  /// V-cycles executed (0 for the flat sweep).
  int cycles = 0;
  /// kOk when converged; FailedPrecondition (with the sweep budget and
  /// tolerance in the message) when the sweep budget ran out. Callers that
  /// used to poll `converged` can now propagate a typed error instead.
  Status status;

  /// Fraction of triangles that kept positive orientation in the disk —
  /// 1.0 for a valid embedding.
  double embedding_quality(const TriangleMesh& mesh) const;
};

/// Computes the harmonic map. `mesh` must be vertex-manifold with exactly
/// one boundary loop (fill holes first) and every vertex referenced by a
/// triangle.
DiskMap harmonic_disk_map(const TriangleMesh& mesh,
                          const DiskMapOptions& opt = {});

}  // namespace anr
