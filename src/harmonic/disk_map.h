// Discrete harmonic map of a disk-topology triangle mesh to the unit disk
// (paper Sec. III-B).
//
// Boundary vertices are pinned to the unit circle — by hop count (the
// paper's distributed scheme: uniform angular spacing in boundary-walk
// order) or by chord length (ablation option). Interior vertices relax to
// the weighted average of their neighbors. With convex boundary and
// positive weights this is Tutte/Floater: the result is a guaranteed
// embedding (Kneser / Choquet for the smooth case the paper cites).
//
// This is the centralized solver (Gauss–Seidel with over-relaxation on a
// red-black-style multicolor schedule: interior vertices are greedily
// colored so each color class relaxes in parallel, with results
// bit-identical to the serial color-major sweep at any thread count); the
// message-passing equivalent lives in distributed_disk_map and is verified
// against this one in tests.
#pragma once

#include <functional>
#include <vector>

#include "mesh/triangle_mesh.h"

namespace anr {

/// Interior weighting scheme.
enum class HarmonicWeights {
  kUniform,    ///< plain neighbor average — the paper's scheme
  kMeanValue,  ///< Floater mean-value coordinates (shape-aware ablation)
};

/// Boundary parametrization scheme.
enum class BoundarySpacing {
  kUniformHops,  ///< equal angles per boundary hop — the paper's scheme
  kChordLength,  ///< angles proportional to boundary edge lengths
};

struct DiskMapOptions {
  HarmonicWeights weights = HarmonicWeights::kUniform;
  BoundarySpacing spacing = BoundarySpacing::kUniformHops;
  double tol = 1e-10;        ///< max vertex move per sweep to declare converged
  int max_sweeps = 200000;
  double over_relax = 1.7;   ///< SOR factor in (0, 2)

  /// When set, overrides `weights`: returns the positive weight of the
  /// directed edge (v, u). Used by the terrain layer to feed 3D
  /// (surface-metric) weights into the same solver.
  std::function<double(const TriangleMesh&, VertexId, VertexId)> custom_weight;
};

struct DiskMap {
  /// Disk position per mesh vertex (boundary on the unit circle).
  std::vector<Vec2> disk_pos;
  /// Per vertex: lies on the (single) boundary loop.
  std::vector<char> on_boundary;
  /// Gauss–Seidel sweeps actually executed (the converging sweep counts;
  /// equals max_sweeps when convergence was not reached). The distributed
  /// solver reports its relaxation rounds here under the same semantics.
  int sweeps = 0;
  bool converged = false;

  /// Fraction of triangles that kept positive orientation in the disk —
  /// 1.0 for a valid embedding.
  double embedding_quality(const TriangleMesh& mesh) const;
};

/// Computes the harmonic map. `mesh` must be vertex-manifold with exactly
/// one boundary loop (fill holes first) and every vertex referenced by a
/// triangle.
DiskMap harmonic_disk_map(const TriangleMesh& mesh,
                          const DiskMapOptions& opt = {});

}  // namespace anr
