#include "harmonic/disk_map.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/task_arena.h"
#include "geom/predicates.h"
#include "harmonic/multigrid.h"
#include "mesh/boundary.h"

namespace anr {

namespace {

// Mean-value weight for directed edge i->j given the two triangles
// flanking it. w_ij = (tan(a/2) + tan(b/2)) / |ij| where a, b are the
// angles at vertex i in those triangles, adjacent to edge ij.
double mean_value_weight(const TriangleMesh& mesh, VertexId i, VertexId j) {
  Vec2 pi = mesh.position(i), pj = mesh.position(j);
  double r = distance(pi, pj);
  ANR_CHECK(r > 0.0);
  double w = 0.0;
  for (int ti : mesh.vertex_triangles(i)) {
    const Tri& t = mesh.triangles()[static_cast<std::size_t>(ti)];
    // Find the third vertex of a triangle containing both i and j.
    bool has_j = t[0] == j || t[1] == j || t[2] == j;
    if (!has_j) continue;
    VertexId k = -1;
    for (VertexId v : t) {
      if (v != i && v != j) k = v;
    }
    Vec2 pk = mesh.position(k);
    Vec2 u = (pj - pi).normalized();
    Vec2 v2 = (pk - pi).normalized();
    double ang = std::acos(std::clamp(u.dot(v2), -1.0, 1.0));
    w += std::tan(ang / 2.0);
  }
  return w / r;
}

}  // namespace

double DiskMap::embedding_quality(const TriangleMesh& mesh) const {
  if (mesh.num_triangles() == 0) return 1.0;
  std::size_t good = 0;
  for (const Tri& t : mesh.triangles()) {
    double a = signed_area2(disk_pos[static_cast<std::size_t>(t[0])],
                            disk_pos[static_cast<std::size_t>(t[1])],
                            disk_pos[static_cast<std::size_t>(t[2])]);
    if (a > 0.0) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(mesh.num_triangles());
}

DiskMap harmonic_disk_map(const TriangleMesh& mesh, const DiskMapOptions& opt) {
  const std::size_t n = mesh.num_vertices();
  ANR_CHECK_MSG(mesh.vertex_manifold(), "harmonic map needs a manifold mesh");
  auto loops = boundary_loops(mesh);
  ANR_CHECK_MSG(loops.size() == 1,
                "harmonic map needs disk topology (fill holes first)");
  for (std::size_t v = 0; v < n; ++v) {
    ANR_CHECK_MSG(!mesh.vertex_triangles(static_cast<VertexId>(v)).empty(),
                  "harmonic map: unreferenced vertex (compact the mesh)");
  }

  const auto& loop = loops[0].vertices;
  DiskMap out;
  out.disk_pos.assign(n, Vec2{0.0, 0.0});
  out.on_boundary.assign(n, 0);

  // Pin boundary to the circle. Orientation: walk the loop in whichever
  // order boundary_loops returned; the map is equivariant under circle
  // reflection, and the rotation search absorbs the phase. For consistency
  // across runs, start angles at the smallest-id loop vertex and orient so
  // the loop is CCW in the disk.
  std::vector<VertexId> walk = loop;
  {
    // Orient the loop CCW in source coordinates so the disk map preserves
    // triangle orientation.
    double area2 = 0.0;
    for (std::size_t i = 0; i < walk.size(); ++i) {
      area2 += mesh.position(walk[i]).cross(
          mesh.position(walk[(i + 1) % walk.size()]));
    }
    if (area2 < 0.0) std::reverse(walk.begin(), walk.end());
  }
  std::size_t start = 0;
  for (std::size_t i = 0; i < walk.size(); ++i) {
    if (walk[i] < walk[start]) start = i;
  }
  std::vector<VertexId> ordered;
  ordered.reserve(walk.size());
  for (std::size_t i = 0; i < walk.size(); ++i) {
    ordered.push_back(walk[(start + i) % walk.size()]);
  }

  const std::size_t b = ordered.size();
  double total_len = 0.0;
  std::vector<double> cumulative(b, 0.0);
  for (std::size_t i = 0; i < b; ++i) {
    cumulative[i] = total_len;
    total_len += distance(mesh.position(ordered[i]),
                          mesh.position(ordered[(i + 1) % b]));
  }
  for (std::size_t i = 0; i < b; ++i) {
    double frac = opt.spacing == BoundarySpacing::kUniformHops
                      ? static_cast<double>(i) / static_cast<double>(b)
                      : cumulative[i] / total_len;
    double ang = 2.0 * M_PI * frac;
    out.disk_pos[static_cast<std::size_t>(ordered[i])] =
        Vec2{std::cos(ang), std::sin(ang)};
    out.on_boundary[static_cast<std::size_t>(ordered[i])] = 1;
  }

  // Precompute neighbor weights into flat CSR arrays: interior vertex v
  // owns nbr_id/nbr_w[wstart[v] .. wstart[v+1]), in mesh.neighbors order.
  // The Gauss–Seidel sweep then chases one contiguous array instead of a
  // vector-of-vectors of pairs.
  std::vector<int> wstart(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    wstart[v + 1] = wstart[v];
    if (out.on_boundary[v]) continue;
    wstart[v + 1] +=
        static_cast<int>(mesh.neighbors(static_cast<VertexId>(v)).size());
  }
  std::vector<VertexId> nbr_id(static_cast<std::size_t>(wstart[n]));
  std::vector<double> nbr_w(static_cast<std::size_t>(wstart[n]));
  for (std::size_t v = 0; v < n; ++v) {
    if (out.on_boundary[v]) continue;
    int at = wstart[v];
    for (VertexId u : mesh.neighbors(static_cast<VertexId>(v))) {
      double w;
      if (opt.custom_weight) {
        w = opt.custom_weight(mesh, static_cast<VertexId>(v), u);
        ANR_CHECK_MSG(w > 0.0, "custom harmonic weight must be positive");
      } else {
        w = opt.weights == HarmonicWeights::kUniform
                ? 1.0
                : mean_value_weight(mesh, static_cast<VertexId>(v), u);
      }
      nbr_id[static_cast<std::size_t>(at)] = u;
      nbr_w[static_cast<std::size_t>(at)] = w;
      ++at;
    }
  }

  // Red-black-style schedule: greedy-color the interior vertices (id
  // order, smallest available color — triangle meshes need a few colors,
  // not two) so no two same-color vertices are adjacent. The sweep then
  // updates color classes in color-major, id-minor order; within a class
  // every update reads only other-class (or boundary) positions, so the
  // class can relax under parallel_for with bit-identical results to the
  // serial color-major order at any thread count.
  std::vector<int> color(n, -1);
  int num_colors = 0;
  std::vector<char> used;
  for (std::size_t v = 0; v < n; ++v) {
    if (out.on_boundary[v]) continue;
    used.assign(static_cast<std::size_t>(num_colors) + 1, 0);
    for (int k = wstart[v]; k < wstart[v + 1]; ++k) {
      int cu = color[static_cast<std::size_t>(nbr_id[static_cast<std::size_t>(k)])];
      if (cu >= 0) used[static_cast<std::size_t>(cu)] = 1;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color[v] = c;
    if (c + 1 > num_colors) num_colors = c + 1;
  }
  std::vector<int> class_start(static_cast<std::size_t>(num_colors) + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (color[v] >= 0) ++class_start[static_cast<std::size_t>(color[v]) + 1];
  }
  for (int c = 0; c < num_colors; ++c) class_start[c + 1] += class_start[c];
  std::vector<int> class_verts(static_cast<std::size_t>(class_start[num_colors]));
  {
    std::vector<int> cursor(class_start.begin(), class_start.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (color[v] < 0) continue;
      class_verts[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(color[v])]++)] = static_cast<int>(v);
    }
  }

  const int interior_count = class_start[num_colors];
  const bool use_multigrid =
      opt.solver == HarmonicSolver::kMultigrid ||
      (opt.solver == HarmonicSolver::kAuto &&
       interior_count >= opt.multigrid_threshold);

  bool converged = false;
  int executed = 0;

  if (use_multigrid && interior_count > 0) {
    // Compact the interior system (A = diag(W_v) - [w_vu], b from pinned
    // boundary values) and run V-cycles. The hierarchy's smoother is the
    // same multicolor parallel_chunks sweep as below, so thread-count
    // invariance carries over.
    std::vector<int> iidx(n, -1);
    std::vector<int> ivert;
    ivert.reserve(static_cast<std::size_t>(interior_count));
    for (std::size_t v = 0; v < n; ++v) {
      if (out.on_boundary[v]) continue;
      iidx[v] = static_cast<int>(ivert.size());
      ivert.push_back(static_cast<int>(v));
    }
    std::vector<int> astart(static_cast<std::size_t>(interior_count) + 1, 0);
    for (int i = 0; i < interior_count; ++i) {
      const std::size_t v = static_cast<std::size_t>(ivert[static_cast<std::size_t>(i)]);
      int cnt = 0;
      for (int k = wstart[v]; k < wstart[v + 1]; ++k) {
        if (iidx[static_cast<std::size_t>(nbr_id[static_cast<std::size_t>(k)])] >= 0) ++cnt;
      }
      astart[static_cast<std::size_t>(i) + 1] = astart[static_cast<std::size_t>(i)] + cnt;
    }
    std::vector<int> acol(static_cast<std::size_t>(astart[static_cast<std::size_t>(interior_count)]));
    std::vector<double> aoff(acol.size());
    std::vector<double> adiag(static_cast<std::size_t>(interior_count), 0.0);
    std::vector<Vec2> rhs(static_cast<std::size_t>(interior_count), Vec2{0.0, 0.0});
    std::vector<Vec2> x(static_cast<std::size_t>(interior_count), Vec2{0.0, 0.0});
    for (int i = 0; i < interior_count; ++i) {
      const std::size_t v = static_cast<std::size_t>(ivert[static_cast<std::size_t>(i)]);
      int at = astart[static_cast<std::size_t>(i)];
      double wsum = 0.0;
      for (int k = wstart[v]; k < wstart[v + 1]; ++k) {
        const std::size_t u = static_cast<std::size_t>(nbr_id[static_cast<std::size_t>(k)]);
        const double w = nbr_w[static_cast<std::size_t>(k)];
        wsum += w;
        if (iidx[u] >= 0) {
          acol[static_cast<std::size_t>(at)] = iidx[u];
          aoff[static_cast<std::size_t>(at)] = -w;
          ++at;
        } else {
          rhs[static_cast<std::size_t>(i)] += out.disk_pos[u] * w;
        }
      }
      ANR_CHECK(wsum > 0.0);
      adiag[static_cast<std::size_t>(i)] = wsum;
    }
    MultigridOptions mg_opt;
    mg_opt.tol = opt.tol;
    mg_opt.over_relax = opt.over_relax;
    MultigridSolver mg(std::move(astart), std::move(acol), std::move(aoff),
                       std::move(adiag), mg_opt);
    MultigridResult mg_res = mg.solve(x, rhs);
    for (int i = 0; i < interior_count; ++i) {
      out.disk_pos[static_cast<std::size_t>(ivert[static_cast<std::size_t>(i)])] =
          x[static_cast<std::size_t>(i)];
    }
    out.used_multigrid = true;
    out.cycles = mg_res.cycles;
    executed = std::min(mg_res.fine_sweeps, opt.max_sweeps);
    converged = mg_res.converged;
  }

  // Gauss–Seidel with over-relaxation, color-major. Small classes fall
  // into a single chunk and run inline; the per-chunk maxima merge in
  // fixed chunk order (exact for max, but the fixed order is the habit
  // every parallel reduction here follows). Runs the whole budget on the
  // flat path; after a stalled multigrid solve it spends whatever budget
  // remains, so multigrid never converges worse than the flat sweep.
  if (!converged) {
    const std::size_t kGrain = 512;
    std::vector<double> chunk_max;
    for (int sweep = executed; sweep < opt.max_sweeps; ++sweep) {
      double max_move = 0.0;
      for (int c = 0; c < num_colors; ++c) {
        const int cb = class_start[c];
        const std::size_t count =
            static_cast<std::size_t>(class_start[c + 1] - cb);
        chunk_max.assign((count + kGrain - 1) / kGrain, 0.0);
        parallel_chunks(count, kGrain,
                        [&](std::size_t chunk, std::size_t begin,
                            std::size_t end) {
          double local = 0.0;
          for (std::size_t idx = begin; idx < end; ++idx) {
            const std::size_t v = static_cast<std::size_t>(
                class_verts[static_cast<std::size_t>(cb) + idx]);
            Vec2 acc{};
            double wsum = 0.0;
            for (int k = wstart[v]; k < wstart[v + 1]; ++k) {
              acc += out.disk_pos[static_cast<std::size_t>(
                         nbr_id[static_cast<std::size_t>(k)])] *
                     nbr_w[static_cast<std::size_t>(k)];
              wsum += nbr_w[static_cast<std::size_t>(k)];
            }
            ANR_CHECK(wsum > 0.0);
            Vec2 target = acc / wsum;
            Vec2 updated =
                out.disk_pos[v] + (target - out.disk_pos[v]) * opt.over_relax;
            local = std::max(local, distance(updated, out.disk_pos[v]));
            out.disk_pos[v] = updated;
          }
          chunk_max[chunk] = local;
        });
        for (double m : chunk_max) max_move = std::max(max_move, m);
      }
      executed = sweep + 1;
      if (max_move <= opt.tol) {
        converged = true;
        break;
      }
    }
  }
  // `sweeps` counts sweeps actually executed: converging during sweep s
  // (0-based) means s+1 sweeps ran, not s.
  out.sweeps = executed;
  out.converged = converged;
  out.status = converged
                   ? Status::Ok()
                   : Status::FailedPrecondition(
                         "harmonic relaxation did not converge within " +
                         std::to_string(opt.max_sweeps) +
                         " sweeps (tol=" + std::to_string(opt.tol) + ")");
  return out;
}

}  // namespace anr
