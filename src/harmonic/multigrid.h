// Geometric/algebraic multigrid for the interior harmonic system
// (Tutte/Floater relaxation at scale).
//
// harmonic_disk_map relaxes interior vertices toward the weighted average
// of their neighbors; as a linear system that is A x = b with
// A = diag(W_v) - [w_vu] over the interior vertices and b collecting the
// pinned boundary contributions. Plain (S)OR needs O(n) sweeps on a
// diameter-n mesh — fine at 144 robots, hopeless at 100k. This solver
// builds a coarsening hierarchy once (greedy maximal-independent-set
// C-points in index order, weighted-average prolongation, Galerkin
// triple-product coarse operators) and runs V-cycles whose smoother is the
// exact multicolor SOR sweep the flat solver uses, parallelized with the
// same `parallel_chunks` schedule — so results are byte-identical at any
// thread count, and the convergence criterion (max vertex move of a full
// fine sweep <= tol) matches the flat solver's.
//
// Everything about the setup is deterministic: C-point selection, coarse
// numbering, and Galerkin assembly are index-ordered and serial; only the
// sweeps and element-wise transfers run on the arena, and those follow the
// fixed-chunk-merge contract from common/task_arena.h.
#pragma once

#include <vector>

#include "geom/vec2.h"

namespace anr {

struct MultigridOptions {
  double tol = 1e-10;       ///< max vertex move of a fine sweep to converge
  double over_relax = 1.7;  ///< SOR factor shared by all levels
  int pre_sweeps = 2;       ///< smoothing sweeps before coarse correction
  int post_sweeps = 2;      ///< smoothing sweeps after coarse correction
  int max_cycles = 100;     ///< V-cycle budget before giving up
  int coarse_size = 200;    ///< stop coarsening at this many unknowns
};

struct MultigridResult {
  int fine_sweeps = 0;  ///< smoothing sweeps executed on the finest level
  int cycles = 0;       ///< V-cycles executed
  bool converged = false;
};

/// Multigrid solver for a fixed sparse operator with Vec2-valued unknowns
/// (the x and y disk coordinates relax through identical weights, so one
/// pass solves both). The operator is handed over in CSR split form:
/// `adiag[i]` is the diagonal, `aoff[k]` / `acol[k]` for
/// k in [astart[i], astart[i+1]) the off-diagonal entries of row i.
/// The off-diagonal pattern must be structurally symmetric (mesh
/// adjacency), values need not be.
class MultigridSolver {
 public:
  MultigridSolver(std::vector<int> astart, std::vector<int> acol,
                  std::vector<double> aoff, std::vector<double> adiag,
                  const MultigridOptions& opt = {});

  /// Number of levels in the hierarchy (>= 1).
  int levels() const { return static_cast<int>(levels_.size()); }

  /// Runs V-cycles from the given initial guess until the post-smoothing
  /// sweep moves every unknown by <= tol, or max_cycles is exhausted.
  /// `x` is updated in place; `b` is the right-hand side.
  MultigridResult solve(std::vector<Vec2>& x, const std::vector<Vec2>& b);

 private:
  struct Level {
    int n = 0;
    std::vector<int> astart, acol;
    std::vector<double> aoff, adiag;
    // Multicolor schedule (greedy, index order) for the SOR smoother.
    int num_colors = 0;
    std::vector<int> class_start, class_verts;
    // Prolongation from the next-coarser level: row f holds the coarse
    // indices/weights interpolating fine unknown f (empty on the coarsest).
    std::vector<int> pstart, pcol;
    std::vector<double> pw;
    // Work vectors.
    std::vector<Vec2> x, b, r;
  };

  static void build_coloring(Level& lv);
  void build_hierarchy(const MultigridOptions& opt);
  /// One multicolor SOR sweep on `lv`; returns the max move.
  double smooth(Level& lv, std::vector<Vec2>& x, const std::vector<Vec2>& b) const;
  void vcycle(std::size_t l);

  MultigridOptions opt_;
  std::vector<Level> levels_;
};

}  // namespace anr
