// Rotation-angle search between the two overlapped unit disks
// (paper Sec. III-B and III-D-2).
//
// The induced map T -> M2 depends on the relative rotation theta of the
// disks. Method (a) picks theta maximizing the predicted stable link
// ratio; method (b) minimizes total moving distance. The objective is not
// unimodal in theta, so the paper uses a shallow interval-halving search
// ("binary search … with a pre-defined search depth", depth 4 in their
// simulations); an exhaustive sweep is available for the ablation bench.
#pragma once

#include <functional>
#include <vector>

namespace anr {

struct RotationSearchOptions {
  /// Number of equal initial segments of [0, 2*pi); the paper's pure
  /// binary search corresponds to 2. More segments make the search robust
  /// to multi-modality at a few extra probes.
  int initial_partitions = 2;
  /// Interval halvings after the initial scan (paper: 4).
  int depth = 4;
};

struct RotationSearchResult {
  double angle = 0.0;       ///< best angle probed
  double value = 0.0;       ///< objective at `angle`
  int evaluations = 0;
};

/// Batch form of the objective: fill values[i] with the objective at
/// thetas[i]. The search hands whole probe rounds (the initial scan, each
/// halving level's pair) to one call, so the evaluator may compute the
/// candidates concurrently — each theta must be a pure function of theta
/// alone. The search reduces the returned values in index order, exactly
/// as the serial single-theta form probes them, so both forms pick the
/// same angle.
using RotationBatchObjective = std::function<void(
    const std::vector<double>& thetas, std::vector<double>& values)>;

/// Maximizes `objective` over theta in [0, 2*pi) with the paper's scheme.
/// To minimize, pass the negated objective.
RotationSearchResult search_rotation(
    const std::function<double(double)>& objective,
    const RotationSearchOptions& opt = {});

/// As above, probing a whole round of candidates per evaluator call
/// (concurrency-friendly form; identical probe sequence and result).
RotationSearchResult search_rotation(const RotationBatchObjective& objective,
                                     const RotationSearchOptions& opt = {});

/// Exhaustive sweep at `samples` uniform angles (ablation oracle).
RotationSearchResult sweep_rotation(
    const std::function<double(double)>& objective, int samples = 360);

/// Batch-evaluated exhaustive sweep (one evaluator call for all angles).
RotationSearchResult sweep_rotation(const RotationBatchObjective& objective,
                                    int samples = 360);

}  // namespace anr
