#include "io/metrics_io.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace anr {

namespace {

using obs::Labels;
using obs::MetricSnapshot;
using obs::MetricType;

/// Shortest round-trippable decimal for a metric value.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Renders {a="x",b="y"}; `extra` appends one more pair (the `le` label).
std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out.push_back(',');
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out.push_back('}');
  return out;
}

void expose_one(std::ostringstream& out, const MetricSnapshot& s) {
  if (s.type != MetricType::kHistogram) {
    out << s.name << label_block(s.labels) << ' ' << fmt_double(s.value)
        << '\n';
    return;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < s.bounds.size(); ++i) {
    cumulative += s.buckets[i];
    out << s.name << "_bucket"
        << label_block(s.labels, "le", fmt_double(s.bounds[i])) << ' '
        << cumulative << '\n';
  }
  out << s.name << "_bucket" << label_block(s.labels, "le", "+Inf") << ' '
      << s.count << '\n';
  out << s.name << "_sum" << label_block(s.labels) << ' ' << fmt_double(s.sum)
      << '\n';
  out << s.name << "_count" << label_block(s.labels) << ' ' << s.count << '\n';
}

}  // namespace

std::string metrics_text_exposition(const obs::Registry& reg) {
  std::ostringstream out;
  std::string open_family;
  for (const MetricSnapshot& s : reg.snapshot()) {
    if (s.name != open_family) {
      open_family = s.name;
      if (!s.help.empty()) out << "# HELP " << s.name << ' ' << s.help << '\n';
      out << "# TYPE " << s.name << ' ' << metric_type_name(s.type) << '\n';
    }
    expose_one(out, s);
  }
  return out.str();
}

json::Value metric_to_json(const MetricSnapshot& snap) {
  json::Object o;
  o.emplace("name", snap.name);
  o.emplace("type", metric_type_name(snap.type));
  if (!snap.labels.empty()) {
    json::Object labels;
    for (const auto& [k, v] : snap.labels) labels.emplace(k, v);
    o.emplace("labels", std::move(labels));
  }
  if (snap.type == MetricType::kHistogram) {
    json::Array buckets;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      cumulative += snap.buckets[i];
      json::Object b;
      b.emplace("le", snap.bounds[i]);
      b.emplace("count", cumulative);
      buckets.push_back(json::Value(std::move(b)));
    }
    // The overflow bucket ("le" as the string "+Inf": JSON numbers cannot
    // carry infinity); its cumulative count equals the observation total.
    if (snap.buckets.size() > snap.bounds.size()) {
      cumulative += snap.buckets.back();
    }
    json::Object inf;
    inf.emplace("le", "+Inf");
    inf.emplace("count", cumulative);
    buckets.push_back(json::Value(std::move(inf)));
    o.emplace("buckets", std::move(buckets));
    o.emplace("sum", snap.sum);
    o.emplace("count", snap.count);
  } else {
    o.emplace("value", snap.value);
  }
  return json::Value(std::move(o));
}

void write_metrics_ndjson(const obs::Registry& reg, std::ostream& out) {
  for (const MetricSnapshot& s : reg.snapshot()) {
    out << metric_to_json(s).dump() << '\n';
  }
}

json::Value spans_to_json(const obs::Registry& reg) {
  json::Array arr;
  for (const obs::SpanRecord& r : reg.span_snapshot()) {
    json::Object o;
    o.emplace("name", r.name);
    o.emplace("start_s", r.start_s);
    o.emplace("dur_s", r.dur_s);
    o.emplace("depth", r.depth);
    o.emplace("seq", r.seq);
    arr.push_back(json::Value(std::move(o)));
  }
  return json::Value(std::move(arr));
}

}  // namespace anr
