// Terrain-routing persistence: cost fields as JSON (for viz / drill
// archives) and time-of-arrival fields as a compact checksummed binary
// (for golden pins and offline diffing — the checksum makes heap
// tie-break regressions surface as a one-line mismatch).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/json.h"
#include "terrain/fast_marching.h"

namespace anr {

/// Serializes the cost field: grid shape, origin/cell size, per-cell
/// costs (blocked cells as the string "inf" — JSON has no infinity).
json::Value cost_field_to_json(const CostField& field);

/// Convenience: pretty-printed cost_field_to_json to a file.
bool save_cost_field(const CostField& field, const std::string& path,
                     std::string* error = nullptr);

/// A loaded ToA snapshot: grid shape plus the per-cell times.
struct ToaSnapshot {
  int nx = 0;
  int ny = 0;
  double cell = 0.0;
  std::vector<double> toa;
};

/// Writes the ToA field as a little-endian binary record
/// ("ANRTOA01" magic, nx, ny, cell size, payload doubles, FNV-1a
/// checksum over the payload bytes).
bool save_toa(const CostField& field, const std::vector<double>& toa,
              const std::string& path, std::string* error = nullptr);

/// Reads a ToA record back, validating magic, sizes, and checksum.
std::optional<ToaSnapshot> load_toa(const std::string& path,
                                    std::string* error = nullptr);

}  // namespace anr
