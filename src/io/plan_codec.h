// Binary MarchPlan codec: the wire/cache/golden encoding of a plan.
//
// plan_io's JSON documents are the human-readable archive format; every
// hot path that moves plans around — the streaming serve frontend's
// response frames, golden snapshots, cache spills — pays text-codec cost
// and loses double precision unless printed at full round-trip width.
// This module is the compact alternative: a length-prefixed, versioned,
// little-endian binary encoding whose doubles are raw IEEE-754 bit
// patterns, so encode -> decode is bit-exact by construction and
// encoding the same plan twice yields identical bytes.
//
// Document layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "ANRPLANB"
//   8       4     u32 codec version (kPlanCodecVersion)
//   12      4     u32 section count (3 in version 1)
//   16      8     u64 FNV-1a checksum of the whole document with these
//                 eight bytes zeroed (detects any bit of corruption)
//   24      24*k  section table: {u32 tag, u32 reserved(=0),
//                 u64 offset, u64 size} per section
//   ...           section payloads, contiguous, in table order
//
// Version-1 sections, in fixed order:
//   "SCLR"  the plan's scalar diagnostics (fixed 80-byte layout)
//   "PNTS"  start / mapped_targets / final_positions point sets
//   "TRAJ"  per-robot timed trajectories
//
// Like the JSON format, meshes are not persisted (derivable and large);
// MeshStats come back default-constructed.
//
// decode_plan() never throws and never crashes on hostile input: every
// read is bounds-checked, counts are validated against the remaining
// bytes before any allocation, and any truncation or corruption —
// anywhere in the document, including the header — comes back as a typed
// error (tests/test_plan_codec.cpp proves this at every byte offset).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "march/planner.h"

namespace anr {

/// Bumped on any change to the byte layout. A committed binary golden
/// (tests/golden/plan_codec_v1.anrp) pins version 1 against silent drift.
inline constexpr std::uint32_t kPlanCodecVersion = 1;

/// The 8 magic bytes opening every binary plan document.
inline constexpr char kPlanCodecMagic[8] = {'A', 'N', 'R', 'P',
                                            'L', 'A', 'N', 'B'};

/// Serializes the persistable parts of a plan (same field set as
/// plan_to_json). Deterministic: equal plans encode to equal bytes.
std::string encode_plan(const MarchPlan& plan);

/// Parses a binary plan document. Returns nullopt on any malformation —
/// bad magic, unsupported version, broken section table, checksum
/// mismatch, truncation — with the reason in `error` when non-null.
std::optional<MarchPlan> decode_plan(std::string_view bytes,
                                     std::string* error = nullptr);

/// True when `bytes` opens with the binary-plan magic (format sniffing
/// for load_plan and other auto-detecting readers).
bool looks_like_binary_plan(std::string_view bytes);

}  // namespace anr
