#include "io/plan_codec.h"

#include <bit>
#include <cstring>
#include <limits>

namespace anr {

namespace {

constexpr std::size_t kHeaderSize = 24;       // magic + version + count + sum
constexpr std::size_t kTableEntrySize = 24;   // tag + reserved + offset + size
constexpr std::uint32_t kSectionCount = 3;
constexpr std::size_t kChecksumOffset = 16;

// Section tags, ASCII packed little-endian ("SCLR" reads forward in a
// hex dump of the little-endian u32).
constexpr std::uint32_t tag_of(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}
constexpr std::uint32_t kTagScalars = tag_of("SCLR");
constexpr std::uint32_t kTagPoints = tag_of("PNTS");
constexpr std::uint32_t kTagTrajectories = tag_of("TRAJ");

// Fixed scalar-section layout: 6 doubles, 6 int32s, 1 uint64.
constexpr std::size_t kScalarSectionSize = 6 * 8 + 6 * 4 + 8;

// --- little-endian append primitives ---------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void patch_u64(std::string& out, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

// FNV-1a with an explicit running state, so the checksum can skip its own
// field without copying the document.
std::uint64_t fnv1a64_accum(std::uint64_t h, const char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::uint64_t document_checksum(std::string_view doc) {
  // The whole document with the 8 checksum bytes treated as zero.
  static constexpr char kZeros[8] = {};
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  h = fnv1a64_accum(h, doc.data(), kChecksumOffset);
  h = fnv1a64_accum(h, kZeros, sizeof(kZeros));
  h = fnv1a64_accum(h, doc.data() + kChecksumOffset + 8,
                    doc.size() - kChecksumOffset - 8);
  return h;
}

void put_points(std::string& out, const std::vector<Vec2>& pts) {
  put_u64(out, pts.size());
  for (Vec2 p : pts) {
    put_f64(out, p.x);
    put_f64(out, p.y);
  }
}

// --- bounds-checked reader --------------------------------------------------

/// Sequential cursor over one section. Every get_* reports failure
/// instead of reading past the end; the caller threads the error string.
class Reader {
 public:
  Reader(std::string_view bytes, std::string* error)
      : bytes_(bytes), error_(error) {}

  bool fail(const std::string& why) {
    if (error_ != nullptr && error_->empty()) *error_ = why;
    failed_ = true;
    return false;
  }

  bool failed() const { return failed_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }

  bool get_u32(std::uint32_t* v) {
    if (remaining() < 4) return fail("truncated u32");
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }

  bool get_u64(std::uint64_t* v) {
    if (remaining() < 8) return fail("truncated u64");
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }

  bool get_i32(std::int32_t* v) {
    std::uint32_t u = 0;
    if (!get_u32(&u)) return false;
    *v = static_cast<std::int32_t>(u);
    return true;
  }

  bool get_f64(double* v) {
    std::uint64_t u = 0;
    if (!get_u64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }

  /// Validates that a count of `elem_size`-byte elements fits in the
  /// bytes still unread — the guard that makes corrupt counts fail typed
  /// instead of attempting a multi-gigabyte allocation.
  bool check_count(std::uint64_t count, std::size_t elem_size,
                   const char* what) {
    if (count > remaining() / elem_size) {
      return fail(std::string("implausible ") + what + " count");
    }
    return true;
  }

 private:
  std::string_view bytes_;
  std::string* error_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

bool read_points(Reader& r, std::vector<Vec2>* out, const char* what) {
  std::uint64_t n = 0;
  if (!r.get_u64(&n)) return false;
  if (!r.check_count(n, 16, what)) return false;
  out->resize(static_cast<std::size_t>(n));
  for (Vec2& p : *out) {
    if (!r.get_f64(&p.x) || !r.get_f64(&p.y)) return false;
  }
  return true;
}

}  // namespace

bool looks_like_binary_plan(std::string_view bytes) {
  return bytes.size() >= sizeof(kPlanCodecMagic) &&
         std::memcmp(bytes.data(), kPlanCodecMagic,
                     sizeof(kPlanCodecMagic)) == 0;
}

std::string encode_plan(const MarchPlan& plan) {
  // Payload sections first; the header needs their sizes.
  std::string scalars;
  scalars.reserve(kScalarSectionSize);
  put_f64(scalars, plan.rotation_angle);
  put_f64(scalars, plan.rotation_objective);
  put_f64(scalars, plan.predicted_link_ratio);
  put_f64(scalars, plan.max_boundary_gap);
  put_f64(scalars, plan.transition_end);
  put_f64(scalars, plan.total_time);
  put_i32(scalars, plan.rotation_evaluations);
  put_i32(scalars, plan.snapped_targets);
  put_i32(scalars, plan.repaired_robots);
  put_i32(scalars, plan.repaired_subgroups);
  put_i32(scalars, plan.unmeshed_robots);
  put_i32(scalars, plan.adjust_steps);
  put_u64(scalars, plan.protocol_messages);

  std::string points;
  put_points(points, plan.start);
  put_points(points, plan.mapped_targets);
  put_points(points, plan.final_positions);

  std::string trajs;
  put_u64(trajs, plan.trajectories.size());
  for (const Trajectory& t : plan.trajectories) {
    put_u64(trajs, t.num_waypoints());
    for (std::size_t i = 0; i < t.num_waypoints(); ++i) {
      put_f64(trajs, t.times()[i]);
      put_f64(trajs, t.waypoints()[i].x);
      put_f64(trajs, t.waypoints()[i].y);
    }
  }

  const struct {
    std::uint32_t tag;
    const std::string* payload;
  } sections[kSectionCount] = {{kTagScalars, &scalars},
                               {kTagPoints, &points},
                               {kTagTrajectories, &trajs}};

  std::string out;
  out.reserve(kHeaderSize + kSectionCount * kTableEntrySize + scalars.size() +
              points.size() + trajs.size());
  out.append(kPlanCodecMagic, sizeof(kPlanCodecMagic));
  put_u32(out, kPlanCodecVersion);
  put_u32(out, kSectionCount);
  put_u64(out, 0);  // checksum, patched below

  std::uint64_t cursor = kHeaderSize + kSectionCount * kTableEntrySize;
  for (const auto& s : sections) {
    put_u32(out, s.tag);
    put_u32(out, 0);  // reserved
    put_u64(out, cursor);
    put_u64(out, s.payload->size());
    cursor += s.payload->size();
  }
  for (const auto& s : sections) out.append(*s.payload);

  patch_u64(out, kChecksumOffset, document_checksum(out));
  return out;
}

std::optional<MarchPlan> decode_plan(std::string_view bytes,
                                     std::string* error) {
  if (error != nullptr) error->clear();
  auto fail = [&](const std::string& why) -> std::optional<MarchPlan> {
    if (error != nullptr && error->empty()) {
      *error = "binary plan: " + why;
    }
    return std::nullopt;
  };

  if (!looks_like_binary_plan(bytes)) return fail("bad magic");
  if (bytes.size() < kHeaderSize) return fail("truncated header");

  Reader header(bytes.substr(sizeof(kPlanCodecMagic)), nullptr);
  std::uint32_t version = 0, count = 0;
  std::uint64_t checksum = 0;
  header.get_u32(&version);
  header.get_u32(&count);
  header.get_u64(&checksum);
  if (version != kPlanCodecVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  if (count != kSectionCount) {
    return fail("expected " + std::to_string(kSectionCount) +
                " sections, header says " + std::to_string(count));
  }
  const std::size_t table_end = kHeaderSize + count * kTableEntrySize;
  if (bytes.size() < table_end) return fail("truncated section table");
  if (checksum != document_checksum(bytes)) return fail("checksum mismatch");

  // Section table: fixed tag order, reserved bytes zero, payloads
  // contiguous from the end of the table through the end of the document.
  // The strictness makes the byte stream canonical — every encoded plan
  // has exactly one valid representation.
  constexpr std::uint32_t kExpectedTags[kSectionCount] = {
      kTagScalars, kTagPoints, kTagTrajectories};
  std::string_view payloads[kSectionCount];
  {
    Reader table(bytes.substr(kHeaderSize, count * kTableEntrySize), nullptr);
    std::uint64_t cursor = table_end;
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t tag = 0, reserved = 0;
      std::uint64_t offset = 0, size = 0;
      table.get_u32(&tag);
      table.get_u32(&reserved);
      table.get_u64(&offset);
      table.get_u64(&size);
      if (tag != kExpectedTags[i]) {
        return fail("unexpected section tag at index " + std::to_string(i));
      }
      if (reserved != 0) return fail("nonzero reserved field");
      if (offset != cursor) return fail("non-contiguous section layout");
      if (size > bytes.size() - offset) {
        return fail("section extends past end of document");
      }
      payloads[i] = bytes.substr(static_cast<std::size_t>(offset),
                                 static_cast<std::size_t>(size));
      cursor = offset + size;
    }
    if (cursor != bytes.size()) return fail("trailing bytes after sections");
  }

  MarchPlan plan;
  std::string why;

  if (payloads[0].size() != kScalarSectionSize) {
    return fail("scalar section has wrong size");
  }
  {
    Reader r(payloads[0], &why);
    r.get_f64(&plan.rotation_angle);
    r.get_f64(&plan.rotation_objective);
    r.get_f64(&plan.predicted_link_ratio);
    r.get_f64(&plan.max_boundary_gap);
    r.get_f64(&plan.transition_end);
    r.get_f64(&plan.total_time);
    r.get_i32(&plan.rotation_evaluations);
    r.get_i32(&plan.snapped_targets);
    r.get_i32(&plan.repaired_robots);
    r.get_i32(&plan.repaired_subgroups);
    r.get_i32(&plan.unmeshed_robots);
    r.get_i32(&plan.adjust_steps);
    std::uint64_t messages = 0;
    r.get_u64(&messages);
    plan.protocol_messages = static_cast<std::size_t>(messages);
    if (r.failed()) return fail(why);
  }

  {
    Reader r(payloads[1], &why);
    if (!read_points(r, &plan.start, "start point") ||
        !read_points(r, &plan.mapped_targets, "mapped-target point") ||
        !read_points(r, &plan.final_positions, "final-position point")) {
      return fail(why);
    }
    if (!r.at_end()) return fail("trailing bytes in point section");
  }

  {
    Reader r(payloads[2], &why);
    std::uint64_t n_traj = 0;
    if (!r.get_u64(&n_traj)) return fail(why);
    // A trajectory costs at least its 8-byte waypoint count.
    if (!r.check_count(n_traj, 8, "trajectory")) return fail(why);
    plan.trajectories.reserve(static_cast<std::size_t>(n_traj));
    for (std::uint64_t i = 0; i < n_traj; ++i) {
      std::uint64_t n_wp = 0;
      if (!r.get_u64(&n_wp)) return fail(why);
      if (!r.check_count(n_wp, 24, "waypoint")) return fail(why);
      Trajectory t;
      for (std::uint64_t w = 0; w < n_wp; ++w) {
        double time = 0.0;
        Vec2 p;
        if (!r.get_f64(&time) || !r.get_f64(&p.x) || !r.get_f64(&p.y)) {
          return fail(why);
        }
        // Trajectory::append enforces nondecreasing times; corrupt time
        // sequences (including NaN, which fails every ordering test) must
        // come back typed, not as a contract violation.
        if (!t.empty() && !(time >= t.end_time())) {
          return fail("trajectory times decrease");
        }
        t.append(p, time);
      }
      plan.trajectories.push_back(std::move(t));
    }
    if (!r.at_end()) return fail("trailing bytes in trajectory section");
  }

  return plan;
}

}  // namespace anr
