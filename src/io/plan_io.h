// Plan persistence: archive a MarchPlan (trajectories + diagnostics) and
// its measured metrics as JSON; reload the trajectories to replay or
// re-measure a run without re-planning.
#pragma once

#include <optional>
#include <string>

#include "io/json.h"
#include "march/planner.h"
#include "march/transition_sim.h"

namespace anr {

/// Serializes a trajectory as {"t": [...], "x": [...], "y": [...]}.
json::Value trajectory_to_json(const Trajectory& t);
Trajectory trajectory_from_json(const json::Value& v);

/// Serializes the plan: trajectories plus the scalar diagnostics
/// (rotation angle, repairs, timings). The meshes are not persisted —
/// they are derivable and large.
json::Value plan_to_json(const MarchPlan& plan);

/// Restores the persistable parts of a plan (trajectories, start, mapped
/// and final positions, scalars). Mesh statistics come back empty.
MarchPlan plan_from_json(const json::Value& v);

/// Metrics record.
json::Value metrics_to_json(const TransitionMetrics& m);
TransitionMetrics metrics_from_json(const json::Value& v);

/// On-disk plan representation. kAuto picks by file extension on save
/// (".anrp" / ".bin" -> binary, everything else JSON); loading always
/// auto-detects by content (the binary magic), never by name.
enum class PlanFormat {
  kAuto,
  kJson,    ///< pretty-printed plan_to_json document (the archive format)
  kBinary,  ///< io/plan_codec document (compact, bit-exact doubles)
};

/// Convenience: write/read a plan to a file. Returns false / nullopt on
/// failure. When `error` is non-null it receives the reason — the OS
/// error (errno) for I/O failures, the parse/validation message for
/// malformed documents — instead of the caller having to guess from a
/// bare false.
bool save_plan(const MarchPlan& plan, const std::string& path,
               std::string* error = nullptr,
               PlanFormat format = PlanFormat::kAuto);
std::optional<MarchPlan> load_plan(const std::string& path,
                                   std::string* error = nullptr);

}  // namespace anr
