// Metrics exposition: Prometheus-style text and NDJSON snapshots.
//
// src/obs owns the primitives (Registry, Counter/Gauge/Histogram, spans);
// this module turns Registry::snapshot() into wire formats:
//
//   - metrics_text_exposition(): the Prometheus text format — # HELP and
//     # TYPE per family, cumulative `le` buckets plus _sum/_count for
//     histograms — scrapeable by anything that speaks /metrics;
//   - write_metrics_ndjson(): one JSON object per metric per line, for
//     log shipping and offline diffing (examples/march_serve --metrics);
//   - spans_to_json(): the bounded span-ring trace as a JSON array.
#pragma once

#include <ostream>
#include <string>

#include "io/json.h"
#include "obs/metrics.h"

namespace anr {

/// Prometheus text exposition of every metric in `reg`, families grouped,
/// in registration order.
std::string metrics_text_exposition(const obs::Registry& reg);

/// One metric as a JSON object ({"name","type","labels","value"} for
/// counters/gauges; histograms carry "buckets" [{le,count} cumulative],
/// "sum", and "count").
json::Value metric_to_json(const obs::MetricSnapshot& snap);

/// NDJSON snapshot: metric_to_json() per line, registration order.
void write_metrics_ndjson(const obs::Registry& reg, std::ostream& out);

/// The registry's span ring as a JSON array of {name, start_s, dur_s,
/// depth, seq}, oldest first.
json::Value spans_to_json(const obs::Registry& reg);

}  // namespace anr
