// Length-prefixed frames for the streaming serve protocol.
//
// march_serve's batch mode is line-oriented: one NDJSON request per line,
// one result line per request, everything buffered until EOF. The
// streaming mode (--stream / --listen) needs real message boundaries —
// a client must be able to write a request, block on exactly one
// response, and interleave binary plan payloads that may themselves
// contain newlines. Frames provide that:
//
//   offset  size  field
//   0       4     u32 payload length, little-endian (excludes this
//                 header; at most kMaxFramePayload)
//   4       1     u8 frame type (FrameType)
//   5       len   payload bytes
//
// Frame types:
//   kRequest (1)       JSON request object (io/job_io.h schema), UTF-8
//   kResponse (2)      JSON result line (result_to_json)
//   kResponsePlan (3)  a result plus its plan in binary: u32 json length,
//                      the JSON result bytes (without "plan"), then the
//                      io/plan_codec document to the end of the payload
//   kError (4)         protocol-level error text; the stream ends after
//
// read_frame() is defensive the same way decode_plan() is: a hostile or
// truncated stream produces a typed kError status, never a crash or an
// unbounded allocation (the length word is validated against
// kMaxFramePayload before any buffer is sized).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

namespace anr {

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kResponsePlan = 3,
  kError = 4,
};

/// Stable lowercase name ("request", "response", ...).
const char* frame_type_name(FrameType type);

/// Refuse frames beyond this payload size (corrupt or hostile length
/// words would otherwise drive a multi-gigabyte allocation).
inline constexpr std::size_t kMaxFramePayload = 256u << 20;  // 256 MiB

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// One read_frame() outcome.
enum class FrameReadStatus {
  kFrame,  ///< a complete frame was read
  kEof,    ///< clean end of stream (EOF exactly on a frame boundary)
  kError,  ///< malformed: truncated mid-frame, oversized, unknown type
};

/// Appends one encoded frame to `out`.
void append_frame(std::string* out, FrameType type, std::string_view payload);
std::string encode_frame(FrameType type, std::string_view payload);

/// Writes one frame; returns false when the stream failed.
bool write_frame(std::ostream& out, FrameType type, std::string_view payload);

/// Reads the next frame. kError sets `error` (when non-null) with the
/// reason; the stream position is then unspecified and the caller should
/// stop reading.
FrameReadStatus read_frame(std::istream& in, Frame* frame,
                           std::string* error = nullptr);

/// Builds / splits the kResponsePlan payload (u32 JSON length + JSON +
/// binary plan document). split returns false on malformed payloads.
std::string make_response_plan_payload(std::string_view result_json,
                                       std::string_view plan_bytes);
bool split_response_plan_payload(std::string_view payload,
                                 std::string_view* result_json,
                                 std::string_view* plan_bytes,
                                 std::string* error = nullptr);

}  // namespace anr
