#include "io/event_io.h"

#include <stdexcept>
#include <string>

namespace anr {

namespace {

fault::FaultKind fault_kind_from_name(const std::string& name) {
  using fault::FaultKind;
  for (FaultKind k :
       {FaultKind::kCrash, FaultKind::kStuck, FaultKind::kSlowdown,
        FaultKind::kPositionNoise, FaultKind::kLinkDropout,
        FaultKind::kRangeDegradation}) {
    if (name == fault_kind_name(k)) return k;
  }
  throw std::runtime_error("unknown fault kind: " + name);
}

}  // namespace

json::Value fault_event_to_json(const fault::FaultEvent& e) {
  json::Object o;
  o.emplace("kind", fault_kind_name(e.kind));
  o.emplace("robot", e.robot);
  o.emplace("link_a", e.link_a);
  o.emplace("link_b", e.link_b);
  o.emplace("t_start", e.t_start);
  o.emplace("duration", e.duration);
  o.emplace("severity", e.severity);
  return json::Value(std::move(o));
}

fault::FaultEvent fault_event_from_json(const json::Value& v) {
  fault::FaultEvent e;
  e.kind = fault_kind_from_name(v.at("kind").as_string());
  e.robot = static_cast<int>(v.at("robot").as_number());
  e.link_a = static_cast<int>(v.at("link_a").as_number());
  e.link_b = static_cast<int>(v.at("link_b").as_number());
  e.t_start = v.at("t_start").as_number();
  e.duration = v.at("duration").as_number();
  e.severity = v.at("severity").as_number();
  return e;
}

json::Value fault_schedule_to_json(const fault::FaultSchedule& s) {
  json::Array events;
  events.reserve(s.events.size());
  for (const fault::FaultEvent& e : s.events) {
    events.push_back(fault_event_to_json(e));
  }
  json::Object o;
  o.emplace("events", std::move(events));
  return json::Value(std::move(o));
}

fault::FaultSchedule fault_schedule_from_json(const json::Value& v) {
  fault::FaultSchedule s;
  for (const json::Value& e : v.at("events").as_array()) {
    s.events.push_back(fault_event_from_json(e));
  }
  return s;
}

json::Value execution_event_to_json(const ExecutionEvent& e) {
  json::Object o;
  o.emplace("t", e.t);
  o.emplace("type", exec_event_name(e.type));
  if (e.has_fault) o.emplace("fault", fault_kind_name(e.fault));
  o.emplace("robot", e.robot);
  o.emplace("detail", e.detail);
  return json::Value(std::move(o));
}

json::Value events_to_json(const std::vector<ExecutionEvent>& events) {
  json::Array a;
  a.reserve(events.size());
  for (const ExecutionEvent& e : events) {
    a.push_back(execution_event_to_json(e));
  }
  return json::Value(std::move(a));
}

json::Value execution_report_to_json(const ExecutionReport& r) {
  json::Object o;
  o.emplace("num_robots", r.num_robots);
  json::Array crashed;
  for (int id : r.crashed) crashed.push_back(id);
  o.emplace("crashed", std::move(crashed));
  json::Array survivors;
  for (int id : r.survivors) survivors.push_back(id);
  o.emplace("survivors", std::move(survivors));
  o.emplace("survival_rate", r.survival_rate);
  o.emplace("connected_throughout", r.connected_throughout);
  o.emplace("first_disconnect_time", r.first_disconnect_time);
  o.emplace("final_connected", r.final_connected);
  o.emplace("stable_link_ratio", r.stable_link_ratio);
  o.emplace("planned_distance", r.planned_distance);
  o.emplace("executed_distance", r.executed_distance);
  o.emplace("extra_distance", r.extra_distance);
  o.emplace("pauses", r.pauses);
  o.emplace("retries", r.retries);
  o.emplace("recoveries", r.recoveries);
  o.emplace("retargets", r.retargets);
  o.emplace("degraded", r.degraded);
  o.emplace("end_time", r.end_time);
  json::Array finals;
  for (std::size_t i = 0; i < r.final_positions.size(); ++i) {
    json::Object p;
    p.emplace("id", r.final_ids[i]);
    p.emplace("x", r.final_positions[i].x);
    p.emplace("y", r.final_positions[i].y);
    finals.push_back(json::Value(std::move(p)));
  }
  o.emplace("final_positions", std::move(finals));
  o.emplace("events", events_to_json(r.events));
  return json::Value(std::move(o));
}

}  // namespace anr
