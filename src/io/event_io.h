// Fault-campaign and execution-log persistence.
//
// Fault schedules round-trip through JSON so a campaign can be archived
// and replayed bit-for-bit; execution event logs serialize
// deterministically (same plan + schedule + seed -> byte-identical dump),
// which is what the determinism tests assert on.
#pragma once

#include "fault/fault_schedule.h"
#include "io/json.h"
#include "march/execution_engine.h"

namespace anr {

json::Value fault_event_to_json(const fault::FaultEvent& e);
fault::FaultEvent fault_event_from_json(const json::Value& v);

json::Value fault_schedule_to_json(const fault::FaultSchedule& s);
fault::FaultSchedule fault_schedule_from_json(const json::Value& v);

json::Value execution_event_to_json(const ExecutionEvent& e);

/// The whole typed event log as a JSON array.
json::Value events_to_json(const std::vector<ExecutionEvent>& events);

/// Full report: scalars, id lists, and the event log.
json::Value execution_report_to_json(const ExecutionReport& r);

}  // namespace anr
