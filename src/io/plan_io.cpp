#include "io/plan_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/check.h"
#include "io/plan_codec.h"

namespace anr {

namespace {

json::Value points_to_json(const std::vector<Vec2>& pts) {
  json::Array xs, ys;
  xs.reserve(pts.size());
  ys.reserve(pts.size());
  for (Vec2 p : pts) {
    xs.emplace_back(p.x);
    ys.emplace_back(p.y);
  }
  json::Object o;
  o.emplace("x", std::move(xs));
  o.emplace("y", std::move(ys));
  return json::Value(std::move(o));
}

std::vector<Vec2> points_from_json(const json::Value& v) {
  const auto& xs = v.at("x").as_array();
  const auto& ys = v.at("y").as_array();
  ANR_CHECK_MSG(xs.size() == ys.size(), "point arrays of unequal length");
  std::vector<Vec2> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back({xs[i].as_number(), ys[i].as_number()});
  }
  return out;
}

}  // namespace

json::Value trajectory_to_json(const Trajectory& t) {
  json::Array ts, xs, ys;
  for (std::size_t i = 0; i < t.num_waypoints(); ++i) {
    ts.emplace_back(t.times()[i]);
    xs.emplace_back(t.waypoints()[i].x);
    ys.emplace_back(t.waypoints()[i].y);
  }
  json::Object o;
  o.emplace("t", std::move(ts));
  o.emplace("x", std::move(xs));
  o.emplace("y", std::move(ys));
  return json::Value(std::move(o));
}

Trajectory trajectory_from_json(const json::Value& v) {
  const auto& ts = v.at("t").as_array();
  const auto& xs = v.at("x").as_array();
  const auto& ys = v.at("y").as_array();
  ANR_CHECK_MSG(ts.size() == xs.size() && xs.size() == ys.size(),
                "trajectory arrays of unequal length");
  Trajectory out;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    out.append({xs[i].as_number(), ys[i].as_number()}, ts[i].as_number());
  }
  return out;
}

json::Value plan_to_json(const MarchPlan& plan) {
  json::Object o;
  json::Array trajs;
  trajs.reserve(plan.trajectories.size());
  for (const Trajectory& t : plan.trajectories) {
    trajs.push_back(trajectory_to_json(t));
  }
  o.emplace("format", "anr-march-plan/1");
  o.emplace("trajectories", std::move(trajs));
  o.emplace("start", points_to_json(plan.start));
  o.emplace("mapped_targets", points_to_json(plan.mapped_targets));
  o.emplace("final_positions", points_to_json(plan.final_positions));
  o.emplace("rotation_angle", plan.rotation_angle);
  o.emplace("rotation_objective", plan.rotation_objective);
  o.emplace("rotation_evaluations", plan.rotation_evaluations);
  o.emplace("predicted_link_ratio", plan.predicted_link_ratio);
  o.emplace("snapped_targets", plan.snapped_targets);
  o.emplace("repaired_robots", plan.repaired_robots);
  o.emplace("repaired_subgroups", plan.repaired_subgroups);
  o.emplace("unmeshed_robots", plan.unmeshed_robots);
  o.emplace("max_boundary_gap", plan.max_boundary_gap);
  o.emplace("transition_end", plan.transition_end);
  o.emplace("total_time", plan.total_time);
  o.emplace("adjust_steps", plan.adjust_steps);
  o.emplace("protocol_messages", plan.protocol_messages);
  return json::Value(std::move(o));
}

MarchPlan plan_from_json(const json::Value& v) {
  ANR_CHECK_MSG(v.at("format").as_string() == "anr-march-plan/1",
                "unknown plan format");
  MarchPlan plan;
  for (const json::Value& t : v.at("trajectories").as_array()) {
    plan.trajectories.push_back(trajectory_from_json(t));
  }
  plan.start = points_from_json(v.at("start"));
  plan.mapped_targets = points_from_json(v.at("mapped_targets"));
  plan.final_positions = points_from_json(v.at("final_positions"));
  plan.rotation_angle = v.at("rotation_angle").as_number();
  plan.rotation_objective = v.at("rotation_objective").as_number();
  plan.rotation_evaluations =
      static_cast<int>(v.at("rotation_evaluations").as_number());
  plan.predicted_link_ratio = v.at("predicted_link_ratio").as_number();
  plan.snapped_targets = static_cast<int>(v.at("snapped_targets").as_number());
  plan.repaired_robots = static_cast<int>(v.at("repaired_robots").as_number());
  plan.repaired_subgroups =
      static_cast<int>(v.at("repaired_subgroups").as_number());
  plan.unmeshed_robots = static_cast<int>(v.at("unmeshed_robots").as_number());
  plan.max_boundary_gap = v.at("max_boundary_gap").as_number();
  plan.transition_end = v.at("transition_end").as_number();
  plan.total_time = v.at("total_time").as_number();
  plan.adjust_steps = static_cast<int>(v.at("adjust_steps").as_number());
  plan.protocol_messages =
      static_cast<std::size_t>(v.at("protocol_messages").as_number());
  return plan;
}

json::Value metrics_to_json(const TransitionMetrics& m) {
  json::Object o;
  o.emplace("total_distance", m.total_distance);
  o.emplace("transition_distance", m.transition_distance);
  o.emplace("adjustment_distance", m.adjustment_distance);
  o.emplace("stable_link_ratio", m.stable_link_ratio);
  o.emplace("stable_link_ratio_transition", m.stable_link_ratio_transition);
  o.emplace("global_connectivity", m.global_connectivity);
  o.emplace("first_disconnect_time", m.first_disconnect_time);
  o.emplace("initial_links", m.initial_links);
  o.emplace("stable_links", m.stable_links);
  o.emplace("samples", m.samples);
  return json::Value(std::move(o));
}

TransitionMetrics metrics_from_json(const json::Value& v) {
  TransitionMetrics m;
  m.total_distance = v.at("total_distance").as_number();
  m.transition_distance = v.at("transition_distance").as_number();
  m.adjustment_distance = v.at("adjustment_distance").as_number();
  m.stable_link_ratio = v.at("stable_link_ratio").as_number();
  m.stable_link_ratio_transition =
      v.at("stable_link_ratio_transition").as_number();
  m.global_connectivity = v.at("global_connectivity").as_bool();
  m.first_disconnect_time = v.at("first_disconnect_time").as_number();
  m.initial_links = static_cast<int>(v.at("initial_links").as_number());
  m.stable_links = static_cast<int>(v.at("stable_links").as_number());
  m.samples = static_cast<int>(v.at("samples").as_number());
  return m;
}

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

std::string errno_message(const std::string& verb, const std::string& path) {
  return verb + " " + path + ": " +
         (errno != 0 ? std::strerror(errno) : "unknown I/O error");
}

bool has_binary_extension(const std::string& path) {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  return ends_with(".anrp") || ends_with(".bin");
}

}  // namespace

bool save_plan(const MarchPlan& plan, const std::string& path,
               std::string* error, PlanFormat format) {
  set_error(error, "");
  if (format == PlanFormat::kAuto) {
    format = has_binary_extension(path) ? PlanFormat::kBinary
                                        : PlanFormat::kJson;
  }
  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    set_error(error, errno_message("cannot open for writing", path));
    return false;
  }
  if (format == PlanFormat::kBinary) {
    std::string bytes = encode_plan(plan);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  } else {
    out << plan_to_json(plan).dump(2) << '\n';
  }
  out.flush();
  if (!out) {
    set_error(error, errno_message("write failed for", path));
    return false;
  }
  return true;
}

std::optional<MarchPlan> load_plan(const std::string& path,
                                   std::string* error) {
  set_error(error, "");
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, errno_message("cannot open", path));
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    set_error(error, errno_message("read failed for", path));
    return std::nullopt;
  }
  const std::string bytes = buf.str();
  // Content sniffing, not extension: cached/streamed plans keep working
  // however the file was named.
  if (looks_like_binary_plan(bytes)) {
    std::string why;
    auto plan = decode_plan(bytes, &why);
    if (!plan.has_value()) set_error(error, path + ": " + why);
    return plan;
  }
  try {
    return plan_from_json(json::parse(bytes));
  } catch (const std::exception& e) {
    set_error(error, path + ": " + e.what());
    return std::nullopt;
  }
}

}  // namespace anr
