#include "io/terrain_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/hash.h"

namespace anr {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

std::string errno_message(const std::string& verb, const std::string& path) {
  return verb + " " + path + ": " +
         (errno != 0 ? std::strerror(errno) : "unknown I/O error");
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_f64(std::string& out, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(const std::string& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

double get_f64(const std::string& in, std::size_t at) {
  const std::uint64_t bits = get_u64(in, at);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

constexpr char kToaMagic[8] = {'A', 'N', 'R', 'T', 'O', 'A', '0', '1'};

}  // namespace

json::Value cost_field_to_json(const CostField& field) {
  json::Object o;
  o["nx"] = field.nx();
  o["ny"] = field.ny();
  o["cell"] = field.cell_size();
  o["origin"] = json::Array{field.bounds().lo.x, field.bounds().lo.y};
  o["min_cost"] = field.min_cost();
  o["uniform"] = field.uniform();
  o["blocked_cells"] = field.blocked_count();
  json::Array costs;
  costs.reserve(field.costs().size());
  for (double c : field.costs()) {
    if (c == CostField::kInf) {
      costs.emplace_back("inf");
    } else {
      costs.emplace_back(c);
    }
  }
  o["costs"] = std::move(costs);
  return json::Value(std::move(o));
}

bool save_cost_field(const CostField& field, const std::string& path,
                     std::string* error) {
  set_error(error, "");
  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    set_error(error, errno_message("cannot open for writing", path));
    return false;
  }
  out << cost_field_to_json(field).dump(2) << "\n";
  out.flush();
  if (!out) {
    set_error(error, errno_message("write failed for", path));
    return false;
  }
  return true;
}

bool save_toa(const CostField& field, const std::vector<double>& toa,
              const std::string& path, std::string* error) {
  set_error(error, "");
  ANR_CHECK_MSG(toa.size() == static_cast<std::size_t>(field.cell_count()),
                "ToA size does not match the cost field grid");
  std::string payload;
  payload.reserve(toa.size() * 8);
  for (double v : toa) put_f64(payload, v);

  std::string doc(kToaMagic, sizeof(kToaMagic));
  put_u32(doc, static_cast<std::uint32_t>(field.nx()));
  put_u32(doc, static_cast<std::uint32_t>(field.ny()));
  put_f64(doc, field.cell_size());
  doc += payload;
  put_u64(doc, fnv1a64(payload));

  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    set_error(error, errno_message("cannot open for writing", path));
    return false;
  }
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.flush();
  if (!out) {
    set_error(error, errno_message("write failed for", path));
    return false;
  }
  return true;
}

std::optional<ToaSnapshot> load_toa(const std::string& path,
                                    std::string* error) {
  set_error(error, "");
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, errno_message("cannot open", path));
    return std::nullopt;
  }
  std::string doc((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    set_error(error, errno_message("read failed for", path));
    return std::nullopt;
  }
  constexpr std::size_t kHeader = sizeof(kToaMagic) + 4 + 4 + 8;
  if (doc.size() < kHeader + 8 ||
      std::memcmp(doc.data(), kToaMagic, sizeof(kToaMagic)) != 0) {
    set_error(error, path + ": not an ANRTOA01 record");
    return std::nullopt;
  }
  ToaSnapshot snap;
  snap.nx = static_cast<int>(get_u32(doc, sizeof(kToaMagic)));
  snap.ny = static_cast<int>(get_u32(doc, sizeof(kToaMagic) + 4));
  snap.cell = get_f64(doc, sizeof(kToaMagic) + 8);
  if (snap.nx <= 0 || snap.ny <= 0) {
    set_error(error, path + ": invalid grid shape");
    return std::nullopt;
  }
  const std::size_t cells =
      static_cast<std::size_t>(snap.nx) * static_cast<std::size_t>(snap.ny);
  if (doc.size() != kHeader + cells * 8 + 8) {
    set_error(error, path + ": truncated ToA payload");
    return std::nullopt;
  }
  const std::string payload = doc.substr(kHeader, cells * 8);
  const std::uint64_t want = get_u64(doc, kHeader + cells * 8);
  if (fnv1a64(payload) != want) {
    set_error(error, path + ": ToA checksum mismatch");
    return std::nullopt;
  }
  snap.toa.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    snap.toa.push_back(get_f64(payload, i * 8));
  }
  return snap;
}

}  // namespace anr
