// NDJSON job schema for the mission-service runtime (march_serve).
//
// One request per line, one result line per request. A request names its
// geometry either by paper scenario id or explicitly:
//
//   {"id": "job-1", "scenario": 3, "separation": 20.0}
//   {"id": "job-2",
//    "m1": {"outer": {"x": [...], "y": [...]}, "holes": [...]},
//    "m2": {"outer": {"x": [...], "y": [...]}},
//    "r_c": 80.0, "offset": {"x": 1600.0, "y": 0.0},
//    "positions": {"x": [...], "y": [...]},
//    "options": {"objective": "a", "grid_points": 900,
//                "cvt_samples": 15000, "max_adjust_steps": 35},
//    "include_plan": true}
//
// Field semantics (all optional unless noted):
//   id           echoed verbatim in the result (default "")
//   scenario     paper scenario 1..7; supplies m1/m2/r_c/robot count
//   m1, m2       explicit FoI geometry; override the scenario's
//   r_c          communication range (default: scenario's, else 80)
//   separation   M2 centroid offset along +x in multiples of r_c
//   offset       explicit M2 translation; overrides separation
//   positions    current deployment; when absent, an optimal-coverage
//                deployment of `robots` robots (seed `seed`) is generated
//   robots,seed  deployment generation inputs (defaults 144, 1)
//   options      planner knobs: objective "a"|"b", grid_points,
//                cvt_samples, max_adjust_steps, safe_adjustment,
//                distributed, exhaustive_rotation, extraction
//                "auto"|"gabriel", adjustment "grid"|"local",
//                transition_time, rotation_partitions, rotation_depth
//   deadline     queue-wait deadline, seconds (0 = none); expired jobs
//                resolve "deadline_expired" without planning
//   include_plan embed the full plan_to_json payload in the result
//   plan_encoding "json" (default) or "binary": over the streaming
//                frontend, ship the included plan as a binary
//                kResponsePlan frame instead of embedded JSON
//
// The result line echoes the id and reports ok/error, the typed final
// status ("ok", "degraded", "rejected_overload", ...), whether the plan
// was degraded (and by which fallback mode), cache_hit, stage timings,
// and the plan's headline diagnostics; with include_plan the complete
// plan document is attached under "plan".
#pragma once

#include "io/json.h"
#include "runtime/mission_service.h"

namespace anr {

/// FoI <-> {"outer": {"x": [...], "y": [...]}, "holes": [ ... ]}.
json::Value foi_to_json(const FieldOfInterest& foi);
FieldOfInterest foi_from_json(const json::Value& v);

/// Parsed request: the job plus response-shaping flags.
struct JobRequest {
  runtime::PlanJob job;
  bool include_plan = false;
  /// "plan_encoding": "binary" — with include_plan over the streaming
  /// frontend, ship the plan as an io/plan_codec document in a
  /// kResponsePlan frame instead of embedding plan_to_json. Batch mode
  /// ignores it (NDJSON lines cannot carry raw bytes).
  bool binary_plan = false;
};

/// Parses one request object (throws std::runtime_error / ContractViolation
/// on malformed input). Deployment generation for requests without
/// "positions" is memoized across calls via `deployment_cache` keyed by
/// (geometry, robots, seed) — pass the same map for a whole batch.
JobRequest job_from_json(
    const json::Value& v,
    std::map<std::string, std::vector<Vec2>>* deployment_cache = nullptr);

/// Serializes one result line (compact object, no trailing newline).
json::Value result_to_json(const runtime::JobResult& result,
                           bool include_plan);

}  // namespace anr
